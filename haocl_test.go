package haocl_test

import (
	"encoding/binary"
	"math"
	"testing"

	haocl "github.com/haocl-project/haocl"
)

const vecAddSource = `
// Simple element-wise addition used by the public-API smoke tests.
__kernel void vecadd(__global const float* a,
                     __global const float* b,
                     __global float* out,
                     const int n) {
    int i = get_global_id(0);
    if (i < n) out[i] = a[i] + b[i];
}
`

func vecAddRegistry(t *testing.T) *haocl.KernelRegistry {
	t.Helper()
	reg := haocl.NewKernelRegistry()
	reg.MustRegister(&haocl.KernelSpec{
		Name:    "vecadd",
		NumArgs: 4,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {
			i := it.GlobalID(0)
			n := args[3].Int()
			if i >= n {
				return
			}
			a, b, out := args[0].Float32s(), args[1].Float32s(), args[2].Float32s()
			out[i] = a[i] + b[i]
		},
		Cost: func(global [3]int, args []haocl.KernelArg) haocl.KernelCost {
			items := int64(global[0])
			return haocl.KernelCost{Flops: items, Bytes: items * 12}
		},
	})
	return reg
}

func floatsToBytes(fs []float32) []byte {
	out := make([]byte, 4*len(fs))
	for i, f := range fs {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(f))
	}
	return out
}

func bytesToFloats(bs []byte) []float32 {
	out := make([]float32, len(bs)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(bs[i*4:]))
	}
	return out
}

// TestPublicAPIVecAdd walks the full OpenCL-style flow on a two-GPU-node
// local cluster: context, queue, buffers, program build, kernel launch,
// read-back, profiling.
func TestPublicAPIVecAdd(t *testing.T) {
	lc, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
		UserID:      "tester",
		GPUNodes:    2,
		Kernels:     vecAddRegistry(t),
		ExecWorkers: 1,
	})
	if err != nil {
		t.Fatalf("StartLocalCluster: %v", err)
	}
	defer lc.Close()
	p := lc.Platform

	gpus := p.Devices(haocl.GPU)
	if len(gpus) != 2 {
		t.Fatalf("got %d GPUs, want 2", len(gpus))
	}
	ctx, err := p.CreateContext(gpus)
	if err != nil {
		t.Fatalf("CreateContext: %v", err)
	}
	prog, err := ctx.CreateProgram(vecAddSource)
	if err != nil {
		t.Fatalf("CreateProgram: %v", err)
	}
	if err := prog.Build(); err != nil {
		t.Fatalf("Build: %v\n%s", err, prog.BuildLog())
	}

	const n = 1024
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i] = float32(i)
		b[i] = float32(2 * i)
	}

	// Split the work across both GPU nodes, as the paper's MatrixMul
	// heterogeneity experiment does with data portions (§IV-C).
	half := n / 2
	for gi, dev := range gpus {
		q, err := ctx.CreateQueue(dev)
		if err != nil {
			t.Fatalf("CreateQueue[%d]: %v", gi, err)
		}
		bufA, err := ctx.CreateBuffer(4 * int64(half))
		if err != nil {
			t.Fatalf("CreateBuffer: %v", err)
		}
		bufB, _ := ctx.CreateBuffer(4 * int64(half))
		bufOut, _ := ctx.CreateBuffer(4 * int64(half))

		lo := gi * half
		if _, err := q.EnqueueWrite(bufA, 0, floatsToBytes(a[lo:lo+half])); err != nil {
			t.Fatalf("EnqueueWrite A: %v", err)
		}
		if _, err := q.EnqueueWrite(bufB, 0, floatsToBytes(b[lo:lo+half])); err != nil {
			t.Fatalf("EnqueueWrite B: %v", err)
		}

		k, err := prog.CreateKernel("vecadd")
		if err != nil {
			t.Fatalf("CreateKernel: %v", err)
		}
		for i, v := range []any{bufA, bufB, bufOut, int32(half)} {
			if err := k.SetArg(i, v); err != nil {
				t.Fatalf("SetArg(%d): %v", i, err)
			}
		}
		ev, err := q.EnqueueKernel(k, []int{half}, nil, nil, nil)
		if err != nil {
			t.Fatalf("EnqueueKernel: %v", err)
		}
		if ev.Profile().End <= ev.Profile().Start {
			t.Errorf("kernel event has empty virtual interval: %+v", ev.Profile())
		}

		data, _, err := q.EnqueueRead(bufOut, 0, 4*int64(half))
		if err != nil {
			t.Fatalf("EnqueueRead: %v", err)
		}
		got := bytesToFloats(data)
		for i, v := range got {
			want := a[lo+i] + b[lo+i]
			if v != want {
				t.Fatalf("gpu %d element %d: got %v want %v", gi, i, v, want)
			}
		}
		if _, err := q.Finish(); err != nil {
			t.Fatalf("Finish: %v", err)
		}
	}

	m := p.Metrics()
	if m.Transfer <= 0 {
		t.Errorf("expected network transfer time to be charged, got %v", m.Transfer)
	}
	if m.Compute() <= 0 {
		t.Errorf("expected compute time to be charged, got %v", m.Compute())
	}
	if m.Makespan <= 0 {
		t.Errorf("expected nonzero makespan")
	}
}
