package haocl

import (
	"github.com/haocl-project/haocl/internal/sched"
)

// Scheduling types, exposed as aliases so applications can plug custom
// policies into the extendable scheduling component (paper §I: "supports
// both built-in and user customized scheduling policies").
type (
	// Policy decides kernel placement from the monitor's cluster view.
	Policy = sched.Policy
	// SchedTask is the scheduler's view of one kernel launch.
	SchedTask = sched.Task
	// Assignment is a placement decision.
	Assignment = sched.Assignment
	// UserDirectedPolicy maps kernels to devices by explicit instruction,
	// the paper's shipped scheduling mode.
	UserDirectedPolicy = sched.UserDirected
)

// NewUserDirectedPolicy returns an empty user-directed policy; pin kernels
// with Place or PlaceType.
func NewUserDirectedPolicy() *UserDirectedPolicy { return sched.NewUserDirected() }

// RoundRobinPolicy cycles eligible devices, a heterogeneity-oblivious
// baseline.
func RoundRobinPolicy() Policy { return &sched.RoundRobin{} }

// LeastLoadedPolicy picks the device that drains earliest.
func LeastLoadedPolicy() Policy { return sched.LeastLoaded{} }

// HeteroAwarePolicy minimizes estimated completion time using the device
// model plus runtime profiling — the automatic scheduler the paper's
// component is designed to grow into.
func HeteroAwarePolicy() Policy { return sched.HeteroAware{} }

// PowerAwarePolicy minimizes estimated energy; slackFactor bounds the
// acceptable slowdown versus the fastest candidate (0 = unbounded).
func PowerAwarePolicy(slackFactor float64) Policy {
	return sched.PowerAware{SlackFactor: slackFactor}
}
