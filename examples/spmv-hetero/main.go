// SpMV-hetero: the paper's §IV-C pipelined heterogeneity evaluation as a
// standalone program. The two SpMV stages run on different hardware
// classes — the data-partition kernel on GPU nodes, the CSR compute kernel
// on FPGA nodes — placed by the user-directed scheduling policy, exactly
// how the paper describes its current scheduler ("it delivers the kernel
// tasks to device nodes based on users' instructions").
//
//	go run ./examples/spmv-hetero
package main

import (
	"flag"
	"fmt"
	"log"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps/spmv"
)

func main() {
	gpus := flag.Int("gpus", 2, "GPU nodes (partition stage)")
	fpgas := flag.Int("fpgas", 4, "FPGA nodes (compute stage)")
	flag.Parse()
	if err := run(*gpus, *fpgas); err != nil {
		log.Fatal(err)
	}
}

func run(gpus, fpgas int) error {
	kernels := haocl.NewKernelRegistry()
	spmv.RegisterKernels(kernels)

	// FPGA nodes only run pre-built bitstreams: declare which kernels
	// they were synthesized with (paper §III-D).
	lc, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
		UserID:     "spmv-example",
		GPUNodes:   gpus,
		FPGANodes:  fpgas,
		Bitstreams: []string{"spmv_partition", "spmv_csr"},
		Kernels:    kernels,
	})
	if err != nil {
		return err
	}
	defer lc.Close()
	p := lc.Platform

	fmt.Printf("cluster: %d GPU node(s) for spmv_partition, %d FPGA node(s) for spmv_csr\n",
		gpus, fpgas)

	res, err := spmv.Run(p, spmv.Config{
		LogicalRows:      spmv.DefaultLogicalRows,
		LogicalNNZPerRow: spmv.DefaultLogicalNNZPerRow,
		LogicalIters:     spmv.DefaultLogicalIters,
		FuncRows:         512,
		FuncNNZPerRow:    8,
		FuncIters:        2,
		PartitionDevices: p.Devices(haocl.GPU),
		ComputeDevices:   p.Devices(haocl.FPGA),
	})
	if err != nil {
		return err
	}
	fmt.Printf("\n%s\n", res)

	energy, err := p.TotalEnergy()
	if err != nil {
		return err
	}
	fmt.Printf("cluster energy: %.1f J (FPGAs draw 45 W against the P4's 75 W —\n", energy)
	fmt.Println("the power-efficiency case the paper makes for FPGA compute stages)")
	return nil
}
