// MatMul-cluster: the paper's Fig. 3 workload as a standalone program —
// dense matrix multiplication data-partitioned across a growing cluster of
// GPU nodes, with the DataCreate / ComputeTime / DataTransfer breakdown
// printed for each scale.
//
//	go run ./examples/matmul-cluster
//	go run ./examples/matmul-cluster -size 6000 -nodes 2,4,9
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps/matmul"
)

func main() {
	size := flag.Int("size", 8000, "logical matrix dimension (paper sweeps 1000..10000)")
	nodes := flag.String("nodes", "1,2,4,9,16", "comma-separated GPU node counts")
	flag.Parse()
	if err := run(*size, *nodes); err != nil {
		log.Fatal(err)
	}
}

func run(size int, nodeList string) error {
	kernels := haocl.NewKernelRegistry()
	matmul.RegisterKernels(kernels)

	fmt.Printf("MatrixMul %dx%d (float32, %d MB of input) across GPU nodes\n\n",
		size, size, matmul.InputBytes(int64(size))>>20)
	fmt.Printf("%-6s %12s %12s %12s %12s %9s\n",
		"nodes", "DataCreate", "Compute", "Transfer", "Total", "speedup")

	var base float64
	for _, field := range strings.Split(nodeList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			return fmt.Errorf("bad node count %q: %v", field, err)
		}
		lc, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
			UserID:   "matmul-example",
			GPUNodes: n,
			Kernels:  kernels,
		})
		if err != nil {
			return err
		}
		res, err := matmul.Run(lc.Platform, matmul.Config{
			LogicalN: size,
			FuncN:    48, // functional stand-in, verified against a sequential reference
			Devices:  lc.Platform.Devices(haocl.GPU),
		})
		lc.Close()
		if err != nil {
			return err
		}
		total := res.Makespan.Seconds()
		if base == 0 {
			base = total
		}
		fmt.Printf("%-6d %11.3fs %11.3fs %11.3fs %11.3fs %8.2fx\n",
			n, res.DataCreate.Seconds(), res.Compute.Seconds(),
			res.Transfer.Seconds(), total, base/total)
	}
	fmt.Println("\nAll runs verified against the sequential reference; times are")
	fmt.Println("virtual (calibrated Tesla P4 nodes on Gigabit Ethernet).")
	return nil
}
