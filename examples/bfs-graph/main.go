// BFS-graph: Graph500-style multi-root breadth-first search across GPU
// nodes. The graph replica reaches every node through the backbone's
// pipelined chain broadcast (one host transfer plus a pipeline fill per
// extra node, instead of one full transfer per node), and the source batch
// is partitioned across devices — the configuration that gives BFS the
// best scaling of the Table I suite in this reproduction.
//
//	go run ./examples/bfs-graph
//	go run ./examples/bfs-graph -sources 512 -nodes 1,4,16
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps/bfs"
)

func main() {
	sources := flag.Int("sources", bfs.DefaultSources, "logical multi-root batch size")
	nodes := flag.String("nodes", "1,2,4,8,16", "comma-separated GPU node counts")
	flag.Parse()
	if err := run(*sources, *nodes); err != nil {
		log.Fatal(err)
	}
}

func run(sources int, nodeList string) error {
	kernels := haocl.NewKernelRegistry()
	bfs.RegisterKernels(kernels)

	g := bfs.GenerateTorus3D(bfs.DefaultLogicalSide)
	fmt.Printf("graph: 3D torus, %d vertices, %d directed edges (%d MB replica), %d sources\n\n",
		g.V, g.E(), bfs.InputBytes(bfs.DefaultLogicalSide)>>20, sources)
	fmt.Printf("%-6s %12s %12s %12s %9s\n", "nodes", "Broadcast+IO", "Compute", "Total", "speedup")

	var base float64
	for _, field := range strings.Split(nodeList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			return fmt.Errorf("bad node count %q: %v", field, err)
		}
		lc, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
			UserID:   "bfs-example",
			GPUNodes: n,
			Kernels:  kernels,
		})
		if err != nil {
			return err
		}
		res, err := bfs.Run(lc.Platform, bfs.Config{
			LogicalSide: bfs.DefaultLogicalSide,
			FuncSide:    6, // functional stand-in, verified per device
			Sources:     sources,
			Devices:     lc.Platform.Devices(haocl.GPU),
		})
		lc.Close()
		if err != nil {
			return err
		}
		total := res.Makespan.Seconds()
		if base == 0 {
			base = total
		}
		fmt.Printf("%-6d %11.3fs %11.3fs %11.3fs %8.2fx\n",
			n, res.Transfer.Seconds()+res.DataCreate.Seconds(),
			res.Compute.Seconds(), total, base/total)
	}
	fmt.Println("\nEach device traverses its share of the source batch on a local graph")
	fmt.Println("replica; every traversal is verified against a sequential reference.")
	return nil
}
