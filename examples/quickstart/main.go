// Quickstart: the full OpenCL-style flow on a two-GPU-node HaoCL cluster.
//
// The host program below is an ordinary OpenCL application — discover
// devices, build a program, create buffers, launch an NDRange, read the
// result back — except that the two GPUs live on different (simulated)
// cluster nodes behind the HaoCL wrapper library.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	haocl "github.com/haocl-project/haocl"
)

const source = `
__kernel void saxpy(const float alpha,
                    __global const float* x,
                    __global float* y,
                    const int n) {
    int i = get_global_id(0);
    if (i < n) y[i] = alpha * x[i] + y[i];
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Register the device-side implementation of the kernel, the role
	// vendor compilers (or pre-built FPGA bitstreams) play on real nodes.
	kernels := haocl.NewKernelRegistry()
	kernels.MustRegister(&haocl.KernelSpec{
		Name:    "saxpy",
		NumArgs: 4,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {
			i := it.GlobalID(0)
			if n := args[3].Int(); i >= n {
				return
			}
			alpha := args[0].Float32()
			x, y := args[1].Float32s(), args[2].Float32s()
			y[i] = alpha*x[i] + y[i]
		},
		Cost: func(global [3]int, args []haocl.KernelArg) haocl.KernelCost {
			n := int64(global[0])
			return haocl.KernelCost{Flops: 2 * n, Bytes: 12 * n}
		},
	})

	// Start an in-process cluster: two single-GPU nodes plus the host.
	lc, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
		UserID:   "quickstart",
		GPUNodes: 2,
		Kernels:  kernels,
	})
	if err != nil {
		return err
	}
	defer lc.Close()
	p := lc.Platform

	gpus := p.Devices(haocl.GPU)
	fmt.Printf("platform exposes %d GPU(s):\n", len(gpus))
	for _, d := range gpus {
		fmt.Printf("  %-12s %s\n", d.Key(), d.Info().Name)
	}

	ctx, err := p.CreateContext(gpus)
	if err != nil {
		return err
	}
	prog, err := ctx.CreateProgram(source)
	if err != nil {
		return err
	}
	if err := prog.Build(); err != nil {
		return fmt.Errorf("%v\nbuild log:\n%s", err, prog.BuildLog())
	}

	const n = 1 << 16
	x := make([]float32, n)
	y := make([]float32, n)
	for i := range x {
		x[i] = float32(i)
		y[i] = 1
	}

	// Split the vector across the two remote GPUs.
	half := n / 2
	for gi, dev := range gpus {
		q, err := ctx.CreateQueue(dev)
		if err != nil {
			return err
		}
		bufX, err := ctx.CreateBuffer(4 * int64(half))
		if err != nil {
			return err
		}
		bufY, err := ctx.CreateBuffer(4 * int64(half))
		if err != nil {
			return err
		}
		lo := gi * half
		if _, err := q.EnqueueWrite(bufX, 0, f32bytes(x[lo:lo+half])); err != nil {
			return err
		}
		if _, err := q.EnqueueWrite(bufY, 0, f32bytes(y[lo:lo+half])); err != nil {
			return err
		}

		k, err := prog.CreateKernel("saxpy")
		if err != nil {
			return err
		}
		for i, v := range []any{float32(2.0), bufX, bufY, int32(half)} {
			if err := k.SetArg(i, v); err != nil {
				return err
			}
		}
		ev, err := q.EnqueueKernel(k, []int{half}, nil, nil, nil)
		if err != nil {
			return err
		}
		out, _, err := q.EnqueueRead(bufY, 0, 4*int64(half))
		if err != nil {
			return err
		}
		got := math.Float32frombits(binary.LittleEndian.Uint32(out[4:]))
		fmt.Printf("%s: y[1] = %.1f (kernel ran %.1fµs of virtual device time)\n",
			dev.Key(), got, float64(ev.Profile().End-ev.Profile().Start)/1e3)
	}

	m := p.Metrics()
	fmt.Printf("\nvirtual-time accounting: transfer=%.3fms compute=%.3fms makespan=%.3fms\n",
		m.Transfer.Seconds()*1e3, m.Compute().Seconds()*1e3, float64(m.Makespan)/1e6)
	return nil
}

func f32bytes(fs []float32) []byte {
	out := make([]byte, 4*len(fs))
	for i, f := range fs {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(f))
	}
	return out
}
