// Scheduler-policies: HaoCL's extendable scheduling component in action.
// A task graph of mixed kernels (the application DAG of paper Fig. 1) is
// submitted to a hybrid CPU+GPU+FPGA cluster under each built-in policy —
// round-robin, least-loaded, heterogeneity-aware, power-aware and
// user-directed — plus a custom user policy, printing where each task
// landed, the graph makespan, and the cluster energy.
//
//	go run ./examples/scheduler-policies
package main

import (
	"fmt"
	"log"

	haocl "github.com/haocl-project/haocl"
)

const source = `
// A compute-hungry kernel and a streaming kernel with different device
// affinities.
__kernel void dense_stage(__global const float* in,
                          __global float* out,
                          const int n) {
    int i = get_global_id(0);
    if (i >= n) return;
    float acc = 0.0f;
    for (int k = 0; k < 64; k++) acc += in[i] * (float)k;
    out[i] = acc;
}

__kernel void stream_stage(__global const float* in,
                           __global float* out,
                           const int n) {
    int i = get_global_id(0);
    if (i < n) out[i] = 0.5f * in[i];
}
`

func registerKernels() *haocl.KernelRegistry {
	reg := haocl.NewKernelRegistry()
	reg.MustRegister(&haocl.KernelSpec{
		Name: "dense_stage", NumArgs: 3,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {
			i := it.GlobalID(0)
			if n := args[2].Int(); i >= n {
				return
			}
			in, out := args[0].Float32s(), args[1].Float32s()
			var acc float32
			for k := 0; k < 64; k++ {
				acc += in[i] * float32(k)
			}
			out[i] = acc
		},
		Cost: func(global [3]int, args []haocl.KernelArg) haocl.KernelCost {
			n := int64(global[0])
			return haocl.KernelCost{Flops: 128 * n, Bytes: 8 * n}
		},
	})
	reg.MustRegister(&haocl.KernelSpec{
		Name: "stream_stage", NumArgs: 3,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {
			i := it.GlobalID(0)
			if n := args[2].Int(); i >= n {
				return
			}
			args[1].Float32s()[i] = 0.5 * args[0].Float32s()[i]
		},
		Cost: func(global [3]int, args []haocl.KernelArg) haocl.KernelCost {
			n := int64(global[0])
			return haocl.KernelCost{Flops: n, Bytes: 8 * n}
		},
	})
	return reg
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lc, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
		UserID:     "sched-example",
		CPUNodes:   1,
		GPUNodes:   2,
		FPGANodes:  2,
		Bitstreams: []string{"dense_stage", "stream_stage"},
		Kernels:    registerKernels(),
	})
	if err != nil {
		return err
	}
	defer lc.Close()
	p := lc.Platform

	userDirected := haocl.NewUserDirectedPolicy()
	userDirected.PlaceType("dense_stage", haocl.GPU)
	userDirected.PlaceType("stream_stage", haocl.FPGA)

	policies := []haocl.Policy{
		haocl.RoundRobinPolicy(),
		haocl.LeastLoadedPolicy(),
		haocl.HeteroAwarePolicy(),
		haocl.PowerAwarePolicy(3.0),
		userDirected,
	}

	for _, pol := range policies {
		makespan, placements, err := runGraph(p, pol)
		if err != nil {
			return fmt.Errorf("policy %s: %w", pol.Name(), err)
		}
		fmt.Printf("%-16s makespan=%8.3fms  placements: %v\n",
			pol.Name(), float64(makespan)/1e6, placements)
	}
	energy, err := p.TotalEnergy()
	if err != nil {
		return err
	}
	fmt.Printf("\ntotal cluster energy across all five runs: %.2f J\n", energy)
	return nil
}

// runGraph builds and runs an 8-task DAG: four dense stages feeding four
// streaming stages.
func runGraph(p *haocl.Platform, pol haocl.Policy) (haocl.Time, []string, error) {
	ctx, err := p.CreateContext(p.Devices(haocl.AnyDevice))
	if err != nil {
		return 0, nil, err
	}
	prog, err := ctx.CreateProgram(source)
	if err != nil {
		return 0, nil, err
	}
	if err := prog.Build(); err != nil {
		return 0, nil, err
	}

	const n = 4096
	graph := ctx.NewTaskGraph()
	var placods []string
	var tasks []*haocl.GraphTask
	for stage := 0; stage < 4; stage++ {
		in, err := ctx.CreateBuffer(4 * n)
		if err != nil {
			return 0, nil, err
		}
		mid, err := ctx.CreateBuffer(4 * n)
		if err != nil {
			return 0, nil, err
		}
		out, err := ctx.CreateBuffer(4 * n)
		if err != nil {
			return 0, nil, err
		}
		dense, err := prog.CreateKernel("dense_stage")
		if err != nil {
			return 0, nil, err
		}
		for i, v := range []any{in, mid, int32(n)} {
			if err := dense.SetArg(i, v); err != nil {
				return 0, nil, err
			}
		}
		stream, err := prog.CreateKernel("stream_stage")
		if err != nil {
			return 0, nil, err
		}
		for i, v := range []any{mid, out, int32(n)} {
			if err := stream.SetArg(i, v); err != nil {
				return 0, nil, err
			}
		}
		t1 := graph.Add(fmt.Sprintf("dense-%d", stage), dense, []int{n}, nil, nil)
		t2 := graph.Add(fmt.Sprintf("stream-%d", stage), stream, []int{n}, nil, nil, t1)
		tasks = append(tasks, t1, t2)
	}

	if err := graph.Run(pol); err != nil {
		return 0, nil, err
	}
	for _, t := range tasks {
		placods = append(placods, fmt.Sprintf("%s→%s", t.Label(), t.AssignedDevice().Info().Type))
	}
	return graph.Makespan(), placods, nil
}
