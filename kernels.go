package haocl

import (
	"github.com/haocl-project/haocl/internal/kernel"
)

// Kernel-runtime types, exposed as aliases so applications can register
// device kernel implementations against the names appearing in their
// OpenCL C program source. This mirrors the paper's FPGA deployment model —
// kernels are pre-built binaries resolved by name at clCreateKernel time
// (§III-D) — extended to every simulated device class.
type (
	// WorkItem carries a work-item's NDRange identity (get_global_id and
	// friends).
	WorkItem = kernel.Item
	// KernelArg is one bound argument as seen by a work-item function.
	KernelArg = kernel.Arg
	// KernelFunc is a kernel's work-item body.
	KernelFunc = kernel.Func
	// KernelCost is the analytic cost of one launch.
	KernelCost = kernel.Cost
	// KernelSpec describes one registrable kernel implementation.
	KernelSpec = kernel.Spec
	// KernelRegistry stores kernel implementations by name.
	KernelRegistry = kernel.Registry
)

// NewKernelRegistry returns an empty kernel registry for node daemons that
// want full control over their kernel set.
func NewKernelRegistry() *KernelRegistry { return kernel.NewRegistry() }

// BufferArg wraps backing storage as a global-memory argument, for tests
// and custom drivers.
func BufferArg(data []byte) KernelArg { return kernel.BufferArg(data) }
