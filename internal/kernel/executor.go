package kernel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Item gives a work-item function its identity within the NDRange,
// mirroring the OpenCL work-item functions get_global_id, get_local_id,
// get_group_id, get_global_size, get_local_size and barrier().
type Item struct {
	gid    [3]int
	lid    [3]int
	group  [3]int
	global [3]int
	local  [3]int
	bar    *groupBarrier
}

// GlobalID returns get_global_id(dim).
func (it *Item) GlobalID(dim int) int { return it.gid[dim] }

// LocalID returns get_local_id(dim).
func (it *Item) LocalID(dim int) int { return it.lid[dim] }

// GroupID returns get_group_id(dim).
func (it *Item) GroupID(dim int) int { return it.group[dim] }

// GlobalSize returns get_global_size(dim).
func (it *Item) GlobalSize(dim int) int { return it.global[dim] }

// LocalSize returns get_local_size(dim).
func (it *Item) LocalSize(dim int) int { return it.local[dim] }

// NumGroups returns get_num_groups(dim).
func (it *Item) NumGroups(dim int) int { return it.global[dim] / it.local[dim] }

// Barrier synchronizes all work-items of the current work-group, like
// barrier(CLK_LOCAL_MEM_FENCE). Calling it from a kernel whose Spec does
// not set UsesBarrier panics: without goroutine-per-item execution the
// barrier would deadlock, and the panic converts that silent hang into a
// diagnosable error.
func (it *Item) Barrier() {
	if it.bar == nil {
		panic("kernel: Barrier called by a kernel not registered with UsesBarrier")
	}
	it.bar.await()
}

// groupBarrier is a reusable cyclic barrier for the work-items of one group.
type groupBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newGroupBarrier(n int) *groupBarrier {
	b := &groupBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *groupBarrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
}

// Launch describes one NDRange execution request.
type Launch struct {
	// Global is the global work size, 1-3 dimensions.
	Global []int
	// Local is the work-group size; empty selects an implementation-
	// defined size (1 per dimension, the cheapest valid choice when the
	// kernel does not use work-group synchronization).
	Local []int
	// Args are the bound kernel arguments in declaration order.
	Args []Arg
	// Workers bounds work-group-level parallelism; 0 means GOMAXPROCS.
	Workers int
}

// Launch errors.
var (
	ErrBadNDRange = errors.New("kernel: invalid NDRange")
	ErrBadArgs    = errors.New("kernel: invalid arguments")
)

// normalize pads dims to 3 entries of at least 1.
func normalize(dims []int) ([3]int, error) {
	out := [3]int{1, 1, 1}
	if len(dims) == 0 || len(dims) > 3 {
		return out, fmt.Errorf("%w: %d dimensions", ErrBadNDRange, len(dims))
	}
	for i, d := range dims {
		if d <= 0 {
			return out, fmt.Errorf("%w: dimension %d is %d", ErrBadNDRange, i, d)
		}
		out[i] = d
	}
	return out, nil
}

// NormalizeRange validates and pads a global/local pair the way
// clEnqueueNDRangeKernel does: local defaults to 1s, and every global
// dimension must divide evenly by the local size.
func NormalizeRange(global, local []int) (g, l [3]int, err error) {
	g, err = normalize(global)
	if err != nil {
		return g, l, err
	}
	if len(local) == 0 {
		return g, [3]int{1, 1, 1}, nil
	}
	l, err = normalize(local)
	if err != nil {
		return g, l, err
	}
	for d := 0; d < 3; d++ {
		if g[d]%l[d] != 0 {
			return g, l, fmt.Errorf("%w: global size %d not divisible by local size %d in dim %d",
				ErrBadNDRange, g[d], l[d], d)
		}
	}
	return g, l, nil
}

// Run executes spec over the launch's NDRange. Work-groups run in parallel
// across a bounded worker pool; within a group, work-items run sequentially
// unless the kernel uses barriers, in which case each item gets a goroutine
// synchronized by a per-group cyclic barrier. Local-memory arguments are
// allocated fresh per work-group.
func Run(spec *Spec, l Launch) error {
	if spec == nil {
		return fmt.Errorf("%w: nil spec", ErrBadArgs)
	}
	if spec.NumArgs > 0 && len(l.Args) != spec.NumArgs {
		return fmt.Errorf("%w: kernel %q wants %d args, got %d",
			ErrBadArgs, spec.Name, spec.NumArgs, len(l.Args))
	}
	for i, a := range l.Args {
		switch a.Kind {
		case ArgBuffer, ArgScalar:
			if a.Data == nil && a.Kind == ArgBuffer {
				return fmt.Errorf("%w: kernel %q arg %d: nil buffer", ErrBadArgs, spec.Name, i)
			}
		case ArgLocal:
			if a.LocalLen <= 0 {
				return fmt.Errorf("%w: kernel %q arg %d: local size %d", ErrBadArgs, spec.Name, i, a.LocalLen)
			}
		default:
			return fmt.Errorf("%w: kernel %q arg %d: unknown kind %d", ErrBadArgs, spec.Name, i, a.Kind)
		}
	}
	global, local, err := NormalizeRange(l.Global, l.Local)
	if err != nil {
		return fmt.Errorf("kernel %q: %w", spec.Name, err)
	}

	groups := [3]int{global[0] / local[0], global[1] / local[1], global[2] / local[2]}
	numGroups := groups[0] * groups[1] * groups[2]
	itemsPerGroup := local[0] * local[1] * local[2]
	if spec.UsesBarrier && itemsPerGroup == 1 && numGroups > 1 {
		// Legal but almost certainly a mistake: a barrier over one item is
		// a no-op, so a missing local size silently changes semantics.
		return fmt.Errorf("%w: kernel %q uses barriers but was launched with local size 1",
			ErrBadNDRange, spec.Name)
	}

	workers := l.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numGroups {
		workers = numGroups
	}

	var (
		wg   sync.WaitGroup
		next = make(chan int)
	)
	panics := make(chan any, 1)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Recover per work-group so a panicking kernel cannot kill
			// the worker and strand unconsumed groups on the channel.
			for gi := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							select {
							case panics <- r:
							default:
							}
						}
					}()
					runGroup(spec, gi, groups, global, local, l.Args)
				}()
			}
		}()
	}
	for gi := 0; gi < numGroups; gi++ {
		next <- gi
	}
	close(next)
	wg.Wait()
	select {
	case r := <-panics:
		return fmt.Errorf("kernel %q panicked: %v", spec.Name, r)
	default:
	}
	return nil
}

// runGroup executes all work-items of the group with linear index gi.
func runGroup(spec *Spec, gi int, groups, global, local [3]int, args []Arg) {
	var group [3]int
	group[0] = gi % groups[0]
	group[1] = (gi / groups[0]) % groups[1]
	group[2] = gi / (groups[0] * groups[1])

	// Local-memory arguments get fresh per-group storage.
	groupArgs := args
	for i := range args {
		if args[i].Kind == ArgLocal {
			groupArgs = make([]Arg, len(args))
			copy(groupArgs, args)
			for j := range groupArgs {
				if groupArgs[j].Kind == ArgLocal {
					groupArgs[j].Data = make([]byte, groupArgs[j].LocalLen)
				}
			}
			break
		}
		_ = i
	}

	itemsPerGroup := local[0] * local[1] * local[2]
	if !spec.UsesBarrier {
		it := Item{global: global, local: local, group: group}
		for lz := 0; lz < local[2]; lz++ {
			for ly := 0; ly < local[1]; ly++ {
				for lx := 0; lx < local[0]; lx++ {
					it.lid = [3]int{lx, ly, lz}
					it.gid = [3]int{
						group[0]*local[0] + lx,
						group[1]*local[1] + ly,
						group[2]*local[2] + lz,
					}
					spec.Func(&it, groupArgs)
				}
			}
		}
		return
	}

	bar := newGroupBarrier(itemsPerGroup)
	var wg sync.WaitGroup
	wg.Add(itemsPerGroup)
	for lz := 0; lz < local[2]; lz++ {
		for ly := 0; ly < local[1]; ly++ {
			for lx := 0; lx < local[0]; lx++ {
				it := &Item{
					lid:    [3]int{lx, ly, lz},
					group:  group,
					global: global,
					local:  local,
					bar:    bar,
					gid: [3]int{
						group[0]*local[0] + lx,
						group[1]*local[1] + ly,
						group[2]*local[2] + lz,
					},
				}
				go func() {
					defer wg.Done()
					spec.Func(it, groupArgs)
				}()
			}
		}
	}
	wg.Wait()
}
