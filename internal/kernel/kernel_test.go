package kernel

import (
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestScalarEncodeDecode(t *testing.T) {
	if v := (Arg{Kind: ArgScalar, Data: EncodeScalar(int32(-7))}).Int(); v != -7 {
		t.Fatalf("int32: %d", v)
	}
	if v := (Arg{Kind: ArgScalar, Data: EncodeScalar(uint32(9))}).Uint32(); v != 9 {
		t.Fatalf("uint32: %d", v)
	}
	if v := (Arg{Kind: ArgScalar, Data: EncodeScalar(int64(1 << 40))}).Int64(); v != 1<<40 {
		t.Fatalf("int64: %d", v)
	}
	if v := (Arg{Kind: ArgScalar, Data: EncodeScalar(float32(1.5))}).Float32(); v != 1.5 {
		t.Fatalf("float32: %v", v)
	}
	if v := (Arg{Kind: ArgScalar, Data: EncodeScalar(3.75)}).Float64(); v != 3.75 {
		t.Fatalf("float64: %v", v)
	}
	if v := (Arg{Kind: ArgScalar, Data: EncodeScalar(42)}).Int(); v != 42 {
		t.Fatalf("int: %d", v)
	}
}

func TestScalarRoundTripProperty(t *testing.T) {
	checkF32 := func(f float32) bool {
		got := (Arg{Data: EncodeScalar(f)}).Float32()
		return got == f || (math.IsNaN(float64(got)) && math.IsNaN(float64(f)))
	}
	if err := quick.Check(checkF32, nil); err != nil {
		t.Fatal(err)
	}
	checkI64 := func(v int64) bool {
		return (Arg{Data: EncodeScalar(v)}).Int64() == v
	}
	if err := quick.Check(checkI64, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeScalarPanicsOnUnsupported(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EncodeScalar accepted a struct")
		}
	}()
	EncodeScalar(struct{}{})
}

func TestTypedViewsAliasBuffer(t *testing.T) {
	raw := make([]byte, 16)
	arg := BufferArg(raw)
	f := arg.Float32s()
	if len(f) != 4 {
		t.Fatalf("len = %d", len(f))
	}
	f[2] = 1.0
	if raw[8] == 0 && raw[9] == 0 && raw[10] == 0 && raw[11] == 0 {
		t.Fatal("write through view did not reach backing bytes")
	}
	if got := arg.Int32s()[2]; got != int32(math.Float32bits(1.0)) {
		t.Fatalf("int view = %d", got)
	}
	if len(arg.Float64s()) != 2 || len(arg.Uint32s()) != 4 || len(arg.Bytes()) != 16 {
		t.Fatal("view lengths wrong")
	}
	var empty Arg
	if empty.Float32s() != nil || empty.Int32s() != nil {
		t.Fatal("empty views must be nil")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	spec := &Spec{Name: "k", Func: func(*Item, []Arg) {}}
	if err := r.Register(spec); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(spec); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := r.Register(&Spec{Name: "", Func: spec.Func}); err == nil {
		t.Fatal("nameless spec accepted")
	}
	if err := r.Register(&Spec{Name: "f"}); err == nil {
		t.Fatal("functionless spec accepted")
	}
	got, err := r.Lookup("k")
	if err != nil || got != spec {
		t.Fatalf("Lookup: %v %v", got, err)
	}
	if _, err := r.Lookup("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if !r.Has("k") || r.Has("missing") {
		t.Fatal("Has broken")
	}
	r.MustRegister(&Spec{Name: "b", Func: spec.Func})
	names := r.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "k" {
		t.Fatalf("Names = %v", names)
	}
}

func TestMustRegisterPanics(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(&Spec{Name: "x", Func: func(*Item, []Arg) {}})
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister did not panic on duplicate")
		}
	}()
	r.MustRegister(&Spec{Name: "x", Func: func(*Item, []Arg) {}})
}

func TestNormalizeRange(t *testing.T) {
	g, l, err := NormalizeRange([]int{128, 4}, []int{16, 2})
	if err != nil {
		t.Fatal(err)
	}
	if g != [3]int{128, 4, 1} || l != [3]int{16, 2, 1} {
		t.Fatalf("g=%v l=%v", g, l)
	}
	if _, _, err := NormalizeRange([]int{10}, []int{3}); !errors.Is(err, ErrBadNDRange) {
		t.Fatalf("indivisible local accepted: %v", err)
	}
	if _, _, err := NormalizeRange(nil, nil); !errors.Is(err, ErrBadNDRange) {
		t.Fatal("empty global accepted")
	}
	if _, _, err := NormalizeRange([]int{0}, nil); !errors.Is(err, ErrBadNDRange) {
		t.Fatal("zero dimension accepted")
	}
	if _, _, err := NormalizeRange([]int{1, 1, 1, 1}, nil); !errors.Is(err, ErrBadNDRange) {
		t.Fatal("4D range accepted")
	}
}

// TestRunCoversEveryWorkItem launches a 3D range and checks each work-item
// ran exactly once with consistent IDs.
func TestRunCoversEveryWorkItem(t *testing.T) {
	const gx, gy, gz = 8, 6, 2
	hits := make([]int32, gx*gy*gz)
	spec := &Spec{
		Name: "cover",
		Func: func(it *Item, args []Arg) {
			x, y, z := it.GlobalID(0), it.GlobalID(1), it.GlobalID(2)
			// Work-item function identities must be self-consistent.
			if it.GroupID(0)*it.LocalSize(0)+it.LocalID(0) != x {
				panic("inconsistent x identity")
			}
			if it.GlobalSize(0) != gx || it.GlobalSize(1) != gy || it.GlobalSize(2) != gz {
				panic("wrong global size")
			}
			if it.NumGroups(0) != gx/4 {
				panic("wrong group count")
			}
			atomic.AddInt32(&hits[(z*gy+y)*gx+x], 1)
		},
	}
	err := Run(spec, Launch{Global: []int{gx, gy, gz}, Local: []int{4, 3, 1}, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("item %d ran %d times", i, h)
		}
	}
}

// TestBarrierReduction implements a work-group tree reduction that is only
// correct if Barrier synchronizes all items of the group.
func TestBarrierReduction(t *testing.T) {
	const groups, local = 4, 32
	in := make([]byte, 4*groups*local)
	argIn := BufferArg(in)
	for i, f := range argIn.Float32s() {
		_ = f
		argIn.Float32s()[i] = 1
	}
	out := BufferArg(make([]byte, 4*groups))

	spec := &Spec{
		Name:        "reduce",
		UsesBarrier: true,
		Func: func(it *Item, args []Arg) {
			scratch := args[2].Float32s()
			lid := it.LocalID(0)
			scratch[lid] = args[0].Float32s()[it.GlobalID(0)]
			it.Barrier()
			for stride := it.LocalSize(0) / 2; stride > 0; stride /= 2 {
				if lid < stride {
					scratch[lid] += scratch[lid+stride]
				}
				it.Barrier()
			}
			if lid == 0 {
				args[1].Float32s()[it.GroupID(0)] = scratch[0]
			}
		},
	}
	err := Run(spec, Launch{
		Global: []int{groups * local},
		Local:  []int{local},
		Args:   []Arg{argIn, out, LocalArg(4 * local)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for g, v := range out.Float32s() {
		if v != local {
			t.Fatalf("group %d sum = %v, want %d", g, v, local)
		}
	}
}

// TestLocalMemoryIsPerGroup ensures groups do not share local memory.
func TestLocalMemoryIsPerGroup(t *testing.T) {
	out := BufferArg(make([]byte, 4*8))
	spec := &Spec{
		Name: "localcheck",
		Func: func(it *Item, args []Arg) {
			scratch := args[1].Int32s()
			// Everything a previous group might have written must be gone.
			if scratch[0] != 0 {
				panic("local memory leaked between groups")
			}
			scratch[0] = int32(it.GroupID(0) + 1)
			args[0].Int32s()[it.GroupID(0)] = scratch[0]
		},
	}
	err := Run(spec, Launch{
		Global: []int{8},
		Local:  []int{1},
		Args:   []Arg{out, LocalArg(64)},
		// Sequential workers so a shared buffer would definitely leak.
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for g, v := range out.Int32s() {
		if v != int32(g+1) {
			t.Fatalf("group %d wrote %d", g, v)
		}
	}
}

func TestRunValidation(t *testing.T) {
	okFunc := func(*Item, []Arg) {}
	if err := Run(nil, Launch{Global: []int{1}}); !errors.Is(err, ErrBadArgs) {
		t.Fatal("nil spec accepted")
	}
	spec := &Spec{Name: "v", Func: okFunc, NumArgs: 2}
	if err := Run(spec, Launch{Global: []int{1}, Args: []Arg{BufferArg(nil)}}); !errors.Is(err, ErrBadArgs) {
		t.Fatal("wrong arg count accepted")
	}
	if err := Run(&Spec{Name: "v2", Func: okFunc}, Launch{
		Global: []int{1}, Args: []Arg{{Kind: ArgBuffer}},
	}); !errors.Is(err, ErrBadArgs) {
		t.Fatal("nil buffer accepted")
	}
	if err := Run(&Spec{Name: "v3", Func: okFunc}, Launch{
		Global: []int{1}, Args: []Arg{{Kind: ArgLocal}},
	}); !errors.Is(err, ErrBadArgs) {
		t.Fatal("zero local size accepted")
	}
	if err := Run(&Spec{Name: "v4", Func: okFunc, UsesBarrier: true}, Launch{
		Global: []int{8},
	}); !errors.Is(err, ErrBadNDRange) {
		t.Fatal("barrier kernel with local size 1 accepted")
	}
}

func TestRunRecoversKernelPanic(t *testing.T) {
	spec := &Spec{Name: "boom", Func: func(*Item, []Arg) { panic("kaboom") }}
	err := Run(spec, Launch{Global: []int{4}})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
}

func TestBarrierOutsideBarrierKernelPanics(t *testing.T) {
	spec := &Spec{Name: "misuse", Func: func(it *Item, _ []Arg) { it.Barrier() }}
	err := Run(spec, Launch{Global: []int{2}})
	if err == nil || !strings.Contains(err.Error(), "Barrier") {
		t.Fatalf("err = %v", err)
	}
}

func TestDefaultCost(t *testing.T) {
	spec := &Spec{Name: "c", Func: func(*Item, []Arg) {}}
	c := spec.CostOf([3]int{10, 4, 2}, nil)
	if c.Flops != 80 || c.Bytes != 0 {
		t.Fatalf("default cost = %+v", c)
	}
	spec.Cost = func(g [3]int, _ []Arg) Cost { return Cost{Flops: 1, Bytes: 2} }
	if c := spec.CostOf([3]int{1, 1, 1}, nil); c.Flops != 1 || c.Bytes != 2 {
		t.Fatalf("custom cost ignored: %+v", c)
	}
}
