// Package kernel implements HaoCL's kernel runtime: the registry that maps
// kernel names to executable implementations, the typed argument system used
// by clSetKernelArg, and an NDRange executor with OpenCL work-group,
// barrier and local-memory semantics.
//
// Kernels execute functionally as Go work-item functions. Each registered
// kernel also carries an analytic cost model (floating-point operations and
// bytes of memory traffic) that the simulated devices translate into
// virtual-time durations — the functional result is real, the reported
// duration comes from the device model (see DESIGN.md §1).
package kernel

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// ArgKind tags the flavor of one bound kernel argument.
type ArgKind uint8

// Argument kinds, mirroring protocol.ArgKind.
const (
	ArgBuffer ArgKind = iota + 1
	ArgScalar
	ArgLocal
)

// Arg is one kernel argument as seen by a work-item function. Buffer and
// local arguments expose their backing bytes through typed views; scalar
// arguments decode little-endian payloads.
type Arg struct {
	Kind ArgKind
	// Data backs buffer and local arguments.
	Data []byte
	// LocalLen is the requested per-work-group local memory size.
	LocalLen int
}

// BufferArg wraps backing storage as a global-memory argument.
func BufferArg(data []byte) Arg { return Arg{Kind: ArgBuffer, Data: data} }

// LocalArg requests n bytes of per-work-group local memory.
func LocalArg(n int) Arg { return Arg{Kind: ArgLocal, LocalLen: n} }

// ScalarArg encodes v as a by-value argument. Supported types: all
// fixed-size integers, float32/float64, and raw []byte.
func ScalarArg(v any) Arg {
	return Arg{Kind: ArgScalar, Data: EncodeScalar(v)}
}

// EncodeScalar converts a Go scalar to its little-endian OpenCL
// representation. It panics on unsupported types: argument encoding happens
// at clSetKernelArg time with caller-controlled static types, so a bad type
// is a programming error, not input.
func EncodeScalar(v any) []byte {
	switch x := v.(type) {
	case int32:
		b := make([]byte, 4)
		binary.LittleEndian.PutUint32(b, uint32(x))
		return b
	case uint32:
		b := make([]byte, 4)
		binary.LittleEndian.PutUint32(b, x)
		return b
	case int:
		b := make([]byte, 4)
		binary.LittleEndian.PutUint32(b, uint32(int32(x)))
		return b
	case int64:
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(x))
		return b
	case uint64:
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, x)
		return b
	case float32:
		b := make([]byte, 4)
		binary.LittleEndian.PutUint32(b, math.Float32bits(x))
		return b
	case float64:
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, math.Float64bits(x))
		return b
	case []byte:
		out := make([]byte, len(x))
		copy(out, x)
		return out
	default:
		panic(fmt.Sprintf("kernel: unsupported scalar type %T", v))
	}
}

// Int returns a 4-byte scalar argument as an int.
func (a Arg) Int() int { return int(int32(binary.LittleEndian.Uint32(a.Data))) }

// Uint32 returns a 4-byte scalar argument as a uint32.
func (a Arg) Uint32() uint32 { return binary.LittleEndian.Uint32(a.Data) }

// Int64 returns an 8-byte scalar argument as an int64.
func (a Arg) Int64() int64 { return int64(binary.LittleEndian.Uint64(a.Data)) }

// Float32 returns a 4-byte scalar argument as a float32.
func (a Arg) Float32() float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(a.Data))
}

// Float64 returns an 8-byte scalar argument as a float64.
func (a Arg) Float64() float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(a.Data))
}

// Float32s views the argument's backing bytes as a float32 slice. The view
// aliases device memory; writes through it are writes to the buffer.
func (a Arg) Float32s() []float32 {
	if len(a.Data) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&a.Data[0])), len(a.Data)/4)
}

// Float64s views the backing bytes as a float64 slice.
func (a Arg) Float64s() []float64 {
	if len(a.Data) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&a.Data[0])), len(a.Data)/8)
}

// Int32s views the backing bytes as an int32 slice.
func (a Arg) Int32s() []int32 {
	if len(a.Data) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&a.Data[0])), len(a.Data)/4)
}

// Uint32s views the backing bytes as a uint32 slice.
func (a Arg) Uint32s() []uint32 {
	if len(a.Data) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&a.Data[0])), len(a.Data)/4)
}

// Bytes returns the raw backing bytes.
func (a Arg) Bytes() []byte { return a.Data }
