package kernel

import (
	"testing"
)

// BenchmarkNDRangeExecutor measures the per-work-item dispatch overhead of
// the functional executor on a trivial kernel.
func BenchmarkNDRangeExecutor(b *testing.B) {
	buf := BufferArg(make([]byte, 4*4096))
	spec := &Spec{
		Name: "bench",
		Func: func(it *Item, args []Arg) {
			args[0].Float32s()[it.GlobalID(0)] += 1
		},
	}
	launch := Launch{Global: []int{4096}, Local: []int{64}, Args: []Arg{buf}, Workers: 1}
	b.SetBytes(4 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Run(spec, launch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBarrierExecutor measures the goroutine-per-item barrier path.
func BenchmarkBarrierExecutor(b *testing.B) {
	buf := BufferArg(make([]byte, 4*256))
	spec := &Spec{
		Name:        "bench-barrier",
		UsesBarrier: true,
		Func: func(it *Item, args []Arg) {
			scratch := args[1].Float32s()
			scratch[it.LocalID(0)] = 1
			it.Barrier()
			if it.LocalID(0) == 0 {
				args[0].Float32s()[it.GroupID(0)] = scratch[0]
			}
		},
	}
	launch := Launch{
		Global: []int{256}, Local: []int{32},
		Args:    []Arg{buf, LocalArg(4 * 32)},
		Workers: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Run(spec, launch); err != nil {
			b.Fatal(err)
		}
	}
}
