package kernel

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Cost is the analytic execution cost of one kernel launch, consumed by the
// device performance models (internal/sim): a device's modeled duration is
// max(Flops/peak, Bytes/bandwidth) plus launch overhead.
type Cost struct {
	Flops int64 // floating-point (or equivalent integer) operations
	Bytes int64 // global-memory traffic in bytes
	// Items is the launch's work-item count, set by the runtime; device
	// models use it for occupancy derating (a 16-item launch cannot fill
	// a 2560-lane GPU regardless of its arithmetic).
	Items int64
}

// CostFunc computes a launch's cost from its global NDRange and bound
// arguments. global always has three entries (padded with 1s).
type CostFunc func(global [3]int, args []Arg) Cost

// Func is one kernel's work-item function: the body executed once per
// work-item, exactly like the body of an OpenCL C kernel.
type Func func(it *Item, args []Arg)

// Spec describes one executable kernel registered with a driver.
type Spec struct {
	// Name matches the __kernel function name in program source.
	Name string
	// Func is the work-item body.
	Func Func
	// Cost models the launch for the device simulators. When nil, a
	// default of one flop and zero traffic per work-item is used.
	Cost CostFunc
	// UsesBarrier declares that the kernel calls Item.Barrier. Work-items
	// of a group then run as synchronized goroutines instead of a loop.
	UsesBarrier bool
	// NumArgs is the expected argument count, validated at launch.
	NumArgs int
}

// CostOf evaluates the kernel's cost model.
func (s *Spec) CostOf(global [3]int, args []Arg) Cost {
	items := int64(global[0]) * int64(global[1]) * int64(global[2])
	if s.Cost != nil {
		c := s.Cost(global, args)
		c.Items = items
		return c
	}
	return Cost{Flops: items, Items: items}
}

// Registry maps kernel names to executable specs. It plays the role of the
// device's kernel binary store: the paper's FPGA nodes only run pre-built
// bitstreams selected by name (§III-D), and the simulated CPU/GPU drivers
// reuse the same mechanism.
type Registry struct {
	mu    sync.RWMutex
	specs map[string]*Spec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: make(map[string]*Spec)}
}

// ErrNotFound reports a kernel name with no registered implementation.
var ErrNotFound = errors.New("kernel: not registered")

// Register adds spec to the registry. Re-registering a name is an error:
// two implementations for one kernel would make results driver-dependent.
func (r *Registry) Register(spec *Spec) error {
	if spec == nil || spec.Name == "" || spec.Func == nil {
		return errors.New("kernel: spec must have a name and a function")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.specs[spec.Name]; ok {
		return fmt.Errorf("kernel: %q already registered", spec.Name)
	}
	r.specs[spec.Name] = spec
	return nil
}

// MustRegister is Register that panics on error, for use at program setup.
func (r *Registry) MustRegister(spec *Spec) {
	if err := r.Register(spec); err != nil {
		panic(err)
	}
}

// Lookup finds the named kernel.
func (r *Registry) Lookup(name string) (*Spec, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	spec, ok := r.specs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return spec, nil
}

// Has reports whether name is registered.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.specs[name]
	return ok
}

// Names lists registered kernel names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.specs))
	for n := range r.specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
