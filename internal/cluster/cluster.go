// Package cluster describes HaoCL cluster topology: the host node plus the
// set of device nodes, their addresses, and the devices each node exports.
//
// The host process "reads the address and port defined in a system
// configuration file and creates a message and a data listener for each
// node" (paper §III-C); this package is that configuration file's schema
// and loader.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/sim"
)

// DeviceSpec is one device entry in a node's configuration.
type DeviceSpec struct {
	// Type is "cpu", "gpu" or "fpga".
	Type string `json:"type"`
	// Model selects a driver preset; empty uses the type's default
	// (the paper's testbed hardware).
	Model string `json:"model,omitempty"`
	// Shared permits concurrent users on the device.
	Shared bool `json:"shared,omitempty"`
	// Bitstreams lists the pre-built kernels available on FPGA devices.
	Bitstreams []string `json:"bitstreams,omitempty"`
}

// NodeSpec is one device node.
type NodeSpec struct {
	Name    string       `json:"name"`
	Addr    string       `json:"addr"`
	Devices []DeviceSpec `json:"devices"`
}

// Config is a full cluster description.
type Config struct {
	// UserID identifies this host's user to the NMPs.
	UserID string     `json:"user,omitempty"`
	Nodes  []NodeSpec `json:"nodes"`
}

// ParseType converts a config type string to a device type.
func ParseType(s string) (device.Type, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "cpu":
		return protocol.DeviceCPU, nil
	case "gpu":
		return protocol.DeviceGPU, nil
	case "fpga":
		return protocol.DeviceFPGA, nil
	default:
		return 0, fmt.Errorf("cluster: unknown device type %q", s)
	}
}

// Validate checks the configuration for structural problems.
func (c *Config) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster: no nodes configured")
	}
	names := make(map[string]bool, len(c.Nodes))
	addrs := make(map[string]bool, len(c.Nodes))
	for i, n := range c.Nodes {
		if n.Name == "" {
			return fmt.Errorf("cluster: node %d has no name", i)
		}
		if names[n.Name] {
			return fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		names[n.Name] = true
		if n.Addr == "" {
			return fmt.Errorf("cluster: node %q has no address", n.Name)
		}
		if addrs[n.Addr] {
			return fmt.Errorf("cluster: duplicate node address %q", n.Addr)
		}
		addrs[n.Addr] = true
		if len(n.Devices) == 0 {
			return fmt.Errorf("cluster: node %q has no devices", n.Name)
		}
		for j, d := range n.Devices {
			if _, err := ParseType(d.Type); err != nil {
				return fmt.Errorf("cluster: node %q device %d: %w", n.Name, j, err)
			}
		}
	}
	return nil
}

// DeviceConfigs converts a node's device specs to driver configurations,
// assigning node-local IDs in declaration order (1-based).
func (n *NodeSpec) DeviceConfigs() ([]device.Config, error) {
	out := make([]device.Config, 0, len(n.Devices))
	for i, d := range n.Devices {
		t, err := ParseType(d.Type)
		if err != nil {
			return nil, fmt.Errorf("node %q: %w", n.Name, err)
		}
		out = append(out, device.Config{
			Driver:     sim.DriverForType(t),
			Model:      d.Model,
			ID:         uint32(i + 1),
			Shared:     d.Shared,
			Bitstreams: d.Bitstreams,
		})
	}
	return out, nil
}

// Parse decodes a JSON configuration.
func Parse(data []byte) (*Config, error) {
	var c Config
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("cluster: parse config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Load reads and parses a configuration file.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return Parse(data)
}

// Synthetic builds an in-memory configuration with the requested number of
// GPU and FPGA nodes (plus optional CPU nodes), mirroring the paper's
// evaluation clusters: "16 GPU nodes and 4 FPGA nodes are involved in our
// evaluations" (§IV-A). Addresses are symbolic; the caller binds them on a
// MemNetwork or rewrites them for TCP.
func Synthetic(user string, cpuNodes, gpuNodes, fpgaNodes int, bitstreams []string) *Config {
	cfg := &Config{UserID: user}
	for i := 0; i < cpuNodes; i++ {
		cfg.Nodes = append(cfg.Nodes, NodeSpec{
			Name:    fmt.Sprintf("cpu-%02d", i),
			Addr:    fmt.Sprintf("mem://cpu-%02d", i),
			Devices: []DeviceSpec{{Type: "cpu", Shared: true}},
		})
	}
	for i := 0; i < gpuNodes; i++ {
		cfg.Nodes = append(cfg.Nodes, NodeSpec{
			Name:    fmt.Sprintf("gpu-%02d", i),
			Addr:    fmt.Sprintf("mem://gpu-%02d", i),
			Devices: []DeviceSpec{{Type: "gpu", Shared: true}},
		})
	}
	for i := 0; i < fpgaNodes; i++ {
		cfg.Nodes = append(cfg.Nodes, NodeSpec{
			Name:    fmt.Sprintf("fpga-%02d", i),
			Addr:    fmt.Sprintf("mem://fpga-%02d", i),
			Devices: []DeviceSpec{{Type: "fpga", Shared: true, Bitstreams: bitstreams}},
		})
	}
	return cfg
}
