package cluster

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/sim"
)

const sampleConfig = `{
  "user": "alice",
  "nodes": [
    {"name": "gpu-00", "addr": "10.0.0.1:7010", "devices": [{"type": "gpu"}]},
    {"name": "gpu-01", "addr": "10.0.0.2:7010", "devices": [{"type": "gpu", "shared": true}]},
    {"name": "fpga-00", "addr": "10.0.0.3:7010", "devices": [
      {"type": "fpga", "model": "vu9p", "bitstreams": ["matmul", "spmv_csr"]}
    ]},
    {"name": "mixed", "addr": "10.0.0.4:7010", "devices": [
      {"type": "cpu"}, {"type": "gpu"}
    ]}
  ]
}`

func TestParseConfig(t *testing.T) {
	cfg, err := Parse([]byte(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.UserID != "alice" || len(cfg.Nodes) != 4 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if !cfg.Nodes[1].Devices[0].Shared {
		t.Fatal("shared flag lost")
	}
	if cfg.Nodes[2].Devices[0].Bitstreams[1] != "spmv_csr" {
		t.Fatal("bitstreams lost")
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"nodes": [{"name":"a","addr":"x","devices":[{"type":"gpu"}],"bogus":1}]}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]string{
		"no nodes":     `{"nodes": []}`,
		"missing name": `{"nodes": [{"addr": "x:1", "devices": [{"type":"gpu"}]}]}`,
		"dup name":     `{"nodes": [{"name":"a","addr":"x:1","devices":[{"type":"gpu"}]},{"name":"a","addr":"x:2","devices":[{"type":"gpu"}]}]}`,
		"missing addr": `{"nodes": [{"name":"a","devices":[{"type":"gpu"}]}]}`,
		"dup addr":     `{"nodes": [{"name":"a","addr":"x:1","devices":[{"type":"gpu"}]},{"name":"b","addr":"x:1","devices":[{"type":"gpu"}]}]}`,
		"no devices":   `{"nodes": [{"name":"a","addr":"x:1","devices":[]}]}`,
		"bad type":     `{"nodes": [{"name":"a","addr":"x:1","devices":[{"type":"tpu"}]}]}`,
	}
	for label, raw := range cases {
		if _, err := Parse([]byte(raw)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(path, []byte(sampleConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(cfg.Nodes))
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestParseType(t *testing.T) {
	for in, want := range map[string]protocol.DeviceType{
		"cpu": protocol.DeviceCPU, "GPU": protocol.DeviceGPU, " fpga ": protocol.DeviceFPGA,
	} {
		got, err := ParseType(in)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseType("quantum"); err == nil {
		t.Fatal("bad type accepted")
	}
}

func TestDeviceConfigs(t *testing.T) {
	cfg, err := Parse([]byte(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	mixed := cfg.Nodes[3]
	dcs, err := mixed.DeviceConfigs()
	if err != nil {
		t.Fatal(err)
	}
	if len(dcs) != 2 {
		t.Fatalf("configs = %v", dcs)
	}
	if dcs[0].Driver != sim.DriverCPU || dcs[1].Driver != sim.DriverGPU {
		t.Fatalf("drivers = %s, %s", dcs[0].Driver, dcs[1].Driver)
	}
	if dcs[0].ID != 1 || dcs[1].ID != 2 {
		t.Fatalf("IDs = %d, %d (want 1-based positions)", dcs[0].ID, dcs[1].ID)
	}
	fpga := cfg.Nodes[2]
	fdcs, err := fpga.DeviceConfigs()
	if err != nil {
		t.Fatal(err)
	}
	if fdcs[0].Model != "vu9p" || len(fdcs[0].Bitstreams) != 2 {
		t.Fatalf("fpga config = %+v", fdcs[0])
	}
}

func TestSynthetic(t *testing.T) {
	cfg := Synthetic("bench", 1, 16, 4, []string{"k1"})
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Nodes) != 21 {
		t.Fatalf("nodes = %d, want 21", len(cfg.Nodes))
	}
	var cpus, gpus, fpgas int
	for _, n := range cfg.Nodes {
		switch n.Devices[0].Type {
		case "cpu":
			cpus++
		case "gpu":
			gpus++
		case "fpga":
			fpgas++
			if len(n.Devices[0].Bitstreams) != 1 {
				t.Fatal("bitstreams not propagated")
			}
		}
	}
	if cpus != 1 || gpus != 16 || fpgas != 4 {
		t.Fatalf("mix = %d/%d/%d", cpus, gpus, fpgas)
	}
}
