package protocol

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// subFramesEqual compares two frame slices field by field.
func subFramesEqual(a, b []*Frame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].ReqID != b[i].ReqID || a[i].Op != b[i].Op ||
			!bytes.Equal(a[i].Body, b[i].Body) {
			return false
		}
	}
	return true
}

// batchRoundTrip encodes subs into an envelope, ships it through
// WriteFrame/ReadFrame, and decodes it back.
func batchRoundTrip(t *testing.T, subs []*Frame) []*Frame {
	t.Helper()
	env, err := EncodeBatch(subs)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if env.Kind != FrameBatch || env.Op != OpBatch {
		t.Fatalf("envelope = kind %d op %s", env.Kind, env.Op)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Batch frames are stamped with the v3 version byte; plain frames
	// keep v2 so pre-batching peers accept them.
	if v := buf.Bytes()[2]; v != VersionBatch {
		t.Fatalf("envelope version byte = %d, want %d", v, VersionBatch)
	}
	read, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	out, err := DecodeBatch(read)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func TestBatchRoundTripEmpty(t *testing.T) {
	out := batchRoundTrip(t, nil)
	if len(out) != 0 {
		t.Fatalf("decoded %d sub-frames from empty batch", len(out))
	}
}

func TestBatchRoundTripSingle(t *testing.T) {
	subs := []*Frame{{Kind: FrameRequest, ReqID: 7, Op: OpEnqueueKernel, Body: []byte("launch")}}
	if out := batchRoundTrip(t, subs); !subFramesEqual(subs, out) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestBatchRoundTripMixed(t *testing.T) {
	// Requests and responses of different ops, empty and non-empty
	// bodies, in one envelope; order must be preserved exactly.
	subs := []*Frame{
		{Kind: FrameRequest, ReqID: 1, Op: OpWriteBuffer, Body: bytes.Repeat([]byte{0xAB}, 512)},
		{Kind: FrameRequest, ReqID: 2, Op: OpEnqueueKernel, Body: []byte{1}},
		{Kind: FrameResponse, ReqID: 1, Op: OpWriteBuffer},
		{Kind: FrameResponse, ReqID: 3, Op: OpError, Body: []byte("boom")},
		{Kind: FrameRequest, ReqID: 4, Op: OpFinishQueue, Body: []byte{9, 9}},
	}
	if out := batchRoundTrip(t, subs); !subFramesEqual(subs, out) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestBatchRoundTripMaxSize(t *testing.T) {
	// The largest envelope a coalescing writer produces: MaxBatchMessages
	// sub-frames, each at the batchable body limit.
	subs := make([]*Frame, MaxBatchMessages)
	for i := range subs {
		body := make([]byte, BatchableBodyLimit)
		for j := range body {
			body[j] = byte(i * j)
		}
		subs[i] = &Frame{Kind: FrameRequest, ReqID: uint64(i + 1), Op: OpWriteBuffer, Body: body}
	}
	if out := batchRoundTrip(t, subs); !subFramesEqual(subs, out) {
		t.Fatal("max-size round trip mismatch")
	}
}

func TestBatchRejectsNested(t *testing.T) {
	inner, err := EncodeBatch([]*Frame{{Kind: FrameRequest, ReqID: 1, Op: OpHello}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeBatch([]*Frame{inner}); !errors.Is(err, ErrNestedBatch) {
		t.Fatalf("encode nested: err = %v", err)
	}
	// A hand-built envelope containing a batch sub-frame must be rejected
	// on decode too.
	e := NewEncoder()
	e.U32(1)
	e.U8(uint8(FrameBatch))
	e.U64(1)
	e.U16(uint16(OpBatch))
	e.Blob(nil)
	f := &Frame{Kind: FrameBatch, Op: OpBatch, Body: e.Bytes()}
	if _, err := DecodeBatch(f); !errors.Is(err, ErrNestedBatch) {
		t.Fatalf("decode nested: err = %v", err)
	}
}

func TestDecodeBatchRejectsGarbage(t *testing.T) {
	cases := map[string]*Frame{
		"not a batch":   {Kind: FrameRequest, Op: OpHello},
		"hostile count": {Kind: FrameBatch, Op: OpBatch, Body: []byte{0xFF, 0xFF, 0xFF, 0xFF}},
		"short body":    {Kind: FrameBatch, Op: OpBatch, Body: []byte{0, 0, 0, 2, 1}},
		"empty buffer":  {Kind: FrameBatch, Op: OpBatch},
	}
	for name, f := range cases {
		if _, err := DecodeBatch(f); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}

	// Trailing garbage after the counted sub-frames is an error: the
	// envelope must parse exactly or the connection's framing is suspect.
	env, err := EncodeBatch([]*Frame{{Kind: FrameRequest, ReqID: 1, Op: OpHello}})
	if err != nil {
		t.Fatal(err)
	}
	env.Body = append(env.Body, 0xEE)
	if _, err := DecodeBatch(env); !errors.Is(err, ErrBadBatch) {
		t.Fatalf("trailing bytes: err = %v", err)
	}
}

func TestDecodeBatchTruncations(t *testing.T) {
	subs := []*Frame{
		{Kind: FrameRequest, ReqID: 5, Op: OpWriteBuffer, Body: []byte{1, 2, 3, 4, 5}},
		{Kind: FrameResponse, ReqID: 6, Op: OpReadBuffer, Body: []byte{6}},
	}
	env, err := EncodeBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(env.Body); cut++ {
		f := &Frame{Kind: FrameBatch, Op: OpBatch, Body: env.Body[:cut]}
		if _, err := DecodeBatch(f); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}

// TestBatchPropertyRoundTrip round-trips randomized envelopes.
func TestBatchPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 200; round++ {
		subs := make([]*Frame, rng.Intn(MaxBatchMessages+1))
		for i := range subs {
			var body []byte
			if n := rng.Intn(256); n > 0 {
				body = make([]byte, n)
				rng.Read(body)
			}
			kind := FrameRequest
			if rng.Intn(2) == 0 {
				kind = FrameResponse
			}
			subs[i] = &Frame{Kind: kind, ReqID: rng.Uint64(), Op: Op(rng.Intn(64)), Body: body}
		}
		if out := batchRoundTrip(t, subs); !subFramesEqual(subs, out) {
			t.Fatalf("round %d mismatch", round)
		}
	}
}

// FuzzDecodeFrame feeds arbitrary bytes through the full frame pipeline —
// ReadFrame, and DecodeBatch when the frame claims to be an envelope — and
// requires clean errors, never panics or hangs. It runs its seed corpus
// under plain `go test`.
func FuzzDecodeFrame(f *testing.F) {
	// Seeds: valid plain frame, valid envelope, and classic corruptions.
	plain, err := AppendFrame(nil, &Frame{Kind: FrameRequest, ReqID: 3, Op: OpHello, Body: []byte("hi")})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(plain)
	env, err := EncodeBatch([]*Frame{
		{Kind: FrameRequest, ReqID: 1, Op: OpWriteBuffer, Body: []byte{1, 2, 3}},
		{Kind: FrameResponse, ReqID: 2, Op: OpError, Body: []byte("x")},
	})
	if err != nil {
		f.Fatal(err)
	}
	envBytes, err := AppendFrame(nil, env)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(envBytes)
	f.Add(envBytes[:len(envBytes)-3]) // truncated body
	f.Add([]byte{})
	f.Add([]byte{0xDE, 0xAD})                           // bad magic
	f.Add(append([]byte{0x48, 0x41, 99}, plain[3:]...)) // bad version
	// P2p data-plane frames: a PushRange command and a truncated variant.
	pushFrame, err := AppendFrame(nil, &Frame{Kind: FrameRequest, ReqID: 9, Op: OpPushRange,
		Body: EncodeMessage(&PushRangeReq{QueueID: 1, BufferID: 2, PeerName: "gpu-1",
			PeerBufferID: 3, Token: 4, Size: 64, WaitEvents: []int64{5}})})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pushFrame)
	f.Add(pushFrame[:len(pushFrame)-5])
	// Session-era frames: a rejoin hello with an epoch and a context
	// request carrying the appended tenant identity, plus a truncation
	// that lands inside the tenant string.
	sessHello, err := AppendFrame(nil, &Frame{Kind: FrameRequest, ReqID: 11, Op: OpHello,
		Body: EncodeMessage(&HelloReq{UserID: "u", WireVersion: Version, Epoch: 3,
			Peers: []PeerAddr{{Name: "gpu-0", Addr: "mem://gpu-0"}}})})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sessHello)
	sessCtx, err := AppendFrame(nil, &Frame{Kind: FrameRequest, ReqID: 12, Op: OpCreateContext,
		Body: EncodeMessage(&CreateContextReq{DeviceIDs: []int64{1, 2}, SessionID: 7, Tenant: "team-a"})})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sessCtx)
	f.Add(sessCtx[:len(sessCtx)-4])

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if fr.Kind != FrameBatch {
			return
		}
		subs, err := DecodeBatch(fr)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same frames:
		// the codec is self-consistent on its accepted inputs.
		env, err := EncodeBatch(subs)
		if err != nil {
			t.Fatalf("re-encode of decoded batch failed: %v", err)
		}
		again, err := DecodeBatch(env)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !subFramesEqual(subs, again) {
			t.Fatal("re-round-trip mismatch")
		}
	})
}

// FuzzDecodeMessage shreds arbitrary bodies against every request decoder
// the node dispatch feeds, mirroring what a hostile batched peer can ship.
func FuzzDecodeMessage(f *testing.F) {
	f.Add(uint16(OpWriteBuffer), EncodeMessage(&WriteBufferReq{QueueID: 1, Data: []byte{1, 2}}))
	f.Add(uint16(OpEnqueueKernel), EncodeMessage(&EnqueueKernelReq{QueueID: 1, Global: []int64{8}}))
	f.Add(uint16(OpHello), EncodeMessage(&HelloReq{UserID: "u", WireVersion: Version,
		Peers: []PeerAddr{{Name: "gpu-0", Addr: "10.0.0.1:7010"}}}))
	f.Add(uint16(OpPushRange), EncodeMessage(&PushRangeReq{QueueID: 1, BufferID: 2,
		PeerName: "gpu-1", PeerBufferID: 3, Token: 4, Offset: 8, Size: 64, WaitEvents: []int64{5}}))
	f.Add(uint16(OpPeerPush), EncodeMessage(&PeerPushReq{Token: 4, Data: []byte{1, 2, 3}}))
	f.Add(uint16(OpAwaitPush), EncodeMessage(&AwaitPushReq{QueueID: 1, BufferID: 2, Token: 4, Size: 64}))
	f.Add(uint16(OpCancelPush), EncodeMessage(&CancelPushReq{Token: 4, Reason: "gone"}))
	f.Add(uint16(OpHello), EncodeMessage(&HelloReq{UserID: "u", WireVersion: Version, Epoch: 3}))
	f.Add(uint16(OpCreateContext), EncodeMessage(&CreateContextReq{
		DeviceIDs: []int64{1, 2}, SessionID: 7, Tenant: "team-a"}))
	f.Fuzz(func(t *testing.T, op uint16, body []byte) {
		var msgs = []Message{
			&HelloReq{}, &HelloResp{}, &GetDeviceInfosReq{}, &GetDeviceInfosResp{},
			&CreateContextReq{}, &CreateQueueReq{}, &CreateBufferReq{},
			&WriteBufferReq{}, &ReadBufferReq{}, &ReadBufferResp{}, &CopyBufferReq{},
			&BuildProgramReq{}, &BuildProgramResp{}, &CreateKernelReq{},
			&EnqueueKernelReq{}, &FinishQueueReq{}, &QueryEventReq{},
			&ReleaseReq{}, &NodeStatusResp{}, &ErrorResp{},
			&PushRangeReq{}, &PeerPushReq{}, &AwaitPushReq{}, &CancelPushReq{},
		}
		m := msgs[int(op)%len(msgs)]
		_ = DecodeMessage(m, body) // must not panic
	})
}
