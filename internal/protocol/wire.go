// Package protocol defines the binary wire protocol spoken between the
// HaoCL host runtime and the Node Management Processes (NMPs) on device
// nodes.
//
// Every OpenCL API call issued by an application is packaged by the wrapper
// library into exactly one request message that carries the function
// identity and its arguments (paper §III-B); bulk buffer contents travel in
// the same frame as the request or response body. Frames are
// length-prefixed so listeners can read them asynchronously without
// knowing message internals (paper §III-C).
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
)

// Protocol limits. MaxFrameSize bounds a single message so a corrupted
// length prefix cannot make a listener allocate unbounded memory.
const (
	// Magic identifies a HaoCL frame; the accidental-connection case
	// (something else dialing the NMP port) fails fast.
	Magic = 0x4841 // "HA"

	// Version is the highest wire protocol version this build speaks.
	// Version 2 added host-assigned event IDs to the enqueue requests,
	// the basis of command pipelining; version 3 added the Batch frame
	// that coalesces small control messages. Peers negotiate the working
	// version in the Hello handshake (min of both sides) and fall back to
	// the v2 one-frame-per-message path against older peers.
	Version = 3

	// MinVersion is the oldest version this build interoperates with.
	MinVersion = 2

	// VersionBatch is the first version whose peers understand Batch
	// envelopes; the host only coalesces after negotiating at least this.
	VersionBatch = 3

	// MaxFrameSize is the largest permitted frame body (1 GiB), sized to
	// hold the largest Table I benchmark input with headroom.
	MaxFrameSize = 1 << 30

	headerSize = 2 + 1 + 1 + 8 + 2 + 4 // magic, version, kind, reqID, op, length
)

// FrameKind distinguishes requests from responses on a connection.
type FrameKind uint8

// Frame kinds. FrameBatch (wire v3) envelopes a sequence of request or
// response frames in one wire frame; see EncodeBatch.
const (
	FrameRequest FrameKind = iota + 1
	FrameResponse
	FrameBatch
)

// frameVersion is the version byte stamped on a frame: the minimum wire
// version able to decode that frame kind. Plain frames carry MinVersion so
// a v2 peer accepts them before and after negotiation; Batch frames carry
// VersionBatch and are only sent once the peer has negotiated v3.
func frameVersion(k FrameKind) byte {
	if k == FrameBatch {
		return VersionBatch
	}
	return MinVersion
}

// Errors returned by the framing layer.
var (
	ErrBadMagic     = errors.New("protocol: bad frame magic")
	ErrBadVersion   = errors.New("protocol: wire version mismatch")
	ErrFrameTooBig  = errors.New("protocol: frame exceeds size limit")
	ErrShortMessage = errors.New("protocol: truncated message body")
)

// Frame is one unit on the wire: a request or response envelope plus an
// opcode-specific body.
type Frame struct {
	Kind  FrameKind
	ReqID uint64
	Op    Op
	Body  []byte
}

// FrameWireSize reports the bytes f occupies on the wire (header + body),
// the unit coalescing writers budget their queues in.
func FrameWireSize(f *Frame) int { return headerSize + len(f.Body) }

// appendHeader appends f's frame header to buf.
func appendHeader(buf []byte, f *Frame) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, headerSize)...)
	binary.BigEndian.PutUint16(buf[off:off+2], Magic)
	buf[off+2] = frameVersion(f.Kind)
	buf[off+3] = byte(f.Kind)
	binary.BigEndian.PutUint64(buf[off+4:off+12], f.ReqID)
	binary.BigEndian.PutUint16(buf[off+12:off+14], uint16(f.Op))
	binary.BigEndian.PutUint32(buf[off+14:off+18], uint32(len(f.Body)))
	return buf
}

// AppendFrame appends f's wire encoding (header + body) to buf and returns
// the extended slice, so a coalescing writer can stack several frames into
// one buffer and hand them to a single Write call.
func AppendFrame(buf []byte, f *Frame) ([]byte, error) {
	if len(f.Body) > MaxFrameSize {
		return buf, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, len(f.Body))
	}
	return append(appendHeader(buf, f), f.Body...), nil
}

// WriteFrameTo writes f without copying its body, using vectored I/O when
// w supports it (net.Buffers uses writev on real sockets). Coalescing
// writers use it for bulk frames, where WriteFrame's single-buffer copy
// would double the payload's memory footprint for no syscall win.
func WriteFrameTo(w io.Writer, f *Frame) error {
	if len(f.Body) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, len(f.Body))
	}
	hdr := appendHeader(make([]byte, 0, headerSize), f)
	if len(f.Body) == 0 {
		_, err := w.Write(hdr)
		return err
	}
	bufs := net.Buffers{hdr, f.Body}
	_, err := bufs.WriteTo(w)
	return err
}

// WriteFrame serializes f to w with the fixed header. The body is written
// in the same syscall batch as the header via a single buffer to keep the
// backbone's per-message overhead low.
func WriteFrame(w io.Writer, f *Frame) error {
	buf, err := AppendFrame(make([]byte, 0, headerSize+len(f.Body)), f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame from r, validating magic, version and size.
// Any version in [MinVersion, Version] is accepted: plain frames are
// identical across both, and Batch frames only arrive from peers that
// negotiated v3.
func ReadFrame(r io.Reader) (*Frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint16(hdr[0:2]) != Magic {
		return nil, ErrBadMagic
	}
	if hdr[2] < MinVersion || hdr[2] > Version {
		return nil, fmt.Errorf("%w: got %d want %d through %d", ErrBadVersion, hdr[2], MinVersion, Version)
	}
	f := &Frame{
		Kind:  FrameKind(hdr[3]),
		ReqID: binary.BigEndian.Uint64(hdr[4:12]),
		Op:    Op(binary.BigEndian.Uint16(hdr[12:14])),
	}
	n := binary.BigEndian.Uint32(hdr[14:18])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	if n > 0 {
		f.Body = make([]byte, n)
		if _, err := io.ReadFull(r, f.Body); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Encoder appends primitive values to a message body. All integers are
// big-endian. Strings and byte slices are length-prefixed with uint32.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with capacity pre-sized for small control
// messages; bulk-data messages grow it once.
func NewEncoder() *Encoder { return &Encoder{buf: make([]byte, 0, 64)} }

// Bytes returns the encoded body. The returned slice aliases the encoder's
// buffer; callers hand it straight to WriteFrame.
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 appends a uint8.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a uint16.
func (e *Encoder) U16(v uint16) {
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
}

// U32 appends a uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// U64 appends a uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// I64 appends an int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Ints appends a length-prefixed slice of int64 values.
func (e *Encoder) Ints(vs []int64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.I64(v)
	}
}

// Decoder consumes primitive values from a message body. Decoding errors
// are sticky: after the first failure every subsequent read reports the
// original error, so message UnmarshalBody methods can decode
// unconditionally and check the error once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over body.
func NewDecoder(body []byte) *Decoder { return &Decoder{buf: body} }

// Err reports the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports how many bytes have not been consumed.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = ErrShortMessage
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Need reports whether at least n more bytes remain, marking the decoder
// failed otherwise. Collection decoders call it before allocating
// count-sized slices so a truncated or hostile count is an error, not a
// silent partial decode.
func (d *Decoder) Need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || n > d.Remaining() {
		d.fail()
		return false
	}
	return true
}

// U8 reads a uint8.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a bool.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := int(d.U32())
	b := d.take(n)
	return string(b)
}

// Blob reads a length-prefixed byte slice. The result is a copy so message
// structs do not alias transport buffers; zero-length blobs decode to nil
// so encode/decode round trips are identity on the struct level.
func (d *Decoder) Blob() []byte {
	n := int(d.U32())
	if n == 0 {
		return nil
	}
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// BlobView reads a length-prefixed byte slice without copying. Use only
// when the caller consumes the bytes before the frame buffer is reused.
func (d *Decoder) BlobView() []byte {
	n := int(d.U32())
	return d.take(n)
}

// Ints reads a length-prefixed slice of int64 values; zero-length slices
// decode to nil.
func (d *Decoder) Ints() []int64 {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if n < 0 || n*8 > d.Remaining() {
		d.fail()
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = d.I64()
	}
	return vs
}
