package protocol

import (
	"errors"
	"fmt"
)

// Op identifies the remote operation a request frame carries. Each op
// corresponds to one OpenCL API call forwarded by the wrapper library, plus
// a handful of session-management operations the paper's NMP handles
// (hello/handshake, status for the resource monitor, shutdown).
type Op uint16

// Operation codes. The numbering is part of the wire protocol; append only.
const (
	OpHello Op = iota + 1
	OpGetDeviceInfos
	OpCreateContext
	OpCreateQueue
	OpCreateBuffer
	OpWriteBuffer
	OpReadBuffer
	OpCopyBuffer
	OpBuildProgram
	OpCreateKernel
	OpEnqueueKernel
	OpFinishQueue
	OpQueryEvent
	OpRelease
	OpNodeStatus
	OpShutdown
	OpError // response-only: carries a remote error string
	OpBatch // wire v3: envelope op carried by FrameBatch frames
	// Peer-to-peer data plane (host-planned node→node transfers).
	OpPushRange  // host→source node: ship a buffer range to a named peer
	OpPeerPush   // source node→peer node: the data deposit itself
	OpAwaitPush  // host→destination node: receive a deposited range
	OpCancelPush // host→destination node: abort a pending rendezvous
)

var opNames = map[Op]string{
	OpHello:          "Hello",
	OpGetDeviceInfos: "GetDeviceInfos",
	OpCreateContext:  "CreateContext",
	OpCreateQueue:    "CreateQueue",
	OpCreateBuffer:   "CreateBuffer",
	OpWriteBuffer:    "WriteBuffer",
	OpReadBuffer:     "ReadBuffer",
	OpCopyBuffer:     "CopyBuffer",
	OpBuildProgram:   "BuildProgram",
	OpCreateKernel:   "CreateKernel",
	OpEnqueueKernel:  "EnqueueKernel",
	OpFinishQueue:    "FinishQueue",
	OpQueryEvent:     "QueryEvent",
	OpRelease:        "Release",
	OpNodeStatus:     "NodeStatus",
	OpShutdown:       "Shutdown",
	OpError:          "Error",
	OpBatch:          "Batch",
	OpPushRange:      "PushRange",
	OpPeerPush:       "PeerPush",
	OpAwaitPush:      "AwaitPush",
	OpCancelPush:     "CancelPush",
}

// String names the op for logs and errors.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint16(o))
}

// Message is the interface implemented by every protocol message body.
type Message interface {
	// Op reports which operation this message belongs to.
	Op() Op
	// MarshalBody appends the message to the encoder.
	MarshalBody(e *Encoder)
	// UnmarshalBody decodes the message from the decoder.
	UnmarshalBody(d *Decoder)
}

// DeviceType mirrors the OpenCL device-type bitfield restricted to the
// hardware classes HaoCL manages.
type DeviceType uint8

// Device types.
const (
	DeviceCPU DeviceType = iota + 1
	DeviceGPU
	DeviceFPGA
)

// String names the device type as in clinfo output.
func (t DeviceType) String() string {
	switch t {
	case DeviceCPU:
		return "CPU"
	case DeviceGPU:
		return "GPU"
	case DeviceFPGA:
		return "FPGA"
	default:
		return fmt.Sprintf("DeviceType(%d)", uint8(t))
	}
}

// DeviceInfo describes one device exported by a node, combining the fields
// clGetDeviceInfo exposes with the performance-model parameters the
// heterogeneity-aware scheduler consumes (paper §I: "a scheduler requires
// device model and run-time information").
type DeviceInfo struct {
	ID               uint32
	Type             DeviceType
	Name             string
	Vendor           string
	ComputeUnits     uint32
	ClockMHz         uint32
	GlobalMemBytes   int64
	MaxWorkGroupSize int64
	// Shared reports whether multiple users may hold the device at once
	// (paper §III-D: the NMP receives a shared flag with each request).
	Shared bool

	// Performance-model parameters.
	PeakGFLOPS float64 // sustained arithmetic throughput, GFLOP/s
	MemBWGBps  float64 // device memory bandwidth, GB/s
	TDPWatts   float64 // board power for the energy model
}

func (i *DeviceInfo) marshal(e *Encoder) {
	e.U32(i.ID)
	e.U8(uint8(i.Type))
	e.Str(i.Name)
	e.Str(i.Vendor)
	e.U32(i.ComputeUnits)
	e.U32(i.ClockMHz)
	e.I64(i.GlobalMemBytes)
	e.I64(i.MaxWorkGroupSize)
	e.Bool(i.Shared)
	e.F64(i.PeakGFLOPS)
	e.F64(i.MemBWGBps)
	e.F64(i.TDPWatts)
}

func (i *DeviceInfo) unmarshal(d *Decoder) {
	i.ID = d.U32()
	i.Type = DeviceType(d.U8())
	i.Name = d.Str()
	i.Vendor = d.Str()
	i.ComputeUnits = d.U32()
	i.ClockMHz = d.U32()
	i.GlobalMemBytes = d.I64()
	i.MaxWorkGroupSize = d.I64()
	i.Shared = d.Bool()
	i.PeakGFLOPS = d.F64()
	i.MemBWGBps = d.F64()
	i.TDPWatts = d.F64()
}

// Profile carries the four OpenCL event-profiling timestamps, in virtual
// nanoseconds (clGetEventProfilingInfo equivalents): Queued is the
// command's arrival at the node (SimArrival), Submit the instant its wire
// waits resolved and it entered the device lane, Start the instant the
// device began executing it, End its completion. Queued ≤ Submit ≤ Start
// ≤ End for lane-executed commands; [Queued,Submit] is
// registration/dependency wait, [Submit,Start] device queue wait,
// [Start,End] the busy interval — the split the host-side tracer renders
// as child spans. Cut-through forwarding pushes are the one exception:
// their planned departure (Submit = Start = DepartAt) may precede the
// control frame's booked arrival (Queued).
type Profile struct {
	Queued int64
	Submit int64
	Start  int64
	End    int64
}

func (p *Profile) marshal(e *Encoder) {
	e.I64(p.Queued)
	e.I64(p.Submit)
	e.I64(p.Start)
	e.I64(p.End)
}

func (p *Profile) unmarshal(d *Decoder) {
	p.Queued = d.I64()
	p.Submit = d.I64()
	p.Start = d.I64()
	p.End = d.I64()
}

// DurationNS reports the modeled execution span (END-START) in nanoseconds.
func (p *Profile) DurationNS() int64 { return p.End - p.Start }

// ArgKind tags one kernel argument in an EnqueueKernel request.
type ArgKind uint8

// Argument kinds: a device buffer handle, an inline scalar value, or a
// request for per-work-group local memory (clSetKernelArg with nil pointer).
const (
	ArgBuffer ArgKind = iota + 1
	ArgScalar
	ArgLocal
)

// KernelArg is one bound kernel argument, as set by clSetKernelArg and
// shipped with the launch message.
type KernelArg struct {
	Kind     ArgKind
	BufferID uint64 // ArgBuffer: remote buffer handle
	Scalar   []byte // ArgScalar: raw little-endian value bytes
	LocalLen int64  // ArgLocal: bytes of local memory per work-group
}

func (a *KernelArg) marshal(e *Encoder) {
	e.U8(uint8(a.Kind))
	e.U64(a.BufferID)
	e.Blob(a.Scalar)
	e.I64(a.LocalLen)
}

func (a *KernelArg) unmarshal(d *Decoder) {
	a.Kind = ArgKind(d.U8())
	a.BufferID = d.U64()
	a.Scalar = d.Blob()
	a.LocalLen = d.I64()
}

// --- Session management -----------------------------------------------

// PeerAddr names one cluster node and the address its NMP listens on. The
// host ships the full topology with Hello so nodes can dial each other
// directly for peer-to-peer transfers.
type PeerAddr struct {
	Name string
	Addr string
}

// HelloReq opens a session with a node. The user identity travels with the
// session so the NMP can enforce shared-device policies per user.
type HelloReq struct {
	UserID      string
	ClientName  string
	WireVersion uint32
	// Peers lists every cluster node's listen address so this node can
	// dial siblings for PushRange traffic. Appended after the v3 fields;
	// requests from older hosts lack it and decode as nil (the node then
	// rejects PushRange commands instead of data-plane traffic hanging).
	Peers []PeerAddr
	// Epoch is the host's membership generation. It starts at 1 and is
	// bumped on every node death or (re)join; a repeat Hello on a live
	// session with a higher epoch tells the node to adopt the new peer
	// list, drop pooled peer connections, and cancel parked push
	// rendezvous (their counterpart may be gone). Appended after Peers;
	// requests from older hosts decode as 0, which never triggers the
	// membership-change path.
	Epoch uint64
}

// Op implements Message.
func (*HelloReq) Op() Op { return OpHello }

// MarshalBody implements Message.
func (m *HelloReq) MarshalBody(e *Encoder) {
	e.Str(m.UserID)
	e.Str(m.ClientName)
	e.U32(m.WireVersion)
	e.U32(uint32(len(m.Peers)))
	for i := range m.Peers {
		e.Str(m.Peers[i].Name)
		e.Str(m.Peers[i].Addr)
	}
	e.U64(m.Epoch)
}

// UnmarshalBody implements Message.
func (m *HelloReq) UnmarshalBody(d *Decoder) {
	m.UserID = d.Str()
	m.ClientName = d.Str()
	m.WireVersion = d.U32()
	if d.Err() != nil || d.Remaining() < 4 {
		return // pre-p2p request without the peer list
	}
	n := int(d.U32())
	if !d.Need(n) {
		return
	}
	if n > 0 {
		m.Peers = make([]PeerAddr, n)
		for i := range m.Peers {
			m.Peers[i].Name = d.Str()
			m.Peers[i].Addr = d.Str()
		}
	}
	if d.Err() == nil && d.Remaining() >= 8 {
		m.Epoch = d.U64() // pre-fault-tolerance requests lack the field
	}
}

// HelloResp acknowledges a session and advertises the node's devices.
type HelloResp struct {
	NodeName string
	Devices  []DeviceInfo
	// WireVersion is the protocol version the node negotiated for this
	// session: min(host's offered version, node's own). The host enables
	// Batch coalescing only when it is at least VersionBatch. The field
	// was appended in v3; responses from v2 nodes lack it and decode as
	// MinVersion.
	WireVersion uint32
	// BootID identifies this incarnation of the node process. A restarted
	// node reports a fresh BootID, letting the host distinguish "same
	// process, repeated Hello" (epoch bump) from "new process at the same
	// address" (all prior replicas and objects are gone). Appended after
	// WireVersion; responses from older nodes decode as 0.
	BootID uint64
}

// Op implements Message.
func (*HelloResp) Op() Op { return OpHello }

// MarshalBody implements Message.
func (m *HelloResp) MarshalBody(e *Encoder) {
	e.Str(m.NodeName)
	e.U32(uint32(len(m.Devices)))
	for i := range m.Devices {
		m.Devices[i].marshal(e)
	}
	e.U32(m.WireVersion)
	e.U64(m.BootID)
}

// UnmarshalBody implements Message.
func (m *HelloResp) UnmarshalBody(d *Decoder) {
	m.NodeName = d.Str()
	n := int(d.U32())
	if !d.Need(n) {
		return
	}
	m.Devices = make([]DeviceInfo, n)
	for i := range m.Devices {
		m.Devices[i].unmarshal(d)
	}
	if d.Err() == nil && d.Remaining() >= 4 {
		m.WireVersion = d.U32()
	} else if d.Err() == nil {
		m.WireVersion = MinVersion // pre-v3 response without the field
	}
	if d.Err() == nil && d.Remaining() >= 8 {
		m.BootID = d.U64() // pre-fault-tolerance response without the field
	}
}

// GetDeviceInfosReq re-queries the device list (clGetDeviceIDs forwarding:
// the wrapper lib sends a device-ID request to every node and records the
// returned mapping, paper §III-C).
type GetDeviceInfosReq struct {
	TypeMask uint8 // bitwise OR of 1<<DeviceType values; 0 means all
}

// Op implements Message.
func (*GetDeviceInfosReq) Op() Op { return OpGetDeviceInfos }

// MarshalBody implements Message.
func (m *GetDeviceInfosReq) MarshalBody(e *Encoder) { e.U8(m.TypeMask) }

// UnmarshalBody implements Message.
func (m *GetDeviceInfosReq) UnmarshalBody(d *Decoder) { m.TypeMask = d.U8() }

// GetDeviceInfosResp lists matching devices.
type GetDeviceInfosResp struct {
	Devices []DeviceInfo
}

// Op implements Message.
func (*GetDeviceInfosResp) Op() Op { return OpGetDeviceInfos }

// MarshalBody implements Message.
func (m *GetDeviceInfosResp) MarshalBody(e *Encoder) {
	e.U32(uint32(len(m.Devices)))
	for i := range m.Devices {
		m.Devices[i].marshal(e)
	}
}

// UnmarshalBody implements Message.
func (m *GetDeviceInfosResp) UnmarshalBody(d *Decoder) {
	n := int(d.U32())
	if !d.Need(n) {
		return
	}
	m.Devices = make([]DeviceInfo, n)
	for i := range m.Devices {
		m.Devices[i].unmarshal(d)
	}
}

// --- Object lifecycle ---------------------------------------------------

// ObjectKind tags a remote object handle for Release.
type ObjectKind uint8

// Remote object kinds.
const (
	ObjContext ObjectKind = iota + 1
	ObjQueue
	ObjBuffer
	ObjProgram
	ObjKernel
	ObjEvent
)

// String names the object kind.
func (k ObjectKind) String() string {
	switch k {
	case ObjContext:
		return "context"
	case ObjQueue:
		return "queue"
	case ObjBuffer:
		return "buffer"
	case ObjProgram:
		return "program"
	case ObjKernel:
		return "kernel"
	case ObjEvent:
		return "event"
	default:
		return fmt.Sprintf("ObjectKind(%d)", uint8(k))
	}
}

// CreateContextReq creates a context over a set of node-local devices.
type CreateContextReq struct {
	DeviceIDs []int64
	// SessionID and Tenant identify the host-side session the context
	// belongs to, so node-side accounting and logs can attribute objects to
	// tenants. Appended after DeviceIDs; requests from pre-session hosts
	// lack them and decode as 0/"" (the node treats that as one anonymous
	// session).
	SessionID uint64
	Tenant    string
}

// Op implements Message.
func (*CreateContextReq) Op() Op { return OpCreateContext }

// MarshalBody implements Message.
func (m *CreateContextReq) MarshalBody(e *Encoder) {
	e.Ints(m.DeviceIDs)
	e.U64(m.SessionID)
	e.Str(m.Tenant)
}

// UnmarshalBody implements Message.
func (m *CreateContextReq) UnmarshalBody(d *Decoder) {
	m.DeviceIDs = d.Ints()
	if d.Err() == nil && d.Remaining() >= 8 {
		m.SessionID = d.U64()
	}
	if d.Err() == nil && d.Remaining() >= 4 {
		m.Tenant = d.Str()
	}
}

// ObjectResp returns a freshly created remote object handle.
type ObjectResp struct {
	ID uint64
}

// Op implements Message. ObjectResp answers several create ops; the op on
// the frame envelope disambiguates, so this reports 0.
func (*ObjectResp) Op() Op { return 0 }

// MarshalBody implements Message.
func (m *ObjectResp) MarshalBody(e *Encoder) { e.U64(m.ID) }

// UnmarshalBody implements Message.
func (m *ObjectResp) UnmarshalBody(d *Decoder) { m.ID = d.U64() }

// CreateQueueReq creates an in-order command queue on one device.
type CreateQueueReq struct {
	ContextID uint64
	DeviceID  uint32
	Profiling bool
}

// Op implements Message.
func (*CreateQueueReq) Op() Op { return OpCreateQueue }

// MarshalBody implements Message.
func (m *CreateQueueReq) MarshalBody(e *Encoder) {
	e.U64(m.ContextID)
	e.U32(m.DeviceID)
	e.Bool(m.Profiling)
}

// UnmarshalBody implements Message.
func (m *CreateQueueReq) UnmarshalBody(d *Decoder) {
	m.ContextID = d.U64()
	m.DeviceID = d.U32()
	m.Profiling = d.Bool()
}

// CreateBufferReq allocates a device buffer.
type CreateBufferReq struct {
	ContextID uint64
	Size      int64
}

// Op implements Message.
func (*CreateBufferReq) Op() Op { return OpCreateBuffer }

// MarshalBody implements Message.
func (m *CreateBufferReq) MarshalBody(e *Encoder) {
	e.U64(m.ContextID)
	e.I64(m.Size)
}

// UnmarshalBody implements Message.
func (m *CreateBufferReq) UnmarshalBody(d *Decoder) {
	m.ContextID = d.U64()
	m.Size = d.I64()
}

// ReleaseReq drops one reference to a remote object.
type ReleaseReq struct {
	Kind ObjectKind
	ID   uint64
}

// Op implements Message.
func (*ReleaseReq) Op() Op { return OpRelease }

// MarshalBody implements Message.
func (m *ReleaseReq) MarshalBody(e *Encoder) {
	e.U8(uint8(m.Kind))
	e.U64(m.ID)
}

// UnmarshalBody implements Message.
func (m *ReleaseReq) UnmarshalBody(d *Decoder) {
	m.Kind = ObjectKind(d.U8())
	m.ID = d.U64()
}

// EmptyResp is the body of acknowledgement-only responses.
type EmptyResp struct{}

// Op implements Message.
func (*EmptyResp) Op() Op { return 0 }

// MarshalBody implements Message.
func (*EmptyResp) MarshalBody(*Encoder) {}

// UnmarshalBody implements Message.
func (*EmptyResp) UnmarshalBody(*Decoder) {}

// --- Data movement -------------------------------------------------------

// CommandReq is implemented by the enqueue requests that create an event:
// the host names the event itself (SetEventID) so it can pipeline further
// commands referencing that event before the node has responded. A zero
// EventID asks the node to assign one (used by direct-session tests).
type CommandReq interface {
	Message
	SetEventID(id uint64)
}

// WriteBufferReq transfers host data into a device buffer
// (clEnqueueWriteBuffer). SimArrival is the virtual instant at which the
// data finishes crossing the host NIC; the node starts the device-side copy
// no earlier than this, which is how network time composes with device time
// across the distributed virtual clocks.
type WriteBufferReq struct {
	QueueID    uint64
	BufferID   uint64
	Offset     int64
	Data       []byte
	SimArrival int64
	// EventID, when non-zero, is the host-assigned ID for the completion
	// event (see CommandReq).
	EventID uint64
	// ModelBytes, when positive, sizes the transfer in the device's
	// timing model instead of len(Data) — the logical-scale counterpart
	// of EnqueueKernelReq's cost override.
	ModelBytes int64
	// WaitEvents lists remote event IDs that must complete first.
	WaitEvents []int64
}

// Op implements Message.
func (*WriteBufferReq) Op() Op { return OpWriteBuffer }

// SetEventID implements CommandReq.
func (m *WriteBufferReq) SetEventID(id uint64) { m.EventID = id }

// MarshalBody implements Message.
func (m *WriteBufferReq) MarshalBody(e *Encoder) {
	e.U64(m.QueueID)
	e.U64(m.BufferID)
	e.I64(m.Offset)
	e.Blob(m.Data)
	e.I64(m.SimArrival)
	e.U64(m.EventID)
	e.I64(m.ModelBytes)
	e.Ints(m.WaitEvents)
}

// UnmarshalBody implements Message.
func (m *WriteBufferReq) UnmarshalBody(d *Decoder) {
	m.QueueID = d.U64()
	m.BufferID = d.U64()
	m.Offset = d.I64()
	m.Data = d.Blob()
	m.SimArrival = d.I64()
	m.EventID = d.U64()
	m.ModelBytes = d.I64()
	m.WaitEvents = d.Ints()
}

// EventResp returns the event created by an enqueue operation.
type EventResp struct {
	EventID uint64
	Profile Profile
}

// Op implements Message.
func (*EventResp) Op() Op { return 0 }

// MarshalBody implements Message.
func (m *EventResp) MarshalBody(e *Encoder) {
	e.U64(m.EventID)
	m.Profile.marshal(e)
}

// UnmarshalBody implements Message.
func (m *EventResp) UnmarshalBody(d *Decoder) {
	m.EventID = d.U64()
	m.Profile.unmarshal(d)
}

// ReadBufferReq transfers device data back to the host
// (clEnqueueReadBuffer).
type ReadBufferReq struct {
	QueueID    uint64
	BufferID   uint64
	Offset     int64
	Size       int64
	SimArrival int64
	// EventID, when non-zero, is the host-assigned completion event ID.
	EventID uint64
	// ModelBytes, when positive, sizes the transfer in the timing model.
	ModelBytes int64
	WaitEvents []int64
}

// Op implements Message.
func (*ReadBufferReq) Op() Op { return OpReadBuffer }

// SetEventID implements CommandReq.
func (m *ReadBufferReq) SetEventID(id uint64) { m.EventID = id }

// MarshalBody implements Message.
func (m *ReadBufferReq) MarshalBody(e *Encoder) {
	e.U64(m.QueueID)
	e.U64(m.BufferID)
	e.I64(m.Offset)
	e.I64(m.Size)
	e.I64(m.SimArrival)
	e.U64(m.EventID)
	e.I64(m.ModelBytes)
	e.Ints(m.WaitEvents)
}

// UnmarshalBody implements Message.
func (m *ReadBufferReq) UnmarshalBody(d *Decoder) {
	m.QueueID = d.U64()
	m.BufferID = d.U64()
	m.Offset = d.I64()
	m.Size = d.I64()
	m.SimArrival = d.I64()
	m.EventID = d.U64()
	m.ModelBytes = d.I64()
	m.WaitEvents = d.Ints()
}

// ReadBufferResp carries the data and the completion event.
type ReadBufferResp struct {
	Data    []byte
	EventID uint64
	Profile Profile
}

// Op implements Message.
func (*ReadBufferResp) Op() Op { return OpReadBuffer }

// MarshalBody implements Message.
func (m *ReadBufferResp) MarshalBody(e *Encoder) {
	e.Blob(m.Data)
	e.U64(m.EventID)
	m.Profile.marshal(e)
}

// UnmarshalBody implements Message.
func (m *ReadBufferResp) UnmarshalBody(d *Decoder) {
	m.Data = d.Blob()
	m.EventID = d.U64()
	m.Profile.unmarshal(d)
}

// CopyBufferReq copies between two buffers on the same node
// (clEnqueueCopyBuffer).
type CopyBufferReq struct {
	QueueID   uint64
	SrcID     uint64
	DstID     uint64
	SrcOffset int64
	DstOffset int64
	Size      int64
	// EventID, when non-zero, is the host-assigned completion event ID.
	EventID    uint64
	WaitEvents []int64
}

// Op implements Message.
func (*CopyBufferReq) Op() Op { return OpCopyBuffer }

// SetEventID implements CommandReq.
func (m *CopyBufferReq) SetEventID(id uint64) { m.EventID = id }

// MarshalBody implements Message.
func (m *CopyBufferReq) MarshalBody(e *Encoder) {
	e.U64(m.QueueID)
	e.U64(m.SrcID)
	e.U64(m.DstID)
	e.I64(m.SrcOffset)
	e.I64(m.DstOffset)
	e.I64(m.Size)
	e.U64(m.EventID)
	e.Ints(m.WaitEvents)
}

// UnmarshalBody implements Message.
func (m *CopyBufferReq) UnmarshalBody(d *Decoder) {
	m.QueueID = d.U64()
	m.SrcID = d.U64()
	m.DstID = d.U64()
	m.SrcOffset = d.I64()
	m.DstOffset = d.I64()
	m.Size = d.I64()
	m.EventID = d.U64()
	m.WaitEvents = d.Ints()
}

// --- Peer-to-peer data plane ---------------------------------------------

// PushRangeReq tells a source node to ship [Offset, Offset+Size) of one of
// its buffer replicas to a named peer. The host stays the control plane: it
// plans the transfer from its validity map and assigns the completion event,
// but the data itself crosses the node↔node link, never the host NIC.
type PushRangeReq struct {
	QueueID  uint64 // source-side queue whose lane serializes the egress
	BufferID uint64
	// PeerName/PeerBufferID locate the destination replica; the source
	// resolves PeerName against the address book learned at Hello time.
	PeerName     string
	PeerBufferID uint64
	// Token pairs this push with the peer's AwaitPush rendezvous entry.
	Token  uint64
	Offset int64
	Size   int64
	// SimArrival is the virtual instant the host's command frame reaches
	// the source node (control traffic still crosses the host NIC).
	SimArrival int64
	// DepartAt, when positive, books the peer-link egress at that virtual
	// instant without a device read: broadcast hops forward data that is
	// already in flight (cut-through), so only the first chunk's link time
	// gates the next hop. Zero means a migration push: read the range from
	// the device, then cross the link.
	DepartAt int64
	// EventID, when non-zero, is the host-assigned completion event ID.
	EventID uint64
	// ModelBytes, when positive, sizes the transfer in the timing model.
	ModelBytes int64
	// WaitEvents lists source-side events that must complete first (the
	// producer chain that made this replica range valid).
	WaitEvents []int64
}

// Op implements Message.
func (*PushRangeReq) Op() Op { return OpPushRange }

// SetEventID implements CommandReq.
func (m *PushRangeReq) SetEventID(id uint64) { m.EventID = id }

// MarshalBody implements Message.
func (m *PushRangeReq) MarshalBody(e *Encoder) {
	e.U64(m.QueueID)
	e.U64(m.BufferID)
	e.Str(m.PeerName)
	e.U64(m.PeerBufferID)
	e.U64(m.Token)
	e.I64(m.Offset)
	e.I64(m.Size)
	e.I64(m.SimArrival)
	e.I64(m.DepartAt)
	e.U64(m.EventID)
	e.I64(m.ModelBytes)
	e.Ints(m.WaitEvents)
}

// UnmarshalBody implements Message.
func (m *PushRangeReq) UnmarshalBody(d *Decoder) {
	m.QueueID = d.U64()
	m.BufferID = d.U64()
	m.PeerName = d.Str()
	m.PeerBufferID = d.U64()
	m.Token = d.U64()
	m.Offset = d.I64()
	m.Size = d.I64()
	m.SimArrival = d.I64()
	m.DepartAt = d.I64()
	m.EventID = d.U64()
	m.ModelBytes = d.I64()
	m.WaitEvents = d.Ints()
}

// PeerPushReq is the node→node data deposit: the source ships the bytes to
// the peer, which parks them in its rendezvous table until the host-issued
// AwaitPush command consumes them. Answered with EmptyResp (the ack is the
// source's signal that the peer owns the data).
type PeerPushReq struct {
	Token uint64
	Data  []byte
	// SimArrival is the virtual instant the data finishes crossing the
	// node↔node link, computed by the source against its egress link.
	SimArrival int64
}

// Op implements Message.
func (*PeerPushReq) Op() Op { return OpPeerPush }

// MarshalBody implements Message.
func (m *PeerPushReq) MarshalBody(e *Encoder) {
	e.U64(m.Token)
	e.Blob(m.Data)
	e.I64(m.SimArrival)
}

// UnmarshalBody implements Message.
func (m *PeerPushReq) UnmarshalBody(d *Decoder) {
	m.Token = d.U64()
	m.Data = d.Blob()
	m.SimArrival = d.I64()
}

// AwaitPushReq tells the destination node to receive a deposited range into
// a buffer. It rides the normal registration-stage→lane machinery so the
// completion event chains like any other command; the exec handler blocks
// on the rendezvous entry for Token.
type AwaitPushReq struct {
	QueueID  uint64
	BufferID uint64
	Token    uint64
	Offset   int64
	Size     int64
	// SimArrival is the virtual arrival of the host's control frame.
	SimArrival int64
	// EventID, when non-zero, is the host-assigned completion event ID.
	EventID uint64
	// ModelBytes, when positive, sizes the device-side write in the model.
	ModelBytes int64
	// WaitEvents lists destination-side events that must complete first
	// (anti-dependencies on the replica being overwritten).
	WaitEvents []int64
}

// Op implements Message.
func (*AwaitPushReq) Op() Op { return OpAwaitPush }

// SetEventID implements CommandReq.
func (m *AwaitPushReq) SetEventID(id uint64) { m.EventID = id }

// MarshalBody implements Message.
func (m *AwaitPushReq) MarshalBody(e *Encoder) {
	e.U64(m.QueueID)
	e.U64(m.BufferID)
	e.U64(m.Token)
	e.I64(m.Offset)
	e.I64(m.Size)
	e.I64(m.SimArrival)
	e.U64(m.EventID)
	e.I64(m.ModelBytes)
	e.Ints(m.WaitEvents)
}

// UnmarshalBody implements Message.
func (m *AwaitPushReq) UnmarshalBody(d *Decoder) {
	m.QueueID = d.U64()
	m.BufferID = d.U64()
	m.Token = d.U64()
	m.Offset = d.I64()
	m.Size = d.I64()
	m.SimArrival = d.I64()
	m.EventID = d.U64()
	m.ModelBytes = d.I64()
	m.WaitEvents = d.Ints()
}

// CancelPushReq aborts a pending rendezvous: when the source side of a push
// fails, the host cancels the peer's AwaitPush so the dependent event chain
// fails instead of parking forever.
type CancelPushReq struct {
	Token  uint64
	Reason string
}

// Op implements Message.
func (*CancelPushReq) Op() Op { return OpCancelPush }

// MarshalBody implements Message.
func (m *CancelPushReq) MarshalBody(e *Encoder) {
	e.U64(m.Token)
	e.Str(m.Reason)
}

// UnmarshalBody implements Message.
func (m *CancelPushReq) UnmarshalBody(d *Decoder) {
	m.Token = d.U64()
	m.Reason = d.Str()
}

// --- Programs and kernels -------------------------------------------------

// BuildProgramReq ships OpenCL C source for compilation on the node
// (clCreateProgramWithSource + clBuildProgram). The node's front end parses
// the source and resolves each kernel against its driver's kernel binaries.
type BuildProgramReq struct {
	ContextID uint64
	Source    string
	Options   string
}

// Op implements Message.
func (*BuildProgramReq) Op() Op { return OpBuildProgram }

// MarshalBody implements Message.
func (m *BuildProgramReq) MarshalBody(e *Encoder) {
	e.U64(m.ContextID)
	e.Str(m.Source)
	e.Str(m.Options)
}

// UnmarshalBody implements Message.
func (m *BuildProgramReq) UnmarshalBody(d *Decoder) {
	m.ContextID = d.U64()
	m.Source = d.Str()
	m.Options = d.Str()
}

// BuildProgramResp reports the program handle and build log.
type BuildProgramResp struct {
	ProgramID uint64
	Log       string
	Kernels   []string // kernel names found in the source
}

// Op implements Message.
func (*BuildProgramResp) Op() Op { return OpBuildProgram }

// MarshalBody implements Message.
func (m *BuildProgramResp) MarshalBody(e *Encoder) {
	e.U64(m.ProgramID)
	e.Str(m.Log)
	e.U32(uint32(len(m.Kernels)))
	for _, k := range m.Kernels {
		e.Str(k)
	}
}

// UnmarshalBody implements Message.
func (m *BuildProgramResp) UnmarshalBody(d *Decoder) {
	m.ProgramID = d.U64()
	m.Log = d.Str()
	n := int(d.U32())
	if !d.Need(n) {
		return
	}
	m.Kernels = make([]string, n)
	for i := range m.Kernels {
		m.Kernels[i] = d.Str()
	}
}

// CreateKernelReq instantiates one kernel from a built program.
type CreateKernelReq struct {
	ProgramID uint64
	Name      string
}

// Op implements Message.
func (*CreateKernelReq) Op() Op { return OpCreateKernel }

// MarshalBody implements Message.
func (m *CreateKernelReq) MarshalBody(e *Encoder) {
	e.U64(m.ProgramID)
	e.Str(m.Name)
}

// UnmarshalBody implements Message.
func (m *CreateKernelReq) UnmarshalBody(d *Decoder) {
	m.ProgramID = d.U64()
	m.Name = d.Str()
}

// EnqueueKernelReq launches an NDRange (clEnqueueNDRangeKernel). Arguments
// travel with the launch, matching the paper's message-per-API-call design.
type EnqueueKernelReq struct {
	QueueID    uint64
	KernelID   uint64
	Global     []int64
	Local      []int64
	Args       []KernelArg
	SimArrival int64
	// EventID, when non-zero, is the host-assigned completion event ID.
	EventID    uint64
	WaitEvents []int64
	// CostFlops/CostBytes, when positive, override the kernel's own cost
	// model. The experiment harness uses this to model paper-scale
	// problem sizes while executing functionally on reduced data.
	CostFlops int64
	CostBytes int64
}

// Op implements Message.
func (*EnqueueKernelReq) Op() Op { return OpEnqueueKernel }

// SetEventID implements CommandReq.
func (m *EnqueueKernelReq) SetEventID(id uint64) { m.EventID = id }

// MarshalBody implements Message.
func (m *EnqueueKernelReq) MarshalBody(e *Encoder) {
	e.U64(m.QueueID)
	e.U64(m.KernelID)
	e.Ints(m.Global)
	e.Ints(m.Local)
	e.U32(uint32(len(m.Args)))
	for i := range m.Args {
		m.Args[i].marshal(e)
	}
	e.I64(m.SimArrival)
	e.U64(m.EventID)
	e.Ints(m.WaitEvents)
	e.I64(m.CostFlops)
	e.I64(m.CostBytes)
}

// UnmarshalBody implements Message.
func (m *EnqueueKernelReq) UnmarshalBody(d *Decoder) {
	m.QueueID = d.U64()
	m.KernelID = d.U64()
	m.Global = d.Ints()
	m.Local = d.Ints()
	n := int(d.U32())
	if !d.Need(n) {
		return
	}
	m.Args = make([]KernelArg, n)
	for i := range m.Args {
		m.Args[i].unmarshal(d)
	}
	m.SimArrival = d.I64()
	m.EventID = d.U64()
	m.WaitEvents = d.Ints()
	m.CostFlops = d.I64()
	m.CostBytes = d.I64()
}

// --- Synchronization and status -------------------------------------------

// FinishQueueReq blocks until all commands on a queue complete (clFinish).
type FinishQueueReq struct {
	QueueID uint64
}

// Op implements Message.
func (*FinishQueueReq) Op() Op { return OpFinishQueue }

// MarshalBody implements Message.
func (m *FinishQueueReq) MarshalBody(e *Encoder) { e.U64(m.QueueID) }

// UnmarshalBody implements Message.
func (m *FinishQueueReq) UnmarshalBody(d *Decoder) { m.QueueID = d.U64() }

// FinishQueueResp reports the queue's virtual completion time.
type FinishQueueResp struct {
	SimTime int64
}

// Op implements Message.
func (*FinishQueueResp) Op() Op { return OpFinishQueue }

// MarshalBody implements Message.
func (m *FinishQueueResp) MarshalBody(e *Encoder) { e.I64(m.SimTime) }

// UnmarshalBody implements Message.
func (m *FinishQueueResp) UnmarshalBody(d *Decoder) { m.SimTime = d.I64() }

// QueryEventReq fetches an event's status and profiling timestamps.
type QueryEventReq struct {
	EventID uint64
}

// Op implements Message.
func (*QueryEventReq) Op() Op { return OpQueryEvent }

// MarshalBody implements Message.
func (m *QueryEventReq) MarshalBody(e *Encoder) { e.U64(m.EventID) }

// UnmarshalBody implements Message.
func (m *QueryEventReq) UnmarshalBody(d *Decoder) { m.EventID = d.U64() }

// QueryEventResp carries the event state.
type QueryEventResp struct {
	Complete bool
	Profile  Profile
}

// Op implements Message.
func (*QueryEventResp) Op() Op { return OpQueryEvent }

// MarshalBody implements Message.
func (m *QueryEventResp) MarshalBody(e *Encoder) {
	e.Bool(m.Complete)
	m.Profile.marshal(e)
}

// UnmarshalBody implements Message.
func (m *QueryEventResp) UnmarshalBody(d *Decoder) {
	m.Complete = d.Bool()
	m.Profile.unmarshal(d)
}

// NodeStatusReq polls the node for the resource monitor.
type NodeStatusReq struct{}

// Op implements Message.
func (*NodeStatusReq) Op() Op { return OpNodeStatus }

// MarshalBody implements Message.
func (*NodeStatusReq) MarshalBody(*Encoder) {}

// UnmarshalBody implements Message.
func (*NodeStatusReq) UnmarshalBody(*Decoder) {}

// DeviceStatus is one device's runtime load snapshot.
type DeviceStatus struct {
	DeviceID      uint32
	BusyUntil     int64 // virtual instant the device's queues drain
	QueuedCmds    int64
	KernelsRun    int64
	FlopsDone     float64
	BytesMoved    float64
	EnergyJ       float64
	ActiveUsers   int64
	EWMAGFLOPS    float64 // observed sustained rate, for the scheduler
	EWMAKernelSec float64 // observed mean kernel duration
}

func (s *DeviceStatus) marshal(e *Encoder) {
	e.U32(s.DeviceID)
	e.I64(s.BusyUntil)
	e.I64(s.QueuedCmds)
	e.I64(s.KernelsRun)
	e.F64(s.FlopsDone)
	e.F64(s.BytesMoved)
	e.F64(s.EnergyJ)
	e.I64(s.ActiveUsers)
	e.F64(s.EWMAGFLOPS)
	e.F64(s.EWMAKernelSec)
}

func (s *DeviceStatus) unmarshal(d *Decoder) {
	s.DeviceID = d.U32()
	s.BusyUntil = d.I64()
	s.QueuedCmds = d.I64()
	s.KernelsRun = d.I64()
	s.FlopsDone = d.F64()
	s.BytesMoved = d.F64()
	s.EnergyJ = d.F64()
	s.ActiveUsers = d.I64()
	s.EWMAGFLOPS = d.F64()
	s.EWMAKernelSec = d.F64()
}

// NodeStatusResp is the monitor snapshot for every device on the node.
type NodeStatusResp struct {
	Devices []DeviceStatus
}

// Op implements Message.
func (*NodeStatusResp) Op() Op { return OpNodeStatus }

// MarshalBody implements Message.
func (m *NodeStatusResp) MarshalBody(e *Encoder) {
	e.U32(uint32(len(m.Devices)))
	for i := range m.Devices {
		m.Devices[i].marshal(e)
	}
}

// UnmarshalBody implements Message.
func (m *NodeStatusResp) UnmarshalBody(d *Decoder) {
	n := int(d.U32())
	if !d.Need(n) {
		return
	}
	m.Devices = make([]DeviceStatus, n)
	for i := range m.Devices {
		m.Devices[i].unmarshal(d)
	}
}

// ShutdownReq asks the NMP to drain and exit.
type ShutdownReq struct{}

// Op implements Message.
func (*ShutdownReq) Op() Op { return OpShutdown }

// MarshalBody implements Message.
func (*ShutdownReq) MarshalBody(*Encoder) {}

// UnmarshalBody implements Message.
func (*ShutdownReq) UnmarshalBody(*Decoder) {}

// The enqueue requests all carry host-assignable event IDs.
var (
	_ CommandReq = (*WriteBufferReq)(nil)
	_ CommandReq = (*ReadBufferReq)(nil)
	_ CommandReq = (*CopyBufferReq)(nil)
	_ CommandReq = (*EnqueueKernelReq)(nil)
	_ CommandReq = (*PushRangeReq)(nil)
	_ CommandReq = (*AwaitPushReq)(nil)
)

// ErrorResp carries a remote failure back to the caller.
type ErrorResp struct {
	Code    uint32
	Message string
}

// Op implements Message.
func (*ErrorResp) Op() Op { return OpError }

// MarshalBody implements Message.
func (m *ErrorResp) MarshalBody(e *Encoder) {
	e.U32(m.Code)
	e.Str(m.Message)
}

// UnmarshalBody implements Message.
func (m *ErrorResp) UnmarshalBody(d *Decoder) {
	m.Code = d.U32()
	m.Message = d.Str()
}

// RemoteError is the host-side error produced from an ErrorResp.
type RemoteError struct {
	Op      Op
	Code    uint32
	Message string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote %s: %s (code %d)", e.Op, e.Message, e.Code)
}

// ErrRemote matches any remote error with errors.Is.
var ErrRemote = errors.New("protocol: remote error")

// Is reports whether target is ErrRemote.
func (e *RemoteError) Is(target error) bool { return target == ErrRemote }

// EncodeMessage marshals m into a fresh body slice.
func EncodeMessage(m Message) []byte {
	e := NewEncoder()
	m.MarshalBody(e)
	return e.Bytes()
}

// DecodeMessage unmarshals body into m, reporting truncation errors.
func DecodeMessage(m Message, body []byte) error {
	d := NewDecoder(body)
	m.UnmarshalBody(d)
	if err := d.Err(); err != nil {
		return fmt.Errorf("decode %T: %w", m, err)
	}
	return nil
}
