package protocol

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// roundTrip encodes m and decodes into out, failing the test on error.
func roundTrip(t *testing.T, m Message, out Message) {
	t.Helper()
	if err := DecodeMessage(out, EncodeMessage(m)); err != nil {
		t.Fatalf("decode %T: %v", m, err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	in := &HelloReq{UserID: "alice", ClientName: "app", WireVersion: 1}
	var out HelloReq
	roundTrip(t, in, &out)
	if !reflect.DeepEqual(in, &out) {
		t.Fatalf("%+v != %+v", out, in)
	}

	resp := &HelloResp{
		NodeName: "gpu-00",
		Devices: []DeviceInfo{{
			ID: 1, Type: DeviceGPU, Name: "Tesla P4", Vendor: "NVIDIA",
			ComputeUnits: 20, ClockMHz: 1063, GlobalMemBytes: 8 << 30,
			MaxWorkGroupSize: 1024, Shared: true,
			PeakGFLOPS: 5500, MemBWGBps: 192, TDPWatts: 75,
		}},
	}
	var outResp HelloResp
	roundTrip(t, resp, &outResp)
	if !reflect.DeepEqual(resp, &outResp) {
		t.Fatalf("%+v != %+v", outResp, resp)
	}
}

func TestEnqueueKernelRoundTrip(t *testing.T) {
	in := &EnqueueKernelReq{
		QueueID:  3,
		KernelID: 9,
		Global:   []int64{1024, 32, 1},
		Local:    []int64{64},
		Args: []KernelArg{
			{Kind: ArgBuffer, BufferID: 77},
			{Kind: ArgScalar, Scalar: []byte{1, 0, 0, 0}},
			{Kind: ArgLocal, LocalLen: 2048},
		},
		SimArrival: 123456,
		EventID:    42,
		WaitEvents: []int64{5, 6},
		CostFlops:  1e12,
		CostBytes:  1e11,
	}
	var out EnqueueKernelReq
	roundTrip(t, in, &out)
	if !reflect.DeepEqual(in, &out) {
		t.Fatalf("%+v != %+v", out, in)
	}
}

// TestAllMessagesRoundTripProperty round-trips every message type with
// randomized field values.
func TestAllMessagesRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	msgs := []func() (Message, Message){
		func() (Message, Message) {
			return &HelloReq{UserID: randStr(rng), ClientName: randStr(rng), WireVersion: rng.Uint32()}, &HelloReq{}
		},
		func() (Message, Message) {
			return &GetDeviceInfosReq{TypeMask: uint8(rng.Uint32())}, &GetDeviceInfosReq{}
		},
		func() (Message, Message) {
			return &GetDeviceInfosResp{Devices: []DeviceInfo{randDevice(rng), randDevice(rng)}}, &GetDeviceInfosResp{}
		},
		func() (Message, Message) {
			return &CreateContextReq{DeviceIDs: []int64{rng.Int63(), rng.Int63()},
				SessionID: rng.Uint64(), Tenant: randStr(rng)}, &CreateContextReq{}
		},
		func() (Message, Message) {
			return &CreateQueueReq{ContextID: rng.Uint64(), DeviceID: rng.Uint32(), Profiling: rng.Intn(2) == 0}, &CreateQueueReq{}
		},
		func() (Message, Message) {
			return &CreateBufferReq{ContextID: rng.Uint64(), Size: rng.Int63()}, &CreateBufferReq{}
		},
		func() (Message, Message) {
			return &WriteBufferReq{QueueID: rng.Uint64(), BufferID: rng.Uint64(), Offset: rng.Int63(),
				Data: randBlob(rng), SimArrival: rng.Int63(), EventID: rng.Uint64(), ModelBytes: rng.Int63(),
				WaitEvents: []int64{rng.Int63()}}, &WriteBufferReq{}
		},
		func() (Message, Message) {
			return &ReadBufferReq{QueueID: rng.Uint64(), BufferID: rng.Uint64(), Offset: rng.Int63(),
				Size: rng.Int63(), SimArrival: rng.Int63(), EventID: rng.Uint64(), ModelBytes: rng.Int63()}, &ReadBufferReq{}
		},
		func() (Message, Message) {
			return &ReadBufferResp{Data: randBlob(rng), EventID: rng.Uint64(),
				Profile: Profile{Queued: 1, Submit: 2, Start: 3, End: 4}}, &ReadBufferResp{}
		},
		func() (Message, Message) {
			return &CopyBufferReq{QueueID: 1, SrcID: 2, DstID: 3, SrcOffset: 4, DstOffset: 5, Size: 6,
				EventID: rng.Uint64()}, &CopyBufferReq{}
		},
		func() (Message, Message) {
			return &BuildProgramReq{ContextID: rng.Uint64(), Source: randStr(rng), Options: randStr(rng)}, &BuildProgramReq{}
		},
		func() (Message, Message) {
			return &BuildProgramResp{ProgramID: rng.Uint64(), Log: randStr(rng),
				Kernels: []string{randStr(rng), randStr(rng)}}, &BuildProgramResp{}
		},
		func() (Message, Message) {
			return &CreateKernelReq{ProgramID: rng.Uint64(), Name: randStr(rng)}, &CreateKernelReq{}
		},
		func() (Message, Message) {
			return &FinishQueueReq{QueueID: rng.Uint64()}, &FinishQueueReq{}
		},
		func() (Message, Message) {
			return &FinishQueueResp{SimTime: rng.Int63()}, &FinishQueueResp{}
		},
		func() (Message, Message) {
			return &QueryEventReq{EventID: rng.Uint64()}, &QueryEventReq{}
		},
		func() (Message, Message) {
			return &QueryEventResp{Complete: true, Profile: Profile{End: rng.Int63()}}, &QueryEventResp{}
		},
		func() (Message, Message) {
			return &ReleaseReq{Kind: ObjBuffer, ID: rng.Uint64()}, &ReleaseReq{}
		},
		func() (Message, Message) {
			return &NodeStatusResp{Devices: []DeviceStatus{{
				DeviceID: rng.Uint32(), BusyUntil: rng.Int63(), QueuedCmds: 3,
				KernelsRun: 9, FlopsDone: 1e12, BytesMoved: 5e9, EnergyJ: 120,
				ActiveUsers: 2, EWMAGFLOPS: 800, EWMAKernelSec: 0.25,
			}}}, &NodeStatusResp{}
		},
		func() (Message, Message) {
			return &ErrorResp{Code: rng.Uint32(), Message: randStr(rng)}, &ErrorResp{}
		},
		func() (Message, Message) {
			return &ObjectResp{ID: rng.Uint64()}, &ObjectResp{}
		},
		func() (Message, Message) {
			return &EventResp{EventID: rng.Uint64(), Profile: Profile{Start: 5, End: 9}}, &EventResp{}
		},
		func() (Message, Message) {
			return &HelloReq{UserID: randStr(rng), ClientName: randStr(rng), WireVersion: rng.Uint32(),
				Peers: []PeerAddr{{Name: randStr(rng), Addr: randStr(rng)}, {Name: randStr(rng), Addr: randStr(rng)}}}, &HelloReq{}
		},
		func() (Message, Message) {
			return &PushRangeReq{QueueID: rng.Uint64(), BufferID: rng.Uint64(), PeerName: randStr(rng),
				PeerBufferID: rng.Uint64(), Token: rng.Uint64(), Offset: rng.Int63(), Size: rng.Int63(),
				SimArrival: rng.Int63(), DepartAt: rng.Int63(), EventID: rng.Uint64(), ModelBytes: rng.Int63(),
				WaitEvents: []int64{rng.Int63()}}, &PushRangeReq{}
		},
		func() (Message, Message) {
			return &PeerPushReq{Token: rng.Uint64(), Data: randBlob(rng), SimArrival: rng.Int63()}, &PeerPushReq{}
		},
		func() (Message, Message) {
			return &AwaitPushReq{QueueID: rng.Uint64(), BufferID: rng.Uint64(), Token: rng.Uint64(),
				Offset: rng.Int63(), Size: rng.Int63(), SimArrival: rng.Int63(), EventID: rng.Uint64(),
				ModelBytes: rng.Int63(), WaitEvents: []int64{rng.Int63(), rng.Int63()}}, &AwaitPushReq{}
		},
		func() (Message, Message) {
			return &CancelPushReq{Token: rng.Uint64(), Reason: randStr(rng)}, &CancelPushReq{}
		},
	}
	for round := 0; round < 25; round++ {
		for i, mk := range msgs {
			in, out := mk()
			if err := DecodeMessage(out, EncodeMessage(in)); err != nil {
				t.Fatalf("case %d (%T): %v", i, in, err)
			}
			if !reflect.DeepEqual(in, out) {
				t.Fatalf("case %d (%T): %+v != %+v", i, in, out, in)
			}
		}
	}
}

func randStr(rng *rand.Rand) string {
	b := make([]byte, rng.Intn(20))
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func randBlob(rng *rand.Rand) []byte {
	b := make([]byte, rng.Intn(64)+1)
	rng.Read(b)
	return b
}

func randDevice(rng *rand.Rand) DeviceInfo {
	return DeviceInfo{
		ID:   rng.Uint32(),
		Type: DeviceType(rng.Intn(3) + 1),
		Name: randStr(rng), Vendor: randStr(rng),
		ComputeUnits: rng.Uint32(), ClockMHz: rng.Uint32(),
		GlobalMemBytes: rng.Int63(), MaxWorkGroupSize: rng.Int63(),
		Shared: rng.Intn(2) == 0, PeakGFLOPS: rng.Float64() * 1e4,
		MemBWGBps: rng.Float64() * 1e3, TDPWatts: rng.Float64() * 300,
	}
}

// TestDecodeTruncatedMessages feeds every prefix of a valid encoding to
// the decoder and requires a clean error, never a panic.
func TestDecodeTruncatedMessages(t *testing.T) {
	in := &EnqueueKernelReq{
		QueueID: 1, KernelID: 2,
		Global: []int64{10}, Local: []int64{2},
		Args:       []KernelArg{{Kind: ArgBuffer, BufferID: 3}, {Kind: ArgScalar, Scalar: []byte{1, 2, 3, 4}}},
		WaitEvents: []int64{7},
	}
	body := EncodeMessage(in)
	for cut := 0; cut < len(body); cut++ {
		var out EnqueueKernelReq
		if err := DecodeMessage(&out, body[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}

// TestDecodeTruncatedPushMessages feeds every prefix of the p2p data-plane
// messages to the decoder and requires a clean error, never a panic — these
// decoders feed the node registration stage straight off the wire.
func TestDecodeTruncatedPushMessages(t *testing.T) {
	cases := []struct{ in, out Message }{
		{&PushRangeReq{QueueID: 1, BufferID: 2, PeerName: "gpu-1", PeerBufferID: 3, Token: 4,
			Offset: 5, Size: 6, SimArrival: 7, DepartAt: 8, EventID: 9, ModelBytes: 10,
			WaitEvents: []int64{11}}, &PushRangeReq{}},
		{&PeerPushReq{Token: 1, Data: []byte{1, 2, 3}, SimArrival: 4}, &PeerPushReq{}},
		{&AwaitPushReq{QueueID: 1, BufferID: 2, Token: 3, Offset: 4, Size: 5, SimArrival: 6,
			EventID: 7, ModelBytes: 8, WaitEvents: []int64{9}}, &AwaitPushReq{}},
		{&CancelPushReq{Token: 1, Reason: "source died"}, &CancelPushReq{}},
	}
	for _, c := range cases {
		body := EncodeMessage(c.in)
		for cut := 0; cut < len(body); cut++ {
			if err := DecodeMessage(c.out, body[:cut]); err == nil {
				t.Fatalf("%T: truncation at %d decoded without error", c.in, cut)
			}
		}
	}
}

// TestHelloPeerListBackCompat: a pre-p2p peer sends HelloReq without the
// trailing peer list; the decoder must accept it with no peers rather than
// erroring, and a hello whose peer section is cut mid-entry must error.
func TestHelloPeerListBackCompat(t *testing.T) {
	full := EncodeMessage(&HelloReq{UserID: "u", ClientName: "c", WireVersion: 2})
	// Strip the epoch (8) and the (empty) peer-count word (4).
	legacy := full[:len(full)-12]
	var out HelloReq
	if err := DecodeMessage(&out, legacy); err != nil {
		t.Fatalf("legacy hello rejected: %v", err)
	}
	if out.UserID != "u" || out.Peers != nil || out.Epoch != 0 {
		t.Fatalf("legacy hello decoded to %+v", out)
	}

	// A p2p-era hello without the epoch field decodes with Epoch 0.
	var prefault HelloReq
	if err := DecodeMessage(&prefault, full[:len(full)-8]); err != nil {
		t.Fatalf("pre-fault-tolerance hello rejected: %v", err)
	}
	if prefault.Epoch != 0 {
		t.Fatalf("missing epoch decoded as %d", prefault.Epoch)
	}

	withPeers := EncodeMessage(&HelloReq{UserID: "u", WireVersion: 2, Epoch: 4,
		Peers: []PeerAddr{{Name: "gpu-0", Addr: "10.0.0.1:7010"}}})
	var cut HelloReq
	// Strip the epoch (8) plus 3 bytes to land mid-peer-entry.
	if err := DecodeMessage(&cut, withPeers[:len(withPeers)-11]); err == nil {
		t.Fatal("hello cut mid-peer-entry decoded without error")
	}
}

// TestHelloEpochBootIDRoundTrip: the fault-tolerance fields appended to
// the Hello pair survive a round trip, and a response from an older node
// (no trailing BootID) decodes with BootID 0.
func TestHelloEpochBootIDRoundTrip(t *testing.T) {
	in := &HelloReq{UserID: "u", ClientName: "c", WireVersion: 3, Epoch: 7,
		Peers: []PeerAddr{{Name: "gpu-1", Addr: "mem://gpu-1"}}}
	var out HelloReq
	roundTrip(t, in, &out)
	if !reflect.DeepEqual(in, &out) {
		t.Fatalf("%+v != %+v", out, in)
	}

	resp := &HelloResp{NodeName: "gpu-1", WireVersion: 3, BootID: 42}
	var outResp HelloResp
	roundTrip(t, resp, &outResp)
	if outResp.NodeName != resp.NodeName || outResp.WireVersion != resp.WireVersion ||
		outResp.BootID != resp.BootID {
		t.Fatalf("%+v != %+v", outResp, resp)
	}

	legacy := EncodeMessage(resp)
	legacy = legacy[:len(legacy)-8] // strip the BootID
	var old HelloResp
	if err := DecodeMessage(&old, legacy); err != nil {
		t.Fatalf("pre-fault-tolerance response rejected: %v", err)
	}
	if old.BootID != 0 || old.WireVersion != 3 {
		t.Fatalf("legacy response decoded to %+v", old)
	}
}

// TestCreateContextSessionBackCompat: the session identity appended to
// CreateContextReq survives a round trip, and a request from a
// pre-session host (no trailing SessionID/Tenant) decodes as the
// anonymous session rather than erroring.
func TestCreateContextSessionBackCompat(t *testing.T) {
	in := &CreateContextReq{DeviceIDs: []int64{3, 9}, SessionID: 7, Tenant: "team-a"}
	var out CreateContextReq
	roundTrip(t, in, &out)
	if !reflect.DeepEqual(in, &out) {
		t.Fatalf("%+v != %+v", out, in)
	}

	full := EncodeMessage(&CreateContextReq{DeviceIDs: []int64{3, 9}, SessionID: 7})
	// Strip the tenant length word (4) and the session ID (8).
	legacy := full[:len(full)-12]
	var old CreateContextReq
	if err := DecodeMessage(&old, legacy); err != nil {
		t.Fatalf("pre-session request rejected: %v", err)
	}
	if !reflect.DeepEqual(old.DeviceIDs, []int64{3, 9}) || old.SessionID != 0 || old.Tenant != "" {
		t.Fatalf("legacy request decoded to %+v", old)
	}

	// A request carrying the session ID but cut before the tenant string
	// still decodes (tenant defaults empty).
	var mid CreateContextReq
	if err := DecodeMessage(&mid, full[:len(full)-4]); err != nil {
		t.Fatalf("session-only request rejected: %v", err)
	}
	if mid.SessionID != 7 || mid.Tenant != "" {
		t.Fatalf("session-only request decoded to %+v", mid)
	}
}

func TestRemoteError(t *testing.T) {
	err := &RemoteError{Op: OpBuildProgram, Code: CodeBuildFailed, Message: "no kernel"}
	if !errors.Is(err, ErrRemote) {
		t.Fatal("RemoteError must match ErrRemote")
	}
	if err.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestOpAndKindStrings(t *testing.T) {
	for op := OpHello; op <= OpCancelPush; op++ {
		if s := op.String(); s == "" || s[0] == 'O' && s[1] == 'p' && s[2] == '(' {
			t.Fatalf("op %d has no name: %q", op, s)
		}
	}
	if Op(999).String() != "Op(999)" {
		t.Fatal("unknown op formatting broken")
	}
	for k := ObjContext; k <= ObjEvent; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	for _, dt := range []DeviceType{DeviceCPU, DeviceGPU, DeviceFPGA} {
		if dt.String() == "" {
			t.Fatal("device type name missing")
		}
	}
}

func TestProfileDuration(t *testing.T) {
	p := Profile{Start: 100, End: 350}
	if p.DurationNS() != 250 {
		t.Fatalf("DurationNS = %d", p.DurationNS())
	}
}

// TestDeviceInfoQuick round-trips DeviceInfo through HelloResp with
// testing/quick generating the struct.
func TestDeviceInfoQuick(t *testing.T) {
	check := func(id uint32, name string, peak float64, shared bool) bool {
		in := &HelloResp{NodeName: "n", Devices: []DeviceInfo{{
			ID: id, Type: DeviceFPGA, Name: name, PeakGFLOPS: peak, Shared: shared,
		}}}
		var out HelloResp
		if err := DecodeMessage(&out, EncodeMessage(in)); err != nil {
			return false
		}
		return reflect.DeepEqual(in, &out)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
