package protocol

import (
	"errors"
	"fmt"
)

// Wire v3 Batch envelope: one FrameBatch frame carrying a sequence of
// ordinary request or response frames. Coalescing bursts of small control
// messages into one frame (and one syscall) amortizes the per-frame header
// and per-write overhead that dominates the pipelined command path once
// round trips are gone. The envelope changes nothing about the messages
// inside it: receivers unpack the sub-frames and feed them to the exact
// same dispatch path, in envelope order, so the pipeline's
// wire-order-equals-execution-order invariant is untouched.

// Batching thresholds. They bound how much a coalescing writer packs into
// one envelope; receivers accept any envelope up to MaxFrameSize.
const (
	// MaxBatchMessages caps the sub-frames per envelope.
	MaxBatchMessages = 64

	// MaxBatchBytes caps the accumulated sub-frame body bytes per
	// envelope; a run of messages is flushed once it crosses this.
	MaxBatchBytes = 64 << 10

	// BatchableBodyLimit is the largest body a frame may have and still
	// ride in an envelope. Bulk-data frames above it are written alone:
	// they amortize their own syscall, and keeping them out of envelopes
	// bounds envelope size.
	BatchableBodyLimit = 16 << 10
)

// Batch-envelope errors.
var (
	ErrNestedBatch = errors.New("protocol: nested batch frame")
	ErrBadBatch    = errors.New("protocol: malformed batch frame")
)

// batchSubHeader is the per-sub-frame overhead inside an envelope:
// kind (1) + reqID (8) + op (2) + body length (4).
const batchSubHeader = 1 + 8 + 2 + 4

// EncodeBatch packs subs into one Batch envelope frame, preserving order.
// Sub-frames must themselves be plain (non-batch) frames.
func EncodeBatch(subs []*Frame) (*Frame, error) {
	size := 4
	for _, f := range subs {
		size += batchSubHeader + len(f.Body)
	}
	if size > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, size)
	}
	e := &Encoder{buf: make([]byte, 0, size)}
	e.U32(uint32(len(subs)))
	for _, f := range subs {
		if f.Kind == FrameBatch {
			return nil, ErrNestedBatch
		}
		e.U8(uint8(f.Kind))
		e.U64(f.ReqID)
		e.U16(uint16(f.Op))
		e.Blob(f.Body)
	}
	return &Frame{Kind: FrameBatch, Op: OpBatch, Body: e.Bytes()}, nil
}

// DecodeBatch unpacks a Batch envelope into its sub-frames, in order.
// Nested envelopes, truncated bodies, hostile counts and trailing garbage
// are all errors: an envelope that does not parse exactly poisons the
// connection's framing, so the caller must drop the connection.
func DecodeBatch(f *Frame) ([]*Frame, error) {
	if f.Kind != FrameBatch {
		return nil, fmt.Errorf("%w: frame kind %d is not a batch", ErrBadBatch, f.Kind)
	}
	d := NewDecoder(f.Body)
	n := int(d.U32())
	if !d.Need(n * batchSubHeader) {
		return nil, fmt.Errorf("%w: count %d exceeds body", ErrBadBatch, n)
	}
	subs := make([]*Frame, 0, n)
	for i := 0; i < n; i++ {
		sub := &Frame{
			Kind:  FrameKind(d.U8()),
			ReqID: d.U64(),
			Op:    Op(d.U16()),
			// Bodies alias the envelope buffer (BlobView): sub-frames go
			// straight into the dispatch path that plain frames take, and
			// the envelope buffer is never reused, so skipping the copy
			// keeps the per-message overhead this layer exists to remove.
			Body: d.BlobView(),
		}
		if d.Err() != nil {
			return nil, fmt.Errorf("%w: sub-frame %d: %v", ErrBadBatch, i, d.Err())
		}
		if sub.Kind == FrameBatch {
			return nil, ErrNestedBatch
		}
		subs = append(subs, sub)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadBatch, d.Remaining())
	}
	return subs, nil
}
