package protocol

// Remote error codes carried by ErrorResp, so the host can distinguish
// recoverable conditions (a busy exclusive device) from programming errors.
const (
	CodeInternal      uint32 = 1
	CodeUnknownObject uint32 = 2
	CodeBuildFailed   uint32 = 3
	CodeLaunchFailed  uint32 = 4
	CodeUnsupported   uint32 = 5
	CodeDeviceBusy    uint32 = 6
	CodeBadRequest    uint32 = 7
	// CodeNodeLost marks failures caused by a peer node dying or leaving
	// the cluster: peer dial/push failures, cancelled push rendezvous,
	// and commands orphaned by a membership change. Unlike the other
	// codes it is *retriable* — the host's recovery path clears it and
	// re-issues the affected commands instead of latching it sticky.
	CodeNodeLost uint32 = 8
)
