package protocol

// Remote error codes carried by ErrorResp, so the host can distinguish
// recoverable conditions (a busy exclusive device) from programming errors.
const (
	CodeInternal      uint32 = 1
	CodeUnknownObject uint32 = 2
	CodeBuildFailed   uint32 = 3
	CodeLaunchFailed  uint32 = 4
	CodeUnsupported   uint32 = 5
	CodeDeviceBusy    uint32 = 6
	CodeBadRequest    uint32 = 7
)
