package protocol

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestEncodeDecodePrimitives(t *testing.T) {
	e := NewEncoder()
	e.U8(7)
	e.U32(1 << 30)
	e.U64(1 << 60)
	e.I64(-42)
	e.F64(3.25)
	e.Bool(true)
	e.Bool(false)
	e.Str("héllo")
	e.Blob([]byte{1, 2, 3})
	e.Ints([]int64{-1, 0, 9})

	d := NewDecoder(e.Bytes())
	if d.U8() != 7 || d.U32() != 1<<30 || d.U64() != 1<<60 || d.I64() != -42 {
		t.Fatal("integer round trip failed")
	}
	if d.F64() != 3.25 || !d.Bool() || d.Bool() {
		t.Fatal("float/bool round trip failed")
	}
	if d.Str() != "héllo" {
		t.Fatal("string round trip failed")
	}
	if !bytes.Equal(d.Blob(), []byte{1, 2, 3}) {
		t.Fatal("blob round trip failed")
	}
	ints := d.Ints()
	if len(ints) != 3 || ints[0] != -1 || ints[2] != 9 {
		t.Fatal("ints round trip failed")
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

// TestPrimitiveRoundTripProperty fuzzes the scalar codecs.
func TestPrimitiveRoundTripProperty(t *testing.T) {
	check := func(a uint32, b uint64, c int64, f float64, s string, blob []byte, vs []int64) bool {
		e := NewEncoder()
		e.U32(a)
		e.U64(b)
		e.I64(c)
		e.F64(f)
		e.Str(s)
		e.Blob(blob)
		e.Ints(vs)
		d := NewDecoder(e.Bytes())
		if d.U32() != a || d.U64() != b || d.I64() != c {
			return false
		}
		got := d.F64()
		if got != f && !(got != got && f != f) { // NaN-safe compare
			return false
		}
		if d.Str() != s || !bytes.Equal(d.Blob(), blob) {
			return false
		}
		dvs := d.Ints()
		if len(dvs) != len(vs) {
			return false
		}
		for i := range vs {
			if dvs[i] != vs[i] {
				return false
			}
		}
		return d.Err() == nil && d.Remaining() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2}) // too short for a U32
	_ = d.U32()
	if d.Err() == nil {
		t.Fatal("expected truncation error")
	}
	// Every subsequent read must keep returning zero values, not panic.
	if d.U64() != 0 || d.Str() != "" || d.Blob() != nil || d.Ints() != nil {
		t.Fatal("sticky error not honored")
	}
	if !errors.Is(d.Err(), ErrShortMessage) {
		t.Fatalf("err = %v", d.Err())
	}
}

func TestDecoderHostileLengths(t *testing.T) {
	// A length prefix far past the buffer must fail cleanly.
	e := NewEncoder()
	e.U32(1 << 31)
	d := NewDecoder(e.Bytes())
	if got := d.Str(); got != "" || d.Err() == nil {
		t.Fatalf("hostile string length accepted: %q err=%v", got, d.Err())
	}
	d2 := NewDecoder(e.Bytes())
	if got := d2.Ints(); got != nil || d2.Err() == nil {
		t.Fatal("hostile ints length accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Frame{Kind: FrameRequest, ReqID: 99, Op: OpEnqueueKernel, Body: []byte("payload")}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.ReqID != in.ReqID || out.Op != in.Op || !bytes.Equal(out.Body, in.Body) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestFrameEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Kind: FrameResponse, ReqID: 1, Op: OpHello}); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Body) != 0 {
		t.Fatalf("expected empty body, got %d bytes", len(out.Body))
	}
}

func TestReadFrameBadMagic(t *testing.T) {
	raw := make([]byte, headerSize)
	raw[0], raw[1] = 0xDE, 0xAD
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadFrameBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Kind: FrameRequest, Op: OpHello}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[2] = 99
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestReadFrameOversized(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Kind: FrameRequest, Op: OpHello, Body: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the length field to exceed the limit.
	raw[14], raw[15], raw[16], raw[17] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v, want ErrFrameTooBig", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Kind: FrameRequest, Op: OpHello, Body: make([]byte, 64)}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:headerSize+10]
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want unexpected EOF", err)
	}
}

func TestWriteFrameRejectsOversized(t *testing.T) {
	f := &Frame{Kind: FrameRequest, Op: OpHello}
	f.Body = make([]byte, 1) // placeholder; fake the length check via slice header
	huge := Frame{Kind: FrameRequest, Op: OpHello, Body: make([]byte, 0)}
	_ = huge
	// Construct a frame body just over the limit without allocating 1 GiB:
	// not feasible directly, so verify the guard with a manufactured slice
	// header is skipped and instead trust MaxFrameSize coverage in
	// ReadFrame; here we check the happy path boundary (empty body).
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
}

func TestBlobView(t *testing.T) {
	e := NewEncoder()
	e.Blob([]byte{9, 8, 7})
	d := NewDecoder(e.Bytes())
	v := d.BlobView()
	if len(v) != 3 || v[0] != 9 {
		t.Fatalf("BlobView = %v", v)
	}
}
