// Package profile implements HaoCL's run-time resource monitoring
// component: the host-side view of every device in the cluster, fed by
// NodeStatus polls and by the scheduler's own assignment bookkeeping.
//
// The paper positions this as the substrate for heterogeneity-aware
// scheduling: "an extensible run-time resource monitoring and scheduling
// component that supports both built-in and user customized scheduling
// policies" (§I). Policies in internal/sched consume Snapshot views.
package profile

import (
	"fmt"
	"sort"
	"sync"

	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/vtime"
)

// DeviceKey names one device cluster-wide.
type DeviceKey struct {
	Node     string
	DeviceID uint32
}

// String renders the key as node/devN.
func (k DeviceKey) String() string { return fmt.Sprintf("%s/dev%d", k.Node, k.DeviceID) }

// DeviceView is a point-in-time view of one device for scheduling
// decisions.
type DeviceView struct {
	Key    DeviceKey
	Info   protocol.DeviceInfo
	Status protocol.DeviceStatus
	// Pending is virtual work the host has assigned but the node has not
	// yet reported, so back-to-back scheduling decisions spread load
	// instead of dog-piling the device that last reported idle.
	Pending vtime.Duration
}

// ExpectedFree estimates when the device drains: reported busy frontier
// plus locally assigned pending work.
func (v DeviceView) ExpectedFree() vtime.Time {
	return vtime.Time(v.Status.BusyUntil).Add(v.Pending)
}

// Monitor aggregates device state for the scheduler.
type Monitor struct {
	mu      sync.Mutex
	devices map[DeviceKey]*entry
}

type entry struct {
	info    protocol.DeviceInfo
	status  protocol.DeviceStatus
	pending vtime.Duration
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{devices: make(map[DeviceKey]*entry)}
}

// RegisterDevice records a device discovered during the handshake.
func (m *Monitor) RegisterDevice(node string, info protocol.DeviceInfo) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := DeviceKey{Node: node, DeviceID: info.ID}
	m.devices[key] = &entry{info: info}
}

// RemoveNode drops every device hosted by node — the membership change a
// crash is. Scheduling policies consuming Snapshot stop seeing the node's
// devices immediately; a rejoin re-registers them through RegisterDevice.
func (m *Monitor) RemoveNode(node string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for key := range m.devices {
		if key.Node == node {
			delete(m.devices, key)
		}
	}
}

// UpdateStatus ingests a NodeStatus response. Pending work is decayed to
// zero for devices whose report has caught up with local assignments.
func (m *Monitor) UpdateStatus(node string, statuses []protocol.DeviceStatus) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, st := range statuses {
		key := DeviceKey{Node: node, DeviceID: st.DeviceID}
		e, ok := m.devices[key]
		if !ok {
			continue // unknown device: a stale or misrouted report
		}
		e.status = st
		e.pending = 0
	}
}

// AddPending charges d of anticipated work to a device at assignment time.
func (m *Monitor) AddPending(key DeviceKey, d vtime.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.devices[key]; ok {
		e.pending += d
	}
}

// ObserveCompletion moves a device's known busy frontier forward when the
// host sees an event completion, keeping the view fresh without a status
// round-trip.
func (m *Monitor) ObserveCompletion(key DeviceKey, end vtime.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.devices[key]; ok {
		if int64(end) > e.status.BusyUntil {
			e.status.BusyUntil = int64(end)
		}
	}
}

// Snapshot returns a stable, sorted copy of the device views.
func (m *Monitor) Snapshot() []DeviceView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]DeviceView, 0, len(m.devices))
	for key, e := range m.devices {
		out = append(out, DeviceView{Key: key, Info: e.info, Status: e.status, Pending: e.pending})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Node != out[j].Key.Node {
			return out[i].Key.Node < out[j].Key.Node
		}
		return out[i].Key.DeviceID < out[j].Key.DeviceID
	})
	return out
}

// TotalEnergy sums reported energy across the cluster, in joules.
func (m *Monitor) TotalEnergy() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var j float64
	for _, e := range m.devices {
		j += e.status.EnergyJ
	}
	return j
}
