package profile

import (
	"testing"
	"time"

	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/vtime"
)

func info(id uint32) protocol.DeviceInfo {
	return protocol.DeviceInfo{ID: id, Type: protocol.DeviceGPU, PeakGFLOPS: 5500}
}

func TestRegisterAndSnapshot(t *testing.T) {
	m := NewMonitor()
	m.RegisterDevice("node-b", info(1))
	m.RegisterDevice("node-a", info(2))
	m.RegisterDevice("node-a", info(1))

	snap := m.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot size %d", len(snap))
	}
	// Sorted by node, then device ID.
	if snap[0].Key != (DeviceKey{Node: "node-a", DeviceID: 1}) ||
		snap[1].Key != (DeviceKey{Node: "node-a", DeviceID: 2}) ||
		snap[2].Key != (DeviceKey{Node: "node-b", DeviceID: 1}) {
		t.Fatalf("order: %v %v %v", snap[0].Key, snap[1].Key, snap[2].Key)
	}
	if snap[0].Info.PeakGFLOPS != 5500 {
		t.Fatal("info lost")
	}
}

func TestUpdateStatusClearsPending(t *testing.T) {
	m := NewMonitor()
	key := DeviceKey{Node: "n", DeviceID: 1}
	m.RegisterDevice("n", info(1))
	m.AddPending(key, 5*time.Second)

	snap := m.Snapshot()
	if snap[0].Pending != 5*time.Second {
		t.Fatalf("pending = %v", snap[0].Pending)
	}
	if got := snap[0].ExpectedFree(); got != vtime.Time(5e9) {
		t.Fatalf("expected free = %v", got)
	}

	m.UpdateStatus("n", []protocol.DeviceStatus{{DeviceID: 1, BusyUntil: 7e9, EnergyJ: 42}})
	snap = m.Snapshot()
	if snap[0].Pending != 0 {
		t.Fatal("status update did not clear pending")
	}
	if snap[0].ExpectedFree() != vtime.Time(7e9) {
		t.Fatalf("expected free = %v", snap[0].ExpectedFree())
	}
	if m.TotalEnergy() != 42 {
		t.Fatalf("energy = %v", m.TotalEnergy())
	}
}

func TestUpdateStatusIgnoresUnknownDevices(t *testing.T) {
	m := NewMonitor()
	m.RegisterDevice("n", info(1))
	m.UpdateStatus("n", []protocol.DeviceStatus{{DeviceID: 99, EnergyJ: 1000}})
	if m.TotalEnergy() != 0 {
		t.Fatal("stale report accepted")
	}
}

func TestObserveCompletion(t *testing.T) {
	m := NewMonitor()
	key := DeviceKey{Node: "n", DeviceID: 1}
	m.RegisterDevice("n", info(1))
	m.ObserveCompletion(key, vtime.Time(3e9))
	if got := m.Snapshot()[0].Status.BusyUntil; got != 3e9 {
		t.Fatalf("busyUntil = %d", got)
	}
	// Completions never move the frontier backwards.
	m.ObserveCompletion(key, vtime.Time(1e9))
	if got := m.Snapshot()[0].Status.BusyUntil; got != 3e9 {
		t.Fatalf("busyUntil moved backwards: %d", got)
	}
}

func TestDeviceKeyString(t *testing.T) {
	k := DeviceKey{Node: "gpu-07", DeviceID: 2}
	if k.String() != "gpu-07/dev2" {
		t.Fatalf("String = %q", k.String())
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	m := NewMonitor()
	m.RegisterDevice("n", info(1))
	snap := m.Snapshot()
	snap[0].Pending = time.Hour
	if m.Snapshot()[0].Pending != 0 {
		t.Fatal("snapshot mutation leaked into monitor")
	}
}
