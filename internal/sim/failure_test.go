package sim

import "testing"

// schedule runs an injector for n ticks and records the kill points.
func schedule(seed int64, nodes []string, period, n int) []string {
	inj := NewFailureInjector(seed, nodes, period)
	out := make([]string, n)
	for i := range out {
		out[i] = inj.Tick()
	}
	return out
}

func TestFailureInjectorDeterministic(t *testing.T) {
	nodes := []string{"gpu-0", "gpu-1", "fpga-0"}
	a := schedule(42, nodes, 5, 100)
	b := schedule(42, nodes, 5, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tick %d: schedules diverge for the same seed: %q vs %q", i, a[i], b[i])
		}
	}
	kills := 0
	for i, v := range a {
		if (i+1)%5 == 0 {
			if v == "" {
				t.Fatalf("tick %d is a kill point but nominated no victim", i)
			}
			kills++
		} else if v != "" {
			t.Fatalf("tick %d nominated %q off-period", i, v)
		}
	}
	if kills != 20 {
		t.Fatalf("got %d kills over 100 ticks at period 5, want 20", kills)
	}
}

func TestFailureInjectorSeedsDiverge(t *testing.T) {
	nodes := []string{"gpu-0", "gpu-1", "fpga-0", "fpga-1"}
	a := schedule(1, nodes, 3, 300)
	b := schedule(2, nodes, 3, 300)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("300-tick schedules identical across different seeds")
	}
}

func TestFailureInjectorNeverFires(t *testing.T) {
	if got := schedule(7, nil, 5, 50); anyKill(got) {
		t.Fatal("injector with no nodes fired")
	}
	if got := schedule(7, []string{"gpu-0"}, 0, 50); anyKill(got) {
		t.Fatal("injector with period 0 fired")
	}
}

func anyKill(sched []string) bool {
	for _, v := range sched {
		if v != "" {
			return true
		}
	}
	return false
}
