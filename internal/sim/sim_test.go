package sim

import (
	"strings"
	"testing"
	"time"

	"github.com/haocl-project/haocl/internal/clc"
	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/kernel"
)

func testRegistry(t *testing.T) *kernel.Registry {
	t.Helper()
	reg := kernel.NewRegistry()
	reg.MustRegister(&kernel.Spec{
		Name:    "noop",
		NumArgs: 1,
		Func: func(it *kernel.Item, args []kernel.Arg) {
			args[0].Int32s()[it.GlobalID(0)] = int32(it.GlobalID(0))
		},
	})
	return reg
}

func TestPresets(t *testing.T) {
	cpu := XeonE5Params(1)
	gpu := TeslaP4Params(2)
	fpga := VU9PParams(3, []string{"noop"})
	if cpu.Info.Type != device.CPU || gpu.Info.Type != device.GPU || fpga.Info.Type != device.FPGA {
		t.Fatal("preset types wrong")
	}
	if gpu.Info.ID != 2 || fpga.Info.ID != 3 {
		t.Fatal("preset IDs not honored")
	}
	if !fpga.PrebuiltOnly || !fpga.Bitstreams["noop"] {
		t.Fatal("FPGA bitstream table wrong")
	}
	// The paper's power story: the FPGA draws less than the GPU.
	if fpga.Info.TDPWatts >= gpu.Info.TDPWatts {
		t.Fatal("FPGA TDP should undercut the GPU")
	}
	if _, err := ParamsForModel("nonsense", 1, nil); err == nil {
		t.Fatal("unknown model accepted")
	}
	for _, m := range []string{ModelXeonE5, ModelTeslaP4, ModelVU9P, "cpu", "gpu", "fpga"} {
		if _, err := ParamsForModel(m, 1, nil); err != nil {
			t.Fatalf("ParamsForModel(%q): %v", m, err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	reg := testRegistry(t)
	if _, err := New(TeslaP4Params(1), nil); err == nil {
		t.Fatal("nil registry accepted")
	}
	bad := TeslaP4Params(1)
	bad.EffCompute = 1.5
	if _, err := New(bad, reg); err == nil {
		t.Fatal("efficiency > 1 accepted")
	}
	bad2 := TeslaP4Params(1)
	bad2.Info.PeakGFLOPS = 0
	if _, err := New(bad2, reg); err == nil {
		t.Fatal("zero peak accepted")
	}
}

func TestRooflineModel(t *testing.T) {
	dev, err := New(TeslaP4Params(1), testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	p := TeslaP4Params(1)
	// Compute-bound: flops dominate.
	flops := int64(p.Info.PeakGFLOPS * p.EffCompute * 1e9) // exactly 1 second of work
	d := dev.ModelKernel(kernel.Cost{Flops: flops})
	if d < time.Second || d > time.Second+time.Millisecond {
		t.Fatalf("compute-bound duration = %v, want ~1s", d)
	}
	// Memory-bound: bytes dominate.
	bytes := int64(p.Info.MemBWGBps * p.EffMem * 1e9) // 1 second of traffic
	d = dev.ModelKernel(kernel.Cost{Flops: 1, Bytes: bytes})
	if d < time.Second || d > time.Second+time.Millisecond {
		t.Fatalf("memory-bound duration = %v, want ~1s", d)
	}
	// Launch overhead floors tiny kernels.
	if d := dev.ModelKernel(kernel.Cost{}); d < p.Info.LaunchOverhead {
		t.Fatalf("tiny kernel %v < launch overhead", d)
	}
	// Transfers follow PCIe bandwidth.
	xfer := dev.ModelTransfer(int64(p.Info.PCIeGBps * 1e9))
	if xfer < time.Second || xfer > time.Second+time.Millisecond {
		t.Fatalf("transfer = %v, want ~1s", xfer)
	}
	if dev.ModelTransfer(0) != 0 || dev.ModelTransfer(-1) != 0 {
		t.Fatal("empty transfer should cost nothing")
	}
	if dev.EnergyRate() != p.Info.TDPWatts {
		t.Fatal("energy rate mismatch")
	}
}

func TestFPGAStreamFill(t *testing.T) {
	reg := testRegistry(t)
	fpga, err := New(VU9PParams(1, []string{"noop"}), testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	_ = reg
	base := VU9PParams(1, nil)
	d := fpga.ModelKernel(kernel.Cost{})
	if d < base.StreamFill+base.Info.LaunchOverhead {
		t.Fatalf("FPGA launch %v misses pipeline fill", d)
	}
}

func TestExecuteFunctional(t *testing.T) {
	dev, err := New(TeslaP4Params(1), testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*16)
	err = dev.Execute("noop", kernel.Launch{Global: []int{16}, Args: []kernel.Arg{kernel.BufferArg(buf)}})
	if err != nil {
		t.Fatal(err)
	}
	got := kernel.BufferArg(buf).Int32s()
	for i, v := range got {
		if v != int32(i) {
			t.Fatalf("element %d = %d", i, v)
		}
	}
	if err := dev.Execute("missing", kernel.Launch{Global: []int{1}}); err == nil {
		t.Fatal("missing kernel executed")
	}
}

func TestFPGAPrebuiltEnforcement(t *testing.T) {
	reg := testRegistry(t)
	reg.MustRegister(&kernel.Spec{Name: "other", Func: func(*kernel.Item, []kernel.Arg) {}})
	fpga, err := New(VU9PParams(1, []string{"noop"}), reg)
	if err != nil {
		t.Fatal(err)
	}
	// "other" is registered but has no bitstream: execution must fail.
	if err := fpga.Execute("other", kernel.Launch{Global: []int{1}}); err == nil {
		t.Fatal("FPGA ran a kernel without a bitstream")
	}

	progOK, err := clc.Parse(`__kernel void noop(__global int* x) { }`)
	if err != nil {
		t.Fatal(err)
	}
	if log, err := fpga.CheckProgram(progOK); err != nil {
		t.Fatalf("CheckProgram: %v\n%s", err, log)
	}
	progBad, err := clc.Parse(`__kernel void other(__global int* x) { }`)
	if err != nil {
		t.Fatal(err)
	}
	log, err := fpga.CheckProgram(progBad)
	if err == nil {
		t.Fatal("CheckProgram accepted a kernel without a bitstream")
	}
	if !strings.Contains(log, "no pre-built bitstream") {
		t.Fatalf("log = %q", log)
	}
}

func TestCheckProgramMissingBinary(t *testing.T) {
	gpu, err := New(TeslaP4Params(1), testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := clc.Parse(`__kernel void unknown_kernel(__global int* x) { }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gpu.CheckProgram(prog); err == nil {
		t.Fatal("CheckProgram accepted a kernel with no device binary")
	}
}

func TestICDIntegration(t *testing.T) {
	icd := device.NewICD()
	RegisterDrivers(icd, testRegistry(t))
	drivers := icd.Drivers()
	if len(drivers) != 3 {
		t.Fatalf("drivers = %v", drivers)
	}
	dev, err := icd.Open(device.Config{Driver: DriverGPU, ID: 5, Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	if dev.Info().ID != 5 || !dev.Info().Shared || dev.Info().Type != device.GPU {
		t.Fatalf("opened info = %+v", dev.Info())
	}
	if _, err := icd.Open(device.Config{Driver: "missing"}); err == nil {
		t.Fatal("unknown driver opened")
	}
	if _, err := icd.Open(device.Config{Driver: DriverGPU, Model: "bogus"}); err == nil {
		t.Fatal("bogus model opened")
	}
	if DriverForType(device.CPU) != DriverCPU || DriverForType(device.GPU) != DriverGPU ||
		DriverForType(device.FPGA) != DriverFPGA {
		t.Fatal("DriverForType mapping wrong")
	}
}

func TestNetworkPresets(t *testing.T) {
	link := NewEthernetLink()
	// 117.5 MB over a 1 GbE link takes about a second.
	if cost := link.TransferCost(int64(GigabitBytesPerSec)); cost < time.Second || cost > 1100*time.Millisecond {
		t.Fatalf("ethernet cost = %v", cost)
	}
	mem := NewHostMemory()
	if cost := mem.TransferCost(int64(HostCreateBytesPerSec)); cost < time.Second || cost > 1100*time.Millisecond {
		t.Fatalf("host memory cost = %v", cost)
	}
	if NewHostNIC() == nil {
		t.Fatal("nil NIC")
	}
}

func TestOccupancyDerating(t *testing.T) {
	dev, err := New(TeslaP4Params(1), testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	cost := kernel.Cost{Flops: 1e9}
	full := dev.ModelKernel(kernel.Cost{Flops: cost.Flops, Items: 1 << 20})
	tiny := dev.ModelKernel(kernel.Cost{Flops: cost.Flops, Items: 16})
	if tiny <= full {
		t.Fatalf("16-item launch (%v) not slower than full launch (%v)", tiny, full)
	}
	// Unknown item counts (cost overrides) assume full occupancy.
	unknown := dev.ModelKernel(kernel.Cost{Flops: cost.Flops})
	if unknown != full {
		t.Fatalf("unknown occupancy (%v) differs from full (%v)", unknown, full)
	}
}
