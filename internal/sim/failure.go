package sim

import "math/rand"

// FailureInjector is the deterministic chaos driver for fault-tolerance
// testing: a seeded schedule of node kills. The harness calls Tick once per
// workload step; every period-th tick nominates a victim, chosen by the
// seeded generator, so a given (seed, nodes, period) triple always produces
// the same kill schedule — failures are reproducible the same way the rest
// of the simulation is.
type FailureInjector struct {
	rng    *rand.Rand
	nodes  []string
	period int
	step   int
}

// NewFailureInjector builds an injector over the named nodes that nominates
// one victim every period ticks. A period of zero or less, or an empty node
// list, yields an injector that never fires.
func NewFailureInjector(seed int64, nodes []string, period int) *FailureInjector {
	return &FailureInjector{
		rng:    rand.New(rand.NewSource(seed)),
		nodes:  append([]string(nil), nodes...),
		period: period,
	}
}

// Tick advances the schedule by one step and returns the victim node name
// when this step is a kill point, or "" otherwise.
func (f *FailureInjector) Tick() string {
	if f.period <= 0 || len(f.nodes) == 0 {
		return ""
	}
	f.step++
	if f.step%f.period != 0 {
		return ""
	}
	return f.nodes[f.rng.Intn(len(f.nodes))]
}

// Step reports how many ticks have elapsed.
func (f *FailureInjector) Step() int { return f.step }
