package sim

import (
	"time"

	"github.com/haocl-project/haocl/internal/vtime"
)

// Network model constants, calibrated to the paper's testbed: all nodes
// connected through Gigabit Ethernet (§IV-A), message delivery handled by
// the communication backbone with one message per OpenCL API call.
const (
	// GigabitBytesPerSec is the sustained goodput of one 1 GbE link after
	// framing overhead (~94% of 125 MB/s).
	GigabitBytesPerSec = 117.5e6

	// MessageLatency is the one-way latency of a backbone message:
	// kernel-bypass-free TCP on a cloud LAN.
	MessageLatency = 150 * time.Microsecond

	// HostCreateBytesPerSec is the rate at which the host program
	// materializes benchmark input data in memory (Fig. 3 "DataCreate"):
	// generation plus one memory write pass.
	HostCreateBytesPerSec = 800e6
)

// NewEthernetLink returns a fresh Gigabit Ethernet link model. Each
// host↔node pair gets its own link; the host's NIC is modeled by a shared
// uplink (see HostNIC) so total egress bandwidth is bounded as on the real
// single-homed host node.
func NewEthernetLink() *vtime.Link {
	return vtime.NewLink(MessageLatency, GigabitBytesPerSec)
}

// NewHostNIC returns the host node's shared network interface. All
// host-originated transfers serialize through it, which is why Fig. 3's
// DataTransfer component stays nearly flat as GPU count grows.
func NewHostNIC() *vtime.Link {
	return vtime.NewLink(MessageLatency, GigabitBytesPerSec)
}

// NewHostMemory returns the host-side data-creation resource.
func NewHostMemory() *vtime.Link {
	return vtime.NewLink(time.Microsecond, HostCreateBytesPerSec)
}
