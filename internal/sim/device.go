// Package sim provides the simulated heterogeneous devices and the network
// timing models used by this reproduction.
//
// The paper's testbed — Intel Xeon E5-2686 CPUs, NVIDIA Tesla P4 GPUs,
// Xilinx VU9P FPGAs, Gigabit Ethernet — is replaced by calibrated analytic
// models (DESIGN.md §1): functional kernel execution is real Go code run by
// internal/kernel, while the *reported* duration of every command comes
// from a roofline-style model,
//
//	t = max(flops / effective_compute, bytes / effective_bandwidth) + overhead,
//
// so the figures depend only on hardware ratios, not on the machine running
// the reproduction. FPGA devices follow the paper's constraint that tasks
// are pre-built binaries: kernels without a configured bitstream do not
// build (§III-D), and execution adds a streaming pipeline-fill latency.
package sim

import (
	"fmt"
	"strings"
	"time"

	"github.com/haocl-project/haocl/internal/clc"
	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/kernel"
	"github.com/haocl-project/haocl/internal/vtime"
)

// Params fully describes one simulated device.
type Params struct {
	Info device.Info

	// EffCompute and EffMem derate the peak numbers to sustained rates
	// for naive OpenCL kernels (uncoalesced access, no tiling), which is
	// what the Rodinia/SHOC benchmarks the paper runs look like.
	EffCompute float64
	EffMem     float64

	// StreamFill is the FPGA pipeline fill latency added per launch.
	StreamFill vtime.Duration

	// PrebuiltOnly restricts the device to kernels named in Bitstreams.
	PrebuiltOnly bool
	Bitstreams   map[string]bool

	// Workers caps functional execution parallelism.
	Workers int
}

// Device is a simulated CPU, GPU or FPGA implementing device.Device.
type Device struct {
	params  Params
	kernels *kernel.Registry
}

var _ device.Device = (*Device)(nil)

// New creates a simulated device executing kernels from reg.
func New(params Params, reg *kernel.Registry) (*Device, error) {
	if reg == nil {
		return nil, fmt.Errorf("sim: device %q needs a kernel registry", params.Info.Name)
	}
	if params.Info.PeakGFLOPS <= 0 || params.Info.MemBWGBps <= 0 {
		return nil, fmt.Errorf("sim: device %q needs positive peak rates", params.Info.Name)
	}
	if params.EffCompute <= 0 || params.EffCompute > 1 || params.EffMem <= 0 || params.EffMem > 1 {
		return nil, fmt.Errorf("sim: device %q efficiency factors must be in (0,1]", params.Info.Name)
	}
	return &Device{params: params, kernels: reg}, nil
}

// Info implements device.Device.
func (d *Device) Info() device.Info { return d.params.Info }

// Kernels implements device.Device.
func (d *Device) Kernels() *kernel.Registry { return d.kernels }

// CheckProgram implements device.Device. It validates every kernel in the
// parsed program against the device's executable store and, for
// pre-built-only devices, the bitstream table.
func (d *Device) CheckProgram(prog *clc.Program) (string, error) {
	var log strings.Builder
	fmt.Fprintf(&log, "%s: building %d kernel(s)\n", d.params.Info.Name, len(prog.Kernels))
	for i := range prog.Kernels {
		k := &prog.Kernels[i]
		if d.params.PrebuiltOnly && !d.params.Bitstreams[k.Name] {
			fmt.Fprintf(&log, "  %s: ERROR no pre-built bitstream\n", k.Name)
			return log.String(), fmt.Errorf("sim: device %q has no pre-built bitstream for kernel %q",
				d.params.Info.Name, k.Name)
		}
		if !d.kernels.Has(k.Name) {
			fmt.Fprintf(&log, "  %s: ERROR no device binary\n", k.Name)
			return log.String(), fmt.Errorf("sim: device %q has no binary for kernel %q",
				d.params.Info.Name, k.Name)
		}
		fmt.Fprintf(&log, "  %s: ok (%d args)\n", k.Name, len(k.Params))
	}
	return log.String(), nil
}

// Execute implements device.Device: functional execution through the
// NDRange executor.
func (d *Device) Execute(name string, l kernel.Launch) error {
	if d.params.PrebuiltOnly && !d.params.Bitstreams[name] {
		return fmt.Errorf("sim: device %q: kernel %q is not a pre-built bitstream",
			d.params.Info.Name, name)
	}
	spec, err := d.kernels.Lookup(name)
	if err != nil {
		return err
	}
	if l.Workers == 0 {
		l.Workers = d.params.Workers
	}
	return kernel.Run(spec, l)
}

// lanesPerCU approximates concurrent work-items per compute unit for the
// occupancy model (SIMD lanes × in-flight groups on a GPU SM).
const lanesPerCU = 128

// occupancy derates throughput for launches too small to fill the device:
// a launch of k work-items on a device with L hardware lanes sustains at
// most k/L of peak.
func (d *Device) occupancy(items int64) float64 {
	if items <= 0 {
		return 1 // unknown (cost override): assume a full-scale launch
	}
	lanes := int64(d.params.Info.ComputeUnits) * lanesPerCU
	if items >= lanes {
		return 1
	}
	return float64(items) / float64(lanes)
}

// ModelKernel implements device.Device with the roofline model plus
// occupancy derating.
func (d *Device) ModelKernel(c kernel.Cost) vtime.Duration {
	occ := d.occupancy(c.Items)
	computeSec := float64(c.Flops) / (d.params.Info.PeakGFLOPS * d.params.EffCompute * occ * 1e9)
	memSec := float64(c.Bytes) / (d.params.Info.MemBWGBps * d.params.EffMem * occ * 1e9)
	sec := computeSec
	if memSec > sec {
		sec = memSec
	}
	return d.params.Info.LaunchOverhead + d.params.StreamFill + vtime.Duration(sec*1e9)
}

// ModelTransfer implements device.Device: PCIe (or memory-bus) staging.
func (d *Device) ModelTransfer(n int64) vtime.Duration {
	if n <= 0 {
		return 0
	}
	sec := float64(n) / (d.params.Info.PCIeGBps * 1e9)
	return vtime.Duration(sec * 1e9)
}

// EnergyRate implements device.Device.
func (d *Device) EnergyRate() float64 { return d.params.Info.TDPWatts }

// --- Model presets ---------------------------------------------------------

// Preset names accepted by the sim drivers.
const (
	ModelXeonE5  = "xeon-e5-2686" // the paper's host/compute CPU
	ModelTeslaP4 = "tesla-p4"     // the paper's GPU nodes
	ModelVU9P    = "vu9p"         // the paper's FPGA nodes
)

// XeonE5Params models one Intel Xeon E5-2686 v4 socket (18 cores, AVX2).
func XeonE5Params(id uint32) Params {
	return Params{
		Info: device.Info{
			ID:               id,
			Type:             device.CPU,
			Name:             "Intel Xeon E5-2686 v4",
			Vendor:           "Intel",
			ComputeUnits:     18,
			ClockMHz:         2300,
			GlobalMemBytes:   64 << 30,
			MaxWorkGroupSize: 8192,
			PeakGFLOPS:       1320,
			MemBWGBps:        76.8,
			LaunchOverhead:   5 * time.Microsecond,
			PCIeGBps:         20, // host memory, no PCIe hop
			TDPWatts:         145,
			IdleWatts:        45,
		},
		EffCompute: 0.25,
		EffMem:     0.50,
	}
}

// TeslaP4Params models one NVIDIA Tesla P4 (2560 CUDA cores, 8 GiB GDDR5).
// Efficiency factors are calibrated for naive, global-memory-bound OpenCL
// kernels so Fig. 3's absolute scale lands near the paper's.
func TeslaP4Params(id uint32) Params {
	return Params{
		Info: device.Info{
			ID:               id,
			Type:             device.GPU,
			Name:             "NVIDIA Tesla P4",
			Vendor:           "NVIDIA",
			ComputeUnits:     20,
			ClockMHz:         1063,
			GlobalMemBytes:   8 << 30,
			MaxWorkGroupSize: 1024,
			PeakGFLOPS:       5500,
			MemBWGBps:        192,
			LaunchOverhead:   10 * time.Microsecond,
			PCIeGBps:         12,
			TDPWatts:         75,
			IdleWatts:        8,
		},
		EffCompute: 0.35,
		EffMem:     0.30,
	}
}

// VU9PParams models one Xilinx Virtex UltraScale+ VU9P used as a streaming
// processor with pre-built kernels only.
func VU9PParams(id uint32, bitstreams []string) Params {
	bs := make(map[string]bool, len(bitstreams))
	for _, b := range bitstreams {
		bs[b] = true
	}
	return Params{
		Info: device.Info{
			ID:               id,
			Type:             device.FPGA,
			Name:             "Xilinx VU9P",
			Vendor:           "Xilinx",
			ComputeUnits:     64, // configured pipeline lanes
			ClockMHz:         300,
			GlobalMemBytes:   32 << 30,
			MaxWorkGroupSize: 256,
			PeakGFLOPS:       1800,
			MemBWGBps:        34,
			LaunchOverhead:   50 * time.Microsecond,
			PCIeGBps:         8,
			TDPWatts:         45,
			IdleWatts:        12,
		},
		EffCompute: 0.55, // deep pipelines sustain close to configured rate
		EffMem:     0.80, // streaming, fully coalesced by construction
		StreamFill: 20 * time.Microsecond,

		PrebuiltOnly: true,
		Bitstreams:   bs,
	}
}

// ParamsForModel resolves a preset by name.
func ParamsForModel(model string, id uint32, bitstreams []string) (Params, error) {
	switch model {
	case ModelXeonE5, "cpu":
		return XeonE5Params(id), nil
	case ModelTeslaP4, "gpu":
		return TeslaP4Params(id), nil
	case ModelVU9P, "fpga":
		return VU9PParams(id, bitstreams), nil
	default:
		return Params{}, fmt.Errorf("sim: unknown device model %q", model)
	}
}

// Driver names registered by RegisterDrivers.
const (
	DriverCPU  = "sim-cpu"
	DriverGPU  = "sim-gpu"
	DriverFPGA = "sim-fpga"
)

// RegisterDrivers installs the three simulated drivers into an ICD,
// executing kernels from reg. Called explicitly at node setup (no init
// magic), mirroring how vendor ICDs are enumerated at runtime.
func RegisterDrivers(icd *device.ICD, reg *kernel.Registry) {
	mk := func(defaultModel string) device.Factory {
		return func(cfg device.Config) (device.Device, error) {
			model := cfg.Model
			if model == "" {
				model = defaultModel
			}
			p, err := ParamsForModel(model, cfg.ID, cfg.Bitstreams)
			if err != nil {
				return nil, err
			}
			p.Info.Shared = cfg.Shared
			p.Workers = cfg.Workers
			return New(p, reg)
		}
	}
	icd.MustRegister(DriverCPU, mk(ModelXeonE5))
	icd.MustRegister(DriverGPU, mk(ModelTeslaP4))
	icd.MustRegister(DriverFPGA, mk(ModelVU9P))
}

// DriverForType maps a device type to its sim driver name.
func DriverForType(t device.Type) string {
	switch t {
	case device.CPU:
		return DriverCPU
	case device.GPU:
		return DriverGPU
	default:
		return DriverFPGA
	}
}
