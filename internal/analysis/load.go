package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Dir       string
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Imports   []*Package // module-internal imports only
}

// Loader parses and type-checks packages of one module without the go
// command: module-internal imports resolve to source directories under the
// module root, and standard-library imports go through the source importer
// (the toolchain ships no pre-compiled export data to read). Cgo is
// disabled for the whole process so packages like net type-check against
// their pure-Go fallbacks.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std   types.Importer
	cache map[string]*Package // keyed by absolute directory
}

// NewLoader locates the module containing dir (by walking up to go.mod) and
// returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      make(map[string]*Package),
	}, nil
}

// Expand resolves package patterns (a directory, or a directory with a
// trailing /... wildcard) to the directories that contain buildable Go
// files, in deterministic order.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return
		}
		if !seen[abs] && l.hasGoFiles(abs) {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			if rest == "" {
				rest = "."
			}
			rootAbs, err := filepath.Abs(rest)
			if err != nil {
				return nil, err
			}
			err = filepath.WalkDir(rootAbs, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != rootAbs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(pat)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func (l *Loader) hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the package in dir (non-test files only),
// memoized for the loader's lifetime.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.cache[abs]; ok {
		if p == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", abs)
		}
		return p, nil
	}
	l.cache[abs] = nil // cycle guard

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", abs)
	}

	pkgPath := l.pkgPathFor(abs, files[0].Name.Name)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg := &Package{Dir: abs, PkgPath: pkgPath, Fset: l.Fset, Files: files, TypesInfo: info}
	conf := types.Config{
		Importer: &moduleImporter{l: l, from: pkg},
		Error:    func(error) {}, // collect everything, fail on the first below
	}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", pkgPath, err)
	}
	pkg.Pkg = tpkg
	l.cache[abs] = pkg
	return pkg, nil
}

// pkgPathFor derives the import path for a directory: module-relative when
// under the module root, otherwise the package name (fixture packages).
func (l *Loader) pkgPathFor(abs, pkgName string) string {
	if rel, err := filepath.Rel(l.ModuleRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.ModulePath
		}
		return l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return pkgName
}

// moduleImporter resolves one loading package's imports: module-internal
// paths recurse into the loader, everything else is standard library.
type moduleImporter struct {
	l    *Loader
	from *Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.l.ModulePath || strings.HasPrefix(path, m.l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, m.l.ModulePath), "/")
		dep, err := m.l.LoadDir(filepath.Join(m.l.ModuleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		m.from.Imports = append(m.from.Imports, dep)
		return dep.Pkg, nil
	}
	return m.l.std.Import(path)
}
