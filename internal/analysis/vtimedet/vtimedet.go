// Package vtimedet polices the virtual-time determinism contract: in
// packages whose doc comment carries the "haoclvet:deterministic" marker,
// the same inputs must produce byte-identical schedules, so wall-clock
// reads, unseeded randomness, and order-sensitive map iteration are
// reported.
//
// Three rules apply inside deterministic packages:
//
//   - no time.Now / time.Since / time.Until (time.Sleep is allowed — it
//     paces real execution without feeding values into the model);
//   - no package-level math/rand calls (rand.Intn etc.); explicitly seeded
//     generators via rand.New(rand.NewSource(seed)) are fine;
//   - no ranging over a map when the loop body appends to a slice that
//     outlives the loop (unless a sort of that slice follows in the same
//     block) or calls a function that issues wire frames or charges
//     virtual time.
//
// Wire-issuing functions are marked "haoclvet:wire" in their doc comments;
// the marker propagates to in-package callers transitively and crosses
// package boundaries through analyzer facts, so a map-range calling a
// helper that eventually reaches transport.(*Client).Go is still caught.
package vtimedet

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/haocl-project/haocl/internal/analysis"
)

// Analyzer is the vtimedet check.
var Analyzer = &analysis.Analyzer{
	Name: "vtimedet",
	Doc:  "reports wall-clock, unseeded-rand, and map-order leaks in deterministic packages",
	Run:  run,
}

// wireFact marks a function that (transitively) issues wire frames or
// charges virtual time.
type wireFact struct{}

func run(pass *analysis.Pass) error {
	wire := wireFuncs(pass)
	// Export facts unconditionally: a non-deterministic package (transport)
	// still sources wire markers for its deterministic importers.
	for obj := range wire {
		if obj.Pkg() == pass.Pkg {
			pass.ExportObjectFact(obj, wireFact{})
		}
	}
	if !analysis.HasPackageMarker(pass.Files, "haoclvet:deterministic") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCalls(pass, fn.Body)
			checkBlocks(pass, fn.Body, wire)
		}
	}
	return nil
}

// checkCalls reports wall-clock and unseeded-rand calls.
func checkCalls(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "time":
			switch sel.Sel.Name {
			case "Now", "Since", "Until":
				pass.Reportf(call.Pos(),
					"time.%s in a deterministic package: wall-clock values leak into the virtual-time model",
					sel.Sel.Name)
			}
		case "math/rand", "math/rand/v2":
			switch sel.Sel.Name {
			case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			default:
				pass.Reportf(call.Pos(),
					"math/rand.%s uses the unseeded global generator; use rand.New(rand.NewSource(seed))",
					sel.Sel.Name)
			}
		}
		return true
	})
}

// checkBlocks walks statement blocks so a flagged map-range can look ahead
// for a sort of the slice it builds.
func checkBlocks(pass *analysis.Pass, body *ast.BlockStmt, wire map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, s := range block.List {
			rs, ok := s.(*ast.RangeStmt)
			if !ok {
				continue
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				continue
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				continue
			}
			checkMapRange(pass, rs, block.List[i+1:], wire)
		}
		return true
	})
}

// checkMapRange applies the two map-order rules to one map iteration.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt, wire map[types.Object]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil {
					obj = pass.TypesInfo.Defs[id]
				}
				if obj == nil || withinNode(rs, obj.Pos()) {
					continue // loop-local accumulator dies with the iteration
				}
				if sortedAfter(pass, rest, obj) {
					continue
				}
				pass.Reportf(n.Pos(),
					"appends to %s while ranging over a map: element order is nondeterministic (sort afterwards or iterate a deterministic slice)",
					id.Name)
			}
		case *ast.CallExpr:
			callee := staticCallee(pass.TypesInfo, n)
			if callee == nil {
				return true
			}
			if wire[callee] || hasWireFact(pass, callee) {
				pass.Reportf(n.Pos(),
					"calls %s, which issues wire frames or charges virtual time, while ranging over a map: issue order is nondeterministic",
					callee.Name())
			}
		}
		return true
	})
}

func withinNode(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

// sortedAfter reports whether a later statement in the same block sorts
// the accumulated slice.
func sortedAfter(pass *analysis.Pass, rest []ast.Stmt, slice types.Object) bool {
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			if path != "sort" && path != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if rootObject(pass, arg) == slice {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// rootObject resolves the leading identifier of an expression.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// wireFuncs computes the package's transitive wire set: functions marked
// "haoclvet:wire" plus everything that reaches one through in-package
// calls or through a fact-marked function of another package.
func wireFuncs(pass *analysis.Pass) map[types.Object]bool {
	wire := make(map[types.Object]bool)
	calls := make(map[types.Object][]types.Object)
	var fns []types.Object
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			if obj == nil {
				continue
			}
			fns = append(fns, obj)
			if commentHasMarker(fn.Doc, "haoclvet:wire") {
				wire[obj] = true
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := staticCallee(pass.TypesInfo, call)
				if callee == nil {
					return true
				}
				if callee.Pkg() == pass.Pkg {
					calls[obj] = append(calls[obj], callee)
				} else if hasWireFact(pass, callee) {
					wire[obj] = true
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if wire[fn] {
				continue
			}
			for _, callee := range calls[fn] {
				if wire[callee] {
					wire[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return wire
}

func hasWireFact(pass *analysis.Pass, obj types.Object) bool {
	_, ok := pass.ImportObjectFact(obj)
	return ok
}

// staticCallee resolves a call target to a declared function or method.
func staticCallee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
			return sel.Obj()
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func commentHasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := c.Text
		for len(text) > 0 && (text[0] == '/' || text[0] == ' ' || text[0] == '\t') {
			text = text[1:]
		}
		if text == marker || (len(text) > len(marker) && text[:len(marker)] == marker &&
			(text[len(marker)] == ' ' || text[len(marker)] == ':')) {
			return true
		}
	}
	return false
}
