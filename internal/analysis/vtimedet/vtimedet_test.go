package vtimedet_test

import (
	"testing"

	"github.com/haocl-project/haocl/internal/analysis/analysistest"
	"github.com/haocl-project/haocl/internal/analysis/vtimedet"
)

func TestVtimedet(t *testing.T) {
	analysistest.Run(t, "testdata", vtimedet.Analyzer, "a", "plain")
}
