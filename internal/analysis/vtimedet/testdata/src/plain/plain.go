// Package plain carries no haoclvet:deterministic marker, so wall-clock
// reads and map iteration are fine here.
package plain

import "time"

func now() time.Time { return time.Now() }

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
