// Package a exercises vtimedet inside a deterministic package.
//
// haoclvet:deterministic
package a

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	t := time.Now()             // want `time.Now`
	_ = time.Since(t)           // want `time.Since`
	return int64(time.Until(t)) // want `time.Until`
}

func sleepOK() { time.Sleep(time.Millisecond) }

func unseeded() int {
	return rand.Intn(10) // want `unseeded`
}

func seededOK(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func mapAppendBad(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `nondeterministic`
	}
	return keys
}

func mapAppendSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func loopLocalOK(m map[string]int) int {
	total := 0
	for _, v := range m {
		parts := []int{}
		parts = append(parts, v)
		total += parts[0]
	}
	return total
}

func sliceAppendOK(in []string) []string {
	var out []string
	for _, s := range in {
		out = append(out, s)
	}
	return out
}

// issue ships one frame to a node.
//
// haoclvet:wire
func issue(id int) {}

// sendAll is wire-marked transitively: it calls issue.
func sendAll(ids []int) {
	for _, id := range ids {
		issue(id)
	}
}

func mapWireBad(m map[int]bool) {
	for id := range m {
		sendAll([]int{id}) // want `wire frames`
	}
}

func sliceWireOK(ids []int) {
	for _, id := range ids {
		issue(id)
	}
}
