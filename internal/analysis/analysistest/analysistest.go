// Package analysistest runs analyzers over fixture packages and checks
// their diagnostics against // want comments, mirroring the x/tools
// package of the same name on top of this repository's dependency-free
// analysis driver.
//
// A fixture line expects diagnostics with
//
//	x := m["k"] // want `guarded by mu` "second finding"
//
// where each quoted or backquoted string is a regexp that must match one
// diagnostic reported on that line. Suppression directives are applied
// exactly as the haoclvet driver applies them, so fixtures can assert both
// that //lint:ignore works and that a reasonless directive is itself
// reported.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/haocl-project/haocl/internal/analysis"
)

// Run loads testdata/src/<pkg> for each named package, applies the
// analyzer, filters through the shared suppression logic, and compares the
// result with the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l, err := analysis.NewLoader(testdata)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	for _, name := range pkgs {
		pkg, err := l.LoadDir(filepath.Join(testdata, "src", name))
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		diags := analysis.RunPackage([]*analysis.Analyzer{a}, pkg)
		diags = analysis.Filter(pkg.Fset, pkg.Files, diags)
		check(t, pkg, name, diags)
	}
}

// expectation is one want regexp awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func check(t *testing.T, pkg *analysis.Package, name string, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range wantPatterns(text[idx+len("want "):]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
						continue
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: raw,
					})
				}
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic at %s:%d: [%s] %s",
				name, filepath.Base(pos.Filename), pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q",
				name, filepath.Base(w.file), w.line, w.raw)
		}
	}
}

// wantPatterns tokenizes the quoted/backquoted regexps after "want".
func wantPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return out
			}
			if unq, err := strconv.Unquote(s[:end+1]); err == nil {
				out = append(out, unq)
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[2+end:])
		default:
			return out
		}
	}
	return out
}
