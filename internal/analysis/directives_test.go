package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const directiveSrc = `package p

func f() int {
	x := 1
	//lint:ignore haoclvet/lockguard justified for the test
	y := 2
	//lint:ignore haoclvet/lockguard
	z := 3
	return x + y + z
}
`

// TestFilter checks the escape-hatch contract: a reasoned directive
// suppresses its analyzer's diagnostics on the covered line, a reasonless
// directive suppresses nothing and is itself reported, and directives
// never cross analyzers.
func TestFilter(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tf := fset.File(f.Pos())
	at := func(line int) token.Pos { return tf.LineStart(line) }

	diags := []Diagnostic{
		{Pos: at(6), Message: "finding under reasoned directive", Analyzer: "lockguard"},
		{Pos: at(6), Message: "other analyzer on same line", Analyzer: "vtimedet"},
		{Pos: at(8), Message: "finding under reasonless directive", Analyzer: "lockguard"},
	}
	got := Filter(fset, []*ast.File{f}, diags)

	var messages []string
	for _, d := range got {
		messages = append(messages, d.Analyzer+": "+d.Message)
	}
	joined := strings.Join(messages, "\n")
	if strings.Contains(joined, "finding under reasoned directive") {
		t.Errorf("reasoned directive did not suppress its diagnostic:\n%s", joined)
	}
	if !strings.Contains(joined, "other analyzer on same line") {
		t.Errorf("directive suppressed a different analyzer's diagnostic:\n%s", joined)
	}
	if !strings.Contains(joined, "finding under reasonless directive") {
		t.Errorf("reasonless directive suppressed a diagnostic:\n%s", joined)
	}
	if !strings.Contains(joined, "directive requires a reason") {
		t.Errorf("reasonless directive was not reported:\n%s", joined)
	}
}
