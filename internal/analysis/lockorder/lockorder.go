// Package lockorder enforces a package's documented mutex acquisition
// order.
//
// A package declares its hierarchy with a machine-readable comment
//
//	// lock-order: Buffer.mu < Context.mu < Context.regMu
//
// naming lock *classes* as Type.field. Within any function the analyzer
// tracks which classes are held (linearly, honoring deferred unlocks and
// branch scopes) and reports an acquisition of a class ranked at or below
// one already held — including a second acquisition of the same class,
// which needs an explicit tiebreak and an ignore directive. Calls to
// package functions are checked against a transitive may-acquire summary,
// and "Caller holds <mu>" annotations seed the held set on entry. Locks
// not named in the annotation are outside the hierarchy and ignored.
package lockorder

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/haocl-project/haocl/internal/analysis"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "reports mutex acquisitions that violate the '// lock-order:' ranking",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	ranks, names := parseOrder(pass)
	if len(ranks) == 0 {
		return nil
	}
	summaries := summarize(pass, ranks)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &walker{pass: pass, ranks: ranks, names: names, summaries: summaries,
				held: make(map[*types.Var]int)}
			recv := analysis.ReceiverNamed(pass.TypesInfo, fn)
			for _, spec := range callerHolds(fn.Doc) {
				if g := analysis.ResolveGuardSpec(spec, recv, pass.Pkg); g != nil {
					if _, ranked := ranks[g]; ranked {
						w.held[g]++
					}
				}
			}
			w.stmts(fn.Body.List)
		}
	}
	return nil
}

// parseOrder reads every "// lock-order:" annotation in the package and
// assigns ascending ranks in declaration order.
func parseOrder(pass *analysis.Pass) (map[*types.Var]int, map[*types.Var]string) {
	ranks := make(map[*types.Var]int)
	names := make(map[*types.Var]string)
	next := 0
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "lock-order:")
				if !ok {
					continue
				}
				for _, part := range strings.Split(rest, "<") {
					spec := strings.TrimSpace(part)
					if spec == "" {
						continue
					}
					v := analysis.ResolveGuardSpec(spec, nil, pass.Pkg)
					if v == nil || !analysis.IsMutexType(v.Type()) {
						pass.Reportf(c.Pos(), "lock-order: cannot resolve lock class %q", spec)
						continue
					}
					if _, dup := ranks[v]; !dup {
						ranks[v] = next
						names[v] = spec
						next++
					}
				}
			}
		}
	}
	return ranks, names
}

// summarize computes, for every package function, the set of ranked lock
// classes it may acquire directly or through package-internal calls.
// Function literals are excluded: they typically run on other goroutines,
// where the caller's held set does not apply.
func summarize(pass *analysis.Pass, ranks map[*types.Var]int) map[types.Object]map[*types.Var]bool {
	direct := make(map[types.Object]map[*types.Var]bool)
	calls := make(map[types.Object][]types.Object)
	var fns []types.Object
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			if obj == nil {
				continue
			}
			fns = append(fns, obj)
			acq := make(map[*types.Var]bool)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if field, _, method := analysis.MutexCall(pass.TypesInfo, call); field != nil {
					if (method == "Lock" || method == "RLock") && ranks[field] >= 0 {
						if _, ranked := ranks[field]; ranked {
							acq[field] = true
						}
					}
					return true
				}
				if callee := staticCallee(pass.TypesInfo, call); callee != nil {
					calls[obj] = append(calls[obj], callee)
				}
				return true
			})
			direct[obj] = acq
		}
	}
	// Propagate to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			for _, callee := range calls[fn] {
				for v := range direct[callee] {
					if !direct[fn][v] {
						direct[fn][v] = true
						changed = true
					}
				}
			}
		}
	}
	return direct
}

// staticCallee resolves a call to a function or method defined in this
// package, or nil.
func staticCallee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
			return sel.Obj()
		}
	}
	return nil
}

// walker tracks the held multiset through one function body.
type walker struct {
	pass      *analysis.Pass
	ranks     map[*types.Var]int
	names     map[*types.Var]string
	summaries map[types.Object]map[*types.Var]bool
	held      map[*types.Var]int
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.scan(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scan(e)
		}
		for _, e := range s.Lhs {
			w.scan(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scan(e)
		}
	case *ast.DeclStmt:
		w.scan(nil)
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scan(v)
					}
				}
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.scan(s.Cond)
		w.branch(s.Body)
		if s.Else != nil {
			w.branchStmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.scan(s.Cond)
		}
		w.branch(s.Body)
	case *ast.RangeStmt:
		w.scan(s.X)
		w.branch(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.scan(s.Tag)
		}
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				w.branchList(c.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				w.branchList(c.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CommClause); ok {
				w.branchList(c.Body)
			}
		}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to the end of the function;
		// any other deferred call runs outside the linear order and is
		// skipped (its function literal, if any, is checked standalone).
		if field, _, method := analysis.MutexCall(w.pass.TypesInfo, s.Call); field != nil &&
			(method == "Unlock" || method == "RUnlock") {
			return
		}
		for _, a := range s.Call.Args {
			w.scan(a)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.sub(lit)
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.scan(a)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.sub(lit)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.SendStmt:
		w.scan(s.Chan)
		w.scan(s.Value)
	case *ast.IncDecStmt:
		w.scan(s.X)
	}
}

// branch walks a conditional body with its own copy of the held set, so
// early-return unlock patterns do not leak into the fall-through path.
func (w *walker) branch(b *ast.BlockStmt) { w.branchList(b.List) }

func (w *walker) branchStmt(s ast.Stmt) { w.branchList([]ast.Stmt{s}) }

func (w *walker) branchList(list []ast.Stmt) {
	saved := w.held
	w.held = make(map[*types.Var]int, len(saved))
	for k, v := range saved {
		w.held[k] = v
	}
	w.stmts(list)
	w.held = saved
}

// sub checks a function literal as its own function with nothing held.
func (w *walker) sub(lit *ast.FuncLit) {
	inner := &walker{pass: w.pass, ranks: w.ranks, names: w.names,
		summaries: w.summaries, held: make(map[*types.Var]int)}
	inner.stmts(lit.Body.List)
}

// scan visits an expression's calls in source order.
func (w *walker) scan(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.sub(n)
			return false
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

func (w *walker) call(call *ast.CallExpr) {
	if field, _, method := analysis.MutexCall(w.pass.TypesInfo, call); field != nil {
		rank, ranked := w.ranks[field]
		if !ranked {
			return
		}
		switch method {
		case "Lock", "RLock":
			w.checkAcquire(call, field, rank)
			w.held[field]++
		case "Unlock", "RUnlock":
			if w.held[field] > 0 {
				w.held[field]--
			}
		}
		return
	}
	callee := staticCallee(w.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	for v := range w.summaries[callee] {
		w.checkCall(call, callee, v, w.ranks[v])
	}
}

func (w *walker) checkAcquire(call *ast.CallExpr, field *types.Var, rank int) {
	for h, n := range w.held {
		if n == 0 {
			continue
		}
		if h == field {
			w.pass.Reportf(call.Pos(),
				"acquires %s while already holding %s (same lock class needs an explicit tiebreak)",
				w.names[field], w.names[h])
			return
		}
		if w.ranks[h] > rank {
			w.pass.Reportf(call.Pos(),
				"acquires %s while holding %s, but lock-order ranks %s first",
				w.names[field], w.names[h], w.names[field])
			return
		}
	}
}

func (w *walker) checkCall(call *ast.CallExpr, callee types.Object, v *types.Var, rank int) {
	for h, n := range w.held {
		if n == 0 || h == v {
			// Same-class reacquisition through a call is almost always the
			// callee locking a different instance; the direct-acquire check
			// still catches in-function double locks.
			continue
		}
		if w.ranks[h] > rank {
			w.pass.Reportf(call.Pos(),
				"calls %s, which may acquire %s, while holding %s (lock-order ranks %s first)",
				callee.Name(), w.names[v], w.names[h], w.names[v])
			return
		}
	}
}

// callerHolds extracts "Caller holds <mu>" declarations (shared shape with
// lockguard, duplicated to keep the analyzers independent).
func callerHolds(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var specs []string
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		for {
			idx := strings.Index(text, "Caller holds ")
			if idx < 0 {
				break
			}
			rest := text[idx+len("Caller holds "):]
			val, tail, _ := strings.Cut(rest, " ")
			specs = append(specs, strings.TrimRight(val, ".,;:"))
			text = tail
		}
	}
	return specs
}
