package lockorder_test

import (
	"testing"

	"github.com/haocl-project/haocl/internal/analysis/analysistest"
	"github.com/haocl-project/haocl/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "a", "ignore")
}
