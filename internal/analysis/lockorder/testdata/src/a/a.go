// Package a exercises lockorder against a three-class hierarchy.
package a

import "sync"

// lock-order: Buffer.mu < Context.mu < Context.regMu

type Buffer struct{ mu sync.Mutex }

type Context struct {
	mu    sync.Mutex
	regMu sync.Mutex
}

func good(b *Buffer, c *Context) {
	b.mu.Lock()
	c.mu.Lock()
	c.regMu.Lock()
	c.regMu.Unlock()
	c.mu.Unlock()
	b.mu.Unlock()
}

func bad(b *Buffer, c *Context) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b.mu.Lock() // want `acquires Buffer.mu while holding Context.mu`
	b.mu.Unlock()
}

func double(a, b *Buffer) {
	a.mu.Lock()
	b.mu.Lock() // want `already holding`
	b.mu.Unlock()
	a.mu.Unlock()
}

// lockReg takes the registration lock and releases it.
func lockReg(c *Context) {
	c.regMu.Lock()
	c.regMu.Unlock()
}

// lockCtx takes the context lock and releases it.
func lockCtx(c *Context) {
	c.mu.Lock()
	c.mu.Unlock()
}

func viaCall(c *Context) {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	lockCtx(c) // want `may acquire Context.mu`
}

func viaCallOK(c *Context) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lockReg(c)
}

// heldEntry mutates the registry. Caller holds Context.regMu.
func heldEntry(c *Context) {
	c.mu.Lock() // want `while holding Context.regMu`
	c.mu.Unlock()
}

func branchScoped(c *Context, cond bool) {
	c.mu.Lock()
	if cond {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	b := &Buffer{}
	b.mu.Lock()
	b.mu.Unlock()
}

func sequentialOK(b *Buffer, c *Context) {
	c.mu.Lock()
	c.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}
