// Package ignore exercises the lockorder escape hatch on the
// two-buffers-one-class shape (core's enqueueCopy locks source and
// destination in address order).
package ignore

import "sync"

// lock-order: Buffer.mu

type Buffer struct{ mu sync.Mutex }

func copyBetween(src, dst *Buffer) {
	src.mu.Lock()
	//lint:ignore haoclvet/lockorder fixture: both buffers are locked in address order, a deterministic tiebreak
	dst.mu.Lock()
	dst.mu.Unlock()
	src.mu.Unlock()
}

func copyUnordered(src, dst *Buffer) {
	src.mu.Lock()
	dst.mu.Lock() // want `already holding`
	dst.mu.Unlock()
	src.mu.Unlock()
}
