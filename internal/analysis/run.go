package analysis

import (
	"go/token"
	"sort"
)

// Run loads the packages matched by patterns (plus their module-internal
// dependencies), applies every analyzer to each in dependency order so
// object facts flow from imported packages to importers, and returns the
// surviving diagnostics for the matched packages with suppression
// directives already applied.
func Run(analyzers []*Analyzer, patterns []string) ([]Diagnostic, *token.FileSet, error) {
	l, err := NewLoader(".")
	if err != nil {
		return nil, nil, err
	}
	dirs, err := l.Expand(patterns)
	if err != nil {
		return nil, nil, err
	}
	matched := make(map[string]bool, len(dirs))
	for _, dir := range dirs {
		if _, err := l.LoadDir(dir); err != nil {
			return nil, nil, err
		}
		matched[dir] = true
	}

	var all []*Package
	for _, p := range l.cache {
		if p != nil {
			all = append(all, p)
		}
	}
	order := topoSort(all)

	facts := newFactStore()
	var out []Diagnostic
	for _, pkg := range order {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      l.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
				facts:     facts,
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, err
			}
		}
		if !matched[pkg.Dir] {
			continue // dependency loaded only for facts
		}
		out = append(out, Filter(l.Fset, pkg.Files, diags)...)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := l.Fset.Position(out[i].Pos), l.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, l.Fset, nil
}

// RunPackage applies the analyzers to one already-loaded package with a
// fresh fact store and no suppression filtering; analysistest drives it.
func RunPackage(analyzers []*Analyzer, pkg *Package) []Diagnostic {
	facts := newFactStore()
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
			facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, Diagnostic{
				Pos:      pkg.Files[0].Pos(),
				Message:  "analyzer error: " + err.Error(),
				Analyzer: a.Name,
			})
		}
	}
	return diags
}

// topoSort orders packages so every package follows its module-internal
// imports, with ties broken by directory for determinism.
func topoSort(pkgs []*Package) []*Package {
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Dir < pkgs[j].Dir })
	state := make(map[*Package]int) // 0 unvisited, 1 visiting, 2 done
	var order []*Package
	var visit func(*Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		deps := append([]*Package(nil), p.Imports...)
		sort.Slice(deps, func(i, j int) bool { return deps[i].Dir < deps[j].Dir })
		for _, d := range deps {
			visit(d)
		}
		state[p] = 2
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return order
}
