package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore haoclvet/<name> reason
// comment. A directive suppresses matching diagnostics on its own line
// (trailing comment) or, when it stands alone, on the next line.
type ignoreDirective struct {
	Analyzer string
	Reason   string
	Pos      token.Pos
	File     string
	Line     int // line the directive suppresses
}

// parseIgnoreDirectives extracts this package's suppression directives.
// Directives with an empty reason are returned with Reason == "" — the
// driver reports them and does not let them suppress anything.
func parseIgnoreDirectives(fset *token.FileSet, files []*ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "lint:ignore ")
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				name = strings.TrimPrefix(name, "haoclvet/")
				pos := fset.Position(c.Pos())
				line := pos.Line
				if pos.Column == 1 || standaloneComment(fset, f, c) {
					line++
				}
				out = append(out, ignoreDirective{
					Analyzer: name,
					Reason:   strings.TrimSpace(reason),
					Pos:      c.Pos(),
					File:     pos.Filename,
					Line:     line,
				})
			}
		}
	}
	return out
}

// standaloneComment reports whether c is the only thing on its line, in
// which case the directive applies to the following line.
func standaloneComment(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cp := fset.Position(c.Pos())
	// A trailing directive shares its line with code; a standalone one
	// starts the line (possibly indented). Scan the file's decls for any
	// node ending on the same line before the comment starts.
	same := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || same {
			return false
		}
		if n.End() <= c.Pos() && fset.Position(n.End()).Line == cp.Line {
			same = true
		}
		return n.Pos() < c.Pos()
	})
	return !same
}

// Filter applies suppression directives to diags: diagnostics covered by a
// reasoned directive for their analyzer are dropped, and every directive
// missing a reason becomes its own diagnostic (and suppresses nothing).
// Shared by the CLI driver and analysistest so the escape-hatch semantics
// are what the tests exercise.
func Filter(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	dirs := parseIgnoreDirectives(fset, files)
	var out []Diagnostic
	for _, d := range diags {
		p := fset.Position(d.Pos)
		suppressed := false
		for _, dir := range dirs {
			if dir.Reason != "" && dir.Analyzer == d.Analyzer && dir.File == p.Filename && dir.Line == p.Line {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, dir := range dirs {
		if dir.Reason == "" {
			out = append(out, Diagnostic{
				Pos:      dir.Pos,
				Message:  "lint:ignore haoclvet/" + dir.Analyzer + " directive requires a reason",
				Analyzer: dir.Analyzer,
			})
		}
	}
	return out
}

// HasPackageMarker reports whether any file-level doc comment in the
// package carries the given marker (e.g. "haoclvet:deterministic").
func HasPackageMarker(files []*ast.File, marker string) bool {
	for _, f := range files {
		if f.Doc != nil && commentHasMarker(f.Doc, marker) {
			return true
		}
	}
	return false
}

// commentHasMarker reports whether cg contains a line consisting of the
// marker (with optional trailing text).
func commentHasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// CommentAnnotation extracts the value of "<key> <value>" from a comment
// group, e.g. key "guarded by" over "// guarded by b.mu." yields "b.mu".
// The value is the first token after the key, with trailing punctuation
// stripped. Returns "" when absent.
func CommentAnnotation(cg *ast.CommentGroup, key string) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		idx := strings.Index(text, key+" ")
		if idx < 0 {
			continue
		}
		rest := strings.TrimSpace(text[idx+len(key)+1:])
		val, _, _ := strings.Cut(rest, " ")
		return strings.TrimRight(val, ".,;:")
	}
	return ""
}

// FieldAnnotation extracts a field annotation, checking the trailing line
// comment first and the doc comment second — a field can carry both (prose
// doc above, machine-readable tag on the line), and the tag is usually the
// trailing one.
func FieldAnnotation(f *ast.Field, key string) string {
	if spec := CommentAnnotation(f.Comment, key); spec != "" {
		return spec
	}
	return CommentAnnotation(f.Doc, key)
}

// IsMutexType reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func IsMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// MutexCall decomposes a call like x.mu.Lock() into the mutex field object
// and the method name ("Lock", "RLock", "Unlock", "RUnlock"). The second
// return is the receiver expression of the mutex (x.mu). Returns nil field
// for anything else.
func MutexCall(info *types.Info, call *ast.CallExpr) (field *types.Var, recv ast.Expr, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil, ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, nil, ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, nil, ""
	}
	s := info.Selections[inner]
	if s == nil || s.Kind() != types.FieldVal {
		return nil, nil, ""
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !IsMutexType(v.Type()) {
		return nil, nil, ""
	}
	return v, inner.X, sel.Sel.Name
}

// BasePath renders an expression as a dotted chain of identifiers
// ("s.node", "b.ctx"), or "" when the expression contains anything else
// (calls, indexing) — callers then fall back to type-level matching.
func BasePath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := BasePath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return BasePath(e.X)
	case *ast.StarExpr:
		return BasePath(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return BasePath(e.X)
		}
	}
	return ""
}

// NamedOf unwraps pointers and aliases down to the defining *types.Named.
func NamedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// ResolveGuardSpec resolves an annotation value like "mu", "b.mu" or
// "Session.mu" to the mutex field object it names. owner is the struct
// type the annotated field/method belongs to (may be nil for plain
// functions); pkg scopes Type.field lookups.
func ResolveGuardSpec(spec string, owner *types.Named, pkg *types.Package) *types.Var {
	qual, name, qualified := strings.Cut(spec, ".")
	if !qualified {
		name = qual
		qual = ""
	}
	if qual != "" {
		// Type-qualified ("Session.mu") when the qualifier names a package
		// type; receiver-qualified ("b.mu") otherwise.
		if obj, ok := pkg.Scope().Lookup(qual).(*types.TypeName); ok {
			if n := NamedOf(obj.Type()); n != nil {
				return structField(n, name)
			}
			return nil
		}
	}
	if owner != nil {
		return structField(owner, name)
	}
	return nil
}

// structField finds a (possibly embedded) field by name on a named struct.
func structField(n *types.Named, name string) *types.Var {
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return st.Field(i)
		}
	}
	return nil
}

// ReceiverNamed returns the receiver's named type for a method decl, or nil.
func ReceiverNamed(info *types.Info, fn *ast.FuncDecl) *types.Named {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	tv, ok := info.Types[fn.Recv.List[0].Type]
	if !ok {
		return nil
	}
	return NamedOf(tv.Type)
}
