// Package analysis is a minimal, dependency-free reimplementation of the
// go/analysis driver surface that cmd/haoclvet builds on.
//
// The real golang.org/x/tools/go/analysis framework is the natural host for
// these checkers, but this repository deliberately carries zero third-party
// dependencies (see go.mod), so the package provides the same shape —
// Analyzer, Pass, Diagnostic, object facts — on top of the standard
// library's go/parser and go/types alone. Analyzers written against it look
// like ordinary vet analyzers and could be ported to x/tools verbatim if
// the dependency policy ever changes.
//
// The driver (Run in run.go) loads module packages in dependency order and
// shares a single fact store across them, so an analyzer can export a fact
// about an object in internal/transport and observe it while analyzing
// internal/core.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer; diagnostics print as haoclvet/<Name>
	// and //lint:ignore directives reference it the same way.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
	facts *factStore
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// ExportObjectFact attaches a fact to obj, visible to later passes of the
// same analyzer over any package that can reference obj.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	p.facts.set(p.Analyzer.Name, obj, fact)
}

// ImportObjectFact retrieves a fact previously exported for obj by this
// analyzer, from this or any earlier-analyzed package.
func (p *Pass) ImportObjectFact(obj types.Object) (any, bool) {
	return p.facts.get(p.Analyzer.Name, obj)
}

// factStore is the driver-wide fact table. Packages are type-checked by one
// shared loader, so a types.Object has a single identity across every pass
// and plain pointer keying works.
type factStore struct {
	m map[factKey]any
}

type factKey struct {
	analyzer string
	obj      types.Object
}

func newFactStore() *factStore {
	return &factStore{m: make(map[factKey]any)}
}

func (s *factStore) set(analyzer string, obj types.Object, fact any) {
	s.m[factKey{analyzer, obj}] = fact
}

func (s *factStore) get(analyzer string, obj types.Object) (any, bool) {
	f, ok := s.m[factKey{analyzer, obj}]
	return f, ok
}
