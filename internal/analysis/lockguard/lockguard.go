// Package lockguard flags reads and writes of annotated struct fields
// performed without the documented mutex.
//
// Fields opt in with a "// guarded by <mu>" doc or trailing comment, where
// <mu> is a sibling mutex field ("mu"), a receiver-qualified path ("b.mu"),
// or a Type.field reference for fields guarded by another struct's lock
// ("Session.mu"). A function may access a guarded field when it acquires
// the named mutex anywhere in its body (Lock or RLock — the analysis is
// deliberately flow-insensitive), or when its doc comment declares
// "Caller holds <mu>". Accesses through freshly constructed local values
// are exempt: an object no other goroutine can reach yet needs no lock.
package lockguard

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/haocl-project/haocl/internal/analysis"
)

// Analyzer is the lockguard check.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "reports accesses to '// guarded by <mu>' fields outside the lock",
	Run:  run,
}

// guardInfo records one annotated field's guard.
type guardInfo struct {
	guard *types.Var
	// sameOwner is true when guard and field live on the same struct, in
	// which case the lock's receiver path must match the access path (two
	// Buffers locked independently must not vouch for each other).
	sameOwner bool
	spec      string // annotation text, for diagnostics
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, guards)
		}
	}
	return nil
}

// collectGuards builds the field → guard map from struct annotations.
func collectGuards(pass *analysis.Pass) map[*types.Var]guardInfo {
	guards := make(map[*types.Var]guardInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			named := analysis.NamedOf(obj.Type())
			if named == nil {
				return true
			}
			for _, field := range st.Fields.List {
				spec := analysis.FieldAnnotation(field, "guarded by")
				if spec == "" {
					continue
				}
				guard := analysis.ResolveGuardSpec(spec, named, pass.Pkg)
				if guard == nil {
					pass.Reportf(field.Pos(), "cannot resolve guard %q", spec)
					continue
				}
				sameOwner := structHasField(named, guard)
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = guardInfo{guard: guard, sameOwner: sameOwner, spec: spec}
					}
				}
			}
			return true
		})
	}
	return guards
}

func structHasField(n *types.Named, f *types.Var) bool {
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == f {
			return true
		}
	}
	return false
}

// lockSite is one mutex acquisition found in a function body.
type lockSite struct {
	guard *types.Var
	base  string // receiver path of the mutex ("b", "s.node"), "" if complex
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, guards map[*types.Var]guardInfo) {
	recv := analysis.ReceiverNamed(pass.TypesInfo, fn)

	// Mutexes the caller vouches for.
	held := make(map[*types.Var]bool)
	for _, spec := range callerHolds(fn.Doc) {
		if g := analysis.ResolveGuardSpec(spec, recv, pass.Pkg); g != nil {
			held[g] = true
		}
	}

	// Mutexes the function acquires anywhere in its body.
	var locks []lockSite
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if field, mrecv, method := analysis.MutexCall(pass.TypesInfo, call); field != nil &&
			(method == "Lock" || method == "RLock") {
			locks = append(locks, lockSite{guard: field, base: analysis.BasePath(mrecv)})
		}
		return true
	})

	fresh := freshLocals(pass, fn)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		gi, guarded := guards[v]
		if !guarded {
			return true
		}
		if held[gi.guard] {
			return true
		}
		base := analysis.BasePath(sel.X)
		if rootIsFresh(pass, sel.X, fresh) {
			return true
		}
		ok = false
		for _, l := range locks {
			if l.guard != gi.guard {
				continue
			}
			if !gi.sameOwner || l.base == "" || base == "" || l.base == base {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(sel.Sel.Pos(),
				"%s.%s is guarded by %s, which %s neither holds nor is documented to expect (\"// Caller holds %s\")",
				exprOwner(sel, s), v.Name(), gi.spec, fn.Name.Name, gi.spec)
		}
		return true
	})
}

// exprOwner names the accessed value for the diagnostic: the receiver path
// when printable, else the owning struct type.
func exprOwner(sel *ast.SelectorExpr, s *types.Selection) string {
	if base := analysis.BasePath(sel.X); base != "" {
		return base
	}
	if n := analysis.NamedOf(s.Recv()); n != nil {
		return n.Obj().Name()
	}
	return "value"
}

// callerHolds extracts every "Caller holds <mu>" declaration from a doc
// comment.
func callerHolds(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var specs []string
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		for {
			idx := strings.Index(text, "Caller holds ")
			if idx < 0 {
				break
			}
			rest := text[idx+len("Caller holds "):]
			val, tail, _ := strings.Cut(rest, " ")
			specs = append(specs, strings.TrimRight(val, ".,;:"))
			text = tail
		}
	}
	return specs
}

// freshLocals finds local variables bound to newly constructed values
// (composite literals or new()); field accesses through them need no lock
// because the object has not been shared yet.
func freshLocals(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil && isConstruction(n.Rhs[i]) {
					fresh[obj] = true
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if i < len(n.Values) && isConstruction(n.Values[i]) {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						fresh[obj] = true
					}
				}
			}
		}
		return true
	})
	return fresh
}

// isConstruction reports whether e builds a brand-new value.
func isConstruction(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, lit := e.X.(*ast.CompositeLit)
		return e.Op.String() == "&" && lit
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

// rootIsFresh reports whether the access path is rooted at a
// freshly constructed local.
func rootIsFresh(pass *analysis.Pass, e ast.Expr, fresh map[types.Object]bool) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			return obj != nil && fresh[obj]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}
