package lockguard_test

import (
	"testing"

	"github.com/haocl-project/haocl/internal/analysis/analysistest"
	"github.com/haocl-project/haocl/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, "testdata", lockguard.Analyzer, "a", "ignore")
}

// TestPR8Shapes pins the analyzer against the two lock bugs that shipped
// in the multi-tenant serving PR: the unlocked Context.remote read and the
// restoreOn snapshot under the wrong mutex. Weakening lockguard until
// either shape passes makes this test fail.
func TestPR8Shapes(t *testing.T) {
	analysistest.Run(t, "testdata", lockguard.Analyzer, "pr8")
}
