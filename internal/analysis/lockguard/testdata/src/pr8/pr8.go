// Package pr8 reproduces the two lock bugs that escaped review in the
// multi-tenant serving PR, in the exact shapes they had before their fix:
// an unlocked read of the remote-ID map (Context.remote) and a registry
// snapshot taken under the wrong mutex (restoreOn copying programs under
// mu instead of regMu). lockguard must keep flagging both; if this fixture
// stops failing when the analyzer is weakened, the regression guard is
// gone.
package pr8

import "sync"

type Program struct{ id uint64 }

type Context struct {
	mu sync.Mutex // serializes context-level operations

	regMu    sync.Mutex
	programs []*Program // guarded by regMu

	remoteMu sync.Mutex
	remote   map[string]uint64 // guarded by remoteMu
}

// remoteID is the blessed accessor for the remote map.
func (c *Context) remoteID(node string) uint64 {
	c.remoteMu.Lock()
	defer c.remoteMu.Unlock()
	return c.remote[node]
}

// badRemoteRead is the pre-fix Context.remote shape: reading the map with
// no lock at all while a concurrent recovery rewrites it.
func (c *Context) badRemoteRead(node string) uint64 {
	return c.remote[node] // want `guarded by remoteMu`
}

// badRestoreOn is the pre-fix restoreOn shape: snapshotting the program
// registry under c.mu — the wrong lock — while registration mutates it
// under c.regMu.
func (c *Context) badRestoreOn() []*Program {
	c.mu.Lock()
	defer c.mu.Unlock()
	ps := append([]*Program(nil), c.programs...) // want `guarded by regMu`
	return ps
}

// goodRestoreOn is the shape the fix landed on.
func (c *Context) goodRestoreOn() []*Program {
	c.regMu.Lock()
	ps := append([]*Program(nil), c.programs...)
	c.regMu.Unlock()
	return ps
}
