// Package a exercises lockguard: guarded-field accesses with and without
// the documented mutex.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) bad() int {
	return c.n // want `guarded by mu`
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// bump is a blessed accessor: it takes the guard itself.
func (c *counter) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// peek reads the count. Caller holds mu.
func (c *counter) peek() int {
	return c.n
}

func fresh() *counter {
	c := &counter{}
	c.n = 1 // freshly constructed: not shared yet, no lock needed
	return c
}

func twoCounters(a, b *counter) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.n // want `guarded by mu`
}

type registry struct {
	mu    sync.RWMutex
	items map[string]int // guarded by r.mu
}

func (r *registry) rlocked() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.items["x"]
}

func (r *registry) badWrite(v int) {
	r.items["x"] = v // want `guarded by r.mu`
}

type shared struct {
	val int // guarded by registry.mu (cross-struct guard)
}

// documented has a prose doc comment AND a trailing guard tag on the same
// field; the tag must win even though the doc comment carries no
// annotation (regression: the collector once looked only at the doc).
type documented struct {
	mu sync.Mutex
	// binding is re-pointed by recovery, so concurrent readers must
	// snapshot it under the lock.
	binding string // guarded by mu
}

func (d *documented) bad() string {
	return d.binding // want `guarded by mu`
}

func (d *documented) good() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.binding
}

func crossBad(s *shared) int {
	return s.val // want `guarded by registry.mu`
}

func crossGood(r *registry, s *shared) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return s.val
}
