// Package ignore exercises the lint:ignore escape hatch for lockguard.
package ignore

import "sync"

type box struct {
	mu sync.Mutex
	v  int // guarded by mu
}

func suppressed(b *box) int {
	//lint:ignore haoclvet/lockguard fixture: standalone directive suppresses the next line
	return b.v
}

func trailing(b *box) int {
	return b.v //lint:ignore haoclvet/lockguard fixture: trailing directive suppresses its own line
}

func wrongAnalyzer(b *box) int {
	//lint:ignore haoclvet/lockorder fixture: directive for another analyzer suppresses nothing here
	return b.v // want `guarded by mu`
}

func unprotected(b *box) int {
	return b.v // want `guarded by mu`
}
