package errclass_test

import (
	"testing"

	"github.com/haocl-project/haocl/internal/analysis/analysistest"
	"github.com/haocl-project/haocl/internal/analysis/errclass"
)

func TestErrclass(t *testing.T) {
	analysistest.Run(t, "testdata", errclass.Analyzer, "a", "plain")
}
