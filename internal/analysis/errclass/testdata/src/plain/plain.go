// Package plain has no strict marker: raw errors may flow freely except
// into sinks.
package plain

// callNode stands in for a raw transport call.
//
// haoclvet:errclass-source
func callNode() error { return nil }

// shouldRecover stands in for the recovery predicate.
//
// haoclvet:errclass-sink
func shouldRecover(err error) bool { return err != nil }

func returnRawOK() error {
	return callNode()
}

func sinkStillChecked() bool {
	err := callNode()
	return shouldRecover(err) // want `classifyNodeErr`
}

func suppressedSink() bool {
	err := callNode()
	//lint:ignore haoclvet/errclass fixture: this decision is outside the recovery path
	return shouldRecover(err)
}
