// Package a exercises errclass in strict mode: every raw transport error
// must be classified before it is returned, stored, or judged.
//
// haoclvet:errclass
package a

import "fmt"

// callNode stands in for a raw transport call.
//
// haoclvet:errclass-source
func callNode() error { return nil }

// fetch returns a payload plus a raw transport error.
//
// haoclvet:errclass-source
func fetch() (int, error) { return 0, nil }

// classify stands in for classifyNodeErr.
//
// haoclvet:errclass-sanitizer
func classify(err error) error { return err }

// isNodeLost stands in for the recovery predicate.
//
// haoclvet:errclass-sink
func isNodeLost(err error) bool { return err != nil }

func sinkBad() bool {
	err := callNode()
	return isNodeLost(err) // want `classifyNodeErr`
}

func sinkGood() bool {
	err := classify(callNode())
	return isNodeLost(err)
}

func reassignGood() bool {
	err := callNode()
	err = classify(err)
	return isNodeLost(err)
}

func returnBad() error {
	return callNode() // want `returns a raw transport error`
}

func returnGood() error {
	return classify(callNode())
}

func wrapKeepsTaint() error {
	err := callNode()
	return fmt.Errorf("call failed: %w", err) // want `returns a raw transport error`
}

func multiValueBad() bool {
	v, err := fetch()
	_ = v
	return isNodeLost(err) // want `classifyNodeErr`
}

type queue struct{ err error }

func fieldBad(q *queue) {
	q.err = callNode() // want `stores a raw transport error`
}

func fieldGood(q *queue) {
	q.err = classify(callNode())
}

func nilCompareOK() bool {
	err := callNode()
	return err == nil
}
