// Package errclass tracks raw transport errors to the recovery machinery:
// a retry/recovery decision fed by an error that never passed through the
// classifier cannot distinguish node loss from a remote application error,
// which is exactly the bug class that produced lost sticky releases.
//
// Functions participate through doc-comment markers:
//
//	haoclvet:errclass-source     — calls return raw, unclassified errors
//	                               (transport Pending.Wait, Client.Call)
//	haoclvet:errclass-sanitizer  — blesses an error (classifyNodeErr)
//	haoclvet:errclass-sink       — makes a retry/recovery decision and must
//	                               only see classified errors (isNodeLost,
//	                               shouldRecover)
//
// Markers cross package boundaries as analyzer facts. In every package,
// feeding a tainted error to a sink is reported. Packages whose doc carries
// "haoclvet:errclass" opt into strict mode, which additionally reports
// returning a tainted error or storing one into a struct field (sticky
// error slots) — in those packages every raw transport error must be
// classified at the point it is received.
package errclass

import (
	"go/ast"
	"go/types"

	"github.com/haocl-project/haocl/internal/analysis"
)

// Analyzer is the errclass check.
var Analyzer = &analysis.Analyzer{
	Name: "errclass",
	Doc:  "reports raw transport errors reaching retry/recovery decisions unclassified",
	Run:  run,
}

// roleFact records a function's errclass role for importing packages.
type roleFact struct{ role string }

const (
	roleSource    = "source"
	roleSanitizer = "sanitizer"
	roleSink      = "sink"
)

func run(pass *analysis.Pass) error {
	roles := make(map[types.Object]string)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			if obj == nil {
				continue
			}
			switch {
			case hasMarker(fn.Doc, "haoclvet:errclass-source"):
				roles[obj] = roleSource
			case hasMarker(fn.Doc, "haoclvet:errclass-sanitizer"):
				roles[obj] = roleSanitizer
			case hasMarker(fn.Doc, "haoclvet:errclass-sink"):
				roles[obj] = roleSink
			}
		}
	}
	for obj, role := range roles {
		pass.ExportObjectFact(obj, roleFact{role: role})
	}
	strict := analysis.HasPackageMarker(pass.Files, "haoclvet:errclass")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &walker{pass: pass, roles: roles, strict: strict,
				tainted: make(map[types.Object]bool)}
			w.stmts(fn.Body.List)
		}
	}
	return nil
}

// walker tracks which local variables currently hold unclassified errors.
// The walk is linear and branch bodies share the taint map: assignments in
// a branch stay visible afterwards, which keeps the common
// receive-then-classify shapes precise without building a CFG.
type walker struct {
	pass    *analysis.Pass
	roles   map[types.Object]string
	strict  bool
	tainted map[types.Object]bool
}

func (w *walker) roleOf(obj types.Object) string {
	if obj == nil {
		return ""
	}
	if obj.Pkg() == w.pass.Pkg {
		return w.roles[obj]
	}
	if f, ok := w.pass.ImportObjectFact(obj); ok {
		if rf, ok := f.(roleFact); ok {
			return rf.role
		}
	}
	return ""
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.ExprStmt:
		w.checkExpr(s.X)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e)
			if w.strict && w.taintOf(e) {
				w.pass.Reportf(e.Pos(),
					"returns a raw transport error; classify it first (classifyNodeErr) so callers' retry decisions see node loss")
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.checkExpr(s.Cond)
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond)
		}
		w.stmts(s.Body.List)
		if s.Post != nil {
			w.stmt(s.Post)
		}
	case *ast.RangeStmt:
		w.checkExpr(s.X)
		w.stmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag)
		}
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				w.stmts(c.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				w.stmts(c.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CommClause); ok {
				w.stmts(c.Body)
			}
		}
	case *ast.DeferStmt:
		w.checkExpr(s.Call)
	case *ast.GoStmt:
		w.checkExpr(s.Call)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					w.checkExpr(v)
					if i < len(vs.Names) && w.taintOf(v) {
						if obj := w.pass.TypesInfo.Defs[vs.Names[i]]; obj != nil {
							w.tainted[obj] = true
						}
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.SendStmt:
		w.checkExpr(s.Chan)
		w.checkExpr(s.Value)
	}
}

// assign updates taint for one assignment and reports tainted field stores
// in strict packages.
func (w *walker) assign(s *ast.AssignStmt) {
	for _, e := range s.Rhs {
		w.checkExpr(e)
	}
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Multi-value: x, err := source() taints every error-typed result.
		taint := w.taintOf(s.Rhs[0])
		for _, lhs := range s.Lhs {
			w.setTaint(lhs, taint && isErrorExpr(w.pass, lhs))
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		w.setTaint(lhs, w.taintOf(s.Rhs[i]))
	}
}

func (w *walker) setTaint(lhs ast.Expr, taint bool) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := w.pass.TypesInfo.Defs[lhs]
		if obj == nil {
			obj = w.pass.TypesInfo.Uses[lhs]
		}
		if obj != nil {
			w.tainted[obj] = taint
		}
	case *ast.SelectorExpr:
		if taint && w.strict {
			w.pass.Reportf(lhs.Pos(),
				"stores a raw transport error into a field; classify it first (classifyNodeErr) so sticky-error checks see node loss")
		}
	}
}

// checkExpr reports sink violations and walks nested calls and literals.
func (w *walker) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := &walker{pass: w.pass, roles: w.roles, strict: w.strict,
				tainted: make(map[types.Object]bool)}
			inner.stmts(n.Body.List)
			return false
		case *ast.CallExpr:
			callee := staticCallee(w.pass.TypesInfo, n)
			if w.roleOf(callee) == roleSink {
				for _, arg := range n.Args {
					if w.taintOf(arg) {
						w.pass.Reportf(arg.Pos(),
							"passes a raw transport error to %s; route it through classifyNodeErr first",
							callee.Name())
					}
				}
			}
		}
		return true
	})
}

// taintOf evaluates whether an expression carries an unclassified error.
func (w *walker) taintOf(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := w.pass.TypesInfo.Uses[e]
		return obj != nil && w.tainted[obj]
	case *ast.ParenExpr:
		return w.taintOf(e.X)
	case *ast.CallExpr:
		callee := staticCallee(w.pass.TypesInfo, e)
		switch w.roleOf(callee) {
		case roleSource:
			return true
		case roleSanitizer:
			return false
		}
		// Wrapping keeps taint: fmt.Errorf("...: %w", err) is still raw.
		if isErrorf(w.pass, e) {
			for _, arg := range e.Args {
				if w.taintOf(arg) {
					return true
				}
			}
		}
		return false
	}
	return false
}

func isErrorf(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "fmt" && sel.Sel.Name == "Errorf"
}

func isErrorExpr(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return false
	}
	named, ok := obj.Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// staticCallee resolves a call target to a declared function or method.
func staticCallee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
			return sel.Obj()
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := c.Text
		for len(text) > 0 && (text[0] == '/' || text[0] == ' ' || text[0] == '\t') {
			text = text[1:]
		}
		if text == marker {
			return true
		}
	}
	return false
}
