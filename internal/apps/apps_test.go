package apps

import (
	"testing"
	"testing/quick"

	haocl "github.com/haocl-project/haocl"
)

func TestSplitRangeProperties(t *testing.T) {
	check := func(nRaw, pRaw uint16) bool {
		n := int(nRaw % 2000)
		parts := int(pRaw%20) + 1
		off := SplitRange(n, parts)
		if len(off) != parts+1 || off[0] != 0 || off[parts] != n {
			return false
		}
		for i := 1; i <= parts; i++ {
			if off[i] < off[i-1] {
				return false
			}
			// Chunks differ by at most one.
			if n >= parts {
				size := off[i] - off[i-1]
				if size < n/parts || size > n/parts+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitRangeZeroParts(t *testing.T) {
	off := SplitRange(10, 0)
	if len(off) != 2 || off[0] != 0 || off[1] != 10 {
		t.Fatalf("offsets = %v", off)
	}
}

func TestBitstreamsCoverEveryKernel(t *testing.T) {
	want := []string{
		"matmul", "spmv_partition", "spmv_csr", "knn_dist",
		"bfs_init", "bfs_frontier",
		"cfd_step_factor", "cfd_compute_flux", "cfd_time_step",
	}
	got := Bitstreams()
	if len(got) != len(want) {
		t.Fatalf("bitstreams = %v", got)
	}
	set := make(map[string]bool, len(got))
	for _, b := range got {
		set[b] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("missing bitstream %q", w)
		}
	}
}

func TestResultString(t *testing.T) {
	r := Result{App: "X", Devices: 2, Verified: true}
	if r.String() == "" {
		t.Fatal("empty result row")
	}
}

func TestWeightedOffsetsHetero(t *testing.T) {
	reg := haocl.NewKernelRegistry()
	reg.MustRegister(&haocl.KernelSpec{
		Name: "nop", Func: func(*haocl.WorkItem, []haocl.KernelArg) {},
	})
	lc, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
		UserID: "apps-test", GPUNodes: 1, FPGANodes: 1,
		Bitstreams: []string{"nop"}, Kernels: reg, ExecWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	devs := lc.Platform.Devices(haocl.AnyDevice)
	if len(devs) != 2 {
		t.Fatalf("devices = %d", len(devs))
	}
	// Memory-bound per-item cost: the GPU's higher bandwidth must earn it
	// the larger portion.
	off := WeightedOffsets(1000, devs, 1, 1000)
	var gpuShare, fpgaShare int
	for i, d := range devs {
		share := off[i+1] - off[i]
		if d.Info().Type == haocl.GPU {
			gpuShare = share
		} else {
			fpgaShare = share
		}
	}
	if gpuShare <= fpgaShare {
		t.Fatalf("gpu share %d not larger than fpga share %d", gpuShare, fpgaShare)
	}
	if gpuShare+fpgaShare != 1000 {
		t.Fatalf("shares do not cover the range: %d + %d", gpuShare, fpgaShare)
	}
	// Degenerate inputs.
	if off := WeightedOffsets(10, nil, 1, 1); off[0] != 0 || off[len(off)-1] != 10 {
		t.Fatalf("nil devices: %v", off)
	}
	// Homogeneous devices split evenly (within rounding).
	lc2, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
		UserID: "apps-test-2", GPUNodes: 2, Kernels: reg, ExecWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc2.Close()
	gpus := lc2.Platform.Devices(haocl.GPU)
	off2 := WeightedOffsets(101, gpus, 7, 13)
	if d := (off2[1] - off2[0]) - (off2[2] - off2[1]); d < -1 || d > 1 {
		t.Fatalf("homogeneous split uneven: %v", off2)
	}
}
