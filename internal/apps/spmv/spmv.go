// Package spmv implements the SpMV benchmark of Table I: sparse
// matrix-vector multiplication in CSR format (y = A·x), from the SHOC
// suite. It is the paper's pipelined heterogeneity workload: "the different
// kernels (stages) of the SpMV are allocated to different devices, i.e.,
// the kernel for data partition is allocated on the GPUs and computation on
// the FPGAs" (§IV-C).
package spmv

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps"
	"github.com/haocl-project/haocl/internal/baseline"
	"github.com/haocl-project/haocl/internal/mem"
)

// Source is the OpenCL C program: the nnz-balancing partition stage plus
// the scalar CSR compute stage.
const Source = `
// Stage 1: balance rows across compute devices by nonzero count. One
// work-item per partition runs a binary search over the row pointer array
// for the first row at or beyond its share of the nonzeros.
__kernel void spmv_partition(__global const int* rowptr,
                             __global int* bounds,
                             const int rows,
                             const int parts) {
    int p = get_global_id(0);
    if (p > parts) return;
    int nnz = rowptr[rows];
    long target = ((long)nnz * p) / parts;
    int lo = 0, hi = rows;
    while (lo < hi) {
        int mid = (lo + hi) / 2;
        if (rowptr[mid] < target) lo = mid + 1; else hi = mid;
    }
    bounds[p] = lo;
}

// Stage 2: scalar CSR SpMV over a row range.
__kernel void spmv_csr(__global const int* rowptr,
                       __global const int* colidx,
                       __global const float* vals,
                       __global const float* x,
                       __global float* y,
                       const int rowLo,
                       const int rowHi) {
    int r = rowLo + get_global_id(0);
    if (r >= rowHi) return;
    float acc = 0.0f;
    for (int j = rowptr[r]; j < rowptr[r+1]; j++) {
        acc += vals[j] * x[colidx[j]];
    }
    y[r - rowLo] = acc;
}
`

// CSR is a compressed-sparse-row matrix with a dense input vector.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Vals       []float32
	X          []float32
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Vals) }

// GenerateSkewed builds a deterministic CSR matrix whose row lengths
// follow a heavy-tailed profile (a few rows carry most of the nonzeros, as
// in power-law graphs and real sparse systems), averaging avgNNZPerRow.
// Such matrices are why SpMV needs the nnz-balancing partition stage: an
// equal row split leaves one device with most of the work.
func GenerateSkewed(rows, cols, avgNNZPerRow int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	m := &CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int32, rows+1),
		X:      make([]float32, cols),
	}
	for i := range m.X {
		m.X[i] = rng.Float32()
	}
	// Zipf-like lengths: row r gets weight 1/(1+rank) over a random
	// permutation, rescaled to the requested average.
	perm := rng.Perm(rows)
	weights := make([]float64, rows)
	var total float64
	for i, r := range perm {
		weights[r] = 1 / float64(1+i)
		total += weights[r]
	}
	budget := rows * avgNNZPerRow
	seen := make(map[int32]bool)
	for r := 0; r < rows; r++ {
		want := int(weights[r] / total * float64(budget))
		if want < 1 {
			want = 1
		}
		if want > cols {
			want = cols
		}
		for k := range seen {
			delete(seen, k)
		}
		colsHere := make([]int32, 0, want)
		for len(colsHere) < want {
			c := int32(rng.Intn(cols))
			if !seen[c] {
				seen[c] = true
				colsHere = append(colsHere, c)
			}
		}
		sort.Slice(colsHere, func(i, j int) bool { return colsHere[i] < colsHere[j] })
		for _, c := range colsHere {
			m.ColIdx = append(m.ColIdx, c)
			m.Vals = append(m.Vals, rng.Float32())
		}
		m.RowPtr[r+1] = int32(len(m.Vals))
	}
	return m
}

// Generate builds a deterministic random CSR matrix with exactly nnzPerRow
// entries per row (sorted unique columns) and a random dense vector.
func Generate(rows, cols, nnzPerRow int, seed int64) *CSR {
	if nnzPerRow > cols {
		nnzPerRow = cols
	}
	rng := rand.New(rand.NewSource(seed))
	m := &CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int32, rows+1),
		ColIdx: make([]int32, 0, rows*nnzPerRow),
		Vals:   make([]float32, 0, rows*nnzPerRow),
		X:      make([]float32, cols),
	}
	for i := range m.X {
		m.X[i] = rng.Float32()
	}
	seen := make(map[int32]bool, nnzPerRow)
	for r := 0; r < rows; r++ {
		for k := range seen {
			delete(seen, k)
		}
		colsHere := make([]int32, 0, nnzPerRow)
		for len(colsHere) < nnzPerRow {
			c := int32(rng.Intn(cols))
			if !seen[c] {
				seen[c] = true
				colsHere = append(colsHere, c)
			}
		}
		sort.Slice(colsHere, func(i, j int) bool { return colsHere[i] < colsHere[j] })
		for _, c := range colsHere {
			m.ColIdx = append(m.ColIdx, c)
			m.Vals = append(m.Vals, rng.Float32())
		}
		m.RowPtr[r+1] = int32(len(m.Vals))
	}
	return m
}

// Reference computes y = A·x sequentially.
func (m *CSR) Reference() []float32 {
	y := make([]float32, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var acc float32
		for j := m.RowPtr[r]; j < m.RowPtr[r+1]; j++ {
			acc += m.Vals[j] * m.X[m.ColIdx[j]]
		}
		y[r] = acc
	}
	return y
}

// ComputeCost models one spmv_csr pass over nnz nonzeros and rows rows:
// two flops per nonzero; streamed value+index traffic plus one cache line
// per nonzero for the random gather of x (the access pattern that makes
// naive CSR SpMV memory-bound on GPUs), plus row pointers and the output.
func ComputeCost(nnz, rows int64) haocl.KernelCost {
	return haocl.KernelCost{
		Flops: 2 * nnz,
		Bytes: nnz*(8+64) + rows*8,
	}
}

// PartitionCost models the spmv_partition launch: a binary search per
// partition boundary.
func PartitionCost(rows, parts int64) haocl.KernelCost {
	logRows := int64(1)
	for r := rows; r > 1; r >>= 1 {
		logRows++
	}
	return haocl.KernelCost{Flops: (parts + 1) * logRows, Bytes: (parts + 1) * logRows * 4}
}

// RegisterKernels installs both SpMV kernels into reg.
func RegisterKernels(reg *haocl.KernelRegistry) {
	reg.MustRegister(&haocl.KernelSpec{
		Name:    "spmv_partition",
		NumArgs: 4,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {
			p := it.GlobalID(0)
			rowptr := args[0].Int32s()
			bounds := args[1].Int32s()
			rows, parts := args[2].Int(), args[3].Int()
			if p > parts {
				return
			}
			nnz := int64(rowptr[rows])
			target := nnz * int64(p) / int64(parts)
			lo, hi := 0, rows
			for lo < hi {
				mid := (lo + hi) / 2
				if int64(rowptr[mid]) < target {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			bounds[p] = int32(lo)
		},
		Cost: func(global [3]int, args []haocl.KernelArg) haocl.KernelCost {
			rows, parts := int64(args[2].Int()), int64(args[3].Int())
			return PartitionCost(rows, parts)
		},
	})
	reg.MustRegister(&haocl.KernelSpec{
		Name:    "spmv_csr",
		NumArgs: 7,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {
			rowLo, rowHi := args[5].Int(), args[6].Int()
			r := rowLo + it.GlobalID(0)
			if r >= rowHi {
				return
			}
			rowptr := args[0].Int32s()
			colidx := args[1].Int32s()
			vals := args[2].Float32s()
			x := args[3].Float32s()
			y := args[4].Float32s()
			var acc float32
			for j := rowptr[r]; j < rowptr[r+1]; j++ {
				acc += vals[j] * x[colidx[j]]
			}
			y[r-rowLo] = acc
		},
		Cost: func(global [3]int, args []haocl.KernelArg) haocl.KernelCost {
			rows := int64(global[0])
			rowptr := args[0].Int32s()
			nnz := int64(0)
			if len(rowptr) > 0 {
				nnz = int64(rowptr[len(rowptr)-1])
			}
			return ComputeCost(nnz, rows)
		},
	})
}

// Config parameterizes one run.
type Config struct {
	// LogicalRows/LogicalNNZPerRow give the paper-scale problem
	// (Table I: 1.1 GB ≈ 4M rows × 32 nnz in CSR with index+value).
	LogicalRows      int
	LogicalNNZPerRow int
	// FuncRows/FuncNNZPerRow give the verified functional problem.
	FuncRows      int
	FuncNNZPerRow int
	// PartitionDevices run the spmv_partition stage (GPUs in §IV-C).
	PartitionDevices []*haocl.Device
	// ComputeDevices run the spmv_csr stage (FPGAs in §IV-C). They may
	// equal PartitionDevices for homogeneous runs.
	ComputeDevices []*haocl.Device
	// LogicalIters/FuncIters repeat the multiply SHOC-style so the
	// one-time matrix distribution amortizes; the timing model charges
	// LogicalIters passes while FuncIters are executed and verified.
	LogicalIters int
	FuncIters    int
	// Skewed generates a heavy-tailed matrix instead of a uniform one.
	Skewed bool
	// NaiveSplit bypasses the spmv_partition stage and splits rows
	// equally — the ablation showing why the nnz-balancing stage exists.
	NaiveSplit bool
	SkipVerify bool
}

// Defaults reproducing Table I's 1.1 GB input.
const (
	DefaultLogicalRows      = 4 << 20
	DefaultLogicalNNZPerRow = 32
	DefaultLogicalIters     = 500
)

// InputBytes reports the logical input footprint: values, column indices,
// row pointers and the dense vector.
func InputBytes(rows, nnzPerRow int64) int64 {
	nnz := rows * nnzPerRow
	return nnz*8 + (rows+1)*4 + rows*4
}

// Run executes the two-stage SpMV pipeline.
func Run(p *haocl.Platform, cfg Config) (apps.Result, error) {
	res := apps.Result{App: "SpMV", Devices: len(cfg.ComputeDevices)}
	if len(cfg.PartitionDevices) == 0 || len(cfg.ComputeDevices) == 0 {
		return res, fmt.Errorf("spmv: partition and compute devices are required")
	}
	if cfg.FuncRows <= 0 || cfg.LogicalRows <= 0 {
		return res, fmt.Errorf("spmv: row counts are required")
	}
	if cfg.FuncIters <= 0 {
		cfg.FuncIters = 1
	}
	if cfg.LogicalIters <= 0 {
		cfg.LogicalIters = cfg.FuncIters
	}
	itersRatio := float64(cfg.LogicalIters) / float64(cfg.FuncIters)

	var m *CSR
	if cfg.Skewed {
		m = GenerateSkewed(cfg.FuncRows, cfg.FuncRows, cfg.FuncNNZPerRow, 7)
	} else {
		m = Generate(cfg.FuncRows, cfg.FuncRows, cfg.FuncNNZPerRow, 7)
	}
	logicalNNZ := int64(cfg.LogicalRows) * int64(cfg.LogicalNNZPerRow)
	p.ModelDataCreate(InputBytes(int64(cfg.LogicalRows), int64(cfg.LogicalNNZPerRow)))

	allDevices := append(append([]*haocl.Device{}, cfg.PartitionDevices...), cfg.ComputeDevices...)
	ctx, err := p.CreateContext(dedup(allDevices))
	if err != nil {
		return res, err
	}
	prog, err := ctx.CreateProgram(Source)
	if err != nil {
		return res, err
	}
	if err := prog.Build(); err != nil {
		return res, fmt.Errorf("spmv: build: %v\n%s", err, prog.BuildLog())
	}

	scale := float64(logicalNNZ) / float64(m.NNZ())

	// Stage 1: run the partition kernel on the first partition device.
	parts := len(cfg.ComputeDevices)
	partDev := cfg.PartitionDevices[0]
	partQ, err := ctx.CreateQueue(partDev)
	if err != nil {
		return res, err
	}
	bufRowPtr, err := ctx.CreateBuffer(int64(4 * (m.Rows + 1)))
	if err != nil {
		return res, err
	}
	bufRowPtr.SetModelSize(int64(float64(4*(m.Rows+1)) * scale))
	bufBounds, err := ctx.CreateBuffer(int64(4 * (parts + 1)))
	if err != nil {
		return res, err
	}
	if _, err := partQ.EnqueueWrite(bufRowPtr, 0, mem.I32Bytes(m.RowPtr)); err != nil {
		return res, err
	}
	kPart, err := prog.CreateKernel("spmv_partition")
	if err != nil {
		return res, err
	}
	for i, v := range []any{bufRowPtr, bufBounds, int32(m.Rows), int32(parts)} {
		if err := kPart.SetArg(i, v); err != nil {
			return res, err
		}
	}
	pc := PartitionCost(int64(cfg.LogicalRows), int64(parts))
	if _, err := partQ.EnqueueKernel(kPart, []int{parts + 1}, nil, nil, &haocl.LaunchOptions{
		CostFlops: pc.Flops, CostBytes: pc.Bytes,
	}); err != nil {
		return res, err
	}
	boundsRaw, _, err := partQ.EnqueueRead(bufBounds, 0, int64(4*(parts+1)))
	if err != nil {
		return res, err
	}
	bounds := mem.BytesI32(boundsRaw)
	bounds[parts] = int32(m.Rows) // final bound is always the row count
	if cfg.NaiveSplit {
		// Ablation: ignore the balanced bounds and split rows equally.
		eq := apps.SplitRange(m.Rows, parts)
		for i := range bounds {
			bounds[i] = int32(eq[i])
		}
	}

	// Stage 2: each compute device gets its row slice and the shared x.
	bufX, err := ctx.CreateBuffer(int64(4 * m.Cols))
	if err != nil {
		return res, err
	}
	bufX.SetModelSize(int64(float64(4*m.Cols) * scale))

	y := make([]float32, m.Rows)
	type deviceWork struct {
		queue *haocl.Queue
		bufY  *haocl.Buffer
		lo    int
		hi    int
	}
	var work []deviceWork

	// One queue per compute device; x reaches every node via one chain
	// broadcast.
	queues := make([]*haocl.Queue, len(cfg.ComputeDevices))
	for di, dev := range cfg.ComputeDevices {
		q, err := ctx.CreateQueue(dev)
		if err != nil {
			return res, err
		}
		queues[di] = q
	}
	if _, err := ctx.Broadcast(bufX, mem.F32Bytes(m.X), queues); err != nil {
		return res, err
	}

	for di := range cfg.ComputeDevices {
		lo, hi := int(bounds[di]), int(bounds[di+1])
		if lo >= hi {
			continue
		}
		nnzLo, nnzHi := m.RowPtr[lo], m.RowPtr[hi]
		sliceNNZ := int(nnzHi - nnzLo)

		q := queues[di]
		// Rebase the row pointers for the slice so kernel indexing stays
		// local to the shipped arrays.
		sliceRowPtr := make([]int32, hi-lo+1)
		for i := range sliceRowPtr {
			sliceRowPtr[i] = m.RowPtr[lo+i] - nnzLo
		}
		bufSliceRP, err := ctx.CreateBuffer(int64(4 * len(sliceRowPtr)))
		if err != nil {
			return res, err
		}
		bufSliceRP.SetModelSize(int64(float64(4*len(sliceRowPtr)) * scale))
		bufCol, err := ctx.CreateBuffer(int64(4 * sliceNNZ))
		if err != nil {
			return res, err
		}
		bufCol.SetModelSize(int64(float64(4*sliceNNZ) * scale))
		bufVal, err := ctx.CreateBuffer(int64(4 * sliceNNZ))
		if err != nil {
			return res, err
		}
		bufVal.SetModelSize(int64(float64(4*sliceNNZ) * scale))
		bufY, err := ctx.CreateBuffer(int64(4 * (hi - lo)))
		if err != nil {
			return res, err
		}
		bufY.SetModelSize(int64(float64(4*(hi-lo)) * scale))

		if _, err := q.EnqueueWrite(bufSliceRP, 0, mem.I32Bytes(sliceRowPtr)); err != nil {
			return res, err
		}
		if _, err := q.EnqueueWrite(bufCol, 0, mem.I32Bytes(m.ColIdx[nnzLo:nnzHi])); err != nil {
			return res, err
		}
		if _, err := q.EnqueueWrite(bufVal, 0, mem.F32Bytes(m.Vals[nnzLo:nnzHi])); err != nil {
			return res, err
		}

		k, err := prog.CreateKernel("spmv_csr")
		if err != nil {
			return res, err
		}
		for i, v := range []any{bufSliceRP, bufCol, bufVal, bufX, bufY, int32(0), int32(hi - lo)} {
			if err := k.SetArg(i, v); err != nil {
				return res, err
			}
		}
		cc := ComputeCost(int64(float64(sliceNNZ)*scale), int64(float64(hi-lo)*scale))
		opts := &haocl.LaunchOptions{
			CostFlops: int64(float64(cc.Flops) * itersRatio),
			CostBytes: int64(float64(cc.Bytes) * itersRatio),
		}
		for iter := 0; iter < cfg.FuncIters; iter++ {
			if _, err := q.EnqueueKernel(k, []int{hi - lo}, nil, nil, opts); err != nil {
				return res, err
			}
		}
		work = append(work, deviceWork{queue: q, bufY: bufY, lo: lo, hi: hi})
	}

	for _, w := range work {
		data, _, err := w.queue.EnqueueRead(w.bufY, 0, int64(4*(w.hi-w.lo)))
		if err != nil {
			return res, err
		}
		copy(y[w.lo:w.hi], mem.BytesF32(data))
		if _, err := w.queue.Finish(); err != nil {
			return res, err
		}
	}

	res.Verified = true
	if !cfg.SkipVerify {
		ref := m.Reference()
		for i := range ref {
			if math.Abs(float64(ref[i]-y[i])) > 1e-3 {
				return res, fmt.Errorf("spmv: row %d mismatch: got %v want %v", i, y[i], ref[i])
			}
		}
	}
	apps.CollectMetrics(p, &res)
	return res, nil
}

// dedup removes duplicate devices while preserving order.
func dedup(devs []*haocl.Device) []*haocl.Device {
	seen := make(map[*haocl.Device]bool, len(devs))
	out := make([]*haocl.Device, 0, len(devs))
	for _, d := range devs {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

// Workload describes the paper-scale run for the analytic baselines: the
// dense vector is broadcast, the CSR arrays partitioned, the partition
// stage is serial, and the multiply repeats iters times.
func Workload(rows, nnzPerRow, iters int) baseline.Workload {
	r, nnz := int64(rows), int64(rows)*int64(nnzPerRow)
	per := ComputeCost(nnz, r)
	return baseline.Workload{
		Name:              "SpMV",
		BroadcastBytes:    4 * r,
		PartitionedBytes:  nnz*8 + (r+1)*4,
		TotalCost:         baseline.ScaleCost(per, iters),
		SerialCost:        PartitionCost(r, 16),
		OutputBytes:       4 * r,
		CommandsPerDevice: 6 + iters,
		SnuCLDSupported:   true,
	}
}
