package spmv_test

import (
	"testing"
	"testing/quick"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps"
	"github.com/haocl-project/haocl/internal/apps/spmv"
)

func startCluster(t *testing.T, gpus, fpgas int) *haocl.LocalCluster {
	t.Helper()
	reg := haocl.NewKernelRegistry()
	spmv.RegisterKernels(reg)
	lc, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
		UserID:      "test",
		GPUNodes:    gpus,
		FPGANodes:   fpgas,
		Bitstreams:  apps.Bitstreams(),
		Kernels:     reg,
		ExecWorkers: 1,
	})
	if err != nil {
		t.Fatalf("StartLocalCluster: %v", err)
	}
	t.Cleanup(func() { lc.Close() })
	return lc
}

func TestGenerateInvariants(t *testing.T) {
	check := func(rowsRaw, nnzRaw uint8) bool {
		rows := int(rowsRaw%64) + 1
		nnzPerRow := int(nnzRaw%8) + 1
		m := spmv.Generate(rows, rows, nnzPerRow, int64(rowsRaw)*7+int64(nnzRaw))
		if len(m.RowPtr) != rows+1 || m.RowPtr[0] != 0 {
			return false
		}
		for r := 0; r < rows; r++ {
			if m.RowPtr[r+1] < m.RowPtr[r] {
				return false
			}
			// Columns sorted and unique within a row, in range.
			for j := m.RowPtr[r] + 1; j < m.RowPtr[r+1]; j++ {
				if m.ColIdx[j] <= m.ColIdx[j-1] {
					return false
				}
			}
			for j := m.RowPtr[r]; j < m.RowPtr[r+1]; j++ {
				if m.ColIdx[j] < 0 || int(m.ColIdx[j]) >= m.Cols {
					return false
				}
			}
		}
		return int(m.RowPtr[rows]) == m.NNZ()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSpMVSingleGPU(t *testing.T) {
	lc := startCluster(t, 1, 0)
	gpus := lc.Platform.Devices(haocl.GPU)
	res, err := spmv.Run(lc.Platform, spmv.Config{
		LogicalRows: 1 << 16, LogicalNNZPerRow: 32,
		FuncRows: 256, FuncNNZPerRow: 8,
		PartitionDevices: gpus,
		ComputeDevices:   gpus,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Compute <= 0 {
		t.Fatalf("no compute charged: %+v", res)
	}
}

// TestSpMVHeteroPipeline reproduces the paper's split: partition on GPUs,
// compute on FPGAs.
func TestSpMVHeteroPipeline(t *testing.T) {
	lc := startCluster(t, 2, 2)
	res, err := spmv.Run(lc.Platform, spmv.Config{
		LogicalRows: 1 << 16, LogicalNNZPerRow: 32,
		FuncRows: 300, FuncNNZPerRow: 6,
		PartitionDevices: lc.Platform.Devices(haocl.GPU),
		ComputeDevices:   lc.Platform.Devices(haocl.FPGA),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Devices != 2 {
		t.Fatalf("expected 2 compute devices, got %d", res.Devices)
	}
}

func TestSpMVScaling(t *testing.T) {
	var prev haocl.Duration
	for _, nodes := range []int{1, 2, 4} {
		lc := startCluster(t, nodes, 0)
		gpus := lc.Platform.Devices(haocl.GPU)
		res, err := spmv.Run(lc.Platform, spmv.Config{
			LogicalRows: 1 << 20, LogicalNNZPerRow: 32,
			FuncRows: 256, FuncNNZPerRow: 8,
			LogicalIters: 200, FuncIters: 2,
			PartitionDevices: gpus[:1],
			ComputeDevices:   gpus,
		})
		if err != nil {
			t.Fatalf("Run(%d): %v", nodes, err)
		}
		if prev > 0 && res.Makespan >= prev {
			t.Fatalf("no speedup at %d nodes: %v >= %v", nodes, res.Makespan, prev)
		}
		prev = res.Makespan
		lc.Close()
	}
}

func TestGenerateSkewedInvariants(t *testing.T) {
	m := spmv.GenerateSkewed(200, 200, 8, 3)
	if m.Rows != 200 || int(m.RowPtr[200]) != m.NNZ() {
		t.Fatalf("structure broken: rows=%d nnz=%d ptr=%d", m.Rows, m.NNZ(), m.RowPtr[200])
	}
	var max, min int32 = 0, 1 << 30
	for r := 0; r < m.Rows; r++ {
		l := m.RowPtr[r+1] - m.RowPtr[r]
		if l < 1 {
			t.Fatalf("row %d empty", r)
		}
		if l > max {
			max = l
		}
		if l < min {
			min = l
		}
		for j := m.RowPtr[r] + 1; j < m.RowPtr[r+1]; j++ {
			if m.ColIdx[j] <= m.ColIdx[j-1] {
				t.Fatalf("row %d columns not sorted-unique", r)
			}
		}
	}
	// Heavy tail: the fattest row dwarfs the thinnest.
	if max < 8*min {
		t.Fatalf("not skewed enough: max=%d min=%d", max, min)
	}
}

func TestSpMVSkewedBalancedRun(t *testing.T) {
	lc := startCluster(t, 3, 0)
	gpus := lc.Platform.Devices(haocl.GPU)
	res, err := spmv.Run(lc.Platform, spmv.Config{
		LogicalRows: 1 << 18, LogicalNNZPerRow: 32,
		FuncRows: 300, FuncNNZPerRow: 6,
		Skewed:           true,
		PartitionDevices: gpus[:1],
		ComputeDevices:   gpus,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Verified {
		t.Fatal("skewed run not verified")
	}
}
