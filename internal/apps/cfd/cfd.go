// Package cfd implements the CFD benchmark of Table I: an unstructured-grid
// finite-volume flow solver after Rodinia's euler3d, with five conserved
// variables per element (density, three momentum components, energy), a
// step-factor / flux / time-step kernel pipeline, and per-iteration halo
// exchange between the element partitions on different devices.
//
// The numerics are a stabilized neighbor-flux relaxation on a ring-
// structured element graph (each element couples to four neighbors through
// per-face weights), preserving euler3d's data layout, kernel structure and
// memory behavior while staying deterministic and verifiable. This is the
// benchmark the paper flags as impossible to port to SnuCL-D "without
// significant change" (§IV-B); the baseline reports it unsupported.
package cfd

import (
	"fmt"
	"math"
	"math/rand"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps"
	"github.com/haocl-project/haocl/internal/baseline"
	"github.com/haocl-project/haocl/internal/mem"
)

// NVAR is the number of conserved variables per element; NNB the neighbor
// count — both as in euler3d.
const (
	NVAR = 5
	NNB  = 4
	// Halo is the ghost-cell width on each side of a partition: two
	// elements, because the neighbor stencil reaches i±2.
	Halo = 2
)

// Source is the OpenCL C program: the three solver kernels over the
// halo-extended element chunk of one device.
const Source = `
// Per-element local time step from the current state magnitude.
__kernel void cfd_step_factor(__global const float* vars,
                              __global float* stepf,
                              const int count) {
    int i = get_global_id(0);
    if (i >= count) return;
    int base = (i + 2) * 5; // skip leading halo
    float speed = 0.0f;
    for (int k = 0; k < 5; k++) {
        speed += fabs(vars[base + k]);
    }
    stepf[i] = 0.5f / (speed + 1.0f);
}

// Neighbor flux accumulation: four faces, stencil i-2,i-1,i+1,i+2.
__kernel void cfd_compute_flux(__global const float* vars,
                               __global const float* weights,
                               __global float* fluxes,
                               const int count) {
    int i = get_global_id(0);
    if (i >= count) return;
    int c = i + 2;
    int nb[4];
    nb[0] = c - 2; nb[1] = c - 1; nb[2] = c + 1; nb[3] = c + 2;
    for (int k = 0; k < 5; k++) {
        float acc = 0.0f;
        for (int f = 0; f < 4; f++) {
            float w = weights[i*4 + f];
            acc += w * (vars[nb[f]*5 + k] - vars[c*5 + k]);
        }
        fluxes[i*5 + k] = acc;
    }
}

// Explicit update of the conserved variables.
__kernel void cfd_time_step(__global float* vars,
                            __global const float* fluxes,
                            __global const float* stepf,
                            const int count) {
    int i = get_global_id(0);
    if (i >= count) return;
    int base = (i + 2) * 5;
    for (int k = 0; k < 5; k++) {
        vars[base + k] += stepf[i] * fluxes[i*5 + k];
    }
}
`

// Costs per element per kernel, used at logical scale.
func stepFactorCost(elems int64) haocl.KernelCost {
	return haocl.KernelCost{Flops: elems * 8, Bytes: elems * 28}
}

func fluxCost(elems int64) haocl.KernelCost {
	return haocl.KernelCost{Flops: elems * 60, Bytes: elems * 140}
}

func timeStepCost(elems int64) haocl.KernelCost {
	return haocl.KernelCost{Flops: elems * 10, Bytes: elems * 64}
}

// RegisterKernels installs the three CFD kernels into reg.
func RegisterKernels(reg *haocl.KernelRegistry) {
	reg.MustRegister(&haocl.KernelSpec{
		Name:    "cfd_step_factor",
		NumArgs: 3,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {
			i := it.GlobalID(0)
			count := args[2].Int()
			if i >= count {
				return
			}
			vars, stepf := args[0].Float32s(), args[1].Float32s()
			base := (i + Halo) * NVAR
			var speed float32
			for k := 0; k < NVAR; k++ {
				speed += float32(math.Abs(float64(vars[base+k])))
			}
			stepf[i] = 0.5 / (speed + 1)
		},
		Cost: func(global [3]int, args []haocl.KernelArg) haocl.KernelCost {
			return stepFactorCost(int64(global[0]))
		},
	})
	reg.MustRegister(&haocl.KernelSpec{
		Name:    "cfd_compute_flux",
		NumArgs: 4,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {
			i := it.GlobalID(0)
			count := args[3].Int()
			if i >= count {
				return
			}
			vars, weights, fluxes := args[0].Float32s(), args[1].Float32s(), args[2].Float32s()
			c := i + Halo
			nb := [NNB]int{c - 2, c - 1, c + 1, c + 2}
			for k := 0; k < NVAR; k++ {
				var acc float32
				for f := 0; f < NNB; f++ {
					w := weights[i*NNB+f]
					acc += w * (vars[nb[f]*NVAR+k] - vars[c*NVAR+k])
				}
				fluxes[i*NVAR+k] = acc
			}
		},
		Cost: func(global [3]int, args []haocl.KernelArg) haocl.KernelCost {
			return fluxCost(int64(global[0]))
		},
	})
	reg.MustRegister(&haocl.KernelSpec{
		Name:    "cfd_time_step",
		NumArgs: 4,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {
			i := it.GlobalID(0)
			count := args[3].Int()
			if i >= count {
				return
			}
			vars, fluxes, stepf := args[0].Float32s(), args[1].Float32s(), args[2].Float32s()
			base := (i + Halo) * NVAR
			for k := 0; k < NVAR; k++ {
				vars[base+k] += stepf[i] * fluxes[i*NVAR+k]
			}
		},
		Cost: func(global [3]int, args []haocl.KernelArg) haocl.KernelCost {
			return timeStepCost(int64(global[0]))
		},
	})
}

// Mesh is the generated problem: initial state and face weights on a ring
// of elements.
type Mesh struct {
	Elems   int
	Vars    []float32 // Elems*NVAR
	Weights []float32 // Elems*NNB
}

// Generate builds a deterministic mesh.
func Generate(elems int, seed int64) *Mesh {
	rng := rand.New(rand.NewSource(seed))
	m := &Mesh{
		Elems:   elems,
		Vars:    make([]float32, elems*NVAR),
		Weights: make([]float32, elems*NNB),
	}
	for i := range m.Vars {
		m.Vars[i] = rng.Float32()
	}
	for i := range m.Weights {
		m.Weights[i] = 0.1 + 0.1*rng.Float32() // positive: stable relaxation
	}
	return m
}

// Reference advances the full mesh iters steps sequentially.
func (m *Mesh) Reference(iters int) []float32 {
	vars := make([]float32, len(m.Vars))
	copy(vars, m.Vars)
	n := m.Elems
	fluxes := make([]float32, n*NVAR)
	stepf := make([]float32, n)
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			var speed float32
			for k := 0; k < NVAR; k++ {
				speed += float32(math.Abs(float64(vars[i*NVAR+k])))
			}
			stepf[i] = 0.5 / (speed + 1)
		}
		for i := 0; i < n; i++ {
			nb := [NNB]int{(i - 2 + n) % n, (i - 1 + n) % n, (i + 1) % n, (i + 2) % n}
			for k := 0; k < NVAR; k++ {
				var acc float32
				for f := 0; f < NNB; f++ {
					w := m.Weights[i*NNB+f]
					acc += w * (vars[nb[f]*NVAR+k] - vars[i*NVAR+k])
				}
				fluxes[i*NVAR+k] = acc
			}
		}
		for i := 0; i < n; i++ {
			for k := 0; k < NVAR; k++ {
				vars[i*NVAR+k] += stepf[i] * fluxes[i*NVAR+k]
			}
		}
	}
	return vars
}

// Config parameterizes one run.
type Config struct {
	// LogicalElems is the paper-scale element count (Table I: 800 MB ≈
	// 7.4M elements at ~108 B each across the solver arrays).
	LogicalElems int
	// FuncElems is the verified functional element count. Must be at
	// least 4 per device so halos do not overlap.
	FuncElems int
	// LogicalIters/FuncIters: solver iterations at each scale (euler3d
	// runs 2000).
	LogicalIters int
	FuncIters    int
	// Devices partition the elements.
	Devices    []*haocl.Device
	SkipVerify bool
}

// Defaults reproducing Table I's 800 MB input.
const (
	DefaultLogicalElems = 7_400_000
	DefaultLogicalIters = 2000
)

// InputBytes reports the logical input footprint across euler3d's arrays:
// variables, neighbor indices, per-face normals, fluxes and step factors.
func InputBytes(elems int64) int64 {
	return elems * (NVAR*4 + NNB*4 + NNB*3*4 + NVAR*4 + 4)
}

// Run executes the CFD solver on the platform.
func Run(p *haocl.Platform, cfg Config) (apps.Result, error) {
	res := apps.Result{App: "CFD", Devices: len(cfg.Devices)}
	nDev := len(cfg.Devices)
	if cfg.FuncElems < 4*nDev || nDev == 0 {
		return res, fmt.Errorf("cfd: need at least 4 functional elements per device")
	}
	if cfg.FuncIters <= 0 {
		cfg.FuncIters = 3
	}
	if cfg.LogicalIters <= 0 {
		cfg.LogicalIters = cfg.FuncIters
	}
	itersRatio := float64(cfg.LogicalIters) / float64(cfg.FuncIters)

	m := Generate(cfg.FuncElems, 13)
	p.ModelDataCreate(InputBytes(int64(cfg.LogicalElems)))

	ctx, err := p.CreateContext(cfg.Devices)
	if err != nil {
		return res, err
	}
	prog, err := ctx.CreateProgram(Source)
	if err != nil {
		return res, err
	}
	if err := prog.Build(); err != nil {
		return res, fmt.Errorf("cfd: build: %v\n%s", err, prog.BuildLog())
	}

	// Per-element per-iteration roofline terms across the three kernels.
	elemFlops := float64(8 + 60 + 10)
	elemBytes := float64(28 + 140 + 64)
	funcParts := apps.WeightedOffsets(cfg.FuncElems, cfg.Devices, elemFlops, elemBytes)
	logicalParts := apps.WeightedOffsets(cfg.LogicalElems, cfg.Devices, elemFlops, elemBytes)

	type devState struct {
		queue    *haocl.Queue
		bufVars  *haocl.Buffer
		kStep    *haocl.Kernel
		kFlux    *haocl.Kernel
		kTime    *haocl.Kernel
		lo, hi   int
		lelems   int64
		stepOpts *haocl.LaunchOptions
		fluxOpts *haocl.LaunchOptions
		timeOpts *haocl.LaunchOptions
	}
	states := make([]*devState, nDev)

	n := cfg.FuncElems
	for di, dev := range cfg.Devices {
		lo, hi := funcParts[di], funcParts[di+1]
		count := hi - lo
		lelems := int64(logicalParts[di+1] - logicalParts[di])

		q, err := ctx.CreateQueue(dev)
		if err != nil {
			return res, err
		}
		// Halo-extended state: [Halo ghosts][count elements][Halo ghosts].
		bufVars, err := ctx.CreateBuffer(int64(4 * NVAR * (count + 2*Halo)))
		if err != nil {
			return res, err
		}
		bufVars.SetModelSize(4 * NVAR * lelems)
		bufWeights, err := ctx.CreateBuffer(int64(4 * NNB * count))
		if err != nil {
			return res, err
		}
		// Model the full per-element geometry (neighbors + normals).
		bufWeights.SetModelSize((NNB*4 + NNB*3*4) * lelems)
		bufFluxes, err := ctx.CreateBuffer(int64(4 * NVAR * count))
		if err != nil {
			return res, err
		}
		bufFluxes.SetModelSize(4 * NVAR * lelems)
		bufStepf, err := ctx.CreateBuffer(int64(4 * count))
		if err != nil {
			return res, err
		}
		bufStepf.SetModelSize(4 * lelems)

		// Initial state with halos from the ring neighbors.
		chunk := make([]float32, NVAR*(count+2*Halo))
		for i := 0; i < count+2*Halo; i++ {
			src := ((lo - Halo + i) + n) % n
			copy(chunk[i*NVAR:(i+1)*NVAR], m.Vars[src*NVAR:(src+1)*NVAR])
		}
		if _, err := q.EnqueueWrite(bufVars, 0, mem.F32Bytes(chunk)); err != nil {
			return res, err
		}
		if _, err := q.EnqueueWrite(bufWeights, 0, mem.F32Bytes(m.Weights[lo*NNB:hi*NNB])); err != nil {
			return res, err
		}

		kStep, err := prog.CreateKernel("cfd_step_factor")
		if err != nil {
			return res, err
		}
		for i, v := range []any{bufVars, bufStepf, int32(count)} {
			if err := kStep.SetArg(i, v); err != nil {
				return res, err
			}
		}
		kFlux, err := prog.CreateKernel("cfd_compute_flux")
		if err != nil {
			return res, err
		}
		for i, v := range []any{bufVars, bufWeights, bufFluxes, int32(count)} {
			if err := kFlux.SetArg(i, v); err != nil {
				return res, err
			}
		}
		kTime, err := prog.CreateKernel("cfd_time_step")
		if err != nil {
			return res, err
		}
		for i, v := range []any{bufVars, bufFluxes, bufStepf, int32(count)} {
			if err := kTime.SetArg(i, v); err != nil {
				return res, err
			}
		}

		scaleOpts := func(c haocl.KernelCost) *haocl.LaunchOptions {
			return &haocl.LaunchOptions{
				CostFlops: int64(float64(c.Flops) * itersRatio),
				CostBytes: int64(float64(c.Bytes) * itersRatio),
			}
		}
		states[di] = &devState{
			queue: q, bufVars: bufVars,
			kStep: kStep, kFlux: kFlux, kTime: kTime,
			lo: lo, hi: hi, lelems: lelems,
			stepOpts: scaleOpts(stepFactorCost(lelems)),
			fluxOpts: scaleOpts(fluxCost(lelems)),
			timeOpts: scaleOpts(timeStepCost(lelems)),
		}
	}

	stripBytes := int64(4 * NVAR * Halo)
	for iter := 0; iter < cfg.FuncIters; iter++ {
		// Solver kernels on every device.
		for _, s := range states {
			count := s.hi - s.lo
			if _, err := s.queue.EnqueueKernel(s.kStep, []int{count}, nil, nil, s.stepOpts); err != nil {
				return res, err
			}
			if _, err := s.queue.EnqueueKernel(s.kFlux, []int{count}, nil, nil, s.fluxOpts); err != nil {
				return res, err
			}
			if _, err := s.queue.EnqueueKernel(s.kTime, []int{count}, nil, nil, s.timeOpts); err != nil {
				return res, err
			}
		}
		// Halo exchange: each device's boundary strips refresh its ring
		// neighbors' ghost cells through the host.
		type strips struct{ left, right []byte }
		edges := make([]strips, nDev)
		for di, s := range states {
			count := s.hi - s.lo
			left, _, err := s.queue.EnqueueRead(s.bufVars, int64(4*NVAR*Halo), stripBytes)
			if err != nil {
				return res, err
			}
			right, _, err := s.queue.EnqueueRead(s.bufVars, int64(4*NVAR*count), stripBytes)
			if err != nil {
				return res, err
			}
			edges[di] = strips{left: left, right: right}
		}
		for di, s := range states {
			count := s.hi - s.lo
			prev := (di - 1 + nDev) % nDev
			next := (di + 1) % nDev
			// Left ghosts come from the previous partition's right strip.
			if _, err := s.queue.EnqueueWrite(s.bufVars, 0, edges[prev].right); err != nil {
				return res, err
			}
			// Right ghosts come from the next partition's left strip.
			if _, err := s.queue.EnqueueWrite(s.bufVars, int64(4*NVAR*(count+Halo)), edges[next].left); err != nil {
				return res, err
			}
		}
	}

	// Gather final state and verify.
	final := make([]float32, n*NVAR)
	for _, s := range states {
		count := s.hi - s.lo
		data, _, err := s.queue.EnqueueRead(s.bufVars, int64(4*NVAR*Halo), int64(4*NVAR*count))
		if err != nil {
			return res, err
		}
		copy(final[s.lo*NVAR:], mem.BytesF32(data))
		if _, err := s.queue.Finish(); err != nil {
			return res, err
		}
	}

	res.Verified = true
	if !cfg.SkipVerify {
		ref := m.Reference(cfg.FuncIters)
		for i := range ref {
			if math.Abs(float64(ref[i]-final[i])) > 1e-3 {
				return res, fmt.Errorf("cfd: element %d: got %v want %v", i/NVAR, final[i], ref[i])
			}
		}
	}
	apps.CollectMetrics(p, &res)
	return res, nil
}

// Workload describes the paper-scale run for the analytic baselines. CFD
// is not portable to SnuCL-D "without significant change" (paper §IV-B),
// so the SnuCL-D baseline reports it unsupported.
func Workload(elems, iters int) baseline.Workload {
	e := int64(elems)
	perIter := baseline.SumCost(stepFactorCost(e), fluxCost(e), timeStepCost(e))
	return baseline.Workload{
		Name:              "CFD",
		PartitionedBytes:  InputBytes(e),
		TotalCost:         baseline.ScaleCost(perIter, iters),
		OutputBytes:       e * NVAR * 4,
		CommandsPerDevice: 4 + 7*iters,
		SnuCLDSupported:   false,
	}
}
