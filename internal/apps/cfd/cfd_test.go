package cfd_test

import (
	"math"
	"testing"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps/cfd"
)

func startCluster(t *testing.T, gpus, fpgas int) *haocl.LocalCluster {
	t.Helper()
	reg := haocl.NewKernelRegistry()
	cfd.RegisterKernels(reg)
	lc, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
		UserID:      "test",
		GPUNodes:    gpus,
		FPGANodes:   fpgas,
		Bitstreams:  []string{"cfd_step_factor", "cfd_compute_flux", "cfd_time_step"},
		Kernels:     reg,
		ExecWorkers: 1,
	})
	if err != nil {
		t.Fatalf("StartLocalCluster: %v", err)
	}
	t.Cleanup(func() { lc.Close() })
	return lc
}

func TestReferenceStability(t *testing.T) {
	// The relaxation must stay bounded: weights are calibrated so the
	// explicit update is stable.
	m := cfd.Generate(64, 3)
	vars := m.Reference(50)
	for i, v := range vars {
		if math.IsNaN(float64(v)) || math.Abs(float64(v)) > 100 {
			t.Fatalf("unstable at %d: %v", i, v)
		}
	}
}

func TestCFDSingleGPU(t *testing.T) {
	lc := startCluster(t, 1, 0)
	res, err := cfd.Run(lc.Platform, cfd.Config{
		LogicalElems: 100_000,
		FuncElems:    64,
		LogicalIters: 50,
		FuncIters:    3,
		Devices:      lc.Platform.Devices(haocl.GPU),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Verified {
		t.Fatal("not verified")
	}
}

func TestCFDMultiDeviceHalo(t *testing.T) {
	// 3 devices force halo exchange across uneven partitions.
	lc := startCluster(t, 3, 0)
	res, err := cfd.Run(lc.Platform, cfd.Config{
		LogicalElems: 100_000,
		FuncElems:    50,
		LogicalIters: 20,
		FuncIters:    4,
		Devices:      lc.Platform.Devices(haocl.GPU),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Devices != 3 {
		t.Fatalf("devices = %d, want 3", res.Devices)
	}
}

func TestCFDOnFPGAs(t *testing.T) {
	lc := startCluster(t, 0, 2)
	if _, err := cfd.Run(lc.Platform, cfd.Config{
		LogicalElems: 50_000,
		FuncElems:    32,
		LogicalIters: 10,
		FuncIters:    2,
		Devices:      lc.Platform.Devices(haocl.FPGA),
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCFDScaling(t *testing.T) {
	var prev haocl.Duration
	for _, nodes := range []int{1, 2, 4} {
		lc := startCluster(t, nodes, 0)
		res, err := cfd.Run(lc.Platform, cfd.Config{
			LogicalElems: 1_000_000,
			FuncElems:    48,
			LogicalIters: 100,
			FuncIters:    2,
			Devices:      lc.Platform.Devices(haocl.GPU),
		})
		if err != nil {
			t.Fatalf("Run(%d): %v", nodes, err)
		}
		if prev > 0 && res.Makespan >= prev {
			t.Fatalf("no speedup at %d nodes: %v >= %v", nodes, res.Makespan, prev)
		}
		prev = res.Makespan
		lc.Close()
	}
}
