// Package knn implements the kNN benchmark of Table I: k-nearest-neighbor
// search in an unstructured data set, after Rodinia's nn benchmark,
// generalized to multi-dimensional points and a batch of query points.
//
// Each device computes distances from every query to its partition of the
// reference points; the host merges per-device candidates into the global
// k nearest, the same filter-then-reduce split Rodinia uses.
package knn

import (
	"fmt"
	"math/rand"
	"sort"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps"
	"github.com/haocl-project/haocl/internal/baseline"
	"github.com/haocl-project/haocl/internal/mem"
)

// Source is the OpenCL C program: one work-item per (point, query) pair.
const Source = `
// Squared Euclidean distance from each query to each reference point.
// points: P x D row-major, queries: Q x D row-major, dist: Q x P.
__kernel void knn_dist(__global const float* points,
                       __global const float* queries,
                       __global float* dist,
                       const int npoints,
                       const int nqueries,
                       const int dims) {
    int p = get_global_id(0);
    int q = get_global_id(1);
    if (p >= npoints || q >= nqueries) return;
    float acc = 0.0f;
    for (int d = 0; d < dims; d++) {
        float diff = points[p*dims + d] - queries[q*dims + d];
        acc += diff * diff;
    }
    dist[q*npoints + p] = acc;
}
`

// Cost models one knn_dist launch: 3 flops per dimension per pair; points
// are streamed once per query tile and the distance row is written out.
func Cost(npoints, nqueries, dims int64) haocl.KernelCost {
	return haocl.KernelCost{
		Flops: 3 * npoints * nqueries * dims,
		Bytes: npoints*dims*4 + nqueries*npoints*4,
	}
}

// RegisterKernels installs the kNN kernel into reg.
func RegisterKernels(reg *haocl.KernelRegistry) {
	reg.MustRegister(&haocl.KernelSpec{
		Name:    "knn_dist",
		NumArgs: 6,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {
			p := it.GlobalID(0)
			q := it.GlobalID(1)
			npoints, nqueries, dims := args[3].Int(), args[4].Int(), args[5].Int()
			if p >= npoints || q >= nqueries {
				return
			}
			points, queries, dist := args[0].Float32s(), args[1].Float32s(), args[2].Float32s()
			var acc float32
			for d := 0; d < dims; d++ {
				diff := points[p*dims+d] - queries[q*dims+d]
				acc += diff * diff
			}
			dist[q*npoints+p] = acc
		},
		Cost: func(global [3]int, args []haocl.KernelArg) haocl.KernelCost {
			return Cost(int64(args[3].Int()), int64(args[4].Int()), int64(args[5].Int()))
		},
	})
}

// Neighbor is one result candidate.
type Neighbor struct {
	Index int32
	Dist  float32
}

// Config parameterizes one run.
type Config struct {
	// LogicalPoints is the paper-scale reference set size (Table I:
	// 100 MB ≈ 3.2M points × 8 dims × 4 B).
	LogicalPoints int
	// LogicalQueries is the paper-scale query batch.
	LogicalQueries int
	// FuncPoints/FuncQueries are the verified functional sizes.
	FuncPoints  int
	FuncQueries int
	// Dims is the point dimensionality (both scales).
	Dims int
	// K is how many neighbors to return per query.
	K int
	// Devices partition the reference points.
	Devices    []*haocl.Device
	SkipVerify bool
}

// Defaults reproducing Table I's 100 MB input. The query batch is sized so
// the distance computation dominates the one-time point distribution, as
// in a batched classification service.
const (
	DefaultLogicalPoints  = 3_200_000
	DefaultLogicalQueries = 65536
	DefaultDims           = 8
	DefaultK              = 16
)

// InputBytes reports the logical input footprint.
func InputBytes(points, queries, dims int64) int64 {
	return (points + queries) * dims * 4
}

// Run executes kNN on the platform.
func Run(p *haocl.Platform, cfg Config) (apps.Result, error) {
	res := apps.Result{App: "kNN", Devices: len(cfg.Devices)}
	if cfg.FuncPoints <= 0 || cfg.LogicalPoints <= 0 || len(cfg.Devices) == 0 {
		return res, fmt.Errorf("knn: point counts and devices are required")
	}
	if cfg.Dims <= 0 {
		cfg.Dims = DefaultDims
	}
	if cfg.K <= 0 {
		cfg.K = 4
	}
	if cfg.FuncQueries <= 0 {
		cfg.FuncQueries = 4
	}
	if cfg.LogicalQueries <= 0 {
		cfg.LogicalQueries = cfg.FuncQueries
	}
	if cfg.K > cfg.FuncPoints {
		return res, fmt.Errorf("knn: K=%d exceeds functional point count %d", cfg.K, cfg.FuncPoints)
	}
	d := cfg.Dims

	rng := rand.New(rand.NewSource(11))
	points := make([]float32, cfg.FuncPoints*d)
	queries := make([]float32, cfg.FuncQueries*d)
	for i := range points {
		points[i] = rng.Float32()
	}
	for i := range queries {
		queries[i] = rng.Float32()
	}
	p.ModelDataCreate(InputBytes(int64(cfg.LogicalPoints), int64(cfg.LogicalQueries), int64(d)))

	ctx, err := p.CreateContext(cfg.Devices)
	if err != nil {
		return res, err
	}
	prog, err := ctx.CreateProgram(Source)
	if err != nil {
		return res, err
	}
	if err := prog.Build(); err != nil {
		return res, fmt.Errorf("knn: build: %v\n%s", err, prog.BuildLog())
	}

	// Queries are broadcast; points are partitioned.
	bufQ, err := ctx.CreateBuffer(int64(4 * len(queries)))
	if err != nil {
		return res, err
	}
	bufQ.SetModelSize(int64(4 * cfg.LogicalQueries * d))

	ptFlops := float64(3 * cfg.LogicalQueries * d)
	ptBytes := float64(d*4 + cfg.LogicalQueries*4)
	funcParts := apps.WeightedOffsets(cfg.FuncPoints, cfg.Devices, ptFlops, ptBytes)
	logicalParts := apps.WeightedOffsets(cfg.LogicalPoints, cfg.Devices, ptFlops, ptBytes)

	type deviceWork struct {
		queue   *haocl.Queue
		bufDist *haocl.Buffer
		lo, hi  int
	}
	var work []deviceWork

	queues := make([]*haocl.Queue, len(cfg.Devices))
	for di, dev := range cfg.Devices {
		q, err := ctx.CreateQueue(dev)
		if err != nil {
			return res, err
		}
		queues[di] = q
	}
	if _, err := ctx.Broadcast(bufQ, mem.F32Bytes(queries), queues); err != nil {
		return res, err
	}

	for di := range cfg.Devices {
		lo, hi := funcParts[di], funcParts[di+1]
		npts := hi - lo
		if npts == 0 {
			continue
		}
		lpts := int64(logicalParts[di+1] - logicalParts[di])

		q := queues[di]
		bufP, err := ctx.CreateBuffer(int64(4 * npts * d))
		if err != nil {
			return res, err
		}
		bufP.SetModelSize(4 * lpts * int64(d))
		bufDist, err := ctx.CreateBuffer(int64(4 * cfg.FuncQueries * npts))
		if err != nil {
			return res, err
		}
		// Read-back models the reduced candidate set (k per query per
		// device), not the full distance matrix, matching Rodinia's
		// filter-then-reduce structure.
		bufDist.SetModelSize(int64(4 * cfg.LogicalQueries * cfg.K))

		if _, err := q.EnqueueWrite(bufP, 0, mem.F32Bytes(points[lo*d:hi*d])); err != nil {
			return res, err
		}

		k, err := prog.CreateKernel("knn_dist")
		if err != nil {
			return res, err
		}
		for i, v := range []any{bufP, bufQ, bufDist, int32(npts), int32(cfg.FuncQueries), int32(d)} {
			if err := k.SetArg(i, v); err != nil {
				return res, err
			}
		}
		cost := Cost(lpts, int64(cfg.LogicalQueries), int64(d))
		if _, err := q.EnqueueKernel(k, []int{npts, cfg.FuncQueries}, nil, nil, &haocl.LaunchOptions{
			CostFlops: cost.Flops, CostBytes: cost.Bytes,
		}); err != nil {
			return res, err
		}
		work = append(work, deviceWork{queue: q, bufDist: bufDist, lo: lo, hi: hi})
	}

	// Merge per-device candidates into the global top-k per query.
	results := make([][]Neighbor, cfg.FuncQueries)
	for _, w := range work {
		npts := w.hi - w.lo
		data, _, err := w.queue.EnqueueRead(w.bufDist, 0, int64(4*cfg.FuncQueries*npts))
		if err != nil {
			return res, err
		}
		dist := mem.BytesF32(data)
		for qi := 0; qi < cfg.FuncQueries; qi++ {
			for pi := 0; pi < npts; pi++ {
				results[qi] = append(results[qi], Neighbor{
					Index: int32(w.lo + pi),
					Dist:  dist[qi*npts+pi],
				})
			}
		}
		if _, err := w.queue.Finish(); err != nil {
			return res, err
		}
	}
	for qi := range results {
		sortNeighbors(results[qi])
		if len(results[qi]) > cfg.K {
			results[qi] = results[qi][:cfg.K]
		}
	}

	res.Verified = true
	if !cfg.SkipVerify {
		ref := Reference(points, queries, d, cfg.K)
		for qi := range ref {
			for ki := range ref[qi] {
				if ref[qi][ki].Dist != results[qi][ki].Dist {
					return res, fmt.Errorf("knn: query %d rank %d: got dist %v want %v",
						qi, ki, results[qi][ki].Dist, ref[qi][ki].Dist)
				}
			}
		}
	}
	apps.CollectMetrics(p, &res)
	return res, nil
}

// Reference computes the exact k nearest neighbors sequentially.
func Reference(points, queries []float32, dims, k int) [][]Neighbor {
	npts := len(points) / dims
	nq := len(queries) / dims
	out := make([][]Neighbor, nq)
	for qi := 0; qi < nq; qi++ {
		cands := make([]Neighbor, npts)
		for pi := 0; pi < npts; pi++ {
			var acc float32
			for d := 0; d < dims; d++ {
				diff := points[pi*dims+d] - queries[qi*dims+d]
				acc += diff * diff
			}
			cands[pi] = Neighbor{Index: int32(pi), Dist: acc}
		}
		sortNeighbors(cands)
		if len(cands) > k {
			cands = cands[:k]
		}
		out[qi] = cands
	}
	return out
}

// sortNeighbors orders by distance, breaking ties by index so results are
// deterministic across partitionings.
func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Dist != ns[j].Dist {
			return ns[i].Dist < ns[j].Dist
		}
		return ns[i].Index < ns[j].Index
	})
}

// Workload describes the paper-scale run for the analytic baselines:
// queries broadcast, points partitioned, candidates reduced per device.
func Workload(points, queries, dims, k int) baseline.Workload {
	return baseline.Workload{
		Name:              "kNN",
		BroadcastBytes:    int64(queries) * int64(dims) * 4,
		PartitionedBytes:  int64(points) * int64(dims) * 4,
		TotalCost:         Cost(int64(points), int64(queries), int64(dims)),
		OutputBytes:       int64(queries) * int64(k) * 4,
		CommandsPerDevice: 7,
		SnuCLDSupported:   true,
	}
}
