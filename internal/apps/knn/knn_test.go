package knn_test

import (
	"testing"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps/knn"
)

func startCluster(t *testing.T, gpus int) *haocl.LocalCluster {
	t.Helper()
	reg := haocl.NewKernelRegistry()
	knn.RegisterKernels(reg)
	lc, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
		UserID:      "test",
		GPUNodes:    gpus,
		Kernels:     reg,
		ExecWorkers: 1,
	})
	if err != nil {
		t.Fatalf("StartLocalCluster: %v", err)
	}
	t.Cleanup(func() { lc.Close() })
	return lc
}

func TestKNNSingleGPU(t *testing.T) {
	lc := startCluster(t, 1)
	res, err := knn.Run(lc.Platform, knn.Config{
		LogicalPoints: 100_000, LogicalQueries: 64,
		FuncPoints: 500, FuncQueries: 4,
		Dims: 8, K: 8,
		Devices: lc.Platform.Devices(haocl.GPU),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Verified {
		t.Fatal("not verified")
	}
}

func TestKNNPartitionedMatchesReference(t *testing.T) {
	// The merge across 4 partitions must agree exactly with the
	// sequential top-k, including tie-breaking.
	lc := startCluster(t, 4)
	if _, err := knn.Run(lc.Platform, knn.Config{
		LogicalPoints: 100_000, LogicalQueries: 64,
		FuncPoints: 997, FuncQueries: 6, // prime: uneven partitions
		Dims: 4, K: 16,
		Devices: lc.Platform.Devices(haocl.GPU),
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestKNNScaling(t *testing.T) {
	var prev haocl.Duration
	for _, nodes := range []int{1, 2, 4} {
		lc := startCluster(t, nodes)
		res, err := knn.Run(lc.Platform, knn.Config{
			LogicalPoints: 2_000_000, LogicalQueries: 1024,
			FuncPoints: 400, FuncQueries: 4,
			Dims: 8, K: 4,
			Devices: lc.Platform.Devices(haocl.GPU),
		})
		if err != nil {
			t.Fatalf("Run(%d): %v", nodes, err)
		}
		if prev > 0 && res.Makespan >= prev {
			t.Fatalf("no speedup at %d nodes: %v >= %v", nodes, res.Makespan, prev)
		}
		prev = res.Makespan
		lc.Close()
	}
}
