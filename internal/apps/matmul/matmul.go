// Package matmul implements the MatrixMul benchmark of Table I: dense
// single-precision matrix multiplication (C = A×B), the workload the paper
// uses for both the heterogeneity evaluation (same kernel on every device,
// different data portions, §IV-C) and the breakdown analysis (Fig. 3).
package matmul

import (
	"fmt"
	"math"
	"math/rand"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps"
	"github.com/haocl-project/haocl/internal/baseline"
	"github.com/haocl-project/haocl/internal/mem"
)

// Source is the OpenCL C program, a naive row-per-work-item kernel in the
// style of the Rodinia/SHOC GEMM references.
const Source = `
// Dense matrix multiplication: C[M x N] = A[M x K] * B[K x N].
__kernel void matmul(__global const float* A,
                     __global const float* B,
                     __global float* C,
                     const int M,
                     const int N,
                     const int K) {
    int j = get_global_id(0);
    int i = get_global_id(1);
    if (i >= M || j >= N) return;
    float acc = 0.0f;
    for (int k = 0; k < K; k++) {
        acc += A[i*K + k] * B[k*N + j];
    }
    C[i*N + j] = acc;
}
`

// Cost models one launch of the matmul kernel: 2·M·N·K flops, and naive
// uncached global traffic of 2K reads plus one write per output element.
func Cost(m, n, k int64) haocl.KernelCost {
	return haocl.KernelCost{
		Flops: 2 * m * n * k,
		Bytes: m * n * (2*k + 1) * 4,
	}
}

// RegisterKernels installs the matmul device kernel into reg.
func RegisterKernels(reg *haocl.KernelRegistry) {
	reg.MustRegister(&haocl.KernelSpec{
		Name:    "matmul",
		NumArgs: 6,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {
			j := it.GlobalID(0)
			i := it.GlobalID(1)
			m, n, k := args[3].Int(), args[4].Int(), args[5].Int()
			if i >= m || j >= n {
				return
			}
			a, b, c := args[0].Float32s(), args[1].Float32s(), args[2].Float32s()
			var acc float32
			for kk := 0; kk < k; kk++ {
				acc += a[i*k+kk] * b[kk*n+j]
			}
			c[i*n+j] = acc
		},
		Cost: func(global [3]int, args []haocl.KernelArg) haocl.KernelCost {
			m, n, k := int64(args[3].Int()), int64(args[4].Int()), int64(args[5].Int())
			return Cost(m, n, k)
		},
	})
}

// Config parameterizes one run.
type Config struct {
	// LogicalN is the paper-scale square matrix dimension used by the
	// timing model (Fig. 3 sweeps 1000..10000).
	LogicalN int
	// FuncN is the functional dimension actually computed and verified.
	FuncN int
	// Devices are the devices to partition rows across.
	Devices []*haocl.Device
	// EqualSplit forces heterogeneity-oblivious equal row portions
	// instead of throughput-weighted ones (ablation of the paper's
	// data-portioning claim, §IV-C).
	EqualSplit bool
	// SkipVerify disables the sequential reference check (benchmarks).
	SkipVerify bool
}

// InputBytes reports the benchmark's data footprint (A, B and the output
// C, which the host must allocate and zero) at logical scale; Table I's
// 760 MB matches three float32 matrices at N=8000.
func InputBytes(n int64) int64 { return 3 * 4 * n * n }

// DefaultLogicalN reproduces Table I's 760 MB input set.
const DefaultLogicalN = 8000

// Run executes MatrixMul on the platform, splitting A's rows across the
// configured devices while B is broadcast, exactly as the paper describes:
// "the MatrixMul kernels on the different devices are kept the same, just
// processing different data portions" (§IV-C).
func Run(p *haocl.Platform, cfg Config) (apps.Result, error) {
	res := apps.Result{App: "MatrixMul", Devices: len(cfg.Devices)}
	if cfg.LogicalN <= 0 || cfg.FuncN <= 0 || len(cfg.Devices) == 0 {
		return res, fmt.Errorf("matmul: LogicalN, FuncN and Devices are required")
	}
	n := cfg.FuncN
	ln := int64(cfg.LogicalN)

	// Generate inputs and charge their creation at logical scale.
	rng := rand.New(rand.NewSource(42))
	a := make([]float32, n*n)
	b := make([]float32, n*n)
	for i := range a {
		a[i] = rng.Float32()
		b[i] = rng.Float32()
	}
	p.ModelDataCreate(InputBytes(ln))

	ctx, err := p.CreateContext(cfg.Devices)
	if err != nil {
		return res, err
	}
	prog, err := ctx.CreateProgram(Source)
	if err != nil {
		return res, err
	}
	if err := prog.Build(); err != nil {
		return res, fmt.Errorf("matmul: build: %v\n%s", err, prog.BuildLog())
	}

	// B is broadcast: one buffer, migrated to every node that uses it.
	bufB, err := ctx.CreateBuffer(int64(4 * n * n))
	if err != nil {
		return res, err
	}
	bufB.SetModelSize(4 * ln * ln)

	// Rows are portioned in proportion to each device's estimated
	// throughput for this kernel, so hybrid GPU+FPGA clusters balance.
	rowFlops := float64(2 * ln * ln)
	rowBytes := float64(ln * (2*ln + 1) * 4)
	funcRows := apps.WeightedOffsets(n, cfg.Devices, rowFlops, rowBytes)
	logicalRows := apps.WeightedOffsets(cfg.LogicalN, cfg.Devices, rowFlops, rowBytes)
	if cfg.EqualSplit {
		funcRows = apps.SplitRange(n, len(cfg.Devices))
		logicalRows = apps.SplitRange(cfg.LogicalN, len(cfg.Devices))
	}

	type deviceWork struct {
		queue *haocl.Queue
		bufC  *haocl.Buffer
		rows  int
		lo    int
	}
	work := make([]deviceWork, 0, len(cfg.Devices))

	// One queue per device; B reaches every node through one pipelined
	// chain broadcast instead of per-node host transfers.
	queues := make([]*haocl.Queue, len(cfg.Devices))
	for di, dev := range cfg.Devices {
		q, err := ctx.CreateQueue(dev)
		if err != nil {
			return res, err
		}
		queues[di] = q
	}
	if _, err := ctx.Broadcast(bufB, mem.F32Bytes(b), queues); err != nil {
		return res, err
	}

	for di := range cfg.Devices {
		lo, hi := funcRows[di], funcRows[di+1]
		rows := hi - lo
		if rows == 0 {
			continue
		}
		llo, lhi := logicalRows[di], logicalRows[di+1]
		lrows := int64(lhi - llo)

		q := queues[di]
		bufA, err := ctx.CreateBuffer(int64(4 * rows * n))
		if err != nil {
			return res, err
		}
		bufA.SetModelSize(4 * lrows * ln)
		bufC, err := ctx.CreateBuffer(int64(4 * rows * n))
		if err != nil {
			return res, err
		}
		bufC.SetModelSize(4 * lrows * ln)

		if _, err := q.EnqueueWrite(bufA, 0, mem.F32Bytes(a[lo*n:hi*n])); err != nil {
			return res, err
		}

		k, err := prog.CreateKernel("matmul")
		if err != nil {
			return res, err
		}
		for i, v := range []any{bufA, bufB, bufC, int32(rows), int32(n), int32(n)} {
			if err := k.SetArg(i, v); err != nil {
				return res, err
			}
		}
		cost := Cost(lrows, ln, ln)
		_, err = q.EnqueueKernel(k, []int{n, rows}, nil, nil, &haocl.LaunchOptions{
			CostFlops: cost.Flops,
			CostBytes: cost.Bytes,
		})
		if err != nil {
			return res, err
		}
		work = append(work, deviceWork{queue: q, bufC: bufC, rows: rows, lo: lo})
	}

	// Gather results and verify against the sequential reference.
	c := make([]float32, n*n)
	for _, w := range work {
		data, _, err := w.queue.EnqueueRead(w.bufC, 0, int64(4*w.rows*n))
		if err != nil {
			return res, err
		}
		copy(c[w.lo*n:], mem.BytesF32(data))
		if _, err := w.queue.Finish(); err != nil {
			return res, err
		}
	}

	res.Verified = true
	if !cfg.SkipVerify {
		res.Verified = verify(a, b, c, n)
		if !res.Verified {
			return res, fmt.Errorf("matmul: output does not match sequential reference")
		}
	}
	apps.CollectMetrics(p, &res)
	return res, nil
}

// verify checks C against a straightforward sequential multiply.
func verify(a, b, c []float32, n int) bool {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * b[k*n+j]
			}
			if diff := float64(acc - c[i*n+j]); math.Abs(diff) > 1e-3 {
				return false
			}
		}
	}
	return true
}

// Workload describes the paper-scale run for the analytic baselines: B is
// broadcast, A partitioned, one kernel launch plus transfers per device.
func Workload(logicalN int) baseline.Workload {
	n := int64(logicalN)
	return baseline.Workload{
		Name:              "MatrixMul",
		BroadcastBytes:    4 * n * n,
		PartitionedBytes:  4 * n * n,
		TotalCost:         Cost(n, n, n),
		OutputBytes:       4 * n * n,
		CommandsPerDevice: 8,
		SnuCLDSupported:   true,
	}
}
