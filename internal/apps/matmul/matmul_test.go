package matmul_test

import (
	"testing"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps"
	"github.com/haocl-project/haocl/internal/apps/matmul"
)

func startCluster(t *testing.T, gpus, fpgas int) *haocl.LocalCluster {
	t.Helper()
	reg := haocl.NewKernelRegistry()
	matmul.RegisterKernels(reg)
	lc, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
		UserID:      "test",
		GPUNodes:    gpus,
		FPGANodes:   fpgas,
		Bitstreams:  apps.Bitstreams(),
		Kernels:     reg,
		ExecWorkers: 1,
	})
	if err != nil {
		t.Fatalf("StartLocalCluster: %v", err)
	}
	t.Cleanup(func() { lc.Close() })
	return lc
}

func TestMatMulSingleGPU(t *testing.T) {
	lc := startCluster(t, 1, 0)
	res, err := matmul.Run(lc.Platform, matmul.Config{
		LogicalN: 1000,
		FuncN:    48,
		Devices:  lc.Platform.Devices(haocl.GPU),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Verified {
		t.Fatal("result not verified")
	}
	if res.Compute <= 0 || res.Transfer <= 0 || res.DataCreate <= 0 {
		t.Fatalf("missing breakdown components: %+v", res)
	}
}

func TestMatMulMultiGPUPartition(t *testing.T) {
	lc := startCluster(t, 4, 0)
	res, err := matmul.Run(lc.Platform, matmul.Config{
		LogicalN: 2000,
		FuncN:    50, // not divisible by 4: exercises uneven row split
		Devices:  lc.Platform.Devices(haocl.GPU),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Verified {
		t.Fatal("result not verified")
	}
	if res.Devices != 4 {
		t.Fatalf("got %d devices, want 4", res.Devices)
	}
}

func TestMatMulOnFPGA(t *testing.T) {
	lc := startCluster(t, 0, 2)
	res, err := matmul.Run(lc.Platform, matmul.Config{
		LogicalN: 1000,
		FuncN:    32,
		Devices:  lc.Platform.Devices(haocl.FPGA),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Verified {
		t.Fatal("result not verified")
	}
}

func TestMatMulHetero(t *testing.T) {
	lc := startCluster(t, 2, 2)
	res, err := matmul.Run(lc.Platform, matmul.Config{
		LogicalN: 1000,
		FuncN:    40,
		Devices:  lc.Platform.Devices(haocl.AnyDevice),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Verified {
		t.Fatal("result not verified")
	}
	if res.Devices != 4 {
		t.Fatalf("got %d devices, want 4", res.Devices)
	}
}

// TestMatMulScaling checks the headline Fig. 2 property at test scale:
// more GPU nodes means shorter end-to-end virtual time.
func TestMatMulScaling(t *testing.T) {
	var prev haocl.Duration
	for _, nodes := range []int{1, 2, 4} {
		lc := startCluster(t, nodes, 0)
		res, err := matmul.Run(lc.Platform, matmul.Config{
			LogicalN: 4000,
			FuncN:    48,
			Devices:  lc.Platform.Devices(haocl.GPU),
		})
		if err != nil {
			t.Fatalf("Run(%d nodes): %v", nodes, err)
		}
		if prev > 0 && res.Makespan >= prev {
			t.Fatalf("no speedup at %d nodes: %v >= %v", nodes, res.Makespan, prev)
		}
		prev = res.Makespan
		lc.Close()
	}
}
