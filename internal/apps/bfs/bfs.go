// Package bfs implements the BFS benchmark of Table I: breadth-first
// traversal of all connected components of a graph, after Rodinia's bfs.
//
// The workload traverses the graph from a batch of source vertices
// (Graph500-style multi-root runs). Sources are partitioned across devices
// — each device holds a replica of the graph, distributed once through a
// pipelined chain broadcast, and traverses its own sources with
// device-local level arrays, so the only per-level host interaction is the
// Rodinia-style continuation-flag read.
package bfs

import (
	"fmt"
	"sync/atomic"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps"
	"github.com/haocl-project/haocl/internal/baseline"
	"github.com/haocl-project/haocl/internal/mem"
)

// Source is the OpenCL C program: the per-source initialization kernel and
// the level-synchronous expansion kernel, using atomic compare-and-swap to
// claim vertices exactly as GPU BFS kernels do.
const Source = `
// Reset the level array for a new source vertex.
__kernel void bfs_init(__global int* levels,
                       const int src,
                       const int n) {
    int v = get_global_id(0);
    if (v >= n) return;
    levels[v] = (v == src) ? 0 : -1;
}

// Expand one frontier level: every vertex at the current level claims its
// undiscovered neighbors.
__kernel void bfs_frontier(__global const int* offsets,
                           __global const int* edges,
                           __global int* levels,
                           __global int* flag,
                           const int curLevel,
                           const int n) {
    int v = get_global_id(0);
    if (v >= n || levels[v] != curLevel) return;
    for (int e = offsets[v]; e < offsets[v+1]; e++) {
        int w = edges[e];
        if (atomic_cmpxchg(&levels[w], -1, curLevel + 1) == -1) {
            flag[0] = 1;
        }
    }
}
`

// Graph is a CSR graph.
type Graph struct {
	V       int
	Offsets []int32
	Edges   []int32
}

// E returns the directed edge count.
func (g *Graph) E() int { return len(g.Edges) }

// GenerateTorus3D builds a side³-vertex 3D torus with 6-neighbor
// connectivity: a deterministic high-diameter graph (diameter 3·side/2)
// whose small per-level frontiers match the long-traversal behavior that
// makes BFS the communication-sensitive benchmark of the suite.
func GenerateTorus3D(side int) *Graph {
	v := side * side * side
	g := &Graph{
		V:       v,
		Offsets: make([]int32, v+1),
		Edges:   make([]int32, 0, 6*v),
	}
	idx := func(x, y, z int) int32 {
		x, y, z = (x+side)%side, (y+side)%side, (z+side)%side
		return int32((z*side+y)*side + x)
	}
	for z := 0; z < side; z++ {
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				g.Edges = append(g.Edges,
					idx(x-1, y, z), idx(x+1, y, z),
					idx(x, y-1, z), idx(x, y+1, z),
					idx(x, y, z-1), idx(x, y, z+1),
				)
				g.Offsets[idx(x, y, z)+1] = int32(len(g.Edges))
			}
		}
	}
	return g
}

// Reference runs a sequential BFS from src and returns per-vertex levels
// (-1 for unreachable).
func (g *Graph) Reference(src int32) []int32 {
	levels := make([]int32, g.V)
	for i := range levels {
		levels[i] = -1
	}
	levels[src] = 0
	frontier := []int32{src}
	for level := int32(0); len(frontier) > 0; level++ {
		var next []int32
		for _, v := range frontier {
			for e := g.Offsets[v]; e < g.Offsets[v+1]; e++ {
				w := g.Edges[e]
				if levels[w] == -1 {
					levels[w] = level + 1
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return levels
}

// MaxLevel returns the eccentricity of src (the number of frontier
// expansions a level-synchronous BFS performs).
func MaxLevel(levels []int32) int32 {
	var max int32
	for _, l := range levels {
		if l > max {
			max = l
		}
	}
	return max
}

// RegisterKernels installs both BFS kernels into reg.
func RegisterKernels(reg *haocl.KernelRegistry) {
	reg.MustRegister(&haocl.KernelSpec{
		Name:    "bfs_init",
		NumArgs: 3,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {
			v := it.GlobalID(0)
			src, n := args[1].Int(), args[2].Int()
			if v >= n {
				return
			}
			levels := args[0].Int32s()
			if v == src {
				levels[v] = 0
			} else {
				levels[v] = -1
			}
		},
		Cost: func(global [3]int, args []haocl.KernelArg) haocl.KernelCost {
			n := int64(global[0])
			return haocl.KernelCost{Flops: n, Bytes: n * 4}
		},
	})
	reg.MustRegister(&haocl.KernelSpec{
		Name:    "bfs_frontier",
		NumArgs: 6,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {
			v := it.GlobalID(0)
			curLevel, n := int32(args[4].Int()), args[5].Int()
			if v >= n {
				return
			}
			offsets := args[0].Int32s()
			edges := args[1].Int32s()
			levels := args[2].Int32s()
			flag := args[3].Int32s()
			if atomic.LoadInt32(&levels[v]) != curLevel {
				return
			}
			for e := offsets[v]; e < offsets[v+1]; e++ {
				w := edges[e]
				if atomic.CompareAndSwapInt32(&levels[w], -1, curLevel+1) {
					atomic.StoreInt32(&flag[0], 1)
				}
			}
		},
		Cost: func(global [3]int, args []haocl.KernelArg) haocl.KernelCost {
			n := int64(global[0])
			// Full vertex scan plus frontier-edge expansion; the launch
			// cost override refines this with measured frontier sizes.
			return haocl.KernelCost{Flops: n, Bytes: n * 8}
		},
	})
}

// Config parameterizes one run.
type Config struct {
	// LogicalSide is the paper-scale torus side (Table I: 240 MB ≈
	// side 182, 6M vertices, 36M directed edges plus working arrays).
	LogicalSide int
	// FuncSide is the verified functional torus side.
	FuncSide int
	// Sources is the logical multi-root batch size, split across devices.
	Sources int
	// Devices traverse disjoint source subsets on graph replicas.
	Devices    []*haocl.Device
	SkipVerify bool
}

// Defaults reproducing Table I's 240 MB input.
const (
	DefaultLogicalSide = 182
	DefaultSources     = 256
)

// InputBytes reports the logical input footprint: CSR offsets and edges
// plus the per-vertex working arrays.
func InputBytes(side int64) int64 {
	v := side * side * side
	return (v+1)*4 + 6*v*4 + 2*v*4
}

// gatherLineBytes models the random access to the levels array during
// neighbor claims: one cache line per inspected edge.
const gatherLineBytes = 64

// logicalCostPerSource models one full traversal at logical scale: a full
// vertex scan per level plus one gathered line per edge over the run.
func logicalCostPerSource(side int64) haocl.KernelCost {
	v := side * side * side
	e := 6 * v
	levels := 3 * side / 2 // torus eccentricity
	return haocl.KernelCost{
		Flops: levels*v + e,
		Bytes: levels*v*8 + e*gatherLineBytes,
	}
}

// Run executes multi-root BFS on the platform.
func Run(p *haocl.Platform, cfg Config) (apps.Result, error) {
	res := apps.Result{App: "BFS", Devices: len(cfg.Devices)}
	if cfg.FuncSide < 2 || cfg.LogicalSide < 2 || len(cfg.Devices) == 0 {
		return res, fmt.Errorf("bfs: sides and devices are required")
	}
	if cfg.Sources <= 0 {
		cfg.Sources = len(cfg.Devices)
	}

	g := GenerateTorus3D(cfg.FuncSide)
	p.ModelDataCreate(InputBytes(int64(cfg.LogicalSide)))

	ctx, err := p.CreateContext(cfg.Devices)
	if err != nil {
		return res, err
	}
	prog, err := ctx.CreateProgram(Source)
	if err != nil {
		return res, err
	}
	if err := prog.Build(); err != nil {
		return res, fmt.Errorf("bfs: build: %v\n%s", err, prog.BuildLog())
	}

	lside := int64(cfg.LogicalSide)
	lv := lside * lside * lside
	graphScale := float64(lv) / float64(g.V)

	bufOffsets, err := ctx.CreateBuffer(int64(4 * len(g.Offsets)))
	if err != nil {
		return res, err
	}
	bufOffsets.SetModelSize(int64(float64(4*len(g.Offsets)) * graphScale))
	bufEdges, err := ctx.CreateBuffer(int64(4 * len(g.Edges)))
	if err != nil {
		return res, err
	}
	bufEdges.SetModelSize(int64(float64(4*len(g.Edges)) * graphScale))

	queues := make([]*haocl.Queue, len(cfg.Devices))
	for di, dev := range cfg.Devices {
		q, err := ctx.CreateQueue(dev)
		if err != nil {
			return res, err
		}
		queues[di] = q
	}
	// The graph replica reaches every node through one chain broadcast.
	if _, err := ctx.Broadcast(bufOffsets, mem.I32Bytes(g.Offsets), queues); err != nil {
		return res, err
	}
	if _, err := ctx.Broadcast(bufEdges, mem.I32Bytes(g.Edges), queues); err != nil {
		return res, err
	}

	// Each device traverses one functional source standing in for its
	// share of the logical source batch.
	perSource := logicalCostPerSource(lside)
	logicalSplit := apps.WeightedOffsets(cfg.Sources, cfg.Devices,
		float64(perSource.Flops), float64(perSource.Bytes))

	for di := range cfg.Devices {
		srcCount := logicalSplit[di+1] - logicalSplit[di]
		if srcCount == 0 {
			continue
		}
		q := queues[di]
		src := int32((di * 7919) % g.V)
		ref := g.Reference(src)
		funcLevels := int(MaxLevel(ref))
		if funcLevels == 0 {
			return res, fmt.Errorf("bfs: degenerate functional graph")
		}

		bufLevels, err := ctx.CreateBuffer(int64(4 * g.V))
		if err != nil {
			return res, err
		}
		bufFlag, err := ctx.CreateBuffer(4)
		if err != nil {
			return res, err
		}

		kInit, err := prog.CreateKernel("bfs_init")
		if err != nil {
			return res, err
		}
		for i, v := range []any{bufLevels, int32(src), int32(g.V)} {
			if err := kInit.SetArg(i, v); err != nil {
				return res, err
			}
		}
		// The init kernel is charged per logical source batch member.
		initCost := &haocl.LaunchOptions{
			CostFlops: lv * int64(srcCount),
			CostBytes: lv * 4 * int64(srcCount),
		}
		if _, err := q.EnqueueKernel(kInit, []int{g.V}, nil, nil, initCost); err != nil {
			return res, err
		}

		kFrontier, err := prog.CreateKernel("bfs_frontier")
		if err != nil {
			return res, err
		}
		if err := kFrontier.SetArg(0, bufOffsets); err != nil {
			return res, err
		}
		if err := kFrontier.SetArg(1, bufEdges); err != nil {
			return res, err
		}
		if err := kFrontier.SetArg(2, bufLevels); err != nil {
			return res, err
		}
		if err := kFrontier.SetArg(3, bufFlag); err != nil {
			return res, err
		}
		if err := kFrontier.SetArg(5, int32(g.V)); err != nil {
			return res, err
		}

		// Amortize the logical per-device traversal cost over the
		// functional level loop.
		perLaunch := &haocl.LaunchOptions{
			CostFlops: perSource.Flops * int64(srcCount) / int64(funcLevels),
			CostBytes: perSource.Bytes * int64(srcCount) / int64(funcLevels),
		}
		for level := 0; ; level++ {
			if _, err := q.EnqueueWrite(bufFlag, 0, make([]byte, 4)); err != nil {
				return res, err
			}
			if err := kFrontier.SetArg(4, int32(level)); err != nil {
				return res, err
			}
			if _, err := q.EnqueueKernel(kFrontier, []int{g.V}, nil, nil, perLaunch); err != nil {
				return res, err
			}
			flagRaw, _, err := q.EnqueueRead(bufFlag, 0, 4)
			if err != nil {
				return res, err
			}
			if mem.BytesI32(flagRaw)[0] == 0 {
				break
			}
			if level > g.V {
				return res, fmt.Errorf("bfs: traversal failed to converge")
			}
		}

		// Result read-back is untimed benchmark I/O (the level buffer's
		// model size stays functional).
		levelsRaw, _, err := q.EnqueueRead(bufLevels, 0, int64(4*g.V))
		if err != nil {
			return res, err
		}
		if _, err := q.Finish(); err != nil {
			return res, err
		}
		if !cfg.SkipVerify {
			got := mem.BytesI32(levelsRaw)
			for v := range ref {
				if got[v] != ref[v] {
					return res, fmt.Errorf("bfs: device %d vertex %d: got level %d want %d",
						di, v, got[v], ref[v])
				}
			}
		}
	}

	res.Verified = true
	apps.CollectMetrics(p, &res)
	return res, nil
}

// Workload describes the paper-scale run for the analytic baselines: the
// graph replica is needed by every device, sources partition the batch.
func Workload(side, sources int) baseline.Workload {
	per := logicalCostPerSource(int64(side))
	lside := int64(side)
	levels := int(3 * lside / 2)
	return baseline.Workload{
		Name:              "BFS",
		BroadcastBytes:    InputBytes(lside),
		TotalCost:         baseline.ScaleCost(per, sources),
		OutputBytes:       4 * lside * lside * lside,
		CommandsPerDevice: 4 + 3*levels,
		SnuCLDSupported:   true,
	}
}
