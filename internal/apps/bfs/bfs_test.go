package bfs_test

import (
	"testing"
	"testing/quick"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps/bfs"
)

func startCluster(t *testing.T, gpus int) *haocl.LocalCluster {
	t.Helper()
	reg := haocl.NewKernelRegistry()
	bfs.RegisterKernels(reg)
	lc, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
		UserID:      "test",
		GPUNodes:    gpus,
		Kernels:     reg,
		ExecWorkers: 1,
	})
	if err != nil {
		t.Fatalf("StartLocalCluster: %v", err)
	}
	t.Cleanup(func() { lc.Close() })
	return lc
}

func TestTorusProperties(t *testing.T) {
	check := func(raw uint8) bool {
		side := int(raw%5) + 2
		g := bfs.GenerateTorus3D(side)
		v := side * side * side
		if g.V != v || g.E() != 6*v {
			return false
		}
		// Every vertex has exactly 6 edges; all endpoints in range.
		for u := 0; u < v; u++ {
			if g.Offsets[u+1]-g.Offsets[u] != 6 {
				return false
			}
		}
		for _, w := range g.Edges {
			if w < 0 || int(w) >= v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestReferenceBFSOnTorus(t *testing.T) {
	g := bfs.GenerateTorus3D(4)
	levels := g.Reference(0)
	// A torus is connected: no vertex unreached.
	for v, l := range levels {
		if l < 0 {
			t.Fatalf("vertex %d unreached", v)
		}
	}
	// Eccentricity of a 6-neighbor torus is 3*(side/2).
	if got, want := bfs.MaxLevel(levels), int32(6); got != want {
		t.Fatalf("max level = %d, want %d", got, want)
	}
}

func TestBFSSingleGPU(t *testing.T) {
	lc := startCluster(t, 1)
	res, err := bfs.Run(lc.Platform, bfs.Config{
		LogicalSide: 32,
		FuncSide:    6,
		Sources:     8,
		Devices:     lc.Platform.Devices(haocl.GPU),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Verified {
		t.Fatal("not verified")
	}
}

func TestBFSMultiGPU(t *testing.T) {
	lc := startCluster(t, 4)
	res, err := bfs.Run(lc.Platform, bfs.Config{
		LogicalSide: 32,
		FuncSide:    6,
		Sources:     16,
		Devices:     lc.Platform.Devices(haocl.GPU),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Devices != 4 {
		t.Fatalf("devices = %d, want 4", res.Devices)
	}
}

func TestBFSScaling(t *testing.T) {
	var prev haocl.Duration
	for _, nodes := range []int{1, 2, 4} {
		lc := startCluster(t, nodes)
		res, err := bfs.Run(lc.Platform, bfs.Config{
			LogicalSide: 128,
			FuncSide:    6,
			Sources:     64,
			Devices:     lc.Platform.Devices(haocl.GPU),
		})
		if err != nil {
			t.Fatalf("Run(%d): %v", nodes, err)
		}
		if prev > 0 && res.Makespan >= prev {
			t.Fatalf("no speedup at %d nodes: %v >= %v", nodes, res.Makespan, prev)
		}
		prev = res.Makespan
		lc.Close()
	}
}
