// Package apps hosts the benchmark applications of the paper's Table I —
// MatrixMul, CFD, kNN, BFS and SpMV, drawn from the Rodinia and SHOC
// suites — implemented as HaoCL host programs with OpenCL C kernel sources
// and registered Go kernel implementations.
//
// Each application separates its logical problem size (the paper's input
// sets, used by the analytic cost models and the network/data-creation
// charges) from its functional size (the data actually crunched to verify
// correctness), following the substitution methodology in DESIGN.md §1.
package apps

import (
	"fmt"

	haocl "github.com/haocl-project/haocl"
)

// Result is one benchmark run's outcome in virtual time.
type Result struct {
	// App names the benchmark.
	App string
	// Devices is how many devices shared the work.
	Devices int
	// Makespan is the end-to-end virtual completion time.
	Makespan haocl.Duration
	// DataCreate, Transfer and Compute are the Fig. 3 breakdown
	// components.
	DataCreate haocl.Duration
	Transfer   haocl.Duration
	Compute    haocl.Duration
	// Commands counts protocol round trips.
	Commands int64
	// Verified reports that functional output matched the sequential
	// reference.
	Verified bool
}

// String formats the result as one harness row.
func (r Result) String() string {
	return fmt.Sprintf("%-10s dev=%-2d makespan=%9.3fs create=%8.3fs xfer=%8.3fs compute=%9.3fs verified=%v",
		r.App, r.Devices, r.Makespan.Seconds(), r.DataCreate.Seconds(),
		r.Transfer.Seconds(), r.Compute.Seconds(), r.Verified)
}

// CollectMetrics folds a platform's accumulated virtual-time accounting
// into a result. Platforms are created fresh per run, so the metrics are
// exactly this run's.
func CollectMetrics(p *haocl.Platform, r *Result) {
	m := p.Metrics()
	r.Makespan = haocl.Duration(m.Makespan)
	r.DataCreate = m.DataCreate
	r.Transfer = m.Transfer
	r.Compute = m.Compute()
	r.Commands = m.Commands
}

// SplitRange divides n items into parts nearly equal chunks, returning the
// start offsets (parts+1 entries, last = n). Chunks differ by at most one.
func SplitRange(n, parts int) []int {
	if parts <= 0 {
		parts = 1
	}
	offsets := make([]int, parts+1)
	base, rem := n/parts, n%parts
	off := 0
	for i := 0; i < parts; i++ {
		offsets[i] = off
		off += base
		if i < rem {
			off++
		}
	}
	offsets[parts] = n
	return offsets
}

// Sustained-rate derating used for host-side throughput estimates, matching
// the scheduler's assumptions for unobserved devices.
const (
	estComputeEff = 0.35
	estMemEff     = 0.50
)

// deviceRate estimates a device's item throughput for a workload with the
// given per-item arithmetic and traffic, using the roofline of its
// advertised peak rates.
func deviceRate(d *haocl.Device, flopsPerItem, bytesPerItem float64) float64 {
	info := d.Info()
	computeSec := 0.0
	if info.PeakGFLOPS > 0 {
		computeSec = flopsPerItem / (info.PeakGFLOPS * estComputeEff * 1e9)
	}
	memSec := 0.0
	if info.MemBWGBps > 0 {
		memSec = bytesPerItem / (info.MemBWGBps * estMemEff * 1e9)
	}
	sec := computeSec
	if memSec > sec {
		sec = memSec
	}
	if sec <= 0 {
		return 1
	}
	return 1 / sec
}

// WeightedOffsets divides n items across devices in proportion to each
// device's estimated throughput for the workload, so a GPU+FPGA cluster is
// not bottlenecked on its slowest member — the data-portioning side of the
// paper's heterogeneity evaluation (§IV-C). For homogeneous devices it
// degenerates to SplitRange.
func WeightedOffsets(n int, devs []*haocl.Device, flopsPerItem, bytesPerItem float64) []int {
	if len(devs) == 0 {
		return []int{0, n}
	}
	rates := make([]float64, len(devs))
	var total float64
	for i, d := range devs {
		rates[i] = deviceRate(d, flopsPerItem, bytesPerItem)
		total += rates[i]
	}
	offsets := make([]int, len(devs)+1)
	var acc float64
	for i := range devs {
		acc += rates[i]
		offsets[i+1] = int(float64(n) * acc / total)
	}
	offsets[len(devs)] = n
	// Monotonicity guard against rounding.
	for i := 1; i <= len(devs); i++ {
		if offsets[i] < offsets[i-1] {
			offsets[i] = offsets[i-1]
		}
	}
	return offsets
}

// Bitstreams lists every benchmark kernel name, for FPGA device configs
// (the pre-built binaries of paper §III-D).
func Bitstreams() []string {
	return []string{
		"matmul",
		"spmv_partition", "spmv_csr",
		"knn_dist",
		"bfs_init", "bfs_frontier",
		"cfd_step_factor", "cfd_compute_flux", "cfd_time_step",
	}
}
