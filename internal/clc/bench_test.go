package clc

import "testing"

const benchSource = `
#pragma OPENCL EXTENSION cl_khr_fp64 : enable
float helper(float x) { return x * 2.0f; }
__kernel void a(__global const float* in, __global float* out, const int n) {
    int i = get_global_id(0);
    if (i < n) out[i] = helper(in[i]);
}
__kernel void b(__global const int* rowptr, __global const int* colidx,
                __global const float* vals, __global const float* x,
                __global float* y, const int rows) {
    int r = get_global_id(0);
    if (r >= rows) return;
    float acc = 0.0f;
    for (int j = rowptr[r]; j < rowptr[r+1]; j++) acc += vals[j] * x[colidx[j]];
    y[r] = acc;
}
`

// BenchmarkParse measures the clBuildProgram front-end cost per program.
func BenchmarkParse(b *testing.B) {
	b.SetBytes(int64(len(benchSource)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchSource); err != nil {
			b.Fatal(err)
		}
	}
}
