// Package clc is a miniature OpenCL C front end. It lexes and parses the
// subset of OpenCL C needed to implement clCreateProgramWithSource /
// clBuildProgram faithfully: kernel signatures with address-space
// qualifiers, vector types, pointer declarators, and brace-balanced bodies.
//
// The node driver uses the extracted signatures to validate
// clCreateKernel and clSetKernelArg calls; execution itself binds to
// pre-registered kernel implementations by name (see internal/kernel),
// mirroring the paper's FPGA path where kernels are pre-built binaries
// selected by name (§III-D).
package clc

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds.
const (
	TokIdent TokenKind = iota + 1
	TokNumber
	TokString
	TokChar
	TokPunct
	TokEOF
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

// BuildError is a diagnostic produced while lexing or parsing program
// source; its format matches compiler build logs ("line:col: message").
type BuildError struct {
	Line int
	Col  int
	Msg  string
}

// Error implements error.
func (e *BuildError) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errf(line, col int, format string, args ...any) *BuildError {
	return &BuildError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpace consumes whitespace, comments and preprocessor directives.
// Directives are skipped whole-line (continuations honored); a real
// preprocessor is out of scope and benchmark kernels do not depend on one.
func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf(startLine, startCol, "unterminated block comment")
			}
		case c == '#' && l.col == 1 || c == '#' && l.atLineStart():
			for l.pos < len(l.src) {
				ch := l.peek()
				if ch == '\\' && l.peek2() == '\n' {
					l.advance()
					l.advance()
					continue
				}
				if ch == '\n' {
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// atLineStart reports whether only whitespace precedes the cursor on the
// current line, which is where preprocessor directives may begin.
func (l *lexer) atLineStart() bool {
	for i := l.pos - 1; i >= 0; i-- {
		switch l.src[i] {
		case '\n':
			return true
		case ' ', '\t':
			continue
		default:
			return false
		}
	}
	return true
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: l.line, Col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.pos], Line: line, Col: col}, nil
	case unicode.IsDigit(rune(c)) || (c == '.' && unicode.IsDigit(rune(l.peek2()))):
		start := l.pos
		for l.pos < len(l.src) {
			ch := l.peek()
			if isIdentCont(ch) || ch == '.' {
				l.advance()
				continue
			}
			// Exponent signs: 1e-5, 0x1p+3.
			if (ch == '+' || ch == '-') && l.pos > start {
				prev := l.src[l.pos-1]
				if prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P' {
					l.advance()
					continue
				}
			}
			break
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Line: line, Col: col}, nil
	case c == '"':
		start := l.pos
		l.advance()
		for l.pos < len(l.src) {
			ch := l.advance()
			if ch == '\\' && l.pos < len(l.src) {
				l.advance()
				continue
			}
			if ch == '"' {
				return Token{Kind: TokString, Text: l.src[start:l.pos], Line: line, Col: col}, nil
			}
		}
		return Token{}, l.errf(line, col, "unterminated string literal")
	case c == '\'':
		start := l.pos
		l.advance()
		for l.pos < len(l.src) {
			ch := l.advance()
			if ch == '\\' && l.pos < len(l.src) {
				l.advance()
				continue
			}
			if ch == '\'' {
				return Token{Kind: TokChar, Text: l.src[start:l.pos], Line: line, Col: col}, nil
			}
		}
		return Token{}, l.errf(line, col, "unterminated character literal")
	default:
		l.advance()
		return Token{Kind: TokPunct, Text: string(c), Line: line, Col: col}, nil
	}
}

// Tokenize lexes the whole source, mainly for tests and tooling.
func Tokenize(src string) ([]Token, error) {
	lx := newLexer(src)
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return toks, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

// scalarTypes lists the OpenCL C scalar types accepted in kernel
// signatures. Vector forms (float4, int2, ...) are validated separately.
var scalarTypes = map[string]bool{
	"bool": true, "char": true, "uchar": true, "short": true,
	"ushort": true, "int": true, "uint": true, "long": true,
	"ulong": true, "float": true, "double": true, "half": true,
	"size_t": true, "void": true,
	"int8_t": true, "uint8_t": true, "int32_t": true, "uint32_t": true,
	"int64_t": true, "uint64_t": true,
}

// IsTypeName reports whether ident names a scalar or vector OpenCL C type.
func IsTypeName(ident string) bool {
	if scalarTypes[ident] {
		return true
	}
	// Vector types: base type + lane count in {2,3,4,8,16}.
	for _, base := range [...]string{"char", "uchar", "short", "ushort", "int", "uint", "long", "ulong", "float", "double", "half"} {
		if rest, ok := strings.CutPrefix(ident, base); ok {
			switch rest {
			case "2", "3", "4", "8", "16":
				return true
			}
		}
	}
	return false
}
