package clc

import (
	"fmt"
	"strings"
)

// AddressSpace is an OpenCL address-space qualifier.
type AddressSpace uint8

// Address spaces. Private is the default for scalar (by-value) parameters.
const (
	SpacePrivate AddressSpace = iota + 1
	SpaceGlobal
	SpaceLocal
	SpaceConstant
)

// String names the address space as written in source.
func (s AddressSpace) String() string {
	switch s {
	case SpacePrivate:
		return "private"
	case SpaceGlobal:
		return "global"
	case SpaceLocal:
		return "local"
	case SpaceConstant:
		return "constant"
	default:
		return fmt.Sprintf("AddressSpace(%d)", uint8(s))
	}
}

// Param is one parameter of a kernel signature.
type Param struct {
	Name    string
	Type    string // scalar/vector type name, e.g. "float", "int4"
	Space   AddressSpace
	Pointer bool
	Const   bool
}

// String renders the parameter roughly as written.
func (p Param) String() string {
	var b strings.Builder
	if p.Space != SpacePrivate {
		b.WriteString("__")
		b.WriteString(p.Space.String())
		b.WriteByte(' ')
	}
	if p.Const {
		b.WriteString("const ")
	}
	b.WriteString(p.Type)
	if p.Pointer {
		b.WriteByte('*')
	}
	b.WriteByte(' ')
	b.WriteString(p.Name)
	return b.String()
}

// Kernel is one parsed __kernel function signature.
type Kernel struct {
	Name   string
	Params []Param
	Line   int
	// ReqdWorkGroupSize holds the reqd_work_group_size attribute if the
	// kernel declared one, else nil.
	ReqdWorkGroupSize []int
}

// Program is the result of parsing one translation unit.
type Program struct {
	Kernels []Kernel
}

// Kernel returns the named kernel signature, if present.
func (p *Program) Kernel(name string) (*Kernel, bool) {
	for i := range p.Kernels {
		if p.Kernels[i].Name == name {
			return &p.Kernels[i], true
		}
	}
	return nil, false
}

// KernelNames lists kernel names in declaration order.
func (p *Program) KernelNames() []string {
	names := make([]string, len(p.Kernels))
	for i, k := range p.Kernels {
		names[i] = k.Name
	}
	return names
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(t Token, format string, args ...any) *BuildError {
	return &BuildError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

// Parse lexes and parses src, returning every __kernel signature. Non-kernel
// top-level declarations (helper functions, typedefs, globals) are skipped
// with brace/paren matching; only kernels are validated in detail.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	seen := make(map[string]int)
	for p.cur().Kind != TokEOF {
		t := p.cur()
		if t.Kind == TokIdent && (t.Text == "__kernel" || t.Text == "kernel") {
			k, err := p.parseKernel()
			if err != nil {
				return nil, err
			}
			if prevLine, dup := seen[k.Name]; dup {
				return nil, p.errf(t, "kernel %q redefined (first defined at line %d)", k.Name, prevLine)
			}
			seen[k.Name] = k.Line
			prog.Kernels = append(prog.Kernels, *k)
			continue
		}
		p.advance()
		// Skip over nested blocks so a '}' inside a helper function is
		// never misread as top-level structure.
		if t.Kind == TokPunct && (t.Text == "{" || t.Text == "(") {
			if err := p.skipBalanced(t); err != nil {
				return nil, err
			}
		}
	}
	if len(prog.Kernels) == 0 {
		return nil, &BuildError{Line: 1, Col: 1, Msg: "no __kernel functions found in program source"}
	}
	return prog, nil
}

// skipBalanced consumes tokens until the bracket opened by open closes.
// open has already been consumed.
func (p *parser) skipBalanced(open Token) error {
	var close string
	switch open.Text {
	case "{":
		close = "}"
	case "(":
		close = ")"
	case "[":
		close = "]"
	default:
		return p.errf(open, "internal: not a bracket: %q", open.Text)
	}
	depth := 1
	for depth > 0 {
		t := p.advance()
		if t.Kind == TokEOF {
			return p.errf(open, "unbalanced %q: reached end of source", open.Text)
		}
		if t.Kind != TokPunct {
			continue
		}
		switch t.Text {
		case open.Text:
			depth++
		case close:
			depth--
		}
	}
	return nil
}

// parseKernel parses from the __kernel keyword through the closing brace of
// the kernel body.
func (p *parser) parseKernel() (*Kernel, error) {
	kw := p.advance() // __kernel
	k := &Kernel{Line: kw.Line}

	// Optional attributes: __attribute__((reqd_work_group_size(x,y,z))).
	for p.cur().Kind == TokIdent && (p.cur().Text == "__attribute__" || p.cur().Text == "__attribute") {
		if err := p.parseAttribute(k); err != nil {
			return nil, err
		}
	}

	ret := p.advance()
	if ret.Kind != TokIdent || ret.Text != "void" {
		return nil, p.errf(ret, "kernel return type must be void, got %q", ret.Text)
	}
	name := p.advance()
	if name.Kind != TokIdent {
		return nil, p.errf(name, "expected kernel name, got %q", name.Text)
	}
	if IsTypeName(name.Text) || strings.HasPrefix(name.Text, "__") {
		return nil, p.errf(name, "invalid kernel name %q", name.Text)
	}
	k.Name = name.Text

	lp := p.advance()
	if lp.Kind != TokPunct || lp.Text != "(" {
		return nil, p.errf(lp, "expected '(' after kernel name %q", k.Name)
	}
	if err := p.parseParams(k); err != nil {
		return nil, err
	}

	lb := p.advance()
	if lb.Kind != TokPunct || lb.Text != "{" {
		return nil, p.errf(lb, "expected kernel body '{' for %q", k.Name)
	}
	if err := p.skipBalanced(lb); err != nil {
		return nil, err
	}
	return k, nil
}

func (p *parser) parseAttribute(k *Kernel) error {
	p.advance() // __attribute__
	lp := p.advance()
	if lp.Kind != TokPunct || lp.Text != "(" {
		return p.errf(lp, "expected '(' after __attribute__")
	}
	// Record reqd_work_group_size values if present while skipping the
	// balanced attribute list.
	depth := 1
	for depth > 0 {
		t := p.advance()
		if t.Kind == TokEOF {
			return p.errf(lp, "unterminated __attribute__")
		}
		if t.Kind == TokIdent && t.Text == "reqd_work_group_size" {
			var dims []int
			if p.cur().Text == "(" {
				p.advance()
				for p.cur().Text != ")" && p.cur().Kind != TokEOF {
					tok := p.advance()
					if tok.Kind == TokNumber {
						var v int
						if _, err := fmt.Sscanf(tok.Text, "%d", &v); err == nil {
							dims = append(dims, v)
						}
					}
				}
				p.advance() // ')'
			}
			k.ReqdWorkGroupSize = dims
			continue
		}
		if t.Kind == TokPunct {
			switch t.Text {
			case "(":
				depth++
			case ")":
				depth--
			}
		}
	}
	return nil
}

func (p *parser) parseParams(k *Kernel) error {
	// Empty parameter lists: "()" or "(void)".
	if p.cur().Text == ")" {
		p.advance()
		return nil
	}
	if p.cur().Kind == TokIdent && p.cur().Text == "void" && p.peek().Text == ")" {
		p.advance()
		p.advance()
		return nil
	}
	for {
		param, err := p.parseParam(k.Name)
		if err != nil {
			return err
		}
		k.Params = append(k.Params, *param)
		t := p.advance()
		if t.Kind != TokPunct {
			return p.errf(t, "expected ',' or ')' in parameter list of %q", k.Name)
		}
		switch t.Text {
		case ",":
			continue
		case ")":
			return nil
		default:
			return p.errf(t, "expected ',' or ')' in parameter list of %q, got %q", k.Name, t.Text)
		}
	}
}

func (p *parser) parseParam(kernelName string) (*Param, error) {
	param := &Param{Space: SpacePrivate}
	var sawType bool
	for {
		t := p.cur()
		if t.Kind != TokIdent {
			break
		}
		switch t.Text {
		case "__global", "global":
			param.Space = SpaceGlobal
			p.advance()
		case "__local", "local":
			param.Space = SpaceLocal
			p.advance()
		case "__constant", "constant":
			param.Space = SpaceConstant
			p.advance()
		case "__private", "private":
			param.Space = SpacePrivate
			p.advance()
		case "const":
			param.Const = true
			p.advance()
		case "restrict", "__restrict", "volatile":
			p.advance()
		case "unsigned":
			// Fold "unsigned <base>" into the u-prefixed type name.
			p.advance()
			base := p.cur()
			if base.Kind == TokIdent && scalarTypes[base.Text] {
				param.Type = "u" + base.Text
				p.advance()
			} else {
				param.Type = "uint"
			}
			sawType = true
		default:
			if IsTypeName(t.Text) {
				if sawType {
					return nil, p.errf(t, "duplicate type in parameter of %q", kernelName)
				}
				param.Type = t.Text
				sawType = true
				p.advance()
				continue
			}
			// An identifier that is not a type or qualifier must be the
			// parameter name; handled below.
			goto name
		}
	}
name:
	if !sawType {
		return nil, p.errf(p.cur(), "missing type in parameter of kernel %q", kernelName)
	}
	for p.cur().Kind == TokPunct && p.cur().Text == "*" {
		param.Pointer = true
		p.advance()
	}
	// Post-star qualifiers: "float * restrict x".
	for p.cur().Kind == TokIdent {
		switch p.cur().Text {
		case "restrict", "__restrict", "const", "volatile":
			p.advance()
			continue
		}
		break
	}
	nameTok := p.advance()
	if nameTok.Kind != TokIdent {
		return nil, p.errf(nameTok, "missing parameter name in kernel %q", kernelName)
	}
	param.Name = nameTok.Text
	// Array suffix "x[]" is pointer-equivalent.
	if p.cur().Text == "[" {
		open := p.advance()
		if err := p.skipBalanced(open); err != nil {
			return nil, err
		}
		param.Pointer = true
	}
	if param.Pointer && param.Space == SpacePrivate {
		return nil, p.errf(nameTok, "pointer parameter %q of kernel %q needs an address space qualifier (__global, __local or __constant)", param.Name, kernelName)
	}
	if !param.Pointer && param.Space != SpacePrivate {
		return nil, p.errf(nameTok, "non-pointer parameter %q of kernel %q cannot have address space %s", param.Name, kernelName, param.Space)
	}
	if param.Type == "void" && !param.Pointer {
		return nil, p.errf(nameTok, "parameter %q of kernel %q cannot have type void", param.Name, kernelName)
	}
	return param, nil
}

// ScalarSize reports the byte size of an OpenCL scalar/vector type name, or
// 0 for unknown types. Pointers are handles on the wire and have no
// host-visible size here.
func ScalarSize(typeName string) int {
	base := typeName
	lanes := 1
	for _, suffix := range [...]string{"16", "8", "4", "3", "2"} {
		if b, ok := strings.CutSuffix(typeName, suffix); ok && IsTypeName(typeName) && b != "" && !strings.ContainsAny(suffix, b) {
			if IsTypeName(b) {
				base = b
				switch suffix {
				case "2":
					lanes = 2
				case "3":
					lanes = 4 // OpenCL: 3-vectors occupy 4 lanes
				case "4":
					lanes = 4
				case "8":
					lanes = 8
				case "16":
					lanes = 16
				}
				break
			}
		}
	}
	var sz int
	switch base {
	case "bool", "char", "uchar", "int8_t", "uint8_t":
		sz = 1
	case "short", "ushort", "half":
		sz = 2
	case "int", "uint", "float", "int32_t", "uint32_t":
		sz = 4
	case "long", "ulong", "double", "size_t", "int64_t", "uint64_t":
		sz = 8
	default:
		return 0
	}
	return sz * lanes
}
