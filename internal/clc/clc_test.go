package clc

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize(`__kernel void f(int a) { a += 1.5e-3f; }`)
	if err != nil {
		t.Fatal(err)
	}
	var idents, numbers, puncts int
	for _, tok := range toks {
		switch tok.Kind {
		case TokIdent:
			idents++
		case TokNumber:
			numbers++
		case TokPunct:
			puncts++
		}
	}
	if idents != 6 || numbers != 1 {
		t.Fatalf("idents=%d numbers=%d", idents, numbers)
	}
	if puncts == 0 {
		t.Fatal("no punctuation")
	}
}

func TestTokenizeCommentsAndDirectives(t *testing.T) {
	src := `
// line comment with __kernel inside
#define FOO 1
#pragma OPENCL EXTENSION cl_khr_fp64 : enable
/* block
   comment */
__kernel void real_kernel(__global float* x) { }
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Kernels) != 1 || prog.Kernels[0].Name != "real_kernel" {
		t.Fatalf("kernels = %v", prog.KernelNames())
	}
}

func TestTokenizeStringAndChar(t *testing.T) {
	toks, err := Tokenize(`"a \"quoted\" string" 'c' '\n'`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[1].Kind != TokChar || toks[2].Kind != TokChar {
		t.Fatalf("kinds: %v %v %v", toks[0].Kind, toks[1].Kind, toks[2].Kind)
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, src := range []string{
		"/* unterminated",
		`"unterminated`,
		`'x`,
	} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) succeeded", src)
		}
	}
}

func TestParseFullSignature(t *testing.T) {
	src := `
__kernel void stencil(__global const float* restrict in,
                      __global float* out,
                      __local float* tile,
                      __constant float* coeffs,
                      const int n,
                      unsigned int stride,
                      float4 scale) {
    int i = get_global_id(0);
    if (i < n) { out[i] = in[i]; }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k, ok := prog.Kernel("stencil")
	if !ok {
		t.Fatal("kernel not found")
	}
	want := []struct {
		name  string
		typ   string
		space AddressSpace
		ptr   bool
		cnst  bool
	}{
		{"in", "float", SpaceGlobal, true, true},
		{"out", "float", SpaceGlobal, true, false},
		{"tile", "float", SpaceLocal, true, false},
		{"coeffs", "float", SpaceConstant, true, false},
		{"n", "int", SpacePrivate, false, true},
		{"stride", "uint", SpacePrivate, false, false},
		{"scale", "float4", SpacePrivate, false, false},
	}
	if len(k.Params) != len(want) {
		t.Fatalf("%d params, want %d: %v", len(k.Params), len(want), k.Params)
	}
	for i, w := range want {
		p := k.Params[i]
		if p.Name != w.name || p.Type != w.typ || p.Space != w.space ||
			p.Pointer != w.ptr || p.Const != w.cnst {
			t.Errorf("param %d = %+v, want %+v", i, p, w)
		}
	}
}

func TestParseMultipleKernelsAndHelpers(t *testing.T) {
	src := `
float helper(float x) { return x * 2.0f; }

typedef struct { int a; } thing;

__kernel void first(__global float* x) { x[0] = helper(x[0]); }

int another_helper(int v) { if (v > 0) { return v; } return -v; }

kernel void second(global int* y, const int n) {
    for (int i = 0; i < n; i++) { y[i] = another_helper(y[i]); }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	names := prog.KernelNames()
	if len(names) != 2 || names[0] != "first" || names[1] != "second" {
		t.Fatalf("kernels = %v", names)
	}
}

func TestParseAttributes(t *testing.T) {
	src := `
__kernel __attribute__((reqd_work_group_size(64, 1, 1)))
void tuned(__global float* x) { x[get_global_id(0)] *= 2.0f; }
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.Kernels[0]
	if len(k.ReqdWorkGroupSize) != 3 || k.ReqdWorkGroupSize[0] != 64 {
		t.Fatalf("reqd_work_group_size = %v", k.ReqdWorkGroupSize)
	}
}

func TestParseEmptyParamLists(t *testing.T) {
	for _, src := range []string{
		`__kernel void nop() { }`,
		`__kernel void nop(void) { }`,
	} {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if len(prog.Kernels[0].Params) != 0 {
			t.Fatalf("params = %v", prog.Kernels[0].Params)
		}
	}
}

func TestParseArraySuffix(t *testing.T) {
	prog, err := Parse(`__kernel void k(__global float x[]) { }`)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Kernels[0].Params[0].Pointer {
		t.Fatal("array parameter not treated as pointer")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no kernels":          `float helper(float x) { return x; }`,
		"non-void return":     `__kernel int bad(__global int* x) { return 0; }`,
		"missing brace":       `__kernel void bad(__global int* x) { if (1) {`,
		"pointer no space":    `__kernel void bad(float* x) { }`,
		"space on scalar":     `__kernel void bad(__global float x) { }`,
		"void param":          `__kernel void bad(void x) { }`,
		"duplicate kernel":    `__kernel void dup(__global int* x) { } __kernel void dup(__global int* y) { }`,
		"missing param name":  `__kernel void bad(__global float*) { }`,
		"type as kernel name": `__kernel void float(__global int* x) { }`,
		"unclosed params":     `__kernel void bad(__global int* x { }`,
	}
	for label, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse succeeded", label)
		} else {
			var be *BuildError
			if !asBuildError(err, &be) {
				t.Errorf("%s: error %T is not *BuildError", label, err)
			} else if be.Line == 0 {
				t.Errorf("%s: diagnostic missing line info: %v", label, be)
			}
		}
	}
}

func asBuildError(err error, out **BuildError) bool {
	be, ok := err.(*BuildError)
	if ok {
		*out = be
	}
	return ok
}

func TestIsTypeName(t *testing.T) {
	for _, yes := range []string{"float", "int", "uchar", "float4", "double16", "half2", "size_t", "void"} {
		if !IsTypeName(yes) {
			t.Errorf("IsTypeName(%q) = false", yes)
		}
	}
	for _, no := range []string{"float5", "foo", "Kernel", "int128", ""} {
		if IsTypeName(no) {
			t.Errorf("IsTypeName(%q) = true", no)
		}
	}
}

func TestScalarSize(t *testing.T) {
	cases := map[string]int{
		"char": 1, "uchar": 1, "short": 2, "half": 2,
		"int": 4, "uint": 4, "float": 4,
		"long": 8, "ulong": 8, "double": 8, "size_t": 8,
		"float2": 8, "float3": 16, "float4": 16, "int8": 32, "double16": 128,
		"unknown": 0,
	}
	for typ, want := range cases {
		if got := ScalarSize(typ); got != want {
			t.Errorf("ScalarSize(%q) = %d, want %d", typ, got, want)
		}
	}
}

// TestParserNeverPanics feeds mutated kernel source to the parser; any
// input may be rejected but none may panic.
func TestParserNeverPanics(t *testing.T) {
	base := `__kernel void k(__global const float* x, const int n) { x[0] = n; }`
	check := func(pos uint16, repl byte) bool {
		src := []byte(base)
		src[int(pos)%len(src)] = repl
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", src, r)
			}
		}()
		_, _ = Parse(string(src))
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParamString(t *testing.T) {
	p := Param{Name: "x", Type: "float", Space: SpaceGlobal, Pointer: true, Const: true}
	s := p.String()
	for _, want := range []string{"global", "const", "float*", "x"} {
		if !strings.Contains(s, want) {
			t.Errorf("Param.String() = %q missing %q", s, want)
		}
	}
	if SpaceGlobal.String() != "global" || SpacePrivate.String() != "private" {
		t.Fatal("space names wrong")
	}
}

// TestGenerativeSignatureRoundTrip builds random-but-valid kernel
// signatures, renders them to OpenCL C, and checks the parser recovers
// exactly the generated structure.
func TestGenerativeSignatureRoundTrip(t *testing.T) {
	types := []string{"float", "int", "uint", "double", "float4", "uchar"}
	spaces := []struct {
		kw    string
		space AddressSpace
	}{
		{"__global", SpaceGlobal},
		{"global", SpaceGlobal},
		{"__local", SpaceLocal},
		{"__constant", SpaceConstant},
	}
	check := func(seed uint32, nParamsRaw uint8) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*1664525 + 1013904223
			return int(rng>>16) % n
		}
		nParams := int(nParamsRaw%6) + 1
		var sb strings.Builder
		sb.WriteString("__kernel void generated(")
		type want struct {
			typ     string
			space   AddressSpace
			pointer bool
			cnst    bool
		}
		wants := make([]want, nParams)
		for i := 0; i < nParams; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			typ := types[next(len(types))]
			pointer := next(2) == 0
			cnst := next(2) == 0
			w := want{typ: typ, pointer: pointer, cnst: cnst, space: SpacePrivate}
			if pointer {
				sp := spaces[next(len(spaces))]
				w.space = sp.space
				sb.WriteString(sp.kw)
				sb.WriteByte(' ')
			}
			if cnst {
				sb.WriteString("const ")
			}
			sb.WriteString(typ)
			if pointer {
				sb.WriteByte('*')
			}
			fmt.Fprintf(&sb, " p%d", i)
			wants[i] = w
		}
		sb.WriteString(") { }")
		prog, err := Parse(sb.String())
		if err != nil {
			t.Logf("source: %s", sb.String())
			t.Logf("parse error: %v", err)
			return false
		}
		k := prog.Kernels[0]
		if k.Name != "generated" || len(k.Params) != nParams {
			return false
		}
		for i, w := range wants {
			p := k.Params[i]
			if p.Type != w.typ || p.Space != w.space || p.Pointer != w.pointer || p.Const != w.cnst {
				t.Logf("source: %s", sb.String())
				t.Logf("param %d = %+v, want %+v", i, p, w)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
