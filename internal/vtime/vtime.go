// Package vtime provides the virtual-time primitives used by the simulated
// devices and the network model.
//
// Every experiment in this repository reports durations measured on a
// virtual clock rather than the wall clock: functional execution is real Go
// code, but the time a command "takes" is computed by an analytic
// performance model (see internal/sim). This makes every figure
// deterministic and independent of the machine running the reproduction.
//
// haoclvet:deterministic — wall-clock reads and unordered iteration are
// forbidden here by construction.
package vtime

import (
	"fmt"
	"sync"
	"time"
)

// Time is an instant on the virtual timeline, in nanoseconds since the
// start of the run. The zero Time is the beginning of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is layout-compatible
// with time.Duration so model code can use time.Duration literals.
type Duration = time.Duration

// Add returns t shifted forward by d. Negative durations are clamped so a
// model bug can never move the clock backwards past zero.
func (t Time) Add(d Duration) Time {
	nt := t + Time(d)
	if nt < 0 {
		return 0
	}
	return nt
}

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the instant as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Max returns the later of the two instants.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Clock is a monotonically advancing virtual clock. One Clock models one
// serialized resource: a device command queue, a network link, the host
// memory subsystem. Reserving a span returns the interval the work occupies
// on that resource.
//
// The zero value is a clock at virtual time zero, ready to use.
type Clock struct {
	mu  sync.Mutex
	now Time
}

// Now returns the clock's current frontier: the virtual instant at which the
// resource next becomes free.
func (c *Clock) Now() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Reserve books d units of work that may not start before earliest. It
// returns the interval [start, end) that the work occupies and advances the
// clock frontier to end. Negative durations count as zero.
func (c *Clock) Reserve(earliest Time, d Duration) (start, end Time) {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	start = Max(c.now, earliest)
	end = start.Add(d)
	c.now = end
	return start, end
}

// AdvanceTo moves the frontier forward to at least t. Used when an external
// dependency (an event on another resource) holds the resource idle.
func (c *Clock) AdvanceTo(t Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero. Only tests and fresh experiment runs use
// this.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
}

// Link models a serialized communication or memory channel with fixed
// per-message latency and finite bandwidth. It is used for the Gigabit
// Ethernet links between the host and device nodes and for the host memory
// subsystem during data creation.
//
// Unlike Clock, a Link backfills: a transfer that becomes ready at a late
// virtual instant does not push the channel frontier for earlier idle
// time, so independent command streams interleave on the shared channel
// the way packets do on a real NIC. Booked intervals are kept in a sorted
// list and coalesced.
type Link struct {
	// Latency is charged once per transfer, before any byte moves.
	Latency Duration
	// BytesPerSec is the sustained bandwidth of the channel.
	BytesPerSec float64

	mu   sync.Mutex
	busy []interval // sorted by start, non-overlapping
}

type interval struct {
	start, end Time
}

// NewLink returns a link with the given per-message latency and bandwidth.
// It panics if bandwidth is not positive; links are constructed from static
// model presets, so a bad value is a programming error.
func NewLink(latency Duration, bytesPerSec float64) *Link {
	if bytesPerSec <= 0 {
		panic("vtime: link bandwidth must be positive")
	}
	return &Link{Latency: latency, BytesPerSec: bytesPerSec}
}

// TransferCost returns the modeled duration of moving n bytes, excluding
// queueing behind other transfers.
func (l *Link) TransferCost(n int64) Duration {
	if n < 0 {
		n = 0
	}
	secs := float64(n) / l.BytesPerSec
	return l.Latency + Duration(secs*1e9)
}

// Transfer books an n-byte transfer that may not begin before earliest,
// placing it in the first idle gap that fits, and returns the interval it
// occupies on the link.
func (l *Link) Transfer(earliest Time, n int64) (start, end Time) {
	dur := l.TransferCost(n)
	if dur <= 0 {
		return earliest, earliest
	}
	l.mu.Lock()
	defer l.mu.Unlock()

	start = earliest
	insertAt := len(l.busy)
	for i, iv := range l.busy {
		if iv.start.Sub(start) >= dur {
			// The gap before this interval fits.
			insertAt = i
			break
		}
		if iv.end > start {
			start = iv.end
		}
	}
	end = start.Add(dur)
	l.busy = append(l.busy, interval{})
	copy(l.busy[insertAt+1:], l.busy[insertAt:])
	l.busy[insertAt] = interval{start: start, end: end}
	l.coalesce()
	return start, end
}

// coalesce merges touching intervals to keep the busy list short. Caller
// holds l.mu.
func (l *Link) coalesce() {
	out := l.busy[:0]
	for _, iv := range l.busy {
		if n := len(out); n > 0 && iv.start <= out[n-1].end {
			if iv.end > out[n-1].end {
				out[n-1].end = iv.end
			}
			continue
		}
		out = append(out, iv)
	}
	l.busy = out
}

// Now reports the link's latest booked instant.
func (l *Link) Now() Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.busy) == 0 {
		return 0
	}
	return l.busy[len(l.busy)-1].end
}

// Reset clears all bookings.
func (l *Link) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.busy = nil
}
