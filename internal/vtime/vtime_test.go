package vtime

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	tm := Time(0)
	tm = tm.Add(3 * time.Second)
	if tm.Seconds() != 3 {
		t.Fatalf("Seconds() = %v, want 3", tm.Seconds())
	}
	if got := tm.Sub(Time(1e9)); got != 2*time.Second {
		t.Fatalf("Sub = %v, want 2s", got)
	}
	if got := Time(5).Add(-100 * time.Second); got != 0 {
		t.Fatalf("negative clamp: got %v, want 0", got)
	}
	if Max(Time(3), Time(7)) != Time(7) || Max(Time(7), Time(3)) != Time(7) {
		t.Fatal("Max broken")
	}
	if Time(1500).String() == "" {
		t.Fatal("String empty")
	}
}

func TestClockReserve(t *testing.T) {
	var c Clock
	s1, e1 := c.Reserve(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first reserve [%d,%d), want [0,10)", s1, e1)
	}
	// Earlier request still serializes behind the frontier.
	s2, e2 := c.Reserve(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("second reserve [%d,%d), want [10,20)", s2, e2)
	}
	// Later earliest leaves a gap.
	s3, e3 := c.Reserve(100, 10)
	if s3 != 100 || e3 != 110 {
		t.Fatalf("third reserve [%d,%d), want [100,110)", s3, e3)
	}
	if c.Now() != 110 {
		t.Fatalf("Now = %v, want 110", c.Now())
	}
	// Negative durations count as zero.
	s4, e4 := c.Reserve(0, -5)
	if s4 != e4 {
		t.Fatalf("negative duration reserved nonzero span [%d,%d)", s4, e4)
	}
	c.AdvanceTo(500)
	if c.Now() != 500 {
		t.Fatalf("AdvanceTo: Now = %v", c.Now())
	}
	c.AdvanceTo(100) // backwards is a no-op
	if c.Now() != 500 {
		t.Fatalf("AdvanceTo went backwards: %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not rewind")
	}
}

// TestClockMonotonic checks under concurrency that reservations never
// overlap and the clock never moves backwards.
func TestClockMonotonic(t *testing.T) {
	var c Clock
	var mu sync.Mutex
	spans := make([][2]Time, 0, 400)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s, e := c.Reserve(0, 3)
				mu.Lock()
				spans = append(spans, [2]Time{s, e})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	seen := make(map[Time]bool)
	for _, sp := range spans {
		if sp[1]-sp[0] != 3 {
			t.Fatalf("span length %d", sp[1]-sp[0])
		}
		if seen[sp[0]] {
			t.Fatalf("overlapping reservation at %d", sp[0])
		}
		seen[sp[0]] = true
	}
}

func TestLinkCost(t *testing.T) {
	l := NewLink(time.Millisecond, 1e6) // 1 MB/s
	if got := l.TransferCost(1e6); got != time.Millisecond+time.Second {
		t.Fatalf("TransferCost = %v", got)
	}
	if got := l.TransferCost(-5); got != time.Millisecond {
		t.Fatalf("negative bytes: %v", got)
	}
}

func TestLinkBackfill(t *testing.T) {
	l := NewLink(0, 1e9) // 1 B/ns
	// Book a late transfer first.
	s1, e1 := l.Transfer(1000, 100)
	if s1 != 1000 || e1 != 1100 {
		t.Fatalf("late transfer [%v,%v)", s1, e1)
	}
	// An earlier-ready transfer must backfill the idle gap before it.
	s2, e2 := l.Transfer(0, 100)
	if s2 != 0 || e2 != 100 {
		t.Fatalf("backfill failed: [%v,%v), want [0,100)", s2, e2)
	}
	// A transfer too big for the gap goes after the booked interval.
	s3, _ := l.Transfer(200, 900)
	if s3 != 1100 {
		t.Fatalf("oversized gap fill started at %v, want 1100", s3)
	}
	// Exact-fit gap is used.
	s4, e4 := l.Transfer(100, 900)
	if s4 != 100 || e4 != 1000 {
		t.Fatalf("exact fit [%v,%v), want [100,1000)", s4, e4)
	}
}

func TestLinkPanicsOnBadBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLink accepted non-positive bandwidth")
		}
	}()
	NewLink(0, 0)
}

// TestLinkNoOverlapProperty books random transfers and asserts none of the
// returned intervals overlap.
func TestLinkNoOverlapProperty(t *testing.T) {
	check := func(seed uint8, sizes []uint16) bool {
		l := NewLink(0, 1e9)
		type span struct{ s, e Time }
		var spans []span
		for i, raw := range sizes {
			n := int64(raw%997) + 1
			earliest := Time((int(seed) + i*131) % 5000)
			s, e := l.Transfer(earliest, n)
			if s < earliest || e.Sub(s) != l.TransferCost(n) {
				return false
			}
			spans = append(spans, span{s, e})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.s < b.e && b.s < a.e {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkCoalesceKeepsBusyListSmall(t *testing.T) {
	l := NewLink(0, 1e9)
	for i := 0; i < 1000; i++ {
		l.Transfer(0, 10) // contiguous back-to-back bookings
	}
	l.mu.Lock()
	n := len(l.busy)
	l.mu.Unlock()
	if n != 1 {
		t.Fatalf("busy list has %d intervals after contiguous bookings, want 1", n)
	}
	if l.Now() != Time(10*1000) {
		t.Fatalf("Now = %v", l.Now())
	}
	l.Reset()
	if l.Now() != 0 {
		t.Fatal("Reset did not clear bookings")
	}
}
