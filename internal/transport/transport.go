// Package transport implements HaoCL's communication backbone: an
// asynchronous, length-framed message layer over which the host runtime
// talks to the Node Management Processes.
//
// The design follows paper §III-C. Each node runs an acceptor that listens
// asynchronously; every incoming message is unpacked and handled on its own
// goroutine, after which the listener keeps reading — the Go equivalent of
// the Boost.Asio acceptor/thread-per-message structure the paper describes.
// The host side issues synchronous calls (it "waits for the response
// message and then takes the next action"), but multiple outstanding calls
// from different host goroutines are multiplexed over one connection via
// request-ID correlation.
//
// Two transports are provided: real TCP (used by cmd/haocl-node and the
// integration tests) and an in-process pipe network (used by unit tests and
// the experiment harness, where spawning dozens of OS processes would only
// add noise).
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"github.com/haocl-project/haocl/internal/protocol"
)

// Handler processes one decoded request on the server (node) side and
// returns the response message. Returning an error sends an ErrorResp to
// the caller; the connection stays usable.
type Handler interface {
	HandleCall(op protocol.Op, body []byte) (protocol.Message, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(op protocol.Op, body []byte) (protocol.Message, error)

// HandleCall implements Handler.
func (f HandlerFunc) HandleCall(op protocol.Op, body []byte) (protocol.Message, error) {
	return f(op, body)
}

// ErrClosed is returned by calls issued on a closed client.
var ErrClosed = errors.New("transport: connection closed")

// Client is the host side of one host↔node connection.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]chan *protocol.Frame
	closed  bool
	readErr error

	nextID atomic.Uint64
}

// Dial connects to a node's message listener over TCP.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial node %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (TCP or in-memory pipe) as a
// client and starts its response reader.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan *protocol.Frame),
	}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	for {
		f, err := protocol.ReadFrame(c.conn)
		if err != nil {
			c.failAll(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.ReqID]
		if ok {
			delete(c.pending, f.ReqID)
		}
		c.mu.Unlock()
		if ok {
			ch <- f
		}
		// Responses with no waiter are dropped: the caller timed out or
		// the connection is shutting down.
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr == nil {
		c.readErr = err
	}
	c.closed = true
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
}

// Call sends req and blocks until the matching response arrives, decoding
// it into resp. A remote failure surfaces as a *protocol.RemoteError.
// resp may be nil when the caller only needs the acknowledgement.
func (c *Client) Call(req protocol.Message, resp protocol.Message) error {
	id := c.nextID.Add(1)
	ch := make(chan *protocol.Frame, 1)

	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	frame := &protocol.Frame{
		Kind:  protocol.FrameRequest,
		ReqID: id,
		Op:    req.Op(),
		Body:  protocol.EncodeMessage(req),
	}
	c.writeMu.Lock()
	err := protocol.WriteFrame(c.conn, frame)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("send %s: %w", req.Op(), err)
	}

	f, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return fmt.Errorf("call %s: %w", req.Op(), err)
	}
	if f.Op == protocol.OpError {
		var er protocol.ErrorResp
		if derr := protocol.DecodeMessage(&er, f.Body); derr != nil {
			return derr
		}
		return &protocol.RemoteError{Op: req.Op(), Code: er.Code, Message: er.Message}
	}
	if resp == nil {
		return nil
	}
	return protocol.DecodeMessage(resp, f.Body)
}

// Close tears the connection down; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	c.failAll(ErrClosed)
	return c.conn.Close()
}

// Server is the node side of the backbone: an acceptor plus one reader per
// connection, with each request handled on its own goroutine.
//
// Each accepted connection gets its own Handler from the factory, so the
// NMP can maintain per-session state (user identity, owned objects). A
// handler that also implements io.Closer is closed when its connection
// ends, giving the session a hook to release abandoned resources.
type Server struct {
	factory func() Handler

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// NewServer returns a server creating one handler per connection.
func NewServer(factory func() Handler) *Server {
	return &Server{
		factory: factory,
		conns:   make(map[net.Conn]struct{}),
	}
}

// NewStaticServer returns a server dispatching every connection to the same
// handler, for tests and single-session tools.
func NewStaticServer(h Handler) *Server {
	return NewServer(func() Handler { return h })
}

// Listen starts accepting on a TCP address and returns the bound address
// (useful with ":0" for tests). Serving happens on background goroutines.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.ServeConn(conn)
	}
}

// ServeConn registers conn and serves requests from it on background
// goroutines. The in-memory network uses this directly with pipe ends.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()

	handler := s.factory()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
			if closer, ok := handler.(interface{ Close() error }); ok {
				// Session cleanup failures have no caller to report to.
				_ = closer.Close()
			}
		}()
		var writeMu sync.Mutex
		var reqWG sync.WaitGroup
		for {
			f, err := protocol.ReadFrame(conn)
			if err != nil {
				break
			}
			reqWG.Add(1)
			go func(f *protocol.Frame) {
				defer reqWG.Done()
				s.dispatch(conn, handler, &writeMu, f)
			}(f)
		}
		reqWG.Wait()
	}()
}

func (s *Server) dispatch(conn net.Conn, handler Handler, writeMu *sync.Mutex, f *protocol.Frame) {
	resp, err := handler.HandleCall(f.Op, f.Body)
	out := &protocol.Frame{Kind: protocol.FrameResponse, ReqID: f.ReqID, Op: f.Op}
	if err != nil {
		out.Op = protocol.OpError
		var re *protocol.RemoteError
		code := uint32(1)
		if errors.As(err, &re) {
			code = re.Code
		}
		out.Body = protocol.EncodeMessage(&protocol.ErrorResp{Code: code, Message: err.Error()})
	} else if resp != nil {
		out.Body = protocol.EncodeMessage(resp)
	}
	writeMu.Lock()
	defer writeMu.Unlock()
	// A write failure means the peer vanished; the read loop notices and
	// cleans the connection up, so the error needs no second handling.
	_ = protocol.WriteFrame(conn, out)
}

// Close stops accepting, closes every connection and waits for in-flight
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}
