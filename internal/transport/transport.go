// Package transport implements HaoCL's communication backbone: an
// asynchronous, length-framed message layer over which the host runtime
// talks to the Node Management Processes.
//
// The design follows paper §III-C. Each node runs an acceptor that listens
// asynchronously; every accepted connection gets a reader goroutine plus a
// dispatch worker — the Go equivalent of the Boost.Asio acceptor structure
// the paper describes. Requests from one connection are executed in arrival
// order (FIFO): the host runtime pipelines commands without waiting for
// their responses, and in-order execution is what lets a later command
// reference the host-assigned event ID of an earlier one that has not
// produced a response yet.
//
// The host side issues calls through Go, which ships the request and
// returns a Pending future; Call is Go followed by Wait. Any number of
// outstanding futures from any number of host goroutines are multiplexed
// over one connection via request-ID correlation, and a connection failure
// is sticky: every in-flight and subsequent future resolves to the same
// error.
//
// Two transports are provided: real TCP (used by cmd/haocl-node and the
// integration tests) and an in-process pipe network (used by unit tests and
// the experiment harness, where spawning dozens of OS processes would only
// add noise).
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"github.com/haocl-project/haocl/internal/protocol"
)

// Handler processes one decoded request on the server (node) side and
// returns the response message. Returning an error sends an ErrorResp to
// the caller; the connection stays usable.
type Handler interface {
	HandleCall(op protocol.Op, body []byte) (protocol.Message, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(op protocol.Op, body []byte) (protocol.Message, error)

// HandleCall implements Handler.
func (f HandlerFunc) HandleCall(op protocol.Op, body []byte) (protocol.Message, error) {
	return f(op, body)
}

// ErrClosed is returned by calls issued on a closed client.
var ErrClosed = errors.New("transport: connection closed")

// Client is the host side of one host↔node connection.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]chan *protocol.Frame
	closed  bool
	readErr error

	nextID atomic.Uint64
}

// Dial connects to a node's message listener over TCP.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial node %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (TCP or in-memory pipe) as a
// client and starts its response reader.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan *protocol.Frame),
	}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	for {
		f, err := protocol.ReadFrame(c.conn)
		if err != nil {
			c.failAll(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.ReqID]
		if ok {
			delete(c.pending, f.ReqID)
		}
		c.mu.Unlock()
		if ok {
			ch <- f
		}
		// Responses with no waiter are dropped: the caller timed out or
		// the connection is shutting down.
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr == nil {
		c.readErr = err
	}
	c.closed = true
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
}

// Pending is one in-flight call: a future that resolves when the matching
// response frame arrives, when the request could not be sent, or when the
// connection dies (all in-flight futures then fail with the same sticky
// connection error). Wait is safe to call from any goroutine, any number
// of times; the first call blocks and every call returns the same result.
type Pending struct {
	c    *Client
	op   protocol.Op
	resp protocol.Message
	ch   chan *protocol.Frame

	once sync.Once
	err  error
}

// Go sends req without waiting for the response and returns the call's
// future. When the response arrives, Wait decodes it into resp (which may
// be nil when the caller only needs the acknowledgement). Frames from
// concurrent Go calls are written whole, but callers needing a defined
// wire order across several Go calls must serialize the calls themselves.
func (c *Client) Go(req protocol.Message, resp protocol.Message) *Pending {
	p := &Pending{c: c, op: req.Op(), resp: resp, ch: make(chan *protocol.Frame, 1)}
	id := c.nextID.Add(1)

	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		p.settle(err)
		return p
	}
	c.pending[id] = p.ch
	c.mu.Unlock()

	frame := &protocol.Frame{
		Kind:  protocol.FrameRequest,
		ReqID: id,
		Op:    req.Op(),
		Body:  protocol.EncodeMessage(req),
	}
	c.writeMu.Lock()
	err := protocol.WriteFrame(c.conn, frame)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		p.settle(fmt.Errorf("send %s: %w", req.Op(), err))
	}
	return p
}

// settle resolves the future before Wait ever ran (send-side failures).
func (p *Pending) settle(err error) {
	p.once.Do(func() { p.err = err })
}

// Wait blocks until the call completes and returns its error, decoding the
// response into the resp passed to Go. A remote failure surfaces as a
// *protocol.RemoteError; a dead connection as its sticky error.
func (p *Pending) Wait() error {
	p.once.Do(func() {
		f, ok := <-p.ch
		if !ok {
			p.c.mu.Lock()
			err := p.c.readErr
			p.c.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			p.err = fmt.Errorf("call %s: %w", p.op, err)
			return
		}
		if f.Op == protocol.OpError {
			var er protocol.ErrorResp
			if derr := protocol.DecodeMessage(&er, f.Body); derr != nil {
				p.err = derr
				return
			}
			p.err = &protocol.RemoteError{Op: p.op, Code: er.Code, Message: er.Message}
			return
		}
		if p.resp != nil {
			p.err = protocol.DecodeMessage(p.resp, f.Body)
		}
	})
	return p.err
}

// Call sends req and blocks until the matching response arrives, decoding
// it into resp: Go followed by Wait.
func (c *Client) Call(req protocol.Message, resp protocol.Message) error {
	return c.Go(req, resp).Wait()
}

// Close tears the connection down; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	c.failAll(ErrClosed)
	return c.conn.Close()
}

// Server is the node side of the backbone: an acceptor plus, per
// connection, a reader goroutine and a dispatch worker that executes the
// connection's requests strictly in arrival order.
//
// FIFO execution per connection is a protocol guarantee, not an
// implementation detail: the host pipelines enqueue commands without
// waiting for responses, naming each command's event with a host-assigned
// ID, and a later command's wait list may reference an earlier command
// whose response has not been produced yet. In-order execution makes that
// reference valid by construction. Different connections execute
// concurrently.
//
// The single lane trades away cross-queue execution concurrency within
// one connection (it only matters for multi-device nodes doing heavy
// functional work); per-queue dispatch lanes with in-order event
// registration are the known refinement — see ROADMAP.md.
//
// Each accepted connection gets its own Handler from the factory, so the
// NMP can maintain per-session state (user identity, owned objects). A
// handler that also implements io.Closer is closed when its connection
// ends, giving the session a hook to release abandoned resources.
type Server struct {
	factory func() Handler

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// NewServer returns a server creating one handler per connection.
func NewServer(factory func() Handler) *Server {
	return &Server{
		factory: factory,
		conns:   make(map[net.Conn]struct{}),
	}
}

// NewStaticServer returns a server dispatching every connection to the same
// handler, for tests and single-session tools.
func NewStaticServer(h Handler) *Server {
	return NewServer(func() Handler { return h })
}

// Listen starts accepting on a TCP address and returns the bound address
// (useful with ":0" for tests). Serving happens on background goroutines.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.ServeConn(conn)
	}
}

// ServeConn registers conn and serves requests from it on background
// goroutines. The in-memory network uses this directly with pipe ends.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()

	handler := s.factory()
	// The reader keeps draining the socket while the worker executes, so a
	// pipelining host can stream frames into the job queue without waiting
	// for earlier commands to finish.
	jobs := make(chan *protocol.Frame, 128)
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		defer close(jobs)
		for {
			f, err := protocol.ReadFrame(conn)
			if err != nil {
				return
			}
			jobs <- f
		}
	}()
	go func() {
		defer s.wg.Done()
		defer func() {
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
			if closer, ok := handler.(interface{ Close() error }); ok {
				// Session cleanup failures have no caller to report to.
				_ = closer.Close()
			}
		}()
		for f := range jobs {
			s.dispatch(conn, handler, f)
		}
	}()
}

func (s *Server) dispatch(conn net.Conn, handler Handler, f *protocol.Frame) {
	resp, err := handler.HandleCall(f.Op, f.Body)
	out := &protocol.Frame{Kind: protocol.FrameResponse, ReqID: f.ReqID, Op: f.Op}
	if err != nil {
		out.Op = protocol.OpError
		var re *protocol.RemoteError
		code := uint32(1)
		if errors.As(err, &re) {
			code = re.Code
		}
		out.Body = protocol.EncodeMessage(&protocol.ErrorResp{Code: code, Message: err.Error()})
	} else if resp != nil {
		out.Body = protocol.EncodeMessage(resp)
	}
	// A write failure means the peer vanished; the read loop notices and
	// cleans the connection up, so the error needs no second handling.
	_ = protocol.WriteFrame(conn, out)
}

// Close stops accepting, closes every connection and waits for in-flight
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}
