// Package transport implements HaoCL's communication backbone: an
// asynchronous, length-framed message layer over which the host runtime
// talks to the Node Management Processes.
//
// The design follows paper §III-C. Each node runs an acceptor that listens
// asynchronously; every accepted connection gets a reader goroutine plus a
// dispatch worker — the Go equivalent of the Boost.Asio acceptor structure
// the paper describes. Requests from one connection are *dispatched* in
// arrival order: the host runtime pipelines commands without waiting for
// their responses, and in-order dispatch is what lets a later command
// reference the host-assigned event ID of an earlier one that has not
// produced a response yet. Whether execution is also serial is the
// handler's choice — an AsyncHandler (the node's session, with its
// per-queue dispatch lanes) completes requests out of order and the reply
// path reassembles per-envelope response batches; a plain Handler keeps
// the strict FIFO of the pre-lane runtime.
//
// The host side issues calls through Go, which ships the request and
// returns a Pending future; Call is Go followed by Wait. Any number of
// outstanding futures from any number of host goroutines are multiplexed
// over one connection via request-ID correlation, and a connection failure
// is sticky: every in-flight and subsequent future resolves to the same
// error.
//
// Once the Hello handshake negotiates wire v3, the client's write side
// coalesces: requests queue to a writer goroutine that drains whatever has
// accumulated, packs runs of small frames into Batch envelopes, and ships
// them with one write — flushing whenever the queue drains, so an idle
// connection never waits on a timer. The server unpacks envelopes into the
// same per-connection FIFO dispatch (preserving the pipeline's ordering
// invariant) and coalesces the responses of each envelope symmetrically.
// Against a v2 peer the write path is byte-identical to the pre-batching
// runtime: one frame, one write.
//
// Two transports are provided: real TCP (used by cmd/haocl-node and the
// integration tests) and an in-process pipe network (used by unit tests and
// the experiment harness, where spawning dozens of OS processes would only
// add noise).
package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"github.com/haocl-project/haocl/internal/protocol"
)

// Handler processes one decoded request on the server (node) side and
// returns the response message. Returning an error sends an ErrorResp to
// the caller; the connection stays usable.
type Handler interface {
	HandleCall(op protocol.Op, body []byte) (protocol.Message, error)
}

// AsyncHandler is a Handler that may complete calls out of order. The
// server invokes HandleCallAsync from the connection's dispatch goroutine
// strictly in arrival order — that call is the handler's registration
// stage — and the handler routes the request to whatever internal
// execution lane it belongs to. done must be invoked exactly once per
// call, from any goroutine, with the response (or error) to ship. A plain
// request's response is written the moment it completes, never behind
// another lane's execution; requests that arrived inside one Batch
// envelope keep the symmetric response-envelope contract, so their
// responses are held and shipped together when the whole envelope has
// completed — a deliberate batching tradeoff that couples envelope-mates'
// latency (DESIGN.md §4).
//
// Handlers that need the old strictly-serial behavior simply implement
// Handler alone; the server then executes calls inline, in arrival order.
type AsyncHandler interface {
	Handler
	HandleCallAsync(op protocol.Op, body []byte, done func(protocol.Message, error))
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(op protocol.Op, body []byte) (protocol.Message, error)

// HandleCall implements Handler.
func (f HandlerFunc) HandleCall(op protocol.Op, body []byte) (protocol.Message, error) {
	return f(op, body)
}

// ErrClosed is returned by calls issued on a closed client.
var ErrClosed = errors.New("transport: connection closed")

// Client is the host side of one host↔node connection.
type Client struct {
	conn net.Conn

	// writeMu serializes direct frame writes (pre-negotiation v2 path)
	// and guards the coalescer state. The writer goroutine itself writes
	// without holding it: once batching is on, every frame goes through
	// the queue, so the two write paths never overlap.
	writeMu    sync.Mutex
	writeCh    *sync.Cond        // wakes the writer when frames are queued
	spaceCh    *sync.Cond        // wakes producers when the queue drains
	queue      []*protocol.Frame // guarded by writeMu
	queueBytes int               // guarded by writeMu
	batching   bool              // guarded by writeMu
	sendDead   bool              // guarded by writeMu; write side failed or closed, queue abandoned

	mu      sync.Mutex
	pending map[uint64]chan *protocol.Frame // guarded by mu
	closed  bool                            // guarded by mu
	readErr error                           // guarded by mu
	onDown  func(error)                     // guarded by mu

	nextID atomic.Uint64
}

// Dial connects to a node's message listener over TCP.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial node %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (TCP or in-memory pipe) as a
// client and starts its response reader.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan *protocol.Frame),
	}
	c.writeCh = sync.NewCond(&c.writeMu)
	c.spaceCh = sync.NewCond(&c.writeMu)
	go c.readLoop()
	go c.writeLoop()
	return c
}

// maxQueuedBytes bounds the body bytes buffered in the coalescer queue.
// Producers block once it is reached, restoring the write backpressure the
// blocking one-frame-per-write path provided naturally — without it a host
// pipelining bulk writes over a slow link could queue without bound.
const maxQueuedBytes = 8 << 20

// EnableBatching switches the write side to the wire v3 coalescer. Call it
// once, after the Hello handshake negotiates VersionBatch and before
// further traffic; frames already being written directly and frames queued
// afterwards are serialized by writeMu, so the switch cannot reorder or
// interleave them.
func (c *Client) EnableBatching() {
	c.writeMu.Lock()
	c.batching = true
	c.writeMu.Unlock()
}

func (c *Client) readLoop() {
	for {
		f, err := protocol.ReadFrame(c.conn)
		if err != nil {
			c.failAll(err)
			return
		}
		if f.Kind == protocol.FrameBatch {
			subs, err := protocol.DecodeBatch(f)
			if err != nil {
				// A malformed envelope poisons the stream's framing.
				c.failAll(err)
				c.conn.Close()
				return
			}
			for _, sub := range subs {
				c.deliver(sub)
			}
			continue
		}
		c.deliver(f)
	}
}

// deliver hands one response frame to its waiting future. Responses with
// no waiter are dropped: the caller timed out or the connection is
// shutting down.
func (c *Client) deliver(f *protocol.Frame) {
	c.mu.Lock()
	ch, ok := c.pending[f.ReqID]
	if ok {
		delete(c.pending, f.ReqID)
	}
	c.mu.Unlock()
	if ok {
		ch <- f
	}
}

// writeLoop drains the coalescer queue: it sleeps until frames are queued,
// grabs everything that accumulated while the previous write was in
// flight, and ships the whole run in one write. Flushing is purely
// drain-driven — a lone frame on an idle connection goes out immediately;
// batches only form when the producer outpaces the writer, which is
// exactly when coalescing pays.
func (c *Client) writeLoop() {
	for {
		c.writeMu.Lock()
		for len(c.queue) == 0 && !c.sendDead {
			c.writeCh.Wait()
		}
		if c.sendDead {
			c.writeMu.Unlock()
			return
		}
		run := c.queue
		c.queue = nil
		c.queueBytes = 0
		c.spaceCh.Broadcast()
		c.writeMu.Unlock()
		if err := writeCoalesced(c.conn, run); err != nil {
			// Queued frames are pre-validated, so this is an I/O failure:
			// the connection is gone. Close it so the read side unwinds
			// and the peer's session is released.
			c.failAll(fmt.Errorf("transport: send: %w", err))
			c.conn.Close()
			return
		}
	}
}

// runCoalescer accumulates a run of small frames up to the envelope
// thresholds. Both directions of the batching path — the client's
// coalescing writer and the server's batched-response flush — share it,
// so the packing policy exists exactly once.
type runCoalescer struct {
	run      []*protocol.Frame
	runBytes int
}

// add appends one batchable frame to the run.
func (r *runCoalescer) add(f *protocol.Frame) {
	r.run = append(r.run, f)
	r.runBytes += len(f.Body)
}

// full reports whether the run must flush before taking more frames.
func (r *runCoalescer) full() bool {
	return len(r.run) >= protocol.MaxBatchMessages || r.runBytes >= protocol.MaxBatchBytes
}

// take returns the accumulated run and resets the coalescer.
func (r *runCoalescer) take() []*protocol.Frame {
	run := r.run
	r.run, r.runBytes = nil, 0
	return run
}

// appendRun appends run to buf as one wire unit: a single frame goes
// plain, several become a Batch envelope.
func appendRun(buf []byte, run []*protocol.Frame) ([]byte, error) {
	switch len(run) {
	case 0:
		return buf, nil
	case 1:
		return protocol.AppendFrame(buf, run[0])
	}
	env, err := protocol.EncodeBatch(run)
	if err != nil {
		return buf, err
	}
	return protocol.AppendFrame(buf, env)
}

// writeCoalesced writes frames in order, packing runs of small frames
// into Batch envelopes shipped with one Write each. Frames with bodies
// above BatchableBodyLimit are written plain, in place, without copying
// the body into a staging buffer (vectored I/O): bulk payloads amortize
// their own syscall, would blow up envelope sizes, and a staging copy
// would double their memory footprint.
func writeCoalesced(w io.Writer, frames []*protocol.Frame) error {
	var out []byte
	var rc runCoalescer
	flush := func() error {
		var err error
		if out, err = appendRun(out[:0], rc.take()); err != nil {
			return err
		}
		if len(out) == 0 {
			return nil
		}
		_, err = w.Write(out)
		return err
	}
	for _, f := range frames {
		if len(f.Body) > protocol.BatchableBodyLimit {
			if err := flush(); err != nil {
				return err
			}
			if err := protocol.WriteFrameTo(w, f); err != nil {
				return err
			}
			continue
		}
		rc.add(f)
		if rc.full() {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// killWrites abandons the write side; queued frames die with the
// connection (their futures fail through failAll's sticky error).
func (c *Client) killWrites() {
	c.writeMu.Lock()
	c.sendDead = true
	c.queue = nil
	c.queueBytes = 0
	c.writeCh.Broadcast()
	c.spaceCh.Broadcast()
	c.writeMu.Unlock()
}

func (c *Client) failAll(err error) {
	// The write side dies with the connection: without this, a client
	// whose peer vanished would park its writer goroutine forever unless
	// the caller remembered to Close.
	c.killWrites()
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	first := !c.closed
	c.closed = true
	pending := c.pending
	c.pending = make(map[uint64]chan *protocol.Frame)
	down := c.onDown
	sticky := c.readErr
	c.mu.Unlock()
	// Notify outside the lock — the callback typically re-enters the
	// client or kicks off recovery machinery — and strictly before the
	// pending futures unblock: a waiter that sees the sticky error must be
	// able to observe whatever state the callback established (the host
	// marks the node dead here, so command failures classify as node-loss).
	if first && down != nil {
		down(sticky)
	}
	for _, ch := range pending {
		close(ch)
	}
}

// OnDown registers a callback invoked exactly once, from the goroutine
// that detects the failure, when the connection dies (read error, send
// error, or Close). The callback receives the sticky connection error.
// Registering after the connection already died invokes the callback
// immediately.
func (c *Client) OnDown(fn func(error)) {
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		fn(err)
		return
	}
	c.onDown = fn
	c.mu.Unlock()
}

// Pending is one in-flight call: a future that resolves when the matching
// response frame arrives, when the request could not be sent, or when the
// connection dies (all in-flight futures then fail with the same sticky
// connection error). Wait is safe to call from any goroutine, any number
// of times; the first call blocks and every call returns the same result.
type Pending struct {
	c    *Client
	op   protocol.Op
	resp protocol.Message
	ch   chan *protocol.Frame

	once sync.Once
	err  error
}

// Go sends req without waiting for the response and returns the call's
// future. When the response arrives, Wait decodes it into resp (which may
// be nil when the caller only needs the acknowledgement). Frames from
// concurrent Go calls are written whole, but callers needing a defined
// wire order across several Go calls must serialize the calls themselves.
// With batching negotiated, Go returns once the frame is queued to the
// coalescing writer; the queue preserves Go-call order.
//
// haoclvet:wire
func (c *Client) Go(req protocol.Message, resp protocol.Message) *Pending {
	p := &Pending{c: c, op: req.Op(), resp: resp, ch: make(chan *protocol.Frame, 1)}
	id := c.nextID.Add(1)

	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		p.settle(err)
		return p
	}
	c.pending[id] = p.ch
	c.mu.Unlock()

	frame := &protocol.Frame{
		Kind:  protocol.FrameRequest,
		ReqID: id,
		Op:    req.Op(),
		Body:  protocol.EncodeMessage(req),
	}
	if len(frame.Body) > protocol.MaxFrameSize {
		// Reject before queueing so an unsendable frame fails only its
		// own call — on the coalescing path a late size error would be
		// connection-fatal.
		c.forget(id)
		p.settle(fmt.Errorf("send %s: %w: %d bytes", req.Op(), protocol.ErrFrameTooBig, len(frame.Body)))
		return p
	}
	c.writeMu.Lock()
	for c.batching && c.queueBytes >= maxQueuedBytes && !c.sendDead {
		c.spaceCh.Wait()
	}
	if c.sendDead {
		c.writeMu.Unlock()
		c.forget(id)
		p.settle(fmt.Errorf("send %s: %w", req.Op(), c.sticky()))
		return p
	}
	if c.batching {
		c.queue = append(c.queue, frame)
		// Count the wire size, not just the body: zero-body control
		// frames (status polls, shutdown) must still hit the cap, or a
		// producer outpacing a stalled writer queues without bound.
		c.queueBytes += protocol.FrameWireSize(frame)
		c.writeCh.Signal()
		c.writeMu.Unlock()
		return p
	}
	err := protocol.WriteFrame(c.conn, frame)
	c.writeMu.Unlock()
	if err != nil {
		c.forget(id)
		p.settle(fmt.Errorf("send %s: %w", req.Op(), err))
	}
	return p
}

// forget drops a registered pending entry after a send-side failure.
func (c *Client) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// sticky reports the connection's sticky error, defaulting to ErrClosed.
func (c *Client) sticky() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil {
		return c.readErr
	}
	return ErrClosed
}

// settle resolves the future before Wait ever ran (send-side failures).
func (p *Pending) settle(err error) {
	p.once.Do(func() { p.err = err })
}

// Wait blocks until the call completes and returns its error, decoding the
// response into the resp passed to Go. A remote failure surfaces as a
// *protocol.RemoteError; a dead connection as its sticky error. Errors are
// raw at this layer: callers in the recovery path must classify them
// (core.classifyNodeErr) before retry decisions.
//
// haoclvet:errclass-source
func (p *Pending) Wait() error {
	p.once.Do(func() {
		f, ok := <-p.ch
		if !ok {
			p.c.mu.Lock()
			err := p.c.readErr
			p.c.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			p.err = fmt.Errorf("call %s: %w", p.op, err)
			return
		}
		if f.Op == protocol.OpError {
			var er protocol.ErrorResp
			if derr := protocol.DecodeMessage(&er, f.Body); derr != nil {
				p.err = derr
				return
			}
			p.err = &protocol.RemoteError{Op: p.op, Code: er.Code, Message: er.Message}
			return
		}
		if p.resp != nil {
			p.err = protocol.DecodeMessage(p.resp, f.Body)
		}
	})
	return p.err
}

// Call sends req and blocks until the matching response arrives, decoding
// it into resp: Go followed by Wait. Like Wait, its error is raw and needs
// classification before feeding recovery decisions.
//
// haoclvet:errclass-source
// haoclvet:wire
func (c *Client) Call(req protocol.Message, resp protocol.Message) error {
	return c.Go(req, resp).Wait()
}

// Close tears the connection down; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	c.failAll(ErrClosed)
	return c.conn.Close()
}

// Server is the node side of the backbone: an acceptor plus, per
// connection, a reader goroutine and a dispatch worker that hands the
// connection's requests to its handler strictly in arrival order.
//
// In-order *dispatch* per connection is a protocol guarantee, not an
// implementation detail: the host pipelines enqueue commands without
// waiting for responses, naming each command's event with a host-assigned
// ID, and a later command's wait list may reference an earlier command
// whose response has not been produced yet. Arrival-order dispatch lets
// the handler register those IDs before anything executes, making the
// reference valid by construction. Whether *execution* is also serial is
// the handler's choice: a plain Handler runs inline in the dispatch
// goroutine (strict FIFO, the pre-lane behavior), while an AsyncHandler
// fans requests out to its own execution lanes and completes them out of
// order — the reply path reassembles per-envelope response batches from
// whatever order completions arrive in (DESIGN.md §4). Different
// connections always execute concurrently.
//
// Each accepted connection gets its own Handler from the factory, so the
// NMP can maintain per-session state (user identity, owned objects). A
// handler that also implements io.Closer is closed when its connection
// ends, giving the session a hook to release abandoned resources.
type Server struct {
	factory func() Handler

	// wireVersion caps the wire version this server accepts on its
	// connections (0 = protocol.Version). A server capped below
	// VersionBatch drops connections that send Batch envelopes, so a
	// v2-pinned node behaves like a genuine pre-batching peer instead of
	// relying on host-side self-restraint.
	wireVersion uint32

	mu     sync.Mutex
	ln     net.Listener          // guarded by mu
	conns  map[net.Conn]struct{} // guarded by mu
	closed bool                  // guarded by mu

	wg sync.WaitGroup
}

// NewServer returns a server creating one handler per connection.
func NewServer(factory func() Handler) *Server {
	return &Server{
		factory: factory,
		conns:   make(map[net.Conn]struct{}),
	}
}

// NewStaticServer returns a server dispatching every connection to the same
// handler, for tests and single-session tools.
func NewStaticServer(h Handler) *Server {
	return NewServer(func() Handler { return h })
}

// LimitWireVersion caps the wire version the server accepts (0 = current).
// Call before Listen/ServeConn.
func (s *Server) LimitWireVersion(v uint32) { s.wireVersion = v }

// acceptsBatches reports whether connections may send Batch envelopes.
func (s *Server) acceptsBatches() bool {
	return s.wireVersion == 0 || s.wireVersion >= protocol.VersionBatch
}

// Listen starts accepting on a TCP address and returns the bound address
// (useful with ":0" for tests). Serving happens on background goroutines.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.ServeConn(conn)
	}
}

// ServeConn registers conn and serves requests from it on background
// goroutines. The in-memory network uses this directly with pipe ends.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()

	handler := s.factory()
	// The reader keeps draining the socket while the handler executes, so a
	// pipelining host can stream frames into the job queue without waiting
	// for earlier commands to finish. Batch envelopes are unpacked here, in
	// envelope order, into the same queue; each envelope's sub-requests
	// share a respEnvelope so their responses can be coalesced back into
	// one response envelope no matter which order they complete in.
	jobs := make(chan serverJob, 128)
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		defer close(jobs)
		for {
			f, err := protocol.ReadFrame(conn)
			if err != nil {
				return
			}
			if f.Kind == protocol.FrameBatch {
				if !s.acceptsBatches() {
					return // batch traffic beyond the negotiated version
				}
				subs, err := protocol.DecodeBatch(f)
				if err != nil {
					return // malformed envelope: framing is poisoned
				}
				env := &respEnvelope{
					frames:    make([]*protocol.Frame, len(subs)),
					remaining: len(subs),
				}
				for i, sub := range subs {
					jobs <- serverJob{frame: sub, env: env, idx: i}
				}
				continue
			}
			jobs <- serverJob{frame: f}
		}
	}()
	go func() {
		defer s.wg.Done()
		defer func() {
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
			if closer, ok := handler.(interface{ Close() error }); ok {
				// Session cleanup failures have no caller to report to.
				_ = closer.Close()
			}
		}()
		s.dispatchLoop(conn, handler, jobs)
	}()
}

// serverJob is one request awaiting dispatch. env groups the sub-requests
// of one Batch envelope for response assembly; idx is the request's
// position within it.
type serverJob struct {
	frame *protocol.Frame
	env   *respEnvelope
	idx   int
}

// respEnvelope collects the responses of one request envelope. Lanes may
// complete an envelope's requests in any order; the envelope ships as one
// coalesced unit when the last response lands, with each response in its
// request's position.
type respEnvelope struct {
	frames    []*protocol.Frame
	remaining int
}

// replyWriter serializes one connection's response writes. Plain requests
// answer with a plain frame the moment they complete — a response never
// waits behind another lane's execution — while requests from a Batch
// envelope are held until the whole envelope has completed and then
// written as one coalesced run (bulk responses inside it still travel
// alone, via the shared packing policy in writeCoalesced). Out-of-order
// completion across envelopes is fine: the client correlates responses by
// request ID.
type replyWriter struct {
	mu   sync.Mutex
	conn net.Conn
}

// complete delivers one finished request's response frame. Write failures
// mean the peer vanished; the read loop notices and cleans the connection
// up, so the errors need no second handling.
func (w *replyWriter) complete(j serverJob, out *protocol.Frame) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if j.env == nil {
		_ = protocol.WriteFrame(w.conn, out)
		return
	}
	j.env.frames[j.idx] = out
	j.env.remaining--
	if j.env.remaining == 0 {
		_ = writeCoalesced(w.conn, j.env.frames)
	}
}

// dispatchLoop hands the connection's requests to the handler strictly in
// arrival order. An AsyncHandler takes ownership of each request's
// execution and completes it through the reply writer from its own lanes;
// a plain Handler executes inline, preserving the strict per-connection
// FIFO of the pre-lane runtime.
func (s *Server) dispatchLoop(conn net.Conn, handler Handler, jobs <-chan serverJob) {
	w := &replyWriter{conn: conn}
	async, _ := handler.(AsyncHandler)
	for j := range jobs {
		j := j
		if async != nil {
			async.HandleCallAsync(j.frame.Op, j.frame.Body, func(resp protocol.Message, err error) {
				w.complete(j, responseFrame(j.frame, resp, err))
			})
			continue
		}
		resp, err := handler.HandleCall(j.frame.Op, j.frame.Body)
		w.complete(j, responseFrame(j.frame, resp, err))
	}
}

// responseFrame packages one request's outcome as its response frame.
func responseFrame(req *protocol.Frame, resp protocol.Message, err error) *protocol.Frame {
	out := &protocol.Frame{Kind: protocol.FrameResponse, ReqID: req.ReqID, Op: req.Op}
	if err != nil {
		out.Op = protocol.OpError
		var re *protocol.RemoteError
		code := uint32(1)
		if errors.As(err, &re) {
			code = re.Code
		}
		out.Body = protocol.EncodeMessage(&protocol.ErrorResp{Code: code, Message: err.Error()})
	} else if resp != nil {
		out.Body = protocol.EncodeMessage(resp)
	}
	return out
}

// Close stops accepting, closes every connection and waits for in-flight
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}
