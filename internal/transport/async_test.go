package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/haocl-project/haocl/internal/protocol"
)

// holdingHandler is an AsyncHandler that parks requests whose UserID is
// "hold" and completes them — in LIFO order, from another goroutine — when
// a "release" request arrives. It models lanes finishing work out of
// arrival order, which is what the server's reply path must absorb.
type holdingHandler struct {
	mu   sync.Mutex
	held []func()
}

func (h *holdingHandler) respond(user string) (protocol.Message, error) {
	return &protocol.HelloResp{NodeName: "echo:" + user}, nil
}

func (h *holdingHandler) HandleCall(op protocol.Op, body []byte) (protocol.Message, error) {
	var req protocol.HelloReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	return h.respond(req.UserID)
}

func (h *holdingHandler) HandleCallAsync(op protocol.Op, body []byte, done func(protocol.Message, error)) {
	var req protocol.HelloReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		done(nil, err)
		return
	}
	switch req.UserID {
	case "hold":
		h.mu.Lock()
		h.held = append(h.held, func() { done(h.respond("hold")) })
		h.mu.Unlock()
	case "release":
		h.mu.Lock()
		held := h.held
		h.held = nil
		h.mu.Unlock()
		go func() {
			for i := len(held) - 1; i >= 0; i-- { // LIFO: maximally out of order
				held[i]()
			}
			done(h.respond("release"))
		}()
	default:
		done(h.respond(req.UserID))
	}
}

// TestAsyncOutOfOrderResponses checks that plain (non-enveloped) requests
// completed out of order each get their own response immediately, with
// request-ID correlation intact.
func TestAsyncOutOfOrderResponses(t *testing.T) {
	srv := NewStaticServer(&holdingHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var h1, h2, rel protocol.HelloResp
	p1 := client.Go(&protocol.HelloReq{UserID: "hold"}, &h1)
	p2 := client.Go(&protocol.HelloReq{UserID: "hold"}, &h2)
	pr := client.Go(&protocol.HelloReq{UserID: "release"}, &rel)
	for i, p := range []*Pending{p1, p2, pr} {
		if err := p.Wait(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if h1.NodeName != "echo:hold" || h2.NodeName != "echo:hold" || rel.NodeName != "echo:release" {
		t.Fatalf("responses miscorrelated: %q %q %q", h1.NodeName, h2.NodeName, rel.NodeName)
	}
}

// TestAsyncEnvelopeCoalescedOutOfOrder speaks raw wire v3: a request
// envelope whose sub-requests complete in reverse order must still come
// back as one response envelope with each response in its request's
// position.
func TestAsyncEnvelopeCoalescedOutOfOrder(t *testing.T) {
	srv := NewStaticServer(&holdingHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	users := []string{"hold", "hold", "release"}
	var subs []*protocol.Frame
	for i, u := range users {
		subs = append(subs, &protocol.Frame{
			Kind: protocol.FrameRequest, ReqID: uint64(i + 1), Op: protocol.OpHello,
			Body: protocol.EncodeMessage(&protocol.HelloReq{UserID: u}),
		})
	}
	env, err := protocol.EncodeBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	if err := protocol.WriteFrame(conn, env); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := protocol.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != protocol.FrameBatch {
		t.Fatalf("response kind = %d, want batch envelope", resp.Kind)
	}
	out, err := protocol.DecodeBatch(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(users) {
		t.Fatalf("response envelope has %d sub-frames, want %d", len(out), len(users))
	}
	for i, f := range out {
		if f.ReqID != uint64(i+1) {
			t.Fatalf("sub-frame %d carries req %d: envelope positions not preserved", i, f.ReqID)
		}
		var hr protocol.HelloResp
		if err := protocol.DecodeMessage(&hr, f.Body); err != nil {
			t.Fatal(err)
		}
		if want := "echo:" + users[i]; hr.NodeName != want {
			t.Fatalf("sub-frame %d: NodeName %q, want %q", i, hr.NodeName, want)
		}
	}
}

// bulkEcho echoes WriteBuffer payloads back asynchronously, so envelope
// responses can mix small and bulk bodies.
type bulkEcho struct{}

func (bulkEcho) HandleCall(op protocol.Op, body []byte) (protocol.Message, error) {
	var req protocol.WriteBufferReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	return &protocol.ReadBufferResp{Data: req.Data}, nil
}

func (b bulkEcho) HandleCallAsync(op protocol.Op, body []byte, done func(protocol.Message, error)) {
	go func() { done(b.HandleCall(op, body)) }()
}

// TestAsyncEnvelopeBulkResponseTravelsAlone checks the packing policy on
// the assembled reply path: a bulk response inside an envelope is written
// as a plain frame while its small siblings coalesce.
func TestAsyncEnvelopeBulkResponseTravelsAlone(t *testing.T) {
	srv := NewStaticServer(bulkEcho{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payload := make([]byte, protocol.BatchableBodyLimit*2)
	for i := range payload {
		payload[i] = byte(i)
	}
	subs := []*protocol.Frame{
		{Kind: protocol.FrameRequest, ReqID: 1, Op: protocol.OpWriteBuffer,
			Body: protocol.EncodeMessage(&protocol.WriteBufferReq{Data: []byte{1, 2}})},
		{Kind: protocol.FrameRequest, ReqID: 2, Op: protocol.OpWriteBuffer,
			Body: protocol.EncodeMessage(&protocol.WriteBufferReq{Data: payload})},
		{Kind: protocol.FrameRequest, ReqID: 3, Op: protocol.OpWriteBuffer,
			Body: protocol.EncodeMessage(&protocol.WriteBufferReq{Data: []byte{3}})},
	}
	env, err := protocol.EncodeBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	if err := protocol.WriteFrame(conn, env); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	seen := make(map[uint64]bool)
	sawBulkPlain := false
	for len(seen) < 3 {
		f, err := protocol.ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		if f.Kind == protocol.FrameBatch {
			out, err := protocol.DecodeBatch(f)
			if err != nil {
				t.Fatal(err)
			}
			for _, sub := range out {
				if len(sub.Body) > protocol.BatchableBodyLimit {
					t.Fatal("bulk response shipped inside an envelope")
				}
				seen[sub.ReqID] = true
			}
			continue
		}
		if len(f.Body) > protocol.BatchableBodyLimit {
			sawBulkPlain = true
		}
		seen[f.ReqID] = true
	}
	if !sawBulkPlain {
		t.Fatal("bulk response never arrived as a plain frame")
	}
	if !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("missing responses: %v", seen)
	}
}

// TestAsyncCompletionAfterConnectionDeath makes sure a late completion —
// the lane finishing after the connection died — is dropped quietly
// instead of panicking or blocking the handler.
func TestAsyncCompletionAfterConnectionDeath(t *testing.T) {
	release := make(chan struct{})
	completed := make(chan error, 1)
	srv := NewStaticServer(asyncFunc(func(op protocol.Op, body []byte, done func(protocol.Message, error)) {
		go func() {
			<-release
			done(&protocol.EmptyResp{}, nil)
			completed <- nil
		}()
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	client.Go(&protocol.HelloReq{UserID: "doomed"}, nil)
	time.Sleep(20 * time.Millisecond) // let the request reach the handler
	client.Close()
	close(release)
	select {
	case <-completed:
	case <-time.After(5 * time.Second):
		t.Fatal("late completion blocked after connection death")
	}
}

// asyncFunc adapts a function to AsyncHandler (with a trivial sync path).
type asyncFunc func(op protocol.Op, body []byte, done func(protocol.Message, error))

func (f asyncFunc) HandleCall(op protocol.Op, body []byte) (protocol.Message, error) {
	ch := make(chan asyncOutcome, 1)
	f(op, body, func(m protocol.Message, err error) { ch <- asyncOutcome{m, err} })
	out := <-ch
	return out.msg, out.err
}

func (f asyncFunc) HandleCallAsync(op protocol.Op, body []byte, done func(protocol.Message, error)) {
	f(op, body, done)
}

type asyncOutcome struct {
	msg protocol.Message
	err error
}
