package transport

import (
	"errors"
	"strings"

	"github.com/haocl-project/haocl/internal/protocol"
)

// Handshake performs the Hello exchange on a freshly dialed client,
// negotiating the wire version. Nodes that predate negotiation (wire v2
// with a strict equality check) reject any offer other than their own
// version instead of negotiating down, so a version rejection is retried
// once pinned at MinVersion — that keeps a current speaker interoperable
// with a pre-batching node binary, not just with a current node capped at
// v2. Both the host runtime and node peer-dialing share this path, so the
// two kinds of sessions negotiate identically.
func Handshake(client *Client, req protocol.HelloReq) (protocol.HelloResp, error) {
	if req.WireVersion == 0 {
		req.WireVersion = protocol.Version
	}
	var resp protocol.HelloResp
	err := client.Call(&req, &resp)
	if IsVersionReject(err) {
		req.WireVersion = protocol.MinVersion
		resp = protocol.HelloResp{}
		if err = client.Call(&req, &resp); err == nil {
			// The session runs at what was offered, whatever the legacy
			// response claims (pre-v3 responses lack the field entirely).
			resp.WireVersion = protocol.MinVersion
		}
	}
	return resp, err
}

// IsVersionReject reports whether a Hello failure is a version mismatch,
// as opposed to an auth/transport problem worth surfacing directly.
func IsVersionReject(err error) bool {
	var re *protocol.RemoteError
	return errors.As(err, &re) &&
		re.Op == protocol.OpHello &&
		re.Code == protocol.CodeUnsupported &&
		strings.Contains(re.Message, "wire version")
}
