package transport

import (
	"fmt"
	"net"
	"sync"
)

// MemNetwork is an in-process network: servers register under string
// addresses and clients dial them, with traffic flowing over synchronous
// net.Pipe connections through the exact same framing code as TCP. The
// experiment harness builds its simulated clusters on a MemNetwork so a
// 20-node run does not need 20 OS processes.
type MemNetwork struct {
	mu      sync.Mutex
	servers map[string]*Server
}

// NewMemNetwork returns an empty in-process network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{servers: make(map[string]*Server)}
}

// Register binds srv to addr on the network.
func (n *MemNetwork) Register(addr string, srv *Server) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.servers[addr]; ok {
		return fmt.Errorf("mem network: address %q already bound", addr)
	}
	n.servers[addr] = srv
	return nil
}

// Unregister removes the binding for addr, if any.
func (n *MemNetwork) Unregister(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.servers, addr)
}

// Dial connects a new client to the server bound at addr.
func (n *MemNetwork) Dial(addr string) (*Client, error) {
	n.mu.Lock()
	srv := n.servers[addr]
	n.mu.Unlock()
	if srv == nil {
		return nil, fmt.Errorf("mem network: no server at %q", addr)
	}
	hostEnd, nodeEnd := net.Pipe()
	srv.ServeConn(nodeEnd)
	return NewClient(hostEnd), nil
}

// Dialer abstracts how the host runtime reaches a node, so the same runtime
// code serves TCP clusters and in-process test clusters.
type Dialer interface {
	Dial(addr string) (*Client, error)
}

// TCPDialer dials nodes over real TCP.
type TCPDialer struct{}

// Dial implements Dialer.
func (TCPDialer) Dial(addr string) (*Client, error) { return Dial(addr) }

var _ Dialer = (*MemNetwork)(nil)
var _ Dialer = TCPDialer{}
