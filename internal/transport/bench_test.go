package transport

import (
	"testing"

	"github.com/haocl-project/haocl/internal/protocol"
)

// BenchmarkCallRoundTripTCP measures one control-message round trip over
// loopback TCP — the wall-clock floor of every forwarded OpenCL API call.
func BenchmarkCallRoundTripTCP(b *testing.B) {
	srv := NewStaticServer(HandlerFunc(func(op protocol.Op, body []byte) (protocol.Message, error) {
		return &protocol.EmptyResp{}, nil
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	req := &protocol.FinishQueueReq{QueueID: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Call(req, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBulkWriteThroughput measures moving 1 MiB payloads through the
// framing layer over the in-memory transport.
func BenchmarkBulkWriteThroughput(b *testing.B) {
	net := NewMemNetwork()
	srv := NewStaticServer(HandlerFunc(func(op protocol.Op, body []byte) (protocol.Message, error) {
		return &protocol.EmptyResp{}, nil
	}))
	if err := net.Register("mem://bench", srv); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := net.Dial("mem://bench")
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	payload := make([]byte, 1<<20)
	req := &protocol.WriteBufferReq{QueueID: 1, BufferID: 1, Data: payload}
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Call(req, nil); err != nil {
			b.Fatal(err)
		}
	}
}
