package transport

import (
	"bytes"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/haocl-project/haocl/internal/protocol"
)

// parseStream splits a byte stream back into frames.
func parseStream(t *testing.T, b []byte) []*protocol.Frame {
	t.Helper()
	r := bytes.NewReader(b)
	var frames []*protocol.Frame
	for r.Len() > 0 {
		f, err := protocol.ReadFrame(r)
		if err != nil {
			t.Fatalf("stream does not parse: %v", err)
		}
		frames = append(frames, f)
	}
	return frames
}

// TestWriteCoalesced checks the client-side packing policy directly: runs
// of small frames become envelopes capped by the batch thresholds, bulk
// frames travel plain, and sub-frame order survives exactly.
func TestWriteCoalesced(t *testing.T) {
	mkFrame := func(id uint64, size int) *protocol.Frame {
		return &protocol.Frame{
			Kind: protocol.FrameRequest, ReqID: id, Op: protocol.OpWriteBuffer,
			Body: bytes.Repeat([]byte{byte(id)}, size),
		}
	}

	t.Run("single frame stays plain", func(t *testing.T) {
		var buf bytes.Buffer
		if err := writeCoalesced(&buf, []*protocol.Frame{mkFrame(1, 10)}); err != nil {
			t.Fatal(err)
		}
		frames := parseStream(t, buf.Bytes())
		if len(frames) != 1 || frames[0].Kind != protocol.FrameRequest {
			t.Fatalf("frames = %+v", frames)
		}
	})

	t.Run("run of small frames becomes envelopes", func(t *testing.T) {
		const n = protocol.MaxBatchMessages*2 + 10 // 2 full envelopes + remainder
		in := make([]*protocol.Frame, n)
		for i := range in {
			in[i] = mkFrame(uint64(i+1), 16)
		}
		var buf bytes.Buffer
		if err := writeCoalesced(&buf, in); err != nil {
			t.Fatal(err)
		}
		frames := parseStream(t, buf.Bytes())
		if len(frames) != 3 {
			t.Fatalf("got %d wire frames, want 3 envelopes", len(frames))
		}
		var order []uint64
		for _, f := range frames {
			if f.Kind != protocol.FrameBatch {
				t.Fatalf("non-batch frame in coalesced run: %+v", f)
			}
			subs, err := protocol.DecodeBatch(f)
			if err != nil {
				t.Fatal(err)
			}
			for _, sub := range subs {
				order = append(order, sub.ReqID)
			}
		}
		if len(order) != n {
			t.Fatalf("decoded %d sub-frames, want %d", len(order), n)
		}
		for i, id := range order {
			if id != uint64(i+1) {
				t.Fatalf("order broken at %d: got req %d", i, id)
			}
		}
	})

	t.Run("bulk frames interleave plain", func(t *testing.T) {
		in := []*protocol.Frame{
			mkFrame(1, 8),
			mkFrame(2, 8),
			mkFrame(3, protocol.BatchableBodyLimit+1), // too big to envelope
			mkFrame(4, 8),
		}
		var buf bytes.Buffer
		if err := writeCoalesced(&buf, in); err != nil {
			t.Fatal(err)
		}
		frames := parseStream(t, buf.Bytes())
		if len(frames) != 3 {
			t.Fatalf("got %d wire frames, want envelope+plain+plain", len(frames))
		}
		if frames[0].Kind != protocol.FrameBatch ||
			frames[1].Kind != protocol.FrameRequest || frames[1].ReqID != 3 ||
			frames[2].Kind != protocol.FrameRequest || frames[2].ReqID != 4 {
			t.Fatalf("unexpected shapes: %v %v %v", frames[0].Kind, frames[1].Kind, frames[2].Kind)
		}
	})

	t.Run("byte threshold flushes early", func(t *testing.T) {
		// Each frame is just under the batchable limit, so roughly four
		// of them cross MaxBatchBytes; the run must split.
		in := make([]*protocol.Frame, 8)
		for i := range in {
			in[i] = mkFrame(uint64(i+1), protocol.BatchableBodyLimit)
		}
		var buf bytes.Buffer
		if err := writeCoalesced(&buf, in); err != nil {
			t.Fatal(err)
		}
		frames := parseStream(t, buf.Bytes())
		if len(frames) < 2 {
			t.Fatalf("byte threshold ignored: %d wire frames", len(frames))
		}
	})
}

// TestBatchedClientRoundTrip hammers a batching client from many
// goroutines over TCP; every future must resolve with its own response.
func TestBatchedClientRoundTrip(t *testing.T) {
	srv := NewStaticServer(&echoHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.EnableBatching()

	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for i := 0; i < 128; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := fmt.Sprintf("user-%d", i)
			var resp protocol.HelloResp
			if err := client.Call(&protocol.HelloReq{UserID: user}, &resp); err != nil {
				errs <- err
				return
			}
			if resp.NodeName != "echo:"+user {
				errs <- fmt.Errorf("cross-talk: got %q for %q", resp.NodeName, user)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBatchedOrderPreserved issues a long pipelined burst from one
// goroutine with batching on; the server must execute the requests in Go
// order even though they arrive packed in envelopes.
func TestBatchedOrderPreserved(t *testing.T) {
	var mu sync.Mutex
	var served []string
	srv := NewStaticServer(HandlerFunc(func(op protocol.Op, body []byte) (protocol.Message, error) {
		var req protocol.HelloReq
		if err := protocol.DecodeMessage(&req, body); err != nil {
			return nil, err
		}
		mu.Lock()
		served = append(served, req.UserID)
		mu.Unlock()
		return &protocol.EmptyResp{}, nil
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.EnableBatching()

	const n = 500
	futures := make([]*Pending, n)
	for i := range futures {
		futures[i] = client.Go(&protocol.HelloReq{UserID: fmt.Sprintf("%06d", i)}, nil)
	}
	for i, p := range futures {
		if err := p.Wait(); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(served) != n {
		t.Fatalf("served %d, want %d", len(served), n)
	}
	for i, u := range served {
		if u != fmt.Sprintf("%06d", i) {
			t.Fatalf("execution order broken at %d: %q", i, u)
		}
	}
}

// TestServerBatchedResponses speaks raw wire v3 to the server: a request
// envelope must come back as a response envelope covering exactly its
// requests, in order.
func TestServerBatchedResponses(t *testing.T) {
	srv := NewStaticServer(&echoHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var subs []*protocol.Frame
	for i := 1; i <= 3; i++ {
		subs = append(subs, &protocol.Frame{
			Kind: protocol.FrameRequest, ReqID: uint64(i), Op: protocol.OpHello,
			Body: protocol.EncodeMessage(&protocol.HelloReq{UserID: fmt.Sprintf("u%d", i)}),
		})
	}
	env, err := protocol.EncodeBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	if err := protocol.WriteFrame(conn, env); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := protocol.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != protocol.FrameBatch {
		t.Fatalf("response kind = %d, want batch envelope", resp.Kind)
	}
	out, err := protocol.DecodeBatch(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("response envelope has %d sub-frames, want 3", len(out))
	}
	for i, f := range out {
		if f.Kind != protocol.FrameResponse || f.ReqID != uint64(i+1) {
			t.Fatalf("sub-frame %d: kind %d req %d", i, f.Kind, f.ReqID)
		}
		var hr protocol.HelloResp
		if err := protocol.DecodeMessage(&hr, f.Body); err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("echo:u%d", i+1); hr.NodeName != want {
			t.Fatalf("sub-frame %d: NodeName %q, want %q", i, hr.NodeName, want)
		}
	}
}

// TestV2CappedServerRejectsBatches pins a server below VersionBatch: it
// must serve plain frames but drop connections that ship envelopes, so a
// capped node behaves like a real pre-batching peer at the framing layer.
func TestV2CappedServerRejectsBatches(t *testing.T) {
	srv := NewStaticServer(&echoHandler{})
	srv.LimitWireVersion(protocol.MinVersion)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Plain traffic works.
	plain, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	var resp protocol.HelloResp
	if err := plain.Call(&protocol.HelloReq{UserID: "v2"}, &resp); err != nil {
		t.Fatal(err)
	}

	// A batch envelope gets the connection dropped without a response.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	env, err := protocol.EncodeBatch([]*protocol.Frame{{
		Kind: protocol.FrameRequest, ReqID: 1, Op: protocol.OpHello,
		Body: protocol.EncodeMessage(&protocol.HelloReq{UserID: "v3"}),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := protocol.WriteFrame(conn, env); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("v2-capped server answered a batch envelope")
	}
}

// TestServerDropsMalformedBatch sends a corrupt envelope; the server must
// drop the connection without disturbing other sessions.
func TestServerDropsMalformedBatch(t *testing.T) {
	srv := NewStaticServer(&echoHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	good, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	bad := &protocol.Frame{Kind: protocol.FrameBatch, Op: protocol.OpBatch,
		Body: []byte{0xFF, 0xFF, 0xFF, 0xFF}} // hostile count
	if err := protocol.WriteFrame(conn, bad); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a malformed envelope")
	}
	conn.Close()

	var resp protocol.HelloResp
	if err := good.Call(&protocol.HelloReq{UserID: "ok"}, &resp); err != nil {
		t.Fatalf("healthy session broken: %v", err)
	}
}

// TestBatchedBulkPayload mixes small control calls with a payload above
// the batchable limit; both must round-trip with batching enabled.
func TestBatchedBulkPayload(t *testing.T) {
	srv := NewStaticServer(HandlerFunc(func(op protocol.Op, body []byte) (protocol.Message, error) {
		var req protocol.WriteBufferReq
		if err := protocol.DecodeMessage(&req, body); err != nil {
			return nil, err
		}
		return &protocol.ReadBufferResp{Data: req.Data}, nil
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.EnableBatching()

	payload := make([]byte, protocol.BatchableBodyLimit*4)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	small := client.Go(&protocol.WriteBufferReq{Data: []byte{1, 2, 3}}, nil)
	var bulk protocol.ReadBufferResp
	bulkPending := client.Go(&protocol.WriteBufferReq{Data: payload}, &bulk)
	small2 := client.Go(&protocol.WriteBufferReq{Data: []byte{4}}, nil)
	for i, p := range []*Pending{small, bulkPending, small2} {
		if err := p.Wait(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if !bytes.Equal(bulk.Data, payload) {
		t.Fatal("bulk payload corrupted through the batching path")
	}
}

// TestWriterDiesWithConnection checks the coalescer's writer goroutine is
// torn down when the peer vanishes, without an explicit Close: sends after
// the failure must settle immediately through the dead-writer path, and
// the goroutine population must return to its baseline.
func TestWriterDiesWithConnection(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv := NewStaticServer(&echoHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 20
	for i := 0; i < clients; i++ {
		client, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		client.EnableBatching()
		if err := client.Call(&protocol.HelloReq{UserID: "x"}, nil); err != nil {
			t.Fatal(err)
		}
		// Kill the transport out from under the client — no Close.
		client.conn.Close()
		if err := client.Go(&protocol.HelloReq{}, nil).Wait(); err == nil {
			t.Fatal("send on dead connection resolved successfully")
		}
	}

	// Both per-client goroutines (reader and writer) must unwind.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBatchedClientServerDeath kills the server under a batching client
// with futures in flight; all must resolve to the sticky error quickly.
func TestBatchedClientServerDeath(t *testing.T) {
	block := make(chan struct{})
	srv := NewStaticServer(HandlerFunc(func(op protocol.Op, body []byte) (protocol.Message, error) {
		<-block
		return &protocol.EmptyResp{}, nil
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.EnableBatching()

	futures := make([]*Pending, 16)
	for i := range futures {
		futures[i] = client.Go(&protocol.HelloReq{UserID: "doomed"}, nil)
	}
	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	time.Sleep(20 * time.Millisecond)
	close(block)
	<-closed

	for i, p := range futures {
		done := make(chan error, 1)
		go func() { done <- p.Wait() }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("future %d hung after node death", i)
		}
	}
	if err := client.Go(&protocol.HelloReq{}, nil).Wait(); err == nil {
		t.Fatal("future on dead connection resolved successfully")
	}
}
