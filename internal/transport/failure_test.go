package transport

import (
	"net"
	"testing"
	"time"

	"github.com/haocl-project/haocl/internal/protocol"
)

// TestGarbageBytesDropConnection sends non-protocol bytes to a server: the
// connection must be dropped without disturbing other sessions.
func TestGarbageBytesDropConnection(t *testing.T) {
	srv := NewStaticServer(&echoHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A healthy client for later.
	good, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()

	// Raw garbage.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// The server must close the garbage connection.
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("server answered garbage")
	}
	raw.Close()

	// The healthy session still works.
	var resp protocol.HelloResp
	if err := good.Call(&protocol.HelloReq{UserID: "still-here"}, &resp); err != nil {
		t.Fatalf("healthy session broken by garbage peer: %v", err)
	}
}

// TestTruncatedFrameDropsConnection sends a frame header promising more
// bytes than arrive, then closes; the server must clean up.
func TestTruncatedFrameDropsConnection(t *testing.T) {
	srv := NewStaticServer(&echoHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Valid header claiming a 1000-byte body, then only 3 bytes.
	hdr := []byte{
		0x48, 0x41, // magic
		protocol.Version,
		byte(protocol.FrameRequest),
		0, 0, 0, 0, 0, 0, 0, 1, // reqID
		0, byte(protocol.OpHello), // op
		0, 0, 0x03, 0xE8, // length 1000
		1, 2, 3,
	}
	if _, err := raw.Write(hdr); err != nil {
		t.Fatal(err)
	}
	raw.Close()
	// Server.Close must not hang on the half-dead connection.
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("server close hung on truncated connection")
	}
}

// TestNodeDeathFailsInFlightFutures kills the server while pipelined Go
// futures are in flight: every pending future must resolve to the sticky
// connection error, and futures issued afterwards must fail the same way
// without hanging.
func TestNodeDeathFailsInFlightFutures(t *testing.T) {
	block := make(chan struct{})
	srv := NewStaticServer(HandlerFunc(func(op protocol.Op, body []byte) (protocol.Message, error) {
		<-block // hold the dispatch worker so responses never go out
		return &protocol.EmptyResp{}, nil
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const inFlight = 8
	futures := make([]*Pending, inFlight)
	for i := range futures {
		futures[i] = client.Go(&protocol.HelloReq{UserID: "doomed"}, nil)
	}

	// Kill the server. Close waits for the blocked handler, so release it
	// once the teardown has started closing connections.
	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	time.Sleep(20 * time.Millisecond)
	close(block)
	<-closed

	for i, p := range futures {
		done := make(chan error, 1)
		go func() { done <- p.Wait() }()
		select {
		case err := <-done:
			if err == nil {
				// A future that raced the close may have its response; the
				// rest must consistently fail below.
				continue
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("future %d hung after node death", i)
		}
	}
	// The connection error is sticky: new futures fail immediately too.
	if err := client.Go(&protocol.HelloReq{}, nil).Wait(); err == nil {
		t.Fatal("future on dead connection resolved successfully")
	}
}

// TestNodeDeathFailsPendingCalls kills the server while calls are in
// flight; every caller must get an error, not a hang.
func TestNodeDeathFailsPendingCalls(t *testing.T) {
	block := make(chan struct{})
	srv := NewStaticServer(HandlerFunc(func(op protocol.Op, body []byte) (protocol.Message, error) {
		<-block // hold requests open
		return &protocol.EmptyResp{}, nil
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			errs <- client.Call(&protocol.HelloReq{}, nil)
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the calls reach the server
	close(block)
	srv.Close()
	for i := 0; i < 4; i++ {
		select {
		case err := <-errs:
			if err == nil {
				// Calls that raced the close may have completed; fine.
				continue
			}
		case <-time.After(5 * time.Second):
			t.Fatal("pending call hung after server death")
		}
	}
}
