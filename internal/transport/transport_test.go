package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/haocl-project/haocl/internal/protocol"
)

// echoHandler answers Hello with the user ID as node name and fails every
// other op.
type echoHandler struct{ calls atomic.Int64 }

func (h *echoHandler) HandleCall(op protocol.Op, body []byte) (protocol.Message, error) {
	h.calls.Add(1)
	if op != protocol.OpHello {
		return nil, &protocol.RemoteError{Code: protocol.CodeUnsupported, Message: "nope"}
	}
	var req protocol.HelloReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	return &protocol.HelloResp{NodeName: "echo:" + req.UserID}, nil
}

func TestTCPCallRoundTrip(t *testing.T) {
	h := &echoHandler{}
	srv := NewStaticServer(h)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var resp protocol.HelloResp
	if err := client.Call(&protocol.HelloReq{UserID: "bob", WireVersion: 1}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.NodeName != "echo:bob" {
		t.Fatalf("NodeName = %q", resp.NodeName)
	}
	if h.calls.Load() != 1 {
		t.Fatalf("handler called %d times", h.calls.Load())
	}
}

func TestRemoteErrorPropagates(t *testing.T) {
	srv := NewStaticServer(&echoHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	err = client.Call(&protocol.ShutdownReq{}, nil)
	var re *protocol.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Code != protocol.CodeUnsupported || re.Op != protocol.OpShutdown {
		t.Fatalf("remote error = %+v", re)
	}
	// The connection stays usable after a remote error.
	var resp protocol.HelloResp
	if err := client.Call(&protocol.HelloReq{UserID: "x"}, &resp); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	srv := NewStaticServer(&echoHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := fmt.Sprintf("user-%d", i)
			var resp protocol.HelloResp
			if err := client.Call(&protocol.HelloReq{UserID: user}, &resp); err != nil {
				errs <- err
				return
			}
			if resp.NodeName != "echo:"+user {
				errs <- fmt.Errorf("cross-talk: got %q for %q", resp.NodeName, user)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestMemNetwork(t *testing.T) {
	net := NewMemNetwork()
	srv := NewStaticServer(&echoHandler{})
	if err := net.Register("mem://a", srv); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := net.Register("mem://a", srv); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := net.Dial("mem://missing"); err == nil {
		t.Fatal("dial to unbound address succeeded")
	}

	client, err := net.Dial("mem://a")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var resp protocol.HelloResp
	if err := client.Call(&protocol.HelloReq{UserID: "mem"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.NodeName != "echo:mem" {
		t.Fatalf("NodeName = %q", resp.NodeName)
	}
	net.Unregister("mem://a")
	if _, err := net.Dial("mem://a"); err == nil {
		t.Fatal("dial after unregister succeeded")
	}
}

func TestCallAfterClose(t *testing.T) {
	srv := NewStaticServer(&echoHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	if err := client.Call(&protocol.HelloReq{}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestServerCloseFailsInFlight(t *testing.T) {
	srv := NewStaticServer(&echoHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	srv.Close()
	if err := client.Call(&protocol.HelloReq{}, nil); err == nil {
		t.Fatal("call succeeded against closed server")
	}
}

// sessionHandler counts per-connection instances and records Close calls.
type sessionHandler struct {
	id     int
	closed *atomic.Int64
}

func (s *sessionHandler) HandleCall(op protocol.Op, body []byte) (protocol.Message, error) {
	return &protocol.HelloResp{NodeName: fmt.Sprintf("session-%d", s.id)}, nil
}

func (s *sessionHandler) Close() error {
	s.closed.Add(1)
	return nil
}

func TestPerConnectionSessions(t *testing.T) {
	var next atomic.Int64
	var closed atomic.Int64
	srv := NewServer(func() Handler {
		return &sessionHandler{id: int(next.Add(1)), closed: &closed}
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var names []string
	for i := 0; i < 2; i++ {
		client, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		var resp protocol.HelloResp
		if err := client.Call(&protocol.HelloReq{}, &resp); err != nil {
			t.Fatal(err)
		}
		names = append(names, resp.NodeName)
		client.Close()
	}
	if names[0] == names[1] {
		t.Fatalf("connections shared a session: %v", names)
	}
	// Session close hooks fire when connections drop.
	deadline := time.Now().Add(2 * time.Second)
	for closed.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("close hooks fired %d times, want 2", closed.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDispatchPanicIsNotSilent(t *testing.T) {
	// A handler returning a plain error is wrapped into CodeInternal.
	srv := NewStaticServer(HandlerFunc(func(op protocol.Op, body []byte) (protocol.Message, error) {
		return nil, errors.New("boom")
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	err = client.Call(&protocol.HelloReq{}, nil)
	var re *protocol.RemoteError
	if !errors.As(err, &re) || re.Code != protocol.CodeInternal {
		t.Fatalf("err = %v", err)
	}
}

func TestLargePayloadRoundTrip(t *testing.T) {
	srv := NewStaticServer(HandlerFunc(func(op protocol.Op, body []byte) (protocol.Message, error) {
		var req protocol.WriteBufferReq
		if err := protocol.DecodeMessage(&req, body); err != nil {
			return nil, err
		}
		return &protocol.ReadBufferResp{Data: req.Data}, nil
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	payload := make([]byte, 4<<20)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var resp protocol.ReadBufferResp
	if err := client.Call(&protocol.WriteBufferReq{Data: payload}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Data) != len(payload) {
		t.Fatalf("echoed %d bytes, want %d", len(resp.Data), len(payload))
	}
	for i := 0; i < len(payload); i += 65537 {
		if resp.Data[i] != payload[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}
