package node

import (
	"errors"
	"sync"

	"github.com/haocl-project/haocl/internal/clc"
	"github.com/haocl-project/haocl/internal/kernel"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/vtime"
)

// Session is the per-connection handler: it parses each forwarded API call,
// executes it, and packages the response (paper §III-D: the daemon
// "receives the commands from the workload scheduler along with additional
// information such as user ID, device ID, shared flag ... and parses them
// for compilation and execution").
//
// Dispatch is split into two stages (DESIGN.md §4). The *registration*
// stage runs in the transport's per-connection dispatch goroutine, strictly
// in wire-arrival order: it parses the command, claims its host-assigned
// completion event, resolves the target queue, and routes the command to a
// *lane*. Lanes — one per target queue, plus a control lane for everything
// that has no queue — execute concurrently, so a multi-device node runs its
// queues in parallel instead of single-file. Cross-queue dependencies are
// real synchronization edges: a wait-list lookup blocks until the
// referenced event's command has completed on its own lane.
type Session struct {
	node *Node

	mu     sync.Mutex
	userID string               // guarded by mu
	queues map[uint64]*queueObj // guarded by mu; queues created by this session
	// events are session-local because their IDs are host-assigned: the
	// pipelining host names each command's completion event up front so a
	// later command's wait list can reference it before the response
	// exists, and those counters are only unique per connection. Entries
	// are created at registration (claimed) or by a wait-list lookup that
	// ran ahead of the creating command (unclaimed placeholder).
	events map[uint64]*eventObj // guarded by mu
	// synthEventID assigns IDs for requests that carry none (direct
	// session drivers and tests); the high range keeps them clear of
	// host-assigned counters.
	synthEventID uint64 // guarded by mu
	// peers is the cluster address book learned from the host's Hello
	// (name → listen address), consulted when PushRange commands dial
	// sibling nodes.
	peers map[string]string // guarded by mu
	// epoch is the host's membership generation from the last Hello; a
	// repeat Hello with a higher epoch signals a membership change and
	// resets the peer pool and parked push rendezvous.
	epoch uint64 // guarded by mu

	// peerMu guards the lazy-dialed pool of connections to sibling nodes
	// and the peersClosed latch; see peerClient.
	peerMu      sync.Mutex
	peerConns   map[string]*peerConn // guarded by peerMu
	peersClosed bool                 // guarded by peerMu

	laneMu    sync.Mutex
	lanes     map[uint64]*lane // guarded by laneMu
	lanesDead bool             // guarded by laneMu
	laneWG    sync.WaitGroup

	// closedCh unblocks event waiters when the session tears down, so a
	// lane draining on Close can never hang on a dependency whose creating
	// command was lost with the connection.
	closedCh  chan struct{}
	closeOnce sync.Once
}

func newSession(n *Node) *Session {
	return &Session{
		node:     n,
		closedCh: make(chan struct{}),
	}
}

// controlLane is the lane key for ops that target no queue.
const controlLane uint64 = 0

// synthEventBase is the first synthetic event ID; host-assigned IDs must
// stay below it.
const synthEventBase = uint64(1) << 62

// lane is one in-order execution stream. The registration stage appends
// jobs; a dedicated worker goroutine runs them one at a time, so commands
// for one queue still execute in arrival order while different lanes
// proceed concurrently. The queue is unbounded on purpose: a bounded lane
// would stall the registration stage when full, and a stalled registration
// stage can deadlock a cross-lane wait whose creating command is still
// behind it (backpressure remains at the transport's job channel and the
// host's own flow control).
type lane struct {
	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []func() // guarded by mu
	closed bool     // guarded by mu
}

func newLane() *lane {
	l := &lane{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// push appends one job, reporting false if the lane is closed.
func (l *lane) push(job func()) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	l.jobs = append(l.jobs, job)
	l.cond.Signal()
	return true
}

// close stops the lane accepting jobs; the worker drains what is queued.
func (l *lane) close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// run is the lane worker: it executes queued jobs in order and exits once
// the lane is closed and drained.
func (l *lane) run() {
	for {
		l.mu.Lock()
		for len(l.jobs) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.jobs) == 0 {
			l.mu.Unlock()
			return
		}
		job := l.jobs[0]
		l.jobs = l.jobs[1:]
		l.mu.Unlock()
		job()
	}
}

// laneKey maps a target queue to its lane. A node in single-lane mode
// (benchmarks comparing against the serialized dispatch of the pre-lane
// runtime) folds everything onto the control lane.
func (s *Session) laneKey(queueID uint64) uint64 {
	if s.node.singleLane {
		return controlLane
	}
	return queueID
}

// submit routes one job to its lane, starting the lane worker lazily.
func (s *Session) submit(key uint64, job func()) bool {
	s.laneMu.Lock()
	if s.lanesDead {
		s.laneMu.Unlock()
		return false
	}
	if s.lanes == nil {
		s.lanes = make(map[uint64]*lane)
	}
	ln := s.lanes[key]
	if ln == nil {
		ln = newLane()
		s.lanes[key] = ln
		s.laneWG.Add(1)
		go func() {
			defer s.laneWG.Done()
			ln.run()
		}()
	}
	s.laneMu.Unlock()
	return ln.push(job)
}

// registerEvent claims the completion event for one command, under the
// host-assigned ID or a synthesized one when the request carried none. It
// runs in the registration stage, in wire-arrival order, which is what
// makes a later command's wait on the ID valid before this command has
// executed. A wait-list lookup that ran ahead (concurrent direct drivers)
// may already have left an unclaimed placeholder; claiming adopts it, so
// its waiters resolve when this command completes.
func (s *Session) registerEvent(id uint64) (*eventObj, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == 0 {
		s.synthEventID++
		id = synthEventBase + s.synthEventID
	} else if id >= synthEventBase {
		// A host counter can never legitimately reach the synthetic range;
		// letting it through would silently collide with node-assigned IDs.
		return nil, remoteErr(protocol.CodeBadRequest,
			"host-assigned event ID %d lands in the reserved synthetic range", id)
	}
	if s.events == nil {
		s.events = make(map[uint64]*eventObj)
	}
	e := s.events[id]
	if e == nil {
		e = newEvent(id)
		s.events[id] = e
	} else if e.claimed {
		return nil, remoteErr(protocol.CodeBadRequest, "duplicate event ID %d", id)
	}
	e.claimed = true
	return e, nil
}

// resolveWaits resolves a command's wait list to event records. It runs
// in the registration stage, which matters for releases: a waiter holds
// its dependencies' records from registration on, so an event Release
// arriving behind it on the wire (fire-and-forget teardown) can drop the
// table entry without orphaning the waiter. IDs outside the valid range
// are rejected up front — a zero or negative ID would otherwise wrap
// through the uint64 cast and surface as a misleading "unknown event".
//
// In lane mode (strict=false) an ID with no record yet becomes an
// unclaimed placeholder the waiter blocks on: the creating command may
// legitimately still be ahead in another driver's registration. The flip
// side is that waiting on an ID nothing will ever claim — e.g. an event
// the host already released — parks the lane until session close;
// distinguishing "future" from "never" would take an unbounded tombstone
// table, and waiting on a released event is undefined in OpenCL too. In
// strict mode (the synchronous HandleCall path, where registration and
// execution are one step and nothing concurrent can still claim the ID)
// an unclaimed ID is the pre-lane "unknown event" error — not a hang.
func (s *Session) resolveWaits(ids []int64, strict bool) ([]*eventObj, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	events := make([]*eventObj, 0, len(ids))
	for _, id := range ids {
		if id <= 0 {
			return nil, remoteErr(protocol.CodeBadRequest, "invalid wait-list event ID %d", id)
		}
		s.mu.Lock()
		if s.events == nil {
			s.events = make(map[uint64]*eventObj)
		}
		e := s.events[uint64(id)]
		if e == nil && !strict {
			e = newEvent(uint64(id))
			s.events[uint64(id)] = e
		}
		claimed := e != nil && e.claimed
		s.mu.Unlock()
		if strict && !claimed {
			return nil, remoteErr(protocol.CodeUnknownObject, "unknown event %d", id)
		}
		events = append(events, e)
	}
	return events, nil
}

// awaitDeadline returns the latest completion instant among the resolved
// dependencies. Events whose commands are still executing on other lanes
// (or not yet registered, for concurrent direct drivers) block until they
// complete — the cross-queue synchronization edge that replaces the old
// FIFO assumption that every referenced event had already run. A failed
// dependency fails the waiter.
func (s *Session) awaitDeadline(events []*eventObj) (vtime.Time, error) {
	var deadline vtime.Time
	for _, e := range events {
		select {
		case <-e.done:
		case <-s.closedCh:
			return 0, remoteErr(protocol.CodeBadRequest,
				"session closed while waiting for event %d", e.id)
		}
		if e.err != nil {
			return 0, remoteErr(errCode(e.err), "wait event %d: %v", e.id, e.err)
		}
		if end := vtime.Time(e.profile.End); end > deadline {
			deadline = end
		}
	}
	return deadline, nil
}

// errCode extracts a protocol code from an error, defaulting to 1.
func errCode(err error) uint32 {
	var re *protocol.RemoteError
	if errors.As(err, &re) {
		return re.Code
	}
	return 1
}

// failCommand marks a command's completion event failed — waiters observe
// the failure instead of hanging — and passes the error through.
func (s *Session) failCommand(ev *eventObj, err error) error {
	ev.fail(err)
	return err
}

// checkRange validates the byte range [off, off+n) against a buffer of
// size bytes. The comparison never computes off+n: the host now issues
// ranged delta-migration commands with arbitrary offsets, and an
// adversarial off near MaxInt64 would wrap the sum negative and slip past
// a naive bound check.
func checkRange(what string, off, n, size int64) error {
	if off < 0 || n < 0 || off > size || n > size-off {
		return remoteErr(protocol.CodeBadRequest,
			"%s range at offset %d of %d bytes out of bounds for buffer of %d bytes",
			what, off, n, size)
	}
	return nil
}

// HandleCall implements transport.Handler: registration plus inline
// execution in the caller's goroutine. Direct session drivers (tests,
// tools) use it; the transport prefers HandleCallAsync. Wait lists are
// resolved strictly — an unregistered ID errors instead of parking the
// caller's goroutine on an edge nothing concurrent will complete.
func (s *Session) HandleCall(op protocol.Op, body []byte) (protocol.Message, error) {
	_, exec, err := s.prepare(op, body, true)
	if err != nil {
		return nil, err
	}
	return exec()
}

// HandleCallAsync implements transport.AsyncHandler: the registration
// stage runs here, in the transport's arrival-order dispatch goroutine,
// and execution is handed to the command's lane.
func (s *Session) HandleCallAsync(op protocol.Op, body []byte, done func(protocol.Message, error)) {
	key, exec, err := s.prepare(op, body, false)
	if err != nil {
		done(nil, err)
		return
	}
	if !s.submit(key, func() { done(exec()) }) {
		done(nil, remoteErr(protocol.CodeBadRequest, "session is shutting down"))
	}
}

// prepare is the registration stage for one command: it parses the body,
// claims the command's completion event, resolves every object the command
// touches (queue, buffers, kernel, wait-list events), and returns the lane
// key plus the execution step. Resolving objects here — not in the lane —
// is what makes fire-and-forget releases sound: a command registered
// before a Release arrived holds references and keeps executing, while one
// registered after deterministically sees the object gone. strictWaits
// selects how unregistered wait-list IDs resolve (see resolveWaits). Ops
// with no queue ride the control lane; Release itself is special-cased to
// run inline (it is a pure table mutation, and later-arriving commands
// must observe it deterministically, which only the arrival-ordered
// registration stage can guarantee).
func (s *Session) prepare(op protocol.Op, body []byte, strictWaits bool) (uint64, func() (protocol.Message, error), error) {
	switch op {
	case protocol.OpWriteBuffer:
		req := new(protocol.WriteBufferReq)
		if err := protocol.DecodeMessage(req, body); err != nil {
			return 0, nil, err
		}
		q, ev, err := s.registerCommand(req.QueueID, req.EventID)
		if err != nil {
			return 0, nil, err
		}
		buf, err := s.node.objects.buffer(req.BufferID)
		if err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		// Ranged-write validation happens here, in the registration stage:
		// a malformed range fails its event deterministically instead of
		// occupying a lane and blocking on wait edges first. Buffer sizes
		// are immutable, so registration-time bounds hold at execution.
		if err := checkRange("write", req.Offset, int64(len(req.Data)), buf.size); err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		waits, err := s.resolveWaits(req.WaitEvents, strictWaits)
		if err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		return s.laneKey(req.QueueID), func() (protocol.Message, error) {
			return s.execWriteBuffer(req, q, ev, buf, waits)
		}, nil
	case protocol.OpReadBuffer:
		req := new(protocol.ReadBufferReq)
		if err := protocol.DecodeMessage(req, body); err != nil {
			return 0, nil, err
		}
		q, ev, err := s.registerCommand(req.QueueID, req.EventID)
		if err != nil {
			return 0, nil, err
		}
		buf, err := s.node.objects.buffer(req.BufferID)
		if err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		if err := checkRange("read", req.Offset, req.Size, buf.size); err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		waits, err := s.resolveWaits(req.WaitEvents, strictWaits)
		if err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		return s.laneKey(req.QueueID), func() (protocol.Message, error) {
			return s.execReadBuffer(req, q, ev, buf, waits)
		}, nil
	case protocol.OpCopyBuffer:
		req := new(protocol.CopyBufferReq)
		if err := protocol.DecodeMessage(req, body); err != nil {
			return 0, nil, err
		}
		q, ev, err := s.registerCommand(req.QueueID, req.EventID)
		if err != nil {
			return 0, nil, err
		}
		src, err := s.node.objects.buffer(req.SrcID)
		if err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		dst, err := s.node.objects.buffer(req.DstID)
		if err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		if err := checkRange("copy source", req.SrcOffset, req.Size, src.size); err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		if err := checkRange("copy destination", req.DstOffset, req.Size, dst.size); err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		waits, err := s.resolveWaits(req.WaitEvents, strictWaits)
		if err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		return s.laneKey(req.QueueID), func() (protocol.Message, error) {
			return s.execCopyBuffer(req, q, ev, src, dst, waits)
		}, nil
	case protocol.OpEnqueueKernel:
		req := new(protocol.EnqueueKernelReq)
		if err := protocol.DecodeMessage(req, body); err != nil {
			return 0, nil, err
		}
		q, ev, err := s.registerCommand(req.QueueID, req.EventID)
		if err != nil {
			return 0, nil, err
		}
		k, err := s.node.objects.kernel(req.KernelID)
		if err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		args, err := s.buildLaunchArgs(k, req.Args)
		if err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		waits, err := s.resolveWaits(req.WaitEvents, strictWaits)
		if err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		return s.laneKey(req.QueueID), func() (protocol.Message, error) {
			return s.execEnqueueKernel(req, q, ev, k, args, waits)
		}, nil
	case protocol.OpPushRange:
		req := new(protocol.PushRangeReq)
		if err := protocol.DecodeMessage(req, body); err != nil {
			return 0, nil, err
		}
		q, ev, err := s.registerCommand(req.QueueID, req.EventID)
		if err != nil {
			return 0, nil, err
		}
		buf, err := s.node.objects.buffer(req.BufferID)
		if err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		if err := checkRange("push", req.Offset, req.Size, buf.size); err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		waits, err := s.resolveWaits(req.WaitEvents, strictWaits)
		if err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		// The peer connection is NOT resolved here: dialing is lazy and may
		// block, and the registration stage must stay non-blocking. A dial
		// failure surfaces in the lane as this command's sticky error.
		return s.laneKey(req.QueueID), func() (protocol.Message, error) {
			return s.execPushRange(req, q, ev, buf, waits)
		}, nil
	case protocol.OpAwaitPush:
		req := new(protocol.AwaitPushReq)
		if err := protocol.DecodeMessage(req, body); err != nil {
			return 0, nil, err
		}
		q, ev, err := s.registerCommand(req.QueueID, req.EventID)
		if err != nil {
			return 0, nil, err
		}
		buf, err := s.node.objects.buffer(req.BufferID)
		if err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		if err := checkRange("await-push", req.Offset, req.Size, buf.size); err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		waits, err := s.resolveWaits(req.WaitEvents, strictWaits)
		if err != nil {
			return 0, nil, s.failCommand(ev, err)
		}
		return s.laneKey(req.QueueID), func() (protocol.Message, error) {
			return s.execAwaitPush(req, q, ev, buf, waits)
		}, nil
	case protocol.OpFinishQueue:
		req := new(protocol.FinishQueueReq)
		if err := protocol.DecodeMessage(req, body); err != nil {
			return 0, nil, err
		}
		q, err := s.node.objects.queue(req.QueueID)
		if err != nil {
			return 0, nil, err
		}
		// Finish rides the queue's lane: by lane order it executes after
		// every previously arrived command on the queue, which is exactly
		// the drain it reports.
		return s.laneKey(req.QueueID), func() (protocol.Message, error) {
			q.execMu.Lock()
			now := q.clock.Now()
			q.execMu.Unlock()
			return &protocol.FinishQueueResp{SimTime: int64(now)}, nil
		}, nil
	case protocol.OpRelease:
		// Inline: see the doc comment above.
		resp, err := s.handleRelease(body)
		return controlLane, func() (protocol.Message, error) { return resp, err }, nil
	default:
		return controlLane, func() (protocol.Message, error) {
			return s.handleControl(op, body)
		}, nil
	}
}

// registerCommand claims a decoded queue command's completion event and
// resolves its target queue — the core of the registration stage for
// enqueue ops. The event is claimed first so that any later registration
// or execution failure can fail it: a pipelined waiter behind a doomed
// command then observes the failure instead of hanging on a placeholder.
func (s *Session) registerCommand(queueID, eventID uint64) (*queueObj, *eventObj, error) {
	ev, err := s.registerEvent(eventID)
	if err != nil {
		return nil, nil, err
	}
	q, err := s.node.objects.queue(queueID)
	if err != nil {
		return nil, nil, s.failCommand(ev, err)
	}
	return q, ev, nil
}

// handleControl dispatches the non-queue ops (the control lane's work).
func (s *Session) handleControl(op protocol.Op, body []byte) (protocol.Message, error) {
	switch op {
	case protocol.OpHello:
		return s.handleHello(body)
	case protocol.OpGetDeviceInfos:
		return s.handleGetDeviceInfos(body)
	case protocol.OpCreateContext:
		return s.handleCreateContext(body)
	case protocol.OpCreateQueue:
		return s.handleCreateQueue(body)
	case protocol.OpCreateBuffer:
		return s.handleCreateBuffer(body)
	case protocol.OpBuildProgram:
		return s.handleBuildProgram(body)
	case protocol.OpCreateKernel:
		return s.handleCreateKernel(body)
	case protocol.OpQueryEvent:
		return s.handleQueryEvent(body)
	case protocol.OpPeerPush:
		return s.handlePeerPush(body)
	case protocol.OpCancelPush:
		return s.handleCancelPush(body)
	case protocol.OpNodeStatus:
		return &protocol.NodeStatusResp{Devices: s.node.Status()}, nil
	case protocol.OpShutdown:
		s.node.shutdown()
		return &protocol.EmptyResp{}, nil
	default:
		return nil, remoteErr(protocol.CodeUnsupported, "unsupported op %s", op)
	}
}

// Close implements the optional transport session-cleanup hook: lanes are
// drained (outstanding commands finish or fail fast through the closed
// channel), then queues the session still owns are released so exclusive
// devices free up when a host disconnects uncleanly.
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		// Unblock wait-list waiters first: a lane draining on Close must
		// never hang on a dependency that died with the connection.
		close(s.closedCh)
		s.laneMu.Lock()
		s.lanesDead = true
		lanes := make([]*lane, 0, len(s.lanes))
		for _, ln := range s.lanes {
			lanes = append(lanes, ln)
		}
		s.laneMu.Unlock()
		for _, ln := range lanes {
			ln.close()
		}
		s.laneWG.Wait()

		// Lanes are drained; no command can touch the peer pool anymore.
		s.closePeers()

		s.mu.Lock()
		queues := s.queues
		s.queues = nil
		s.mu.Unlock()
		for id, q := range queues {
			if _, err := s.node.objects.release(protocol.ObjQueue, id); err == nil {
				s.dropQueueUser(q)
			}
		}
	})
	return nil
}

func (s *Session) user() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.userID == "" {
		return "anonymous"
	}
	return s.userID
}

func (s *Session) handleHello(body []byte) (protocol.Message, error) {
	var req protocol.HelloReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	// Version negotiation: the session runs at the highest version both
	// sides speak. A host newer than the node falls back to the node's
	// version (so a v3 host interoperates with a v2-only node, minus
	// batching); a host older than MinVersion cannot be spoken to at all.
	if req.WireVersion < protocol.MinVersion {
		return nil, remoteErr(protocol.CodeUnsupported,
			"wire version %d unsupported: node speaks %d through %d",
			req.WireVersion, protocol.MinVersion, s.node.wireVersion)
	}
	negotiated := s.node.wireVersion
	if req.WireVersion < negotiated {
		negotiated = req.WireVersion
	}
	// Learn the cluster address book for peer dialing. Our own entry is
	// dropped: a node never pushes to itself.
	var peers map[string]string
	if len(req.Peers) > 0 {
		peers = make(map[string]string, len(req.Peers))
		for _, p := range req.Peers {
			if p.Name != s.node.name {
				peers[p.Name] = p.Addr
			}
		}
	}
	s.mu.Lock()
	prevEpoch := s.epoch
	s.userID = req.UserID
	if peers != nil {
		s.peers = peers
	}
	if req.Epoch > s.epoch {
		s.epoch = req.Epoch
	}
	s.mu.Unlock()
	// A repeat Hello with a bumped epoch is a membership change: pooled
	// peer connections may point at dead incarnations (and sticky dial
	// failures at now-restarted peers), and any parked push rendezvous
	// lost its counterpart — the host re-plans all of it with fresh
	// tokens after this call returns.
	if prevEpoch != 0 && req.Epoch > prevEpoch {
		s.resetPeers()
		s.node.rdv.reset(remoteErr(protocol.CodeNodeLost,
			"node %q: membership changed (epoch %d)", s.node.name, req.Epoch))
	}
	return &protocol.HelloResp{
		NodeName:    s.node.name,
		Devices:     s.node.DeviceInfos(0),
		WireVersion: negotiated,
		BootID:      s.node.bootID,
	}, nil
}

func (s *Session) handleGetDeviceInfos(body []byte) (protocol.Message, error) {
	var req protocol.GetDeviceInfosReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	return &protocol.GetDeviceInfosResp{Devices: s.node.DeviceInfos(req.TypeMask)}, nil
}

func (s *Session) handleCreateContext(body []byte) (protocol.Message, error) {
	var req protocol.CreateContextReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	if len(req.DeviceIDs) == 0 {
		return nil, remoteErr(protocol.CodeBadRequest, "context needs at least one device")
	}
	devs := make([]uint32, 0, len(req.DeviceIDs))
	for _, id := range req.DeviceIDs {
		if _, _, err := s.node.deviceByID(uint32(id)); err != nil {
			return nil, err
		}
		devs = append(devs, uint32(id))
	}
	id := s.node.objects.putContext(&contextObj{
		devices:   devs,
		sessionID: req.SessionID,
		tenant:    req.Tenant,
	})
	return &protocol.ObjectResp{ID: id}, nil
}

func (s *Session) handleCreateQueue(body []byte) (protocol.Message, error) {
	var req protocol.CreateQueueReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	ctx, err := s.node.objects.context(req.ContextID)
	if err != nil {
		return nil, err
	}
	inContext := false
	for _, d := range ctx.devices {
		if d == req.DeviceID {
			inContext = true
			break
		}
	}
	if !inContext {
		return nil, remoteErr(protocol.CodeBadRequest,
			"device %d is not part of context %d", req.DeviceID, req.ContextID)
	}
	dev, stats, err := s.node.deviceByID(req.DeviceID)
	if err != nil {
		return nil, err
	}

	user := s.user()
	stats.mu.Lock()
	if !dev.Info().Shared {
		for other, cnt := range stats.users {
			if other != user && cnt > 0 {
				stats.mu.Unlock()
				return nil, remoteErr(protocol.CodeDeviceBusy,
					"device %d (%s) is exclusive and held by user %q",
					req.DeviceID, dev.Info().Name, other)
			}
		}
	}
	stats.users[user]++
	stats.mu.Unlock()

	q := &queueObj{dev: dev, stats: stats, owner: user, profiling: req.Profiling}
	id := s.node.objects.putQueue(q)
	s.mu.Lock()
	if s.queues == nil {
		s.queues = make(map[uint64]*queueObj)
	}
	s.queues[id] = q
	s.mu.Unlock()
	return &protocol.ObjectResp{ID: id}, nil
}

func (s *Session) dropQueueUser(q *queueObj) {
	q.stats.mu.Lock()
	defer q.stats.mu.Unlock()
	if n := q.stats.users[q.owner]; n <= 1 {
		delete(q.stats.users, q.owner)
	} else {
		q.stats.users[q.owner] = n - 1
	}
}

func (s *Session) handleCreateBuffer(body []byte) (protocol.Message, error) {
	var req protocol.CreateBufferReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	if _, err := s.node.objects.context(req.ContextID); err != nil {
		return nil, err
	}
	if req.Size <= 0 || req.Size > protocol.MaxFrameSize {
		return nil, remoteErr(protocol.CodeBadRequest, "invalid buffer size %d", req.Size)
	}
	id := s.node.objects.putBuffer(&bufferObj{size: req.Size, data: make([]byte, req.Size)})
	return &protocol.ObjectResp{ID: id}, nil
}

func (s *Session) execWriteBuffer(req *protocol.WriteBufferReq, q *queueObj, ev *eventObj, buf *bufferObj, waits []*eventObj) (protocol.Message, error) {
	// Bounds were validated at registration (see prepare).
	deadline, err := s.awaitDeadline(waits)
	if err != nil {
		return nil, s.failCommand(ev, err)
	}

	modelBytes := int64(len(req.Data))
	if req.ModelBytes > 0 {
		modelBytes = req.ModelBytes
	}
	arrival := vtime.Max(vtime.Time(req.SimArrival), deadline)
	dur := q.dev.ModelTransfer(modelBytes)
	q.execMu.Lock()
	start, end := q.clock.Reserve(arrival, dur)
	buf.mu.Lock()
	copy(buf.data[req.Offset:], req.Data)
	buf.mu.Unlock()
	q.execMu.Unlock()

	q.stats.observeTransfer(modelBytes, q.dev.EnergyRate(), dur, end)
	prof := protocol.Profile{
		Queued: req.SimArrival, Submit: int64(arrival), Start: int64(start), End: int64(end),
	}
	ev.complete(prof)
	return &protocol.EventResp{EventID: ev.id, Profile: prof}, nil
}

func (s *Session) execReadBuffer(req *protocol.ReadBufferReq, q *queueObj, ev *eventObj, buf *bufferObj, waits []*eventObj) (protocol.Message, error) {
	// Bounds were validated at registration (see prepare).
	deadline, err := s.awaitDeadline(waits)
	if err != nil {
		return nil, s.failCommand(ev, err)
	}

	modelBytes := req.Size
	if req.ModelBytes > 0 {
		modelBytes = req.ModelBytes
	}
	arrival := vtime.Max(vtime.Time(req.SimArrival), deadline)
	dur := q.dev.ModelTransfer(modelBytes)
	q.execMu.Lock()
	start, end := q.clock.Reserve(arrival, dur)
	out := make([]byte, req.Size)
	buf.mu.RLock()
	copy(out, buf.data[req.Offset:req.Offset+req.Size])
	buf.mu.RUnlock()
	q.execMu.Unlock()

	q.stats.observeTransfer(modelBytes, q.dev.EnergyRate(), dur, end)
	prof := protocol.Profile{
		Queued: req.SimArrival, Submit: int64(arrival), Start: int64(start), End: int64(end),
	}
	ev.complete(prof)
	return &protocol.ReadBufferResp{Data: out, EventID: ev.id, Profile: prof}, nil
}

func (s *Session) execCopyBuffer(req *protocol.CopyBufferReq, q *queueObj, ev *eventObj, src, dst *bufferObj, waits []*eventObj) (protocol.Message, error) {
	// Bounds were validated at registration (see prepare).
	deadline, err := s.awaitDeadline(waits)
	if err != nil {
		return nil, s.failCommand(ev, err)
	}

	dur := q.dev.ModelTransfer(req.Size)
	q.execMu.Lock()
	start, end := q.clock.Reserve(deadline, dur)
	if src == dst {
		src.mu.Lock()
		copy(src.data[req.DstOffset:req.DstOffset+req.Size], src.data[req.SrcOffset:req.SrcOffset+req.Size])
		src.mu.Unlock()
	} else {
		// Lock both buffers in handle order: concurrent lanes may copy in
		// opposite directions (A→B and B→A), and unordered acquisition
		// would deadlock both lanes. The host's own event chaining avoids
		// the conflict, but the node must not rely on client behavior.
		first, second := src, dst
		if req.SrcID > req.DstID {
			first, second = dst, src
		}
		first.mu.Lock()
		//lint:ignore haoclvet/lockorder src and dst share one lock class; the handle comparison above is the deterministic tiebreak
		second.mu.Lock()
		//lint:ignore haoclvet/lockguard dst.mu is held via the handle-ordered first/second aliases locked above
		copy(dst.data[req.DstOffset:req.DstOffset+req.Size], src.data[req.SrcOffset:req.SrcOffset+req.Size])
		second.mu.Unlock()
		first.mu.Unlock()
	}
	q.execMu.Unlock()

	q.stats.observeTransfer(req.Size, q.dev.EnergyRate(), dur, end)
	prof := protocol.Profile{
		Queued: int64(deadline), Submit: int64(deadline), Start: int64(start), End: int64(end),
	}
	ev.complete(prof)
	return &protocol.EventResp{EventID: ev.id, Profile: prof}, nil
}

func (s *Session) handleBuildProgram(body []byte) (protocol.Message, error) {
	var req protocol.BuildProgramReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	ctx, err := s.node.objects.context(req.ContextID)
	if err != nil {
		return nil, err
	}
	prog, err := clc.Parse(req.Source)
	if err != nil {
		return nil, remoteErr(protocol.CodeBuildFailed, "build failed: %v", err)
	}
	// Build against every device in the context, concatenating per-device
	// logs as a vendor toolchain would.
	var log string
	for _, devID := range ctx.devices {
		dev, _, err := s.node.deviceByID(devID)
		if err != nil {
			return nil, err
		}
		devLog, err := dev.CheckProgram(prog)
		log += devLog
		if err != nil {
			return &protocol.BuildProgramResp{Log: log}, remoteErr(protocol.CodeBuildFailed, "%v", err)
		}
	}
	id := s.node.objects.putProgram(&programObj{prog: prog, log: log, source: req.Source})
	return &protocol.BuildProgramResp{ProgramID: id, Log: log, Kernels: prog.KernelNames()}, nil
}

func (s *Session) handleCreateKernel(body []byte) (protocol.Message, error) {
	var req protocol.CreateKernelReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	prog, err := s.node.objects.program(req.ProgramID)
	if err != nil {
		return nil, err
	}
	sig, ok := prog.prog.Kernel(req.Name)
	if !ok {
		return nil, remoteErr(protocol.CodeUnknownObject,
			"program %d has no kernel %q (has %v)", req.ProgramID, req.Name, prog.prog.KernelNames())
	}
	// Resolve the executable implementation from the first device; all
	// node devices share one registry.
	spec, err := s.node.devices[0].Kernels().Lookup(req.Name)
	if err != nil {
		return nil, remoteErr(protocol.CodeBuildFailed, "%v", err)
	}
	id := s.node.objects.putKernel(&kernelObj{name: req.Name, sig: sig, spec: spec})
	return &protocol.ObjectResp{ID: id}, nil
}

// buildLaunchArgs validates wire arguments against the kernel's parsed
// OpenCL C signature and resolves buffer handles to backing storage.
func (s *Session) buildLaunchArgs(k *kernelObj, wire []protocol.KernelArg) ([]kernel.Arg, error) {
	if len(wire) != len(k.sig.Params) {
		return nil, remoteErr(protocol.CodeLaunchFailed,
			"kernel %q takes %d args, got %d", k.name, len(k.sig.Params), len(wire))
	}
	args := make([]kernel.Arg, len(wire))
	for i, wa := range wire {
		param := k.sig.Params[i]
		switch wa.Kind {
		case protocol.ArgBuffer:
			if !param.Pointer || param.Space == clc.SpaceLocal {
				return nil, remoteErr(protocol.CodeLaunchFailed,
					"kernel %q arg %d (%s): buffer bound to non-buffer parameter", k.name, i, param.Name)
			}
			buf, err := s.node.objects.buffer(wa.BufferID)
			if err != nil {
				return nil, err
			}
			//lint:ignore haoclvet/lockguard the slice header is immutable; the bytes it names are ordered by the host's wait edges and the queue's in-order lane, not buf.mu
			args[i] = kernel.BufferArg(buf.data)
		case protocol.ArgScalar:
			if param.Pointer {
				return nil, remoteErr(protocol.CodeLaunchFailed,
					"kernel %q arg %d (%s): scalar bound to pointer parameter", k.name, i, param.Name)
			}
			if want := clc.ScalarSize(param.Type); want != 0 && want != len(wa.Scalar) {
				return nil, remoteErr(protocol.CodeLaunchFailed,
					"kernel %q arg %d (%s): %s wants %d bytes, got %d",
					k.name, i, param.Name, param.Type, want, len(wa.Scalar))
			}
			args[i] = kernel.Arg{Kind: kernel.ArgScalar, Data: wa.Scalar}
		case protocol.ArgLocal:
			if param.Space != clc.SpaceLocal {
				return nil, remoteErr(protocol.CodeLaunchFailed,
					"kernel %q arg %d (%s): local memory bound to non-local parameter", k.name, i, param.Name)
			}
			args[i] = kernel.LocalArg(int(wa.LocalLen))
		default:
			return nil, remoteErr(protocol.CodeBadRequest, "unknown arg kind %d", wa.Kind)
		}
	}
	return args, nil
}

func (s *Session) execEnqueueKernel(req *protocol.EnqueueKernelReq, q *queueObj, ev *eventObj, k *kernelObj, args []kernel.Arg, waits []*eventObj) (protocol.Message, error) {
	deadline, err := s.awaitDeadline(waits)
	if err != nil {
		return nil, s.failCommand(ev, err)
	}

	global := make([]int, len(req.Global))
	for i, g := range req.Global {
		global[i] = int(g)
	}
	local := make([]int, len(req.Local))
	for i, l := range req.Local {
		local[i] = int(l)
	}
	g3, _, err := kernel.NormalizeRange(global, local)
	if err != nil {
		return nil, s.failCommand(ev, remoteErr(protocol.CodeLaunchFailed, "%v", err))
	}

	cost := k.spec.CostOf(g3, args)
	if req.CostFlops > 0 || req.CostBytes > 0 {
		// Cost override models a paper-scale launch: occupancy derating
		// does not apply to the reduced functional NDRange, so Items is
		// left unset (full occupancy assumed at logical scale).
		cost = kernel.Cost{Flops: req.CostFlops, Bytes: req.CostBytes}
	}
	dur := q.dev.ModelKernel(cost)

	arrival := vtime.Max(vtime.Time(req.SimArrival), deadline)
	q.execMu.Lock()
	start, end := q.clock.Reserve(arrival, dur)
	execErr := q.dev.Execute(k.name, kernel.Launch{
		Global: global, Local: local, Args: args, Workers: s.node.execWorkers,
	})
	q.execMu.Unlock()
	if execErr != nil {
		return nil, s.failCommand(ev, remoteErr(protocol.CodeLaunchFailed, "kernel %q: %v", k.name, execErr))
	}

	q.stats.observeKernel(cost.Flops, cost.Bytes, dur, q.dev.EnergyRate(), end)
	prof := protocol.Profile{
		Queued: req.SimArrival, Submit: int64(arrival), Start: int64(start), End: int64(end),
	}
	ev.complete(prof)
	return &protocol.EventResp{EventID: ev.id, Profile: prof}, nil
}

func (s *Session) handleQueryEvent(body []byte) (protocol.Message, error) {
	var req protocol.QueryEventReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	s.mu.Lock()
	e := s.events[req.EventID]
	claimed := e != nil && e.claimed
	s.mu.Unlock()
	if !claimed {
		return nil, remoteErr(protocol.CodeUnknownObject, "unknown event %d", req.EventID)
	}
	select {
	case <-e.done:
		if e.err != nil {
			return nil, remoteErr(errCode(e.err), "event %d failed: %v", req.EventID, e.err)
		}
		return &protocol.QueryEventResp{Complete: true, Profile: e.profile}, nil
	default:
		// The command is still executing on its lane (impossible under the
		// old FIFO, where queries could only arrive after execution).
		return &protocol.QueryEventResp{Complete: false}, nil
	}
}

func (s *Session) handleRelease(body []byte) (protocol.Message, error) {
	var req protocol.ReleaseReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	if req.Kind == protocol.ObjEvent {
		s.mu.Lock()
		e, ok := s.events[req.ID]
		if ok && e.claimed {
			delete(s.events, req.ID)
			s.mu.Unlock()
			return &protocol.EmptyResp{}, nil
		}
		s.mu.Unlock()
		// Unclaimed placeholders (left by wait-list lookups) are not
		// releasable objects; double releases land here too.
		return nil, remoteErr(protocol.CodeUnknownObject, "release: unknown event %d", req.ID)
	}
	q, err := s.node.objects.release(req.Kind, req.ID)
	if err != nil {
		return nil, err
	}
	if q != nil {
		s.dropQueueUser(q)
		s.mu.Lock()
		delete(s.queues, req.ID)
		s.mu.Unlock()
		// The queue's lane dies with it (after draining what was already
		// registered); without this, every create/use/release cycle would
		// leak one parked worker goroutine for the session's lifetime.
		s.closeLane(s.laneKey(req.ID))
	}
	return &protocol.EmptyResp{}, nil
}

// closeLane retires one queue's lane after the queue is released: the
// worker drains the jobs that were registered before the release, then
// exits. The control lane (also the shared lane in single-lane mode) is
// never retired — it serves the whole session.
func (s *Session) closeLane(key uint64) {
	if key == controlLane {
		return
	}
	s.laneMu.Lock()
	ln := s.lanes[key]
	delete(s.lanes, key)
	s.laneMu.Unlock()
	if ln != nil {
		ln.close()
	}
}
