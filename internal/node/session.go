package node

import (
	"sync"

	"github.com/haocl-project/haocl/internal/clc"
	"github.com/haocl-project/haocl/internal/kernel"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/vtime"
)

// Session is the per-connection handler: it parses each forwarded API call,
// executes it, and packages the response (paper §III-D: the daemon
// "receives the commands from the workload scheduler along with additional
// information such as user ID, device ID, shared flag ... and parses them
// for compilation and execution").
type Session struct {
	node *Node

	mu     sync.Mutex
	userID string
	queues map[uint64]*queueObj // queues created by this session
	// events are session-local because their IDs are host-assigned: the
	// pipelining host names each command's completion event up front so a
	// later command's wait list can reference it before the response
	// exists, and those counters are only unique per connection.
	events map[uint64]*eventObj
	// synthEventID assigns IDs for requests that carry none (direct
	// session drivers and tests); the high range keeps them clear of
	// host-assigned counters.
	synthEventID uint64
}

// putEvent registers a completion event under the host-assigned ID, or
// under a synthesized one when the request carried none.
func (s *Session) putEvent(id uint64, e *eventObj) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == 0 {
		s.synthEventID++
		id = 1<<62 + s.synthEventID
	}
	e.id = id
	if s.events == nil {
		s.events = make(map[uint64]*eventObj)
	}
	s.events[id] = e
	return id
}

func (s *Session) event(id uint64) (*eventObj, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.events[id]
	if !ok {
		return nil, remoteErr(protocol.CodeUnknownObject, "unknown event %d", id)
	}
	return e, nil
}

// eventDeadline returns the latest completion instant among the listed
// events, resolving a command's wait-list dependencies. Commands execute
// in connection arrival order, so every referenced event — even one whose
// enqueue has not been answered yet from the host's perspective — has
// already been registered here.
func (s *Session) eventDeadline(ids []int64) (vtime.Time, error) {
	var deadline vtime.Time
	for _, id := range ids {
		e, err := s.event(uint64(id))
		if err != nil {
			return 0, err
		}
		if end := vtime.Time(e.profile.End); end > deadline {
			deadline = end
		}
	}
	return deadline, nil
}

// HandleCall implements transport.Handler.
func (s *Session) HandleCall(op protocol.Op, body []byte) (protocol.Message, error) {
	switch op {
	case protocol.OpHello:
		return s.handleHello(body)
	case protocol.OpGetDeviceInfos:
		return s.handleGetDeviceInfos(body)
	case protocol.OpCreateContext:
		return s.handleCreateContext(body)
	case protocol.OpCreateQueue:
		return s.handleCreateQueue(body)
	case protocol.OpCreateBuffer:
		return s.handleCreateBuffer(body)
	case protocol.OpWriteBuffer:
		return s.handleWriteBuffer(body)
	case protocol.OpReadBuffer:
		return s.handleReadBuffer(body)
	case protocol.OpCopyBuffer:
		return s.handleCopyBuffer(body)
	case protocol.OpBuildProgram:
		return s.handleBuildProgram(body)
	case protocol.OpCreateKernel:
		return s.handleCreateKernel(body)
	case protocol.OpEnqueueKernel:
		return s.handleEnqueueKernel(body)
	case protocol.OpFinishQueue:
		return s.handleFinishQueue(body)
	case protocol.OpQueryEvent:
		return s.handleQueryEvent(body)
	case protocol.OpRelease:
		return s.handleRelease(body)
	case protocol.OpNodeStatus:
		return &protocol.NodeStatusResp{Devices: s.node.Status()}, nil
	case protocol.OpShutdown:
		s.node.shutdown()
		return &protocol.EmptyResp{}, nil
	default:
		return nil, remoteErr(protocol.CodeUnsupported, "unsupported op %s", op)
	}
}

// Close implements the optional transport session-cleanup hook: queues the
// session still owns are released so exclusive devices free up when a host
// disconnects uncleanly.
func (s *Session) Close() error {
	s.mu.Lock()
	queues := s.queues
	s.queues = nil
	s.mu.Unlock()
	for id, q := range queues {
		if _, err := s.node.objects.release(protocol.ObjQueue, id); err == nil {
			s.dropQueueUser(q)
		}
	}
	return nil
}

func (s *Session) user() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.userID == "" {
		return "anonymous"
	}
	return s.userID
}

func (s *Session) handleHello(body []byte) (protocol.Message, error) {
	var req protocol.HelloReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	// Version negotiation: the session runs at the highest version both
	// sides speak. A host newer than the node falls back to the node's
	// version (so a v3 host interoperates with a v2-only node, minus
	// batching); a host older than MinVersion cannot be spoken to at all.
	if req.WireVersion < protocol.MinVersion {
		return nil, remoteErr(protocol.CodeUnsupported,
			"wire version %d unsupported: node speaks %d through %d",
			req.WireVersion, protocol.MinVersion, s.node.wireVersion)
	}
	negotiated := s.node.wireVersion
	if req.WireVersion < negotiated {
		negotiated = req.WireVersion
	}
	s.mu.Lock()
	s.userID = req.UserID
	s.mu.Unlock()
	return &protocol.HelloResp{
		NodeName:    s.node.name,
		Devices:     s.node.DeviceInfos(0),
		WireVersion: negotiated,
	}, nil
}

func (s *Session) handleGetDeviceInfos(body []byte) (protocol.Message, error) {
	var req protocol.GetDeviceInfosReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	return &protocol.GetDeviceInfosResp{Devices: s.node.DeviceInfos(req.TypeMask)}, nil
}

func (s *Session) handleCreateContext(body []byte) (protocol.Message, error) {
	var req protocol.CreateContextReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	if len(req.DeviceIDs) == 0 {
		return nil, remoteErr(protocol.CodeBadRequest, "context needs at least one device")
	}
	devs := make([]uint32, 0, len(req.DeviceIDs))
	for _, id := range req.DeviceIDs {
		if _, _, err := s.node.deviceByID(uint32(id)); err != nil {
			return nil, err
		}
		devs = append(devs, uint32(id))
	}
	id := s.node.objects.putContext(&contextObj{devices: devs})
	return &protocol.ObjectResp{ID: id}, nil
}

func (s *Session) handleCreateQueue(body []byte) (protocol.Message, error) {
	var req protocol.CreateQueueReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	ctx, err := s.node.objects.context(req.ContextID)
	if err != nil {
		return nil, err
	}
	inContext := false
	for _, d := range ctx.devices {
		if d == req.DeviceID {
			inContext = true
			break
		}
	}
	if !inContext {
		return nil, remoteErr(protocol.CodeBadRequest,
			"device %d is not part of context %d", req.DeviceID, req.ContextID)
	}
	dev, stats, err := s.node.deviceByID(req.DeviceID)
	if err != nil {
		return nil, err
	}

	user := s.user()
	stats.mu.Lock()
	if !dev.Info().Shared {
		for other, cnt := range stats.users {
			if other != user && cnt > 0 {
				stats.mu.Unlock()
				return nil, remoteErr(protocol.CodeDeviceBusy,
					"device %d (%s) is exclusive and held by user %q",
					req.DeviceID, dev.Info().Name, other)
			}
		}
	}
	stats.users[user]++
	stats.mu.Unlock()

	q := &queueObj{dev: dev, stats: stats, owner: user, profiling: req.Profiling}
	id := s.node.objects.putQueue(q)
	s.mu.Lock()
	if s.queues == nil {
		s.queues = make(map[uint64]*queueObj)
	}
	s.queues[id] = q
	s.mu.Unlock()
	return &protocol.ObjectResp{ID: id}, nil
}

func (s *Session) dropQueueUser(q *queueObj) {
	q.stats.mu.Lock()
	defer q.stats.mu.Unlock()
	if n := q.stats.users[q.owner]; n <= 1 {
		delete(q.stats.users, q.owner)
	} else {
		q.stats.users[q.owner] = n - 1
	}
}

func (s *Session) handleCreateBuffer(body []byte) (protocol.Message, error) {
	var req protocol.CreateBufferReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	if _, err := s.node.objects.context(req.ContextID); err != nil {
		return nil, err
	}
	if req.Size <= 0 || req.Size > protocol.MaxFrameSize {
		return nil, remoteErr(protocol.CodeBadRequest, "invalid buffer size %d", req.Size)
	}
	id := s.node.objects.putBuffer(&bufferObj{data: make([]byte, req.Size)})
	return &protocol.ObjectResp{ID: id}, nil
}

func (s *Session) handleWriteBuffer(body []byte) (protocol.Message, error) {
	var req protocol.WriteBufferReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	q, err := s.node.objects.queue(req.QueueID)
	if err != nil {
		return nil, err
	}
	buf, err := s.node.objects.buffer(req.BufferID)
	if err != nil {
		return nil, err
	}
	deadline, err := s.eventDeadline(req.WaitEvents)
	if err != nil {
		return nil, err
	}
	if req.Offset < 0 || req.Offset+int64(len(req.Data)) > int64(len(buf.data)) {
		return nil, remoteErr(protocol.CodeBadRequest,
			"write [%d,%d) out of bounds for buffer of %d bytes",
			req.Offset, req.Offset+int64(len(req.Data)), len(buf.data))
	}

	modelBytes := int64(len(req.Data))
	if req.ModelBytes > 0 {
		modelBytes = req.ModelBytes
	}
	arrival := vtime.Max(vtime.Time(req.SimArrival), deadline)
	dur := q.dev.ModelTransfer(modelBytes)
	q.execMu.Lock()
	start, end := q.clock.Reserve(arrival, dur)
	buf.mu.Lock()
	copy(buf.data[req.Offset:], req.Data)
	buf.mu.Unlock()
	q.execMu.Unlock()

	q.stats.observeTransfer(modelBytes, q.dev.EnergyRate(), dur, end)
	prof := protocol.Profile{
		Queued: req.SimArrival, Submit: int64(start), Start: int64(start), End: int64(end),
	}
	evID := s.putEvent(req.EventID, &eventObj{profile: prof})
	return &protocol.EventResp{EventID: evID, Profile: prof}, nil
}

func (s *Session) handleReadBuffer(body []byte) (protocol.Message, error) {
	var req protocol.ReadBufferReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	q, err := s.node.objects.queue(req.QueueID)
	if err != nil {
		return nil, err
	}
	buf, err := s.node.objects.buffer(req.BufferID)
	if err != nil {
		return nil, err
	}
	deadline, err := s.eventDeadline(req.WaitEvents)
	if err != nil {
		return nil, err
	}
	if req.Offset < 0 || req.Size < 0 || req.Offset+req.Size > int64(len(buf.data)) {
		return nil, remoteErr(protocol.CodeBadRequest,
			"read [%d,%d) out of bounds for buffer of %d bytes",
			req.Offset, req.Offset+req.Size, len(buf.data))
	}

	modelBytes := req.Size
	if req.ModelBytes > 0 {
		modelBytes = req.ModelBytes
	}
	arrival := vtime.Max(vtime.Time(req.SimArrival), deadline)
	dur := q.dev.ModelTransfer(modelBytes)
	q.execMu.Lock()
	start, end := q.clock.Reserve(arrival, dur)
	out := make([]byte, req.Size)
	buf.mu.RLock()
	copy(out, buf.data[req.Offset:req.Offset+req.Size])
	buf.mu.RUnlock()
	q.execMu.Unlock()

	q.stats.observeTransfer(modelBytes, q.dev.EnergyRate(), dur, end)
	prof := protocol.Profile{
		Queued: req.SimArrival, Submit: int64(start), Start: int64(start), End: int64(end),
	}
	evID := s.putEvent(req.EventID, &eventObj{profile: prof})
	return &protocol.ReadBufferResp{Data: out, EventID: evID, Profile: prof}, nil
}

func (s *Session) handleCopyBuffer(body []byte) (protocol.Message, error) {
	var req protocol.CopyBufferReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	q, err := s.node.objects.queue(req.QueueID)
	if err != nil {
		return nil, err
	}
	src, err := s.node.objects.buffer(req.SrcID)
	if err != nil {
		return nil, err
	}
	dst, err := s.node.objects.buffer(req.DstID)
	if err != nil {
		return nil, err
	}
	deadline, err := s.eventDeadline(req.WaitEvents)
	if err != nil {
		return nil, err
	}
	if req.Size < 0 ||
		req.SrcOffset < 0 || req.SrcOffset+req.Size > int64(len(src.data)) ||
		req.DstOffset < 0 || req.DstOffset+req.Size > int64(len(dst.data)) {
		return nil, remoteErr(protocol.CodeBadRequest, "copy range out of bounds")
	}

	dur := q.dev.ModelTransfer(req.Size)
	q.execMu.Lock()
	start, end := q.clock.Reserve(deadline, dur)
	if src == dst {
		src.mu.Lock()
		copy(dst.data[req.DstOffset:req.DstOffset+req.Size], src.data[req.SrcOffset:req.SrcOffset+req.Size])
		src.mu.Unlock()
	} else {
		src.mu.RLock()
		dst.mu.Lock()
		copy(dst.data[req.DstOffset:req.DstOffset+req.Size], src.data[req.SrcOffset:req.SrcOffset+req.Size])
		dst.mu.Unlock()
		src.mu.RUnlock()
	}
	q.execMu.Unlock()

	q.stats.observeTransfer(req.Size, q.dev.EnergyRate(), dur, end)
	prof := protocol.Profile{
		Queued: int64(deadline), Submit: int64(start), Start: int64(start), End: int64(end),
	}
	evID := s.putEvent(req.EventID, &eventObj{profile: prof})
	return &protocol.EventResp{EventID: evID, Profile: prof}, nil
}

func (s *Session) handleBuildProgram(body []byte) (protocol.Message, error) {
	var req protocol.BuildProgramReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	ctx, err := s.node.objects.context(req.ContextID)
	if err != nil {
		return nil, err
	}
	prog, err := clc.Parse(req.Source)
	if err != nil {
		return nil, remoteErr(protocol.CodeBuildFailed, "build failed: %v", err)
	}
	// Build against every device in the context, concatenating per-device
	// logs as a vendor toolchain would.
	var log string
	for _, devID := range ctx.devices {
		dev, _, err := s.node.deviceByID(devID)
		if err != nil {
			return nil, err
		}
		devLog, err := dev.CheckProgram(prog)
		log += devLog
		if err != nil {
			return &protocol.BuildProgramResp{Log: log}, remoteErr(protocol.CodeBuildFailed, "%v", err)
		}
	}
	id := s.node.objects.putProgram(&programObj{prog: prog, log: log, source: req.Source})
	return &protocol.BuildProgramResp{ProgramID: id, Log: log, Kernels: prog.KernelNames()}, nil
}

func (s *Session) handleCreateKernel(body []byte) (protocol.Message, error) {
	var req protocol.CreateKernelReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	prog, err := s.node.objects.program(req.ProgramID)
	if err != nil {
		return nil, err
	}
	sig, ok := prog.prog.Kernel(req.Name)
	if !ok {
		return nil, remoteErr(protocol.CodeUnknownObject,
			"program %d has no kernel %q (has %v)", req.ProgramID, req.Name, prog.prog.KernelNames())
	}
	// Resolve the executable implementation from the first device; all
	// node devices share one registry.
	spec, err := s.node.devices[0].Kernels().Lookup(req.Name)
	if err != nil {
		return nil, remoteErr(protocol.CodeBuildFailed, "%v", err)
	}
	id := s.node.objects.putKernel(&kernelObj{name: req.Name, sig: sig, spec: spec})
	return &protocol.ObjectResp{ID: id}, nil
}

// buildLaunchArgs validates wire arguments against the kernel's parsed
// OpenCL C signature and resolves buffer handles to backing storage.
func (s *Session) buildLaunchArgs(k *kernelObj, wire []protocol.KernelArg) ([]kernel.Arg, error) {
	if len(wire) != len(k.sig.Params) {
		return nil, remoteErr(protocol.CodeLaunchFailed,
			"kernel %q takes %d args, got %d", k.name, len(k.sig.Params), len(wire))
	}
	args := make([]kernel.Arg, len(wire))
	for i, wa := range wire {
		param := k.sig.Params[i]
		switch wa.Kind {
		case protocol.ArgBuffer:
			if !param.Pointer || param.Space == clc.SpaceLocal {
				return nil, remoteErr(protocol.CodeLaunchFailed,
					"kernel %q arg %d (%s): buffer bound to non-buffer parameter", k.name, i, param.Name)
			}
			buf, err := s.node.objects.buffer(wa.BufferID)
			if err != nil {
				return nil, err
			}
			args[i] = kernel.BufferArg(buf.data)
		case protocol.ArgScalar:
			if param.Pointer {
				return nil, remoteErr(protocol.CodeLaunchFailed,
					"kernel %q arg %d (%s): scalar bound to pointer parameter", k.name, i, param.Name)
			}
			if want := clc.ScalarSize(param.Type); want != 0 && want != len(wa.Scalar) {
				return nil, remoteErr(protocol.CodeLaunchFailed,
					"kernel %q arg %d (%s): %s wants %d bytes, got %d",
					k.name, i, param.Name, param.Type, want, len(wa.Scalar))
			}
			args[i] = kernel.Arg{Kind: kernel.ArgScalar, Data: wa.Scalar}
		case protocol.ArgLocal:
			if param.Space != clc.SpaceLocal {
				return nil, remoteErr(protocol.CodeLaunchFailed,
					"kernel %q arg %d (%s): local memory bound to non-local parameter", k.name, i, param.Name)
			}
			args[i] = kernel.LocalArg(int(wa.LocalLen))
		default:
			return nil, remoteErr(protocol.CodeBadRequest, "unknown arg kind %d", wa.Kind)
		}
	}
	return args, nil
}

func (s *Session) handleEnqueueKernel(body []byte) (protocol.Message, error) {
	var req protocol.EnqueueKernelReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	q, err := s.node.objects.queue(req.QueueID)
	if err != nil {
		return nil, err
	}
	k, err := s.node.objects.kernel(req.KernelID)
	if err != nil {
		return nil, err
	}
	deadline, err := s.eventDeadline(req.WaitEvents)
	if err != nil {
		return nil, err
	}
	args, err := s.buildLaunchArgs(k, req.Args)
	if err != nil {
		return nil, err
	}

	global := make([]int, len(req.Global))
	for i, g := range req.Global {
		global[i] = int(g)
	}
	local := make([]int, len(req.Local))
	for i, l := range req.Local {
		local[i] = int(l)
	}
	g3, _, err := kernel.NormalizeRange(global, local)
	if err != nil {
		return nil, remoteErr(protocol.CodeLaunchFailed, "%v", err)
	}

	cost := k.spec.CostOf(g3, args)
	if req.CostFlops > 0 || req.CostBytes > 0 {
		// Cost override models a paper-scale launch: occupancy derating
		// does not apply to the reduced functional NDRange, so Items is
		// left unset (full occupancy assumed at logical scale).
		cost = kernel.Cost{Flops: req.CostFlops, Bytes: req.CostBytes}
	}
	dur := q.dev.ModelKernel(cost)

	arrival := vtime.Max(vtime.Time(req.SimArrival), deadline)
	q.execMu.Lock()
	start, end := q.clock.Reserve(arrival, dur)
	execErr := q.dev.Execute(k.name, kernel.Launch{
		Global: global, Local: local, Args: args, Workers: s.node.execWorkers,
	})
	q.execMu.Unlock()
	if execErr != nil {
		return nil, remoteErr(protocol.CodeLaunchFailed, "kernel %q: %v", k.name, execErr)
	}

	q.stats.observeKernel(cost.Flops, cost.Bytes, dur, q.dev.EnergyRate(), end)
	prof := protocol.Profile{
		Queued: req.SimArrival, Submit: int64(start), Start: int64(start), End: int64(end),
	}
	evID := s.putEvent(req.EventID, &eventObj{profile: prof})
	return &protocol.EventResp{EventID: evID, Profile: prof}, nil
}

func (s *Session) handleFinishQueue(body []byte) (protocol.Message, error) {
	var req protocol.FinishQueueReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	q, err := s.node.objects.queue(req.QueueID)
	if err != nil {
		return nil, err
	}
	// Execution is synchronous under execMu, so taking it proves the
	// queue has drained; the clock frontier is the completion instant.
	q.execMu.Lock()
	now := q.clock.Now()
	q.execMu.Unlock()
	return &protocol.FinishQueueResp{SimTime: int64(now)}, nil
}

func (s *Session) handleQueryEvent(body []byte) (protocol.Message, error) {
	var req protocol.QueryEventReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	e, err := s.event(req.EventID)
	if err != nil {
		return nil, err
	}
	return &protocol.QueryEventResp{Complete: true, Profile: e.profile}, nil
}

func (s *Session) handleRelease(body []byte) (protocol.Message, error) {
	var req protocol.ReleaseReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	if req.Kind == protocol.ObjEvent {
		s.mu.Lock()
		_, ok := s.events[req.ID]
		if ok {
			delete(s.events, req.ID)
		}
		s.mu.Unlock()
		if !ok {
			return nil, remoteErr(protocol.CodeUnknownObject, "release: unknown event %d", req.ID)
		}
		return &protocol.EmptyResp{}, nil
	}
	q, err := s.node.objects.release(req.Kind, req.ID)
	if err != nil {
		return nil, err
	}
	if q != nil {
		s.dropQueueUser(q)
		s.mu.Lock()
		delete(s.queues, req.ID)
		s.mu.Unlock()
	}
	return &protocol.EmptyResp{}, nil
}
