package node

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/kernel"
	"github.com/haocl-project/haocl/internal/mem"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/sim"
)

// These tests drive the session through its asynchronous interface — the
// same entry point the transport uses — to pin down the lane dispatch
// semantics of DESIGN.md §4: registration in arrival order, per-queue
// execution order, cross-queue waits as real synchronization edges, and
// lane drain on Close. Run them with -race; that is half their value.

// asyncResult is one completed async call.
type asyncResult struct {
	msg protocol.Message
	err error
}

// goCall submits one request through the async path and returns the
// channel its completion lands on.
func goCall(s *Session, req protocol.Message) <-chan asyncResult {
	ch := make(chan asyncResult, 1)
	s.HandleCallAsync(req.Op(), protocol.EncodeMessage(req), func(m protocol.Message, err error) {
		ch <- asyncResult{m, err}
	})
	return ch
}

// mustEvent waits for an async completion and returns its EventResp.
func mustEvent(t *testing.T, ch <-chan asyncResult) *protocol.EventResp {
	t.Helper()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("async call failed: %v", r.err)
		}
		resp, ok := r.msg.(*protocol.EventResp)
		if !ok {
			t.Fatalf("response is %T, want *EventResp", r.msg)
		}
		return resp
	case <-time.After(5 * time.Second):
		t.Fatal("async call hung")
		return nil
	}
}

// twoQueueSession builds a session on a two-GPU node with one queue per
// device and one buffer per queue.
func twoQueueSession(t *testing.T) (s *Session, q1, q2, buf1, buf2 uint64) {
	t.Helper()
	n := testNode(t,
		device.Config{Driver: sim.DriverGPU, ID: 1, Shared: true},
		device.Config{Driver: sim.DriverGPU, ID: 2, Shared: true},
	)
	s = openSession(t, n, "lanes")
	ctx := call(t, s, &protocol.CreateContextReq{DeviceIDs: []int64{1, 2}}, &protocol.ObjectResp{})
	qa := call(t, s, &protocol.CreateQueueReq{ContextID: ctx.ID, DeviceID: 1}, &protocol.ObjectResp{})
	qb := call(t, s, &protocol.CreateQueueReq{ContextID: ctx.ID, DeviceID: 2}, &protocol.ObjectResp{})
	ba := call(t, s, &protocol.CreateBufferReq{ContextID: ctx.ID, Size: 64}, &protocol.ObjectResp{})
	bb := call(t, s, &protocol.CreateBufferReq{ContextID: ctx.ID, Size: 64}, &protocol.ObjectResp{})
	return s, qa.ID, qb.ID, ba.ID, bb.ID
}

// TestLaneCrossQueueWaitBlocks is the heart of the lane model: a command
// whose wait list references an event that has not even been *registered*
// yet must block on its lane — not error — and resolve once the creating
// command arrives on another queue and completes there. Under the old
// FIFO dispatch this situation was impossible by construction; under
// lanes it is the synchronization edge that keeps cross-queue dependency
// semantics intact.
func TestLaneCrossQueueWaitBlocks(t *testing.T) {
	s, q1, q2, buf1, buf2 := twoQueueSession(t)
	defer s.Close()
	data := mem.F32Bytes([]float32{1, 2, 3, 4})

	waiter := goCall(s, &protocol.WriteBufferReq{
		QueueID: q2, BufferID: buf2, Data: data,
		EventID: 200, WaitEvents: []int64{100},
	})
	select {
	case r := <-waiter:
		t.Fatalf("waiter completed before its dependency existed: %+v, %v", r.msg, r.err)
	case <-time.After(50 * time.Millisecond):
	}

	// The waiter's own event is registered (arrival order) but incomplete.
	q := call(t, s, &protocol.QueryEventReq{EventID: 200}, &protocol.QueryEventResp{})
	if q.Complete {
		t.Fatal("blocked command's event reported complete")
	}

	// The creating command arrives later, on the other queue, with a late
	// arrival instant the waiter must inherit.
	creator := mustEvent(t, goCall(s, &protocol.WriteBufferReq{
		QueueID: q1, BufferID: buf1, Data: data,
		EventID: 100, SimArrival: 500_000,
	}))
	got := mustEvent(t, waiter)
	if got.Profile.Start < creator.Profile.End {
		t.Fatalf("waiter started at %d, before its dependency completed at %d",
			got.Profile.Start, creator.Profile.End)
	}
}

// TestLanePerQueueOrdering pipelines a burst at one queue and checks the
// lane executes and completes it strictly in arrival order, with
// back-to-back device reservations.
func TestLanePerQueueOrdering(t *testing.T) {
	s, q1, _, buf1, _ := twoQueueSession(t)
	defer s.Close()
	data := mem.F32Bytes([]float32{1, 2, 3, 4})

	const burst = 32
	var mu sync.Mutex
	var order []uint64
	chans := make([]<-chan asyncResult, burst)
	for i := 0; i < burst; i++ {
		id := uint64(i + 1)
		ch := make(chan asyncResult, 1)
		s.HandleCallAsync(protocol.OpWriteBuffer, protocol.EncodeMessage(&protocol.WriteBufferReq{
			QueueID: q1, BufferID: buf1, Data: data, EventID: id,
		}), func(m protocol.Message, err error) {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			ch <- asyncResult{m, err}
		})
		chans[i] = ch
	}
	var lastEnd int64
	for i, ch := range chans {
		resp := mustEvent(t, ch)
		if resp.Profile.Start < lastEnd {
			t.Fatalf("command %d reserved [%d,...) before predecessor's end %d",
				i, resp.Profile.Start, lastEnd)
		}
		lastEnd = resp.Profile.End
	}
	mu.Lock()
	defer mu.Unlock()
	for i, id := range order {
		if id != uint64(i+1) {
			t.Fatalf("lane completion order broken at %d: event %d", i, id)
		}
	}
}

// TestLaneConcurrentQueues interleaves two queues' bursts and verifies
// both make progress with per-queue order preserved while commands from
// the other queue are in flight.
func TestLaneConcurrentQueues(t *testing.T) {
	s, q1, q2, buf1, buf2 := twoQueueSession(t)
	defer s.Close()
	data := mem.F32Bytes([]float32{9, 9, 9, 9})

	const per = 16
	type stream struct {
		queue, buf uint64
		chans      []<-chan asyncResult
	}
	streams := []*stream{{queue: q1, buf: buf1}, {queue: q2, buf: buf2}}
	var next uint64
	for i := 0; i < per; i++ {
		for _, st := range streams {
			next++
			st.chans = append(st.chans, goCall(s, &protocol.WriteBufferReq{
				QueueID: st.queue, BufferID: st.buf, Data: data, EventID: next,
			}))
		}
	}
	for _, st := range streams {
		var lastEnd int64
		for i, ch := range st.chans {
			resp := mustEvent(t, ch)
			if resp.Profile.Start < lastEnd {
				t.Fatalf("queue %d command %d out of order", st.queue, i)
			}
			lastEnd = resp.Profile.End
		}
	}
}

// TestLaneDrainOnClose closes a session with commands queued on several
// lanes, including one parked on a dependency that will never arrive:
// every completion callback must fire before Close returns, the parked
// command must fail rather than hang, and post-Close submissions must be
// refused.
func TestLaneDrainOnClose(t *testing.T) {
	s, q1, q2, buf1, buf2 := twoQueueSession(t)
	data := mem.F32Bytes([]float32{5, 6, 7, 8})

	var completed atomic.Int64
	const burst = 10
	for i := 0; i < burst; i++ {
		st := []struct{ q, b uint64 }{{q1, buf1}, {q2, buf2}}[i%2]
		s.HandleCallAsync(protocol.OpWriteBuffer, protocol.EncodeMessage(&protocol.WriteBufferReq{
			QueueID: st.q, BufferID: st.b, Data: data, EventID: uint64(i + 1),
		}), func(protocol.Message, error) { completed.Add(1) })
	}
	// Parked forever: event 9999 has no creating command.
	parked := goCall(s, &protocol.WriteBufferReq{
		QueueID: q1, BufferID: buf1, Data: data, EventID: 500, WaitEvents: []int64{9999},
	})

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := completed.Load(); got != burst {
		t.Fatalf("Close returned with %d/%d lane jobs completed", got, burst)
	}
	select {
	case r := <-parked:
		if r.err == nil {
			t.Fatal("parked command succeeded after Close")
		}
	default:
		t.Fatal("parked command still hanging after Close")
	}

	refused := goCall(s, &protocol.WriteBufferReq{
		QueueID: q1, BufferID: buf1, Data: data, EventID: 501,
	})
	if r := <-refused; r.err == nil {
		t.Fatal("submission accepted after Close")
	}
}

// TestEventReleaseBehindPipelinedWaiter pins the registration-time
// resolution of wait lists: a fire-and-forget event Release arriving on
// the wire *behind* a command that waits on the event must not orphan the
// waiter. The waiter resolved its dependency record at registration, so
// the release only drops the table entry.
func TestEventReleaseBehindPipelinedWaiter(t *testing.T) {
	s, q1, q2, buf1, buf2 := twoQueueSession(t)
	defer s.Close()
	data := mem.F32Bytes([]float32{1, 2, 3, 4})

	// Park q2's lane on a dependency that arrives last.
	parked := goCall(s, &protocol.WriteBufferReq{
		QueueID: q2, BufferID: buf2, Data: data, EventID: 300, WaitEvents: []int64{999},
	})
	// Creator completes on q1; the waiter queues on q2 behind the parked
	// command; the release then arrives and deletes the table entry.
	creator := mustEvent(t, goCall(s, &protocol.WriteBufferReq{
		QueueID: q1, BufferID: buf1, Data: data, EventID: 100, SimArrival: 400_000,
	}))
	waiter := goCall(s, &protocol.WriteBufferReq{
		QueueID: q2, BufferID: buf2, Data: data, EventID: 301, WaitEvents: []int64{100},
	})
	relCh := goCall(s, &protocol.ReleaseReq{Kind: protocol.ObjEvent, ID: 100})
	// Unpark q2 by finally creating event 999.
	mustEvent(t, goCall(s, &protocol.WriteBufferReq{
		QueueID: q1, BufferID: buf1, Data: data, EventID: 999,
	}))
	mustEvent(t, parked)
	got := mustEvent(t, waiter)
	if got.Profile.Start < creator.Profile.End {
		t.Fatalf("waiter ignored its released-but-held dependency: %d < %d",
			got.Profile.Start, creator.Profile.End)
	}
	if r := <-relCh; r.err != nil {
		t.Fatalf("release failed: %v", r.err)
	}
}

// TestQueueReleaseRetiresLane pins the lane lifecycle: releasing a queue
// closes and removes its lane, so create/use/release cycles do not
// accumulate parked worker goroutines for the session's lifetime.
func TestQueueReleaseRetiresLane(t *testing.T) {
	s, q1, _, buf1, _ := twoQueueSession(t)
	defer s.Close()
	data := mem.F32Bytes([]float32{1, 2, 3, 4})

	mustEvent(t, goCall(s, &protocol.WriteBufferReq{
		QueueID: q1, BufferID: buf1, Data: data, EventID: 1,
	}))
	s.laneMu.Lock()
	_, present := s.lanes[q1]
	s.laneMu.Unlock()
	if !present {
		t.Fatal("lane never created for active queue")
	}
	if r := <-goCall(s, &protocol.ReleaseReq{Kind: protocol.ObjQueue, ID: q1}); r.err != nil {
		t.Fatal(r.err)
	}
	s.laneMu.Lock()
	_, present = s.lanes[q1]
	s.laneMu.Unlock()
	if present {
		t.Fatal("released queue's lane still registered")
	}
}

// TestWaitListIDValidation is the regression test for the wait-list cast
// bug: zero and negative IDs used to wrap through uint64 and surface as a
// misleading "unknown event"; they are bad requests. Host-assigned IDs in
// the synthetic range, which would silently collide with node-assigned
// counters, are rejected the same way, as are duplicate claims.
func TestWaitListIDValidation(t *testing.T) {
	n := testNode(t)
	s := openSession(t, n, "alice")
	ctxID, queueID, _ := buildPipeline(t, s)
	buf := call(t, s, &protocol.CreateBufferReq{ContextID: ctxID, Size: 64}, &protocol.ObjectResp{})
	data := mem.F32Bytes([]float32{1})

	callErr(t, s, &protocol.WriteBufferReq{
		QueueID: queueID, BufferID: buf.ID, Data: data, WaitEvents: []int64{-1},
	}, protocol.CodeBadRequest)
	callErr(t, s, &protocol.WriteBufferReq{
		QueueID: queueID, BufferID: buf.ID, Data: data, WaitEvents: []int64{0},
	}, protocol.CodeBadRequest)
	callErr(t, s, &protocol.WriteBufferReq{
		QueueID: queueID, BufferID: buf.ID, Data: data, EventID: 1<<62 + 7,
	}, protocol.CodeBadRequest)

	call(t, s, &protocol.WriteBufferReq{
		QueueID: queueID, BufferID: buf.ID, Data: data, EventID: 55,
	}, &protocol.EventResp{})
	callErr(t, s, &protocol.WriteBufferReq{
		QueueID: queueID, BufferID: buf.ID, Data: data, EventID: 55,
	}, protocol.CodeBadRequest)

	// The synchronous path resolves wait lists strictly: an ID nothing has
	// registered is the pre-lane "unknown event" error, not a parked
	// goroutine (only the async lane path may block on future arrivals).
	callErr(t, s, &protocol.WriteBufferReq{
		QueueID: queueID, BufferID: buf.ID, Data: data, WaitEvents: []int64{777},
	}, protocol.CodeUnknownObject)
}

// TestFailedDependencyCascades checks that a command whose creating
// command failed observes the failure through the wait list instead of
// hanging on an event that will never complete (the old FIFO reported a
// misleading "unknown event" here).
func TestFailedDependencyCascades(t *testing.T) {
	n := testNode(t)
	s := openSession(t, n, "alice")
	ctxID, queueID, _ := buildPipeline(t, s)
	buf := call(t, s, &protocol.CreateBufferReq{ContextID: ctxID, Size: 16}, &protocol.ObjectResp{})

	// Out-of-bounds write: fails, but its host-assigned event must fail
	// with it.
	callErr(t, s, &protocol.WriteBufferReq{
		QueueID: queueID, BufferID: buf.ID, Offset: 12, Data: make([]byte, 8), EventID: 7,
	}, protocol.CodeBadRequest)

	_, err := s.HandleCall(protocol.OpWriteBuffer, protocol.EncodeMessage(&protocol.WriteBufferReq{
		QueueID: queueID, BufferID: buf.ID, Data: make([]byte, 8), WaitEvents: []int64{7},
	}))
	if err == nil {
		t.Fatal("wait on failed event succeeded")
	}
	if !strings.Contains(err.Error(), "wait event 7") {
		t.Fatalf("cascade error does not name the failed dependency: %v", err)
	}
}

// TestSingleLaneMode pins the SingleLane escape hatch: everything lands on
// one lane, so a cross-queue waiter queued behind its not-yet-arrived
// creator would deadlock — which is exactly why single-lane nodes are only
// the benchmark baseline. Here we just verify commands on two queues
// execute and per-queue results match the per-queue-lane configuration.
func TestSingleLaneMode(t *testing.T) {
	icd := device.NewICD()
	sim.RegisterDrivers(icd, kernel.NewRegistry())
	n, err := New(Options{
		Name: "single-lane",
		Devices: []device.Config{
			{Driver: sim.DriverGPU, ID: 1, Shared: true},
			{Driver: sim.DriverGPU, ID: 2, Shared: true},
		},
		ICD: icd, ExecWorkers: 1, SingleLane: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := n.NewSession().(*Session)
	call(t, s, &protocol.HelloReq{UserID: "single", WireVersion: protocol.Version}, &protocol.HelloResp{})
	defer s.Close()
	ctx := call(t, s, &protocol.CreateContextReq{DeviceIDs: []int64{1, 2}}, &protocol.ObjectResp{})
	qa := call(t, s, &protocol.CreateQueueReq{ContextID: ctx.ID, DeviceID: 1}, &protocol.ObjectResp{})
	qb := call(t, s, &protocol.CreateQueueReq{ContextID: ctx.ID, DeviceID: 2}, &protocol.ObjectResp{})
	ba := call(t, s, &protocol.CreateBufferReq{ContextID: ctx.ID, Size: 16}, &protocol.ObjectResp{})
	bb := call(t, s, &protocol.CreateBufferReq{ContextID: ctx.ID, Size: 16}, &protocol.ObjectResp{})
	data := mem.F32Bytes([]float32{1, 2, 3, 4})

	a := mustEvent(t, goCall(s, &protocol.WriteBufferReq{QueueID: qa.ID, BufferID: ba.ID, Data: data, EventID: 1}))
	b := mustEvent(t, goCall(s, &protocol.WriteBufferReq{QueueID: qb.ID, BufferID: bb.ID, Data: data, EventID: 2, WaitEvents: []int64{1}}))
	if b.Profile.Start < a.Profile.End {
		t.Fatalf("cross-queue wait ignored in single-lane mode: %d < %d", b.Profile.Start, a.Profile.End)
	}
}
