package node

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/kernel"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/sim"
	"github.com/haocl-project/haocl/internal/transport"
)

// These tests pin down the peer-to-peer data plane's session lifecycle
// (DESIGN.md §6): lazy peer dialing with sticky failures, the PushRange/
// AwaitPush rendezvous, cancel-driven failure cascades, and peer-pool
// teardown on Close. Like the lane tests they go through the async
// interface and are meant to run under -race.

// servePeerNode builds a one-GPU node named name, registers its server on
// the in-process network under "mem://"+name, and wires the same network
// in as the node's peer dialer.
func servePeerNode(t *testing.T, net *transport.MemNetwork, name string) *Node {
	t.Helper()
	icd := device.NewICD()
	sim.RegisterDrivers(icd, kernel.NewRegistry())
	n, err := New(Options{
		Name:        name,
		Devices:     []device.Config{{Driver: sim.DriverGPU, ID: 1, Shared: true}},
		ICD:         icd,
		ExecWorkers: 1,
		Dialer:      net,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := n.Serve()
	addr := "mem://" + name
	if err := net.Register(addr, srv); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		net.Unregister(addr)
		srv.Close()
	})
	return n
}

// openPeerSession opens a host session on n whose Hello carries the given
// address book, then builds one queue and one 64-byte buffer.
func openPeerSession(t *testing.T, n *Node, peers []protocol.PeerAddr) (s *Session, queueID, bufID uint64) {
	t.Helper()
	s = n.NewSession().(*Session)
	call(t, s, &protocol.HelloReq{
		UserID: "peer-test", WireVersion: protocol.Version, Peers: peers,
	}, &protocol.HelloResp{})
	ctx := call(t, s, &protocol.CreateContextReq{DeviceIDs: []int64{1}}, &protocol.ObjectResp{})
	q := call(t, s, &protocol.CreateQueueReq{ContextID: ctx.ID, DeviceID: 1}, &protocol.ObjectResp{})
	b := call(t, s, &protocol.CreateBufferReq{ContextID: ctx.ID, Size: 64}, &protocol.ObjectResp{})
	return s, q.ID, b.ID
}

// mustFail waits for an async completion and returns its error, failing
// the test if the call hung or succeeded.
func mustFail(t *testing.T, ch <-chan asyncResult) error {
	t.Helper()
	select {
	case r := <-ch:
		if r.err == nil {
			t.Fatalf("call succeeded (%+v), want failure", r.msg)
		}
		return r.err
	case <-time.After(5 * time.Second):
		t.Fatal("failing call hung instead of erroring")
		return nil
	}
}

// wantCode asserts err is a RemoteError with the given code.
func wantCode(t *testing.T, err error, code uint32) {
	t.Helper()
	var re *protocol.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not remote", err)
	}
	if re.Code != code {
		t.Fatalf("code = %d, want %d (%v)", re.Code, code, re)
	}
}

// TestPeerPushDeliversRange is the happy path: a PushRange on the source
// node dials the peer lazily, deposits the payload, and the destination's
// AwaitPush lands it in the target replica no earlier than the payload's
// virtual arrival.
func TestPeerPushDeliversRange(t *testing.T) {
	net := transport.NewMemNetwork()
	nA := servePeerNode(t, net, "alpha")
	nB := servePeerNode(t, net, "beta")
	book := []protocol.PeerAddr{
		{Name: "alpha", Addr: "mem://alpha"},
		{Name: "beta", Addr: "mem://beta"},
	}
	sA, qA, bufA := openPeerSession(t, nA, book)
	defer sA.Close()
	sB, qB, bufB := openPeerSession(t, nB, book)
	defer sB.Close()

	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i*5 + 3)
	}
	write := mustEvent(t, goCall(sA, &protocol.WriteBufferReq{
		QueueID: qA, BufferID: bufA, Data: data, EventID: 1,
	}))

	// The awaiter parks first — the rendezvous must pair it with the
	// deposit regardless of arrival order.
	awaitCh := goCall(sB, &protocol.AwaitPushReq{
		QueueID: qB, BufferID: bufB, Token: 42, Offset: 0, Size: 64,
		SimArrival: 1_000, EventID: 1,
	})
	push := mustEvent(t, goCall(sA, &protocol.PushRangeReq{
		QueueID: qA, BufferID: bufA, PeerName: "beta", PeerBufferID: bufB,
		Token: 42, Offset: 0, Size: 64, SimArrival: 1_000, EventID: 2,
		WaitEvents: []int64{1},
	}))
	if push.Profile.Start < write.Profile.End {
		t.Fatalf("push departed at %d, before its dependency completed at %d",
			push.Profile.Start, write.Profile.End)
	}
	await := mustEvent(t, awaitCh)
	if await.Profile.Start < push.Profile.End {
		t.Fatalf("await started at %d, before the payload arrived at %d",
			await.Profile.Start, push.Profile.End)
	}

	var rd protocol.ReadBufferResp
	call(t, sB, &protocol.ReadBufferReq{
		QueueID: qB, BufferID: bufB, Offset: 0, Size: 64,
	}, &rd)
	if string(rd.Data) != string(data) {
		t.Fatalf("peer replica contents diverged after push:\n got %v\nwant %v", rd.Data, data)
	}
}

// TestPeerDialFailureIsStickyAndFailsChain exercises the lazy-dial failure
// path: the first push toward an unreachable peer fails in the lane (not
// at registration), a dependent command chained on its event fails rather
// than hangs, and the failure is sticky — the peer coming up later does
// not resurrect this session's pool entry.
func TestPeerDialFailureIsStickyAndFailsChain(t *testing.T) {
	net := transport.NewMemNetwork()
	nA := servePeerNode(t, net, "alpha")
	sA, qA, bufA := openPeerSession(t, nA, []protocol.PeerAddr{
		{Name: "ghost", Addr: "mem://ghost"}, // nothing registered there
	})
	defer sA.Close()

	pushErr := mustFail(t, goCall(sA, &protocol.PushRangeReq{
		QueueID: qA, BufferID: bufA, PeerName: "ghost", PeerBufferID: 1,
		Token: 1, Offset: 0, Size: 64, EventID: 2,
	}))
	wantCode(t, pushErr, protocol.CodeNodeLost)
	if !strings.Contains(pushErr.Error(), "ghost") {
		t.Fatalf("dial error does not name the peer: %v", pushErr)
	}

	// A command waiting on the failed push's event must cascade-fail.
	depErr := mustFail(t, goCall(sA, &protocol.WriteBufferReq{
		QueueID: qA, BufferID: bufA, Data: make([]byte, 64),
		EventID: 3, WaitEvents: []int64{2},
	}))
	if !strings.Contains(depErr.Error(), "ghost") {
		t.Fatalf("dependent failure lost the root cause: %v", depErr)
	}

	// The ghost comes alive — but the pool entry is sticky, so this
	// session keeps failing fast instead of re-dialing mid-stream.
	servePeerNode(t, net, "ghost")
	stickyErr := mustFail(t, goCall(sA, &protocol.PushRangeReq{
		QueueID: qA, BufferID: bufA, PeerName: "ghost", PeerBufferID: 1,
		Token: 2, Offset: 0, Size: 64, EventID: 4,
	}))
	wantCode(t, stickyErr, protocol.CodeNodeLost)
}

// TestPeerPushWithoutAddressBook: a host that never sent a peer list gets
// a clean unknown-object error, not a dial attempt.
func TestPeerPushWithoutAddressBook(t *testing.T) {
	net := transport.NewMemNetwork()
	nA := servePeerNode(t, net, "alpha")
	sA, qA, bufA := openPeerSession(t, nA, nil)
	defer sA.Close()

	err := mustFail(t, goCall(sA, &protocol.PushRangeReq{
		QueueID: qA, BufferID: bufA, PeerName: "beta", PeerBufferID: 1,
		Token: 1, Offset: 0, Size: 64, EventID: 2,
	}))
	wantCode(t, err, protocol.CodeUnknownObject)
}

// TestCancelPushFailsParkedAwaiter: the host's failure cascade sends
// CancelPush when a source-side push dies; the parked AwaitPush must error
// out with the carried reason instead of waiting forever, and commands
// chained on it must fail too.
func TestCancelPushFailsParkedAwaiter(t *testing.T) {
	net := transport.NewMemNetwork()
	nB := servePeerNode(t, net, "beta")
	sB, qB, bufB := openPeerSession(t, nB, nil)
	defer sB.Close()

	awaitCh := goCall(sB, &protocol.AwaitPushReq{
		QueueID: qB, BufferID: bufB, Token: 7, Offset: 0, Size: 64, EventID: 1,
	})
	depCh := goCall(sB, &protocol.WriteBufferReq{
		QueueID: qB, BufferID: bufB, Data: make([]byte, 64),
		EventID: 2, WaitEvents: []int64{1},
	})
	// Let both commands reach their lane before the cancel lands.
	q := call(t, sB, &protocol.QueryEventReq{EventID: 1}, &protocol.QueryEventResp{})
	if q.Complete {
		t.Fatal("parked awaiter reported complete")
	}

	call(t, sB, &protocol.CancelPushReq{Token: 7, Reason: "source push failed"}, &protocol.EmptyResp{})

	awaitErr := mustFail(t, awaitCh)
	if !strings.Contains(awaitErr.Error(), "source push failed") {
		t.Fatalf("awaiter error lost the cancel reason: %v", awaitErr)
	}
	if err := mustFail(t, depCh); !strings.Contains(err.Error(), "source push failed") {
		t.Fatalf("dependent of cancelled await lost the root cause: %v", err)
	}
}

// TestSessionCloseTearsDownPeerPool: Close must unpark any awaiter still
// waiting on a rendezvous and tear down the lazily-dialed peer pool after
// the lanes drain — no hangs, no leaked connections, no races.
func TestSessionCloseTearsDownPeerPool(t *testing.T) {
	net := transport.NewMemNetwork()
	nA := servePeerNode(t, net, "alpha")
	nB := servePeerNode(t, net, "beta")
	book := []protocol.PeerAddr{
		{Name: "alpha", Addr: "mem://alpha"},
		{Name: "beta", Addr: "mem://beta"},
	}
	sA, qA, bufA := openPeerSession(t, nA, book)
	sB, qB, bufB := openPeerSession(t, nB, book)

	// Open a live pooled connection with one successful push/await pair.
	mustEvent(t, goCall(sA, &protocol.WriteBufferReq{
		QueueID: qA, BufferID: bufA, Data: make([]byte, 64), EventID: 1,
	}))
	awaitCh := goCall(sB, &protocol.AwaitPushReq{
		QueueID: qB, BufferID: bufB, Token: 11, Offset: 0, Size: 64, EventID: 1,
	})
	mustEvent(t, goCall(sA, &protocol.PushRangeReq{
		QueueID: qA, BufferID: bufA, PeerName: "beta", PeerBufferID: bufB,
		Token: 11, Offset: 0, Size: 64, EventID: 2, WaitEvents: []int64{1},
	}))
	mustEvent(t, awaitCh)

	// Park a second awaiter with no deposit coming, then close under it.
	parked := goCall(sB, &protocol.AwaitPushReq{
		QueueID: qB, BufferID: bufB, Token: 12, Offset: 0, Size: 64, EventID: 2,
	})
	done := make(chan error, 1)
	go func() { done <- sB.Close() }()
	if err := mustFail(t, parked); !strings.Contains(err.Error(), "session closed") {
		t.Fatalf("parked awaiter did not fail on close: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session close hung draining the awaiter")
	}
	if err := sA.Close(); err != nil {
		t.Fatalf("source close: %v", err)
	}
	// The pool is gone: a fresh peerClient on the closed source session
	// would have to re-dial, proving closePeers dropped the cached entry.
	sA.peerMu.Lock()
	if sA.peerConns != nil {
		sA.peerMu.Unlock()
		t.Fatal("peer pool survived session close")
	}
	sA.peerMu.Unlock()
}

// gatedDialer parks every Dial until the gate opens and records the
// clients it hands out, so tests can interleave pool teardown with an
// in-flight dial deterministically.
type gatedDialer struct {
	inner   transport.Dialer
	dialing chan struct{} // one send per Dial that has started
	gate    chan struct{} // closed to let parked Dials proceed
	mu      sync.Mutex
	clients []*transport.Client
}

func newGatedDialer(inner transport.Dialer) *gatedDialer {
	return &gatedDialer{inner: inner, dialing: make(chan struct{}, 8), gate: make(chan struct{})}
}

func (d *gatedDialer) Dial(addr string) (*transport.Client, error) {
	d.dialing <- struct{}{}
	<-d.gate
	c, err := d.inner.Dial(addr)
	if c != nil {
		d.mu.Lock()
		d.clients = append(d.clients, c)
		d.mu.Unlock()
	}
	return c, err
}

// dialed returns the single connection the dialer handed out.
func (d *gatedDialer) dialed(t *testing.T) *transport.Client {
	t.Helper()
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.clients) != 1 {
		t.Fatalf("dialer handed out %d connections, want 1", len(d.clients))
	}
	return d.clients[0]
}

// servePeerNodeWithDialer is servePeerNode with the peer dialer swapped
// out, for tests that need to control dial timing.
func servePeerNodeWithDialer(t *testing.T, net *transport.MemNetwork, name string, d transport.Dialer) *Node {
	t.Helper()
	icd := device.NewICD()
	sim.RegisterDrivers(icd, kernel.NewRegistry())
	n, err := New(Options{
		Name:        name,
		Devices:     []device.Config{{Driver: sim.DriverGPU, ID: 1, Shared: true}},
		ICD:         icd,
		ExecWorkers: 1,
		Dialer:      d,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := n.Serve()
	addr := "mem://" + name
	if err := net.Register(addr, srv); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		net.Unregister(addr)
		srv.Close()
	})
	return n
}

// assertClientClosed proves the connection is dead: a call on a closed
// client fails fast, while a leaked-open one would reach the live peer.
func assertClientClosed(t *testing.T, c *transport.Client) {
	t.Helper()
	if err := c.Call(&protocol.HelloReq{UserID: "probe", WireVersion: protocol.Version}, &protocol.HelloResp{}); err == nil {
		t.Fatal("connection was left open (leaked) after the pool dropped it")
	}
}

// TestPeerPoolResetRacingDialClosesConnection is the regression test for
// the dial/teardown leak: an epoch-bump Hello swaps the peer pool out
// while a dial toward the old membership is still in flight. The dialer
// must notice its pool entry is gone when the dial resolves and close the
// fresh connection instead of publishing (or leaking) it.
func TestPeerPoolResetRacingDialClosesConnection(t *testing.T) {
	net := transport.NewMemNetwork()
	gd := newGatedDialer(net)
	nA := servePeerNodeWithDialer(t, net, "alpha", gd)
	servePeerNode(t, net, "beta")
	book := []protocol.PeerAddr{
		{Name: "alpha", Addr: "mem://alpha"},
		{Name: "beta", Addr: "mem://beta"},
	}
	sA, qA, bufA := openPeerSession(t, nA, book)
	defer sA.Close()
	call(t, sA, &protocol.HelloReq{
		UserID: "peer-test", WireVersion: protocol.Version, Peers: book, Epoch: 1,
	}, &protocol.HelloResp{})

	pushCh := goCall(sA, &protocol.PushRangeReq{
		QueueID: qA, BufferID: bufA, PeerName: "beta", PeerBufferID: 1,
		Token: 1, Offset: 0, Size: 64, EventID: 2,
	})
	<-gd.dialing // the push's lane is now parked mid-dial

	// Membership changes underneath the dial.
	call(t, sA, &protocol.HelloReq{
		UserID: "peer-test", WireVersion: protocol.Version, Peers: book, Epoch: 2,
	}, &protocol.HelloResp{})
	close(gd.gate)

	err := mustFail(t, pushCh)
	wantCode(t, err, protocol.CodeNodeLost)
	assertClientClosed(t, gd.dialed(t))
}

// TestSessionCloseRacingDialClosesConnection: Close lands while a peer
// dial is in flight. The drain waits the dial out, and the connection it
// produced must be torn down with the pool — not leaked.
func TestSessionCloseRacingDialClosesConnection(t *testing.T) {
	net := transport.NewMemNetwork()
	gd := newGatedDialer(net)
	nA := servePeerNodeWithDialer(t, net, "alpha", gd)
	nB := servePeerNode(t, net, "beta")
	book := []protocol.PeerAddr{
		{Name: "alpha", Addr: "mem://alpha"},
		{Name: "beta", Addr: "mem://beta"},
	}
	sA, qA, bufA := openPeerSession(t, nA, book)
	sB, qB, bufB := openPeerSession(t, nB, book)
	defer sB.Close()

	awaitCh := goCall(sB, &protocol.AwaitPushReq{
		QueueID: qB, BufferID: bufB, Token: 21, Offset: 0, Size: 64, EventID: 1,
	})
	pushCh := goCall(sA, &protocol.PushRangeReq{
		QueueID: qA, BufferID: bufA, PeerName: "beta", PeerBufferID: bufB,
		Token: 21, Offset: 0, Size: 64, EventID: 2,
	})
	<-gd.dialing // the push's lane is parked mid-dial

	done := make(chan error, 1)
	go func() { done <- sA.Close() }()
	close(gd.gate)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session close hung behind the in-flight dial")
	}
	<-pushCh
	<-awaitCh
	assertClientClosed(t, gd.dialed(t))
}

// TestEpochHelloResetsParkedRendezvous: a repeat Hello with a bumped epoch
// is a membership change — any awaiter parked on a rendezvous must fail
// with the membership error instead of waiting for a counterpart that may
// no longer exist.
func TestEpochHelloResetsParkedRendezvous(t *testing.T) {
	net := transport.NewMemNetwork()
	nB := servePeerNode(t, net, "beta")
	sB, qB, bufB := openPeerSession(t, nB, nil)
	defer sB.Close()
	call(t, sB, &protocol.HelloReq{
		UserID: "peer-test", WireVersion: protocol.Version, Epoch: 1,
	}, &protocol.HelloResp{})

	awaitCh := goCall(sB, &protocol.AwaitPushReq{
		QueueID: qB, BufferID: bufB, Token: 9, Offset: 0, Size: 64, EventID: 1,
	})
	// Wait until the awaiter is actually parked on the rendezvous: the
	// lane runs asynchronously, and a reset that lands first has nothing
	// to fail.
	deadline := time.Now().Add(5 * time.Second)
	for {
		nB.rdv.mu.Lock()
		_, parked := nB.rdv.entries[9]
		nB.rdv.mu.Unlock()
		if parked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("awaiter never reached the rendezvous")
		}
		time.Sleep(time.Millisecond)
	}

	call(t, sB, &protocol.HelloReq{
		UserID: "peer-test", WireVersion: protocol.Version, Epoch: 2,
	}, &protocol.HelloResp{})

	err := mustFail(t, awaitCh)
	wantCode(t, err, protocol.CodeNodeLost)
	if !strings.Contains(err.Error(), "membership changed") {
		t.Fatalf("awaiter error lost the membership cause: %v", err)
	}
}
