// Package node implements HaoCL's Node Management Process (NMP): the daemon
// that runs on every device node, receives forwarded OpenCL API calls from
// the host's wrapper library, executes them against the node's devices
// through the ICD driver layer, and reports runtime status to the host's
// resource monitor (paper §III-D).
//
// One Node serves any number of sessions (connections); each session
// carries a user identity from its Hello handshake, and exclusive
// (non-shared) devices admit queues from only one user at a time.
//
// Cross-goroutine state follows one lock order, checked by haoclvet:
//
// lock-order: Session.mu < Session.laneMu < Session.peerMu < lane.mu < objectTable.mu < queueObj.execMu < bufferObj.mu < rendezvous.mu < deviceStats.mu
package node

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/sim"
	"github.com/haocl-project/haocl/internal/transport"
	"github.com/haocl-project/haocl/internal/vtime"
)

// bootCounter mints process-wide unique boot IDs. A restarted node is a
// fresh Node value, so it reports a fresh BootID in Hello responses; the
// host uses the change to tell "same process, repeated Hello" apart from
// "new process at the same address" (all objects and replicas gone).
var bootCounter atomic.Uint64

// Options configures a Node.
type Options struct {
	// Name identifies the node in logs and handshakes.
	Name string
	// Devices lists the devices to open through the ICD.
	Devices []device.Config
	// ICD resolves device drivers. Required.
	ICD *device.ICD
	// ExecWorkers caps functional kernel-execution parallelism per
	// launch (0 = GOMAXPROCS). Experiment harnesses running many
	// simulated nodes in one process set this to 1.
	ExecWorkers int
	// WireVersion caps the wire protocol version this node negotiates in
	// Hello handshakes (0 = protocol.Version). Benchmarks and interop
	// tests set protocol.MinVersion to stand in for a pre-batching peer.
	WireVersion uint32
	// SingleLane folds every command onto one dispatch lane per session,
	// restoring the serialized per-connection execution of the pre-lane
	// runtime. Benchmarks use it as the baseline when measuring per-queue
	// lane concurrency (haocl-bench -exp lanes); see DESIGN.md §4.
	SingleLane bool
	// Dialer lets this node dial sibling nodes for peer-to-peer PushRange
	// traffic (addresses are learned from the host at Hello time). Nil
	// disables peer dialing: PushRange commands then fail cleanly.
	Dialer transport.Dialer
}

// Node is one device node's management process.
type Node struct {
	name        string
	bootID      uint64
	devices     []device.Device
	stats       []*deviceStats
	execWorkers int
	wireVersion uint32
	singleLane  bool
	dialer      transport.Dialer

	objects *objectTable

	// nicOut models this node's Gigabit egress link: every peer-to-peer
	// push the node originates serializes through it in virtual time, the
	// node-side counterpart of the host's NIC model. Node-global because
	// the physical link is per node, not per connection.
	nicOut *vtime.Link

	// rdv pairs inbound peer-push deposits with host-issued AwaitPush
	// commands; node-global because the two sides arrive on different
	// sessions (see rendezvous).
	rdv *rendezvous

	shutdownMu sync.Mutex
	onShutdown func() // guarded by shutdownMu
}

// deviceStats is the per-device slice of the runtime monitor.
type deviceStats struct {
	mu          sync.Mutex
	busyUntil   vtime.Time     // guarded by mu
	queuedCmds  int64          // guarded by mu
	kernelsRun  int64          // guarded by mu
	flopsDone   float64        // guarded by mu
	bytesMoved  float64        // guarded by mu
	energyJ     float64        // guarded by mu
	users       map[string]int // guarded by mu; userID -> live queue count
	ewmaGFLOPS  float64        // guarded by mu
	ewmaKernSec float64        // guarded by mu
}

const ewmaAlpha = 0.25

func (s *deviceStats) observeKernel(flops, bytes int64, dur vtime.Duration, watts float64, end vtime.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.kernelsRun++
	s.flopsDone += float64(flops)
	s.bytesMoved += float64(bytes)
	sec := dur.Seconds()
	s.energyJ += watts * sec
	if end > s.busyUntil {
		s.busyUntil = end
	}
	if sec > 0 {
		rate := float64(flops) / sec / 1e9
		if s.ewmaGFLOPS == 0 {
			s.ewmaGFLOPS = rate
		} else {
			s.ewmaGFLOPS = ewmaAlpha*rate + (1-ewmaAlpha)*s.ewmaGFLOPS
		}
		if s.ewmaKernSec == 0 {
			s.ewmaKernSec = sec
		} else {
			s.ewmaKernSec = ewmaAlpha*sec + (1-ewmaAlpha)*s.ewmaKernSec
		}
	}
}

func (s *deviceStats) observeTransfer(bytes int64, watts float64, dur vtime.Duration, end vtime.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bytesMoved += float64(bytes)
	s.energyJ += watts * dur.Seconds()
	if end > s.busyUntil {
		s.busyUntil = end
	}
}

func (s *deviceStats) snapshot(id uint32) protocol.DeviceStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return protocol.DeviceStatus{
		DeviceID:      id,
		BusyUntil:     int64(s.busyUntil),
		QueuedCmds:    s.queuedCmds,
		KernelsRun:    s.kernelsRun,
		FlopsDone:     s.flopsDone,
		BytesMoved:    s.bytesMoved,
		EnergyJ:       s.energyJ,
		ActiveUsers:   int64(len(s.users)),
		EWMAGFLOPS:    s.ewmaGFLOPS,
		EWMAKernelSec: s.ewmaKernSec,
	}
}

// New opens the configured devices and returns a ready Node.
func New(opts Options) (*Node, error) {
	if opts.ICD == nil {
		return nil, fmt.Errorf("node %q: ICD registry required", opts.Name)
	}
	if len(opts.Devices) == 0 {
		return nil, fmt.Errorf("node %q: at least one device required", opts.Name)
	}
	wireVersion := opts.WireVersion
	if wireVersion == 0 {
		wireVersion = protocol.Version
	}
	if wireVersion < protocol.MinVersion || wireVersion > protocol.Version {
		return nil, fmt.Errorf("node %q: wire version %d outside supported range %d..%d",
			opts.Name, wireVersion, protocol.MinVersion, protocol.Version)
	}
	n := &Node{
		name:        opts.Name,
		bootID:      bootCounter.Add(1),
		execWorkers: opts.ExecWorkers,
		wireVersion: wireVersion,
		singleLane:  opts.SingleLane,
		dialer:      opts.Dialer,
		objects:     newObjectTable(),
		nicOut:      vtime.NewLink(sim.MessageLatency, sim.GigabitBytesPerSec),
		rdv:         newRendezvous(),
	}
	for i, cfg := range opts.Devices {
		if cfg.ID == 0 {
			cfg.ID = uint32(i + 1)
		}
		if cfg.Workers == 0 {
			cfg.Workers = opts.ExecWorkers
		}
		dev, err := opts.ICD.Open(cfg)
		if err != nil {
			return nil, fmt.Errorf("node %q: %w", opts.Name, err)
		}
		n.devices = append(n.devices, dev)
		n.stats = append(n.stats, &deviceStats{users: make(map[string]int)})
	}
	return n, nil
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// BootID returns this node incarnation's process-wide unique boot ID.
func (n *Node) BootID() uint64 { return n.bootID }

// Devices returns the opened devices, indexed by position.
func (n *Node) Devices() []device.Device { return n.devices }

// deviceByID resolves a node-local device ID.
func (n *Node) deviceByID(id uint32) (device.Device, *deviceStats, error) {
	for i, d := range n.devices {
		if d.Info().ID == id {
			return d, n.stats[i], nil
		}
	}
	return nil, nil, remoteErr(protocol.CodeUnknownObject, "no device with ID %d on node %q", id, n.name)
}

// DeviceInfos lists the node's devices in wire form, optionally filtered by
// a device-type bitmask.
func (n *Node) DeviceInfos(typeMask uint8) []protocol.DeviceInfo {
	var infos []protocol.DeviceInfo
	for _, d := range n.devices {
		info := d.Info()
		if typeMask != 0 && typeMask&(1<<uint8(info.Type)) == 0 {
			continue
		}
		infos = append(infos, info.Proto())
	}
	return infos
}

// Status snapshots the runtime monitor for every device.
func (n *Node) Status() []protocol.DeviceStatus {
	out := make([]protocol.DeviceStatus, len(n.devices))
	for i, d := range n.devices {
		out[i] = n.stats[i].snapshot(d.Info().ID)
	}
	return out
}

// OnShutdown registers a callback invoked when a session issues Shutdown.
func (n *Node) OnShutdown(f func()) {
	n.shutdownMu.Lock()
	defer n.shutdownMu.Unlock()
	n.onShutdown = f
}

func (n *Node) shutdown() {
	n.shutdownMu.Lock()
	f := n.onShutdown
	n.shutdownMu.Unlock()
	if f != nil {
		go f()
	}
}

// NewSession returns a transport handler bound to one connection. The
// session implements transport.AsyncHandler: the transport's dispatch
// goroutine registers commands in arrival order and per-queue lanes
// execute them concurrently.
func (n *Node) NewSession() transport.Handler { return newSession(n) }

// Serve returns a transport server for this node, enforcing the node's
// wire-version cap at the framing layer.
func (n *Node) Serve() *transport.Server {
	srv := transport.NewServer(func() transport.Handler { return n.NewSession() })
	srv.LimitWireVersion(n.wireVersion)
	return srv
}

// remoteErr builds a protocol error with a code the host can match on.
func remoteErr(code uint32, format string, args ...any) error {
	return &protocol.RemoteError{Code: code, Message: fmt.Sprintf(format, args...)}
}
