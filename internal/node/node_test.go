package node

import (
	"errors"
	"strings"
	"testing"

	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/kernel"
	"github.com/haocl-project/haocl/internal/mem"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/sim"
)

const doubleSource = `
__kernel void double_it(__global float* x, const int n) {
    int i = get_global_id(0);
    if (i < n) x[i] *= 2.0f;
}
`

func testNode(t *testing.T, devices ...device.Config) *Node {
	t.Helper()
	reg := kernel.NewRegistry()
	reg.MustRegister(&kernel.Spec{
		Name:    "double_it",
		NumArgs: 2,
		Func: func(it *kernel.Item, args []kernel.Arg) {
			i := it.GlobalID(0)
			if i >= args[1].Int() {
				return
			}
			args[0].Float32s()[i] *= 2
		},
		Cost: func(g [3]int, _ []kernel.Arg) kernel.Cost {
			return kernel.Cost{Flops: int64(g[0]), Bytes: int64(g[0]) * 8}
		},
	})
	icd := device.NewICD()
	sim.RegisterDrivers(icd, reg)
	if len(devices) == 0 {
		devices = []device.Config{{Driver: sim.DriverGPU, Shared: true}}
	}
	n, err := New(Options{Name: "test-node", Devices: devices, ICD: icd, ExecWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// call sends one decoded request through a session, expecting success.
func call[T protocol.Message](t *testing.T, s *Session, req protocol.Message, resp T) T {
	t.Helper()
	got, err := s.HandleCall(req.Op(), protocol.EncodeMessage(req))
	if err != nil {
		t.Fatalf("%s: %v", req.Op(), err)
	}
	if err := protocol.DecodeMessage(resp, protocol.EncodeMessage(got)); err != nil {
		t.Fatalf("re-decode %s: %v", req.Op(), err)
	}
	return resp
}

// callErr sends one request expecting a remote error with the given code.
func callErr(t *testing.T, s *Session, req protocol.Message, wantCode uint32) {
	t.Helper()
	_, err := s.HandleCall(req.Op(), protocol.EncodeMessage(req))
	if err == nil {
		t.Fatalf("%s: expected error", req.Op())
	}
	var re *protocol.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("%s: error %v is not remote", req.Op(), err)
	}
	if re.Code != wantCode {
		t.Fatalf("%s: code = %d, want %d (%v)", req.Op(), re.Code, wantCode, re)
	}
}

func openSession(t *testing.T, n *Node, user string) *Session {
	t.Helper()
	s := n.NewSession().(*Session)
	resp := call(t, s, &protocol.HelloReq{UserID: user, WireVersion: protocol.Version}, &protocol.HelloResp{})
	if resp.NodeName != "test-node" || len(resp.Devices) == 0 {
		t.Fatalf("handshake: %+v", resp)
	}
	return s
}

// buildPipeline creates context, queue, program and kernel, returning IDs.
func buildPipeline(t *testing.T, s *Session) (ctxID, queueID, kernelID uint64) {
	t.Helper()
	ctx := call(t, s, &protocol.CreateContextReq{DeviceIDs: []int64{1}}, &protocol.ObjectResp{})
	q := call(t, s, &protocol.CreateQueueReq{ContextID: ctx.ID, DeviceID: 1, Profiling: true}, &protocol.ObjectResp{})
	prog := call(t, s, &protocol.BuildProgramReq{ContextID: ctx.ID, Source: doubleSource}, &protocol.BuildProgramResp{})
	if len(prog.Kernels) != 1 || prog.Kernels[0] != "double_it" {
		t.Fatalf("build kernels = %v", prog.Kernels)
	}
	if !strings.Contains(prog.Log, "double_it") {
		t.Fatalf("build log = %q", prog.Log)
	}
	k := call(t, s, &protocol.CreateKernelReq{ProgramID: prog.ProgramID, Name: "double_it"}, &protocol.ObjectResp{})
	return ctx.ID, q.ID, k.ID
}

func TestFullCommandPipeline(t *testing.T) {
	n := testNode(t)
	s := openSession(t, n, "alice")
	ctxID, queueID, kernelID := buildPipeline(t, s)

	buf := call(t, s, &protocol.CreateBufferReq{ContextID: ctxID, Size: 64}, &protocol.ObjectResp{})
	in := mem.F32Bytes([]float32{1, 2, 3, 4, 5, 6, 7, 8})
	wr := call(t, s, &protocol.WriteBufferReq{
		QueueID: queueID, BufferID: buf.ID, Data: in, SimArrival: 1000,
	}, &protocol.EventResp{})
	if wr.Profile.Start < 1000 || wr.Profile.End <= wr.Profile.Start {
		t.Fatalf("write profile %+v", wr.Profile)
	}

	launch := call(t, s, &protocol.EnqueueKernelReq{
		QueueID: queueID, KernelID: kernelID,
		Global: []int64{8},
		Args: []protocol.KernelArg{
			{Kind: protocol.ArgBuffer, BufferID: buf.ID},
			{Kind: protocol.ArgScalar, Scalar: kernel.EncodeScalar(int32(8))},
		},
		WaitEvents: []int64{int64(wr.EventID)},
	}, &protocol.EventResp{})
	if launch.Profile.Start < wr.Profile.End {
		t.Fatalf("launch started before its wait event: %+v vs %+v", launch.Profile, wr.Profile)
	}

	rd := call(t, s, &protocol.ReadBufferReq{
		QueueID: queueID, BufferID: buf.ID, Size: 32,
		WaitEvents: []int64{int64(launch.EventID)},
	}, &protocol.ReadBufferResp{})
	got := mem.BytesF32(rd.Data)
	for i, v := range got {
		if v != float32(2*(i+1)) {
			t.Fatalf("element %d = %v", i, v)
		}
	}

	fin := call(t, s, &protocol.FinishQueueReq{QueueID: queueID}, &protocol.FinishQueueResp{})
	if fin.SimTime < rd.Profile.End {
		t.Fatalf("finish time %d before last event %d", fin.SimTime, rd.Profile.End)
	}

	ev := call(t, s, &protocol.QueryEventReq{EventID: launch.EventID}, &protocol.QueryEventResp{})
	if !ev.Complete || ev.Profile.End != launch.Profile.End {
		t.Fatalf("query event: %+v", ev)
	}

	// Monitor accounting.
	status := n.Status()
	if len(status) != 1 {
		t.Fatalf("status: %v", status)
	}
	st := status[0]
	if st.KernelsRun != 1 || st.FlopsDone != 8 || st.EnergyJ <= 0 || st.EWMAGFLOPS <= 0 {
		t.Fatalf("status = %+v", st)
	}
}

func TestCopyBuffer(t *testing.T) {
	n := testNode(t)
	s := openSession(t, n, "alice")
	ctxID, queueID, _ := buildPipeline(t, s)
	src := call(t, s, &protocol.CreateBufferReq{ContextID: ctxID, Size: 16}, &protocol.ObjectResp{})
	dst := call(t, s, &protocol.CreateBufferReq{ContextID: ctxID, Size: 16}, &protocol.ObjectResp{})
	call(t, s, &protocol.WriteBufferReq{QueueID: queueID, BufferID: src.ID,
		Data: mem.F32Bytes([]float32{9, 8, 7, 6})}, &protocol.EventResp{})
	call(t, s, &protocol.CopyBufferReq{QueueID: queueID, SrcID: src.ID, DstID: dst.ID, Size: 16}, &protocol.EventResp{})
	rd := call(t, s, &protocol.ReadBufferReq{QueueID: queueID, BufferID: dst.ID, Size: 16}, &protocol.ReadBufferResp{})
	if got := mem.BytesF32(rd.Data); got[0] != 9 || got[3] != 6 {
		t.Fatalf("copy result %v", got)
	}
	callErr(t, s, &protocol.CopyBufferReq{QueueID: queueID, SrcID: src.ID, DstID: dst.ID, Size: 99},
		protocol.CodeBadRequest)
}

func TestErrorPaths(t *testing.T) {
	n := testNode(t)
	s := openSession(t, n, "alice")
	ctxID, queueID, kernelID := buildPipeline(t, s)
	buf := call(t, s, &protocol.CreateBufferReq{ContextID: ctxID, Size: 64}, &protocol.ObjectResp{})

	callErr(t, s, &protocol.CreateContextReq{DeviceIDs: []int64{42}}, protocol.CodeUnknownObject)
	callErr(t, s, &protocol.CreateContextReq{}, protocol.CodeBadRequest)
	callErr(t, s, &protocol.CreateQueueReq{ContextID: 999, DeviceID: 1}, protocol.CodeUnknownObject)
	callErr(t, s, &protocol.CreateQueueReq{ContextID: ctxID, DeviceID: 42}, protocol.CodeBadRequest)
	callErr(t, s, &protocol.CreateBufferReq{ContextID: ctxID, Size: -1}, protocol.CodeBadRequest)
	callErr(t, s, &protocol.WriteBufferReq{QueueID: queueID, BufferID: 999}, protocol.CodeUnknownObject)
	callErr(t, s, &protocol.WriteBufferReq{QueueID: queueID, BufferID: buf.ID,
		Offset: 60, Data: make([]byte, 16)}, protocol.CodeBadRequest)
	callErr(t, s, &protocol.ReadBufferReq{QueueID: queueID, BufferID: buf.ID, Offset: 0, Size: 999},
		protocol.CodeBadRequest)
	callErr(t, s, &protocol.BuildProgramReq{ContextID: ctxID, Source: "not opencl at all"},
		protocol.CodeBuildFailed)
	callErr(t, s, &protocol.BuildProgramReq{ContextID: ctxID,
		Source: `__kernel void nope(__global int* x) { }`}, protocol.CodeBuildFailed)
	callErr(t, s, &protocol.CreateKernelReq{ProgramID: 999, Name: "double_it"}, protocol.CodeUnknownObject)

	// Arg validation against the parsed OpenCL C signature.
	callErr(t, s, &protocol.EnqueueKernelReq{
		QueueID: queueID, KernelID: kernelID, Global: []int64{8},
		Args: []protocol.KernelArg{{Kind: protocol.ArgBuffer, BufferID: buf.ID}},
	}, protocol.CodeLaunchFailed) // missing scalar arg
	callErr(t, s, &protocol.EnqueueKernelReq{
		QueueID: queueID, KernelID: kernelID, Global: []int64{8},
		Args: []protocol.KernelArg{
			{Kind: protocol.ArgScalar, Scalar: kernel.EncodeScalar(int32(1))},
			{Kind: protocol.ArgScalar, Scalar: kernel.EncodeScalar(int32(8))},
		},
	}, protocol.CodeLaunchFailed) // scalar bound to pointer param
	callErr(t, s, &protocol.EnqueueKernelReq{
		QueueID: queueID, KernelID: kernelID, Global: []int64{8},
		Args: []protocol.KernelArg{
			{Kind: protocol.ArgBuffer, BufferID: buf.ID},
			{Kind: protocol.ArgScalar, Scalar: []byte{1}}, // int wants 4 bytes
		},
	}, protocol.CodeLaunchFailed)
	callErr(t, s, &protocol.EnqueueKernelReq{
		QueueID: queueID, KernelID: kernelID, Global: []int64{10}, Local: []int64{3},
		Args: []protocol.KernelArg{
			{Kind: protocol.ArgBuffer, BufferID: buf.ID},
			{Kind: protocol.ArgScalar, Scalar: kernel.EncodeScalar(int32(8))},
		},
	}, protocol.CodeLaunchFailed) // indivisible NDRange

	callErr(t, s, &protocol.QueryEventReq{EventID: 9999}, protocol.CodeUnknownObject)
	callErr(t, s, &protocol.FinishQueueReq{QueueID: 9999}, protocol.CodeUnknownObject)
}

func TestReleaseSemantics(t *testing.T) {
	n := testNode(t)
	s := openSession(t, n, "alice")
	ctxID, queueID, _ := buildPipeline(t, s)
	buf := call(t, s, &protocol.CreateBufferReq{ContextID: ctxID, Size: 16}, &protocol.ObjectResp{})

	call(t, s, &protocol.ReleaseReq{Kind: protocol.ObjBuffer, ID: buf.ID}, &protocol.EmptyResp{})
	// Double release is an error, as in OpenCL.
	callErr(t, s, &protocol.ReleaseReq{Kind: protocol.ObjBuffer, ID: buf.ID}, protocol.CodeUnknownObject)
	// The released buffer is unusable.
	callErr(t, s, &protocol.WriteBufferReq{QueueID: queueID, BufferID: buf.ID, Data: []byte{1}},
		protocol.CodeUnknownObject)
	call(t, s, &protocol.ReleaseReq{Kind: protocol.ObjQueue, ID: queueID}, &protocol.EmptyResp{})
	callErr(t, s, &protocol.ReleaseReq{Kind: protocol.ObjectKind(99), ID: 1}, protocol.CodeBadRequest)
}

func TestHelloVersionNegotiation(t *testing.T) {
	// A host older than MinVersion is rejected outright.
	n := testNode(t)
	s := n.NewSession().(*Session)
	callErr(t, s, &protocol.HelloReq{UserID: "x", WireVersion: 1}, protocol.CodeUnsupported)

	// A current host negotiates the node's full version.
	s = n.NewSession().(*Session)
	resp := call(t, s, &protocol.HelloReq{UserID: "x", WireVersion: protocol.Version}, &protocol.HelloResp{})
	if resp.WireVersion != protocol.Version {
		t.Fatalf("negotiated %d, want %d", resp.WireVersion, protocol.Version)
	}

	// A v2-only host is accepted and pinned to v2.
	s = n.NewSession().(*Session)
	resp = call(t, s, &protocol.HelloReq{UserID: "x", WireVersion: protocol.MinVersion}, &protocol.HelloResp{})
	if resp.WireVersion != protocol.MinVersion {
		t.Fatalf("negotiated %d, want %d", resp.WireVersion, protocol.MinVersion)
	}

	// A host newer than the node falls back to the node's version.
	s = n.NewSession().(*Session)
	resp = call(t, s, &protocol.HelloReq{UserID: "x", WireVersion: 99}, &protocol.HelloResp{})
	if resp.WireVersion != protocol.Version {
		t.Fatalf("negotiated %d, want node's %d", resp.WireVersion, protocol.Version)
	}
}

func TestNodeWireVersionCap(t *testing.T) {
	// A node capped at v2 (emulating a pre-batching build) negotiates v2
	// with a v3 host.
	icd := device.NewICD()
	sim.RegisterDrivers(icd, kernel.NewRegistry())
	n, err := New(Options{
		Name:        "legacy-node",
		Devices:     []device.Config{{Driver: sim.DriverGPU, ID: 1, Shared: true}},
		ICD:         icd,
		WireVersion: protocol.MinVersion,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := n.NewSession().(*Session)
	resp := call(t, s, &protocol.HelloReq{UserID: "x", WireVersion: protocol.Version}, &protocol.HelloResp{})
	if resp.WireVersion != protocol.MinVersion {
		t.Fatalf("negotiated %d, want %d", resp.WireVersion, protocol.MinVersion)
	}

	// Out-of-range caps are configuration errors.
	if _, err := New(Options{
		Name:        "bad-node",
		Devices:     []device.Config{{Driver: sim.DriverGPU, ID: 1, Shared: true}},
		ICD:         icd,
		WireVersion: 1,
	}); err == nil {
		t.Fatal("wire version 1 accepted")
	}
}

func TestUnsupportedOp(t *testing.T) {
	n := testNode(t)
	s := openSession(t, n, "x")
	if _, err := s.HandleCall(protocol.Op(200), nil); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestExclusiveDeviceMultiUser(t *testing.T) {
	n := testNode(t, device.Config{Driver: sim.DriverGPU, Shared: false})
	alice := openSession(t, n, "alice")
	bob := openSession(t, n, "bob")

	ctxA := call(t, alice, &protocol.CreateContextReq{DeviceIDs: []int64{1}}, &protocol.ObjectResp{})
	qA := call(t, alice, &protocol.CreateQueueReq{ContextID: ctxA.ID, DeviceID: 1}, &protocol.ObjectResp{})

	// Bob cannot queue on Alice's exclusive device.
	ctxB := call(t, bob, &protocol.CreateContextReq{DeviceIDs: []int64{1}}, &protocol.ObjectResp{})
	callErr(t, bob, &protocol.CreateQueueReq{ContextID: ctxB.ID, DeviceID: 1}, protocol.CodeDeviceBusy)

	// Alice may create more queues on her own device.
	call(t, alice, &protocol.CreateQueueReq{ContextID: ctxA.ID, DeviceID: 1}, &protocol.ObjectResp{})

	// After Alice releases everything, Bob gets in.
	call(t, alice, &protocol.ReleaseReq{Kind: protocol.ObjQueue, ID: qA.ID}, &protocol.EmptyResp{})
	if err := alice.Close(); err != nil {
		t.Fatal(err)
	}
	call(t, bob, &protocol.CreateQueueReq{ContextID: ctxB.ID, DeviceID: 1}, &protocol.ObjectResp{})
}

func TestSharedDeviceMultiUser(t *testing.T) {
	n := testNode(t, device.Config{Driver: sim.DriverGPU, Shared: true})
	alice := openSession(t, n, "alice")
	bob := openSession(t, n, "bob")
	ctxA := call(t, alice, &protocol.CreateContextReq{DeviceIDs: []int64{1}}, &protocol.ObjectResp{})
	ctxB := call(t, bob, &protocol.CreateContextReq{DeviceIDs: []int64{1}}, &protocol.ObjectResp{})
	call(t, alice, &protocol.CreateQueueReq{ContextID: ctxA.ID, DeviceID: 1}, &protocol.ObjectResp{})
	call(t, bob, &protocol.CreateQueueReq{ContextID: ctxB.ID, DeviceID: 1}, &protocol.ObjectResp{})
	st := n.Status()
	if st[0].ActiveUsers != 2 {
		t.Fatalf("active users = %d, want 2", st[0].ActiveUsers)
	}
}

func TestSessionCloseReleasesQueues(t *testing.T) {
	n := testNode(t, device.Config{Driver: sim.DriverFPGA, Shared: false, Bitstreams: []string{"double_it"}})
	alice := openSession(t, n, "alice")
	ctx := call(t, alice, &protocol.CreateContextReq{DeviceIDs: []int64{1}}, &protocol.ObjectResp{})
	call(t, alice, &protocol.CreateQueueReq{ContextID: ctx.ID, DeviceID: 1}, &protocol.ObjectResp{})
	if err := alice.Close(); err != nil {
		t.Fatal(err)
	}
	// A disconnected session must free its exclusive device.
	bob := openSession(t, n, "bob")
	ctxB := call(t, bob, &protocol.CreateContextReq{DeviceIDs: []int64{1}}, &protocol.ObjectResp{})
	call(t, bob, &protocol.CreateQueueReq{ContextID: ctxB.ID, DeviceID: 1}, &protocol.ObjectResp{})
}

func TestCostOverride(t *testing.T) {
	n := testNode(t)
	s := openSession(t, n, "alice")
	ctxID, queueID, kernelID := buildPipeline(t, s)
	buf := call(t, s, &protocol.CreateBufferReq{ContextID: ctxID, Size: 64}, &protocol.ObjectResp{})

	args := []protocol.KernelArg{
		{Kind: protocol.ArgBuffer, BufferID: buf.ID},
		{Kind: protocol.ArgScalar, Scalar: kernel.EncodeScalar(int32(8))},
	}
	small := call(t, s, &protocol.EnqueueKernelReq{
		QueueID: queueID, KernelID: kernelID, Global: []int64{8}, Args: args,
	}, &protocol.EventResp{})
	big := call(t, s, &protocol.EnqueueKernelReq{
		QueueID: queueID, KernelID: kernelID, Global: []int64{8}, Args: args,
		CostFlops: 1e12, CostBytes: 1e12,
	}, &protocol.EventResp{})
	if big.Profile.DurationNS() <= small.Profile.DurationNS()*1000 {
		t.Fatalf("cost override ignored: small=%dns big=%dns",
			small.Profile.DurationNS(), big.Profile.DurationNS())
	}
}

func TestNodeValidation(t *testing.T) {
	if _, err := New(Options{Name: "x"}); err == nil {
		t.Fatal("node without ICD accepted")
	}
	icd := device.NewICD()
	sim.RegisterDrivers(icd, kernel.NewRegistry())
	if _, err := New(Options{Name: "x", ICD: icd}); err == nil {
		t.Fatal("node without devices accepted")
	}
	if _, err := New(Options{Name: "x", ICD: icd,
		Devices: []device.Config{{Driver: "nope"}}}); err == nil {
		t.Fatal("node with bad driver accepted")
	}
}

func TestDeviceInfosTypeMask(t *testing.T) {
	n := testNode(t,
		device.Config{Driver: sim.DriverGPU, ID: 1, Shared: true},
		device.Config{Driver: sim.DriverCPU, ID: 2, Shared: true},
	)
	all := n.DeviceInfos(0)
	if len(all) != 2 {
		t.Fatalf("all = %d", len(all))
	}
	gpus := n.DeviceInfos(1 << uint8(protocol.DeviceGPU))
	if len(gpus) != 1 || gpus[0].Type != protocol.DeviceGPU {
		t.Fatalf("gpus = %+v", gpus)
	}
}

// TestRangedCommandValidation: read/write/copy ranges are validated in the
// registration stage, overflow-safely — the host's delta migration issues
// ranged commands at arbitrary offsets, so a wrapping offset+size must not
// slip past the bound check, and a malformed range must fail its event
// before the command ever occupies a lane.
func TestRangedCommandValidation(t *testing.T) {
	n := testNode(t)
	s := openSession(t, n, "alice")
	ctxID, queueID, _ := buildPipeline(t, s)
	buf := call(t, s, &protocol.CreateBufferReq{ContextID: ctxID, Size: 64}, &protocol.ObjectResp{})
	buf2 := call(t, s, &protocol.CreateBufferReq{ContextID: ctxID, Size: 64}, &protocol.ObjectResp{})

	// In-bounds ranged write/read round trip at a non-zero offset.
	call(t, s, &protocol.WriteBufferReq{
		QueueID: queueID, BufferID: buf.ID, Offset: 16, Data: []byte{1, 2, 3, 4},
	}, &protocol.EventResp{})
	rd := call(t, s, &protocol.ReadBufferReq{
		QueueID: queueID, BufferID: buf.ID, Offset: 16, Size: 4,
	}, &protocol.ReadBufferResp{})
	if string(rd.Data) != string([]byte{1, 2, 3, 4}) {
		t.Fatalf("ranged read = %v", rd.Data)
	}

	const maxI64 = int64(^uint64(0) >> 1)
	badWrites := []*protocol.WriteBufferReq{
		{QueueID: queueID, BufferID: buf.ID, Offset: -1, Data: []byte{1}},
		{QueueID: queueID, BufferID: buf.ID, Offset: 61, Data: []byte{1, 2, 3, 4}},
		{QueueID: queueID, BufferID: buf.ID, Offset: maxI64 - 1, Data: []byte{1, 2, 3, 4}}, // offset+len wraps
	}
	for _, req := range badWrites {
		callErr(t, s, req, protocol.CodeBadRequest)
	}
	badReads := []*protocol.ReadBufferReq{
		{QueueID: queueID, BufferID: buf.ID, Offset: 0, Size: -1},
		{QueueID: queueID, BufferID: buf.ID, Offset: 60, Size: 5},
		{QueueID: queueID, BufferID: buf.ID, Offset: maxI64 - 1, Size: 4}, // offset+size wraps
	}
	for _, req := range badReads {
		callErr(t, s, req, protocol.CodeBadRequest)
	}
	badCopies := []*protocol.CopyBufferReq{
		{QueueID: queueID, SrcID: buf.ID, DstID: buf2.ID, SrcOffset: 60, DstOffset: 0, Size: 8},
		{QueueID: queueID, SrcID: buf.ID, DstID: buf2.ID, SrcOffset: 0, DstOffset: 60, Size: 8},
		{QueueID: queueID, SrcID: buf.ID, DstID: buf2.ID, SrcOffset: 0, DstOffset: 0, Size: -4},
		{QueueID: queueID, SrcID: buf.ID, DstID: buf2.ID, SrcOffset: maxI64 - 1, DstOffset: 0, Size: 8},
	}
	for _, req := range badCopies {
		callErr(t, s, req, protocol.CodeBadRequest)
	}

	// Async path: the bad range fails the claimed event at registration, so
	// a pipelined waiter behind it observes the cascade instead of hanging.
	done := make(chan error, 1)
	s.HandleCallAsync(protocol.OpWriteBuffer, protocol.EncodeMessage(&protocol.WriteBufferReq{
		QueueID: queueID, BufferID: buf.ID, Offset: 100, Data: []byte{1}, EventID: 7001,
	}), func(_ protocol.Message, err error) { done <- err })
	if err := <-done; err == nil {
		t.Fatal("async out-of-bounds write accepted")
	}
	s.HandleCallAsync(protocol.OpWriteBuffer, protocol.EncodeMessage(&protocol.WriteBufferReq{
		QueueID: queueID, BufferID: buf.ID, Offset: 0, Data: []byte{1},
		EventID: 7002, WaitEvents: []int64{7001},
	}), func(_ protocol.Message, err error) { done <- err })
	var re *protocol.RemoteError
	if err := <-done; !errors.As(err, &re) {
		t.Fatalf("waiter behind failed range = %v, want remote error cascade", err)
	}
}
