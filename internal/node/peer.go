package node

import (
	"sync"

	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/transport"
	"github.com/haocl-project/haocl/internal/vtime"
)

// pushChunkBytes is the store-and-forward unit for broadcast cut-through:
// a forwarding hop starts relaying once the first chunk is in, so each
// extra hop adds only one chunk's link time, not the full buffer (mirrors
// core's broadcastChunkBytes).
const pushChunkBytes = 8 << 20

// rendezvous pairs inbound PeerPush deposits with the host-issued AwaitPush
// commands that consume them. It is node-global, not per-session: the
// deposit arrives on the source node's inbound connection while the
// AwaitPush rides the host's session, and the two must meet on the token.
// Whichever side arrives first creates the entry; the consumer deletes it.
type rendezvous struct {
	mu      sync.Mutex
	entries map[uint64]*rdvEntry // guarded by mu
}

// rdvEntry is one pending push. done is closed exactly once — by the
// deposit or by a cancel — after which data/simArrival/err are immutable.
type rdvEntry struct {
	done       chan struct{}
	data       []byte
	simArrival int64
	err        error
}

func newRendezvous() *rendezvous {
	return &rendezvous{entries: make(map[uint64]*rdvEntry)}
}

// entry returns the rendezvous entry for token, creating it if this is the
// first side to arrive.
func (r *rendezvous) entry(token uint64) *rdvEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[token]
	if e == nil {
		e = &rdvEntry{done: make(chan struct{})}
		r.entries[token] = e
	}
	return e
}

// deposit parks pushed data under token, waking the awaiter.
func (r *rendezvous) deposit(token uint64, data []byte, simArrival int64) error {
	e := r.entry(token)
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case <-e.done:
		return remoteErr(protocol.CodeBadRequest, "duplicate push for token %d", token)
	default:
	}
	e.data = data
	e.simArrival = simArrival
	close(e.done)
	return nil
}

// cancel fails a pending rendezvous so its awaiter errors out instead of
// parking forever. Cancelling an already-completed entry is a no-op: the
// cancel raced a deposit that made it through, and the data wins.
func (r *rendezvous) cancel(token uint64, err error) {
	e := r.entry(token)
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case <-e.done:
		return
	default:
	}
	e.err = err
	close(e.done)
}

// remove drops a consumed entry.
func (r *rendezvous) remove(token uint64) {
	r.mu.Lock()
	delete(r.entries, token)
	r.mu.Unlock()
}

// reset fails every parked rendezvous and drops every entry, deposited or
// not. Called on a membership change: the counterpart of any pending push
// may be gone, and the host re-plans with fresh tokens, so stale deposits
// would never be consumed. Entry fields are written under r.mu, matching
// deposit/cancel, so a racing deposit sees done already closed.
func (r *rendezvous) reset(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for t, e := range r.entries {
		select {
		case <-e.done:
		default:
			e.err = err
			close(e.done)
		}
		delete(r.entries, t)
	}
}

// peerConn is one pooled connection to a sibling node. A dial or handshake
// failure is sticky: every later push toward that peer fails fast with the
// same error instead of re-dialing a dead address mid-chain. ready is
// closed once the dial attempt resolved; after that, client/err mutate
// only under peerMu (markPeerDown).
type peerConn struct {
	ready  chan struct{}
	client *transport.Client
	err    error
}

// peerClient returns the pooled connection to the named peer, dialing
// lazily on first use with the address book learned at Hello time. The
// pool lives on the session, so a host disconnect tears down exactly the
// peer links its own commands opened.
//
// The dial itself runs outside peerMu — it blocks on the network — and the
// dialer re-checks pool ownership before publishing: if Close or an epoch
// reset swapped the pool out underneath the dial, the freshly dialed
// connection is closed instead of leaking outside the teardown path.
func (s *Session) peerClient(name string) (*transport.Client, error) {
	s.peerMu.Lock()
	if s.peersClosed {
		s.peerMu.Unlock()
		return nil, remoteErr(protocol.CodeNodeLost, "node %q: session closed while dialing peer %q", s.node.name, name)
	}
	if s.peerConns == nil {
		s.peerConns = make(map[string]*peerConn)
	}
	if pc, ok := s.peerConns[name]; ok {
		s.peerMu.Unlock()
		<-pc.ready
		// Re-lock for the read: markPeerDown mutates resolved entries
		// under peerMu.
		s.peerMu.Lock()
		defer s.peerMu.Unlock()
		return pc.client, pc.err
	}
	pc := &peerConn{ready: make(chan struct{})}
	s.peerConns[name] = pc
	s.peerMu.Unlock()

	client, err := s.dialPeer(name)

	s.peerMu.Lock()
	if s.peersClosed || s.peerConns[name] != pc {
		s.peerMu.Unlock()
		if client != nil {
			client.Close()
		}
		pc.err = remoteErr(protocol.CodeNodeLost, "node %q: peer pool reset while dialing %q", s.node.name, name)
		close(pc.ready)
		return nil, pc.err
	}
	pc.client, pc.err = client, err
	s.peerMu.Unlock()
	close(pc.ready)
	return client, err
}

// dialPeer opens and handshakes one peer connection.
func (s *Session) dialPeer(name string) (*transport.Client, error) {
	s.mu.Lock()
	addr, ok := s.peers[name]
	s.mu.Unlock()
	if !ok {
		return nil, remoteErr(protocol.CodeUnknownObject,
			"node %q has no address for peer %q (host did not send a peer list)", s.node.name, name)
	}
	if s.node.dialer == nil {
		return nil, remoteErr(protocol.CodeUnsupported,
			"node %q cannot dial peers: no dialer configured", s.node.name)
	}
	client, err := s.node.dialer.Dial(addr)
	if err != nil {
		return nil, remoteErr(protocol.CodeNodeLost, "dial peer %q at %q: %v", name, addr, err)
	}
	resp, err := transport.Handshake(client, protocol.HelloReq{
		UserID:     s.user(),
		ClientName: "peer:" + s.node.name,
	})
	if err != nil {
		client.Close()
		return nil, remoteErr(protocol.CodeNodeLost, "handshake with peer %q: %v", name, err)
	}
	if resp.WireVersion >= protocol.VersionBatch {
		client.EnableBatching()
	}
	return client, nil
}

// markPeerDown makes a mid-session send failure sticky and closes the
// broken connection, so dependent pushes fail fast instead of queuing onto
// a dead socket.
func (s *Session) markPeerDown(name string, err error) {
	s.peerMu.Lock()
	pc := s.peerConns[name]
	if pc == nil {
		s.peerMu.Unlock()
		return
	}
	s.peerMu.Unlock()
	<-pc.ready // client/err immutable after ready

	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	if pc.err != nil {
		return
	}
	pc.err = err
	if pc.client != nil {
		pc.client.Close()
		pc.client = nil
	}
}

// closePeers tears the session's peer pool down on Close. Entries still
// mid-dial are skipped: their dialer re-checks pool ownership after the
// dial resolves and closes its own connection (see peerClient).
func (s *Session) closePeers() {
	s.peerMu.Lock()
	s.peersClosed = true
	conns := s.peerConns
	s.peerConns = nil
	s.peerMu.Unlock()
	closeResolvedPeers(conns)
}

// resetPeers drops every pooled peer connection — including sticky dial
// failures — on a membership change: a restarted peer is reachable again,
// and surviving conns to a dead peer's old incarnation are useless.
func (s *Session) resetPeers() {
	s.peerMu.Lock()
	if s.peersClosed {
		s.peerMu.Unlock()
		return
	}
	conns := s.peerConns
	s.peerConns = nil
	s.peerMu.Unlock()
	closeResolvedPeers(conns)
}

// closeResolvedPeers closes every pool entry whose dial has resolved;
// in-flight dials clean up after themselves via the ownership re-check.
func closeResolvedPeers(conns map[string]*peerConn) {
	for _, pc := range conns {
		select {
		case <-pc.ready:
			if pc.client != nil {
				pc.client.Close()
			}
		default:
		}
	}
}

// execPushRange ships [Offset, Offset+Size) of a local replica to a peer.
// Two timing shapes share the handler: a migration push (DepartAt == 0)
// reads the range off the device, then crosses the node's egress link with
// the full payload; a broadcast forwarding hop (DepartAt > 0) relays data
// that is still arriving, so only the first chunk's link time separates
// this hop's arrival from the previous one (cut-through, matching the
// host-relay chain's hopDelay arithmetic). Either way the virtual arrival
// at the peer travels with the data and the host NIC is never charged.
func (s *Session) execPushRange(req *protocol.PushRangeReq, q *queueObj, ev *eventObj, buf *bufferObj, waits []*eventObj) (protocol.Message, error) {
	deadline, err := s.awaitDeadline(waits)
	if err != nil {
		return nil, s.failCommand(ev, err)
	}

	client, err := s.peerClient(req.PeerName)
	if err != nil {
		return nil, s.failCommand(ev, err)
	}

	modelBytes := req.Size
	if req.ModelBytes > 0 {
		modelBytes = req.ModelBytes
	}

	var start, arrival vtime.Time
	var submit vtime.Time // dependency-resolved instant, for Profile.Submit
	if req.DepartAt > 0 {
		// Forwarding hop: the payload is cut through, no device read. The
		// waits above are a functional presence edge only (the data must be
		// in the replica before we copy it out); virtually the forward
		// overlaps the predecessor's device write, so departure is the
		// host-planned instant, not the wait deadline.
		depart := vtime.Time(req.DepartAt)
		start = depart
		submit = depart
		_, arrival = s.node.nicOut.Transfer(depart, min(modelBytes, pushChunkBytes))
	} else {
		// Migration push: device read, then the full payload on the link.
		at := vtime.Max(vtime.Time(req.SimArrival), deadline)
		dur := q.dev.ModelTransfer(modelBytes)
		q.execMu.Lock()
		rstart, rend := q.clock.Reserve(at, dur)
		q.execMu.Unlock()
		q.stats.observeTransfer(modelBytes, q.dev.EnergyRate(), dur, rend)
		submit = at
		start = rstart
		_, arrival = s.node.nicOut.Transfer(rend, modelBytes)
	}

	data := make([]byte, req.Size)
	buf.mu.RLock()
	copy(data, buf.data[req.Offset:req.Offset+req.Size])
	buf.mu.RUnlock()

	push := &protocol.PeerPushReq{Token: req.Token, Data: data, SimArrival: int64(arrival)}
	if err := client.Call(push, nil); err != nil {
		err = remoteErr(protocol.CodeNodeLost, "push to peer %q: %v", req.PeerName, err)
		s.markPeerDown(req.PeerName, err)
		return nil, s.failCommand(ev, err)
	}

	prof := protocol.Profile{
		Queued: req.SimArrival, Submit: int64(submit), Start: int64(start), End: int64(arrival),
	}
	ev.complete(prof)
	return &protocol.EventResp{EventID: ev.id, Profile: prof}, nil
}

// execAwaitPush receives a deposited range into a local buffer. It blocks
// on the rendezvous entry for the token — the synchronization edge between
// the source's data plane and this node's command stream — then reserves
// the device-side write no earlier than the data's virtual arrival.
func (s *Session) execAwaitPush(req *protocol.AwaitPushReq, q *queueObj, ev *eventObj, buf *bufferObj, waits []*eventObj) (protocol.Message, error) {
	deadline, err := s.awaitDeadline(waits)
	if err != nil {
		return nil, s.failCommand(ev, err)
	}

	entry := s.node.rdv.entry(req.Token)
	select {
	case <-entry.done:
	case <-s.closedCh:
		return nil, s.failCommand(ev, remoteErr(protocol.CodeBadRequest,
			"session closed while awaiting push %d", req.Token))
	}
	if entry.err != nil {
		s.node.rdv.remove(req.Token)
		return nil, s.failCommand(ev, remoteErr(errCode(entry.err),
			"await push %d: %v", req.Token, entry.err))
	}
	if int64(len(entry.data)) != req.Size {
		s.node.rdv.remove(req.Token)
		return nil, s.failCommand(ev, remoteErr(protocol.CodeBadRequest,
			"push %d carried %d bytes, await expects %d", req.Token, len(entry.data), req.Size))
	}

	modelBytes := req.Size
	if req.ModelBytes > 0 {
		modelBytes = req.ModelBytes
	}
	arrival := vtime.Max(vtime.Max(vtime.Time(req.SimArrival), vtime.Time(entry.simArrival)), deadline)
	dur := q.dev.ModelTransfer(modelBytes)
	q.execMu.Lock()
	start, end := q.clock.Reserve(arrival, dur)
	buf.mu.Lock()
	copy(buf.data[req.Offset:], entry.data)
	buf.mu.Unlock()
	q.execMu.Unlock()
	s.node.rdv.remove(req.Token)

	q.stats.observeTransfer(modelBytes, q.dev.EnergyRate(), dur, end)
	prof := protocol.Profile{
		Queued: req.SimArrival, Submit: int64(arrival), Start: int64(start), End: int64(end),
	}
	ev.complete(prof)
	return &protocol.EventResp{EventID: ev.id, Profile: prof}, nil
}

// handlePeerPush is the deposit side of the rendezvous: it parks the data
// and returns immediately (the source's lane is blocked on this ack, and
// the consuming AwaitPush runs on a different session entirely, so the
// deposit must never wait on anything).
func (s *Session) handlePeerPush(body []byte) (protocol.Message, error) {
	var req protocol.PeerPushReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	if err := s.node.rdv.deposit(req.Token, req.Data, req.SimArrival); err != nil {
		return nil, err
	}
	return &protocol.EmptyResp{}, nil
}

// handleCancelPush aborts a pending rendezvous, failing its awaiter.
func (s *Session) handleCancelPush(body []byte) (protocol.Message, error) {
	var req protocol.CancelPushReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	s.node.rdv.cancel(req.Token, remoteErr(protocol.CodeNodeLost, "push cancelled: %s", req.Reason))
	return &protocol.EmptyResp{}, nil
}
