package node

import (
	"sync"

	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/transport"
	"github.com/haocl-project/haocl/internal/vtime"
)

// pushChunkBytes is the store-and-forward unit for broadcast cut-through:
// a forwarding hop starts relaying once the first chunk is in, so each
// extra hop adds only one chunk's link time, not the full buffer (mirrors
// core's broadcastChunkBytes).
const pushChunkBytes = 8 << 20

// rendezvous pairs inbound PeerPush deposits with the host-issued AwaitPush
// commands that consume them. It is node-global, not per-session: the
// deposit arrives on the source node's inbound connection while the
// AwaitPush rides the host's session, and the two must meet on the token.
// Whichever side arrives first creates the entry; the consumer deletes it.
type rendezvous struct {
	mu      sync.Mutex
	entries map[uint64]*rdvEntry
}

// rdvEntry is one pending push. done is closed exactly once — by the
// deposit or by a cancel — after which data/simArrival/err are immutable.
type rdvEntry struct {
	done       chan struct{}
	data       []byte
	simArrival int64
	err        error
}

func newRendezvous() *rendezvous {
	return &rendezvous{entries: make(map[uint64]*rdvEntry)}
}

// entry returns the rendezvous entry for token, creating it if this is the
// first side to arrive.
func (r *rendezvous) entry(token uint64) *rdvEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[token]
	if e == nil {
		e = &rdvEntry{done: make(chan struct{})}
		r.entries[token] = e
	}
	return e
}

// deposit parks pushed data under token, waking the awaiter.
func (r *rendezvous) deposit(token uint64, data []byte, simArrival int64) error {
	e := r.entry(token)
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case <-e.done:
		return remoteErr(protocol.CodeBadRequest, "duplicate push for token %d", token)
	default:
	}
	e.data = data
	e.simArrival = simArrival
	close(e.done)
	return nil
}

// cancel fails a pending rendezvous so its awaiter errors out instead of
// parking forever. Cancelling an already-completed entry is a no-op: the
// cancel raced a deposit that made it through, and the data wins.
func (r *rendezvous) cancel(token uint64, err error) {
	e := r.entry(token)
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case <-e.done:
		return
	default:
	}
	e.err = err
	close(e.done)
}

// remove drops a consumed entry.
func (r *rendezvous) remove(token uint64) {
	r.mu.Lock()
	delete(r.entries, token)
	r.mu.Unlock()
}

// peerConn is one pooled connection to a sibling node. A dial or handshake
// failure is sticky: every later push toward that peer fails fast with the
// same error instead of re-dialing a dead address mid-chain.
type peerConn struct {
	client *transport.Client
	err    error
}

// peerClient returns the pooled connection to the named peer, dialing
// lazily on first use with the address book learned at Hello time. The
// pool lives on the session, so a host disconnect tears down exactly the
// peer links its own commands opened.
func (s *Session) peerClient(name string) (*transport.Client, error) {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	if s.peerConns == nil {
		s.peerConns = make(map[string]*peerConn)
	}
	if pc, ok := s.peerConns[name]; ok {
		return pc.client, pc.err
	}
	pc := &peerConn{}
	s.peerConns[name] = pc
	pc.client, pc.err = s.dialPeer(name)
	return pc.client, pc.err
}

// dialPeer opens and handshakes one peer connection.
func (s *Session) dialPeer(name string) (*transport.Client, error) {
	s.mu.Lock()
	addr, ok := s.peers[name]
	s.mu.Unlock()
	if !ok {
		return nil, remoteErr(protocol.CodeUnknownObject,
			"node %q has no address for peer %q (host did not send a peer list)", s.node.name, name)
	}
	if s.node.dialer == nil {
		return nil, remoteErr(protocol.CodeUnsupported,
			"node %q cannot dial peers: no dialer configured", s.node.name)
	}
	client, err := s.node.dialer.Dial(addr)
	if err != nil {
		return nil, remoteErr(protocol.CodeInternal, "dial peer %q at %q: %v", name, addr, err)
	}
	resp, err := transport.Handshake(client, protocol.HelloReq{
		UserID:     s.user(),
		ClientName: "peer:" + s.node.name,
	})
	if err != nil {
		client.Close()
		return nil, remoteErr(protocol.CodeInternal, "handshake with peer %q: %v", name, err)
	}
	if resp.WireVersion >= protocol.VersionBatch {
		client.EnableBatching()
	}
	return client, nil
}

// markPeerDown makes a mid-session send failure sticky and closes the
// broken connection, so dependent pushes fail fast instead of queuing onto
// a dead socket.
func (s *Session) markPeerDown(name string, err error) {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	pc := s.peerConns[name]
	if pc == nil || pc.err != nil {
		return
	}
	pc.err = err
	if pc.client != nil {
		pc.client.Close()
		pc.client = nil
	}
}

// closePeers tears the session's peer pool down on Close.
func (s *Session) closePeers() {
	s.peerMu.Lock()
	conns := s.peerConns
	s.peerConns = nil
	s.peerMu.Unlock()
	for _, pc := range conns {
		if pc.client != nil {
			pc.client.Close()
		}
	}
}

// execPushRange ships [Offset, Offset+Size) of a local replica to a peer.
// Two timing shapes share the handler: a migration push (DepartAt == 0)
// reads the range off the device, then crosses the node's egress link with
// the full payload; a broadcast forwarding hop (DepartAt > 0) relays data
// that is still arriving, so only the first chunk's link time separates
// this hop's arrival from the previous one (cut-through, matching the
// host-relay chain's hopDelay arithmetic). Either way the virtual arrival
// at the peer travels with the data and the host NIC is never charged.
func (s *Session) execPushRange(req *protocol.PushRangeReq, q *queueObj, ev *eventObj, buf *bufferObj, waits []*eventObj) (protocol.Message, error) {
	deadline, err := s.awaitDeadline(waits)
	if err != nil {
		return nil, s.failCommand(ev, err)
	}

	client, err := s.peerClient(req.PeerName)
	if err != nil {
		return nil, s.failCommand(ev, err)
	}

	modelBytes := req.Size
	if req.ModelBytes > 0 {
		modelBytes = req.ModelBytes
	}

	var start, arrival vtime.Time
	if req.DepartAt > 0 {
		// Forwarding hop: the payload is cut through, no device read. The
		// waits above are a functional presence edge only (the data must be
		// in the replica before we copy it out); virtually the forward
		// overlaps the predecessor's device write, so departure is the
		// host-planned instant, not the wait deadline.
		depart := vtime.Time(req.DepartAt)
		start = depart
		_, arrival = s.node.nicOut.Transfer(depart, min(modelBytes, pushChunkBytes))
	} else {
		// Migration push: device read, then the full payload on the link.
		at := vtime.Max(vtime.Time(req.SimArrival), deadline)
		dur := q.dev.ModelTransfer(modelBytes)
		q.execMu.Lock()
		rstart, rend := q.clock.Reserve(at, dur)
		q.execMu.Unlock()
		q.stats.observeTransfer(modelBytes, q.dev.EnergyRate(), dur, rend)
		start = rstart
		_, arrival = s.node.nicOut.Transfer(rend, modelBytes)
	}

	data := make([]byte, req.Size)
	buf.mu.RLock()
	copy(data, buf.data[req.Offset:req.Offset+req.Size])
	buf.mu.RUnlock()

	push := &protocol.PeerPushReq{Token: req.Token, Data: data, SimArrival: int64(arrival)}
	if err := client.Call(push, nil); err != nil {
		err = remoteErr(protocol.CodeInternal, "push to peer %q: %v", req.PeerName, err)
		s.markPeerDown(req.PeerName, err)
		return nil, s.failCommand(ev, err)
	}

	prof := protocol.Profile{
		Queued: req.SimArrival, Submit: int64(start), Start: int64(start), End: int64(arrival),
	}
	ev.complete(prof)
	return &protocol.EventResp{EventID: ev.id, Profile: prof}, nil
}

// execAwaitPush receives a deposited range into a local buffer. It blocks
// on the rendezvous entry for the token — the synchronization edge between
// the source's data plane and this node's command stream — then reserves
// the device-side write no earlier than the data's virtual arrival.
func (s *Session) execAwaitPush(req *protocol.AwaitPushReq, q *queueObj, ev *eventObj, buf *bufferObj, waits []*eventObj) (protocol.Message, error) {
	deadline, err := s.awaitDeadline(waits)
	if err != nil {
		return nil, s.failCommand(ev, err)
	}

	entry := s.node.rdv.entry(req.Token)
	select {
	case <-entry.done:
	case <-s.closedCh:
		return nil, s.failCommand(ev, remoteErr(protocol.CodeBadRequest,
			"session closed while awaiting push %d", req.Token))
	}
	if entry.err != nil {
		s.node.rdv.remove(req.Token)
		return nil, s.failCommand(ev, remoteErr(errCode(entry.err),
			"await push %d: %v", req.Token, entry.err))
	}
	if int64(len(entry.data)) != req.Size {
		s.node.rdv.remove(req.Token)
		return nil, s.failCommand(ev, remoteErr(protocol.CodeBadRequest,
			"push %d carried %d bytes, await expects %d", req.Token, len(entry.data), req.Size))
	}

	modelBytes := req.Size
	if req.ModelBytes > 0 {
		modelBytes = req.ModelBytes
	}
	arrival := vtime.Max(vtime.Max(vtime.Time(req.SimArrival), vtime.Time(entry.simArrival)), deadline)
	dur := q.dev.ModelTransfer(modelBytes)
	q.execMu.Lock()
	start, end := q.clock.Reserve(arrival, dur)
	buf.mu.Lock()
	copy(buf.data[req.Offset:], entry.data)
	buf.mu.Unlock()
	q.execMu.Unlock()
	s.node.rdv.remove(req.Token)

	q.stats.observeTransfer(modelBytes, q.dev.EnergyRate(), dur, end)
	prof := protocol.Profile{
		Queued: req.SimArrival, Submit: int64(start), Start: int64(start), End: int64(end),
	}
	ev.complete(prof)
	return &protocol.EventResp{EventID: ev.id, Profile: prof}, nil
}

// handlePeerPush is the deposit side of the rendezvous: it parks the data
// and returns immediately (the source's lane is blocked on this ack, and
// the consuming AwaitPush runs on a different session entirely, so the
// deposit must never wait on anything).
func (s *Session) handlePeerPush(body []byte) (protocol.Message, error) {
	var req protocol.PeerPushReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	if err := s.node.rdv.deposit(req.Token, req.Data, req.SimArrival); err != nil {
		return nil, err
	}
	return &protocol.EmptyResp{}, nil
}

// handleCancelPush aborts a pending rendezvous, failing its awaiter.
func (s *Session) handleCancelPush(body []byte) (protocol.Message, error) {
	var req protocol.CancelPushReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	s.node.rdv.cancel(req.Token, remoteErr(protocol.CodeInternal, "push cancelled: %s", req.Reason))
	return &protocol.EmptyResp{}, nil
}
