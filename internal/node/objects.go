package node

import (
	"sync"

	"github.com/haocl-project/haocl/internal/clc"
	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/kernel"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/vtime"
)

// objectTable holds every remote object the node has handed out. Handles
// are node-global (the host may reach the same object over several
// connections), but queue objects remember their owning user so exclusive
// devices can be enforced and sessions can clean up on disconnect.
//
// Events are the exception: they live in the Session, not here. Their IDs
// are host-assigned (so the host can pipeline commands that wait on events
// whose creating command has not responded yet), and host counters are
// only unique per connection.
type objectTable struct {
	mu     sync.Mutex
	nextID uint64 // guarded by mu

	contexts map[uint64]*contextObj // guarded by mu
	queues   map[uint64]*queueObj   // guarded by mu
	buffers  map[uint64]*bufferObj  // guarded by mu
	programs map[uint64]*programObj // guarded by mu
	kernels  map[uint64]*kernelObj  // guarded by mu
}

func newObjectTable() *objectTable {
	return &objectTable{
		contexts: make(map[uint64]*contextObj),
		queues:   make(map[uint64]*queueObj),
		buffers:  make(map[uint64]*bufferObj),
		programs: make(map[uint64]*programObj),
		kernels:  make(map[uint64]*kernelObj),
	}
}

type contextObj struct {
	id      uint64
	devices []uint32

	// sessionID and tenant attribute the context to one host-side session:
	// node logs and accounting can tell tenants apart. Pre-session hosts
	// leave them 0/"" — one anonymous session.
	sessionID uint64
	tenant    string
}

type queueObj struct {
	id        uint64
	dev       device.Device
	stats     *deviceStats
	owner     string // user ID that created the queue
	profiling bool

	// clock orders the queue's commands in virtual time.
	clock vtime.Clock
	// execMu serializes functional execution, preserving in-order
	// command-queue semantics when multiple host goroutines enqueue.
	execMu sync.Mutex
}

type bufferObj struct {
	id uint64
	// size is immutable after construction; the registration stage bounds-
	// checks against it without touching the guarded bytes.
	size int64
	mu   sync.RWMutex
	data []byte // guarded by mu
}

type programObj struct {
	id     uint64
	prog   *clc.Program
	log    string
	source string
}

type kernelObj struct {
	id   uint64
	name string
	sig  *clc.Kernel
	spec *kernel.Spec
}

// eventObj is one completion event in a session's table. Its lifecycle is
// split in two (DESIGN.md §4): *registration* claims the ID in wire-arrival
// order (claimed, guarded by Session.mu), and *completion* happens when the
// command finishes executing on its lane — done is closed exactly once,
// after which profile and err are immutable. An eventObj may also be born
// as an unclaimed placeholder by a wait-list lookup that ran ahead of the
// creating command; waiters block on done either way.
type eventObj struct {
	id      uint64
	claimed bool          // guarded by Session.mu
	done    chan struct{} // closed on completion or failure
	profile protocol.Profile
	err     error
}

func newEvent(id uint64) *eventObj {
	return &eventObj{id: id, done: make(chan struct{})}
}

// complete publishes the command's profile and wakes every waiter.
func (e *eventObj) complete(p protocol.Profile) {
	e.profile = p
	close(e.done)
}

// fail marks the command failed; waiters observe the error instead of a
// deadline.
func (e *eventObj) fail(err error) {
	e.err = err
	close(e.done)
}

// newID allocates the next object ID. Caller holds t.mu.
func (t *objectTable) newID() uint64 {
	t.nextID++
	return t.nextID
}

func (t *objectTable) putContext(c *contextObj) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	c.id = t.newID()
	t.contexts[c.id] = c
	return c.id
}

func (t *objectTable) context(id uint64) (*contextObj, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.contexts[id]
	if !ok {
		return nil, remoteErr(protocol.CodeUnknownObject, "unknown context %d", id)
	}
	return c, nil
}

func (t *objectTable) putQueue(q *queueObj) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	q.id = t.newID()
	t.queues[q.id] = q
	return q.id
}

func (t *objectTable) queue(id uint64) (*queueObj, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	q, ok := t.queues[id]
	if !ok {
		return nil, remoteErr(protocol.CodeUnknownObject, "unknown queue %d", id)
	}
	return q, nil
}

func (t *objectTable) putBuffer(b *bufferObj) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	b.id = t.newID()
	t.buffers[b.id] = b
	return b.id
}

func (t *objectTable) buffer(id uint64) (*bufferObj, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.buffers[id]
	if !ok {
		return nil, remoteErr(protocol.CodeUnknownObject, "unknown buffer %d", id)
	}
	return b, nil
}

func (t *objectTable) putProgram(p *programObj) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	p.id = t.newID()
	t.programs[p.id] = p
	return p.id
}

func (t *objectTable) program(id uint64) (*programObj, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.programs[id]
	if !ok {
		return nil, remoteErr(protocol.CodeUnknownObject, "unknown program %d", id)
	}
	return p, nil
}

func (t *objectTable) putKernel(k *kernelObj) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	k.id = t.newID()
	t.kernels[k.id] = k
	return k.id
}

func (t *objectTable) kernel(id uint64) (*kernelObj, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k, ok := t.kernels[id]
	if !ok {
		return nil, remoteErr(protocol.CodeUnknownObject, "unknown kernel %d", id)
	}
	return k, nil
}

// release removes one object, returning whether it existed, plus the queue
// object when a queue was released so the caller can update user counts.
func (t *objectTable) release(kind protocol.ObjectKind, id uint64) (*queueObj, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch kind {
	case protocol.ObjContext:
		if _, ok := t.contexts[id]; !ok {
			return nil, remoteErr(protocol.CodeUnknownObject, "release: unknown context %d", id)
		}
		delete(t.contexts, id)
	case protocol.ObjQueue:
		q, ok := t.queues[id]
		if !ok {
			return nil, remoteErr(protocol.CodeUnknownObject, "release: unknown queue %d", id)
		}
		delete(t.queues, id)
		return q, nil
	case protocol.ObjBuffer:
		if _, ok := t.buffers[id]; !ok {
			return nil, remoteErr(protocol.CodeUnknownObject, "release: unknown buffer %d", id)
		}
		delete(t.buffers, id)
	case protocol.ObjProgram:
		if _, ok := t.programs[id]; !ok {
			return nil, remoteErr(protocol.CodeUnknownObject, "release: unknown program %d", id)
		}
		delete(t.programs, id)
	case protocol.ObjKernel:
		if _, ok := t.kernels[id]; !ok {
			return nil, remoteErr(protocol.CodeUnknownObject, "release: unknown kernel %d", id)
		}
		delete(t.kernels, id)
	default:
		return nil, remoteErr(protocol.CodeBadRequest, "release: unknown object kind %d", kind)
	}
	return nil, nil
}
