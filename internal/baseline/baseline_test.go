package baseline

import (
	"strings"
	"testing"

	"github.com/haocl-project/haocl/internal/kernel"
	"github.com/haocl-project/haocl/internal/sim"
)

func sampleWorkload() Workload {
	return Workload{
		Name:              "sample",
		BroadcastBytes:    100 << 20,
		PartitionedBytes:  400 << 20,
		TotalCost:         kernel.Cost{Flops: 1e12, Bytes: 4e12},
		SerialCost:        kernel.Cost{Flops: 1e6},
		OutputBytes:       50 << 20,
		CommandsPerDevice: 10,
		SnuCLDSupported:   true,
	}
}

func TestCostHelpers(t *testing.T) {
	c := ScaleCost(kernel.Cost{Flops: 3, Bytes: 5}, 4)
	if c.Flops != 12 || c.Bytes != 20 {
		t.Fatalf("ScaleCost = %+v", c)
	}
	s := SumCost(kernel.Cost{Flops: 1, Bytes: 2}, kernel.Cost{Flops: 10, Bytes: 20})
	if s.Flops != 11 || s.Bytes != 22 {
		t.Fatalf("SumCost = %+v", s)
	}
}

func TestLocalBreakdown(t *testing.T) {
	res := Local(sampleWorkload(), sim.TeslaP4Params(1))
	if !res.Supported || res.Devices != 1 {
		t.Fatalf("res = %+v", res)
	}
	if res.DataCreate <= 0 || res.Transfer <= 0 || res.Compute <= 0 {
		t.Fatalf("missing components: %+v", res)
	}
	if res.Total != res.DataCreate+res.Transfer+res.Compute {
		t.Fatal("total is not the sum of components")
	}
	// The FPGA with lower throughput takes longer on the same workload.
	fpga := Local(sampleWorkload(), sim.VU9PParams(1, nil))
	if fpga.Compute <= res.Compute {
		t.Fatalf("FPGA compute %v not slower than GPU %v", fpga.Compute, res.Compute)
	}
	if res.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSnuCLDScalingShape(t *testing.T) {
	w := sampleWorkload()
	dev := sim.TeslaP4Params(1)
	t1 := SnuCLD(w, dev, 1)
	t4 := SnuCLD(w, dev, 4)
	t16 := SnuCLD(w, dev, 16)
	if !t4.Supported {
		t.Fatal("supported workload reported unsupported")
	}
	// Compute shrinks with nodes.
	if t4.Compute >= t1.Compute || t16.Compute >= t4.Compute {
		t.Fatalf("compute not scaling: %v %v %v", t1.Compute, t4.Compute, t16.Compute)
	}
	// Replication traffic grows with nodes — the structural cost HaoCL's
	// partitioned transfers avoid.
	if t4.Transfer <= t1.Transfer || t16.Transfer <= t4.Transfer {
		t.Fatalf("replication traffic not growing: %v %v %v", t1.Transfer, t4.Transfer, t16.Transfer)
	}
	// For this transfer-heavy workload, 16-node SnuCL-D is worse than
	// 4-node: the replication wall.
	if t16.Total <= t4.Total {
		t.Fatalf("expected replication wall: t16=%v t4=%v", t16.Total, t4.Total)
	}
}

func TestSnuCLDUnsupported(t *testing.T) {
	w := sampleWorkload()
	w.SnuCLDSupported = false
	res := SnuCLD(w, sim.TeslaP4Params(1), 4)
	if res.Supported {
		t.Fatal("unsupported workload ran")
	}
	if !strings.Contains(res.String(), "unsupported") {
		t.Fatalf("String = %q", res.String())
	}
}

func TestSnuCLDSerialStageNotParallelized(t *testing.T) {
	w := sampleWorkload()
	w.TotalCost = kernel.Cost{}
	w.SerialCost = kernel.Cost{Flops: 1e12}
	dev := sim.TeslaP4Params(1)
	t1 := SnuCLD(w, dev, 1)
	t8 := SnuCLD(w, dev, 8)
	if t8.Compute < t1.Compute {
		t.Fatalf("serial stage parallelized: %v < %v", t8.Compute, t1.Compute)
	}
}

func TestSnuCLDClampsNodeCount(t *testing.T) {
	res := SnuCLD(sampleWorkload(), sim.TeslaP4Params(1), 0)
	if !res.Supported || res.Compute <= 0 {
		t.Fatalf("res = %+v", res)
	}
}
