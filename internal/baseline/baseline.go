// Package baseline implements the comparison systems of the paper's
// evaluation: the Local single-node native-OpenCL configuration that
// anchors the speedup axes of Fig. 2, and a SnuCL-D-style distributed
// OpenCL runtime (Kim et al., PLDI 2016) built on redundant host-program
// execution with data replication.
//
// Both baselines share HaoCL's device and network models (internal/sim),
// so every difference in reported time comes from the *structural* costs
// the designs differ on:
//
//   - Local runs on one device with no network: data creation + PCIe
//     staging + compute.
//   - SnuCL-D replicates the host program and every buffer to all nodes:
//     each node receives the FULL input through the host's star topology
//     (n transfers on the host NIC, against HaoCL's partitioned sends and
//     pipelined chain broadcasts), pays per-command control overhead
//     reduced by command replay, cannot split pipeline stages across
//     device types, and — as the paper notes — cannot run CFD at all
//     without significant change.
package baseline

import (
	"fmt"
	"time"

	"github.com/haocl-project/haocl/internal/kernel"
	"github.com/haocl-project/haocl/internal/sim"
	"github.com/haocl-project/haocl/internal/vtime"
)

// Workload is the analytic description of one benchmark run at paper
// scale, supplied by each app in internal/apps.
type Workload struct {
	// Name labels the benchmark.
	Name string
	// BroadcastBytes is input every device needs (e.g. matmul's B).
	BroadcastBytes int64
	// PartitionedBytes is input split across devices (e.g. matmul's A).
	PartitionedBytes int64
	// TotalCost is the full compute cost, divided evenly by data
	// partitioning.
	TotalCost kernel.Cost
	// SerialCost is a non-partitionable stage (e.g. SpMV's partition
	// kernel); SnuCL-D replays it on every node, HaoCL runs it once.
	SerialCost kernel.Cost
	// OutputBytes is the result read back to the host.
	OutputBytes int64
	// CommandsPerDevice approximates the OpenCL API calls issued per
	// device (control-latency term).
	CommandsPerDevice int
	// SnuCLDSupported is false for CFD (paper §IV-B).
	SnuCLDSupported bool
}

// ScaleCost multiplies a cost by an iteration or batch count.
func ScaleCost(c kernel.Cost, times int) kernel.Cost {
	return kernel.Cost{Flops: c.Flops * int64(times), Bytes: c.Bytes * int64(times)}
}

// SumCost adds costs across pipeline stages.
func SumCost(cs ...kernel.Cost) kernel.Cost {
	var out kernel.Cost
	for _, c := range cs {
		out.Flops += c.Flops
		out.Bytes += c.Bytes
	}
	return out
}

// deviceTime is the roofline kernel time for cost c on device params p.
func deviceTime(p sim.Params, c kernel.Cost) vtime.Duration {
	computeSec := float64(c.Flops) / (p.Info.PeakGFLOPS * p.EffCompute * 1e9)
	memSec := float64(c.Bytes) / (p.Info.MemBWGBps * p.EffMem * 1e9)
	sec := computeSec
	if memSec > sec {
		sec = memSec
	}
	return vtime.Duration(sec * 1e9)
}

func pcieTime(p sim.Params, bytes int64) vtime.Duration {
	return vtime.Duration(float64(bytes) / (p.Info.PCIeGBps * 1e9) * 1e9)
}

func hostCreateTime(bytes int64) vtime.Duration {
	return vtime.Duration(float64(bytes) / sim.HostCreateBytesPerSec * 1e9)
}

func netTime(bytes int64, messages int) vtime.Duration {
	return vtime.Duration(float64(bytes)/sim.GigabitBytesPerSec*1e9) +
		time.Duration(messages)*sim.MessageLatency
}

// LocalResult is a baseline run's breakdown.
type LocalResult struct {
	System     string
	Devices    int
	DataCreate vtime.Duration
	Transfer   vtime.Duration
	Compute    vtime.Duration
	Total      vtime.Duration
	// Supported is false when the system cannot run the workload.
	Supported bool
}

// Local models the workload on a single node with a native OpenCL driver:
// no networking, data staged over PCIe once.
func Local(w Workload, dev sim.Params) LocalResult {
	in := w.BroadcastBytes + w.PartitionedBytes
	create := hostCreateTime(in)
	xfer := pcieTime(dev, in+w.OutputBytes)
	compute := deviceTime(dev, w.TotalCost) + deviceTime(dev, w.SerialCost) +
		vtime.Duration(w.CommandsPerDevice)*dev.Info.LaunchOverhead
	return LocalResult{
		System:     "Local-" + dev.Info.Type.String(),
		Devices:    1,
		DataCreate: create,
		Transfer:   xfer,
		Compute:    compute,
		Total:      create + xfer + compute,
		Supported:  true,
	}
}

// snuclCommandLatency is the per-command control cost under command
// replay: local queue insertion instead of a network round trip.
const snuclCommandLatency = 20 * time.Microsecond

// SnuCLD models the workload on n identical device nodes under the
// SnuCL-D execution model.
func SnuCLD(w Workload, dev sim.Params, n int) LocalResult {
	res := LocalResult{System: "SnuCL-D", Devices: n, Supported: w.SnuCLDSupported}
	if !w.SnuCLDSupported {
		return res
	}
	if n < 1 {
		n = 1
	}
	in := w.BroadcastBytes + w.PartitionedBytes
	res.DataCreate = hostCreateTime(in)

	// Data replication: every node receives the full input through the
	// host's star topology, serialized on the host NIC.
	res.Transfer = netTime(in*int64(n), w.CommandsPerDevice*n) +
		netTime(w.OutputBytes, n) +
		pcieTime(dev, in+w.OutputBytes/int64(n))

	// Compute is data-partitioned like HaoCL's, but the serial stage is
	// replayed redundantly on every node (adding no parallel benefit)
	// and commands pay the replay overhead.
	perDev := kernel.Cost{Flops: w.TotalCost.Flops / int64(n), Bytes: w.TotalCost.Bytes / int64(n)}
	res.Compute = deviceTime(dev, perDev) + deviceTime(dev, w.SerialCost) +
		vtime.Duration(w.CommandsPerDevice)*(dev.Info.LaunchOverhead+snuclCommandLatency)

	res.Total = res.DataCreate + res.Transfer + res.Compute
	return res
}

// String renders the result as one harness row.
func (r LocalResult) String() string {
	if !r.Supported {
		return fmt.Sprintf("%-10s dev=%-2d unsupported", r.System, r.Devices)
	}
	return fmt.Sprintf("%-10s dev=%-2d total=%9.3fs create=%8.3fs xfer=%8.3fs compute=%9.3fs",
		r.System, r.Devices, r.Total.Seconds(), r.DataCreate.Seconds(),
		r.Transfer.Seconds(), r.Compute.Seconds())
}
