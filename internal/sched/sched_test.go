package sched

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/haocl-project/haocl/internal/kernel"
	"github.com/haocl-project/haocl/internal/profile"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/vtime"
)

func view(node string, id uint32, t protocol.DeviceType, peak, bw, tdp float64, busy int64) profile.DeviceView {
	return profile.DeviceView{
		Key:    profile.DeviceKey{Node: node, DeviceID: id},
		Info:   protocol.DeviceInfo{ID: id, Type: t, PeakGFLOPS: peak, MemBWGBps: bw, TDPWatts: tdp},
		Status: protocol.DeviceStatus{DeviceID: id, BusyUntil: busy},
	}
}

func testCluster() []profile.DeviceView {
	return []profile.DeviceView{
		view("cpu-0", 1, protocol.DeviceCPU, 1320, 76.8, 145, 0),
		view("gpu-0", 1, protocol.DeviceGPU, 5500, 192, 75, 0),
		view("gpu-1", 1, protocol.DeviceGPU, 5500, 192, 75, 0),
		view("fpga-0", 1, protocol.DeviceFPGA, 1800, 34, 45, 0),
	}
}

func TestTypeMask(t *testing.T) {
	task := Task{TypeMask: TypeMaskFor(protocol.DeviceGPU, protocol.DeviceFPGA)}
	if !task.WantsType(protocol.DeviceGPU) || !task.WantsType(protocol.DeviceFPGA) {
		t.Fatal("mask excludes wanted types")
	}
	if task.WantsType(protocol.DeviceCPU) {
		t.Fatal("mask includes CPU")
	}
	if !(Task{}).WantsType(protocol.DeviceCPU) {
		t.Fatal("empty mask must admit everything")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	p := &RoundRobin{}
	vw := testCluster()
	seen := make(map[profile.DeviceKey]int)
	for i := 0; i < 8; i++ {
		a, err := p.Assign(Task{Kernel: "k"}, vw)
		if err != nil {
			t.Fatal(err)
		}
		seen[a.Key]++
	}
	if len(seen) != 4 {
		t.Fatalf("visited %d devices, want 4", len(seen))
	}
	for k, c := range seen {
		if c != 2 {
			t.Fatalf("device %s assigned %d times, want 2", k, c)
		}
	}
}

func TestRoundRobinRespectsMask(t *testing.T) {
	p := &RoundRobin{}
	task := Task{Kernel: "k", TypeMask: TypeMaskFor(protocol.DeviceGPU)}
	for i := 0; i < 6; i++ {
		a, err := p.Assign(task, testCluster())
		if err != nil {
			t.Fatal(err)
		}
		if a.Key.Node != "gpu-0" && a.Key.Node != "gpu-1" {
			t.Fatalf("assigned to %s", a.Key)
		}
	}
}

func TestNoEligibleDevice(t *testing.T) {
	for _, p := range []Policy{&RoundRobin{}, LeastLoaded{}, HeteroAware{}, PowerAware{}} {
		_, err := p.Assign(Task{Kernel: "k", TypeMask: 1 << 7}, testCluster())
		if !errors.Is(err, ErrNoDevice) {
			t.Errorf("%s: err = %v", p.Name(), err)
		}
	}
}

func TestLeastLoadedPicksIdle(t *testing.T) {
	vw := testCluster()
	vw[1].Status.BusyUntil = 1e9 // gpu-0 busy for a second
	vw[2].Pending = 0            // gpu-1 idle
	a, err := LeastLoaded{}.Assign(Task{Kernel: "k", TypeMask: TypeMaskFor(protocol.DeviceGPU)}, vw)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key.Node != "gpu-1" {
		t.Fatalf("assigned to %s, want gpu-1", a.Key)
	}
	// Pending load counts toward the expected-free instant.
	vw[2].Pending = vtime.Duration(2e9)
	a, err = LeastLoaded{}.Assign(Task{Kernel: "k", TypeMask: TypeMaskFor(protocol.DeviceGPU)}, vw)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key.Node != "gpu-0" {
		t.Fatalf("pending ignored: assigned to %s", a.Key)
	}
}

func TestHeteroAwarePrefersFasterDevice(t *testing.T) {
	// Compute-heavy task, idle cluster: the GPU's higher peak wins over
	// CPU and FPGA.
	task := Task{Kernel: "k", Cost: kernel.Cost{Flops: 1e12}}
	a, err := HeteroAware{}.Assign(task, testCluster())
	if err != nil {
		t.Fatal(err)
	}
	if a.Key.Node != "gpu-0" && a.Key.Node != "gpu-1" {
		t.Fatalf("assigned to %s, want a GPU", a.Key)
	}
}

func TestHeteroAwareAvoidsBusyDevice(t *testing.T) {
	vw := testCluster()
	// Both GPUs deeply busy; the CPU finishes this small task sooner.
	vw[1].Status.BusyUntil = int64(100e9)
	vw[2].Status.BusyUntil = int64(100e9)
	task := Task{Kernel: "k", Cost: kernel.Cost{Flops: 1e9}}
	a, err := HeteroAware{}.Assign(task, vw)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key.Node == "gpu-0" || a.Key.Node == "gpu-1" {
		t.Fatalf("assigned to busy device %s", a.Key)
	}
}

func TestHeteroAwareUsesObservedRates(t *testing.T) {
	vw := []profile.DeviceView{
		view("slowpeak", 1, protocol.DeviceGPU, 100, 192, 75, 0),
		view("fastpeak", 1, protocol.DeviceGPU, 9999, 192, 75, 0),
	}
	// Runtime profiling says the slow-peak device actually sustains far
	// more than the fast-peak one (e.g. the fast one is thermally
	// throttled): observations must dominate the static model.
	vw[0].Status.EWMAGFLOPS = 5000
	vw[1].Status.EWMAGFLOPS = 10
	task := Task{Kernel: "k", Cost: kernel.Cost{Flops: 1e12}}
	a, err := HeteroAware{}.Assign(task, vw)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key.Node != "slowpeak" {
		t.Fatalf("observed rate ignored: assigned to %s", a.Key)
	}
}

func TestHeteroAwareTransferPenalty(t *testing.T) {
	vw := []profile.DeviceView{
		view("near", 1, protocol.DeviceGPU, 5500, 192, 75, 0),
		view("far", 1, protocol.DeviceGPU, 5500, 192, 75, 0),
	}
	// Equal devices: any pick is fine. With the far device pre-loaded,
	// the near one must win even with input movement.
	vw[1].Status.BusyUntil = int64(10e9)
	task := Task{Kernel: "k", Cost: kernel.Cost{Flops: 1e9}, InputBytes: 1 << 20}
	a, err := HeteroAware{}.Assign(task, vw)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key.Node != "near" {
		t.Fatalf("assigned to %s", a.Key)
	}
}

func TestPowerAwarePicksFPGA(t *testing.T) {
	// Against a 250 W datacenter GPU the 45 W FPGA wins on energy even
	// though the GPU finishes sooner: the paper's power-efficiency
	// motivation for FPGA compute stages.
	vw := []profile.DeviceView{
		view("big-gpu", 1, protocol.DeviceGPU, 5500, 900, 250, 0),
		view("fpga-0", 1, protocol.DeviceFPGA, 1800, 34, 45, 0),
	}
	task := Task{Kernel: "stream", Cost: kernel.Cost{Flops: 1e11}}
	a, err := PowerAware{}.Assign(task, vw)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key.Node != "fpga-0" {
		t.Fatalf("assigned to %s, want fpga-0", a.Key)
	}
	// The same pick under hetero-aware (time-optimal) goes to the GPU.
	a, err = HeteroAware{}.Assign(task, vw)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key.Node != "big-gpu" {
		t.Fatalf("hetero-aware assigned to %s, want big-gpu", a.Key)
	}
}

func TestPowerAwareSlackBound(t *testing.T) {
	// With a tight slack factor the FPGA (slower than GPU) is excluded.
	task := Task{Kernel: "stream", Cost: kernel.Cost{Flops: 1e12}}
	a, err := PowerAware{SlackFactor: 1.05}.Assign(task, testCluster())
	if err != nil {
		t.Fatal(err)
	}
	if a.Key.Node != "gpu-0" && a.Key.Node != "gpu-1" {
		t.Fatalf("slack bound ignored: %s", a.Key)
	}
}

func TestUserDirected(t *testing.T) {
	p := NewUserDirected()
	gpuKey := profile.DeviceKey{Node: "gpu-1", DeviceID: 1}
	p.Place("pinned", gpuKey)
	p.PlaceType("typed", protocol.DeviceFPGA)

	a, err := p.Assign(Task{Kernel: "pinned"}, testCluster())
	if err != nil || a.Key != gpuKey {
		t.Fatalf("pin: %v %v", a, err)
	}
	a, err = p.Assign(Task{Kernel: "typed"}, testCluster())
	if err != nil || a.Key.Node != "fpga-0" {
		t.Fatalf("type placement: %v %v", a, err)
	}
	// Unmapped kernel without fallback fails.
	if _, err := p.Assign(Task{Kernel: "unmapped"}, testCluster()); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("err = %v", err)
	}
	// With a fallback it succeeds.
	p.Fallback = LeastLoaded{}
	if _, err := p.Assign(Task{Kernel: "unmapped"}, testCluster()); err != nil {
		t.Fatal(err)
	}
	// A pin to a vanished device fails loudly rather than misplacing.
	p.Place("ghost", profile.DeviceKey{Node: "gone", DeviceID: 9})
	if _, err := p.Assign(Task{Kernel: "ghost"}, testCluster()); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("err = %v", err)
	}
}

// TestAssignmentsAlwaysEligible: every policy must only ever pick devices
// matching the task's type mask.
func TestAssignmentsAlwaysEligible(t *testing.T) {
	policies := []Policy{&RoundRobin{}, LeastLoaded{}, HeteroAware{}, PowerAware{SlackFactor: 2}}
	check := func(maskBits uint8, flops uint32, busy0, busy1 uint32) bool {
		mask := maskBits % 8
		vw := testCluster()
		vw[0].Status.BusyUntil = int64(busy0)
		vw[1].Status.BusyUntil = int64(busy1)
		task := Task{Kernel: "k", TypeMask: mask, Cost: kernel.Cost{Flops: int64(flops)}}
		for _, p := range policies {
			a, err := p.Assign(task, vw)
			if err != nil {
				continue // no eligible device for this mask
			}
			for _, v := range vw {
				if v.Key == a.Key && !task.WantsType(v.Info.Type) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateDuration(t *testing.T) {
	v := view("gpu", 1, protocol.DeviceGPU, 5500, 192, 75, 0)
	task := Task{Cost: kernel.Cost{Flops: int64(5500 * 0.35 * 1e9)}} // ~1s of derated work
	d := EstimateDuration(task, v)
	if d < vtime.Duration(0.9e9) || d > vtime.Duration(1.1e9) {
		t.Fatalf("estimate = %v, want ~1s", d)
	}
	if EstimateDuration(Task{}, v) != 0 {
		t.Fatal("zero-cost estimate should be zero")
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{NewUserDirected(), &RoundRobin{}, LeastLoaded{}, HeteroAware{}, PowerAware{}} {
		if p.Name() == "" {
			t.Fatalf("%T has no name", p)
		}
	}
}
