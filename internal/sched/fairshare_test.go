package sched

import (
	"sync"
	"testing"

	"github.com/haocl-project/haocl/internal/vtime"
)

// drain releases up to n items, acknowledging each immediately so inflight
// caps never bind, and returns the tenant grant order.
func drain(f *FairQueue, n int) []string {
	var got []string
	for len(got) < n {
		item, ok := f.Next()
		if !ok {
			break
		}
		got = append(got, item.Tenant)
		f.Done(item.Tenant)
	}
	return got
}

func TestFairQueueEqualWeightsInterleave(t *testing.T) {
	f := NewFairQueue(10)
	for i := 0; i < 4; i++ {
		f.Submit(FairItem{Tenant: "a", Cost: 10})
		f.Submit(FairItem{Tenant: "b", Cost: 10})
	}
	got := drain(f, 8)
	want := []string{"a", "b", "a", "b", "a", "b", "a", "b"}
	if len(got) != len(want) {
		t.Fatalf("drained %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant %d = %q, want %q (full order %v)", i, got[i], want[i], got)
		}
	}
}

func TestFairQueueWeightProportionality(t *testing.T) {
	f := NewFairQueue(10)
	f.SetWeight("heavy", 3)
	for i := 0; i < 30; i++ {
		f.Submit(FairItem{Tenant: "heavy", Cost: 10})
		f.Submit(FairItem{Tenant: "light", Cost: 10})
	}
	// Over the first 20 grants, weight 3:1 should hand heavy ~3x light's
	// share.
	got := drain(f, 20)
	counts := map[string]int{}
	for _, tenant := range got {
		counts[tenant]++
	}
	if counts["heavy"] != 15 || counts["light"] != 5 {
		t.Fatalf("got heavy=%d light=%d over 20 grants, want 15/5", counts["heavy"], counts["light"])
	}
}

func TestFairQueueAggressorCannotStarveLightTenant(t *testing.T) {
	f := NewFairQueue(10)
	// The aggressor floods 100 jobs before the light tenant's first.
	for i := 0; i < 100; i++ {
		f.Submit(FairItem{Tenant: "aggressor", Cost: 10})
	}
	f.Submit(FairItem{Tenant: "light", Cost: 10})
	got := drain(f, 3)
	saw := false
	for _, tenant := range got {
		if tenant == "light" {
			saw = true
		}
	}
	if !saw {
		t.Fatalf("light tenant not granted within 3 grants of a 100-job backlog: %v", got)
	}
}

func TestFairQueueExpensiveHeadEventuallyServed(t *testing.T) {
	f := NewFairQueue(10)
	// One item costing 5 quanta: the deficit must accumulate across rounds
	// rather than skip the tenant forever.
	f.Submit(FairItem{Tenant: "big", Cost: 50})
	f.Submit(FairItem{Tenant: "small", Cost: 10})
	total := 0
	for {
		_, ok := f.Next()
		if !ok {
			break
		}
		total++
	}
	if total != 2 {
		t.Fatalf("released %d items, want 2 (expensive head starved?)", total)
	}
}

func TestFairQueueInflightCap(t *testing.T) {
	f := NewFairQueue(10)
	f.SetInflightCap(2)
	for i := 0; i < 4; i++ {
		f.Submit(FairItem{Tenant: "a", Cost: 10})
	}
	if _, ok := f.Next(); !ok {
		t.Fatal("first grant refused")
	}
	if _, ok := f.Next(); !ok {
		t.Fatal("second grant refused")
	}
	if _, ok := f.Next(); ok {
		t.Fatal("third grant allowed past inflight cap 2")
	}
	f.Done("a")
	if _, ok := f.Next(); !ok {
		t.Fatal("grant refused after Done freed a slot")
	}
}

func TestFairQueueDeterministicGrantOrder(t *testing.T) {
	run := func() []string {
		f := NewFairQueue(7)
		f.SetWeight("b", 2)
		costs := []vtime.Duration{5, 9, 3, 14, 7, 2, 11, 6}
		for i, c := range costs {
			tenant := []string{"a", "b", "c"}[i%3]
			f.Submit(FairItem{Tenant: tenant, Cost: c})
		}
		return drain(f, len(costs))
	}
	first := run()
	second := run()
	if len(first) != len(second) {
		t.Fatalf("runs released %d vs %d items", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("grant %d differs across identical runs: %q vs %q", i, first[i], second[i])
		}
	}
}

func TestAdmissionBlocksUntilSlotFree(t *testing.T) {
	fq := NewFairQueue(10)
	adm := NewAdmission(fq, 1)
	adm.Acquire("a", 10)

	done := make(chan struct{})
	go func() {
		adm.Acquire("b", 10)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("second Acquire returned while the only slot was held")
	default:
	}
	adm.Release("a")
	<-done
	adm.Release("b")
}

func TestAdmissionConcurrentTenants(t *testing.T) {
	fq := NewFairQueue(10)
	adm := NewAdmission(fq, 4)
	var wg sync.WaitGroup
	var mu sync.Mutex
	inflight, peak := 0, 0
	for i := 0; i < 8; i++ {
		tenant := []string{"a", "b"}[i%2]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				adm.Acquire(tenant, 10)
				mu.Lock()
				inflight++
				if inflight > peak {
					peak = inflight
				}
				mu.Unlock()
				mu.Lock()
				inflight--
				mu.Unlock()
				adm.Release(tenant)
			}
		}()
	}
	wg.Wait()
	if peak > 4 {
		t.Fatalf("peak inflight %d exceeded admission bound 4", peak)
	}
}
