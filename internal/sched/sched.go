// Package sched implements HaoCL's extendable task scheduling component.
//
// The paper ships user-directed placement ("in the current version, it
// delivers the kernel tasks to device nodes based on users' instructions")
// and is explicitly "designed in an extendable manner so that it can be
// upgraded to an automatic scheduler with the runtime profiling information
// from the cluster" (§III-B). Policy is that extension point; this package
// provides the built-in policies — user-directed, round-robin,
// least-loaded, heterogeneity-aware and power-aware — and applications may
// plug in their own.
//
// Placement decisions feed the virtual-time simulation, so they must be
// reproducible.
//
// haoclvet:deterministic
package sched

import (
	"errors"
	"fmt"
	"sync"

	"github.com/haocl-project/haocl/internal/kernel"
	"github.com/haocl-project/haocl/internal/profile"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/sim"
	"github.com/haocl-project/haocl/internal/vtime"
)

// Task describes one kernel launch to place.
type Task struct {
	// Kernel is the kernel name, used by user-directed policies.
	Kernel string
	// Cost is the launch's analytic cost.
	Cost kernel.Cost
	// InputBytes is the data that must reach the device before the
	// kernel can start (0 when inputs are already resident).
	InputBytes int64
	// TypeMask restricts candidate device types: bitwise OR of
	// 1<<DeviceType values. 0 admits every type.
	TypeMask uint8
}

// WantsType reports whether the task admits devices of type t.
func (t Task) WantsType(dt protocol.DeviceType) bool {
	return t.TypeMask == 0 || t.TypeMask&(1<<uint8(dt)) != 0
}

// TypeMaskFor builds a task type mask admitting exactly the given types.
func TypeMaskFor(types ...protocol.DeviceType) uint8 {
	var m uint8
	for _, t := range types {
		m |= 1 << uint8(t)
	}
	return m
}

// Assignment is a placement decision.
type Assignment struct {
	Key profile.DeviceKey
}

// Policy decides placements from the monitor's cluster view.
type Policy interface {
	// Name identifies the policy in logs and experiment output.
	Name() string
	// Assign places one task given the current device views.
	Assign(t Task, view []profile.DeviceView) (Assignment, error)
}

// ErrNoDevice reports that no device satisfies the task's constraints.
var ErrNoDevice = errors.New("sched: no eligible device")

func eligible(t Task, view []profile.DeviceView) []profile.DeviceView {
	out := make([]profile.DeviceView, 0, len(view))
	for _, v := range view {
		if t.WantsType(v.Info.Type) {
			out = append(out, v)
		}
	}
	return out
}

// --- User-directed ----------------------------------------------------------

// UserDirected places kernels according to an explicit kernel→device map,
// the paper's shipped behavior. Unmapped kernels fall back to the Fallback
// policy if one is set, else fail.
type UserDirected struct {
	mu       sync.Mutex
	placings map[string]Assignment
	masks    map[string]uint8
	Fallback Policy
}

// NewUserDirected returns an empty user-directed policy.
func NewUserDirected() *UserDirected {
	return &UserDirected{
		placings: make(map[string]Assignment),
		masks:    make(map[string]uint8),
	}
}

// Name implements Policy.
func (*UserDirected) Name() string { return "user-directed" }

// Place pins a kernel to one device.
func (p *UserDirected) Place(kernelName string, key profile.DeviceKey) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.placings[kernelName] = Assignment{Key: key}
}

// PlaceType restricts a kernel to a device type, leaving the device choice
// to a least-loaded pick within that type (how the paper's heterogeneity
// evaluation maps SpMV's partition stage to GPUs and compute stage to
// FPGAs, §IV-C).
func (p *UserDirected) PlaceType(kernelName string, types ...protocol.DeviceType) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.masks[kernelName] = TypeMaskFor(types...)
}

// Assign implements Policy.
func (p *UserDirected) Assign(t Task, view []profile.DeviceView) (Assignment, error) {
	p.mu.Lock()
	pinned, havePin := p.placings[t.Kernel]
	mask, haveMask := p.masks[t.Kernel]
	p.mu.Unlock()

	if havePin {
		for _, v := range view {
			if v.Key == pinned.Key {
				return pinned, nil
			}
		}
		return Assignment{}, fmt.Errorf("%w: kernel %q pinned to missing device %s",
			ErrNoDevice, t.Kernel, pinned.Key)
	}
	if haveMask {
		t.TypeMask = mask
		ll := LeastLoaded{}
		return ll.Assign(t, view)
	}
	if p.Fallback != nil {
		return p.Fallback.Assign(t, view)
	}
	return Assignment{}, fmt.Errorf("%w: kernel %q has no user placement", ErrNoDevice, t.Kernel)
}

// --- Round-robin ------------------------------------------------------------

// RoundRobin cycles through eligible devices, the simplest
// heterogeneity-oblivious baseline.
type RoundRobin struct {
	mu   sync.Mutex
	next int
}

// Name implements Policy.
func (*RoundRobin) Name() string { return "round-robin" }

// Assign implements Policy.
func (p *RoundRobin) Assign(t Task, view []profile.DeviceView) (Assignment, error) {
	cands := eligible(t, view)
	if len(cands) == 0 {
		return Assignment{}, fmt.Errorf("%w for kernel %q", ErrNoDevice, t.Kernel)
	}
	p.mu.Lock()
	idx := p.next % len(cands)
	p.next++
	p.mu.Unlock()
	return Assignment{Key: cands[idx].Key}, nil
}

// --- Least-loaded -----------------------------------------------------------

// LeastLoaded picks the eligible device with the earliest expected-free
// instant, ignoring device speed differences.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Assign implements Policy.
func (LeastLoaded) Assign(t Task, view []profile.DeviceView) (Assignment, error) {
	cands := eligible(t, view)
	if len(cands) == 0 {
		return Assignment{}, fmt.Errorf("%w for kernel %q", ErrNoDevice, t.Kernel)
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].ExpectedFree() < cands[best].ExpectedFree() {
			best = i
		}
	}
	return Assignment{Key: cands[best].Key}, nil
}

// --- Heterogeneity-aware ----------------------------------------------------

// sustainedEff returns the scheduler's static derating of peak rates per
// hardware class — the "detailed device model" of paper §I. The factors
// mirror the simulator presets: FPGAs sustain close to their configured
// pipeline rate, GPUs and CPUs derate more for naive kernels.
func sustainedEff(t protocol.DeviceType) (compute, mem float64) {
	switch t {
	case protocol.DeviceFPGA:
		return 0.55, 0.80
	case protocol.DeviceCPU:
		return 0.25, 0.50
	default:
		return 0.35, 0.30
	}
}

// estimateKernelSec predicts how long the task's kernel runs on a device,
// preferring the monitor's observed EWMA rate over the static device model
// — exactly the "device model and run-time information" combination the
// paper calls for (§I).
func estimateKernelSec(t Task, v profile.DeviceView) float64 {
	effC, effM := sustainedEff(v.Info.Type)
	peak := v.Info.PeakGFLOPS * effC
	if obs := v.Status.EWMAGFLOPS; obs > 0 {
		// Blend: observed rate dominates once available.
		peak = 0.75*obs + 0.25*peak
	}
	if peak <= 0 {
		return 0
	}
	computeSec := float64(t.Cost.Flops) / (peak * 1e9)
	memSec := 0.0
	if bw := v.Info.MemBWGBps; bw > 0 {
		memSec = float64(t.Cost.Bytes) / (bw * effM * 1e9)
	}
	if memSec > computeSec {
		return memSec
	}
	return computeSec
}

// HeteroAware minimizes each task's estimated completion time: expected
// queue drain + input transfer over the backbone + modeled kernel time on
// that specific device.
type HeteroAware struct{}

// Name implements Policy.
func (HeteroAware) Name() string { return "hetero-aware" }

// Assign implements Policy.
func (HeteroAware) Assign(t Task, view []profile.DeviceView) (Assignment, error) {
	cands := eligible(t, view)
	if len(cands) == 0 {
		return Assignment{}, fmt.Errorf("%w for kernel %q", ErrNoDevice, t.Kernel)
	}
	bestIdx, bestFinish := -1, 0.0
	for i, v := range cands {
		xferSec := float64(t.InputBytes) / sim.GigabitBytesPerSec
		finish := v.ExpectedFree().Seconds() + xferSec + estimateKernelSec(t, v)
		if bestIdx < 0 || finish < bestFinish {
			bestIdx, bestFinish = i, finish
		}
	}
	return Assignment{Key: cands[bestIdx].Key}, nil
}

// EstimateDuration exposes the policy's per-device kernel-time estimate so
// the runtime can charge pending load at assignment time.
func EstimateDuration(t Task, v profile.DeviceView) vtime.Duration {
	return vtime.Duration(estimateKernelSec(t, v) * 1e9)
}

// --- Power-aware ------------------------------------------------------------

// PowerAware minimizes estimated energy (watts × estimated duration),
// breaking ties toward the earlier finisher. FPGAs win compute-bound
// streaming work under this policy, matching the paper's power-efficiency
// motivation.
type PowerAware struct {
	// SlackFactor bounds acceptable slowdown versus the fastest
	// candidate; 0 means unbounded (pure energy minimization).
	SlackFactor float64
}

// Name implements Policy.
func (PowerAware) Name() string { return "power-aware" }

// Assign implements Policy.
func (p PowerAware) Assign(t Task, view []profile.DeviceView) (Assignment, error) {
	cands := eligible(t, view)
	if len(cands) == 0 {
		return Assignment{}, fmt.Errorf("%w for kernel %q", ErrNoDevice, t.Kernel)
	}
	durs := make([]float64, len(cands))
	fastest := -1.0
	for i, v := range cands {
		durs[i] = estimateKernelSec(t, v)
		if fastest < 0 || durs[i] < fastest {
			fastest = durs[i]
		}
	}
	bestIdx, bestJ := -1, 0.0
	for i, v := range cands {
		if p.SlackFactor > 0 && durs[i] > fastest*p.SlackFactor {
			continue
		}
		joules := durs[i] * v.Info.TDPWatts
		if bestIdx < 0 || joules < bestJ {
			bestIdx, bestJ = i, joules
		}
	}
	if bestIdx < 0 {
		bestIdx = 0
	}
	return Assignment{Key: cands[bestIdx].Key}, nil
}
