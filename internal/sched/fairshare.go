package sched

import (
	"sync"

	"github.com/haocl-project/haocl/internal/trace"
	"github.com/haocl-project/haocl/internal/vtime"
)

// This file implements the fair-share admission layer between tenant
// sessions and the cluster's service queues: a weighted deficit-round-robin
// (DRR) queue operating in virtual time. Each tenant owns a FIFO backlog;
// the dispatcher visits backlogged tenants in a fixed round-robin order,
// topping each tenant's deficit up by weight×quantum per visit and
// releasing jobs while the deficit covers their virtual cost. A tenant
// submitting 10x more work than its neighbors accumulates backlog instead
// of monopolizing the devices, so a light tenant's p99 latency stays within
// a bounded factor of its solo run (DESIGN.md §8).
//
// Determinism: the queue has no clocks and no randomness — the grant
// sequence is a pure function of the submission sequence, the weights and
// the quantum. The serve benchmark replays seeded arrivals through a
// single-threaded event loop and asserts bit-identical virtual latencies
// across runs; the Admission wrapper adds blocking semantics for live
// concurrent sessions without touching the grant order logic.

// FairItem is one unit of admitted work.
type FairItem struct {
	// Tenant names the submitting session's tenant.
	Tenant string
	// Cost is the item's virtual service demand — the deficit currency.
	// Items of unknown cost may use 1; relative magnitudes are what shape
	// the shares.
	Cost vtime.Duration
	// Arrival optionally records the item's virtual submission instant, so
	// a traced dispatcher (NextAt) can span the admission wait. Zero when
	// the caller does not track virtual time.
	Arrival vtime.Time
	// Payload travels with the item untouched.
	Payload any
}

// tenantState is one tenant's backlog and DRR accounting.
type tenantState struct {
	items    []FairItem
	deficit  vtime.Duration
	inflight int
}

// FairQueue is a weighted-fair admission queue: Submit from any tenant,
// Next releases items in deficit-round-robin order. An optional per-tenant
// inflight cap bounds how many released-but-unfinished items one tenant may
// hold (Done returns them). The zero value is not usable; NewFairQueue
// sets the quantum.
type FairQueue struct {
	mu      sync.Mutex
	quantum vtime.Duration
	capPer  int // per-tenant inflight cap; 0 = unlimited

	weights map[string]int64
	order   []string // round-robin visit order: first-submission order
	tenants map[string]*tenantState
	pos     int // next visit position in order
	backlog int

	// trc records one admission span per NextAt grant when attached; the
	// grant order itself is tracing-blind. Guarded by mu.
	trc *trace.Run
}

// NewFairQueue returns an empty fair queue whose DRR quantum is the given
// virtual duration. A reasonable quantum is the typical item cost: much
// smaller quanta cost extra visit rounds, much larger quanta approximate
// per-visit FIFO bursts.
func NewFairQueue(quantum vtime.Duration) *FairQueue {
	if quantum <= 0 {
		quantum = 1
	}
	return &FairQueue{
		quantum: quantum,
		weights: make(map[string]int64),
		tenants: make(map[string]*tenantState),
	}
}

// SetWeight assigns a tenant's share weight (default 1). Weights scale the
// deficit top-up per round: weight 2 drains twice the virtual cost per
// round of weight 1.
func (f *FairQueue) SetWeight(tenant string, w int64) {
	if w <= 0 {
		w = 1
	}
	f.mu.Lock()
	f.weights[tenant] = w
	f.mu.Unlock()
}

// SetInflightCap bounds how many released-but-not-Done items each tenant
// may hold at once; 0 removes the bound. The cap backpressures tenants that
// hold service-queue slots for long, independent of their share weight.
func (f *FairQueue) SetInflightCap(n int) {
	f.mu.Lock()
	f.capPer = n
	f.mu.Unlock()
}

// Submit appends one item to its tenant's backlog.
func (f *FairQueue) Submit(item FairItem) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ts, ok := f.tenants[item.Tenant]
	if !ok {
		ts = &tenantState{}
		f.tenants[item.Tenant] = ts
		f.order = append(f.order, item.Tenant)
	}
	ts.items = append(ts.items, item)
	f.backlog++
}

// Len reports the number of submitted-but-unreleased items.
func (f *FairQueue) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.backlog
}

// Next releases the next item in weighted DRR order. It returns false when
// nothing is releasable — the backlog is empty, or every backlogged tenant
// is at its inflight cap (call Done and try again).
func (f *FairQueue) Next() (FairItem, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.backlog == 0 || len(f.order) == 0 {
		return FairItem{}, false
	}
	// Round until something is released or a full round makes no progress.
	// Every round tops at least one backlogged uncapped tenant's deficit up
	// by a quantum, so a head costing k quanta is covered within k rounds;
	// a zero-progress round means every backlogged tenant is at its cap.
	for {
		progressed := false
		for i := 0; i < len(f.order); i++ {
			tenant := f.order[f.pos%len(f.order)]
			ts := f.tenants[tenant]
			if len(ts.items) == 0 || (f.capPer > 0 && ts.inflight >= f.capPer) {
				f.pos++
				continue
			}
			head := ts.items[0]
			if ts.deficit < head.Cost {
				// Arrival at this tenant's queue: one top-up per visit.
				// The deficit persists across visits, so an expensive head
				// is eventually covered — tenants are never starved by
				// their own job sizes.
				ts.deficit += f.quantum * vtime.Duration(f.weightOf(tenant))
				progressed = true
				if ts.deficit < head.Cost {
					f.pos++
					continue
				}
			}
			ts.deficit -= head.Cost
			ts.items = ts.items[1:]
			if len(ts.items) == 0 {
				// Standard DRR: an emptied queue forfeits its leftover
				// deficit, so idling never banks future bandwidth.
				ts.deficit = 0
			}
			// End this tenant's service opportunity once its deficit cannot
			// cover the next head; the caller resumes mid-visit otherwise
			// (deficit ≥ head skips the top-up above on re-entry).
			if len(ts.items) == 0 || ts.deficit < ts.items[0].Cost {
				f.pos++
			}
			ts.inflight++
			f.backlog--
			return head, true
		}
		if !progressed {
			return FairItem{}, false
		}
	}
}

// SetTracer attaches a trace run that NextAt records admission spans into
// (nil detaches). Tracing never changes the grant order.
func (f *FairQueue) SetTracer(r *trace.Run) {
	f.mu.Lock()
	f.trc = r
	f.mu.Unlock()
}

// NextAt is Next for virtual-time dispatchers: now is the dispatcher's
// current virtual instant, and when a tracer is attached each grant
// records an admission span from the item's Arrival to now — the time the
// item spent waiting for its fair share. Identical grant order to Next.
func (f *FairQueue) NextAt(now vtime.Time) (FairItem, bool) {
	item, ok := f.Next()
	if !ok {
		return item, false
	}
	f.mu.Lock()
	trc := f.trc
	f.mu.Unlock()
	if trc != nil {
		start := item.Arrival
		if start > now {
			start = now
		}
		trc.Add(trace.Span{
			Kind:   trace.KindAdmission,
			Tenant: item.Tenant,
			Start:  start,
			End:    now,
		})
	}
	return item, true
}

// Done returns one of tenant's released items, freeing its inflight slot.
func (f *FairQueue) Done(tenant string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ts, ok := f.tenants[tenant]; ok && ts.inflight > 0 {
		ts.inflight--
	}
}

// weightOf reads a tenant's weight with the default applied.
// Caller holds f.mu.
func (f *FairQueue) weightOf(tenant string) int64 {
	if w, ok := f.weights[tenant]; ok {
		return w
	}
	return 1
}

// Admission wraps a FairQueue with blocking semantics for live concurrent
// sessions: Acquire parks the calling goroutine until the fair queue grants
// its slot, Release hands the slot back. The grant order is exactly the
// FairQueue's DRR order; Admission only adds the parking.
type Admission struct {
	fq *FairQueue

	mu          sync.Mutex
	maxInflight int
	inflight    int
}

// NewAdmission wraps fq, bounding the total released-and-unreleased slots
// across all tenants at maxInflight (≥1).
func NewAdmission(fq *FairQueue, maxInflight int) *Admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	return &Admission{fq: fq, maxInflight: maxInflight}
}

// Acquire blocks until the fair queue admits one unit of the tenant's work.
func (a *Admission) Acquire(tenant string, cost vtime.Duration) {
	grant := make(chan struct{})
	a.fq.Submit(FairItem{Tenant: tenant, Cost: cost, Payload: grant})
	a.pump()
	<-grant
}

// Release returns tenant's slot and wakes the next admissible waiter.
func (a *Admission) Release(tenant string) {
	a.fq.Done(tenant)
	a.mu.Lock()
	a.inflight--
	a.mu.Unlock()
	a.pump()
}

// pump grants as many waiters as the global bound allows, in DRR order.
func (a *Admission) pump() {
	for {
		a.mu.Lock()
		if a.inflight >= a.maxInflight {
			a.mu.Unlock()
			return
		}
		item, ok := a.fq.Next()
		if !ok {
			a.mu.Unlock()
			return
		}
		a.inflight++
		a.mu.Unlock()
		close(item.Payload.(chan struct{}))
	}
}
