package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Label is one Prometheus label pair.
type Label struct {
	Key, Val string
}

// MetricsWriter emits the Prometheus text exposition format (version
// 0.0.4) without any client-library dependency. Callers are responsible
// for emitting samples in a deterministic order; the writer itself only
// formats. The first write error is sticky and returned by Err.
type MetricsWriter struct {
	w   io.Writer
	err error
}

// NewMetricsWriter wraps w.
func NewMetricsWriter(w io.Writer) *MetricsWriter { return &MetricsWriter{w: w} }

// Header emits the # HELP / # TYPE preamble for a metric family.
func (mw *MetricsWriter) Header(name, help, typ string) {
	mw.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Sample emits one sample line. Labels are emitted in the given order.
func (mw *MetricsWriter) Sample(name string, labels []Label, value float64) {
	mw.printf("%s%s %s\n", name, formatLabels(labels), formatFloat(value))
}

// Int emits one integer-valued sample line.
func (mw *MetricsWriter) Int(name string, labels []Label, v int64) {
	mw.printf("%s%s %d\n", name, formatLabels(labels), v)
}

// Err returns the first write error, if any.
func (mw *MetricsWriter) Err() error { return mw.err }

func (mw *MetricsWriter) printf(format string, args ...any) {
	if mw.err != nil {
		return
	}
	_, mw.err = fmt.Fprintf(mw.w, format, args...)
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Val))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips, which is deterministic for a given
// value.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// latencyBuckets are the fixed histogram bounds for span latencies, in
// seconds of virtual time: decades from 1µs to 10s. Fixed bounds keep the
// text output stable across runs and workloads.
var latencyBuckets = [...]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// WriteMetrics exports per-(kind, tenant) span latency histograms and
// span counts in Prometheus text format. Output is byte-deterministic for
// a given span multiset: series are keyed by (kind, tenant) and emitted
// in sorted order. A nil tracer writes nothing.
func (t *Tracer) WriteMetrics(w io.Writer) error {
	if t == nil {
		return nil
	}
	spans, _ := t.snapshot()

	type series struct {
		kind   Kind
		tenant string
	}
	type hist struct {
		buckets [len(latencyBuckets) + 1]int64 // last is +Inf
		count   int64
		sumNS   int64
	}
	agg := map[series]*hist{}
	var keys []series
	for _, s := range spans {
		k := series{s.Kind, s.Tenant}
		h := agg[k]
		if h == nil {
			h = &hist{}
			agg[k] = h
			keys = append(keys, k)
		}
		sec := s.End.Sub(s.Start).Seconds()
		i := 0
		for i < len(latencyBuckets) && sec > latencyBuckets[i] {
			i++
		}
		h.buckets[i]++
		h.count++
		h.sumNS += int64(s.End) - int64(s.Start)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].tenant < keys[j].tenant
	})

	mw := NewMetricsWriter(w)
	mw.Header("haocl_span_latency_virtual_seconds",
		"Span duration in virtual seconds, by span kind and tenant.", "histogram")
	for _, k := range keys {
		h := agg[k]
		base := []Label{{"kind", k.kind.String()}, {"tenant", k.tenant}}
		cum := int64(0)
		for i, le := range latencyBuckets {
			cum += h.buckets[i]
			mw.Int("haocl_span_latency_virtual_seconds_bucket",
				append(base[:2:2], Label{"le", formatFloat(le)}), cum)
		}
		mw.Int("haocl_span_latency_virtual_seconds_bucket",
			append(base[:2:2], Label{"le", "+Inf"}), h.count)
		mw.Sample("haocl_span_latency_virtual_seconds_sum", base, float64(h.sumNS)/1e9)
		mw.Int("haocl_span_latency_virtual_seconds_count", base, h.count)
	}
	mw.Header("haocl_spans_total", "Spans recorded, by span kind and tenant.", "counter")
	for _, k := range keys {
		mw.Int("haocl_spans_total",
			[]Label{{"kind", k.kind.String()}, {"tenant", k.tenant}}, agg[k].count)
	}
	return mw.Err()
}
