// Package trace is the deterministic tracing subsystem: every host-assigned
// event ID becomes a span tree over the virtual timeline — wire transfer,
// node registration (dependency wait), device queue wait, exec — plus
// standalone spans for fair-share admission grants and recovery replay.
//
// Timestamps are vtime, never wall clock, so the trace of a seeded run is
// bit-identical across reruns. Recording order is NOT part of the contract:
// spans are collected concurrently from completion goroutines, and the
// exporters sort by a total key before emitting, so only the span multiset
// must be deterministic. Both exporters (Chrome trace-event JSON in
// chrome.go, Prometheus text format in prom.go) are dependency-free and
// byte-deterministic for a given multiset.
//
// A Tracer is attached to a runtime with SetTracer, which allocates a Run:
// one attachment = one Run = one Perfetto process group, so sequential
// bench legs (each starting at vtime 0 on a fresh cluster) do not overlap.
// A nil *Run is the off state; every method is nil-safe and the hot enqueue
// path checks for nil before building a Span, so disabled tracing costs one
// atomic load and zero allocations.
//
// haoclvet:deterministic
// lock-order: Tracer.mu
package trace

import (
	"sort"
	"sync"

	"github.com/haocl-project/haocl/internal/vtime"
)

// Kind classifies a span. Root kinds anchor one span tree per event ID;
// phase kinds are the children of a root; standalone kinds (admission,
// recovery) have no event ID and form single-span trees.
type Kind uint8

// Root kinds — one per command shape on the wire.
const (
	KindWrite     Kind = iota // host → device buffer write
	KindRead                  // device → host buffer read
	KindCopy                  // intra-node device copy
	KindKernel                // kernel execution
	KindMigrate               // host-relay migration push (ensureResident)
	KindPull                  // dirty-replica pull back to the host
	KindPushRange             // P2P push, source side
	KindAwaitPush             // P2P push, consumer-side rendezvous
	KindBroadcast             // one hop of a broadcast chain

	// Phase kinds — children of a root span.
	KindWire      // host NIC egress occupancy
	KindRegister  // node-side registration + dependency wait
	KindQueueWait // device lane queue wait (deps resolved, device busy)
	KindExec      // device busy interval
	KindWireIn    // host NIC ingress occupancy (reads/pulls)

	// Standalone kinds.
	KindAdmission // FairQueue grant: submit → dispatch
	KindRecovery  // one session's log replay onto a replacement node

	kindCount
)

var kindNames = [kindCount]string{
	"write", "read", "copy", "kernel", "migrate", "pull",
	"push-range", "await-push", "broadcast-hop",
	"wire", "register", "queue-wait", "exec", "wire-in",
	"admission", "recovery",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// IsRoot reports whether k anchors a span tree for a wire command.
func (k Kind) IsRoot() bool { return k <= KindBroadcast }

// IsPhase reports whether k is a child phase inside a root's tree.
func (k Kind) IsPhase() bool { return k >= KindWire && k <= KindWireIn }

// Span is one interval on the virtual timeline. Spans carry no pointers
// and no record-time identifiers: tree structure is derived at export time
// by grouping (Run, Node, EventID), which is what makes the export
// independent of recording order.
type Span struct {
	Run     int    // attachment sequence number (one per SetTracer call)
	Kind    Kind   // role of this interval
	Tenant  string // owning session's tenant ("" for cluster-level spans)
	Node    string // serving node ("" for host-only spans)
	Device  string // device key, e.g. "node0/dev0" ("" when not device-bound)
	Queue   uint64 // host queue ID (0 for service-queue and standalone spans)
	EventID uint64 // host-assigned event ID (0 for standalone spans)
	Start   vtime.Time
	End     vtime.Time
	Bytes   int64 // payload bytes (0 when not a data-moving span)
	Replay  bool  // recorded while replaying a command log after a crash
}

// less is the total order used by every exporter; it must compare every
// field so equal multisets export identically regardless of append order.
func (s Span) less(o Span) bool {
	if s.Run != o.Run {
		return s.Run < o.Run
	}
	if s.Start != o.Start {
		return s.Start < o.Start
	}
	if s.End != o.End {
		return s.End < o.End
	}
	if s.Node != o.Node {
		return s.Node < o.Node
	}
	if s.EventID != o.EventID {
		return s.EventID < o.EventID
	}
	if s.Kind != o.Kind {
		return s.Kind < o.Kind
	}
	if s.Tenant != o.Tenant {
		return s.Tenant < o.Tenant
	}
	if s.Device != o.Device {
		return s.Device < o.Device
	}
	if s.Queue != o.Queue {
		return s.Queue < o.Queue
	}
	if s.Bytes != o.Bytes {
		return s.Bytes < o.Bytes
	}
	return !s.Replay && o.Replay
}

// Tracer collects spans from every run attached to it. Safe for
// concurrent use; Add is a single short critical section.
type Tracer struct {
	mu    sync.Mutex
	spans []Span   // guarded by mu
	runs  []string // guarded by mu; labels in attachment order
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{} }

// NewRun registers one attachment and returns its recording handle.
// Calling NewRun on a nil tracer returns a nil (disabled) run.
func (t *Tracer) NewRun(label string) *Run {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.runs = append(t.runs, label)
	return &Run{t: t, id: len(t.runs) - 1}
}

// Spans returns a sorted copy of everything recorded so far.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// snapshot returns sorted spans plus the run-label table.
func (t *Tracer) snapshot() ([]Span, []string) {
	t.mu.Lock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	labels := make([]string, len(t.runs))
	copy(labels, t.runs)
	t.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool { return spans[i].less(spans[j]) })
	return spans, labels
}

// Run is the recording handle for one tracer attachment. The nil Run is
// the disabled state: Add on a nil Run is a no-op, though hot paths should
// check for nil before building the Span at all.
type Run struct {
	t  *Tracer
	id int
}

// Add records one span, stamping it with the run's sequence number.
func (r *Run) Add(s Span) {
	if r == nil {
		return
	}
	s.Run = r.id
	r.t.mu.Lock()
	r.t.spans = append(r.t.spans, s)
	r.t.mu.Unlock()
}

// Tracer returns the tracer this run records into (nil for a nil run).
func (r *Run) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.t
}
