package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/haocl-project/haocl/internal/vtime"
)

func span(run int, kind Kind, tenant string, id uint64, start, end vtime.Time) Span {
	return Span{Run: run, Kind: kind, Tenant: tenant, Node: "node0",
		Device: "node0/dev0", EventID: id, Start: start, End: end}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	r := tr.NewRun("off")
	if r != nil {
		t.Fatalf("nil tracer returned a live run")
	}
	r.Add(Span{Kind: KindExec}) // must not panic
	if got := r.Tracer(); got != nil {
		t.Fatalf("nil run returned a tracer")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome on nil tracer: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-tracer trace is not valid JSON: %v", err)
	}
	buf.Reset()
	if err := tr.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics on nil tracer: %v", err)
	}
}

// TestSpansSortedRegardlessOfRecordOrder is the export-time determinism
// contract: concurrent recorders may interleave arbitrarily, but Spans()
// (and hence every exporter) sees one canonical total order.
func TestSpansSortedRegardlessOfRecordOrder(t *testing.T) {
	a := span(0, KindKernel, "t0", 7, 100, 200)
	b := span(0, KindExec, "t0", 7, 150, 200)
	c := span(0, KindKernel, "t1", 3, 50, 90)

	orders := [][]Span{{a, b, c}, {c, b, a}, {b, a, c}}
	var want []Span
	for i, order := range orders {
		tr := New()
		r := tr.NewRun("run")
		for _, s := range order {
			r.Add(s)
		}
		got := tr.Spans()
		if i == 0 {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("order %d: %d spans, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("order %d: span %d = %+v, want %+v", i, j, got[j], want[j])
			}
		}
	}
}

func TestRunsGetDistinctIDs(t *testing.T) {
	tr := New()
	r0 := tr.NewRun("leg0")
	r1 := tr.NewRun("leg1")
	r0.Add(Span{Kind: KindKernel, Start: 1, End: 2})
	r1.Add(Span{Kind: KindKernel, Start: 1, End: 2})
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Run == spans[1].Run {
		t.Fatalf("runs not distinguished: %+v", spans)
	}
}

func TestWriteChromeShape(t *testing.T) {
	tr := New()
	r := tr.NewRun("leg0")
	r.Add(span(0, KindKernel, "tenant-a", 1, 1000, 5000))
	r.Add(span(0, KindExec, "tenant-a", 1, 2500, 5000))
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var complete, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			if ev["name"] == "kernel" && ev["dur"] != 4.0 {
				t.Fatalf("kernel dur = %v µs, want 4", ev["dur"])
			}
		case "M":
			meta++
		}
	}
	if complete != 2 {
		t.Fatalf("%d complete events, want 2", complete)
	}
	if meta == 0 {
		t.Fatalf("no metadata events (process/thread names)")
	}
	if !strings.Contains(buf.String(), "leg0/tenant-a") {
		t.Fatalf("process name missing run/tenant label:\n%s", buf.String())
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	build := func(order []Span) string {
		tr := New()
		r := tr.NewRun("leg")
		for _, s := range order {
			r.Add(s)
		}
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
		return buf.String()
	}
	a := span(0, KindWrite, "t0", 1, 0, 10)
	b := span(0, KindKernel, "t1", 2, 5, 25)
	c := span(0, KindExec, "t1", 2, 10, 25)
	if build([]Span{a, b, c}) != build([]Span{c, a, b}) {
		t.Fatalf("export depends on record order")
	}
}

func TestWriteMetricsFormat(t *testing.T) {
	tr := New()
	r := tr.NewRun("leg")
	r.Add(span(0, KindKernel, "t0", 1, 0, 2_000_000)) // 2ms
	r.Add(span(0, KindKernel, "t0", 2, 0, 500))       // 500ns
	var buf bytes.Buffer
	if err := tr.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE haocl_span_latency_virtual_seconds histogram",
		`haocl_span_latency_virtual_seconds_count{kind="kernel",tenant="t0"} 2`,
		`haocl_span_latency_virtual_seconds_bucket{kind="kernel",tenant="t0",le="+Inf"} 2`,
		`haocl_spans_total{kind="kernel",tenant="t0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
	// The 500ns span lands in the 1µs bucket, the 2ms one above 1ms:
	// cumulative counts must reflect both.
	if !strings.Contains(out, `le="1e-06"} 1`) {
		t.Fatalf("sub-microsecond span not in first bucket:\n%s", out)
	}
	// Label values must be escaped.
	r.Add(Span{Kind: KindKernel, Tenant: "we\"ird\n", Start: 0, End: 1})
	buf.Reset()
	if err := tr.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	if !strings.Contains(buf.String(), `tenant="we\"ird\n"`) {
		t.Fatalf("label escaping broken:\n%s", buf.String())
	}
}

func TestKindNames(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < Kind(kindCount); k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[name] {
			t.Fatalf("duplicate kind name %q", name)
		}
		seen[name] = true
	}
}
