package trace

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteChrome exports the trace in Chrome trace-event format (the JSON
// flavor the Perfetto UI opens directly). Processes are (run, tenant)
// pairs so each bench leg renders as its own process group with one track
// per tenant; threads are device lanes ("node0/dev0 q3"), the per-node
// service queue ("node0/dev0 svc") or the standalone admission/recovery
// tracks. Output is byte-deterministic for a given span multiset: spans
// are sorted by the total order in less, IDs are assigned from the sorted
// tables, and timestamps are formatted with integer math.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[]}`+"\n")
		return err
	}
	spans, labels := t.snapshot()

	// Process table: one pid per (run, tenant), in sorted order.
	type proc struct {
		run    int
		tenant string
	}
	procIdx := map[proc]int{}
	var procs []proc
	for _, s := range spans {
		p := proc{s.Run, s.Tenant}
		if _, ok := procIdx[p]; !ok {
			procIdx[p] = 0
			procs = append(procs, p)
		}
	}
	sort.Slice(procs, func(i, j int) bool {
		if procs[i].run != procs[j].run {
			return procs[i].run < procs[j].run
		}
		return procs[i].tenant < procs[j].tenant
	})
	for i, p := range procs {
		procIdx[p] = i + 1
	}

	// Thread table per process: one tid per track name, in sorted order.
	type thread struct {
		pid   int
		track string
	}
	threadIdx := map[thread]int{}
	tracks := map[int][]string{}
	for _, s := range spans {
		th := thread{procIdx[proc{s.Run, s.Tenant}], trackName(s)}
		if _, ok := threadIdx[th]; !ok {
			threadIdx[th] = 0
			tracks[th.pid] = append(tracks[th.pid], th.track)
		}
	}
	for pid, names := range tracks {
		sort.Strings(names)
		for i, name := range names {
			threadIdx[thread{pid, name}] = i + 1
		}
	}

	var buf bytes.Buffer
	buf.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	emit := func(line string) {
		if !first {
			buf.WriteString(",\n")
		} else {
			buf.WriteString("\n")
			first = false
		}
		buf.WriteString(line)
	}

	// Metadata first, in pid/tid order.
	for _, p := range procs {
		pid := procIdx[p]
		name := p.tenant
		if name == "" {
			name = "cluster"
		}
		if p.run >= 0 && p.run < len(labels) && labels[p.run] != "" {
			name = labels[p.run] + "/" + name
		} else {
			name = "run" + strconv.Itoa(p.run) + "/" + name
		}
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			pid, jstr(name)))
		emit(fmt.Sprintf(`{"name":"process_sort_index","ph":"M","pid":%d,"tid":0,"args":{"sort_index":%d}}`,
			pid, pid))
		for i, track := range tracks[pid] {
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
				pid, i+1, jstr(track)))
		}
	}

	for _, s := range spans {
		pid := procIdx[proc{s.Run, s.Tenant}]
		tid := threadIdx[thread{pid, trackName(s)}]
		var args bytes.Buffer
		if s.EventID != 0 {
			fmt.Fprintf(&args, `"event":%d`, s.EventID)
		}
		if s.Bytes != 0 {
			if args.Len() > 0 {
				args.WriteByte(',')
			}
			fmt.Fprintf(&args, `"bytes":%d`, s.Bytes)
		}
		if s.Replay {
			if args.Len() > 0 {
				args.WriteByte(',')
			}
			args.WriteString(`"replay":true`)
		}
		emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{%s}}`,
			jstr(s.Kind.String()), jstr(spanCat(s)), pid, tid,
			micros(int64(s.Start)), micros(int64(s.End)-int64(s.Start)), args.String()))
	}
	buf.WriteString("\n]}\n")
	_, err := w.Write(buf.Bytes())
	return err
}

// trackName assigns a span to its Perfetto thread track.
func trackName(s Span) string {
	switch s.Kind {
	case KindAdmission:
		return "admission"
	case KindRecovery:
		return "recovery"
	}
	if s.Device != "" {
		if s.Queue != 0 {
			return s.Device + " q" + strconv.FormatUint(s.Queue, 10)
		}
		return s.Device + " svc"
	}
	if s.Node != "" {
		return s.Node
	}
	return "host"
}

// spanCat is the trace-event category: the span's role, with a replay
// marker so Perfetto can filter recovery re-execution.
func spanCat(s Span) string {
	var cat string
	switch {
	case s.Kind.IsRoot():
		cat = "command"
	case s.Kind.IsPhase():
		cat = "phase"
	default:
		cat = s.Kind.String()
	}
	if s.Replay {
		cat += ",replay"
	}
	return cat
}

// micros renders nanoseconds as microseconds with fixed millisecond
// precision ("12.345"), using integer math so output never depends on
// float formatting.
func micros(ns int64) string {
	neg := ""
	if ns < 0 {
		neg = "-"
		ns = -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// jstr quotes a string as JSON.
func jstr(s string) string { return strconv.Quote(s) }
