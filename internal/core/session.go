package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/haocl-project/haocl/internal/profile"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/sched"
	"github.com/haocl-project/haocl/internal/trace"
	"github.com/haocl-project/haocl/internal/transport"
	"github.com/haocl-project/haocl/internal/vtime"
)

// ErrCrossSession marks an attempt to use one session's objects from
// another session: wait on its events, enqueue against its buffers or
// kernels, broadcast into its namespaces. Sessions are isolation domains;
// sharing data across tenants goes through the cluster, not through host
// handles. Test with errors.Is.
var ErrCrossSession = errors.New("core: object belongs to another session")

// Session is one tenant's slice of the runtime. The Runtime owns the
// shared cluster substrate — node connections, the device table, the
// virtual-time links, recovery — while every piece of state that one
// misbehaving application could poison for another lives here: the object
// namespace (contexts and everything created from them), the pipelined
// event set, the fire-and-forget release drain with its sticky error, the
// command log replayed after a node loss, the migration mode, the
// scheduling policy, and the per-tenant Metrics.
//
// Sessions are cheap: OpenSession performs no wire traffic (remote
// contexts are created per CreateContext call, tagged with the session's
// identity). All methods are safe for concurrent use, and concurrent
// sessions never serialize against each other except on the shared
// substrate itself.
type Session struct {
	rt     *Runtime
	id     uint64
	tenant string

	closed atomic.Bool

	// trc is this session's tracing override; when nil, commands record
	// into the runtime-level attachment (see traceRun). Atomic so the hot
	// enqueue path reads it lock-free.
	trc atomic.Pointer[trace.Run]

	mu      sync.Mutex
	metrics Metrics       // guarded by mu
	migMode MigrationMode // guarded by mu
	policy  sched.Policy  // guarded by mu

	// pendMu guards the set of this session's pipelined commands whose
	// responses have not been consumed yet; Metrics drains it so the
	// numbers are complete.
	pendMu  sync.Mutex
	pendSet map[*Event]struct{} // guarded by pendMu

	// relMu guards the session's fire-and-forget Release calls still
	// awaiting acknowledgement, plus the sticky error of the first failed
	// release. One tenant's failed Release surfaces on its own Flush and
	// nobody else's.
	relMu      sync.Mutex
	relPending []*pendingRelease // guarded by relMu
	relErr     error             // guarded by relMu

	// logMu guards the session's command log: every mutating command in
	// issue order, replayed from zeroed buffer state after a node loss.
	// Recovery replays only the logs of sessions the dead node touched.
	logMu  sync.Mutex
	cmdLog []logEntry // guarded by logMu

	// ctxMu guards the session's context registry — its object namespace.
	ctxMu    sync.Mutex
	contexts []*Context // guarded by ctxMu
}

// OpenSession creates a new isolated session for the named tenant. The
// name labels metrics and errors; it need not be unique.
func (rt *Runtime) OpenSession(tenant string) *Session {
	rt.sessMu.Lock()
	defer rt.sessMu.Unlock()
	return rt.openSessionLocked(tenant)
}

// openSessionLocked allocates a session. Caller holds rt.sessMu.
func (rt *Runtime) openSessionLocked(tenant string) *Session {
	rt.nextSessID++
	s := &Session{
		rt:      rt,
		id:      rt.nextSessID,
		tenant:  tenant,
		policy:  rt.defaultPolicy,
		pendSet: make(map[*Event]struct{}),
	}
	s.metrics.ComputeBusy = make(map[profile.DeviceKey]vtime.Duration)
	rt.sessions = append(rt.sessions, s)
	return s
}

// defaultSession lazily opens the session backing the Runtime-level
// convenience API: single-tenant hosts keep calling Runtime.CreateContext /
// Flush / SetMigrationMode and get exactly the old semantics, routed
// through one implicit session.
func (rt *Runtime) defaultSession() *Session {
	rt.sessMu.Lock()
	defer rt.sessMu.Unlock()
	if rt.defSess == nil {
		rt.defSess = rt.openSessionLocked("default")
	}
	return rt.defSess
}

// allSessions snapshots the open sessions.
func (rt *Runtime) allSessions() []*Session {
	rt.sessMu.Lock()
	defer rt.sessMu.Unlock()
	return append([]*Session(nil), rt.sessions...)
}

// Tenant returns the tenant name given at OpenSession.
func (s *Session) Tenant() string { return s.tenant }

// ID returns the session's runtime-unique identifier.
func (s *Session) ID() uint64 { return s.id }

// Runtime returns the shared substrate.
func (s *Session) Runtime() *Runtime { return s.rt }

// Close flushes the session — draining its pipelined commands and release
// acknowledgements — and detaches it from the runtime. A closed session's
// command log is no longer replayed by recovery, and its sticky release
// error is reported here one last time. Objects the session created are
// released by their own Release calls; Close does not reach into the
// namespace.
func (s *Session) Close() error {
	err := s.Flush()
	s.closed.Store(true)
	s.rt.sessMu.Lock()
	for i, cand := range s.rt.sessions {
		if cand == s {
			s.rt.sessions = append(s.rt.sessions[:i], s.rt.sessions[i+1:]...)
			break
		}
	}
	if s.rt.defSess == s {
		s.rt.defSess = nil
	}
	s.rt.sessMu.Unlock()
	return err
}

// bump applies one metrics mutation to the session's own accounting and to
// the runtime-wide aggregate, so Runtime.Metrics keeps reporting the whole
// run while Session.Metrics reports one tenant.
func (s *Session) bump(f func(m *Metrics)) {
	s.rt.mu.Lock()
	f(&s.rt.metrics)
	s.rt.mu.Unlock()
	s.mu.Lock()
	f(&s.metrics)
	s.mu.Unlock()
}

// call performs one protocol round trip on behalf of this session. A
// transport failure on a node that is no longer alive is classified as
// node loss so the recovering wrappers retry it.
func (s *Session) call(n *NodeHandle, req protocol.Message, resp protocol.Message) error {
	s.bump(func(m *Metrics) { m.Commands++ })
	return classifyNodeErr(n, n.client.Load().Call(req, resp))
}

// issue ships one enqueue command without waiting for the response,
// assigning the host-side completion-event ID and writing the frame
// atomically (see Runtime.issue for the ordering contract).
func (s *Session) issue(n *NodeHandle, req protocol.CommandReq, resp protocol.Message) (uint64, *transport.Pending) {
	s.bump(func(m *Metrics) { m.Commands++ })
	n.issueMu.Lock()
	defer n.issueMu.Unlock()
	n.eventID++
	req.SetEventID(n.eventID)
	return n.eventID, n.client.Load().Go(req, resp)
}

// releaseAsync ships one fire-and-forget Release; the acknowledgement is
// drained at the session's next Flush (or Close), where a failure becomes
// this session's sticky release error.
func (s *Session) releaseAsync(n *NodeHandle, kind protocol.ObjectKind, id uint64) {
	s.bump(func(m *Metrics) { m.Commands++ })
	pr := &pendingRelease{
		node: n, kind: kind, id: id,
		pend: n.client.Load().Go(&protocol.ReleaseReq{Kind: kind, ID: id}, nil),
	}
	s.relMu.Lock()
	s.relPending = append(s.relPending, pr)
	full := len(s.relPending) >= maxPendingReleases
	s.relMu.Unlock()
	if full {
		s.drainReleases()
	}
}

// drainReleases waits for every outstanding release acknowledgement and
// returns the session's sticky release error: the first release that ever
// failed on this session, kept so a fire-and-forget failure is reported
// rather than lost — to this tenant only. Failures are classified before
// latching: an ack that died with a dead node's connection is tagged as
// node loss so recovery can absolve exactly those (the objects died with
// the node), while a live node's RemoteError stays a genuine sticky error.
func (s *Session) drainReleases() error {
	s.relMu.Lock()
	pending := s.relPending
	s.relPending = nil
	s.relMu.Unlock()
	for _, pr := range pending {
		if err := pr.pend.Wait(); err != nil {
			err = classifyNodeErr(pr.node, err)
			s.relMu.Lock()
			if s.relErr == nil {
				s.relErr = fmt.Errorf("core: release %s %d on %q: %w",
					pr.kind, pr.id, pr.node.name, err)
			}
			s.relMu.Unlock()
		}
	}
	s.relMu.Lock()
	defer s.relMu.Unlock()
	return s.relErr
}

// trackEvent registers an unresolved pipelined command so the session's
// synchronization points can drain it; resolve removes it again.
func (s *Session) trackEvent(e *Event) {
	s.pendMu.Lock()
	s.pendSet[e] = struct{}{}
	s.pendMu.Unlock()
}

func (s *Session) forgetEvent(e *Event) {
	s.pendMu.Lock()
	delete(s.pendSet, e)
	s.pendMu.Unlock()
}

// drainPendingEvents resolves every outstanding pipelined future of this
// session (the event half of Flush, without touching the release pipeline).
func (s *Session) drainPendingEvents() {
	s.pendMu.Lock()
	evs := drainList(s.pendSet)
	s.pendMu.Unlock()
	for _, e := range evs {
		e.resolve()
	}
}

// Flush resolves every outstanding pipelined command and release of this
// session. Command failures stay sticky on their queues; release failures
// surface here as the session's sticky release error. Another tenant's
// failures never do.
func (s *Session) Flush() error {
	s.drainPendingEvents()
	return s.drainReleases()
}

// Metrics returns a copy of the session's accumulated accounting, draining
// the session's outstanding commands first.
func (s *Session) Metrics() Metrics {
	s.Flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.metrics
	out.ComputeBusy = make(map[profile.DeviceKey]vtime.Duration, len(s.metrics.ComputeBusy))
	for k, v := range s.metrics.ComputeBusy {
		out.ComputeBusy[k] = v
	}
	return out
}

// SetPolicy swaps this session's default scheduling policy.
func (s *Session) SetPolicy(p sched.Policy) {
	if p == nil {
		return
	}
	s.mu.Lock()
	s.policy = p
	s.mu.Unlock()
}

// Policy returns this session's default scheduling policy.
func (s *Session) Policy() sched.Policy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.policy
}

// SetMigrationMode switches this session's migration strategy; other
// sessions are untouched.
func (s *Session) SetMigrationMode(m MigrationMode) {
	s.mu.Lock()
	s.migMode = m
	s.mu.Unlock()
}

// MigrationMode returns this session's current migration strategy.
func (s *Session) MigrationMode() MigrationMode {
	return s.migrationMode()
}

func (s *Session) migrationMode() MigrationMode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.migMode
}

// ModelDataCreate charges host-side creation of n bytes of input data for
// this session against the shared virtual host-memory resource and returns
// the instant the data is ready.
func (s *Session) ModelDataCreate(n int64) vtime.Time {
	cost := s.rt.hostMem.TransferCost(n)
	_, end := s.rt.hostMem.Transfer(0, n)
	s.bump(func(m *Metrics) { m.DataCreate += cost })
	return end
}

// chargeNIC books an n-byte outbound message on the shared host NIC egress
// link, recording it in both the session's and the aggregate transfer
// metrics, and returns the booked interval: start is when the frame enters
// the link (the wire span's origin for tracing), end its arrival instant
// at the far end.
func (s *Session) chargeNIC(earliest vtime.Time, n int64) (start, end vtime.Time) {
	cost := s.rt.nicOut.TransferCost(n)
	start, end = s.rt.nicOut.Transfer(earliest, n)
	s.bump(func(m *Metrics) {
		m.Transfer += cost
		m.WireBytes += n
		m.HostWireBytes += n
	})
	return start, end
}

// chargeNICIn books an n-byte response payload on the host NIC ingress
// link (full-duplex GbE: reads do not contend with writes).
func (s *Session) chargeNICIn(earliest vtime.Time, n int64) (start, end vtime.Time) {
	cost := s.rt.nicIn.TransferCost(n)
	start, end = s.rt.nicIn.Transfer(earliest, n)
	s.bump(func(m *Metrics) {
		m.Transfer += cost
		m.WireBytes += n
		m.HostWireBytes += n
	})
	return start, end
}

// chargePeer records n bytes of node↔node traffic for this session (link
// occupancy is modeled node-side; peer traffic never touches the host NIC).
func (s *Session) chargePeer(n int64) {
	s.bump(func(m *Metrics) {
		m.WireBytes += n
		m.PeerWireBytes += n
	})
}

// observeProfile folds a completed command's profile into the session and
// aggregate metrics and the shared monitor.
func (s *Session) observeProfile(key profile.DeviceKey, p protocol.Profile, isKernel bool) {
	end := vtime.Time(p.End)
	dur := vtime.Duration(p.DurationNS())
	s.bump(func(m *Metrics) {
		if end > m.Makespan {
			m.Makespan = end
		}
		if isKernel {
			m.ComputeBusy[key] += dur
		}
	})
	s.rt.monitor.ObserveCompletion(key, end)
}

// observeMakespan folds a virtual completion instant into the metrics.
func (s *Session) observeMakespan(t vtime.Time) {
	s.bump(func(m *Metrics) {
		if t > m.Makespan {
			m.Makespan = t
		}
	})
}

// logCommand appends one entry to the session's command log unless recovery
// is replaying (replay must not grow the log it is walking).
func (s *Session) logCommand(e logEntry) {
	if s.rt.replaying.Load() {
		return
	}
	s.logMu.Lock()
	s.cmdLog = append(s.cmdLog, e)
	s.logMu.Unlock()
}

// replayLog re-issues this session's mutation history through the enqueue
// internals and returns how many entries were replayed. Entries whose
// objects were released are skipped. Caller holds recoverMu and has set
// rt.replaying.
func (s *Session) replayLog() (int, error) {
	s.logMu.Lock()
	log := append([]logEntry(nil), s.cmdLog...)
	s.logMu.Unlock()
	replayed := 0
	for _, e := range log {
		if e.skip() {
			continue
		}
		if err := e.replay(s.rt); err != nil {
			return replayed, err
		}
		replayed++
	}
	return replayed, nil
}

// snapshotContexts copies the session's context registry.
func (s *Session) snapshotContexts() []*Context {
	s.ctxMu.Lock()
	defer s.ctxMu.Unlock()
	return append([]*Context(nil), s.contexts...)
}

// needsRecovery reports whether this session's state was touched by the
// dead nodes: a context spanning one of them, or a queue poisoned by a
// crash-induced sticky error. Recovery drains, strips and replays exactly
// these sessions; bystander tenants keep their pipelines and logs intact.
func (s *Session) needsRecovery(dead []*NodeHandle) bool {
	for _, ctx := range s.snapshotContexts() {
		for _, n := range dead {
			if _, ok := ctx.remoteID(n); ok {
				return true
			}
		}
		for _, q := range ctx.allQueues() {
			if isNodeLost(q.stickyErr()) {
				return true
			}
		}
	}
	return false
}
