package core

import (
	"fmt"
	"sync"

	"github.com/haocl-project/haocl/internal/kernel"
	"github.com/haocl-project/haocl/internal/profile"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/sched"
	"github.com/haocl-project/haocl/internal/vtime"
)

// TaskGraph is the application-level task DAG of paper Fig. 1: kernels with
// dependencies that the scheduling component places onto cluster devices.
// Each task is one kernel launch; edges order producer before consumer and
// the range-aware buffer coherence layer moves data along them
// automatically — when a consumer lands on a different node than its
// producer, only the byte ranges stale on that node cross the backbone
// (DESIGN.md §5), pipelined behind the producer through the context's
// service queues.
type TaskGraph struct {
	ctx *Context

	mu     sync.Mutex
	tasks  []*GraphTask          // guarded by mu
	queues map[*DeviceRef]*Queue // guarded by mu
}

// GraphTask is one node of a task graph.
type GraphTask struct {
	label    string
	kernel   *Kernel
	global   []int
	local    []int
	opts     *LaunchOptions
	deps     []*GraphTask
	typeMask uint8

	assigned *DeviceRef
	event    *Event
}

// Label returns the task's display name.
func (t *GraphTask) Label() string { return t.label }

// AssignedDevice returns where the scheduler placed the task (nil before
// Run).
func (t *GraphTask) AssignedDevice() *DeviceRef { return t.assigned }

// Event returns the task's completion event (nil before Run).
func (t *GraphTask) Event() *Event { return t.event }

// RestrictTypes constrains the task to the given device types, the
// user-guided placement hint of paper §III-B.
func (t *GraphTask) RestrictTypes(types ...protocol.DeviceType) *GraphTask {
	t.typeMask = sched.TypeMaskFor(types...)
	return t
}

// NewTaskGraph returns an empty task graph over the context's devices.
func (c *Context) NewTaskGraph() *TaskGraph {
	return &TaskGraph{ctx: c, queues: make(map[*DeviceRef]*Queue)}
}

// Add appends a task launching k over the NDRange after deps complete.
// Tasks must not share Kernel objects (each carries its own argument
// bindings), matching how OpenCL applications create one cl_kernel per
// concurrent use.
func (g *TaskGraph) Add(label string, k *Kernel, global, local []int, opts *LaunchOptions, deps ...*GraphTask) *GraphTask {
	t := &GraphTask{
		label:  label,
		kernel: k,
		global: global,
		local:  local,
		opts:   opts,
		deps:   deps,
	}
	g.mu.Lock()
	g.tasks = append(g.tasks, t)
	g.mu.Unlock()
	return t
}

// queueFor caches one command queue per device used by the graph.
func (g *TaskGraph) queueFor(dev *DeviceRef) (*Queue, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if q, ok := g.queues[dev]; ok {
		return q, nil
	}
	q, err := g.ctx.CreateQueue(dev)
	if err != nil {
		return nil, err
	}
	g.queues[dev] = q
	return q, nil
}

// deviceByKey resolves a scheduler assignment to a context device.
func (g *TaskGraph) deviceByKey(key profile.DeviceKey) (*DeviceRef, error) {
	for _, d := range g.ctx.devices {
		if d.key == key {
			return d, nil
		}
	}
	return nil, fmt.Errorf("core: scheduler chose device %s outside the context", key)
}

// topoOrder returns the tasks in dependency order, rejecting cycles and
// dependencies on tasks from other graphs.
func (g *TaskGraph) topoOrder() ([]*GraphTask, error) {
	g.mu.Lock()
	tasks := make([]*GraphTask, len(g.tasks))
	copy(tasks, g.tasks)
	g.mu.Unlock()

	index := make(map[*GraphTask]int, len(tasks))
	for i, t := range tasks {
		index[t] = i
	}
	indeg := make([]int, len(tasks))
	out := make([][]int, len(tasks))
	for i, t := range tasks {
		for _, d := range t.deps {
			j, ok := index[d]
			if !ok {
				return nil, fmt.Errorf("core: task %q depends on a task outside this graph", t.label)
			}
			out[j] = append(out[j], i)
			indeg[i]++
		}
	}
	var ready []int
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]*GraphTask, 0, len(tasks))
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		order = append(order, tasks[i])
		for _, j := range out[i] {
			indeg[j]--
			if indeg[j] == 0 {
				ready = append(ready, j)
			}
		}
	}
	if len(order) != len(tasks) {
		return nil, fmt.Errorf("core: task graph has a cycle")
	}
	return order, nil
}

// schedTask converts a graph task to the scheduler's view of it.
func schedTask(t *GraphTask) sched.Task {
	st := sched.Task{Kernel: t.kernel.Name(), TypeMask: t.typeMask}
	if t.opts != nil && (t.opts.CostFlops > 0 || t.opts.CostBytes > 0) {
		st.Cost = kernel.Cost{Flops: t.opts.CostFlops, Bytes: t.opts.CostBytes}
	} else {
		items := int64(1)
		for _, gdim := range t.global {
			items *= int64(gdim)
		}
		st.Cost = kernel.Cost{Flops: items}
	}
	// Snapshot the bindings, then size them unlocked: ModelSize takes
	// Buffer.mu, which ranks before Kernel.mu in the package lock order.
	t.kernel.mu.Lock()
	binds := append([]argBinding(nil), t.kernel.args...)
	t.kernel.mu.Unlock()
	for _, bind := range binds {
		if bind.kind == protocol.ArgBuffer && bind.buf != nil {
			st.InputBytes += bind.buf.ModelSize()
		}
	}
	return st
}

// Run places and launches every task using policy (nil selects the owning
// session's policy). Placement happens task by task in dependency
// order, consulting the live monitor snapshot before each decision.
//
// Dispatch is pipelined: every launch goes out through the async command
// path, so independent tasks — and same-node dependency chains, whose
// ordering travels as host-assigned event IDs — are issued without a
// single round trip. Run returns once every task is on the wire; Wait,
// Makespan or a task event's Profile block until execution completed, and
// a launch that fails remotely surfaces there (and on its queue's Finish).
func (g *TaskGraph) Run(policy sched.Policy) error {
	if policy == nil {
		policy = g.ctx.sess.Policy()
	}
	order, err := g.topoOrder()
	if err != nil {
		return err
	}
	mon := g.ctx.rt.Monitor()
	for _, t := range order {
		st := schedTask(t)
		view := mon.Snapshot()
		assignment, err := policy.Assign(st, view)
		if err != nil {
			return fmt.Errorf("core: schedule task %q: %w", t.label, err)
		}
		dev, err := g.deviceByKey(assignment.Key)
		if err != nil {
			return err
		}
		q, err := g.queueFor(dev)
		if err != nil {
			return err
		}
		waits := make([]*Event, 0, len(t.deps))
		for _, d := range t.deps {
			if d.event == nil {
				return fmt.Errorf("core: task %q ran before its dependency %q", t.label, d.label)
			}
			waits = append(waits, d.event)
		}
		// Charge the estimate as pending load so the next placement
		// decision sees this one.
		for _, v := range view {
			if v.Key == assignment.Key {
				mon.AddPending(assignment.Key, sched.EstimateDuration(st, v))
				break
			}
		}
		ev, err := q.EnqueueKernel(t.kernel, t.global, t.local, waits, t.opts)
		if err != nil {
			return fmt.Errorf("core: run task %q: %w", t.label, err)
		}
		t.assigned = dev
		t.event = ev
	}
	return nil
}

// Wait blocks until every dispatched task's launch completed, returning
// the first task failure (the task-graph synchronization point).
func (g *TaskGraph) Wait() error {
	g.mu.Lock()
	tasks := make([]*GraphTask, len(g.tasks))
	copy(tasks, g.tasks)
	g.mu.Unlock()
	var firstErr error
	for _, t := range tasks {
		if t.event == nil {
			continue
		}
		if err := t.event.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: task %q: %w", t.label, err)
		}
	}
	return firstErr
}

// Makespan reports the latest completion instant across the graph's
// tasks, waiting for in-flight launches outside the graph lock.
func (g *TaskGraph) Makespan() vtime.Time {
	g.mu.Lock()
	tasks := make([]*GraphTask, len(g.tasks))
	copy(tasks, g.tasks)
	g.mu.Unlock()
	var end vtime.Time
	for _, t := range tasks {
		if t.event == nil {
			continue
		}
		if e := t.event.End(); e > end {
			end = e
		}
	}
	return end
}
