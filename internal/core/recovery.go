package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/trace"
	"github.com/haocl-project/haocl/internal/transport"
)

// This file implements crash recovery and elastic membership (DESIGN.md §7).
//
// Detection: the transport's OnDown hook marks a node's handle dead the
// instant its connection fails, before any pending future unblocks, so
// every error a caller observes afterwards classifies as node loss.
//
// Re-placement: recovery drains the in-flight pipeline, strips the dead
// node out of every context / queue / buffer / program / kernel, re-binds
// user queues onto surviving devices, resets all buffer state to zeros and
// re-issues the command log — buffer contents are a pure function of the
// mutation history, so the replay reconstructs exactly the pre-crash bytes
// with the dead node's share re-placed on survivors. Node-loss failures
// are retriable, not sticky: queues poisoned by the crash are cleared and
// events from before the recovery are absolved (their effects were
// replayed), while genuine command failures stay sticky as before.
//
// Rejoin: ReconnectNode dials the node's address again with bounded
// backoff, repeats the Hello handshake under a bumped membership epoch,
// re-creates contexts and program builds on the fresh process, and lets
// replicas re-materialize lazily — the first consumer command migrates the
// stale ranges back through the ordinary RangeSet gap machinery.

// errNodeLost marks failures caused by a node crash; they are retriable
// (recovery clears them and re-issues the lost work), unlike ordinary
// sticky command failures.
var errNodeLost = errors.New("core: node lost")

// nodeLostError tags a transport failure observed on a dead node's
// connection as retriable while preserving the cause.
type nodeLostError struct{ cause error }

func (e *nodeLostError) Error() string   { return fmt.Sprintf("node lost: %v", e.cause) }
func (e *nodeLostError) Unwrap() []error { return []error{errNodeLost, e.cause} }

// classifyNodeErr tags a transport-level failure as crash-induced when the
// node it was observed on is no longer alive. OnDown marks the handle dead
// before any pending future unblocks — but by the time a concurrent caller
// inspects its own failure, a recovery pass driven by another session's
// goroutine may already have moved the node from dead to removed, so the
// liveness check must be "not alive", not "dead". A RemoteError is the
// node answering, i.e. a genuine command failure, and passes through.
//
// haoclvet:errclass-sanitizer
func classifyNodeErr(n *NodeHandle, err error) error {
	if err == nil || n.Alive() || isNodeLost(err) {
		return err
	}
	var re *protocol.RemoteError
	if errors.As(err, &re) {
		return err
	}
	return &nodeLostError{cause: err}
}

// isNodeLost classifies an error as crash-induced: either tagged host-side
// (connection to a dead node) or carrying the wire code nodes use for
// failures they themselves attribute to membership loss (cancelled push
// rendezvous, peer pool resets).
//
// haoclvet:errclass-sink
func isNodeLost(err error) bool {
	if errors.Is(err, errNodeLost) {
		return true
	}
	var re *protocol.RemoteError
	return errors.As(err, &re) && re.Code == protocol.CodeNodeLost
}

// anyDead reports whether some node awaits recovery.
func (rt *Runtime) anyDead() bool {
	for _, n := range rt.nodes {
		if n.state.Load() == stateDead {
			return true
		}
	}
	return false
}

// aliveNodes lists the handles currently believed good.
func (rt *Runtime) aliveNodes() []*NodeHandle {
	var out []*NodeHandle
	for _, n := range rt.nodes {
		if n.Alive() {
			out = append(out, n)
		}
	}
	return out
}

// shouldRecover reports whether err warrants running recovery and retrying:
// either the error itself is crash-induced, or some node is marked dead (in
// which case even an untyped failure — a synchronous call that died with
// the connection — is worth one recovery pass).
//
// haoclvet:errclass-sink
func (rt *Runtime) shouldRecover(err error) bool {
	if err == nil || rt.closing.Load() {
		return false
	}
	return isNodeLost(err) || rt.anyDead()
}

// withRecovery runs op, and on crash-induced failure recovers and retries.
// The public enqueue/synchronization entry points all funnel through here;
// the internals they wrap never recover (replay uses them directly).
func (rt *Runtime) withRecovery(op func() error) error {
	err := op()
	for tries := 0; err != nil && tries < 3 && rt.shouldRecover(err); tries++ {
		if rerr := rt.Recover(); rerr != nil {
			return rerr
		}
		err = op()
	}
	return err
}

// Recover re-places the work of every dead node on the survivors and
// replays the command log. It is a no-op when nothing is dead and no
// crash-induced failure is latched, so calling it opportunistically is
// cheap. Public API wrappers call it automatically; hosts driving the
// runtime manually may call it after noticing a failure themselves.
func (rt *Runtime) Recover() error {
	rt.recoverMu.Lock()
	defer rt.recoverMu.Unlock()
	return rt.recoverLocked()
}

// recoverLocked loops recovery passes until the cluster is stable: a node
// that dies while a pass is replaying is picked up by the next pass.
// Caller holds recoverMu.
func (rt *Runtime) recoverLocked() error {
	for round := 0; ; round++ {
		if round > len(rt.nodes)+1 {
			return fmt.Errorf("core: recovery did not converge after %d rounds", round)
		}
		ran, err := rt.recoverOnce()
		if err != nil {
			return err
		}
		if !ran {
			return nil
		}
		if !rt.anyDead() {
			return nil
		}
	}
}

// recoverOnce performs one recovery pass. It reports false when there was
// nothing to recover. Recovery is session-scoped: only the sessions whose
// contexts span a dead node (or whose queues latched a crash-induced
// failure) are drained, stripped and replayed; bystander tenants keep
// their pipelines, sticky release errors and command logs untouched.
// Caller holds rt.recoverMu.
func (rt *Runtime) recoverOnce() (bool, error) {
	var dead []*NodeHandle
	for _, n := range rt.nodes {
		if n.state.Load() == stateDead {
			dead = append(dead, n)
		}
	}
	sessions := rt.allSessions()
	var affected []*Session
	for _, s := range sessions {
		if s.needsRecovery(dead) {
			affected = append(affected, s)
		}
	}
	if len(dead) == 0 && len(affected) == 0 {
		return false, nil
	}
	for _, n := range dead {
		n.client.Load().Close()
	}

	// 1. Materialize every in-flight failure of the affected sessions:
	// resolve their pipelined futures (watchPush cancel goroutines unpark
	// awaiters stranded by a dead pusher) and reap their fire-and-forget
	// releases. Release acks that died with a dead connection are
	// expendable — the objects died with the node — so the crash does not
	// become a sticky release error; a genuine RemoteError from a live
	// node (drainReleases classifies each failure) stays latched and still
	// surfaces at the tenant's Flush/Close.
	for _, s := range affected {
		s.drainPendingEvents()
		s.drainReleases()
		s.relMu.Lock()
		if isNodeLost(s.relErr) {
			s.relErr = nil
		}
		s.relMu.Unlock()
	}

	// 2. Membership: the scheduler's device view must drop the dead nodes
	// before anything is re-placed.
	for _, n := range dead {
		rt.monitor.RemoveNode(n.name)
		n.state.Store(stateRemoved)
	}

	// 3. Strip dead-node state from the affected namespaces and re-bind
	// orphaned queues.
	var contexts []*Context
	for _, s := range affected {
		contexts = append(contexts, s.snapshotContexts()...)
	}
	for _, ctx := range contexts {
		if err := ctx.stripDead(dead); err != nil {
			return true, err
		}
	}

	// 4. New generation: events issued from here on are post-recovery;
	// everything older is never referenced on the wire again and its
	// crash-induced failure is absolved. The generation is global — an
	// unaffected session's older events simply fold into exact virtual-time
	// floors instead of wire waits, which preserves their semantics.
	rt.gen.Add(1)

	// 5. New membership epoch: survivors drop pooled peer connections and
	// cancel parked rendezvous, so replayed p2p traffic starts clean.
	rt.epoch++
	if err := rt.rehelloLocked(); err != nil {
		return true, err
	}

	// 6. Replay the affected sessions' mutation histories from zeroed
	// state. One pass counts one recovery in the aggregate; each affected
	// tenant's own metrics count it too.
	rt.replaying.Store(true)
	totalReplayed := 0
	var replayErr error
	for _, s := range affected {
		s.mu.Lock()
		replayFrom := s.metrics.Makespan
		s.mu.Unlock()
		replayed, err := s.replayLog()
		totalReplayed += replayed
		s.mu.Lock()
		s.metrics.Recoveries++
		s.metrics.ReplayedCommands += int64(replayed)
		replayTo := s.metrics.Makespan
		s.mu.Unlock()
		// One recovery span per affected session: the makespan interval
		// the replay advanced through, tagged with the entry count.
		s.traceRun().Add(trace.Span{
			Kind:   trace.KindRecovery,
			Tenant: s.tenant,
			Start:  replayFrom,
			End:    replayTo,
			Bytes:  int64(replayed),
			Replay: true,
		})
		if err != nil {
			replayErr = err
			break
		}
	}
	rt.replaying.Store(false)
	rt.mu.Lock()
	rt.metrics.Recoveries++
	rt.metrics.ReplayedCommands += int64(totalReplayed)
	rt.mu.Unlock()
	if replayErr != nil {
		if rt.shouldRecover(replayErr) {
			return true, nil // another node died mid-replay: next round
		}
		return true, fmt.Errorf("core: recovery replay: %w", replayErr)
	}

	// 7. Settle and verify: every replayed command must have succeeded.
	for _, s := range affected {
		s.drainPendingEvents()
	}
	for _, ctx := range contexts {
		if err := ctx.checkQueuesClean(); err != nil {
			if rt.shouldRecover(err) {
				return true, nil // next round picks the new death up
			}
			return true, fmt.Errorf("core: recovery verification: %w", err)
		}
	}
	return true, nil
}

// stripDead removes every trace of the dead nodes from the context:
// remote context/object bindings, service queues, replicas. User queues
// bound to a dead device are re-bound to a surviving one; buffer state is
// reset to zeros so the log replay reconstructs contents deterministically;
// crash-poisoned queues are cleared.
func (c *Context) stripDead(dead []*NodeHandle) error {
	isDead := make(map[*NodeHandle]bool, len(dead))
	for _, n := range dead {
		isDead[n] = true
	}

	c.mu.Lock()
	for node, q := range c.svcQueue {
		if isDead[node] {
			delete(c.svcQueue, node)
			c.dropQueue(q)
		}
	}
	c.mu.Unlock()
	for _, n := range dead {
		c.dropRemote(n)
	}
	c.regMu.Lock()
	queues := append([]*Queue(nil), c.queues...)
	buffers := append([]*Buffer(nil), c.buffers...)
	programs := append([]*Program(nil), c.programs...)
	c.regMu.Unlock()

	for _, q := range queues {
		if dev, _ := q.binding(); isDead[dev.node] {
			if err := c.rebindQueue(q); err != nil {
				return err
			}
		}
		q.clearRetriableSticky()
	}
	for _, b := range buffers {
		b.resetForReplay(isDead)
	}
	for _, p := range programs {
		p.mu.Lock()
		for _, n := range dead {
			delete(p.remote, n)
		}
		kernels := append([]*Kernel(nil), p.kernels...)
		p.mu.Unlock()
		for _, k := range kernels {
			k.mu.Lock()
			for _, n := range dead {
				delete(k.remote, n)
			}
			k.mu.Unlock()
		}
	}
	return nil
}

// dropQueue removes a (service) queue from the context registry; its node
// died, and service queues are re-created lazily rather than re-bound.
func (c *Context) dropQueue(q *Queue) {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	for i, cand := range c.queues {
		if cand == q {
			c.queues = append(c.queues[:i], c.queues[i+1:]...)
			return
		}
	}
}

// rebindQueue moves a user queue whose device died onto a surviving
// context device, preferring one of the same type — the re-placement step
// of recovery. The queue object is the same host-side handle; only its
// device binding and remote ID change.
func (c *Context) rebindQueue(q *Queue) error {
	old, _ := q.binding()
	target := c.replacementDevice(old)
	if target == nil {
		return fmt.Errorf("core: no surviving device to re-place queue from %s", old.key)
	}
	ctxID, ok := c.remoteID(target.node)
	if !ok {
		return fmt.Errorf("core: context has no remote instance on %q", target.node.name)
	}
	var resp protocol.ObjectResp
	err := c.sess.call(target.node, &protocol.CreateQueueReq{
		ContextID: ctxID,
		DeviceID:  target.info.ID,
		Profiling: true,
	}, &resp)
	if err != nil {
		return fmt.Errorf("core: re-place queue on %s: %w", target.key, err)
	}
	q.mu.Lock()
	q.dev = target
	q.remoteID = resp.ID
	q.mu.Unlock()
	return nil
}

// replacementDevice picks a surviving context device for re-placement,
// preferring the crashed device's type.
func (c *Context) replacementDevice(old *DeviceRef) *DeviceRef {
	var fallback *DeviceRef
	for _, d := range c.devices {
		if !d.node.Alive() {
			continue
		}
		if d.info.Type == old.info.Type {
			return d
		}
		if fallback == nil {
			fallback = d
		}
	}
	return fallback
}

// clearRetriableSticky lifts a crash-induced sticky error off the queue:
// node loss is retriable — the replay re-establishes the lost work —
// whereas genuine command failures stay sticky exactly as before.
func (q *Queue) clearRetriableSticky() {
	q.mu.Lock()
	if isNodeLost(q.err) {
		q.err = nil
	}
	q.mu.Unlock()
}

// resetForReplay clears all coherence state so the log replay
// reconstructs contents from deterministic zeros: the host shadow is
// zeroed and invalidated, surviving replicas keep their device arrays but
// lose all validity (stale bytes become unreachable), and the write chains
// are cut — pre-recovery events are never referenced again.
func (b *Buffer) resetForReplay(isDead map[*NodeHandle]bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for node := range b.remote {
		if isDead[node] {
			delete(b.remote, node)
		}
	}
	for i := range b.host {
		b.host[i] = 0
	}
	b.hostValid.Reset()
	b.hostReadyAt = 0
	for _, rb := range b.remote {
		rb.valid.Reset()
		rb.lastEvent = 0
		rb.lastEv = nil
	}
}

// rehelloLocked repeats the Hello handshake with every live node under the
// current membership epoch and address book. Nodes that observe the epoch
// advance drop their pooled peer connections and cancel parked push
// rendezvous, so stale routes to dead incarnations cannot linger.
// Caller holds rt.recoverMu.
func (rt *Runtime) rehelloLocked() error {
	alive := rt.aliveNodes()
	peers := make([]protocol.PeerAddr, 0, len(alive))
	for _, n := range alive {
		peers = append(peers, protocol.PeerAddr{Name: n.name, Addr: n.addr})
	}
	for _, n := range alive {
		var resp protocol.HelloResp
		err := rt.call(n, &protocol.HelloReq{
			UserID:      rt.userID,
			ClientName:  rt.clientName,
			WireVersion: n.wireVersion.Load(),
			Peers:       peers,
			Epoch:       rt.epoch,
		}, &resp)
		if err != nil {
			if rt.shouldRecover(err) {
				continue // died during the re-hello: next round handles it
			}
			return fmt.Errorf("core: re-hello %q: %w", n.name, err)
		}
	}
	return nil
}

// reconnectAttempts bounds the rejoin dial loop; backoff doubles from
// reconnectBackoff between attempts.
const (
	reconnectAttempts = 8
	reconnectBackoff  = 2 * time.Millisecond
)

// ReconnectNode re-admits a crashed (or restarted) node: dial its address
// again with bounded backoff, repeat the Hello handshake under a bumped
// membership epoch, and re-create this runtime's contexts and program
// builds on the fresh process. Replicas are NOT eagerly restored — they
// re-materialize lazily, the first consumer command migrating the stale
// ranges back through the ordinary RangeSet gap machinery. If the node's
// crash has not been recovered yet, recovery runs first so the rejoin
// starts from a consistent cluster.
func (rt *Runtime) ReconnectNode(name string) error {
	rt.recoverMu.Lock()
	defer rt.recoverMu.Unlock()

	var h *NodeHandle
	for _, n := range rt.nodes {
		if n.name == name {
			h = n
			break
		}
	}
	if h == nil {
		return fmt.Errorf("core: unknown node %q", name)
	}
	if h.Alive() {
		// Looking alive may just mean the crash is undetected: nothing
		// touched this node since it died. Probe the pooled connection —
		// a live node makes the rejoin a no-op, a dead one fails the
		// probe, which marks the handle down (OnDown fires before the
		// pending call unblocks) and the rejoin proceeds.
		rt.mu.Lock()
		rt.metrics.Commands++
		rt.mu.Unlock()
		var status protocol.NodeStatusResp
		if err := h.client.Load().Call(&protocol.NodeStatusReq{}, &status); err == nil {
			return nil // genuinely alive: double rejoin
		}
	}
	if rt.anyDead() {
		if err := rt.recoverLocked(); err != nil {
			return err
		}
	}

	var client *transport.Client
	var err error
	delay := reconnectBackoff
	for attempt := 0; attempt < reconnectAttempts; attempt++ {
		if client, err = rt.dialer.Dial(h.addr); err == nil {
			break
		}
		time.Sleep(delay)
		delay *= 2
	}
	if err != nil {
		return fmt.Errorf("core: reconnect %q: %w", name, err)
	}

	rt.epoch++
	alive := rt.aliveNodes()
	peers := make([]protocol.PeerAddr, 0, len(alive)+1)
	for _, n := range alive {
		peers = append(peers, protocol.PeerAddr{Name: n.name, Addr: n.addr})
	}
	peers = append(peers, protocol.PeerAddr{Name: h.name, Addr: h.addr})

	resp, err := hello(client, rt.userID, rt.clientName, peers, rt.epoch)
	if err != nil {
		client.Close()
		return fmt.Errorf("core: rejoin handshake with %q: %w", name, err)
	}
	if resp.WireVersion >= protocol.VersionBatch {
		client.EnableBatching()
	}
	// Publish the fresh connection before flipping the handle alive, so a
	// caller that observes stateAlive also loads the new client.
	h.client.Store(client)
	h.wireVersion.Store(resp.WireVersion)
	h.bootID.Store(resp.BootID)
	h.state.Store(stateAlive)
	rt.watchNode(h, client)
	for _, info := range resp.Devices {
		rt.monitor.RegisterDevice(h.name, info)
	}

	// Re-create the control-plane objects the fresh process needs before
	// any command can route to it, across every session's namespace; data
	// re-replicates lazily.
	for _, s := range rt.allSessions() {
		for _, ctx := range s.snapshotContexts() {
			if err := ctx.restoreOn(h); err != nil {
				return fmt.Errorf("core: rejoin %q: %w", name, err)
			}
		}
	}

	// Survivors learn the new address book and epoch, dropping any pooled
	// connection to the node's previous incarnation.
	return rt.rehelloLocked()
}

// restoreOn re-creates the context and its built programs on a rejoined
// node. Kernels, service queues and replicas re-materialize lazily.
func (c *Context) restoreOn(h *NodeHandle) error {
	var ids []int64
	for _, d := range c.devices {
		if d.node == h {
			ids = append(ids, int64(d.info.ID))
		}
	}
	if len(ids) == 0 {
		return nil // context does not span this node
	}
	var resp protocol.ObjectResp
	req := &protocol.CreateContextReq{DeviceIDs: ids, SessionID: c.sess.id, Tenant: c.sess.tenant}
	if err := c.sess.call(h, req, &resp); err != nil {
		return fmt.Errorf("re-create context: %w", err)
	}
	c.setRemote(h, resp.ID)
	c.regMu.Lock()
	programs := append([]*Program(nil), c.programs...)
	c.regMu.Unlock()
	for _, p := range programs {
		p.mu.Lock()
		built := p.built
		p.mu.Unlock()
		if !built {
			continue
		}
		var bresp protocol.BuildProgramResp
		err := c.sess.call(h, &protocol.BuildProgramReq{ContextID: resp.ID, Source: p.source}, &bresp)
		if err != nil {
			return fmt.Errorf("re-build program: %w", err)
		}
		p.mu.Lock()
		p.remote[h] = bresp.ProgramID
		p.mu.Unlock()
	}
	return nil
}
