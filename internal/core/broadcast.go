package core

import (
	"fmt"
	"time"

	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/sim"
	"github.com/haocl-project/haocl/internal/vtime"
)

// broadcastChunkBytes is the pipelining granularity of chain broadcasts:
// once a node has received the first chunk it starts forwarding to the next
// node, so each additional hop adds one chunk's latency rather than a full
// retransmission.
const broadcastChunkBytes = 8 << 20

// hopDelay models the pipeline fill per chain hop.
func hopDelay(modelBytes int64) vtime.Duration {
	chunk := modelBytes
	if chunk > broadcastChunkBytes {
		chunk = broadcastChunkBytes
	}
	secs := float64(chunk) / sim.GigabitBytesPerSec
	return vtime.Duration(secs*1e9) + 150*time.Microsecond
}

// Broadcast writes data into b on every queue's node using a pipelined
// node-to-node chain: the host sends one copy over its NIC to the first
// node, which forwards chunks to the second while still receiving, and so
// on. Completion at hop i trails hop i-1 by one chunk, so distributing to n
// nodes costs one transfer plus n-1 pipeline fills instead of n full
// transfers through the host NIC — one of the "complex inter-node data
// transfer schemes" the backbone implements (paper §III-C).
//
// Functionally every node receives data through its own WriteBuffer
// command; only the virtual-time charging differs from repeated
// EnqueueWrite calls. The hop arrival instants are computed host-side, so
// every hop is issued through the async path without waiting for any
// response: fan-out to n nodes costs zero round trips instead of n. The
// returned events resolve as the nodes answer.
func (c *Context) Broadcast(b *Buffer, data []byte, queues []*Queue) ([]*Event, error) {
	if len(queues) == 0 {
		return nil, fmt.Errorf("core: broadcast needs at least one queue")
	}
	if int64(len(data)) != b.size {
		return nil, fmt.Errorf("core: broadcast needs full buffer contents (%d bytes, got %d)",
			b.size, len(data))
	}
	// One hop per distinct node, in queue order.
	seen := make(map[*NodeHandle]bool, len(queues))
	hops := make([]*Queue, 0, len(queues))
	for _, q := range queues {
		if !seen[q.dev.node] {
			seen[q.dev.node] = true
			hops = append(hops, q)
		}
	}

	b.mu.Lock()
	defer b.mu.Unlock()

	// Validate every hop up front — sticky queue errors, replica
	// allocation (a synchronous call that can fail), chain integrity —
	// before mutating any buffer state. Failing mid-loop would strand the
	// buffer half-broadcast: host shadow updated and earlier hops issued,
	// later replicas still holding (and still marked with) old data.
	type hop struct {
		q     *Queue
		rb    *remoteBuf
		chain []int64
	}
	plan := make([]hop, 0, len(hops))
	for _, q := range hops {
		if err := q.stickyErr(); err != nil {
			return nil, err
		}
		rb, err := b.remoteOn(q.dev.node)
		if err != nil {
			return nil, err
		}
		chain, err := rb.chainWaits()
		if err != nil {
			return nil, err
		}
		plan = append(plan, hop{q: q, rb: rb, chain: chain})
	}

	if b.host == nil {
		b.host = make([]byte, b.size)
	}
	copy(b.host, data)
	b.hostValid.Reset()
	b.hostValid.Add(0, b.size)

	events := make([]*Event, 0, len(plan))
	var prevArrival vtime.Time
	for i, h := range plan {
		node := h.q.dev.node
		var arrival vtime.Time
		if i == 0 {
			// First hop crosses the host NIC.
			arrival = c.rt.chargeNIC(b.hostReadyAt, controlMsgBytes+b.modelSize)
		} else {
			// Chain hop: previous node forwards over its own link.
			arrival = prevArrival.Add(hopDelay(b.modelSize))
		}
		prevArrival = arrival

		resp := new(protocol.EventResp)
		id, pend := c.rt.issue(node, &protocol.WriteBufferReq{
			QueueID:    h.q.remoteID,
			BufferID:   h.rb.id,
			Offset:     0,
			Data:       data,
			SimArrival: int64(arrival),
			ModelBytes: b.modelSize,
			WaitEvents: h.chain,
		}, resp)
		ev := &Event{dev: h.q.dev, remoteID: id, queue: h.q, pending: pend, resp: resp}
		h.q.track(ev)
		h.rb.valid.Reset()
		h.rb.valid.Add(0, b.size)
		h.rb.lastEvent = id
		h.rb.lastEv = ev
		events = append(events, ev)
	}

	// Replicas on nodes outside the hop set now hold stale data in full:
	// a later consumer there must re-migrate from the fresh host shadow
	// instead of reading the pre-broadcast bytes.
	for node, orb := range b.remote {
		if !seen[node] {
			orb.valid.Reset()
		}
	}
	return events, nil
}
