package core

import (
	"fmt"
	"time"

	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/sim"
	"github.com/haocl-project/haocl/internal/trace"
	"github.com/haocl-project/haocl/internal/transport"
	"github.com/haocl-project/haocl/internal/vtime"
)

// broadcastChunkBytes is the pipelining granularity of chain broadcasts:
// once a node has received the first chunk it starts forwarding to the next
// node, so each additional hop adds one chunk's latency rather than a full
// retransmission.
const broadcastChunkBytes = 8 << 20

// hopDelay models the pipeline fill per chain hop.
func hopDelay(modelBytes int64) vtime.Duration {
	chunk := modelBytes
	if chunk > broadcastChunkBytes {
		chunk = broadcastChunkBytes
	}
	secs := float64(chunk) / sim.GigabitBytesPerSec
	return vtime.Duration(secs*1e9) + 150*time.Microsecond
}

// Broadcast writes data into b on every queue's node using a pipelined
// node-to-node chain: the host sends one copy over its NIC to the first
// node, which forwards chunks to the second while still receiving, and so
// on. Completion at hop i trails hop i-1 by one chunk, so distributing to n
// nodes costs one transfer plus n-1 pipeline fills instead of n full
// transfers through the host NIC — one of the "complex inter-node data
// transfer schemes" the backbone implements (paper §III-C).
//
// In the default MigrateDelta mode the chain is real: hop 0 receives the
// payload from the host, and every later hop receives it from its
// predecessor through a PushRange/AwaitPush pair riding the node links —
// the host only issues control frames. DepartAt carries the host-planned
// cut-through instant, so forwarding overlaps the predecessor's device
// write exactly as the hopDelay arithmetic models. In MigrateHostRelay
// (and MigrateFull) every hop keeps the pre-p2p shape: data functionally
// crosses the host in each hop's WriteBuffer while only the virtual-time
// charging follows the chain.
//
// Either way the hop arrival instants are computed host-side, so every hop
// is issued through the async path without waiting for any response:
// fan-out to n nodes costs zero round trips instead of n. The returned
// events resolve as the nodes answer. A crash-induced failure recovers
// and retries transparently.
func (c *Context) Broadcast(b *Buffer, data []byte, queues []*Queue) ([]*Event, error) {
	var events []*Event
	err := c.rt.withRecovery(func() error {
		var berr error
		events, berr = c.broadcast(b, data, queues)
		return berr
	})
	return events, err
}

// broadcast is the non-recovering Broadcast internal; replay drives it
// directly.
func (c *Context) broadcast(b *Buffer, data []byte, queues []*Queue) ([]*Event, error) {
	if len(queues) == 0 {
		return nil, fmt.Errorf("core: broadcast needs at least one queue")
	}
	if int64(len(data)) != b.size {
		return nil, fmt.Errorf("core: broadcast needs full buffer contents (%d bytes, got %d)",
			b.size, len(data))
	}
	if b.ctx.sess != c.sess {
		return nil, fmt.Errorf("core: broadcast into buffer of tenant %q: %w", b.ctx.sess.tenant, ErrCrossSession)
	}
	// One hop per distinct node, in queue order.
	seen := make(map[*NodeHandle]bool, len(queues))
	hops := make([]*Queue, 0, len(queues))
	for _, q := range queues {
		if q.ctx.sess != c.sess {
			return nil, fmt.Errorf("core: broadcast through queue of tenant %q: %w", q.ctx.sess.tenant, ErrCrossSession)
		}
		dev, _ := q.binding()
		if !seen[dev.node] {
			seen[dev.node] = true
			hops = append(hops, q)
		}
	}

	b.mu.Lock()
	defer b.mu.Unlock()

	// Validate every hop up front — sticky queue errors, replica
	// allocation (a synchronous call that can fail), chain integrity —
	// before mutating any buffer state. Failing mid-loop would strand the
	// buffer half-broadcast: host shadow updated and earlier hops issued,
	// later replicas still holding (and still marked with) old data.
	p2p := c.sess.migrationMode() == MigrateDelta
	type hop struct {
		q      *Queue
		dev    *DeviceRef // q's binding, snapshotted once for the whole plan
		qid    uint64
		rb     *remoteBuf
		chain  []int64
		svc    *Queue // p2p: forwarding source lane (all but the last hop)
		svcDev *DeviceRef
		svcID  uint64
	}
	plan := make([]hop, 0, len(hops))
	for i, q := range hops {
		if err := q.stickyErr(); err != nil {
			return nil, err
		}
		dev, qid := q.binding()
		rb, err := b.remoteOn(dev.node)
		if err != nil {
			return nil, err
		}
		chain, err := rb.chainWaits()
		if err != nil {
			return nil, err
		}
		h := hop{q: q, dev: dev, qid: qid, rb: rb, chain: chain}
		if p2p && i < len(hops)-1 {
			// Forwarding rides the node's single service lane so link
			// bookings stay totally ordered; created here because it is a
			// fallible round trip and must not fail mid-loop.
			svc, err := c.serviceQueue(dev.node)
			if err != nil {
				return nil, err
			}
			if err := svc.stickyErr(); err != nil {
				return nil, err
			}
			h.svc = svc
			h.svcDev, h.svcID = svc.binding()
		}
		plan = append(plan, h)
	}

	if b.host == nil {
		b.host = make([]byte, b.size)
	}
	copy(b.host, data)
	b.hostValid.Reset()
	b.hostValid.Add(0, b.size)

	events := make([]*Event, 0, len(plan))
	var prevArrival vtime.Time
	var prevID uint64
	for i, h := range plan {
		node := h.dev.node
		var arrival vtime.Time
		var wireStart vtime.Time // hop payload departure, for the wire span
		var id uint64
		var ev *Event
		if i == 0 || !p2p {
			if i == 0 {
				// First hop crosses the host NIC.
				wireStart, arrival = c.sess.chargeNIC(b.hostReadyAt, controlMsgBytes+b.modelSize)
			} else {
				// Chain hop: previous node forwards over its own link.
				wireStart, arrival = prevArrival, prevArrival.Add(hopDelay(b.modelSize))
			}
			resp := new(protocol.EventResp)
			var pend *transport.Pending
			id, pend = c.sess.issue(node, &protocol.WriteBufferReq{
				QueueID:    h.qid,
				BufferID:   h.rb.id,
				Offset:     0,
				Data:       data,
				SimArrival: int64(arrival),
				ModelBytes: b.modelSize,
				WaitEvents: h.chain,
			}, resp)
			ev = &Event{dev: h.dev, remoteID: id, queue: h.q, pending: pend, resp: resp,
				trace: c.sess.traceCmd(trace.KindBroadcast, h.dev, h.qid, b.modelSize, wireStart, arrival)}
		} else {
			// Chain hop over the node links: the previous node forwards
			// the buffer it just received, cut through at DepartAt.
			prev := plan[i-1]
			wireStart, arrival = prevArrival, prevArrival.Add(hopDelay(b.modelSize))
			token := c.rt.nextPushToken()
			pushCtrlStart, pushCtrl := c.sess.chargeNIC(0, controlMsgBytes)
			pushResp := new(protocol.EventResp)
			pushID, pushPend := c.sess.issue(prev.dev.node, &protocol.PushRangeReq{
				QueueID:      prev.svcID,
				BufferID:     prev.rb.id,
				PeerName:     node.name,
				PeerBufferID: h.rb.id,
				Token:        token,
				Offset:       0,
				Size:         b.size,
				SimArrival:   int64(pushCtrl),
				DepartAt:     int64(prevArrival),
				ModelBytes:   b.modelSize,
				// Functional edge only: the forward must not read the
				// replica before the previous hop's receive has copied the
				// data in. Virtual timing ignores it — DepartAt models the
				// cut-through overlap with that device write.
				WaitEvents: []int64{int64(prevID)},
			}, pushResp)
			pushEv := &Event{dev: prev.svcDev, remoteID: pushID, queue: prev.svc, pending: pushPend, resp: pushResp,
				trace: c.sess.traceCmd(trace.KindPushRange, prev.svcDev, 0, b.modelSize, pushCtrlStart, pushCtrl)}
			prev.svc.track(pushEv)
			// Anti-dependency: a later write to the forwarder's replica
			// waits for the forward to have read it.
			prev.rb.lastEvent = pushID
			prev.rb.lastEv = pushEv

			_, awaitCtrl := c.sess.chargeNIC(0, controlMsgBytes)
			resp := new(protocol.EventResp)
			var pend *transport.Pending
			id, pend = c.sess.issue(node, &protocol.AwaitPushReq{
				QueueID:    h.qid,
				BufferID:   h.rb.id,
				Token:      token,
				Offset:     0,
				Size:       b.size,
				SimArrival: int64(awaitCtrl),
				ModelBytes: b.modelSize,
				WaitEvents: h.chain,
			}, resp)
			// The hop's wire span is the peer-link flight [prevArrival,
			// arrival], not the tiny control frame.
			ev = &Event{dev: h.dev, remoteID: id, queue: h.q, pending: pend, resp: resp,
				trace: c.sess.traceCmd(trace.KindBroadcast, h.dev, h.qid, b.modelSize, wireStart, arrival)}
			c.sess.chargePeer(b.modelSize)
			c.rt.watchPush(node.client.Load(), token, pushEv)
		}
		prevArrival = arrival
		prevID = id

		h.q.track(ev)
		h.rb.valid.Reset()
		h.rb.valid.Add(0, b.size)
		h.rb.lastEvent = id
		h.rb.lastEv = ev
		events = append(events, ev)
	}

	// Replicas on nodes outside the hop set now hold stale data in full:
	// a later consumer there must re-migrate from the fresh host shadow
	// instead of reading the pre-broadcast bytes.
	for node, orb := range b.remote {
		if !seen[node] {
			orb.valid.Reset()
		}
	}
	c.sess.logCommand(&broadcastLog{
		c:    c,
		b:    b,
		data: append([]byte(nil), data...),
		qs:   append([]*Queue(nil), queues...),
	})
	return events, nil
}
