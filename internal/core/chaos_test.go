package core_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/haocl-project/haocl/internal/cluster"
	"github.com/haocl-project/haocl/internal/core"
	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/mem"
	"github.com/haocl-project/haocl/internal/node"
	"github.com/haocl-project/haocl/internal/sim"
	"github.com/haocl-project/haocl/internal/transport"
)

// chaosCluster is a test cluster whose nodes can be killed and restarted:
// kill tears the node's server down (every connection dies, exactly like a
// crashed process), restart boots a fresh node process at the same address
// and rejoins it through ReconnectNode.
type chaosCluster struct {
	t       *testing.T
	cfg     *cluster.Config
	icd     *device.ICD
	net     *transport.MemNetwork
	rt      *core.Runtime
	servers map[string]*transport.Server
	addrs   map[string]string
	alive   map[string]bool
}

func startChaosCluster(t *testing.T, gpuNodes int) *chaosCluster {
	t.Helper()
	cc := &chaosCluster{
		t:       t,
		cfg:     cluster.Synthetic("chaos-test", 0, gpuNodes, 0, nil),
		icd:     device.NewICD(),
		net:     transport.NewMemNetwork(),
		servers: make(map[string]*transport.Server),
		addrs:   make(map[string]string),
		alive:   make(map[string]bool),
	}
	sim.RegisterDrivers(cc.icd, testRegistry())
	for _, ns := range cc.cfg.Nodes {
		cc.addrs[ns.Name] = ns.Addr
		cc.boot(ns.Name)
	}
	rt, err := core.Connect(core.Options{Config: cc.cfg, Dialer: cc.net, ClientName: "chaos-test"})
	if err != nil {
		t.Fatal(err)
	}
	cc.rt = rt
	return cc
}

// boot starts a fresh node process (new boot ID) and binds it at the
// node's address.
func (cc *chaosCluster) boot(name string) {
	cc.t.Helper()
	for _, ns := range cc.cfg.Nodes {
		if ns.Name != name {
			continue
		}
		devCfgs, err := ns.DeviceConfigs()
		if err != nil {
			cc.t.Fatal(err)
		}
		n, err := node.New(node.Options{Name: ns.Name, Devices: devCfgs, ICD: cc.icd, ExecWorkers: 1, Dialer: cc.net})
		if err != nil {
			cc.t.Fatal(err)
		}
		srv := n.Serve()
		if err := cc.net.Register(ns.Addr, srv); err != nil {
			cc.t.Fatal(err)
		}
		cc.servers[name] = srv
		cc.alive[name] = true
		return
	}
	cc.t.Fatalf("unknown node %q", name)
}

// kill crashes the named node: the address unbinds (dials fail until a
// restart) and every live connection — host and peer alike — drops.
func (cc *chaosCluster) kill(name string) {
	cc.t.Helper()
	if !cc.alive[name] {
		return
	}
	cc.net.Unregister(cc.addrs[name])
	cc.servers[name].Close()
	cc.alive[name] = false
}

// restart boots a fresh process for the node and rejoins it.
func (cc *chaosCluster) restart(name string) {
	cc.t.Helper()
	if cc.alive[name] {
		return
	}
	cc.boot(name)
	if err := cc.rt.ReconnectNode(name); err != nil {
		cc.t.Fatalf("rejoin %q: %v", name, err)
	}
}

func (cc *chaosCluster) close() {
	cc.rt.Close()
	for name, srv := range cc.servers {
		if cc.alive[name] {
			srv.Close()
		}
	}
}

func (cc *chaosCluster) aliveCount() int {
	n := 0
	for _, a := range cc.alive {
		if a {
			n++
		}
	}
	return n
}

// chaosWorkload drives a deterministic randomized op mix — writes, incr
// kernels, copies, broadcasts, range reads — over a set of buffers,
// maintaining a host-side mirror as the coherence oracle. When inj is
// non-nil, every kill point crashes one node mid-stream (restarting any
// previously crashed node first), so recovery and rejoin interleave with
// the workload. Returns the final contents of every buffer.
func chaosWorkload(t *testing.T, cc *chaosCluster, seed int64, steps int, inj *sim.FailureInjector) []byte {
	t.Helper()
	rt := cc.rt
	rng := rand.New(rand.NewSource(seed))

	devs := rt.Devices(0)
	ctx, err := rt.CreateContext(devs)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgram(incrSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("incr")
	if err != nil {
		t.Fatal(err)
	}
	var queues []*core.Queue
	for _, d := range devs {
		q, err := ctx.CreateQueue(d)
		if err != nil {
			t.Fatal(err)
		}
		queues = append(queues, q)
	}

	const nBufs = 3
	const floats = 64
	const size = floats * 4
	var bufs []*core.Buffer
	mirror := make([][]float32, nBufs)
	for i := 0; i < nBufs; i++ {
		b, err := ctx.CreateBuffer(size)
		if err != nil {
			t.Fatal(err)
		}
		bufs = append(bufs, b)
		mirror[i] = make([]float32, floats)
	}

	randQ := func() *core.Queue { return queues[rng.Intn(len(queues))] }
	randRange := func() (lo, hi int) {
		lo = rng.Intn(floats)
		hi = lo + 1 + rng.Intn(floats-lo)
		return lo, hi
	}

	for step := 0; step < steps; step++ {
		if inj != nil {
			if victim := inj.Tick(); victim != "" {
				// Rejoin any earlier casualty first, then crash the victim —
				// unless it is the last node standing.
				for name, a := range cc.alive {
					if !a {
						cc.restart(name)
					}
				}
				if cc.aliveCount() > 1 {
					cc.kill(victim)
				}
			}
		}
		bi := rng.Intn(nBufs)
		b, m := bufs[bi], mirror[bi]
		switch op := rng.Intn(100); {
		case op < 35: // ranged write
			lo, hi := randRange()
			vals := make([]float32, hi-lo)
			for i := range vals {
				vals[i] = float32(rng.Intn(1000))
			}
			if _, err := randQ().EnqueueWrite(b, int64(lo*4), mem.F32Bytes(vals)); err != nil {
				t.Fatalf("step %d write: %v", step, err)
			}
			copy(m[lo:hi], vals)
		case op < 55: // incr kernel over the whole buffer
			if err := k.SetArg(0, b); err != nil {
				t.Fatal(err)
			}
			if err := k.SetArg(1, int32(floats)); err != nil {
				t.Fatal(err)
			}
			if _, err := randQ().EnqueueKernel(k, []int{floats}, nil, nil, nil); err != nil {
				t.Fatalf("step %d kernel: %v", step, err)
			}
			for i := range m {
				m[i]++
			}
		case op < 70: // copy a range into another buffer
			oi := (bi + 1 + rng.Intn(nBufs-1)) % nBufs
			lo, hi := randRange()
			if _, err := randQ().EnqueueCopy(b, bufs[oi], int64(lo*4), int64(lo*4), int64((hi-lo)*4)); err != nil {
				t.Fatalf("step %d copy: %v", step, err)
			}
			copy(mirror[oi][lo:hi], m[lo:hi])
		case op < 85: // ranged read, checked against the mirror
			lo, hi := randRange()
			data, _, err := randQ().EnqueueRead(b, int64(lo*4), int64((hi-lo)*4))
			if err != nil {
				t.Fatalf("step %d read: %v", step, err)
			}
			got := mem.BytesF32(data)
			for i, v := range got {
				if v != m[lo+i] {
					t.Fatalf("step %d: buffer %d float %d = %v, mirror %v", step, bi, lo+i, v, m[lo+i])
				}
			}
		default: // broadcast fresh contents everywhere
			vals := make([]float32, floats)
			for i := range vals {
				vals[i] = float32(rng.Intn(1000))
			}
			if _, err := ctx.Broadcast(b, mem.F32Bytes(vals), queues); err != nil {
				t.Fatalf("step %d broadcast: %v", step, err)
			}
			copy(m, vals)
		}
	}

	// Settle every queue, then read all buffers back through one queue.
	for _, q := range queues {
		if _, err := q.Finish(); err != nil {
			t.Fatalf("finish: %v", err)
		}
	}
	var final bytes.Buffer
	for i, b := range bufs {
		data, _, err := queues[0].EnqueueRead(b, 0, size)
		if err != nil {
			t.Fatalf("final read: %v", err)
		}
		got := mem.BytesF32(data)
		for j, v := range got {
			if v != mirror[i][j] {
				t.Fatalf("final: buffer %d float %d = %v, mirror %v", i, j, v, mirror[i][j])
			}
		}
		final.Write(data)
	}
	return final.Bytes()
}

// TestChaosCoherenceOracle is the fault-tolerance acceptance test: a
// seeded workload with nodes crashing and rejoining mid-stream must
// produce byte-identical buffer contents to the same workload on a cluster
// that never fails, in every migration mode. The host-side mirror checks
// every intermediate read as well, so a replica leaking stale post-crash
// state fails loudly at the step that observed it.
func TestChaosCoherenceOracle(t *testing.T) {
	modes := []struct {
		name string
		mode core.MigrationMode
	}{
		{"delta", core.MigrateDelta},
		{"full", core.MigrateFull},
		{"relay", core.MigrateHostRelay},
	}
	for _, m := range modes {
		for _, seed := range []int64{1, 7, 99} {
			t.Run(fmt.Sprintf("%s/seed%d", m.name, seed), func(t *testing.T) {
				const steps = 80
				const killEvery = 13

				base := startChaosCluster(t, 3)
				base.rt.SetMigrationMode(m.mode)
				want := chaosWorkload(t, base, seed, steps, nil)
				base.close()

				cc := startChaosCluster(t, 3)
				cc.rt.SetMigrationMode(m.mode)
				var names []string
				for _, ns := range cc.cfg.Nodes {
					names = append(names, ns.Name)
				}
				inj := sim.NewFailureInjector(seed, names, killEvery)
				got := chaosWorkload(t, cc, seed, steps, inj)
				metrics := cc.rt.Metrics()
				cc.close()

				if !bytes.Equal(got, want) {
					t.Fatalf("chaos run diverged from no-failure run (%d vs %d bytes)", len(got), len(want))
				}
				if metrics.Recoveries == 0 {
					t.Fatal("chaos run recorded no recoveries — the injector never bit")
				}
			})
		}
	}
}
