package core_test

import (
	"fmt"
	"testing"

	"github.com/haocl-project/haocl/internal/cluster"
	"github.com/haocl-project/haocl/internal/core"
	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/mem"
	"github.com/haocl-project/haocl/internal/node"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/sim"
	"github.com/haocl-project/haocl/internal/transport"
	"github.com/haocl-project/haocl/internal/vtime"
)

// startRuntimeAtWire builds a one-GPU-node cluster whose node advertises
// the given wire version (0 = current), so interop tests can stand up a
// pre-batching peer.
func startRuntimeAtWire(t *testing.T, wire uint32) (*core.Runtime, func()) {
	t.Helper()
	cfg := cluster.Synthetic("batch-test", 0, 1, 0, nil)
	icd := device.NewICD()
	sim.RegisterDrivers(icd, testRegistry())
	net := transport.NewMemNetwork()
	var servers []*transport.Server
	for _, ns := range cfg.Nodes {
		devCfgs, err := ns.DeviceConfigs()
		if err != nil {
			t.Fatal(err)
		}
		n, err := node.New(node.Options{
			Name: ns.Name, Devices: devCfgs, ICD: icd, ExecWorkers: 1, WireVersion: wire,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := n.Serve()
		if err := net.Register(ns.Addr, srv); err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
	}
	rt, err := core.Connect(core.Options{Config: cfg, Dialer: net, ClientName: "batch-test"})
	if err != nil {
		t.Fatal(err)
	}
	return rt, func() {
		rt.Close()
		for _, s := range servers {
			s.Close()
		}
	}
}

// runIncrBurst pushes a pipelined burst of dependent incr launches through
// one queue and returns the functional result and the virtual makespan.
func runIncrBurst(t *testing.T, rt *core.Runtime) ([]float32, vtime.Time) {
	t.Helper()
	ctx, err := rt.CreateContext(rt.Devices(0))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgram(incrSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateQueue(rt.Devices(0)[0])
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueWrite(buf, 0, mem.F32Bytes([]float32{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("incr")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArg(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArg(1, int32(4)); err != nil {
		t.Fatal(err)
	}
	// The burst streams out without any synchronization: exactly the
	// command shape the coalescer packs into envelopes.
	const launches = 50
	for i := 0; i < launches; i++ {
		if _, err := q.EnqueueKernel(k, []int{4}, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	data, _, err := q.EnqueueRead(buf, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	return mem.BytesF32(data), rt.Metrics().Makespan
}

// TestBatchingNegotiatedByDefault checks a current node negotiates v3 and
// the batched command path computes correctly end to end.
func TestBatchingNegotiatedByDefault(t *testing.T) {
	rt, cleanup := startRuntimeAtWire(t, 0)
	defer cleanup()
	if v := rt.Nodes()[0].WireVersion(); v != protocol.Version {
		t.Fatalf("negotiated %d, want %d", v, protocol.Version)
	}
	got, makespan := runIncrBurst(t, rt)
	want := []float32{51, 52, 53, 54}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, got[i], want[i])
		}
	}
	if makespan <= 0 {
		t.Fatal("no virtual makespan")
	}
}

// legacyHello emulates the Hello handler of a pre-negotiation node
// binary: wire v2 with a strict equality check that rejects any other
// offer outright (it predates negotiating down), answering with a
// response that carries no WireVersion field semantics.
func legacyHello(op protocol.Op, body []byte) (protocol.Message, error) {
	if op != protocol.OpHello {
		return nil, &protocol.RemoteError{Code: protocol.CodeUnsupported, Message: "unsupported"}
	}
	var req protocol.HelloReq
	if err := protocol.DecodeMessage(&req, body); err != nil {
		return nil, err
	}
	if req.WireVersion != protocol.MinVersion {
		return nil, &protocol.RemoteError{
			Code: protocol.CodeUnsupported,
			Message: fmt.Sprintf("wire version mismatch: host %d, node %d",
				req.WireVersion, protocol.MinVersion),
		}
	}
	return &protocol.HelloResp{
		NodeName: "legacy-node",
		Devices: []protocol.DeviceInfo{{
			ID: 1, Type: protocol.DeviceGPU, Name: "Old GPU", Shared: true,
		}},
	}, nil
}

// TestLegacyStrictNodeFallback connects to an emulated pre-negotiation
// node that rejects the v3 offer instead of negotiating down: the host
// must retry pinned at v2 and come up unbatched.
func TestLegacyStrictNodeFallback(t *testing.T) {
	cfg := cluster.Synthetic("legacy-test", 0, 1, 0, nil)
	net := transport.NewMemNetwork()
	srv := transport.NewStaticServer(transport.HandlerFunc(legacyHello))
	defer srv.Close()
	if err := net.Register(cfg.Nodes[0].Addr, srv); err != nil {
		t.Fatal(err)
	}
	rt, err := core.Connect(core.Options{Config: cfg, Dialer: net, ClientName: "legacy-test"})
	if err != nil {
		t.Fatalf("handshake with strict v2 node failed: %v", err)
	}
	defer rt.Close()
	if v := rt.Nodes()[0].WireVersion(); v != protocol.MinVersion {
		t.Fatalf("negotiated %d, want pinned %d", v, protocol.MinVersion)
	}
	if len(rt.Devices(0)) != 1 {
		t.Fatalf("devices = %d", len(rt.Devices(0)))
	}
}

// TestV2PeerFallbackInterop runs the identical workload against a node
// pinned at wire v2: negotiation must fall back, the functional result
// must match, and the virtual makespan must be bit-identical to the
// batched run — batching changes syscalls, never simulated time.
func TestV2PeerFallbackInterop(t *testing.T) {
	rtV3, cleanupV3 := startRuntimeAtWire(t, 0)
	defer cleanupV3()
	rtV2, cleanupV2 := startRuntimeAtWire(t, protocol.MinVersion)
	defer cleanupV2()

	if v := rtV2.Nodes()[0].WireVersion(); v != protocol.MinVersion {
		t.Fatalf("negotiated %d against a v2 node, want %d", v, protocol.MinVersion)
	}

	gotV3, makespanV3 := runIncrBurst(t, rtV3)
	gotV2, makespanV2 := runIncrBurst(t, rtV2)
	for i := range gotV3 {
		if gotV2[i] != gotV3[i] {
			t.Fatalf("element %d: v2 %v != v3 %v", i, gotV2[i], gotV3[i])
		}
	}
	if makespanV2 != makespanV3 {
		t.Fatalf("virtual makespan diverged: v2 %v, v3 %v", makespanV2, makespanV3)
	}
}
