package core

import (
	"github.com/haocl-project/haocl/internal/mem"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/trace"
	"github.com/haocl-project/haocl/internal/transport"
)

// ownerSpan assigns one sub-range of a migration gap to the replica that
// supplies it.
type ownerSpan struct {
	node *NodeHandle
	rb   *remoteBuf
	r    mem.Range
}

// planOwners covers as much of gap as replicas hold valid, walking the
// runtime's deterministic node order so every host process plans the same
// transfers for the same state. It returns the per-owner spans in supply
// order plus the leftover sub-ranges no replica owns (either host-valid,
// or never written and thus deterministic zeros). Shared by the host-relay
// pull path and the p2p push planner. Caller holds b.mu.
func (b *Buffer) planOwners(gap mem.Range) (plan []ownerSpan, leftover []mem.Range) {
	var need mem.RangeSet
	need.Add(gap.Lo, gap.Hi)
	for _, owner := range b.ctx.rt.nodes {
		if need.Empty() {
			break
		}
		orb, ok := b.remote[owner]
		if !ok {
			continue
		}
		for _, span := range orb.valid.Overlap(gap.Lo, gap.Hi) {
			for _, sub := range need.Overlap(span.Lo, span.Hi) {
				plan = append(plan, ownerSpan{node: owner, rb: orb, r: sub})
				need.Remove(sub.Lo, sub.Hi)
			}
		}
	}
	return plan, need.Spans()
}

// migrateP2P moves the stale gaps of node's replica directly from their
// owning replicas: for each owner-covered span the host issues a PushRange
// to the owner and a matching AwaitPush to the consumer — two control
// frames on the host NIC, while the payload crosses the owner's node link.
// The host stays the control plane: it plans from the validity map, assigns
// both completion events, and wires them into the usual chains, so
// pipelining, wait-lists and failure cascades work exactly as on the relay
// path. Spans no replica owns still relay through the host shadow (they are
// host-valid or deterministic zeros — there is no peer to push them).
// Caller holds b.mu.
func (b *Buffer) migrateP2P(node *NodeHandle, rb *remoteBuf, gaps []mem.Range) error {
	svc, err := b.ctx.serviceQueue(node)
	if err != nil {
		return err
	}
	if err := svc.stickyErr(); err != nil {
		return err
	}
	svcDev, svcQID := svc.binding()
	for _, g := range gaps {
		plan, leftover := b.planOwners(g)
		for _, ps := range plan {
			if err := b.pushFromPeer(node, rb, svc, ps); err != nil {
				return err
			}
		}
		if len(leftover) == 0 {
			continue
		}
		if err := b.refreshHost(leftover); err != nil {
			return err
		}
		for _, r := range leftover {
			chain, err := rb.chainWaits()
			if err != nil {
				return err
			}
			modelBytes := b.scaled(r.Len())
			wireStart, arrival := b.ctx.sess.chargeNIC(b.hostReadyAt, controlMsgBytes+modelBytes)
			resp := new(protocol.EventResp)
			id, pend := b.ctx.sess.issue(node, &protocol.WriteBufferReq{
				QueueID:    svcQID,
				BufferID:   rb.id,
				Offset:     r.Lo,
				Data:       b.host[r.Lo:r.Hi],
				SimArrival: int64(arrival),
				ModelBytes: modelBytes,
				WaitEvents: chain,
			}, resp)
			pushEv := &Event{dev: svcDev, remoteID: id, queue: svc, pending: pend, resp: resp,
				trace: b.ctx.sess.traceCmd(trace.KindMigrate, svcDev, 0, modelBytes, wireStart, arrival)}
			svc.track(pushEv)
			rb.valid.Add(r.Lo, r.Hi)
			rb.lastEvent = id
			rb.lastEv = pushEv
		}
	}
	return nil
}

// pushFromPeer issues one PushRange/AwaitPush pair moving ps.r from its
// owner to node. Caller holds b.mu.
func (b *Buffer) pushFromPeer(node *NodeHandle, rb *remoteBuf, svc *Queue, ps ownerSpan) error {
	rt := b.ctx.rt
	sess := b.ctx.sess
	ownerSvc, err := b.ctx.serviceQueue(ps.node)
	if err != nil {
		return err
	}
	if err := ownerSvc.stickyErr(); err != nil {
		return err
	}
	ownerDev, ownerQID := ownerSvc.binding()
	svcDev, svcQID := svc.binding()
	ownerChain, err := ps.rb.chainWaits()
	if err != nil {
		return err
	}
	consumerChain, err := rb.chainWaits()
	if err != nil {
		return err
	}

	token := rt.nextPushToken()
	modelBytes := b.scaled(ps.r.Len())

	// Only the control frames cross the host NIC. The payload is charged
	// to the owner's egress link node-side; the host keeps byte accounting.
	pushCtrlStart, pushCtrl := sess.chargeNIC(0, controlMsgBytes)
	pushResp := new(protocol.EventResp)
	pushID, pushPend := sess.issue(ps.node, &protocol.PushRangeReq{
		QueueID:      ownerQID,
		BufferID:     ps.rb.id,
		PeerName:     node.name,
		PeerBufferID: rb.id,
		Token:        token,
		Offset:       ps.r.Lo,
		Size:         ps.r.Len(),
		SimArrival:   int64(pushCtrl),
		ModelBytes:   modelBytes,
		WaitEvents:   ownerChain,
	}, pushResp)
	pushEv := &Event{dev: ownerDev, remoteID: pushID, queue: ownerSvc, pending: pushPend, resp: pushResp,
		trace: sess.traceCmd(trace.KindPushRange, ownerDev, 0, modelBytes, pushCtrlStart, pushCtrl)}
	ownerSvc.track(pushEv)
	// The push becomes the owner replica's chain head: a later write there
	// must wait for the device read (anti-dependency), and the in-order
	// service queue sequences later pushes for free. Validity is untouched
	// — a push does not invalidate its source.
	ps.rb.lastEvent = pushID
	ps.rb.lastEv = pushEv

	awaitCtrlStart, awaitCtrl := sess.chargeNIC(0, controlMsgBytes)
	awaitResp := new(protocol.EventResp)
	awaitID, awaitPend := sess.issue(node, &protocol.AwaitPushReq{
		QueueID:    svcQID,
		BufferID:   rb.id,
		Token:      token,
		Offset:     ps.r.Lo,
		Size:       ps.r.Len(),
		SimArrival: int64(awaitCtrl),
		ModelBytes: modelBytes,
		WaitEvents: consumerChain,
	}, awaitResp)
	awaitEv := &Event{dev: svcDev, remoteID: awaitID, queue: svc, pending: awaitPend, resp: awaitResp,
		trace: sess.traceCmd(trace.KindAwaitPush, svcDev, 0, modelBytes, awaitCtrlStart, awaitCtrl)}
	svc.track(awaitEv)
	sess.chargePeer(modelBytes)
	rt.watchPush(node.client.Load(), token, pushEv)

	rb.valid.Add(ps.r.Lo, ps.r.Hi)
	rb.lastEvent = awaitID
	rb.lastEv = awaitEv
	return nil
}

// watchPush cancels the consumer-side rendezvous when the source push
// fails, so the awaiter — and everything chained behind it — fails instead
// of parking forever: the failure cascade spans the peer link exactly as it
// spans a queue. The consumer's connection is pinned at call time: a
// concurrent rejoin may swap the handle's client, and the cancel belongs to
// the incarnation the await was issued on.
func (rt *Runtime) watchPush(consumer *transport.Client, token uint64, pushEv *Event) {
	go func() {
		// waitErr, not Wait: recovery's pipeline drain depends on this
		// goroutine to unpark stranded awaiters, so it must never block on
		// recovery itself.
		err := pushEv.waitErr()
		if err == nil {
			return
		}
		pushEv.queue.ctx.sess.bump(func(m *Metrics) { m.Commands++ })
		// Best effort: the awaiter reports the original failure; a dead
		// consumer connection fails the awaiter through its own teardown.
		pend := consumer.Go(&protocol.CancelPushReq{Token: token, Reason: err.Error()}, nil)
		pend.Wait()
	}()
}
