package core

import (
	"testing"

	"github.com/haocl-project/haocl/internal/mem"
)

// TestPlanOwners is the white-box test for the owner planner shared by the
// host-relay pull path and the p2p push planner: the cover must walk nodes
// in the runtime's deterministic order, split a gap across replica
// boundaries exactly, never assign the same byte twice, and return the
// unowned remainder as leftover.
func TestPlanOwners(t *testing.T) {
	nA := &NodeHandle{name: "alpha"}
	nB := &NodeHandle{name: "beta"}
	nC := &NodeHandle{name: "gamma"} // holds no replica at all
	rt := &Runtime{nodes: []*NodeHandle{nA, nB, nC}}

	rbA := &remoteBuf{id: 1}
	rbA.valid.Add(0, 16)
	rbA.valid.Add(48, 64)
	rbB := &remoteBuf{id: 2}
	rbB.valid.Add(8, 40) // overlaps A on [8,16): A must win by node order

	b := &Buffer{
		ctx:  &Context{rt: rt},
		size: 64,
		remote: map[*NodeHandle]*remoteBuf{
			nA: rbA,
			nB: rbB,
		},
	}

	plan, leftover := b.planOwners(mem.Range{Lo: 4, Hi: 60})

	type span struct {
		node string
		lo   int64
		hi   int64
	}
	var got []span
	for _, ps := range plan {
		got = append(got, span{ps.node.name, ps.r.Lo, ps.r.Hi})
	}
	want := []span{
		{"alpha", 4, 16},  // A's head, including the contested [8,16)
		{"alpha", 48, 60}, // A's tail clipped to the gap
		{"beta", 16, 40},  // B supplies only what A left
	}
	if len(got) != len(want) {
		t.Fatalf("plan = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("plan[%d] = %+v, want %+v (full plan %+v)", i, got[i], want[i], got)
		}
	}

	// [40,48) is owned by nobody: it must come back as leftover, exactly.
	if len(leftover) != 1 || leftover[0].Lo != 40 || leftover[0].Hi != 48 {
		t.Fatalf("leftover = %+v, want [{40 48}]", leftover)
	}

	// No byte may be planned twice and plan+leftover must tile the gap.
	var cover mem.RangeSet
	var total int64
	for _, ps := range plan {
		for _, r := range cover.Overlap(ps.r.Lo, ps.r.Hi) {
			t.Fatalf("byte range [%d,%d) planned twice", r.Lo, r.Hi)
		}
		cover.Add(ps.r.Lo, ps.r.Hi)
		total += ps.r.Len()
	}
	for _, r := range leftover {
		cover.Add(r.Lo, r.Hi)
		total += r.Len()
	}
	if spans := cover.Spans(); len(spans) != 1 || spans[0].Lo != 4 || spans[0].Hi != 60 || total != 56 {
		t.Fatalf("plan+leftover does not tile the gap: spans %+v, total %d", spans, total)
	}
}

// TestPlanOwnersFullyOwned: a gap one replica covers entirely produces a
// single-span plan and no leftover.
func TestPlanOwnersFullyOwned(t *testing.T) {
	n := &NodeHandle{name: "alpha"}
	rb := &remoteBuf{id: 1}
	rb.valid.Add(0, 64)
	b := &Buffer{
		ctx:    &Context{rt: &Runtime{nodes: []*NodeHandle{n}}},
		size:   64,
		remote: map[*NodeHandle]*remoteBuf{n: rb},
	}
	plan, leftover := b.planOwners(mem.Range{Lo: 10, Hi: 50})
	if len(plan) != 1 || plan[0].node != n || plan[0].r.Lo != 10 || plan[0].r.Hi != 50 {
		t.Fatalf("plan = %+v, want one span [10,50) on alpha", plan)
	}
	if len(leftover) != 0 {
		t.Fatalf("leftover = %+v, want none", leftover)
	}
}

// TestPlanOwnersNoOwners: with no replicas holding any of the gap, the
// whole gap is leftover and the plan is empty.
func TestPlanOwnersNoOwners(t *testing.T) {
	n := &NodeHandle{name: "alpha"}
	b := &Buffer{
		ctx:    &Context{rt: &Runtime{nodes: []*NodeHandle{n}}},
		size:   64,
		remote: map[*NodeHandle]*remoteBuf{},
	}
	plan, leftover := b.planOwners(mem.Range{Lo: 0, Hi: 64})
	if len(plan) != 0 {
		t.Fatalf("plan = %+v, want empty", plan)
	}
	if len(leftover) != 1 || leftover[0].Lo != 0 || leftover[0].Hi != 64 {
		t.Fatalf("leftover = %+v, want the whole gap", leftover)
	}
}
