package core_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/haocl-project/haocl/internal/core"
)

// patternBytes builds a deterministic non-zero test pattern.
func patternBytes(n int, tag byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = tag ^ byte(i*7+1)
	}
	return out
}

// TestPartialWriteOnStaleReplica is the regression test for the
// stale-data bug the range layer fixes: a partial EnqueueWrite onto a
// node whose replica is stale must not validate the unwritten remainder.
// Pre-range, the whole-replica flag did exactly that, so the read-back on
// node B returned zeros for the half written on node A.
func TestPartialWriteOnStaleReplica(t *testing.T) {
	rt, cleanup := startRuntime(t, 2)
	defer cleanup()
	ctx, err := rt.CreateContext(rt.Devices(0))
	if err != nil {
		t.Fatal(err)
	}
	qA, err := ctx.CreateQueue(rt.Devices(0)[0])
	if err != nil {
		t.Fatal(err)
	}
	qB, err := ctx.CreateQueue(rt.Devices(0)[1])
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}

	first := patternBytes(8, 0xA0)
	second := patternBytes(8, 0xB0)
	// First half lands on node A (host and A hold [0,8)).
	if _, err := qA.EnqueueWrite(buf, 0, first); err != nil {
		t.Fatal(err)
	}
	// Second half lands on node B: B's fresh replica receives only [8,16),
	// so its [0,8) bytes are stale zeros until a migration fills them.
	if _, err := qB.EnqueueWrite(buf, 8, second); err != nil {
		t.Fatal(err)
	}

	got, _, err := qB.EnqueueRead(buf, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte{}, first...), second...)
	if !bytes.Equal(got, want) {
		t.Fatalf("read-back on half-written node B = %x, want %x (stale bytes exposed)", got, want)
	}
}

// TestBroadcastInvalidatesNonHopReplicas: a node that holds a replica but
// is not in the broadcast's hop set must not keep serving its
// pre-broadcast bytes. Pre-range, Broadcast never touched non-hop
// replicas, so the re-read on node C returned the old payload.
func TestBroadcastInvalidatesNonHopReplicas(t *testing.T) {
	rt, cleanup := startRuntime(t, 3)
	defer cleanup()
	devs := rt.Devices(0)
	ctx, err := rt.CreateContext(devs)
	if err != nil {
		t.Fatal(err)
	}
	queues := make([]*core.Queue, 3)
	for i, d := range devs {
		q, err := ctx.CreateQueue(d)
		if err != nil {
			t.Fatal(err)
		}
		queues[i] = q
	}
	buf, err := ctx.CreateBuffer(64)
	if err != nil {
		t.Fatal(err)
	}

	old := patternBytes(64, 0x11)
	if _, err := ctx.Broadcast(buf, old, queues); err != nil {
		t.Fatal(err)
	}
	// Second broadcast skips node C.
	fresh := patternBytes(64, 0x22)
	if _, err := ctx.Broadcast(buf, fresh, queues[:2]); err != nil {
		t.Fatal(err)
	}

	got, _, err := queues[2].EnqueueRead(buf, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatalf("non-hop node served %x, want the broadcast payload %x", got[:8], fresh[:8])
	}
}

// TestBroadcastFailedHopLeavesStateUntouched: when a hop beyond the first
// cannot be issued (here: its queue carries a sticky error), Broadcast
// must fail before mutating any buffer state. Pre-range the host shadow
// was updated and hop 0 issued before the loop reached the failing hop,
// leaving the cluster half-broadcast.
func TestBroadcastFailedHopLeavesStateUntouched(t *testing.T) {
	rt, cleanup := startRuntime(t, 2)
	defer cleanup()
	devs := rt.Devices(0)
	ctx, err := rt.CreateContext(devs)
	if err != nil {
		t.Fatal(err)
	}
	qA, err := ctx.CreateQueue(devs[0])
	if err != nil {
		t.Fatal(err)
	}
	qB, err := ctx.CreateQueue(devs[1])
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.CreateBuffer(64)
	if err != nil {
		t.Fatal(err)
	}
	old := patternBytes(64, 0x33)
	if _, err := ctx.Broadcast(buf, old, []*core.Queue{qA, qB}); err != nil {
		t.Fatal(err)
	}

	// Poison qB's pipeline: an indivisible work-group size fails remotely,
	// and Finish latches the sticky queue error.
	prog, err := ctx.CreateProgram(incrSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	scratch, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("incr")
	if err != nil {
		t.Fatal(err)
	}
	k.SetArg(0, scratch)
	k.SetArg(1, int32(4))
	if _, err := qB.EnqueueKernel(k, []int{4}, []int{3}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := qB.Finish(); err == nil {
		t.Fatal("indivisible work-group accepted")
	}

	// The broadcast must refuse at hop 1 (i > 0) without touching state.
	fresh := patternBytes(64, 0x44)
	if _, err := ctx.Broadcast(buf, fresh, []*core.Queue{qA, qB}); err == nil {
		t.Fatal("broadcast over a sticky-failed queue accepted")
	}
	got, _, err := qA.EnqueueRead(buf, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, old) {
		t.Fatalf("failed broadcast leaked state: node A reads %x, want pre-broadcast %x", got[:8], old[:8])
	}
}

// TestCoherenceOracle mirrors a random sequence of partial writes, partial
// reads, device copies and subset broadcasts across a 3-node cluster
// against plain in-memory byte slices: every read must be byte-identical
// to the mirror, whatever interleaving of migrations it triggered. The
// migration mode is flipped mid-run too, among all three data planes —
// full, host-relay delta and p2p delta must be functionally
// indistinguishable.
func TestCoherenceOracle(t *testing.T) {
	for _, seed := range []int64{1, 7, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCoherenceOracle(t, seed)
		})
	}
}

func runCoherenceOracle(t *testing.T, seed int64) {
	const (
		bufSize = 64
		numBufs = 2
		steps   = 80
	)
	rt, cleanup := startRuntime(t, 3)
	defer cleanup()
	devs := rt.Devices(0)
	ctx, err := rt.CreateContext(devs)
	if err != nil {
		t.Fatal(err)
	}
	queues := make([]*core.Queue, len(devs))
	for i, d := range devs {
		q, err := ctx.CreateQueue(d)
		if err != nil {
			t.Fatal(err)
		}
		queues[i] = q
	}
	bufs := make([]*core.Buffer, numBufs)
	mirror := make([][]byte, numBufs)
	for i := range bufs {
		b, err := ctx.CreateBuffer(bufSize)
		if err != nil {
			t.Fatal(err)
		}
		bufs[i] = b
		mirror[i] = make([]byte, bufSize)
	}

	rng := rand.New(rand.NewSource(seed))
	randRange := func() (int64, int64) {
		lo := rng.Int63n(bufSize)
		n := 1 + rng.Int63n(bufSize-lo)
		return lo, n
	}
	for step := 0; step < steps; step++ {
		q := queues[rng.Intn(len(queues))]
		bi := rng.Intn(numBufs)
		switch op := rng.Intn(100); {
		case op < 40: // partial write
			off, n := randRange()
			data := make([]byte, n)
			rng.Read(data)
			if _, err := q.EnqueueWrite(bufs[bi], off, data); err != nil {
				t.Fatalf("seed %d step %d: write: %v", seed, step, err)
			}
			copy(mirror[bi][off:], data)
		case op < 70: // partial read, checked against the mirror
			off, n := randRange()
			got, _, err := q.EnqueueRead(bufs[bi], off, n)
			if err != nil {
				t.Fatalf("seed %d step %d: read: %v", seed, step, err)
			}
			if !bytes.Equal(got, mirror[bi][off:off+n]) {
				t.Fatalf("seed %d step %d: read [%d,%d) on %s = %x, want %x",
					seed, step, off, off+n, q.Device().Key(), got, mirror[bi][off:off+n])
			}
		case op < 85: // device-side copy between the two buffers
			src, dst := bi, (bi+1)%numBufs
			srcOff, n := randRange()
			dstOff := rng.Int63n(bufSize - n + 1)
			if _, err := q.EnqueueCopy(bufs[src], bufs[dst], srcOff, dstOff, n); err != nil {
				t.Fatalf("seed %d step %d: copy: %v", seed, step, err)
			}
			copy(mirror[dst][dstOff:dstOff+n], mirror[src][srcOff:srcOff+n])
		case op < 95: // broadcast to a random non-empty queue subset
			var subset []*core.Queue
			for _, cand := range queues {
				if rng.Intn(2) == 0 {
					subset = append(subset, cand)
				}
			}
			if len(subset) == 0 {
				subset = append(subset, q)
			}
			payload := make([]byte, bufSize)
			rng.Read(payload)
			if _, err := ctx.Broadcast(bufs[bi], payload, subset); err != nil {
				t.Fatalf("seed %d step %d: broadcast: %v", seed, step, err)
			}
			copy(mirror[bi], payload)
		default: // flip migration mode; functionally invisible
			switch rng.Intn(3) {
			case 0:
				rt.SetMigrationMode(core.MigrateFull)
			case 1:
				rt.SetMigrationMode(core.MigrateHostRelay)
			default:
				rt.SetMigrationMode(core.MigrateDelta)
			}
		}
	}

	// Every node must agree with the mirror on every buffer, in full.
	for bi, b := range bufs {
		for qi, q := range queues {
			got, _, err := q.EnqueueRead(b, 0, bufSize)
			if err != nil {
				t.Fatalf("seed %d: final read buf %d on queue %d: %v", seed, bi, qi, err)
			}
			if !bytes.Equal(got, mirror[bi]) {
				t.Fatalf("seed %d: final read buf %d on %s = %x, want %x",
					seed, bi, q.Device().Key(), got, mirror[bi])
			}
		}
	}
}

// TestFailedWriteLeavesShadowUntouched: an EnqueueWrite that fails after
// argument validation (here: a wait list referencing a released event)
// must not leave the host shadow claiming data the cluster never
// received — the same no-half-mutation rule Broadcast follows.
func TestFailedWriteLeavesShadowUntouched(t *testing.T) {
	rt, cleanup := startRuntime(t, 2)
	defer cleanup()
	ctx, err := rt.CreateContext(rt.Devices(0))
	if err != nil {
		t.Fatal(err)
	}
	qA, err := ctx.CreateQueue(rt.Devices(0)[0])
	if err != nil {
		t.Fatal(err)
	}
	qB, err := ctx.CreateQueue(rt.Devices(0)[1])
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	old := patternBytes(16, 0x55)
	if _, err := qA.EnqueueWrite(buf, 0, old); err != nil {
		t.Fatal(err)
	}
	ev, err := qA.EnqueueWrite(scratch, 0, make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ev.Release(rt); err != nil {
		t.Fatal(err)
	}
	if _, err := qA.EnqueueWrite(buf, 0, patternBytes(16, 0x66), ev); err == nil {
		t.Fatal("write waiting on a released event accepted")
	}
	// Reading through node B migrates from the host shadow: it must still
	// hold the old contents, not the failed write's.
	got, _, err := qB.EnqueueRead(buf, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, old) {
		t.Fatalf("failed write leaked into the shadow: %x, want %x", got, old)
	}
}

// TestHostRangeOverflow: host-side bounds checks must reject offsets that
// would wrap offset+size past MaxInt64 instead of panicking on the slice.
func TestHostRangeOverflow(t *testing.T) {
	rt, cleanup := startRuntime(t, 1)
	defer cleanup()
	ctx, err := rt.CreateContext(rt.Devices(0))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateQueue(rt.Devices(0)[0])
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	buf2, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	const maxI64 = int64(^uint64(0) >> 1)
	if _, err := q.EnqueueWrite(buf, maxI64-1, []byte{1, 2, 3, 4}); err == nil {
		t.Fatal("wrapping write offset accepted")
	}
	if _, _, err := q.EnqueueRead(buf, maxI64-1, 4); err == nil {
		t.Fatal("wrapping read offset accepted")
	}
	if _, err := q.EnqueueCopy(buf, buf2, maxI64-1, 0, 4); err == nil {
		t.Fatal("wrapping copy source offset accepted")
	}
	if _, err := q.EnqueueCopy(buf, buf2, 0, maxI64-1, 4); err == nil {
		t.Fatal("wrapping copy destination offset accepted")
	}
}
