package core_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/haocl-project/haocl/internal/core"
	"github.com/haocl-project/haocl/internal/mem"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/trace"
	"github.com/haocl-project/haocl/internal/vtime"
)

var updateTraceGolden = flag.Bool("update-trace-golden", false,
	"rewrite testdata/trace_golden.json from the current output")

// traceWorkload drives a cross-node workload that exercises every traced
// command shape reachable from the public API: a write and kernel on node
// A, a read through node B (forcing a migration of the dirty replica), and
// an intra-context copy.
func traceWorkload(t testing.TB, rt *core.Runtime) {
	t.Helper()
	devs := rt.Devices(protocol.DeviceGPU)
	ctx, err := rt.CreateContext(devs)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgram(incrSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	qA, err := ctx.CreateQueue(devs[0])
	if err != nil {
		t.Fatal(err)
	}
	qB, err := ctx.CreateQueue(devs[1])
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qA.EnqueueWrite(buf, 0, mem.F32Bytes([]float32{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("incr")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArg(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArg(1, int32(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := qA.EnqueueKernel(k, []int{4}, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := qA.EnqueueCopy(buf, dst, 0, 0, 16, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := qB.EnqueueRead(buf, 0, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := qA.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := qB.Finish(); err != nil {
		t.Fatal(err)
	}
}

// tracedRun executes the workload on a fresh cluster under the given
// migration mode and returns the Chrome export.
func tracedRun(t testing.TB, mode core.MigrationMode) []byte {
	t.Helper()
	rt, cleanup := startRuntime(t, 2)
	defer cleanup()
	rt.SetMigrationMode(mode)
	tr := trace.New()
	rt.SetTracer(tr)
	traceWorkload(t, rt)
	var buf bytes.Buffer
	if err := rt.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceDeterministicAcrossReruns is the determinism oracle: the same
// seeded workload must export a byte-identical trace on every run, under
// all three migration modes (each exercises a different command mix —
// P2P push/await, full-buffer pushes, host-relay pulls).
func TestTraceDeterministicAcrossReruns(t *testing.T) {
	modes := map[string]core.MigrationMode{
		"delta":      core.MigrateDelta,
		"full":       core.MigrateFull,
		"host-relay": core.MigrateHostRelay,
	}
	for name, mode := range modes {
		t.Run(name, func(t *testing.T) {
			first := tracedRun(t, mode)
			for i := 0; i < 2; i++ {
				if again := tracedRun(t, mode); !bytes.Equal(first, again) {
					t.Fatalf("rerun %d exported a different trace (%d vs %d bytes)",
						i+1, len(first), len(again))
				}
			}
			if len(first) < 100 {
				t.Fatalf("suspiciously small trace: %q", first)
			}
		})
	}
}

// TestTraceSpanTreeWellFormed checks the structural invariants of every
// recorded span: non-negative intervals, phases parented by a root with
// the same (run, node, event) that covers them, and event IDs only on
// command spans.
func TestTraceSpanTreeWellFormed(t *testing.T) {
	rt, cleanup := startRuntime(t, 2)
	defer cleanup()
	tr := trace.New()
	rt.SetTracer(tr)
	traceWorkload(t, rt)

	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	type key struct {
		run     int
		node    string
		eventID uint64
	}
	roots := map[key]trace.Span{}
	var kinds [16]int
	for _, s := range spans {
		kinds[s.Kind]++
		if s.End < s.Start {
			t.Fatalf("negative span %+v", s)
		}
		if s.Kind.IsRoot() {
			if s.EventID == 0 {
				t.Fatalf("root span without event ID: %+v", s)
			}
			roots[key{s.Run, s.Node, s.EventID}] = s
		}
	}
	for _, s := range spans {
		if !s.Kind.IsPhase() {
			continue
		}
		root, ok := roots[key{s.Run, s.Node, s.EventID}]
		if !ok {
			t.Fatalf("orphan phase span %+v", s)
		}
		if s.Start < root.Start || s.End > root.End {
			t.Fatalf("phase %+v escapes root %+v", s, root)
		}
	}
	for _, want := range []trace.Kind{trace.KindWrite, trace.KindRead,
		trace.KindCopy, trace.KindKernel, trace.KindWire,
		trace.KindRegister, trace.KindQueueWait, trace.KindExec,
		trace.KindWireIn} {
		if kinds[want] == 0 {
			t.Errorf("workload recorded no %v spans", want)
		}
	}
	// The cross-node read migrates the dirty replica: some migration-path
	// root (p2p push/await or pull) must appear.
	if kinds[trace.KindPushRange]+kinds[trace.KindAwaitPush]+
		kinds[trace.KindPull]+kinds[trace.KindMigrate] == 0 {
		t.Error("cross-node read recorded no migration spans")
	}
}

// TestTraceSessionOverride: a session-level tracer captures that session's
// commands even when the runtime has no tracer attached.
func TestTraceSessionOverride(t *testing.T) {
	rt, cleanup := startRuntime(t, 1)
	defer cleanup()
	sess := rt.OpenSession("tenant-x")
	tr := trace.New()
	sess.SetTracer(tr)

	ctx, err := sess.CreateContext(rt.Devices(protocol.DeviceGPU))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateQueue(rt.Devices(protocol.DeviceGPU)[0])
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueWrite(buf, 0, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("session tracer recorded nothing")
	}
	for _, s := range spans {
		if s.Tenant != "tenant-x" {
			t.Fatalf("span from wrong tenant: %+v", s)
		}
	}
}

// TestTraceGolden pins the exact Perfetto JSON of a tiny single-node
// write → kernel → read sequence. Regenerate with:
//
//	go test ./internal/core -run TestTraceGolden -update-trace-golden
func TestTraceGolden(t *testing.T) {
	rt, cleanup := startRuntime(t, 1)
	defer cleanup()
	tr := trace.New()
	rt.SetTracer(tr)

	dev := rt.Devices(protocol.DeviceGPU)
	ctx, err := rt.CreateContext(dev)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgram(incrSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateQueue(dev[0])
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueWrite(buf, 0, mem.F32Bytes([]float32{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("incr")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArg(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArg(1, int32(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueKernel(k, []int{4}, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.EnqueueRead(buf, 0, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Finish(); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	if err := rt.WriteTrace(&got); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateTraceGolden {
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-trace-golden)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("trace diverged from golden file (regenerate with -update-trace-golden if intended)\ngot:\n%s\nwant:\n%s",
			got.String(), want)
	}
}

// TestTraceAdmissionAndMetrics: admission spans recorded through a
// FairQueue-style direct Run.Add land in the same export, and the metrics
// surface includes their histogram.
func TestTraceAdmissionAndMetrics(t *testing.T) {
	rt, cleanup := startRuntime(t, 1)
	defer cleanup()
	tr := trace.New()
	run := rt.SetTracer(tr)
	run.Add(trace.Span{Kind: trace.KindAdmission, Tenant: "t0",
		Start: vtime.Time(10), End: vtime.Time(1010)})

	var m bytes.Buffer
	if err := rt.WriteMetrics(&m); err != nil {
		t.Fatal(err)
	}
	out := m.String()
	for _, want := range []string{
		"haocl_commands_total",
		"haocl_device_expected_free_virtual_seconds",
		`haocl_spans_total{kind="admission",tenant="t0"} 1`,
	} {
		if !bytes.Contains(m.Bytes(), []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
	var c bytes.Buffer
	if err := rt.WriteTrace(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(c.Bytes(), []byte(`"admission"`)) {
		t.Fatalf("admission span missing from chrome export:\n%s", c.String())
	}
}

// BenchmarkEnqueueWrite measures the hot enqueue path; run with -benchmem.
// The traced=off case must show the same allocs/op as the pre-tracing
// seed — the nil-run fast path adds none.
func BenchmarkEnqueueWrite(b *testing.B) {
	for _, traced := range []bool{false, true} {
		b.Run(fmt.Sprintf("traced=%v", traced), func(b *testing.B) {
			rt, cleanup := startRuntime(b, 1)
			defer cleanup()
			if traced {
				rt.SetTracer(trace.New())
			}
			ctx, err := rt.CreateContext(rt.Devices(protocol.DeviceGPU))
			if err != nil {
				b.Fatal(err)
			}
			q, err := ctx.CreateQueue(rt.Devices(protocol.DeviceGPU)[0])
			if err != nil {
				b.Fatal(err)
			}
			buf, err := ctx.CreateBuffer(16)
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.EnqueueWrite(buf, 0, payload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if _, err := q.Finish(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
