package core_test

import (
	"testing"
	"time"

	"github.com/haocl-project/haocl/internal/core"
	"github.com/haocl-project/haocl/internal/mem"
	"github.com/haocl-project/haocl/internal/node"
)

// These tests pin down the crash-recovery lifecycle one transition at a
// time (DESIGN.md §7); the chaos oracle in chaos_test.go then exercises
// all of them interleaved under a randomized workload.

// recoveryFixture builds a two-node cluster with a context spanning both
// devices, one queue per device, and a 64-float buffer.
type recoveryFixture struct {
	cc   *chaosCluster
	ctx  *core.Context
	qs   []*core.Queue
	buf  *core.Buffer
	incr *core.Kernel
}

func newRecoveryFixture(t *testing.T, nodes int) *recoveryFixture {
	t.Helper()
	cc := startChaosCluster(t, nodes)
	t.Cleanup(cc.close)
	devs := cc.rt.Devices(0)
	if len(devs) != nodes {
		t.Fatalf("devices = %d, want %d", len(devs), nodes)
	}
	ctx, err := cc.rt.CreateContext(devs)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgram(incrSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("incr")
	if err != nil {
		t.Fatal(err)
	}
	f := &recoveryFixture{cc: cc, ctx: ctx, incr: k}
	for _, d := range devs {
		q, err := ctx.CreateQueue(d)
		if err != nil {
			t.Fatal(err)
		}
		f.qs = append(f.qs, q)
	}
	if f.buf, err = ctx.CreateBuffer(64 * 4); err != nil {
		t.Fatal(err)
	}
	return f
}

// queueOn returns a queue bound to the named node (before any re-binding).
func (f *recoveryFixture) queueOn(t *testing.T, name string) *core.Queue {
	t.Helper()
	for _, q := range f.qs {
		if q.Device().Key().Node == name {
			return q
		}
	}
	t.Fatalf("no queue on %q", name)
	return nil
}

func (f *recoveryFixture) mustRead(t *testing.T, q *core.Queue, want []float32) {
	t.Helper()
	data, _, err := q.EnqueueRead(f.buf, 0, int64(len(want)*4))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	got := mem.BytesF32(data)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("float %d = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestCrashReplacement: work issued on a node that then dies must be
// re-placed on the survivor — the dead node's queue keeps working (it
// re-binds), and the buffer contents come back from the replayed log, not
// from the lost replica.
func TestCrashReplacement(t *testing.T) {
	f := newRecoveryFixture(t, 2)
	victim := f.cc.cfg.Nodes[0].Name
	qv := f.queueOn(t, victim)
	qs := f.queueOn(t, f.cc.cfg.Nodes[1].Name)

	if _, err := qv.EnqueueWrite(f.buf, 0, mem.F32Bytes([]float32{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	if err := f.incr.SetArg(0, f.buf); err != nil {
		t.Fatal(err)
	}
	if err := f.incr.SetArg(1, int32(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := qv.EnqueueKernel(f.incr, []int{4}, nil, nil, nil); err != nil {
		t.Fatal(err)
	}

	f.cc.kill(victim)

	// The survivor's queue sees the post-kernel contents via replay.
	f.mustRead(t, qs, []float32{2, 3, 4, 5})
	// The victim's queue is re-bound to the survivor, not stuck failing.
	f.mustRead(t, qv, []float32{2, 3, 4, 5})

	m := f.cc.rt.Metrics()
	if m.Recoveries == 0 {
		t.Fatal("node death triggered no recovery")
	}
	if m.ReplayedCommands == 0 {
		t.Fatal("recovery replayed nothing, yet the contents survived?")
	}
}

// TestGenuineReleaseErrorSurvivesRecovery: a sticky release failure from a
// live node must survive a recovery pass triggered by a different node's
// crash. Recovery absolves only crash-induced release failures (acks that
// died with a dead connection); a genuine RemoteError stays latched and
// surfaces at the tenant's Flush.
func TestGenuineReleaseErrorSurvivesRecovery(t *testing.T) {
	f := newRecoveryFixture(t, 2)
	victim := f.cc.cfg.Nodes[0].Name
	qv := f.queueOn(t, victim)
	qs := f.queueOn(t, f.cc.cfg.Nodes[1].Name)

	// Latch a genuine release failure on the survivor: the second release
	// of the same queue names an object the node already freed, and the
	// node stays alive, so the failed ack classifies as a RemoteError, not
	// as node loss.
	extra, err := f.ctx.CreateQueue(qs.Device())
	if err != nil {
		t.Fatal(err)
	}
	if err := extra.Release(); err != nil {
		t.Fatal(err)
	}
	if err := extra.Release(); err != nil {
		t.Fatal(err)
	}

	// Put the buffer's only valid replica on the victim, then kill it: the
	// survivor's read must migrate from the dead node, and that failure
	// drives a full recovery pass (which drains the pending release acks
	// with the victim dead).
	if _, err := qv.EnqueueWrite(f.buf, 0, mem.F32Bytes([]float32{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	f.cc.kill(victim)
	f.mustRead(t, qs, []float32{1, 2, 3, 4})
	if m := f.cc.rt.Metrics(); m.Recoveries == 0 {
		t.Fatal("node death triggered no recovery")
	}

	if err := f.cc.rt.Flush(); err == nil {
		t.Fatal("recovery absolved a genuine sticky release error from a live node")
	}
}

// TestRejoinLazyReplication: a restarted node (fresh process, new boot ID)
// rejoins with empty devices; a queue on it must see current buffer
// contents through lazy re-replication — the validity map has no entry for
// the new incarnation, so the first use migrates the data in.
func TestRejoinLazyReplication(t *testing.T) {
	f := newRecoveryFixture(t, 2)
	victim := f.cc.cfg.Nodes[0].Name
	qv := f.queueOn(t, victim)
	qs := f.queueOn(t, f.cc.cfg.Nodes[1].Name)

	if _, err := qv.EnqueueWrite(f.buf, 0, mem.F32Bytes([]float32{7, 8, 9, 10})); err != nil {
		t.Fatal(err)
	}
	f.cc.kill(victim)
	f.mustRead(t, qs, []float32{7, 8, 9, 10}) // recovery re-places on the survivor

	f.cc.restart(victim)
	// New work on the rejoined node: a fresh queue on its device.
	var dev *core.DeviceRef
	for _, d := range f.cc.rt.Devices(0) {
		if d.Key().Node == victim {
			dev = d
		}
	}
	if dev == nil {
		t.Fatalf("rejoined node %q has no device", victim)
	}
	q, err := f.ctx.CreateQueue(dev)
	if err != nil {
		t.Fatalf("queue on rejoined node: %v", err)
	}
	f.mustRead(t, q, []float32{7, 8, 9, 10})
}

// TestDoubleRejoinUnderLoad: rejoining the same node ID twice — with
// in-flight commands around both calls — must be safe; the second call is
// a no-op on an already-alive member.
func TestDoubleRejoinUnderLoad(t *testing.T) {
	f := newRecoveryFixture(t, 3)
	victim := f.cc.cfg.Nodes[1].Name
	qa := f.queueOn(t, f.cc.cfg.Nodes[0].Name)

	if _, err := qa.EnqueueWrite(f.buf, 0, mem.F32Bytes([]float32{1, 1, 1, 1})); err != nil {
		t.Fatal(err)
	}
	f.cc.kill(victim)
	// Load across the membership change: pipelined writes, no Finish.
	for i := 0; i < 8; i++ {
		if _, err := qa.EnqueueWrite(f.buf, int64(i*8), mem.F32Bytes([]float32{float32(i), float32(i)})); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	f.cc.restart(victim) // first rejoin
	for i := 0; i < 4; i++ {
		if _, err := qa.EnqueueWrite(f.buf, int64(i*4), mem.F32Bytes([]float32{9})); err != nil {
			t.Fatalf("post-rejoin write %d: %v", i, err)
		}
	}
	if err := f.cc.rt.ReconnectNode(victim); err != nil { // second rejoin: no-op
		t.Fatalf("double rejoin: %v", err)
	}
	if _, err := qa.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	f.mustRead(t, qa, []float32{9, 9, 9, 9, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7})
}

// TestReconnectBackoff: a rejoin that races the node coming back up must
// retry the dial with backoff — the first attempts fail (nothing bound at
// the address), then the node binds and the rejoin lands.
func TestReconnectBackoff(t *testing.T) {
	f := newRecoveryFixture(t, 2)
	victim := f.cc.cfg.Nodes[0].Name
	qs := f.queueOn(t, f.cc.cfg.Nodes[1].Name)

	if _, err := qs.EnqueueWrite(f.buf, 0, mem.F32Bytes([]float32{3, 1, 4, 1})); err != nil {
		t.Fatal(err)
	}
	f.cc.kill(victim)
	f.mustRead(t, qs, []float32{3, 1, 4, 1})

	// Build the fresh process now, but bind its address only after a
	// delay, so ReconnectNode's first dials fail and it must back off.
	cc := f.cc
	var ns = cc.cfg.Nodes[0]
	devCfgs, err := ns.DeviceConfigs()
	if err != nil {
		t.Fatal(err)
	}
	n, err := node.New(node.Options{Name: ns.Name, Devices: devCfgs, ICD: cc.icd, ExecWorkers: 1, Dialer: cc.net})
	if err != nil {
		t.Fatal(err)
	}
	srv := n.Serve()
	regErr := make(chan error, 1)
	go func() {
		time.Sleep(20 * time.Millisecond)
		regErr <- cc.net.Register(ns.Addr, srv)
	}()

	if err := cc.rt.ReconnectNode(victim); err != nil {
		t.Fatalf("rejoin with delayed bind: %v", err)
	}
	if err := <-regErr; err != nil {
		t.Fatalf("register: %v", err)
	}
	cc.servers[victim] = srv
	cc.alive[victim] = true

	// The rejoined node is usable.
	var dev *core.DeviceRef
	for _, d := range cc.rt.Devices(0) {
		if d.Key().Node == victim {
			dev = d
		}
	}
	if dev == nil {
		t.Fatalf("rejoined node %q has no device", victim)
	}
	q, err := f.ctx.CreateQueue(dev)
	if err != nil {
		t.Fatal(err)
	}
	f.mustRead(t, q, []float32{3, 1, 4, 1})
}
