package core_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/haocl-project/haocl/internal/cluster"
	"github.com/haocl-project/haocl/internal/core"
	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/mem"
	"github.com/haocl-project/haocl/internal/node"
	"github.com/haocl-project/haocl/internal/sim"
	"github.com/haocl-project/haocl/internal/transport"
)

// startRuntimeWithServers is startRuntime exposing the node servers so
// failure tests can kill them mid-run.
func startRuntimeWithServers(t *testing.T, gpuNodes int) (*core.Runtime, []*transport.Server, func()) {
	t.Helper()
	cfg := cluster.Synthetic("pipeline-test", 0, gpuNodes, 0, nil)
	icd := device.NewICD()
	sim.RegisterDrivers(icd, testRegistry())
	net := transport.NewMemNetwork()
	var servers []*transport.Server
	for _, ns := range cfg.Nodes {
		devCfgs, err := ns.DeviceConfigs()
		if err != nil {
			t.Fatal(err)
		}
		n, err := node.New(node.Options{Name: ns.Name, Devices: devCfgs, ICD: icd, ExecWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		srv := n.Serve()
		if err := net.Register(ns.Addr, srv); err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
	}
	rt, err := core.Connect(core.Options{Config: cfg, Dialer: net, ClientName: "pipeline-test"})
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		rt.Close()
		for _, s := range servers {
			s.Close()
		}
	}
	return rt, servers, cleanup
}

// TestPipelinedInOrderPerQueue issues a write and a burst of kernels on one
// queue without touching any event until the whole burst is on the wire:
// in-order queue semantics must hold in virtual time exactly as they did
// under the synchronous protocol.
func TestPipelinedInOrderPerQueue(t *testing.T) {
	rt, _, cleanup := startRuntimeWithServers(t, 1)
	defer cleanup()

	ctx, err := rt.CreateContext(rt.Devices(0))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgram(incrSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateQueue(rt.Devices(0)[0])
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.CreateBuffer(8)
	if err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("incr")
	if err != nil {
		t.Fatal(err)
	}
	k.SetArg(0, buf)
	k.SetArg(1, int32(2))

	const launches = 8
	events := make([]*core.Event, 0, launches+1)
	wev, err := q.EnqueueWrite(buf, 0, mem.F32Bytes([]float32{0, 0}))
	if err != nil {
		t.Fatal(err)
	}
	events = append(events, wev)
	for i := 0; i < launches; i++ {
		ev, err := q.EnqueueKernel(k, []int{2}, nil, nil, nil)
		if err != nil {
			t.Fatalf("launch %d: %v", i, err)
		}
		events = append(events, ev)
	}

	// Synchronize once, then inspect the whole burst.
	end, err := q.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(events); i++ {
		prev, cur := events[i-1].Profile(), events[i].Profile()
		if cur.Start < prev.End {
			t.Fatalf("command %d overlapped predecessor: %+v vs %+v", i, cur, prev)
		}
	}
	if last := events[len(events)-1].End(); end < last {
		t.Fatalf("finish time %v before last command end %v", end, last)
	}

	data, _, err := q.EnqueueRead(buf, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := mem.BytesF32(data); got[0] != launches || got[1] != launches {
		t.Fatalf("after %d pipelined incr: %v", launches, got)
	}
}

// TestConcurrentPipelinedEnqueues hammers the pipeline from many
// goroutines across many queues and nodes at once; it exists to fail under
// -race if any issue-path state is unsynchronized, and to prove each
// queue's chain stays functionally in order despite the concurrency.
func TestConcurrentPipelinedEnqueues(t *testing.T) {
	const (
		nodes       = 3
		perDevice   = 2 // concurrent queues per device
		launchesPer = 8
	)
	rt, _, cleanup := startRuntimeWithServers(t, nodes)
	defer cleanup()

	devs := rt.Devices(0)
	ctx, err := rt.CreateContext(devs)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgram(incrSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, nodes*perDevice)
	for _, dev := range devs {
		for w := 0; w < perDevice; w++ {
			wg.Add(1)
			go func(dev *core.DeviceRef) {
				defer wg.Done()
				q, err := ctx.CreateQueue(dev)
				if err != nil {
					errs <- err
					return
				}
				buf, err := ctx.CreateBuffer(8)
				if err != nil {
					errs <- err
					return
				}
				k, err := prog.CreateKernel("incr")
				if err != nil {
					errs <- err
					return
				}
				k.SetArg(0, buf)
				k.SetArg(1, int32(2))
				if _, err := q.EnqueueWrite(buf, 0, mem.F32Bytes([]float32{0, 0})); err != nil {
					errs <- err
					return
				}
				for i := 0; i < launchesPer; i++ {
					if _, err := q.EnqueueKernel(k, []int{2}, nil, nil, nil); err != nil {
						errs <- err
						return
					}
				}
				data, _, err := q.EnqueueRead(buf, 0, 8)
				if err != nil {
					errs <- err
					return
				}
				if got := mem.BytesF32(data); got[0] != launchesPer {
					errs <- &orderError{got: got[0]}
					return
				}
				if _, err := q.Finish(); err != nil {
					errs <- err
				}
			}(dev)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// All responses drained: the metrics must balance.
	m := rt.Metrics()
	if m.Makespan <= 0 || m.TotalCompute() <= 0 {
		t.Fatalf("metrics after concurrent run: %+v", m)
	}
}

type orderError struct{ got float32 }

func (e *orderError) Error() string {
	return fmt.Sprintf("pipelined chain lost commands: buffer holds %v", e.got)
}

// TestNodeDeathFailsPipelineSticky kills a node with commands in flight:
// every affected future must fail, the queue error must be sticky, and
// Finish must surface it.
func TestNodeDeathFailsPipelineSticky(t *testing.T) {
	rt, servers, cleanup := startRuntimeWithServers(t, 1)
	defer cleanup()

	ctx, err := rt.CreateContext(rt.Devices(0))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateQueue(rt.Devices(0)[0])
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	// Establish the replica and drain so the next write is pure pipeline.
	if _, err := q.EnqueueWrite(buf, 0, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Finish(); err != nil {
		t.Fatal(err)
	}

	servers[0].Close() // the node dies

	// The enqueue may or may not report the failure synchronously — the
	// connection teardown races with the issue — but the event and the
	// queue must observe it either way.
	ev, err := q.EnqueueWrite(buf, 0, make([]byte, 16))
	if err == nil {
		if werr := ev.Wait(); werr == nil {
			t.Fatal("command on dead node resolved successfully")
		}
	}
	if _, err := q.Finish(); err == nil {
		t.Fatal("finish on dead node's queue succeeded")
	}
	// The failure is sticky: later enqueues refuse immediately.
	if _, err := q.EnqueueWrite(buf, 0, make([]byte, 16)); err == nil {
		t.Fatal("enqueue after sticky failure accepted")
	}
}
