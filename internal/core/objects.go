package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/haocl-project/haocl/internal/clc"
	"github.com/haocl-project/haocl/internal/kernel"
	"github.com/haocl-project/haocl/internal/mem"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/trace"
	"github.com/haocl-project/haocl/internal/transport"
	"github.com/haocl-project/haocl/internal/vtime"
)

// Event is the host-side handle for an enqueued command. Commands are
// pipelined over the backbone: the enqueue call returns once the request
// is on the wire, carrying a host-assigned event ID that later commands
// may wait on immediately, and the event's profile resolves lazily when
// the node's response arrives. Wait, Profile and End are synchronization
// points; a command that failed remotely surfaces its error there and
// marks its queue's sticky error (see Queue.Finish).
type Event struct {
	dev      *DeviceRef
	remoteID uint64

	// Pipelined events carry the issuing queue, the in-flight future and
	// the response body it decodes into; events born resolved (reads, which
	// must block for their data anyway) leave pending nil.
	queue    *Queue
	pending  *transport.Pending
	resp     *protocol.EventResp
	isKernel bool

	// trace is the command's tracing record; nil when tracing was off at
	// issue time. The span tree is emitted in resolve, where the node's
	// profile is first known.
	trace *evTrace

	// gen is the recovery generation the event was issued under. After a
	// node loss, recovery bumps the runtime generation: older events are
	// never referenced on the wire again (their node-side records died with
	// the old cluster state) and their crash-induced failures are absolved
	// (the log replay re-established their effects).
	gen uint64

	once    sync.Once
	profile protocol.Profile
	err     error

	// released marks the remote event object freed (fire-and-forget). A
	// released event must not appear on the wire again: its node-side
	// record is gone, so a wait referencing it could never resolve.
	released atomic.Bool
}

// resolve consumes the command's response exactly once: on success it
// publishes the profile into the runtime metrics and monitor, on failure
// it records the error here and as the queue's sticky error.
func (e *Event) resolve() {
	e.once.Do(func() {
		if e.pending == nil {
			return // born resolved
		}
		sess := e.queue.ctx.sess
		defer sess.forgetEvent(e)
		defer e.queue.forget(e)
		if err := e.pending.Wait(); err != nil {
			// OnDown marks the handle dead before any pending future
			// unblocks, so a failure observed while the node is dead is
			// crash-induced — tag it retriable (recovery replays the work).
			if !e.dev.node.Alive() {
				err = &nodeLostError{cause: err}
			}
			e.err = fmt.Errorf("core: command on %s: %w", e.dev.key, err)
			e.queue.fail(e.err)
			return
		}
		e.profile = e.resp.Profile
		sess.observeProfile(e.dev.key, e.profile, e.isKernel)
		e.trace.emit(e.remoteID, e.profile)
	})
}

// Wait blocks until the command completed and reports its error, if any
// (clWaitForEvents). A crash-induced failure triggers recovery: the dead
// node's work is re-placed on survivors and the command log replayed, after
// which the failure is absolved — the event's effect was re-established, so
// the caller observes success. Genuine command failures report as before.
func (e *Event) Wait() error {
	err := e.waitErr()
	if err == nil || e.queue == nil {
		return err
	}
	rt := e.queue.ctx.rt
	if rt.shouldRecover(err) {
		if rerr := rt.Recover(); rerr != nil {
			return rerr
		}
	}
	if isNodeLost(err) && e.gen < rt.gen.Load() {
		return nil // recovery replayed the command's effect
	}
	return err
}

// waitErr resolves the event and reports its raw error without triggering
// recovery. Internal pipeline machinery (push watchers, recovery's own
// drain) must use this: recovering from inside recovery would deadlock on
// recoverMu.
func (e *Event) waitErr() error {
	e.resolve()
	return e.err
}

// Profile returns the event's virtual-time profiling info, waiting for the
// command's response if it is still in flight (clGetEventProfilingInfo).
// A failed command reports a zero profile; use Wait to observe the error.
func (e *Event) Profile() protocol.Profile {
	e.resolve()
	return e.profile
}

// End returns the event's virtual completion instant, waiting for the
// response if necessary.
func (e *Event) End() vtime.Time {
	e.resolve()
	return vtime.Time(e.profile.End)
}

// Device returns the device the command ran on (nil for floor events).
func (e *Event) Device() *DeviceRef { return e.dev }

// FloorEvent returns a pure virtual-time floor: an event born resolved at
// instant t, bound to no device, queue or session. Waiting on it costs
// nothing and folds into a command's arrival instant like any cross-node
// dependency. Open-loop load generators use it to model job arrival
// instants without wire traffic.
func FloorEvent(t vtime.Time) *Event {
	return &Event{profile: protocol.Profile{Start: int64(t), End: int64(t)}}
}

// Release frees the remote event object (clReleaseEvent). Long-running
// host programs release events they no longer wait on so node object
// tables stay bounded. The release rides the same ordered connection as
// the command that creates the event, so it needs no synchronization —
// and it is fire-and-forget: teardown releases objects in storms, so the
// acknowledgement is drained at the next Flush (or Close), where a
// failure surfaces as the runtime's sticky release error.
func (e *Event) Release(rt *Runtime) error {
	e.released.Store(true)
	if e.dev == nil {
		return nil // floor events own no remote record
	}
	sess := rt.defaultSession()
	if e.queue != nil {
		sess = e.queue.ctx.sess
	}
	sess.releaseAsync(e.dev.node, protocol.ObjEvent, e.remoteID)
	return nil
}

// splitWaits partitions a wait list into remote event IDs local to node and
// a virtual-time floor for events that completed on other nodes: a remote
// node cannot wait on another node's event object, so cross-node
// dependencies are folded into the command's arrival instant. Events from
// an older recovery generation never take the local-ID path — their
// node-side records died with the old cluster state, so they fold into the
// floor like cross-node events (a resolved event's floor is exact). Waiting
// on another session's event is refused with ErrCrossSession: event
// visibility is the namespace boundary.
func (s *Session) splitWaits(node *NodeHandle, waits []*Event) (local []int64, floor vtime.Time, err error) {
	gen := s.rt.gen.Load()
	for _, ev := range waits {
		if ev == nil {
			continue
		}
		if ev.queue != nil && ev.queue.ctx.sess != s {
			return nil, 0, fmt.Errorf("core: wait on event %d from tenant %q: %w",
				ev.remoteID, ev.queue.ctx.sess.tenant, ErrCrossSession)
		}
		if ev.dev == nil {
			// A floor event carries only its instant.
			if end := ev.End(); end > floor {
				floor = end
			}
			continue
		}
		if ev.dev.node == node && ev.gen == gen {
			if ev.released.Load() {
				// The node-side record is gone; a wire wait on it would
				// never resolve. The pre-lane runtime failed the same
				// sequence with "unknown event" — keep it fail-fast.
				return nil, 0, fmt.Errorf("core: wait list references released event %d", ev.remoteID)
			}
			local = append(local, int64(ev.remoteID))
		} else if end := ev.End(); end > floor {
			floor = end
		}
	}
	return local, floor, nil
}

// Context is a cluster-wide OpenCL context spanning devices on any number
// of nodes. One remote context is created on each involved node.
type Context struct {
	rt      *Runtime
	sess    *Session
	devices []*DeviceRef

	// remoteMu guards remote, the per-node context instance IDs. The map
	// is immutable between membership changes, but recovery deletes a dead
	// node's entry (stripDead) and rejoin re-adds it (restoreOn) while
	// other goroutines create objects, so every access goes through
	// remoteID/remoteSnapshot/setRemote/dropRemote. remoteMu is a leaf
	// lock: it is taken while holding mu, regMu, a Buffer's or Program's
	// mu, and never holds any other lock itself.
	remoteMu sync.Mutex
	remote   map[*NodeHandle]uint64 // guarded by remoteMu

	mu       sync.Mutex
	svcQueue map[*NodeHandle]*Queue // guarded by mu; hidden queues for buffer migration

	// regMu guards the object registries recovery walks to strip dead-node
	// state. It is separate from mu so CreateQueue can register while
	// serviceQueue holds mu; lock order is mu before regMu, never reversed.
	regMu    sync.Mutex
	queues   []*Queue   // guarded by regMu
	buffers  []*Buffer  // guarded by regMu
	programs []*Program // guarded by regMu
}

// CreateContext builds a context over the given devices
// (clCreateContext) in the default session. Devices may live on different
// nodes; that is the point of HaoCL.
func (rt *Runtime) CreateContext(devices []*DeviceRef) (*Context, error) {
	return rt.defaultSession().CreateContext(devices)
}

// CreateContext builds a context over the given devices inside this
// session's namespace: the remote contexts are tagged with the session's
// identity, and every object created from the context belongs to this
// tenant alone.
func (s *Session) CreateContext(devices []*DeviceRef) (*Context, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("core: session %q is closed", s.tenant)
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("core: context needs at least one device")
	}
	ctx := &Context{
		rt:       s.rt,
		sess:     s,
		devices:  devices,
		remote:   make(map[*NodeHandle]uint64),
		svcQueue: make(map[*NodeHandle]*Queue),
	}
	perNode := make(map[*NodeHandle][]int64)
	for _, d := range devices {
		perNode[d.node] = append(perNode[d.node], int64(d.info.ID))
	}
	for _, node := range sortedNodeKeys(perNode) {
		ids := perNode[node]
		var resp protocol.ObjectResp
		req := &protocol.CreateContextReq{DeviceIDs: ids, SessionID: s.id, Tenant: s.tenant}
		if err := s.call(node, req, &resp); err != nil {
			return nil, fmt.Errorf("core: create context on %q: %w", node.name, err)
		}
		ctx.setRemote(node, resp.ID)
	}
	s.ctxMu.Lock()
	s.contexts = append(s.contexts, ctx)
	s.ctxMu.Unlock()
	return ctx, nil
}

// remoteID returns the context's remote instance ID on node, if any.
func (c *Context) remoteID(node *NodeHandle) (uint64, bool) {
	c.remoteMu.Lock()
	defer c.remoteMu.Unlock()
	id, ok := c.remote[node]
	return id, ok
}

// remoteSnapshot copies the per-node instance map for lock-free iteration.
func (c *Context) remoteSnapshot() map[*NodeHandle]uint64 {
	c.remoteMu.Lock()
	defer c.remoteMu.Unlock()
	out := make(map[*NodeHandle]uint64, len(c.remote))
	for n, id := range c.remote {
		out[n] = id
	}
	return out
}

// setRemote records the context's remote instance on node (creation and
// rejoin restore).
func (c *Context) setRemote(node *NodeHandle, id uint64) {
	c.remoteMu.Lock()
	c.remote[node] = id
	c.remoteMu.Unlock()
}

// dropRemote forgets the context's remote instance on a dead node.
func (c *Context) dropRemote(node *NodeHandle) {
	c.remoteMu.Lock()
	delete(c.remote, node)
	c.remoteMu.Unlock()
}

// allQueues snapshots the context's queue registry (user and service
// queues alike).
func (c *Context) allQueues() []*Queue {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	return append([]*Queue(nil), c.queues...)
}

// checkQueuesClean reports the first sticky error latched on any of the
// context's queues — recovery's post-replay verification.
func (c *Context) checkQueuesClean() error {
	for _, q := range c.allQueues() {
		q.drain()
		if err := q.stickyErr(); err != nil {
			return err
		}
	}
	return nil
}

// Devices returns the context's devices.
func (c *Context) Devices() []*DeviceRef { return c.devices }

// Runtime returns the owning runtime.
func (c *Context) Runtime() *Runtime { return c.rt }

// Session returns the session whose namespace the context lives in.
func (c *Context) Session() *Session { return c.sess }

// deviceOnNode finds one context device hosted by node.
func (c *Context) deviceOnNode(node *NodeHandle) (*DeviceRef, bool) {
	for _, d := range c.devices {
		if d.node == node {
			return d, true
		}
	}
	return nil, false
}

// serviceQueue lazily creates the hidden migration queue for a node.
func (c *Context) serviceQueue(node *NodeHandle) (*Queue, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if q, ok := c.svcQueue[node]; ok {
		return q, nil
	}
	dev, ok := c.deviceOnNode(node)
	if !ok {
		return nil, fmt.Errorf("core: context has no device on node %q", node.name)
	}
	q, err := c.CreateQueue(dev)
	if err != nil {
		return nil, err
	}
	c.svcQueue[node] = q
	return q, nil
}

// Queue is an in-order command queue bound to one device
// (clCreateCommandQueue with profiling enabled). Enqueue operations are
// pipelined: they return without waiting for the node's response, and the
// queue's sticky error records the first command failure so it surfaces at
// the next synchronization point (Finish, or Wait on an event), matching
// OpenCL's in-order queue semantics.
type Queue struct {
	ctx *Context

	mu sync.Mutex
	// dev and remoteID are the queue's node binding; recovery re-points
	// them when the node dies (rebindQueue), so concurrent enqueues must
	// snapshot them through binding() rather than read the fields raw.
	dev         *DeviceRef          // guarded by mu
	remoteID    uint64              // guarded by mu
	outstanding map[*Event]struct{} // guarded by mu
	err         error               // guarded by mu; sticky: first pipelined command failure
}

// binding snapshots the queue's current node binding. An operation reads
// it once and works against that snapshot: if recovery re-binds the queue
// mid-flight, the operation fails with a crash-classified error and its
// public wrapper retries against the new binding.
func (q *Queue) binding() (*DeviceRef, uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dev, q.remoteID
}

// track registers a pipelined command with the queue and runtime so the
// synchronization points can drain it, stamping the event with the current
// recovery generation.
func (q *Queue) track(ev *Event) {
	ev.gen = q.ctx.rt.gen.Load()
	q.mu.Lock()
	if q.outstanding == nil {
		q.outstanding = make(map[*Event]struct{})
	}
	q.outstanding[ev] = struct{}{}
	q.mu.Unlock()
	q.ctx.sess.trackEvent(ev)
}

func (q *Queue) forget(ev *Event) {
	q.mu.Lock()
	delete(q.outstanding, ev)
	q.mu.Unlock()
}

// fail records the queue's first command failure.
func (q *Queue) fail(err error) {
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	q.mu.Unlock()
}

// stickyErr reports the queue's first failure, if any. Enqueues on a
// failed queue refuse immediately with that error.
func (q *Queue) stickyErr() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// drain resolves every outstanding pipelined command on the queue.
func (q *Queue) drain() {
	q.mu.Lock()
	evs := drainList(q.outstanding)
	q.mu.Unlock()
	for _, e := range evs {
		e.resolve()
	}
}

// drainList snapshots a pending-event set in deterministic order: by
// owning node, then host-assigned event ID — issue order. Resolution
// order decides which failure latches into a sticky error slot first, so
// it must not follow map iteration. The caller holds whatever mutex
// guards set.
func drainList(set map[*Event]struct{}) []*Event {
	evs := make([]*Event, 0, len(set))
	for e := range set {
		evs = append(evs, e)
	}
	sort.Slice(evs, func(i, j int) bool {
		if ni, nj := evs[i].dev.node.name, evs[j].dev.node.name; ni != nj {
			return ni < nj
		}
		return evs[i].remoteID < evs[j].remoteID
	})
	return evs
}

// sortedNodeKeys returns m's keys in node-name order. Every loop that
// issues wire traffic per node must walk this instead of the map, so the
// frame sequence — and with it every virtual-time booking — is identical
// across runs.
func sortedNodeKeys[V any](m map[*NodeHandle]V) []*NodeHandle {
	nodes := make([]*NodeHandle, 0, len(m))
	for n := range m {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].name < nodes[j].name })
	return nodes
}

// CreateQueue creates a command queue on dev.
func (c *Context) CreateQueue(dev *DeviceRef) (*Queue, error) {
	ctxID, ok := c.remoteID(dev.node)
	if !ok {
		return nil, fmt.Errorf("core: device %s is not in this context", dev.key)
	}
	var resp protocol.ObjectResp
	err := c.sess.call(dev.node, &protocol.CreateQueueReq{
		ContextID: ctxID,
		DeviceID:  dev.info.ID,
		Profiling: true,
	}, &resp)
	if err != nil {
		return nil, fmt.Errorf("core: create queue on %s: %w", dev.key, err)
	}
	q := &Queue{ctx: c, dev: dev, remoteID: resp.ID}
	c.regMu.Lock()
	c.queues = append(c.queues, q)
	c.regMu.Unlock()
	return q, nil
}

// Device returns the queue's device.
func (q *Queue) Device() *DeviceRef {
	dev, _ := q.binding()
	return dev
}

// Finish drains the queue's pipeline and returns its virtual completion
// instant (clFinish). It is the queue's primary synchronization point: all
// in-flight responses are consumed, and the first failure of any pipelined
// command on the queue — including one whose enqueue call returned nil —
// is reported here. A crash-induced failure triggers recovery and a
// retry: node loss is retriable, only genuine command failures stick.
func (q *Queue) Finish() (vtime.Time, error) {
	var t vtime.Time
	err := q.ctx.rt.withRecovery(func() error {
		var ferr error
		t, ferr = q.finish()
		return ferr
	})
	return t, err
}

// finish is the non-recovering Finish internal.
func (q *Queue) finish() (vtime.Time, error) {
	q.drain()
	if err := q.stickyErr(); err != nil {
		return 0, err
	}
	dev, qid := q.binding()
	var resp protocol.FinishQueueResp
	if err := q.ctx.sess.call(dev.node, &protocol.FinishQueueReq{QueueID: qid}, &resp); err != nil {
		return 0, fmt.Errorf("core: finish queue on %s: %w", dev.key, err)
	}
	t := vtime.Time(resp.SimTime)
	q.ctx.sess.observeMakespan(t)
	return t, nil
}

// Release frees the remote queue object. Like every release it is
// fire-and-forget, drained at the next Flush/Close; it rides the ordered
// connection behind the queue's in-flight commands, which keep executing
// (they resolved the queue at dispatch), but new commands enqueued after
// a Release are refused by the node.
func (q *Queue) Release() error {
	dev, qid := q.binding()
	q.ctx.sess.releaseAsync(dev.node, protocol.ObjQueue, qid)
	return nil
}

// remoteBuf tracks one node's replica of a buffer. valid is the set of
// byte ranges whose replica bytes hold current data — a partial write
// validates exactly the written range, an overlapping writer elsewhere
// invalidates exactly the overlap (DESIGN.md §5). lastEvent chains the
// replica's most recent writer: because event IDs are host-assigned at
// issue time, a dependent command can be pipelined behind the writer
// without waiting for the writer's response.
type remoteBuf struct {
	id        uint64
	valid     mem.RangeSet
	lastEvent uint64 // event ID of the last write, for ordering
	lastEv    *Event // the chained event itself, to detect released chains
}

// Buffer is a cluster-wide memory object (clCreateBuffer). The host keeps a
// shadow copy plus per-node replicas with range-aware write-invalidate
// coherence: writing a range on one device invalidates that range on the
// others, and using the buffer on a different node triggers an automatic
// delta migration over the backbone that moves only the stale ranges — the
// "complex inter-node data transfer schemes" of paper §III-C.
type Buffer struct {
	ctx  *Context
	size int64
	// modelSize is the buffer's logical size in the timing model; it
	// defaults to size and is raised by SetModelSize when the functional
	// payload is a scaled-down stand-in for a paper-scale input.
	modelSize int64 // guarded by mu

	mu   sync.Mutex
	host []byte // guarded by mu
	// hostValid is the set of byte ranges of the host shadow holding
	// current data. The coherence invariant: every byte range that was
	// ever written is valid on the host or on at least one replica at all
	// times (ranges never written read as zeros, deterministically).
	hostValid   mem.RangeSet               // guarded by mu
	hostReadyAt vtime.Time                 // guarded by mu
	remote      map[*NodeHandle]*remoteBuf // guarded by mu
	released    bool                       // guarded by mu
}

// CreateBuffer allocates a buffer of the given size.
func (c *Context) CreateBuffer(size int64) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: invalid buffer size %d", size)
	}
	b := &Buffer{
		ctx:       c,
		size:      size,
		modelSize: size,
		remote:    make(map[*NodeHandle]*remoteBuf),
	}
	c.regMu.Lock()
	c.buffers = append(c.buffers, b)
	c.regMu.Unlock()
	return b, nil
}

// isReleased reports whether the buffer was released; the command log
// skips replaying mutations of released buffers.
func (b *Buffer) isReleased() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.released
}

// Size returns the buffer's size in bytes.
func (b *Buffer) Size() int64 { return b.size }

// SetModelSize declares the buffer's logical size for the timing model.
// All transfer charges scale by modelSize/size, so a functional 1 MiB
// stand-in for a logical 256 MiB matrix is charged as 256 MiB on the wire.
func (b *Buffer) SetModelSize(modelSize int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if modelSize > 0 {
		b.modelSize = modelSize
	}
}

// ModelSize returns the buffer's logical size.
func (b *Buffer) ModelSize() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.modelSize
}

// scaled converts an actual byte count to its logical-model equivalent.
// Caller holds b.mu.
func (b *Buffer) scaled(n int64) int64 {
	if b.modelSize == b.size {
		return n
	}
	return int64(float64(n) * float64(b.modelSize) / float64(b.size))
}

// remoteOn lazily allocates the buffer's replica on a node.
// Caller holds b.mu.
func (b *Buffer) remoteOn(node *NodeHandle) (*remoteBuf, error) {
	if b.released {
		return nil, fmt.Errorf("core: buffer was released")
	}
	if rb, ok := b.remote[node]; ok {
		return rb, nil
	}
	ctxID, ok := b.ctx.remoteID(node)
	if !ok {
		return nil, fmt.Errorf("core: context spans no device on node %q", node.name)
	}
	var resp protocol.ObjectResp
	err := b.ctx.sess.call(node, &protocol.CreateBufferReq{ContextID: ctxID, Size: b.size}, &resp)
	if err != nil {
		return nil, fmt.Errorf("core: allocate buffer on %q: %w", node.name, err)
	}
	rb := &remoteBuf{id: resp.ID}
	b.remote[node] = rb
	return rb, nil
}

// Release frees the buffer's remote replicas on every node that holds one
// (clReleaseMemObject). The releases are fire-and-forget, drained at the
// next Flush/Close; commands already pipelined against a replica keep
// executing, because nodes resolve a command's objects when it is
// registered, before the release arrives behind it. The host shadow is
// dropped too — the buffer is unusable afterwards.
func (b *Buffer) Release() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, node := range sortedNodeKeys(b.remote) {
		b.ctx.sess.releaseAsync(node, protocol.ObjBuffer, b.remote[node].id)
	}
	b.remote = make(map[*NodeHandle]*remoteBuf)
	b.host = nil
	b.hostValid.Reset()
	b.released = true
	return nil
}

// hostRangeOK validates the byte range [off, off+n) against a buffer of
// size bytes without ever computing off+n: a caller-supplied offset near
// MaxInt64 would wrap the sum negative and slip past a naive bound check
// (the node applies the same overflow-safe rule at registration).
func hostRangeOK(off, n, size int64) bool {
	return off >= 0 && n >= 0 && off <= size && n <= size-off
}

// EnqueueWrite transfers data into the buffer through q's device
// (clEnqueueWriteBuffer). The host shadow is updated and exactly the
// written byte range is validated there and on the target replica — and
// invalidated on every other replica; the transfer is charged to the host
// NIC model. The command is pipelined: the call returns once the request
// is on the wire, and the returned event resolves when the node responds.
// A crash-induced failure recovers and retries transparently.
func (q *Queue) EnqueueWrite(b *Buffer, offset int64, data []byte, waits ...*Event) (*Event, error) {
	var ev *Event
	err := q.ctx.rt.withRecovery(func() error {
		var werr error
		ev, werr = q.enqueueWrite(b, offset, data, waits...)
		return werr
	})
	return ev, err
}

// enqueueWrite is the non-recovering EnqueueWrite internal; replay drives
// it directly.
func (q *Queue) enqueueWrite(b *Buffer, offset int64, data []byte, waits ...*Event) (*Event, error) {
	if err := q.stickyErr(); err != nil {
		return nil, err
	}
	if b.ctx.sess != q.ctx.sess {
		return nil, fmt.Errorf("core: write to buffer of tenant %q: %w", b.ctx.sess.tenant, ErrCrossSession)
	}
	if !hostRangeOK(offset, int64(len(data)), b.size) {
		return nil, fmt.Errorf("core: write range at offset %d of %d bytes out of bounds (buffer %d bytes)",
			offset, len(data), b.size)
	}
	dev, qid := q.binding()
	node := dev.node
	end := offset + int64(len(data))
	b.mu.Lock()
	defer b.mu.Unlock()

	// Every fallible step runs before any buffer state mutates: a write
	// whose replica allocation or wait list fails must not leave the host
	// shadow claiming data the cluster never received.
	rb, err := b.remoteOn(node)
	if err != nil {
		return nil, err
	}
	localWaits, floor, err := q.ctx.sess.splitWaits(node, waits)
	if err != nil {
		return nil, err
	}
	chain, err := rb.chainWaits()
	if err != nil {
		return nil, err
	}

	// Update the host shadow: the written range now holds current data.
	if b.host == nil {
		b.host = make([]byte, b.size)
	}
	copy(b.host[offset:], data)
	b.hostValid.Add(offset, end)

	localWaits = append(localWaits, chain...)
	modelBytes := b.scaled(int64(len(data)))
	earliest := vtime.Max(b.hostReadyAt, floor)
	wireStart, arrival := q.ctx.sess.chargeNIC(earliest, controlMsgBytes+modelBytes)

	resp := new(protocol.EventResp)
	id, pend := q.ctx.sess.issue(node, &protocol.WriteBufferReq{
		QueueID:    qid,
		BufferID:   rb.id,
		Offset:     offset,
		Data:       data,
		SimArrival: int64(arrival),
		ModelBytes: modelBytes,
		WaitEvents: localWaits,
	}, resp)
	ev := &Event{dev: dev, remoteID: id, queue: q, pending: pend, resp: resp,
		trace: q.ctx.sess.traceCmd(trace.KindWrite, dev, qid, modelBytes, wireStart, arrival)}
	q.track(ev)

	// Coherence at issue time (wire order is event-ID order): this node and
	// the host now hold the written range; other replicas lose exactly the
	// overlap. A partial write onto a stale replica must NOT validate the
	// unwritten remainder — those bytes still hold old data, and reading
	// them back here would expose stale content (the pre-range runtime's
	// whole-replica flag did exactly that).
	for other, orb := range b.remote {
		if other != node {
			orb.valid.Remove(offset, end)
		}
	}
	rb.valid.Add(offset, end)
	rb.lastEvent = id
	rb.lastEv = ev
	// Log under b.mu so the log order matches the issue order per buffer.
	q.ctx.sess.logCommand(&writeLog{q: q, b: b, off: offset, data: append([]byte(nil), data...)})
	return ev, nil
}

// ensureResident makes the byte range [lo, hi) of the buffer valid on
// node, migrating stale ranges from the host shadow or from owning
// replicas as needed. Caller holds b.mu. It returns the replica; any
// subsequent command on node chains behind rb.lastEvent as usual.
//
// Migration is a delta: only the Gaps of the replica's valid set within
// [lo, hi) travel, each as its own ranged command charged per-range
// through the virtual-time model (MigrateFull widens the request to the
// whole buffer, restoring the pre-range behavior for comparison). In the
// default MigrateDelta mode owner-covered ranges move directly node→node
// (see migrateP2P); MigrateHostRelay keeps the pre-p2p data path below:
// pulls from owners block for their data like any read, pushes to node are
// pipelined through the context's hidden service queue, so the consumer
// command that triggered the migration waits on the final push's event ID
// without a round trip.
func (b *Buffer) ensureResident(node *NodeHandle, lo, hi int64) (*remoteBuf, error) {
	rb, err := b.remoteOn(node)
	if err != nil {
		return nil, err
	}
	mode := b.ctx.sess.migrationMode()
	full := mode == MigrateFull
	if full {
		lo, hi = 0, b.size
	}
	gaps := rb.valid.Gaps(lo, hi)
	if len(gaps) == 0 {
		return rb, nil
	}
	if full {
		// Pre-range semantics: any staleness re-migrates the whole
		// replica, not just the stale ranges.
		gaps = []mem.Range{{Lo: 0, Hi: b.size}}
	}

	if mode == MigrateDelta {
		if err := b.migrateP2P(node, rb, gaps); err != nil {
			return nil, err
		}
		return rb, nil
	}

	// Host-relay path (MigrateFull, MigrateHostRelay): refresh the host
	// shadow over the stale ranges first, then push from it.
	if err := b.refreshHost(gaps); err != nil {
		return nil, err
	}

	svc, err := b.ctx.serviceQueue(node)
	if err != nil {
		return nil, err
	}
	if err := svc.stickyErr(); err != nil {
		return nil, err
	}
	chain, err := rb.chainWaits()
	if err != nil {
		return nil, err
	}
	// Snapshot the service queue's binding once: recovery may re-bind it
	// mid-loop, and a torn read (old queue ID, new device) would charge the
	// wrong lane. A stale snapshot fails crash-classified and is retried.
	svcDev, svcQID := svc.binding()
	for _, g := range gaps {
		modelBytes := b.scaled(g.Len())
		wireStart, arrival := b.ctx.sess.chargeNIC(b.hostReadyAt, controlMsgBytes+modelBytes)
		resp := new(protocol.EventResp)
		id, pend := b.ctx.sess.issue(node, &protocol.WriteBufferReq{
			QueueID:    svcQID,
			BufferID:   rb.id,
			Offset:     g.Lo,
			Data:       b.host[g.Lo:g.Hi],
			SimArrival: int64(arrival),
			ModelBytes: modelBytes,
			WaitEvents: chain,
		}, resp)
		pushEv := &Event{dev: svcDev, remoteID: id, queue: svc, pending: pend, resp: resp,
			trace: b.ctx.sess.traceCmd(trace.KindMigrate, svcDev, 0, modelBytes, wireStart, arrival)}
		svc.track(pushEv)
		rb.valid.Add(g.Lo, g.Hi)
		// The pushes ride one in-order service queue, so chaining the
		// consumer behind the last push orders it behind all of them.
		rb.lastEvent = id
		rb.lastEv = pushEv
	}
	return rb, nil
}

// refreshHost makes the host shadow valid over the given ranges, pulling
// each host-stale sub-range from a replica that holds it.
// Caller holds b.mu.
func (b *Buffer) refreshHost(ranges []mem.Range) error {
	if b.host == nil {
		b.host = make([]byte, b.size)
	}
	for _, r := range ranges {
		for _, gap := range b.hostValid.Gaps(r.Lo, r.Hi) {
			if err := b.pullRange(gap); err != nil {
				return err
			}
		}
	}
	return nil
}

// pullRange fetches one host-stale range from whichever replicas hold
// parts of it valid, using the shared planOwners cover. Sub-ranges valid
// nowhere were never written: the zero bytes already in the shadow are
// their content (uninitialized OpenCL buffers read deterministically as
// zeros), so they validate without a transfer. Caller holds b.mu.
func (b *Buffer) pullRange(gap mem.Range) error {
	plan, leftover := b.planOwners(gap)
	for _, ps := range plan {
		if err := b.pullFrom(ps.node, ps.rb, ps.r); err != nil {
			return err
		}
	}
	for _, p := range leftover {
		b.hostValid.Add(p.Lo, p.Hi)
	}
	return nil
}

// pullFrom reads one valid range of owner's replica back into the host
// shadow. The pull is pipelined behind the owner's pending writes (the
// wait on lastEvent), but the host must block for the data.
// Caller holds b.mu.
func (b *Buffer) pullFrom(owner *NodeHandle, orb *remoteBuf, r mem.Range) error {
	svc, err := b.ctx.serviceQueue(owner)
	if err != nil {
		return err
	}
	ownerChain, err := orb.chainWaits()
	if err != nil {
		return err
	}
	svcDev, svcQID := svc.binding()
	modelBytes := b.scaled(r.Len())
	wireStart, arrival := b.ctx.sess.chargeNIC(0, controlMsgBytes)
	var resp protocol.ReadBufferResp
	id, pend := b.ctx.sess.issue(owner, &protocol.ReadBufferReq{
		QueueID:    svcQID,
		BufferID:   orb.id,
		Offset:     r.Lo,
		Size:       r.Len(),
		SimArrival: int64(arrival),
		ModelBytes: modelBytes,
		WaitEvents: ownerChain,
	}, &resp)
	if err := pend.Wait(); err != nil {
		// Classify before wrapping so withRecovery's retry decision sees
		// node loss even though the error detours through this message.
		return fmt.Errorf("core: migrate buffer range [%d,%d) from %q: %w",
			r.Lo, r.Hi, owner.name, classifyNodeErr(owner, err))
	}
	// Response data crosses the backbone back to the host.
	_, hostArrival := b.ctx.sess.chargeNICIn(vtime.Time(resp.Profile.End), controlMsgBytes+modelBytes)
	copy(b.host[r.Lo:r.Hi], resp.Data)
	b.hostValid.Add(r.Lo, r.Hi)
	if hostArrival > b.hostReadyAt {
		b.hostReadyAt = hostArrival
	}
	b.ctx.sess.observeProfile(svcDev.key, resp.Profile, false)
	// The pull blocked for its data, so its span tree is emitted here.
	b.ctx.sess.traceCmd(trace.KindPull, svcDev, 0, modelBytes, wireStart, arrival).
		emitIn(id, resp.Profile, hostArrival)
	return nil
}

// chainWaits returns the wait-list entry for the replica's last writer.
// Reusing a buffer whose chained event was released is refused: the
// node-side record is gone, so a wire wait on it could never resolve (the
// pre-lane runtime failed the same sequence with "unknown event"; release
// events only after the buffer's chain has quiesced at a sync point).
func (rb *remoteBuf) chainWaits() ([]int64, error) {
	if rb.lastEvent == 0 {
		return nil, nil
	}
	if rb.lastEv != nil && rb.lastEv.released.Load() {
		return nil, fmt.Errorf("core: buffer chain references released event %d (quiesce with Finish/Flush before releasing chained events)", rb.lastEvent)
	}
	return []int64{int64(rb.lastEvent)}, nil
}

// EnqueueRead transfers buffer contents back to the host
// (clEnqueueReadBuffer), returning the data and the completion event. The
// read is issued through the pipeline — it rides behind any in-flight
// commands it depends on without waiting for their responses — but the
// call itself blocks until the data arrives, making it a natural
// synchronization point for the buffer's command chain.
func (q *Queue) EnqueueRead(b *Buffer, offset, size int64, waits ...*Event) ([]byte, *Event, error) {
	var data []byte
	var ev *Event
	err := q.ctx.rt.withRecovery(func() error {
		var rerr error
		data, ev, rerr = q.enqueueRead(b, offset, size, waits...)
		return rerr
	})
	return data, ev, err
}

// enqueueRead is the non-recovering EnqueueRead internal. Reads are not
// logged: they do not mutate contents.
func (q *Queue) enqueueRead(b *Buffer, offset, size int64, waits ...*Event) ([]byte, *Event, error) {
	if err := q.stickyErr(); err != nil {
		return nil, nil, err
	}
	if b.ctx.sess != q.ctx.sess {
		return nil, nil, fmt.Errorf("core: read from buffer of tenant %q: %w", b.ctx.sess.tenant, ErrCrossSession)
	}
	if !hostRangeOK(offset, size, b.size) {
		return nil, nil, fmt.Errorf("core: read range at offset %d of %d bytes out of bounds (buffer %d bytes)",
			offset, size, b.size)
	}
	dev, qid := q.binding()
	node := dev.node
	b.mu.Lock()
	defer b.mu.Unlock()

	// Only the read range needs to be resident: delta migration fetches
	// and pushes exactly the stale sub-ranges.
	rb, err := b.ensureResident(node, offset, offset+size)
	if err != nil {
		return nil, nil, err
	}
	localWaits, floor, err := q.ctx.sess.splitWaits(node, waits)
	if err != nil {
		return nil, nil, err
	}
	chain, err := rb.chainWaits()
	if err != nil {
		return nil, nil, err
	}
	localWaits = append(localWaits, chain...)
	modelBytes := b.scaled(size)
	wireStart, arrival := q.ctx.sess.chargeNIC(floor, controlMsgBytes)

	var resp protocol.ReadBufferResp
	id, pend := q.ctx.sess.issue(node, &protocol.ReadBufferReq{
		QueueID:    qid,
		BufferID:   rb.id,
		Offset:     offset,
		Size:       size,
		SimArrival: int64(arrival),
		ModelBytes: modelBytes,
		WaitEvents: localWaits,
	}, &resp)
	if err := pend.Wait(); err != nil {
		return nil, nil, fmt.Errorf("core: read buffer on %s: %w", dev.key, classifyNodeErr(node, err))
	}
	// The payload crosses the backbone to the host, freshening the host
	// shadow over exactly the range it carried.
	_, hostArrival := q.ctx.sess.chargeNICIn(vtime.Time(resp.Profile.End), controlMsgBytes+modelBytes)

	if b.host == nil {
		b.host = make([]byte, b.size)
	}
	copy(b.host[offset:], resp.Data)
	b.hostValid.Add(offset, offset+size)
	if hostArrival > b.hostReadyAt {
		b.hostReadyAt = hostArrival
	}
	prof := resp.Profile
	q.ctx.sess.observeProfile(dev.key, prof, false)
	q.ctx.sess.observeMakespan(hostArrival)
	// The read blocked for its data, so its span tree is emitted here.
	q.ctx.sess.traceCmd(trace.KindRead, dev, qid, modelBytes, wireStart, arrival).
		emitIn(id, prof, hostArrival)
	// The event is born resolved: the read blocked for its response. It
	// carries the issuing queue so Release and the cross-session wait check
	// can find its owner (resolve is a no-op: pending is nil).
	return resp.Data, &Event{dev: dev, remoteID: id, queue: q, profile: prof, gen: q.ctx.rt.gen.Load()}, nil
}

// EnqueueCopy copies size bytes between two buffers on q's device
// (clEnqueueCopyBuffer). Both buffers are made resident on the node first;
// the copy happens device-side with no backbone traffic.
func (q *Queue) EnqueueCopy(src, dst *Buffer, srcOffset, dstOffset, size int64, waits ...*Event) (*Event, error) {
	var ev *Event
	err := q.ctx.rt.withRecovery(func() error {
		var cerr error
		ev, cerr = q.enqueueCopy(src, dst, srcOffset, dstOffset, size, waits...)
		return cerr
	})
	return ev, err
}

// enqueueCopy is the non-recovering EnqueueCopy internal; replay drives it
// directly.
func (q *Queue) enqueueCopy(src, dst *Buffer, srcOffset, dstOffset, size int64, waits ...*Event) (*Event, error) {
	if err := q.stickyErr(); err != nil {
		return nil, err
	}
	if src.ctx.sess != q.ctx.sess {
		return nil, fmt.Errorf("core: copy from buffer of tenant %q: %w", src.ctx.sess.tenant, ErrCrossSession)
	}
	if dst.ctx.sess != q.ctx.sess {
		return nil, fmt.Errorf("core: copy into buffer of tenant %q: %w", dst.ctx.sess.tenant, ErrCrossSession)
	}
	if !hostRangeOK(srcOffset, size, src.size) || !hostRangeOK(dstOffset, size, dst.size) {
		return nil, fmt.Errorf("core: copy range out of bounds")
	}
	if src == dst {
		return nil, fmt.Errorf("core: copy within one buffer is not supported")
	}
	dev, qid := q.binding()
	node := dev.node

	// Lock in address order to avoid deadlock with concurrent copies.
	first, second := src, dst
	if fmt.Sprintf("%p", first) > fmt.Sprintf("%p", second) {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	//lint:ignore haoclvet/lockorder src and dst share one lock class; the address comparison above is the deterministic tiebreak
	second.mu.Lock()
	defer second.mu.Unlock()

	srcRB, err := src.ensureResident(node, srcOffset, srcOffset+size)
	if err != nil {
		return nil, err
	}
	dstRB, err := dst.remoteOn(node)
	if err != nil {
		return nil, err
	}
	localWaits, floor, err := q.ctx.sess.splitWaits(node, waits)
	if err != nil {
		return nil, err
	}
	srcChain, err := srcRB.chainWaits()
	if err != nil {
		return nil, err
	}
	dstChain, err := dstRB.chainWaits()
	if err != nil {
		return nil, err
	}
	localWaits = append(localWaits, srcChain...)
	localWaits = append(localWaits, dstChain...)
	_ = floor // device-side op: cross-node deps already folded into srcRB

	resp := new(protocol.EventResp)
	id, pend := q.ctx.sess.issue(node, &protocol.CopyBufferReq{
		QueueID:    qid,
		SrcID:      srcRB.id,
		DstID:      dstRB.id,
		SrcOffset:  srcOffset,
		DstOffset:  dstOffset,
		Size:       size,
		WaitEvents: localWaits,
	}, resp)
	ev := &Event{dev: dev, remoteID: id, queue: q, pending: pend, resp: resp,
		trace: q.ctx.sess.traceCmd(trace.KindCopy, dev, qid, size, 0, 0)}
	q.track(ev)
	// Anti-dependency on the source: a later writer of this replica — a
	// same-node kernel on another queue, say — must wait until the copy has
	// read it, or the copy would observe the later write's bytes (the push
	// paths chain the same way; deep pipelines, like recovery replay, hit
	// this window).
	srcRB.lastEvent = id
	srcRB.lastEv = ev
	// This node's replica is now the only valid holder of the copied
	// range; validity outside it is untouched everywhere.
	dstEnd := dstOffset + size
	//lint:ignore haoclvet/lockguard dst.mu is held via the address-ordered first/second aliases locked above
	for other, orb := range dst.remote {
		if other != node {
			orb.valid.Remove(dstOffset, dstEnd)
		}
	}
	//lint:ignore haoclvet/lockguard dst.mu is held via the address-ordered first/second aliases locked above
	dst.hostValid.Remove(dstOffset, dstEnd)
	dstRB.valid.Add(dstOffset, dstEnd)
	dstRB.lastEvent = id
	dstRB.lastEv = ev
	q.ctx.sess.logCommand(&copyLog{q: q, src: src, dst: dst, srcOff: srcOffset, dstOff: dstOffset, size: size})
	return ev, nil
}

// Program is OpenCL program source plus its per-node builds. The host
// parses the source locally with the same front end the nodes use, so arg
// validation and written-buffer analysis happen without a round trip.
type Program struct {
	ctx    *Context
	source string
	parsed *clc.Program

	mu      sync.Mutex
	remote  map[*NodeHandle]uint64 // guarded by mu
	log     string                 // guarded by mu
	built   bool                   // guarded by mu
	kernels []*Kernel              // guarded by mu
}

// CreateProgram parses source and returns an unbuilt program
// (clCreateProgramWithSource).
func (c *Context) CreateProgram(source string) (*Program, error) {
	parsed, err := clc.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	p := &Program{
		ctx:    c,
		source: source,
		parsed: parsed,
		remote: make(map[*NodeHandle]uint64),
	}
	c.regMu.Lock()
	c.programs = append(c.programs, p)
	c.regMu.Unlock()
	return p, nil
}

// Build compiles the program on every node in the context (clBuildProgram).
func (p *Program) Build() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.built {
		return nil
	}
	snap := p.ctx.remoteSnapshot()
	for _, node := range sortedNodeKeys(snap) {
		var resp protocol.BuildProgramResp
		err := p.ctx.sess.call(node, &protocol.BuildProgramReq{
			ContextID: snap[node],
			Source:    p.source,
		}, &resp)
		p.log += resp.Log
		if err != nil {
			return fmt.Errorf("core: build on %q: %w", node.name, err)
		}
		p.remote[node] = resp.ProgramID
	}
	p.built = true
	return nil
}

// BuildLog returns the accumulated build logs.
func (p *Program) BuildLog() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.log
}

// KernelNames lists kernels found in the source.
func (p *Program) KernelNames() []string { return p.parsed.KernelNames() }

// argBinding is one argument set by SetArg, pending until launch.
type argBinding struct {
	kind     protocol.ArgKind
	buf      *Buffer
	scalar   []byte
	localLen int64
}

// Kernel is one kernel instantiated from a program (clCreateKernel). Its
// remote instances are created lazily on each node it launches on.
type Kernel struct {
	prog *Program
	name string
	sig  *clc.Kernel

	mu       sync.Mutex
	remote   map[*NodeHandle]uint64 // guarded by mu
	args     []argBinding           // guarded by mu
	released bool                   // guarded by mu
}

// CreateKernel instantiates the named kernel.
func (p *Program) CreateKernel(name string) (*Kernel, error) {
	p.mu.Lock()
	built := p.built
	p.mu.Unlock()
	if !built {
		return nil, fmt.Errorf("core: program must be built before creating kernel %q", name)
	}
	sig, ok := p.parsed.Kernel(name)
	if !ok {
		return nil, fmt.Errorf("core: program has no kernel %q (has %v)", name, p.KernelNames())
	}
	k := &Kernel{
		prog:   p,
		name:   name,
		sig:    sig,
		remote: make(map[*NodeHandle]uint64),
		args:   make([]argBinding, len(sig.Params)),
	}
	p.mu.Lock()
	p.kernels = append(p.kernels, k)
	p.mu.Unlock()
	return k, nil
}

// isReleased reports whether the kernel was released; the command log
// skips replaying launches of released kernels.
func (k *Kernel) isReleased() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.released
}

// Name returns the kernel's name.
func (k *Kernel) Name() string { return k.name }

// NumArgs returns the kernel's parameter count.
func (k *Kernel) NumArgs() int { return len(k.sig.Params) }

// SetArg binds argument index to value (clSetKernelArg). Accepted values:
// *Buffer for global/constant pointer parameters, LocalSpace for local
// pointer parameters, and fixed-size scalars (int, int32, uint32, int64,
// uint64, float32, float64, []byte) for by-value parameters.
func (k *Kernel) SetArg(index int, value any) error {
	if index < 0 || index >= len(k.sig.Params) {
		return fmt.Errorf("core: kernel %q has no arg %d (takes %d)", k.name, index, len(k.sig.Params))
	}
	param := k.sig.Params[index]
	var binding argBinding
	switch v := value.(type) {
	case *Buffer:
		if !param.Pointer || param.Space == clc.SpaceLocal {
			return fmt.Errorf("core: kernel %q arg %d (%s): buffer bound to non-buffer parameter",
				k.name, index, param.Name)
		}
		binding = argBinding{kind: protocol.ArgBuffer, buf: v}
	case LocalSpace:
		if param.Space != clc.SpaceLocal {
			return fmt.Errorf("core: kernel %q arg %d (%s): local memory bound to non-local parameter",
				k.name, index, param.Name)
		}
		if v <= 0 {
			return fmt.Errorf("core: kernel %q arg %d: local size must be positive", k.name, index)
		}
		binding = argBinding{kind: protocol.ArgLocal, localLen: int64(v)}
	default:
		if param.Pointer {
			return fmt.Errorf("core: kernel %q arg %d (%s): scalar bound to pointer parameter",
				k.name, index, param.Name)
		}
		scalar := kernel.EncodeScalar(value)
		if want := clc.ScalarSize(param.Type); want != 0 && want != len(scalar) {
			return fmt.Errorf("core: kernel %q arg %d (%s): %s wants %d bytes, got %d",
				k.name, index, param.Name, param.Type, want, len(scalar))
		}
		binding = argBinding{kind: protocol.ArgScalar, scalar: scalar}
	}
	k.mu.Lock()
	k.args[index] = binding
	k.mu.Unlock()
	return nil
}

// LocalSpace requests n bytes of per-work-group local memory when passed to
// SetArg.
type LocalSpace int64

// remoteOn lazily instantiates the kernel on a node.
func (k *Kernel) remoteOn(node *NodeHandle) (uint64, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.released {
		return 0, fmt.Errorf("core: kernel %q was released", k.name)
	}
	if id, ok := k.remote[node]; ok {
		return id, nil
	}
	k.prog.mu.Lock()
	progID, ok := k.prog.remote[node]
	k.prog.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("core: program not built on node %q", node.name)
	}
	var resp protocol.ObjectResp
	err := k.prog.ctx.sess.call(node, &protocol.CreateKernelReq{ProgramID: progID, Name: k.name}, &resp)
	if err != nil {
		return 0, fmt.Errorf("core: create kernel %q on %q: %w", k.name, node.name, err)
	}
	k.remote[node] = resp.ID
	return resp.ID, nil
}

// Release frees the kernel's remote instances on every node that created
// one (clReleaseKernel), fire-and-forget like every release; the kernel is
// unusable afterwards — a later launch refuses instead of silently
// recreating the remote instances.
func (k *Kernel) Release() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, node := range sortedNodeKeys(k.remote) {
		k.prog.ctx.sess.releaseAsync(node, protocol.ObjKernel, k.remote[node])
	}
	k.remote = make(map[*NodeHandle]uint64)
	k.released = true
	return nil
}

// LaunchOptions tune one EnqueueKernel call.
type LaunchOptions struct {
	// CostFlops/CostBytes override the kernel's cost model, letting the
	// experiment harness model paper-scale inputs while executing
	// functionally on reduced data (DESIGN.md §1).
	CostFlops int64
	CostBytes int64
}

// EnqueueKernel launches the kernel over the NDRange on q's device
// (clEnqueueNDRangeKernel). Buffer arguments are migrated to the device's
// node as needed; written buffers (non-const global pointers in the
// kernel's signature) invalidate other replicas. The launch is pipelined:
// the call returns once the request — and any migration writes it depends
// on — are on the wire, without a round trip.
func (q *Queue) EnqueueKernel(k *Kernel, global, local []int, waits []*Event, opts *LaunchOptions) (*Event, error) {
	// Snapshot the argument bindings before the retry loop: a SetArg racing
	// the recovery retry must not leak into the replayed launch.
	k.mu.Lock()
	bindings := make([]argBinding, len(k.args))
	copy(bindings, k.args)
	k.mu.Unlock()

	var ev *Event
	err := q.ctx.rt.withRecovery(func() error {
		var kerr error
		ev, kerr = q.enqueueKernelBound(k, bindings, global, local, waits, opts)
		return kerr
	})
	return ev, err
}

// enqueueKernelBound is the non-recovering EnqueueKernel internal, taking
// the argument bindings as an explicit snapshot so the command log can
// replay the launch exactly as issued.
func (q *Queue) enqueueKernelBound(k *Kernel, bindings []argBinding, global, local []int, waits []*Event, opts *LaunchOptions) (*Event, error) {
	if err := q.stickyErr(); err != nil {
		return nil, err
	}
	if k.prog.ctx.sess != q.ctx.sess {
		return nil, fmt.Errorf("core: launch kernel %q of tenant %q: %w",
			k.name, k.prog.ctx.sess.tenant, ErrCrossSession)
	}
	dev, qid := q.binding()
	node := dev.node
	remoteKernel, err := k.remoteOn(node)
	if err != nil {
		return nil, err
	}

	localWaits, floor, err := q.ctx.sess.splitWaits(node, waits)
	if err != nil {
		return nil, err
	}
	wireArgs := make([]protocol.KernelArg, len(bindings))
	var msgBytes int64 = controlMsgBytes
	var written []*Buffer
	for i, bind := range bindings {
		param := k.sig.Params[i]
		switch bind.kind {
		case protocol.ArgBuffer:
			if bind.buf.ctx.sess != q.ctx.sess {
				return nil, fmt.Errorf("core: kernel %q arg %d: buffer of tenant %q: %w",
					k.name, i, bind.buf.ctx.sess.tenant, ErrCrossSession)
			}
			bind.buf.mu.Lock()
			// A kernel may touch any byte of its buffer arguments, so the
			// whole replica must be resident (delta migration still moves
			// only the stale ranges of it).
			rb, err := bind.buf.ensureResident(node, 0, bind.buf.size)
			if err != nil {
				bind.buf.mu.Unlock()
				return nil, fmt.Errorf("core: kernel %q arg %d: %w", k.name, i, err)
			}
			chain, err := rb.chainWaits()
			if err != nil {
				bind.buf.mu.Unlock()
				return nil, fmt.Errorf("core: kernel %q arg %d: %w", k.name, i, err)
			}
			localWaits = append(localWaits, chain...)
			wireArgs[i] = protocol.KernelArg{Kind: protocol.ArgBuffer, BufferID: rb.id}
			if param.Pointer && !param.Const && param.Space != clc.SpaceConstant {
				written = append(written, bind.buf)
			}
			bind.buf.mu.Unlock()
		case protocol.ArgScalar:
			wireArgs[i] = protocol.KernelArg{Kind: protocol.ArgScalar, Scalar: bind.scalar}
			msgBytes += int64(len(bind.scalar))
		case protocol.ArgLocal:
			wireArgs[i] = protocol.KernelArg{Kind: protocol.ArgLocal, LocalLen: bind.localLen}
		default:
			return nil, fmt.Errorf("core: kernel %q arg %d (%s) was never set", k.name, i, param.Name)
		}
	}

	wireStart, arrival := q.ctx.sess.chargeNIC(floor, msgBytes)
	req := &protocol.EnqueueKernelReq{
		QueueID:    qid,
		KernelID:   remoteKernel,
		Global:     toInt64s(global),
		Local:      toInt64s(local),
		Args:       wireArgs,
		SimArrival: int64(arrival),
		WaitEvents: localWaits,
	}
	if opts != nil {
		req.CostFlops = opts.CostFlops
		req.CostBytes = opts.CostBytes
	}
	resp := new(protocol.EventResp)
	id, pend := q.ctx.sess.issue(node, req, resp)
	ev := &Event{dev: dev, remoteID: id, queue: q, pending: pend, resp: resp, isKernel: true,
		trace: q.ctx.sess.traceCmd(trace.KindKernel, dev, qid, msgBytes, wireStart, arrival)}
	q.track(ev)

	// Written-buffer coherence at issue time. The monotonic guard keeps a
	// concurrent later-issued writer's chain intact: event IDs are assigned
	// in wire order, so a smaller ID must never overwrite a larger one.
	for _, b := range written {
		b.mu.Lock()
		// A kernel may write any byte, so the launch node's replica —
		// fully resident since arg setup above — becomes the only valid
		// holder of the whole buffer.
		for other, orb := range b.remote {
			if other != node {
				orb.valid.Reset()
			}
		}
		b.hostValid.Reset()
		if rb := b.remote[node]; rb != nil {
			rb.valid.Add(0, b.size)
			if id > rb.lastEvent {
				rb.lastEvent = id
				rb.lastEv = ev
			}
		}
		b.mu.Unlock()
	}
	var optsCopy *LaunchOptions
	if opts != nil {
		o := *opts
		optsCopy = &o
	}
	q.ctx.sess.logCommand(&kernelLog{
		q:        q,
		k:        k,
		bindings: bindings,
		global:   append([]int(nil), global...),
		local:    append([]int(nil), local...),
		opts:     optsCopy,
	})
	return ev, nil
}

func toInt64s(vs []int) []int64 {
	out := make([]int64, len(vs))
	for i, v := range vs {
		out[i] = int64(v)
	}
	return out
}
