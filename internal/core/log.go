package core

// The command log is the replay substrate of crash recovery (DESIGN.md §7):
// every mutating command — writes, copies, kernel launches, broadcasts — is
// appended in issue order, and after a node loss the runtime re-issues the
// whole log against zeroed buffer state. Buffer contents are a pure
// function of the mutation history (uninitialized bytes read as
// deterministic zeros), so the replay reconstructs exactly the bytes the
// cluster held before the crash, with the dead node's share re-placed on
// survivors. Reads and synchronization points are not logged: they do not
// change contents.
//
// Entries reference live host-side objects (queues, buffers, kernels), not
// wire IDs: replay goes through the same enqueue internals as the original
// commands, so re-binding a queue to a surviving device or re-allocating a
// replica transparently redirects the replayed traffic. Entries whose
// objects were released since are skipped — releasing an object declares
// its contents expendable.

// logEntry is one replayable mutation. The log itself lives on the Session
// (see Session.logCommand/replayLog): recovery replays only the logs of
// sessions the dead node touched.
type logEntry interface {
	// replay re-issues the mutation through the enqueue internals. The
	// runtime's replaying flag is set, so nothing is logged twice.
	replay(rt *Runtime) error
	// skip reports whether the entry's objects were released, making the
	// mutation unreplayable (and its contents expendable by declaration).
	skip() bool
}

// writeLog replays EnqueueWrite.
type writeLog struct {
	q    *Queue
	b    *Buffer
	off  int64
	data []byte // private copy: the caller may reuse its slice
}

func (l *writeLog) replay(rt *Runtime) error {
	_, err := l.q.enqueueWrite(l.b, l.off, l.data)
	return err
}

func (l *writeLog) skip() bool { return l.b.isReleased() }

// copyLog replays EnqueueCopy.
type copyLog struct {
	q              *Queue
	src, dst       *Buffer
	srcOff, dstOff int64
	size           int64
}

func (l *copyLog) replay(rt *Runtime) error {
	_, err := l.q.enqueueCopy(l.src, l.dst, l.srcOff, l.dstOff, l.size)
	return err
}

func (l *copyLog) skip() bool { return l.src.isReleased() || l.dst.isReleased() }

// kernelLog replays EnqueueKernel with the argument bindings snapshotted at
// the original launch — SetArg calls made since must not leak backwards in
// time.
type kernelLog struct {
	q        *Queue
	k        *Kernel
	bindings []argBinding
	global   []int
	local    []int
	opts     *LaunchOptions
}

func (l *kernelLog) replay(rt *Runtime) error {
	_, err := l.q.enqueueKernelBound(l.k, l.bindings, l.global, l.local, nil, l.opts)
	return err
}

func (l *kernelLog) skip() bool {
	if l.k.isReleased() {
		return true
	}
	for _, bind := range l.bindings {
		if bind.buf != nil && bind.buf.isReleased() {
			return true
		}
	}
	return false
}

// broadcastLog replays Context.Broadcast.
type broadcastLog struct {
	c    *Context
	b    *Buffer
	data []byte
	qs   []*Queue
}

func (l *broadcastLog) replay(rt *Runtime) error {
	_, err := l.c.broadcast(l.b, l.data, l.qs)
	return err
}

func (l *broadcastLog) skip() bool { return l.b.isReleased() }
