// Package core implements HaoCL's host-side runtime: the engine behind the
// public wrapper API in package haocl.
//
// It owns the connections to every Node Management Process, the global
// device table assembled from their handshakes (the clGetDeviceIDs mapping
// mechanism of paper §III-C), buffer placement and migration across nodes,
// the virtual-time network model for the Gigabit Ethernet backbone, and the
// task-graph scheduler that places kernels through pluggable policies.
//
// The package is checked by cmd/haoclvet (see DESIGN.md §9):
//
// haoclvet:deterministic
// haoclvet:errclass
//
// and its object locks nest in one documented order, innermost last:
//
// lock-order: Buffer.mu < Context.mu < Queue.mu < Kernel.mu < Program.mu < Context.regMu < Context.remoteMu
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/haocl-project/haocl/internal/cluster"
	"github.com/haocl-project/haocl/internal/profile"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/sched"
	"github.com/haocl-project/haocl/internal/sim"
	"github.com/haocl-project/haocl/internal/trace"
	"github.com/haocl-project/haocl/internal/transport"
	"github.com/haocl-project/haocl/internal/vtime"
)

// controlMsgBytes approximates the wire size of a control message (no bulk
// payload) for the network model.
const controlMsgBytes = 256

// Options configures a runtime.
type Options struct {
	// Config describes the cluster. Required.
	Config *cluster.Config
	// Dialer reaches the nodes; TCPDialer for real clusters, a MemNetwork
	// for in-process ones. Required.
	Dialer transport.Dialer
	// Policy is the default scheduling policy for task graphs. Optional;
	// defaults to the heterogeneity-aware policy.
	Policy sched.Policy
	// ClientName labels this host in node logs.
	ClientName string
}

// Node liveness states (NodeHandle.state). A handle is alive while its
// connection works, flips to dead the instant the transport reports the
// connection down (OnDown), and moves to removed once recovery has
// re-placed its work on survivors. ReconnectNode moves removed → alive.
const (
	stateAlive int32 = iota
	stateDead
	stateRemoved
)

// NodeHandle is one connected device node.
type NodeHandle struct {
	name string
	addr string

	// client is the node's pooled connection. It is an atomic pointer
	// because ReconnectNode swaps it for a fresh dial while concurrent
	// session goroutines issue commands through it: a racing caller loads
	// either the old (closed, failing cleanly) or the new client, never a
	// torn handle.
	client atomic.Pointer[transport.Client]

	// state is the handle's liveness (stateAlive/stateDead/stateRemoved);
	// the transport's OnDown hook flips alive → dead, recovery dead →
	// removed, rejoin removed → alive.
	state atomic.Int32

	// bootID is the node incarnation reported in the last Hello: a rejoin
	// that comes back with a different bootID is a fresh process whose
	// objects and replicas are all gone. Atomic for the same rejoin swap
	// as client.
	bootID atomic.Uint64

	// wireVersion is the protocol version the Hello handshake negotiated
	// for this connection; batching is active iff it is at least
	// protocol.VersionBatch. Atomic for the same rejoin swap as client.
	wireVersion atomic.Uint32

	// issueMu makes (event-ID assignment, frame write) atomic so that wire
	// order equals event-ID order — the ordering contract the node's FIFO
	// dispatch turns into in-order command execution. eventID counts the
	// host-assigned completion-event IDs for this connection. The counter
	// survives reconnects: a restarted node has no old event records, so
	// continuing the sequence keeps IDs unique without coordination.
	issueMu sync.Mutex
	eventID uint64 // guarded by issueMu
}

// Name returns the node's configured name.
func (n *NodeHandle) Name() string { return n.name }

// Alive reports whether the node's connection is currently believed good.
func (n *NodeHandle) Alive() bool { return n.state.Load() == stateAlive }

// WireVersion reports the protocol version negotiated with this node.
func (n *NodeHandle) WireVersion() uint32 { return n.wireVersion.Load() }

// DeviceRef is one device in the cluster-wide table.
type DeviceRef struct {
	node *NodeHandle
	info protocol.DeviceInfo
	key  profile.DeviceKey
}

// Info returns the device's descriptor.
func (d *DeviceRef) Info() protocol.DeviceInfo { return d.info }

// Node returns the owning node.
func (d *DeviceRef) Node() *NodeHandle { return d.node }

// Key returns the device's cluster-wide key.
func (d *DeviceRef) Key() profile.DeviceKey { return d.key }

// Metrics aggregates the virtual-time accounting for one run, feeding the
// Fig. 3 breakdown (DataCreate / DataTransfer / ComputeTime) and the Fig. 2
// end-to-end times.
type Metrics struct {
	// DataCreate is host-side input materialization time.
	DataCreate vtime.Duration
	// Transfer is total occupancy of the host's network interface.
	Transfer vtime.Duration
	// ComputeBusy is per-device busy time executing kernels.
	ComputeBusy map[profile.DeviceKey]vtime.Duration
	// Makespan is the latest virtual completion instant observed.
	Makespan vtime.Time
	// Commands counts protocol round trips.
	Commands int64
	// WireBytes counts total modeled wire traffic, both directions: the
	// sum of HostWireBytes and PeerWireBytes, kept for compatibility with
	// pre-p2p consumers.
	WireBytes int64
	// HostWireBytes counts modeled bytes through the host NIC — the
	// number the p2p data plane shrinks to ~control-frame traffic, since
	// host-planned node→node pushes never cross the host link.
	HostWireBytes int64
	// PeerWireBytes counts modeled bytes over node↔node links (migration
	// pushes and broadcast forwarding hops). These never contend with the
	// host NIC and are excluded from the Transfer occupancy metric.
	PeerWireBytes int64
	// Recoveries counts node-loss recoveries: each one re-placed the dead
	// node's work on survivors and replayed the command log.
	Recoveries int64
	// ReplayedCommands counts log entries re-issued across all recoveries.
	ReplayedCommands int64
}

// Compute reports the busiest device's kernel time: with the workload
// data-partitioned evenly, this is the compute component of the critical
// path.
func (m *Metrics) Compute() vtime.Duration {
	var max vtime.Duration
	for _, d := range m.ComputeBusy {
		if d > max {
			max = d
		}
	}
	return max
}

// TotalCompute sums kernel time across devices.
func (m *Metrics) TotalCompute() vtime.Duration {
	var sum vtime.Duration
	for _, d := range m.ComputeBusy {
		sum += d
	}
	return sum
}

// Runtime is the host-side engine: the cluster substrate shared by every
// session. It owns the node connections, the device table, the virtual-time
// links and crash recovery; all per-tenant state — object namespaces, event
// tracking, release drains, command logs, migration mode, policy, metrics —
// lives on Session. The Runtime-level convenience API (CreateContext,
// Flush, SetMigrationMode, ...) routes through an implicit default session,
// so single-tenant hosts keep the pre-session semantics unchanged.
type Runtime struct {
	userID        string
	clientName    string
	defaultPolicy sched.Policy
	dialer        transport.Dialer

	nodes   []*NodeHandle
	devices []*DeviceRef
	monitor *profile.Monitor

	// closing suppresses the OnDown → dead transition during orderly
	// teardown, so Close does not look like a cluster-wide crash.
	closing atomic.Bool

	// gen is the recovery generation: bumped after every completed
	// recovery. Events stamp the generation they were issued under; an
	// event from an older generation is never referenced on the wire again
	// (its node-side record may be gone or poisoned) and its failure is
	// absolved — the replay re-established its effect.
	gen atomic.Uint64

	// epoch is the membership generation shipped in Hello requests. Every
	// death or (re)join bumps it; nodes that see a higher epoch drop their
	// pooled peer connections and cancel parked push rendezvous.
	epoch uint64 // guarded by recoverMu

	// recoverMu serializes recovery and rejoin; replaying marks the replay
	// phase so re-issued commands are not logged again.
	recoverMu sync.Mutex
	replaying atomic.Bool

	// trc is the runtime-level tracing attachment (nil = tracing off);
	// one Run per SetTracer call. Atomic so the hot enqueue path reads it
	// lock-free.
	trc atomic.Pointer[trace.Run]

	// sessMu guards the session registry: every open session, plus the
	// lazily created default session backing the Runtime-level API.
	sessMu     sync.Mutex
	sessions   []*Session // guarded by sessMu
	nextSessID uint64     // guarded by sessMu
	defSess    *Session   // guarded by sessMu

	nicOut  *vtime.Link // host NIC egress (paper: single host node)
	nicIn   *vtime.Link // host NIC ingress (full-duplex GbE)
	hostMem *vtime.Link // host data-creation resource

	// mu guards the aggregate metrics (the sum over all sessions, which
	// Runtime.Metrics reports) and the push-token counter.
	mu        sync.Mutex
	metrics   Metrics // guarded by mu
	pushToken uint64  // guarded by mu; rendezvous tokens for node-to-node pushes
}

// pendingRelease is one fire-and-forget Release awaiting its ack.
type pendingRelease struct {
	node *NodeHandle
	kind protocol.ObjectKind
	id   uint64
	pend *transport.Pending
}

// Connect dials every node in the configuration, performs the Hello
// handshake, and assembles the global device table.
func Connect(opts Options) (*Runtime, error) {
	if opts.Config == nil || opts.Dialer == nil {
		return nil, fmt.Errorf("core: Config and Dialer are required")
	}
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	policy := opts.Policy
	if policy == nil {
		policy = sched.HeteroAware{}
	}
	rt := &Runtime{
		userID:        opts.Config.UserID,
		clientName:    opts.ClientName,
		defaultPolicy: policy,
		dialer:        opts.Dialer,
		monitor:       profile.NewMonitor(),
		nicOut:        sim.NewHostNIC(),
		nicIn:         sim.NewHostNIC(),
		hostMem:       sim.NewHostMemory(),
		epoch:         1,
	}
	rt.metrics.ComputeBusy = make(map[profile.DeviceKey]vtime.Duration)

	// Ship the full topology with every Hello so nodes can dial each other
	// for direct peer-to-peer pushes (the host plans, nodes move data).
	peers := make([]protocol.PeerAddr, 0, len(opts.Config.Nodes))
	for _, spec := range opts.Config.Nodes {
		peers = append(peers, protocol.PeerAddr{Name: spec.Name, Addr: spec.Addr})
	}

	for _, spec := range opts.Config.Nodes {
		client, err := opts.Dialer.Dial(spec.Addr)
		if err != nil {
			rt.Close()
			return nil, fmt.Errorf("core: connect node %q: %w", spec.Name, err)
		}
		nh := &NodeHandle{name: spec.Name, addr: spec.Addr}
		nh.client.Store(client)
		resp, err := hello(client, rt.userID, rt.clientName, peers, rt.epoch)
		if err != nil {
			rt.Close()
			client.Close()
			return nil, fmt.Errorf("core: handshake with node %q: %w", spec.Name, err)
		}
		nh.wireVersion.Store(resp.WireVersion)
		nh.bootID.Store(resp.BootID)
		if resp.WireVersion >= protocol.VersionBatch {
			// Both ends speak v3: coalesce small control frames into
			// Batch envelopes. Older nodes keep the plain v2 write path.
			client.EnableBatching()
		}
		rt.watchNode(nh, client)
		rt.nodes = append(rt.nodes, nh)
		for _, info := range resp.Devices {
			ref := &DeviceRef{
				node: nh,
				info: info,
				key:  profile.DeviceKey{Node: nh.name, DeviceID: info.ID},
			}
			rt.devices = append(rt.devices, ref)
			rt.monitor.RegisterDevice(nh.name, info)
		}
	}
	if len(rt.devices) == 0 {
		rt.Close()
		return nil, fmt.Errorf("core: cluster exposes no devices")
	}
	return rt, nil
}

// hello performs the handshake via the shared transport negotiation (the
// same path nodes use when dialing each other as peers).
func hello(client *transport.Client, userID, clientName string, peers []protocol.PeerAddr, epoch uint64) (protocol.HelloResp, error) {
	return transport.Handshake(client, protocol.HelloReq{
		UserID:      userID,
		ClientName:  clientName,
		WireVersion: protocol.Version,
		Peers:       peers,
		Epoch:       epoch,
	})
}

// watchNode installs the crash detector: the transport invokes the hook
// exactly once when the connection dies, before any pending future
// unblocks, so every failure a caller observes afterwards classifies as
// node loss. Orderly Close is not a crash.
func (rt *Runtime) watchNode(nh *NodeHandle, client *transport.Client) {
	client.OnDown(func(error) {
		if rt.closing.Load() {
			return
		}
		nh.state.CompareAndSwap(stateAlive, stateDead)
	})
}

// ShutdownCluster asks every Node Management Process to drain and exit,
// then closes the connections — the orderly teardown of a dedicated
// cluster (cmd/haocl-node exits on this signal).
func (rt *Runtime) ShutdownCluster() error {
	var firstErr error
	for _, n := range rt.nodes {
		if err := rt.call(n, &protocol.ShutdownReq{}, nil); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: shutdown %q: %w", n.name, err)
		}
	}
	if err := rt.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Close shuts every node connection down, draining every session's
// outstanding releases first so their failures are reported instead of
// dying with the sockets.
func (rt *Runtime) Close() error {
	rt.closing.Store(true)
	var firstErr error
	for _, s := range rt.allSessions() {
		if err := s.drainReleases(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, n := range rt.nodes {
		if err := n.client.Load().Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Devices lists every device in the cluster, optionally filtered by type
// (0 lists all) — the unified platform view the wrapper library exposes
// through clGetDeviceIDs. Devices on nodes that crashed (and have not
// rejoined) are hidden: the scheduler must not place work there.
func (rt *Runtime) Devices(t protocol.DeviceType) []*DeviceRef {
	var out []*DeviceRef
	for _, d := range rt.devices {
		if !d.node.Alive() {
			continue
		}
		if t == 0 || d.info.Type == t {
			out = append(out, d)
		}
	}
	return out
}

// Nodes lists the connected nodes.
func (rt *Runtime) Nodes() []*NodeHandle { return rt.nodes }

// Monitor exposes the runtime resource monitor.
func (rt *Runtime) Monitor() *profile.Monitor { return rt.monitor }

// Policy returns the default session's scheduling policy.
func (rt *Runtime) Policy() sched.Policy { return rt.defaultSession().Policy() }

// SetPolicy swaps the default session's scheduling policy (the "user
// customized scheduling policies" hook). Sessions opened explicitly carry
// their own policy and are unaffected.
func (rt *Runtime) SetPolicy(p sched.Policy) { rt.defaultSession().SetPolicy(p) }

// call performs one protocol round trip and counts it. Object lifecycle
// operations (creates, builds, releases, status polls) stay synchronous:
// they are control-path and their results are needed immediately. The
// result is classified so callers' recovery decisions (shouldRecover in
// withRecovery, rehelloLocked) see node loss rather than a raw transport
// error.
//
// haoclvet:wire
func (rt *Runtime) call(n *NodeHandle, req protocol.Message, resp protocol.Message) error {
	rt.mu.Lock()
	rt.metrics.Commands++
	rt.mu.Unlock()
	return classifyNodeErr(n, n.client.Load().Call(req, resp))
}

// maxPendingReleases bounds the un-reaped fire-and-forget releases: a
// long-running host that releases objects but never hits a Flush/Close
// must not grow the pending list without limit, so crossing the threshold
// drains it in place. The acks being waited on were pipelined long ago,
// so the amortized cost stays far below one round trip per release.
const maxPendingReleases = 256

// Flush resolves every session's outstanding pipelined commands and
// releases, waiting for the in-flight responses. Command failures do not
// surface here; they stay sticky on their queues and are reported by the
// next Finish/Wait on them. Release failures have no queue to stick to, so
// Flush returns the first session's sticky release error it finds
// (Session.Flush scopes it to one tenant).
func (rt *Runtime) Flush() error {
	var firstErr error
	for _, s := range rt.allSessions() {
		if err := s.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ModelDataCreate charges host-side creation of n bytes of input data
// against the virtual host-memory resource and returns the instant the
// data is ready — the Fig. 3 DataCreate component. Workload generators
// call this after materializing inputs. Routed through the default
// session; sessions opened explicitly use their own ModelDataCreate.
func (rt *Runtime) ModelDataCreate(n int64) vtime.Time {
	return rt.defaultSession().ModelDataCreate(n)
}

// nextPushToken mints a cluster-unique rendezvous token pairing one
// PushRange with its AwaitPush.
func (rt *Runtime) nextPushToken() uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.pushToken++
	return rt.pushToken
}

// MigrationMode selects how ensureResident moves stale buffer ranges.
type MigrationMode int

// Migration modes.
const (
	// MigrateDelta transfers only the stale byte ranges of the range a
	// command touches, moving replica-owned ranges directly node→node via
	// PushRange (the host stays the control plane) — the default.
	MigrateDelta MigrationMode = iota
	// MigrateFull widens every migration to the whole buffer, the
	// pre-range-coherence behavior. The coherence benchmark uses it as
	// the baseline; the two modes are functionally identical and charge
	// identical virtual time when a buffer is fully stale.
	MigrateFull
	// MigrateHostRelay keeps delta-range migration but relays every range
	// through the host shadow (pull to host, push to consumer) — the
	// pre-p2p data path, preserved as the benchmark baseline for the
	// node→node push plane.
	MigrateHostRelay
)

// SetMigrationMode switches the default session between p2p delta,
// full-buffer, and host-relay delta migration. The mode is per-session
// state: sessions opened explicitly flip their own mode without affecting
// other tenants.
func (rt *Runtime) SetMigrationMode(m MigrationMode) {
	rt.defaultSession().SetMigrationMode(m)
}

// Metrics returns a copy of the run's accumulated accounting aggregated
// over every session (per-tenant numbers come from Session.Metrics). It is a
// synchronization point: outstanding pipelined commands are drained first
// so the numbers cover every command issued so far.
func (rt *Runtime) Metrics() Metrics {
	rt.Flush()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := rt.metrics
	out.ComputeBusy = make(map[profile.DeviceKey]vtime.Duration, len(rt.metrics.ComputeBusy))
	for k, v := range rt.metrics.ComputeBusy {
		out.ComputeBusy[k] = v
	}
	return out
}

// PollStatus refreshes the monitor from every node, as the periodic
// profiling pull the scheduler relies on. The polls fan out as pipelined
// futures — one blocking round trip per node would make monitor freshness
// degrade linearly with cluster size, and a single slow node would stall
// the whole poll. Nodes that answer update the monitor even when others
// fail; the failures come back aggregated.
func (rt *Runtime) PollStatus() error {
	type poll struct {
		node *NodeHandle
		resp protocol.NodeStatusResp
		pend *transport.Pending
	}
	polls := make([]*poll, 0, len(rt.nodes))
	var errs []error
	for _, n := range rt.nodes {
		switch n.state.Load() {
		case stateRemoved:
			// Recovered away: not a member until it rejoins, so its
			// absence is expected, not a failure.
			continue
		case stateDead:
			// Detected down but not yet recovered: the poll is where the
			// operator learns about it.
			errs = append(errs, fmt.Errorf("core: status poll %q: %w", n.name, errNodeLost))
			continue
		}
		p := &poll{node: n}
		rt.mu.Lock()
		rt.metrics.Commands++
		rt.mu.Unlock()
		p.pend = n.client.Load().Go(&protocol.NodeStatusReq{}, &p.resp)
		polls = append(polls, p)
	}
	for _, p := range polls {
		// Classify before wrapping: a node that died mid-poll should
		// surface as node loss, exactly as one already marked dead above.
		if err := classifyNodeErr(p.node, p.pend.Wait()); err != nil {
			errs = append(errs, fmt.Errorf("core: status poll %q: %w", p.node.name, err))
			continue
		}
		rt.monitor.UpdateStatus(p.node.name, p.resp.Devices)
	}
	return errors.Join(errs...)
}

// TotalEnergy polls the cluster and reports consumed energy in joules.
func (rt *Runtime) TotalEnergy() (float64, error) {
	if err := rt.PollStatus(); err != nil {
		return 0, err
	}
	return rt.monitor.TotalEnergy(), nil
}
