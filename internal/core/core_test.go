package core_test

import (
	"errors"
	"strings"
	"testing"

	"github.com/haocl-project/haocl/internal/cluster"
	"github.com/haocl-project/haocl/internal/core"
	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/kernel"
	"github.com/haocl-project/haocl/internal/mem"
	"github.com/haocl-project/haocl/internal/node"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/sched"
	"github.com/haocl-project/haocl/internal/sim"
	"github.com/haocl-project/haocl/internal/transport"
)

const incrSource = `
__kernel void incr(__global float* x, const int n) {
    int i = get_global_id(0);
    if (i < n) x[i] += 1.0f;
}

__kernel void scale2(__global const float* in, __global float* out, const int n) {
    int i = get_global_id(0);
    if (i < n) out[i] = in[i] * 2.0f;
}
`

func testRegistry() *kernel.Registry {
	reg := kernel.NewRegistry()
	reg.MustRegister(&kernel.Spec{
		Name: "incr", NumArgs: 2,
		Func: func(it *kernel.Item, args []kernel.Arg) {
			i := it.GlobalID(0)
			if i < args[1].Int() {
				args[0].Float32s()[i]++
			}
		},
	})
	reg.MustRegister(&kernel.Spec{
		Name: "scale2", NumArgs: 3,
		Func: func(it *kernel.Item, args []kernel.Arg) {
			i := it.GlobalID(0)
			if i < args[2].Int() {
				args[1].Float32s()[i] = args[0].Float32s()[i] * 2
			}
		},
	})
	return reg
}

// startRuntime builds an in-process cluster and connects a runtime.
func startRuntime(t testing.TB, gpuNodes int) (*core.Runtime, func()) {
	t.Helper()
	cfg := cluster.Synthetic("core-test", 0, gpuNodes, 0, nil)
	icd := device.NewICD()
	sim.RegisterDrivers(icd, testRegistry())
	net := transport.NewMemNetwork()
	var servers []*transport.Server
	for _, ns := range cfg.Nodes {
		devCfgs, err := ns.DeviceConfigs()
		if err != nil {
			t.Fatal(err)
		}
		n, err := node.New(node.Options{Name: ns.Name, Devices: devCfgs, ICD: icd, ExecWorkers: 1, Dialer: net})
		if err != nil {
			t.Fatal(err)
		}
		srv := n.Serve()
		if err := net.Register(ns.Addr, srv); err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
	}
	rt, err := core.Connect(core.Options{Config: cfg, Dialer: net, ClientName: "core-test"})
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		rt.Close()
		for _, s := range servers {
			s.Close()
		}
	}
	return rt, cleanup
}

func TestConnectValidation(t *testing.T) {
	if _, err := core.Connect(core.Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
	cfg := cluster.Synthetic("u", 0, 1, 0, nil)
	net := transport.NewMemNetwork() // nothing registered
	if _, err := core.Connect(core.Options{Config: cfg, Dialer: net}); err == nil {
		t.Fatal("connect to unbound cluster succeeded")
	}
}

// TestBufferCoherenceAcrossNodes writes on node A, launches a kernel that
// mutates the buffer on A, then reads it through node B's queue: the
// runtime must migrate the dirty replica via the host.
func TestBufferCoherenceAcrossNodes(t *testing.T) {
	rt, cleanup := startRuntime(t, 2)
	defer cleanup()

	devs := rt.Devices(protocol.DeviceGPU)
	if len(devs) != 2 {
		t.Fatalf("devices = %d", len(devs))
	}
	ctx, err := rt.CreateContext(devs)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgram(incrSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}

	qA, err := ctx.CreateQueue(devs[0])
	if err != nil {
		t.Fatal(err)
	}
	qB, err := ctx.CreateQueue(devs[1])
	if err != nil {
		t.Fatal(err)
	}

	buf, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qA.EnqueueWrite(buf, 0, mem.F32Bytes([]float32{10, 20, 30, 40})); err != nil {
		t.Fatal(err)
	}

	k, err := prog.CreateKernel("incr")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArg(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArg(1, int32(4)); err != nil {
		t.Fatal(err)
	}
	ev, err := qA.EnqueueKernel(k, []int{4}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.End() <= 0 {
		t.Fatal("no virtual completion time")
	}

	// Read through node B: requires migration A -> host -> B.
	data, _, err := qB.EnqueueRead(buf, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	got := mem.BytesF32(data)
	want := []float32{11, 21, 31, 41}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d = %v, want %v (migration broke coherence)", i, got[i], want[i])
		}
	}
}

// TestWrittenBufferInvalidatesReplicas runs the same kernel on two nodes
// against a shared input: the second launch must see the original input,
// not the first launch's output, while a read-after-both sees node B's.
func TestKernelOrderingViaWaits(t *testing.T) {
	rt, cleanup := startRuntime(t, 1)
	defer cleanup()
	devs := rt.Devices(0)
	ctx, err := rt.CreateContext(devs)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgram(incrSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateQueue(devs[0])
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.CreateBuffer(8)
	if err != nil {
		t.Fatal(err)
	}
	wev, err := q.EnqueueWrite(buf, 0, mem.F32Bytes([]float32{0, 0}))
	if err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("incr")
	if err != nil {
		t.Fatal(err)
	}
	k.SetArg(0, buf)
	k.SetArg(1, int32(2))
	var last *core.Event
	for i := 0; i < 5; i++ {
		ev, err := q.EnqueueKernel(k, []int{2}, nil, []*core.Event{wev}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if last != nil && ev.Profile().Start < last.Profile().End {
			t.Fatalf("launch %d overlapped predecessor: %+v vs %+v", i, ev.Profile(), last.Profile())
		}
		last = ev
	}
	data, _, err := q.EnqueueRead(buf, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := mem.BytesF32(data); got[0] != 5 || got[1] != 5 {
		t.Fatalf("after 5 incr: %v", got)
	}
}

func TestBroadcastChainTiming(t *testing.T) {
	rt, cleanup := startRuntime(t, 4)
	defer cleanup()
	devs := rt.Devices(0)
	ctx, err := rt.CreateContext(devs)
	if err != nil {
		t.Fatal(err)
	}
	queues := make([]*core.Queue, len(devs))
	for i, d := range devs {
		q, err := ctx.CreateQueue(d)
		if err != nil {
			t.Fatal(err)
		}
		queues[i] = q
	}
	buf, err := ctx.CreateBuffer(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	buf.SetModelSize(256 << 20)
	data := make([]byte, 1<<20)
	data[12345] = 0xAB
	events, err := ctx.Broadcast(buf, data, queues)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("events = %d", len(events))
	}
	// Hops complete in chain order, each later than the one before.
	for i := 1; i < len(events); i++ {
		if events[i].End() <= events[i-1].End() {
			t.Fatalf("hop %d completed at %v, not after hop %d at %v",
				i, events[i].End(), i-1, events[i-1].End())
		}
	}
	// And far faster than star distribution: total span << 4 full sends.
	fullSend := float64(256<<20) / sim.GigabitBytesPerSec // seconds per full copy
	span := events[3].End().Seconds() - events[0].End().Seconds()
	if span > 3*fullSend/2 {
		t.Fatalf("chain span %.3fs looks like star distribution (full send %.3fs)", span, fullSend)
	}
	// Functionally every node received the payload.
	for _, q := range queues {
		out, _, err := q.EnqueueRead(buf, 12340, 10)
		if err != nil {
			t.Fatal(err)
		}
		if out[5] != 0xAB {
			t.Fatalf("node %s missing broadcast payload", q.Device().Key())
		}
	}
}

func TestBroadcastValidation(t *testing.T) {
	rt, cleanup := startRuntime(t, 1)
	defer cleanup()
	ctx, err := rt.CreateContext(rt.Devices(0))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Broadcast(buf, make([]byte, 16), nil); err == nil {
		t.Fatal("broadcast without queues accepted")
	}
	q, err := ctx.CreateQueue(rt.Devices(0)[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Broadcast(buf, make([]byte, 8), []*core.Queue{q}); err == nil {
		t.Fatal("partial broadcast accepted")
	}
}

func TestTaskGraphDependenciesAndScheduling(t *testing.T) {
	rt, cleanup := startRuntime(t, 3)
	defer cleanup()
	ctx, err := rt.CreateContext(rt.Devices(0))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgram(incrSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}

	a, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ctx.CreateBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	// Producer: a += 1 (twice); consumer: b = 2a; final: c = 2b.
	k1, _ := prog.CreateKernel("incr")
	k1.SetArg(0, a)
	k1.SetArg(1, int32(4))
	k2, _ := prog.CreateKernel("scale2")
	k2.SetArg(0, a)
	k2.SetArg(1, b)
	k2.SetArg(2, int32(4))
	k3, _ := prog.CreateKernel("scale2")
	k3.SetArg(0, b)
	k3.SetArg(1, c)
	k3.SetArg(2, int32(4))

	g := ctx.NewTaskGraph()
	t1 := g.Add("incr-a", k1, []int{4}, nil, nil)
	t2 := g.Add("scale-ab", k2, []int{4}, nil, nil, t1)
	t3 := g.Add("scale-bc", k3, []int{4}, nil, nil, t2)
	if err := g.Run(sched.LeastLoaded{}); err != nil {
		t.Fatal(err)
	}
	for _, task := range []*core.GraphTask{t1, t2, t3} {
		if task.AssignedDevice() == nil || task.Event() == nil {
			t.Fatalf("task %s not executed", task.Label())
		}
	}
	// Dependency order in virtual time.
	if t2.Event().Profile().Start < t1.Event().Profile().End ||
		t3.Event().Profile().Start < t2.Event().Profile().End {
		t.Fatal("graph dependencies violated in virtual time")
	}
	if g.Makespan() != t3.Event().End() {
		t.Fatalf("makespan %v != last task end %v", g.Makespan(), t3.Event().End())
	}

	// Functional result: a=1, b=2, c=4.
	q, err := ctx.CreateQueue(t3.AssignedDevice())
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := q.EnqueueRead(c, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := mem.BytesF32(data); got[0] != 4 {
		t.Fatalf("c[0] = %v, want 4", got[0])
	}
}

func TestTaskGraphForeignDependencyRejected(t *testing.T) {
	rt, cleanup := startRuntime(t, 1)
	defer cleanup()
	ctx, err := rt.CreateContext(rt.Devices(0))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgram(incrSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	buf, _ := ctx.CreateBuffer(16)
	k, _ := prog.CreateKernel("incr")
	k.SetArg(0, buf)
	k.SetArg(1, int32(4))

	other := ctx.NewTaskGraph()
	foreign := other.Add("foreign", k, []int{4}, nil, nil)

	g := ctx.NewTaskGraph()
	g.Add("depends-on-foreign", k, []int{4}, nil, nil, foreign)
	err = g.Run(nil)
	if err == nil || !strings.Contains(err.Error(), "outside this graph") {
		t.Fatalf("err = %v, want foreign-dependency rejection", err)
	}
}

func TestSetArgValidation(t *testing.T) {
	rt, cleanup := startRuntime(t, 1)
	defer cleanup()
	ctx, err := rt.CreateContext(rt.Devices(0))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgram(incrSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("incr")
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := ctx.CreateBuffer(16)
	if err := k.SetArg(5, buf); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := k.SetArg(1, buf); err == nil {
		t.Fatal("buffer bound to scalar parameter")
	}
	if err := k.SetArg(0, int32(3)); err == nil {
		t.Fatal("scalar bound to pointer parameter")
	}
	if err := k.SetArg(1, int64(3)); err == nil {
		t.Fatal("8-byte scalar bound to int parameter")
	}
	if err := k.SetArg(0, core.LocalSpace(64)); err == nil {
		t.Fatal("local memory bound to global parameter")
	}
	// Launch with an unset argument fails.
	q, _ := ctx.CreateQueue(rt.Devices(0)[0])
	k2, _ := prog.CreateKernel("incr")
	k2.SetArg(1, int32(4))
	if _, err := q.EnqueueKernel(k2, []int{4}, nil, nil, nil); err == nil {
		t.Fatal("launch with unset args accepted")
	}
	// CreateKernel before build / unknown kernel.
	if _, err := prog.CreateKernel("missing"); err == nil {
		t.Fatal("unknown kernel created")
	}
	prog2, err := ctx.CreateProgram(incrSource)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog2.CreateKernel("incr"); err == nil {
		t.Fatal("kernel created before build")
	}
}

func TestMetricsAccumulate(t *testing.T) {
	rt, cleanup := startRuntime(t, 2)
	defer cleanup()
	ctx, err := rt.CreateContext(rt.Devices(0))
	if err != nil {
		t.Fatal(err)
	}
	rt.ModelDataCreate(1 << 20)
	m := rt.Metrics()
	if m.DataCreate <= 0 {
		t.Fatal("data create not charged")
	}
	q, err := ctx.CreateQueue(rt.Devices(0)[0])
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := ctx.CreateBuffer(1 << 16)
	if _, err := q.EnqueueWrite(buf, 0, make([]byte, 1<<16)); err != nil {
		t.Fatal(err)
	}
	m = rt.Metrics()
	if m.Transfer <= 0 || m.Makespan <= 0 || m.Commands == 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.TotalCompute() != 0 {
		t.Fatal("compute charged for transfers")
	}
	if err := rt.PollStatus(); err != nil {
		t.Fatal(err)
	}
	if energy, err := rt.TotalEnergy(); err != nil || energy <= 0 {
		t.Fatalf("energy = %v, %v", energy, err)
	}
}

func TestReleaseQueue(t *testing.T) {
	rt, cleanup := startRuntime(t, 1)
	defer cleanup()
	ctx, err := rt.CreateContext(rt.Devices(0))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateQueue(rt.Devices(0)[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Release(); err != nil {
		t.Fatal(err)
	}
	var re *protocol.RemoteError
	if _, err := q.Finish(); !errors.As(err, &re) {
		t.Fatalf("finish on released queue: %v", err)
	}
}

func TestEnqueueCopy(t *testing.T) {
	rt, cleanup := startRuntime(t, 1)
	defer cleanup()
	ctx, err := rt.CreateContext(rt.Devices(0))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateQueue(rt.Devices(0)[0])
	if err != nil {
		t.Fatal(err)
	}
	src, _ := ctx.CreateBuffer(32)
	dst, _ := ctx.CreateBuffer(32)
	if _, err := q.EnqueueWrite(src, 0, mem.F32Bytes([]float32{1, 2, 3, 4, 5, 6, 7, 8})); err != nil {
		t.Fatal(err)
	}
	ev, err := q.EnqueueCopy(src, dst, 8, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ev.End() <= 0 {
		t.Fatal("no completion time")
	}
	data, _, err := q.EnqueueRead(dst, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := mem.BytesF32(data); got[0] != 3 || got[3] != 6 {
		t.Fatalf("copied %v, want [3 4 5 6]", got)
	}
	if _, err := q.EnqueueCopy(src, dst, 0, 0, 99); err == nil {
		t.Fatal("out-of-bounds copy accepted")
	}
	if _, err := q.EnqueueCopy(src, src, 0, 16, 8); err == nil {
		t.Fatal("same-buffer copy accepted")
	}
}

func TestEventRelease(t *testing.T) {
	rt, cleanup := startRuntime(t, 1)
	defer cleanup()
	ctx, err := rt.CreateContext(rt.Devices(0))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateQueue(rt.Devices(0)[0])
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := ctx.CreateBuffer(16)
	ev, err := q.EnqueueWrite(buf, 0, make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Release(rt); err != nil {
		t.Fatal(err)
	}
	if err := rt.Flush(); err != nil {
		t.Fatalf("first release failed: %v", err)
	}
	// Double release fails like any unknown object; releases are
	// fire-and-forget, so the failure surfaces at the next Flush as the
	// runtime's sticky release error.
	if err := ev.Release(rt); err != nil {
		t.Fatal(err)
	}
	var re *protocol.RemoteError
	if err := rt.Flush(); !errors.As(err, &re) || re.Code != protocol.CodeUnknownObject {
		t.Fatalf("double release error = %v, want unknown-object", err)
	}
	// The sticky release error keeps being reported.
	if err := rt.Flush(); err == nil {
		t.Fatal("sticky release error forgotten")
	}
}

func TestShutdownCluster(t *testing.T) {
	rt, cleanup := startRuntime(t, 2)
	defer cleanup()
	if err := rt.ShutdownCluster(); err != nil {
		t.Fatal(err)
	}
	// The runtime is unusable afterwards.
	if _, err := rt.CreateContext(rt.Devices(0)); err == nil {
		t.Fatal("context created after shutdown")
	}
}
