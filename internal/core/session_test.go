package core_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/haocl-project/haocl/internal/core"
	"github.com/haocl-project/haocl/internal/mem"
	"github.com/haocl-project/haocl/internal/sched"
)

// sessionLane is one session's working set on a single device: a context,
// a queue, a buffer and the incr kernel, ready to run lifecycle rounds.
type sessionLane struct {
	sess *core.Session
	ctx  *core.Context
	q    *core.Queue
	buf  *core.Buffer
	incr *core.Kernel
}

// openLane opens a session for tenant whose context spans ctxDevs and
// whose queue sits on ctxDevs[0].
func openLane(t *testing.T, rt *core.Runtime, tenant string, ctxDevs ...*core.DeviceRef) *sessionLane {
	t.Helper()
	dev := ctxDevs[0]
	s := rt.OpenSession(tenant)
	ctx, err := s.CreateContext(ctxDevs)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgram(incrSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("incr")
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateQueue(dev)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.CreateBuffer(16 * 4)
	if err != nil {
		t.Fatal(err)
	}
	return &sessionLane{sess: s, ctx: ctx, q: q, buf: buf, incr: k}
}

// round writes base..base+15 into the lane's buffer, increments it on the
// device and reads it back, failing on any mismatch.
func (l *sessionLane) round(base float32) error {
	in := make([]float32, 16)
	for i := range in {
		in[i] = base + float32(i)
	}
	if _, err := l.q.EnqueueWrite(l.buf, 0, mem.F32Bytes(in)); err != nil {
		return err
	}
	if err := l.incr.SetArg(0, l.buf); err != nil {
		return err
	}
	if err := l.incr.SetArg(1, int32(16)); err != nil {
		return err
	}
	if _, err := l.q.EnqueueKernel(l.incr, []int{16}, nil, nil, nil); err != nil {
		return err
	}
	data, _, err := l.q.EnqueueRead(l.buf, 0, 16*4)
	if err != nil {
		return err
	}
	got := mem.BytesF32(data)
	for i := range in {
		if got[i] != in[i]+1 {
			return fmt.Errorf("float %d = %v, want %v", i, got[i], in[i]+1)
		}
	}
	return nil
}

// TestSessionNamespaceIsolation: one session's queues refuse the other
// session's buffers, events and kernels with ErrCrossSession — the
// namespace boundary of DESIGN.md §8.
func TestSessionNamespaceIsolation(t *testing.T) {
	rt, cleanup := startRuntime(t, 1)
	defer cleanup()
	dev := rt.Devices(0)[0]
	a := openLane(t, rt, "tenant-a", dev)
	b := openLane(t, rt, "tenant-b", dev)

	evA, err := a.q.EnqueueWrite(a.buf, 0, make([]byte, 16*4))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := b.q.EnqueueWrite(a.buf, 0, make([]byte, 16*4)); !errors.Is(err, core.ErrCrossSession) {
		t.Fatalf("cross-session write: %v, want ErrCrossSession", err)
	}
	if _, _, err := b.q.EnqueueRead(a.buf, 0, 16*4); !errors.Is(err, core.ErrCrossSession) {
		t.Fatalf("cross-session read: %v, want ErrCrossSession", err)
	}
	if _, err := b.q.EnqueueWrite(b.buf, 0, make([]byte, 16*4), evA); !errors.Is(err, core.ErrCrossSession) {
		t.Fatalf("cross-session wait: %v, want ErrCrossSession", err)
	}
	if _, err := b.q.EnqueueKernel(a.incr, []int{16}, nil, nil, nil); !errors.Is(err, core.ErrCrossSession) {
		t.Fatalf("cross-session kernel: %v, want ErrCrossSession", err)
	}
	if err := b.incr.SetArg(0, b.buf); err != nil {
		t.Fatal(err)
	}
	if err := b.incr.SetArg(1, int32(16)); err != nil {
		t.Fatal(err)
	}
	// The refusals must not have poisoned b's own lane.
	if err := b.round(0); err != nil {
		t.Fatalf("tenant-b after refusals: %v", err)
	}
	if err := a.sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionReleaseErrorScoped: a release storm gone wrong (here: the
// same queue released twice, so the second ack reports an unknown object)
// surfaces as the offending session's sticky Flush error — and stays
// sticky — while the innocent session's Flush stays clean. Before the
// session refactor the runtime held one global sticky release error, so
// tenant A's teardown bug poisoned tenant B's Flush.
func TestSessionReleaseErrorScoped(t *testing.T) {
	rt, cleanup := startRuntime(t, 1)
	defer cleanup()
	dev := rt.Devices(0)[0]
	a := openLane(t, rt, "tenant-a", dev)
	b := openLane(t, rt, "tenant-b", dev)

	if err := a.q.Release(); err != nil {
		t.Fatal(err)
	}
	if err := a.q.Release(); err != nil {
		t.Fatal(err) // fire-and-forget: the failure arrives with the ack
	}
	if err := a.sess.Flush(); err == nil {
		t.Fatal("double release produced no sticky error on tenant-a")
	}
	if err := a.sess.Flush(); err == nil {
		t.Fatal("sticky release error vanished on second Flush")
	}
	if err := b.sess.Flush(); err != nil {
		t.Fatalf("tenant-a's release error leaked into tenant-b: %v", err)
	}
	if err := b.round(0); err != nil {
		t.Fatalf("tenant-b after a's failed release: %v", err)
	}
	if err := b.sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionPolicyAndMigrationIsolation: SetPolicy and SetMigrationMode
// act on one session only.
func TestSessionPolicyAndMigrationIsolation(t *testing.T) {
	rt, cleanup := startRuntime(t, 1)
	defer cleanup()
	a := rt.OpenSession("tenant-a")
	b := rt.OpenSession("tenant-b")
	defer a.Close()
	defer b.Close()

	if a.MigrationMode() != core.MigrateDelta || b.MigrationMode() != core.MigrateDelta {
		t.Fatalf("default modes = %v/%v, want delta", a.MigrationMode(), b.MigrationMode())
	}
	a.SetMigrationMode(core.MigrateFull)
	if b.MigrationMode() != core.MigrateDelta {
		t.Fatalf("a's SetMigrationMode changed b's mode to %v", b.MigrationMode())
	}
	if a.MigrationMode() != core.MigrateFull {
		t.Fatalf("a's mode = %v, want full", a.MigrationMode())
	}

	before := b.Policy().Name()
	a.SetPolicy(sched.NewUserDirected())
	if got := b.Policy().Name(); got != before {
		t.Fatalf("a's SetPolicy changed b's policy to %q", got)
	}
	if got := a.Policy().Name(); got != "user-directed" {
		t.Fatalf("a's policy = %q, want user-directed", got)
	}
}

// TestSessionConcurrentLifecycleCrash drives several tenants through full
// open → enqueue → flush → close lifecycles concurrently while a node they
// are split across dies mid-stream. Every tenant must finish with correct
// data, and recovery must replay only the tenants that had state on the
// dead node: survivor-only sessions record zero recoveries.
func TestSessionConcurrentLifecycleCrash(t *testing.T) {
	cc := startChaosCluster(t, 2)
	t.Cleanup(cc.close)
	devs := cc.rt.Devices(0)
	if len(devs) != 2 {
		t.Fatalf("devices = %d", len(devs))
	}
	victim := cc.cfg.Nodes[0].Name
	var victimDev, survivorDev *core.DeviceRef
	for _, d := range devs {
		if d.Key().Node == victim {
			victimDev = d
		} else {
			survivorDev = d
		}
	}
	if victimDev == nil || survivorDev == nil {
		t.Fatal("device/node mapping incomplete")
	}

	const perSide = 3
	type result struct {
		tenant    string
		onVictim  bool
		recovered int64
		replayed  int64
		err       error
	}
	results := make([]result, 2*perSide)
	var started, done sync.WaitGroup
	release := make(chan struct{})
	for i := 0; i < 2*perSide; i++ {
		onVictim := i < perSide
		// Victim lanes span both nodes (so recovery has somewhere to
		// re-place the dead node's work) with their queue on the victim;
		// survivor lanes never touch the victim at all.
		ctxDevs := []*core.DeviceRef{survivorDev}
		if onVictim {
			ctxDevs = []*core.DeviceRef{victimDev, survivorDev}
		}
		tenant := fmt.Sprintf("tenant-%d", i)
		lane := openLane(t, cc.rt, tenant, ctxDevs...)
		started.Add(1)
		done.Add(1)
		go func(i int, lane *sessionLane, onVictim bool) {
			defer done.Done()
			res := result{tenant: tenant, onVictim: onVictim}
			res.err = func() error {
				// A first round lands state on the node before the kill.
				if err := lane.round(float32(i)); err != nil {
					return err
				}
				started.Done()
				<-release
				for r := 1; r <= 3; r++ {
					if err := lane.round(float32(i + 100*r)); err != nil {
						return err
					}
				}
				m := lane.sess.Metrics()
				res.recovered = m.Recoveries
				res.replayed = m.ReplayedCommands
				return lane.sess.Close()
			}()
			results[i] = res
		}(i, lane, onVictim)
	}

	started.Wait()
	close(release)
	cc.kill(victim)
	done.Wait()

	var victimRecoveries int64
	for i := range results {
		r := results[i]
		if r.err != nil {
			t.Errorf("%s (onVictim=%v): %v", r.tenant, r.onVictim, r.err)
			continue
		}
		if r.onVictim {
			victimRecoveries += r.recovered
		} else if r.recovered != 0 || r.replayed != 0 {
			t.Errorf("%s never touched %q yet recorded %d recoveries / %d replays",
				r.tenant, victim, r.recovered, r.replayed)
		}
	}
	if victimRecoveries == 0 {
		t.Fatal("no victim-side session recorded a recovery")
	}
	if m := cc.rt.Metrics(); m.Recoveries == 0 {
		t.Fatal("runtime recorded no recovery")
	}
}
