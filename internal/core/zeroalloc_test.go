package core

import (
	"testing"

	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/trace"
)

// TestTraceDisabledZeroAlloc pins the zero-cost-when-off contract: with no
// tracer attached, the per-command trace hook on the hot enqueue path must
// not allocate — it is two atomic loads and a nil return.
func TestTraceDisabledZeroAlloc(t *testing.T) {
	rt := &Runtime{}
	s := &Session{rt: rt, tenant: "t"}
	dev := &DeviceRef{node: &NodeHandle{name: "node0"}}
	allocs := testing.AllocsPerRun(1000, func() {
		if tr := s.traceCmd(trace.KindWrite, dev, 1, 64, 0, 0); tr != nil {
			t.Fatal("tracer unexpectedly attached")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled traceCmd allocates %.1f/op, want 0", allocs)
	}
	// The nil record's emit (reached from Event.resolve) must be free too.
	allocs = testing.AllocsPerRun(1000, func() {
		var et *evTrace
		et.emit(1, protocol.Profile{})
	})
	if allocs != 0 {
		t.Fatalf("nil emit allocates %.1f/op, want 0", allocs)
	}
}
