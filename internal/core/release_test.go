package core_test

import (
	"strings"
	"testing"

	"github.com/haocl-project/haocl/internal/core"
	"github.com/haocl-project/haocl/internal/mem"
)

// TestPollStatusFanout is the regression test for the serial status poll:
// with one node dead, the poll must still refresh the monitor from the
// nodes that answered and report the failure — aggregated, naming the dead
// node — instead of aborting at the first error.
func TestPollStatusFanout(t *testing.T) {
	rt, servers, cleanup := startRuntimeWithServers(t, 2)
	defer cleanup()

	// Put some observable state on node gpu-00.
	devs := rt.Devices(0)
	ctx, err := rt.CreateContext(devs[:1])
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateQueue(devs[0])
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := ctx.CreateBuffer(16)
	if _, err := q.EnqueueWrite(buf, 0, mem.F32Bytes([]float32{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Finish(); err != nil {
		t.Fatal(err)
	}

	// Kill the second node and poll.
	servers[1].Close()
	err = rt.PollStatus()
	if err == nil {
		t.Fatal("poll with a dead node reported success")
	}
	if !strings.Contains(err.Error(), "gpu-01") {
		t.Fatalf("poll error does not name the dead node: %v", err)
	}

	// The healthy node's status still landed in the monitor.
	for _, v := range rt.Monitor().Snapshot() {
		if v.Key.Node == "gpu-00" && v.Status.BytesMoved > 0 {
			return
		}
	}
	t.Fatal("healthy node's status was not refreshed")
}

// TestQueueReleasePipelined checks the teardown-storm path: a Release
// issued fire-and-forget behind pipelined commands must not disturb them
// (nodes resolve a command's objects at registration, so in-flight work
// holds references), and the release's own ack drains cleanly at Flush.
func TestQueueReleasePipelined(t *testing.T) {
	rt, cleanup := startRuntime(t, 1)
	defer cleanup()
	ctx, err := rt.CreateContext(rt.Devices(0))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateQueue(rt.Devices(0)[0])
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := ctx.CreateBuffer(64)
	evs := make([]*core.Event, 0, 8)
	for i := 0; i < 8; i++ {
		ev, err := q.EnqueueWrite(buf, 0, mem.F32Bytes([]float32{1, 2, 3, 4}))
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
	// Release rides the wire behind the writes without a round trip.
	if err := q.Release(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Flush(); err != nil {
		t.Fatalf("pipelined release failed: %v", err)
	}
	for i, ev := range evs {
		if err := ev.Wait(); err != nil {
			t.Fatalf("write %d behind the release failed: %v", i, err)
		}
	}
}

// TestReleasedChainedEventFailsFast pins the failure mode of releasing an
// event a buffer's write chain still references: the next enqueue on that
// buffer must refuse immediately (the node-side event record is gone, and
// a wire wait on it could never resolve — the pre-lane runtime failed the
// same sequence with "unknown event", and it must not regress into a
// parked node lane).
func TestReleasedChainedEventFailsFast(t *testing.T) {
	rt, cleanup := startRuntime(t, 1)
	defer cleanup()
	ctx, err := rt.CreateContext(rt.Devices(0))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateQueue(rt.Devices(0)[0])
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := ctx.CreateBuffer(16)
	ev, err := q.EnqueueWrite(buf, 0, make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := ev.Release(rt); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueWrite(buf, 0, make([]byte, 16)); err == nil {
		t.Fatal("enqueue on a buffer chained to a released event accepted")
	}
	// Explicit wait lists referencing the released event refuse the same way.
	other, _ := ctx.CreateBuffer(16)
	if _, err := q.EnqueueWrite(other, 0, make([]byte, 16), ev); err == nil {
		t.Fatal("wait list referencing a released event accepted")
	}
}

// TestBufferKernelRelease exercises the new Buffer.Release and
// Kernel.Release: replicas and instances are freed fire-and-forget, the
// released buffer refuses further use, and the drained acks report no
// errors.
func TestBufferKernelRelease(t *testing.T) {
	rt, cleanup := startRuntime(t, 2)
	defer cleanup()
	devs := rt.Devices(0)
	ctx, err := rt.CreateContext(devs)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgram(incrSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("incr")
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := ctx.CreateBuffer(32)
	if err := k.SetArg(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArg(1, int32(8)); err != nil {
		t.Fatal(err)
	}

	// Touch both nodes so the buffer has two replicas and the kernel two
	// instances.
	for _, dev := range devs {
		q, err := ctx.CreateQueue(dev)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := q.EnqueueKernel(k, []int{8}, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := q.Finish(); err != nil {
			t.Fatal(err)
		}
	}

	if err := buf.Release(); err != nil {
		t.Fatal(err)
	}
	if err := k.Release(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Flush(); err != nil {
		t.Fatalf("release storm failed: %v", err)
	}

	// The released objects are unusable — no silent remote recreation.
	q, err := ctx.CreateQueue(devs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueWrite(buf, 0, make([]byte, 8)); err == nil {
		t.Fatal("write to released buffer accepted")
	}
	buf2, _ := ctx.CreateBuffer(32)
	if err := k.SetArg(0, buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueKernel(k, []int{8}, nil, nil, nil); err == nil {
		t.Fatal("launch of released kernel accepted")
	}
}
