package core

import (
	"io"
	"sort"

	"github.com/haocl-project/haocl/internal/profile"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/trace"
	"github.com/haocl-project/haocl/internal/vtime"
)

// SetTracer attaches a tracer to the runtime: every command issued by any
// session records its span tree until the tracer is swapped or detached
// (SetTracer(nil)). Each attachment is one trace.Run — sequential
// attachments (bench legs on fresh clusters, all starting at vtime 0)
// export as separate Perfetto process groups. Returns the run handle so
// harness code (FairQueue admission spans) can record into the same run.
func (rt *Runtime) SetTracer(t *trace.Tracer) *trace.Run {
	r := t.NewRun(rt.clientName)
	rt.trc.Store(r)
	return r
}

// TraceRun returns the runtime's active trace run (nil when tracing is
// off).
func (rt *Runtime) TraceRun() *trace.Run { return rt.trc.Load() }

// WriteTrace exports everything the attached tracer has recorded in
// Chrome trace-event format (an empty trace when none is attached).
func (rt *Runtime) WriteTrace(w io.Writer) error {
	return rt.trc.Load().Tracer().WriteChrome(w)
}

// SetTracer attaches a tracer to this session only, overriding the
// runtime-level tracer for its commands.
func (s *Session) SetTracer(t *trace.Tracer) *trace.Run {
	r := t.NewRun(s.tenant)
	s.trc.Store(r)
	return r
}

// traceRun resolves the active run for this session's commands: the
// session override if set, else the runtime attachment. Two atomic loads;
// nil means tracing is off.
func (s *Session) traceRun() *trace.Run {
	if r := s.trc.Load(); r != nil {
		return r
	}
	return s.rt.trc.Load()
}

// evTrace is one issued command's trace record, allocated only when
// tracing is on: the hot enqueue path calls traceCmd, sees nil, and
// touches nothing else (TestTraceDisabledZeroAlloc pins the 0-alloc
// contract). The span tree is emitted when the command's profile arrives
// — in Event.resolve for pipelined commands, inline for blocking ones.
type evTrace struct {
	run       *trace.Run
	kind      trace.Kind
	tenant    string
	node      string
	device    string
	queue     uint64
	bytes     int64
	wireStart vtime.Time // host NIC egress occupancy of the request
	wireEnd   vtime.Time // == SimArrival; both zero when nothing crossed the NIC
	replay    bool
}

// traceCmd builds the trace record for one command about to be issued, or
// nil (with zero allocations) when tracing is off.
func (s *Session) traceCmd(kind trace.Kind, dev *DeviceRef, queue uint64, bytes int64, wireStart, wireEnd vtime.Time) *evTrace {
	run := s.traceRun()
	if run == nil {
		return nil
	}
	return &evTrace{
		run:       run,
		kind:      kind,
		tenant:    s.tenant,
		node:      dev.node.name,
		device:    dev.key.String(),
		queue:     queue,
		bytes:     bytes,
		wireStart: wireStart,
		wireEnd:   wireEnd,
		replay:    s.rt.replaying.Load(),
	}
}

// emit records the command's span tree from its completed profile: a root
// span covering the command end to end, with wire, registration
// (dependency wait), device queue wait and exec children. Safe on a nil
// record.
func (t *evTrace) emit(eventID uint64, p protocol.Profile) {
	t.emitIn(eventID, p, 0)
}

// emitIn is emit plus the host-ingress arrival of a response payload
// (blocking reads and migration pulls); hostArrival > 0 adds a wire-in
// child and extends the root to it.
func (t *evTrace) emitIn(eventID uint64, p protocol.Profile, hostArrival vtime.Time) {
	if t == nil {
		return
	}
	queued, submit := vtime.Time(p.Queued), vtime.Time(p.Submit)
	start, end := vtime.Time(p.Start), vtime.Time(p.End)
	// Cut-through forwarding pushes may depart (Submit) before their
	// control frame's booked arrival (Queued); clamp the phase starts so
	// every emitted span is non-negative and the tree stays monotone.
	regStart := queued
	if submit < regStart {
		regStart = submit
	}
	qwStart := submit
	if start < qwStart {
		qwStart = start
	}
	base := trace.Span{
		Tenant:  t.tenant,
		Node:    t.node,
		Device:  t.device,
		Queue:   t.queue,
		EventID: eventID,
		Replay:  t.replay,
	}
	// Device-side commands (copies) never crossed the NIC: no wire child,
	// and the root starts at registration.
	hasWire := t.wireStart != 0 || t.wireEnd != 0

	root := base
	root.Kind = t.kind
	root.Start = regStart
	if hasWire && t.wireStart < root.Start {
		root.Start = t.wireStart
	}
	root.End = end
	if hostArrival > root.End {
		root.End = hostArrival
	}
	root.Bytes = t.bytes
	t.run.Add(root)

	if hasWire {
		wire := base
		wire.Kind, wire.Start, wire.End, wire.Bytes = trace.KindWire, t.wireStart, t.wireEnd, t.bytes
		t.run.Add(wire)
	}
	reg := base
	reg.Kind, reg.Start, reg.End = trace.KindRegister, regStart, submit
	t.run.Add(reg)
	qw := base
	qw.Kind, qw.Start, qw.End = trace.KindQueueWait, qwStart, start
	t.run.Add(qw)
	exec := base
	exec.Kind, exec.Start, exec.End = trace.KindExec, start, end
	t.run.Add(exec)
	if hostArrival > 0 {
		in := base
		in.Kind, in.Start, in.End, in.Bytes = trace.KindWireIn, end, hostArrival, t.bytes
		t.run.Add(in)
	}
}

// WriteMetrics writes a Prometheus-text (exposition format 0.0.4)
// snapshot of the runtime: the aggregate and per-tenant command counters,
// wire-byte splits, virtual-time totals, recovery counters, per-device
// monitor gauges, and — when a tracer is attached — per-(kind, tenant)
// span latency histograms. Output is deterministic for a given state:
// every series set is emitted in sorted order.
func (rt *Runtime) WriteMetrics(w io.Writer) error {
	mw := trace.NewMetricsWriter(w)

	rt.mu.Lock()
	agg := rt.metrics
	aggBusy := make(map[profile.DeviceKey]vtime.Duration, len(agg.ComputeBusy))
	for k, v := range agg.ComputeBusy {
		aggBusy[k] = v
	}
	rt.mu.Unlock()

	type tenantRow struct {
		name string
		m    Metrics
	}
	byTenant := map[string]*tenantRow{}
	var tenants []string
	for _, s := range rt.allSessions() {
		s.mu.Lock()
		m := s.metrics
		s.mu.Unlock()
		row := byTenant[s.tenant]
		if row == nil {
			row = &tenantRow{name: s.tenant}
			byTenant[s.tenant] = row
			tenants = append(tenants, s.tenant)
		}
		row.m.Commands += m.Commands
		row.m.WireBytes += m.WireBytes
		row.m.HostWireBytes += m.HostWireBytes
		row.m.PeerWireBytes += m.PeerWireBytes
		row.m.Recoveries += m.Recoveries
		row.m.ReplayedCommands += m.ReplayedCommands
		row.m.DataCreate += m.DataCreate
		row.m.Transfer += m.Transfer
		if m.Makespan > row.m.Makespan {
			row.m.Makespan = m.Makespan
		}
	}
	sort.Strings(tenants)

	counter := func(name, help string, aggV int64, perTenant func(Metrics) int64) {
		mw.Header(name, help, "counter")
		mw.Int(name, nil, aggV)
		for _, t := range tenants {
			mw.Int(name, []trace.Label{{Key: "tenant", Val: t}}, perTenant(byTenant[t].m))
		}
	}
	counter("haocl_commands_total", "Protocol round trips issued.",
		agg.Commands, func(m Metrics) int64 { return m.Commands })
	mw.Header("haocl_wire_bytes_total", "Modeled wire traffic by path (host NIC vs node-to-node links).", "counter")
	mw.Int("haocl_wire_bytes_total", []trace.Label{{Key: "path", Val: "host"}}, agg.HostWireBytes)
	mw.Int("haocl_wire_bytes_total", []trace.Label{{Key: "path", Val: "peer"}}, agg.PeerWireBytes)
	for _, t := range tenants {
		m := byTenant[t].m
		mw.Int("haocl_wire_bytes_total", []trace.Label{{Key: "path", Val: "host"}, {Key: "tenant", Val: t}}, m.HostWireBytes)
		mw.Int("haocl_wire_bytes_total", []trace.Label{{Key: "path", Val: "peer"}, {Key: "tenant", Val: t}}, m.PeerWireBytes)
	}
	counter("haocl_recoveries_total", "Node-loss recoveries absorbed.",
		agg.Recoveries, func(m Metrics) int64 { return m.Recoveries })
	counter("haocl_replayed_commands_total", "Command-log entries re-issued by recovery.",
		agg.ReplayedCommands, func(m Metrics) int64 { return m.ReplayedCommands })

	gauge := func(name, help string, aggV float64, perTenant func(Metrics) float64) {
		mw.Header(name, help, "gauge")
		mw.Sample(name, nil, aggV)
		for _, t := range tenants {
			mw.Sample(name, []trace.Label{{Key: "tenant", Val: t}}, perTenant(byTenant[t].m))
		}
	}
	gauge("haocl_transfer_virtual_seconds", "Host NIC occupancy in virtual seconds.",
		agg.Transfer.Seconds(), func(m Metrics) float64 { return m.Transfer.Seconds() })
	gauge("haocl_data_create_virtual_seconds", "Host-side input materialization in virtual seconds.",
		agg.DataCreate.Seconds(), func(m Metrics) float64 { return m.DataCreate.Seconds() })
	gauge("haocl_makespan_virtual_seconds", "Latest virtual completion instant observed.",
		agg.Makespan.Seconds(), func(m Metrics) float64 { return m.Makespan.Seconds() })

	mw.Header("haocl_compute_busy_virtual_seconds", "Per-device kernel busy time in virtual seconds.", "gauge")
	busyKeys := make([]profile.DeviceKey, 0, len(aggBusy))
	for k := range aggBusy {
		busyKeys = append(busyKeys, k)
	}
	sort.Slice(busyKeys, func(i, j int) bool {
		if busyKeys[i].Node != busyKeys[j].Node {
			return busyKeys[i].Node < busyKeys[j].Node
		}
		return busyKeys[i].DeviceID < busyKeys[j].DeviceID
	})
	for _, k := range busyKeys {
		mw.Sample("haocl_compute_busy_virtual_seconds",
			[]trace.Label{{Key: "device", Val: k.String()}}, aggBusy[k].Seconds())
	}

	views := rt.monitor.Snapshot()
	deviceGauge := func(name, help string, value func(profile.DeviceView) float64) {
		mw.Header(name, help, "gauge")
		for _, v := range views {
			mw.Sample(name, []trace.Label{{Key: "device", Val: v.Key.String()}}, value(v))
		}
	}
	deviceGauge("haocl_device_busy_until_virtual_seconds", "Reported device busy frontier.",
		func(v profile.DeviceView) float64 { return float64(v.Status.BusyUntil) / 1e9 })
	deviceGauge("haocl_device_pending_virtual_seconds", "Host-assigned work the node has not yet reported.",
		func(v profile.DeviceView) float64 { return v.Pending.Seconds() })
	deviceGauge("haocl_device_expected_free_virtual_seconds", "Estimated drain instant (busy frontier plus pending).",
		func(v profile.DeviceView) float64 { return v.ExpectedFree().Seconds() })
	deviceGauge("haocl_device_queued_commands", "Commands queued node-side.",
		func(v profile.DeviceView) float64 { return float64(v.Status.QueuedCmds) })
	deviceGauge("haocl_device_kernels_total", "Kernels executed.",
		func(v profile.DeviceView) float64 { return float64(v.Status.KernelsRun) })
	deviceGauge("haocl_device_energy_joules", "Modeled energy consumed.",
		func(v profile.DeviceView) float64 { return v.Status.EnergyJ })

	if err := mw.Err(); err != nil {
		return err
	}
	return rt.trc.Load().Tracer().WriteMetrics(w)
}
