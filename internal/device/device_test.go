package device

import (
	"testing"

	"github.com/haocl-project/haocl/internal/protocol"
)

func TestInfoProto(t *testing.T) {
	info := Info{
		ID: 3, Type: GPU, Name: "Tesla P4", Vendor: "NVIDIA",
		ComputeUnits: 20, ClockMHz: 1063, GlobalMemBytes: 8 << 30,
		MaxWorkGroupSize: 1024, Shared: true,
		PeakGFLOPS: 5500, MemBWGBps: 192, TDPWatts: 75,
	}
	p := info.Proto()
	if p.ID != 3 || p.Type != protocol.DeviceGPU || p.Name != "Tesla P4" ||
		p.ComputeUnits != 20 || p.ClockMHz != 1063 ||
		p.GlobalMemBytes != 8<<30 || p.MaxWorkGroupSize != 1024 ||
		!p.Shared || p.PeakGFLOPS != 5500 || p.MemBWGBps != 192 || p.TDPWatts != 75 {
		t.Fatalf("Proto() = %+v", p)
	}
}

func TestICDRegistration(t *testing.T) {
	icd := NewICD()
	factory := func(cfg Config) (Device, error) { return nil, nil }
	if err := icd.Register("", factory); err == nil {
		t.Fatal("nameless driver accepted")
	}
	if err := icd.Register("d", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	if err := icd.Register("d", factory); err != nil {
		t.Fatal(err)
	}
	if err := icd.Register("d", factory); err == nil {
		t.Fatal("duplicate driver accepted")
	}
	if got := icd.Drivers(); len(got) != 1 || got[0] != "d" {
		t.Fatalf("Drivers = %v", got)
	}
	if _, err := icd.Open(Config{Driver: "other"}); err == nil {
		t.Fatal("unknown driver opened")
	}
}

func TestMustRegisterPanics(t *testing.T) {
	icd := NewICD()
	icd.MustRegister("x", func(cfg Config) (Device, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister did not panic")
		}
	}()
	icd.MustRegister("x", func(cfg Config) (Device, error) { return nil, nil })
}
