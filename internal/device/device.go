// Package device defines HaoCL's device driver abstraction and the
// Installable Client Driver (ICD) registry through which Node Management
// Processes open devices.
//
// The paper extends the OpenCL ICD mechanism so each call forwarded from
// the wrapper library is executed "according to the remote devices and
// vendor drivers" (§III-B). Here the ICD is a registry of driver factories;
// the shipped drivers are the simulated CPU/GPU/FPGA devices in
// internal/sim, and the interface is what a cgo-backed real-vendor driver
// would implement instead.
package device

import (
	"fmt"
	"sort"
	"sync"

	"github.com/haocl-project/haocl/internal/clc"
	"github.com/haocl-project/haocl/internal/kernel"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/vtime"
)

// Type aliases the protocol device type so drivers do not import protocol.
type Type = protocol.DeviceType

// Device types re-exported for driver code.
const (
	CPU  = protocol.DeviceCPU
	GPU  = protocol.DeviceGPU
	FPGA = protocol.DeviceFPGA
)

// Info describes one opened device: the clGetDeviceInfo fields plus the
// performance-model parameters the scheduler and simulators consume.
type Info struct {
	ID               uint32
	Type             Type
	Name             string
	Vendor           string
	ComputeUnits     int
	ClockMHz         int
	GlobalMemBytes   int64
	MaxWorkGroupSize int
	Shared           bool

	// Performance model.
	PeakGFLOPS     float64        // sustained arithmetic throughput
	MemBWGBps      float64        // device memory bandwidth
	LaunchOverhead vtime.Duration // fixed per-kernel-launch cost
	PCIeGBps       float64        // host↔device staging bandwidth
	TDPWatts       float64        // active power draw
	IdleWatts      float64        // idle power draw
}

// Proto converts the info to its wire representation.
func (i Info) Proto() protocol.DeviceInfo {
	return protocol.DeviceInfo{
		ID:               i.ID,
		Type:             i.Type,
		Name:             i.Name,
		Vendor:           i.Vendor,
		ComputeUnits:     uint32(i.ComputeUnits),
		ClockMHz:         uint32(i.ClockMHz),
		GlobalMemBytes:   i.GlobalMemBytes,
		MaxWorkGroupSize: int64(i.MaxWorkGroupSize),
		Shared:           i.Shared,
		PeakGFLOPS:       i.PeakGFLOPS,
		MemBWGBps:        i.MemBWGBps,
		TDPWatts:         i.TDPWatts,
	}
}

// Device is one compute device managed by an NMP. Execution is split into
// the functional side (Execute runs the kernel's registered implementation
// for real) and the modeling side (ModelKernel/ModelTransfer translate
// analytic costs into virtual-time durations).
type Device interface {
	// Info returns the device descriptor.
	Info() Info

	// Kernels is the device's kernel binary store.
	Kernels() *kernel.Registry

	// CheckProgram validates that a parsed program can run on this device
	// and returns a human-readable build log. FPGA drivers reject kernels
	// that have no pre-built bitstream (paper §III-D).
	CheckProgram(prog *clc.Program) (log string, err error)

	// Execute functionally runs the named kernel over the launch range.
	Execute(name string, l kernel.Launch) error

	// ModelKernel reports the modeled duration of a launch with cost c.
	ModelKernel(c kernel.Cost) vtime.Duration

	// ModelTransfer reports the modeled duration of staging n bytes
	// between node memory and device memory.
	ModelTransfer(n int64) vtime.Duration

	// EnergyRate reports the device's power draw in watts while busy.
	EnergyRate() float64
}

// Config is the driver-independent description of one device to open,
// taken from the cluster configuration file.
type Config struct {
	Driver string // ICD driver name, e.g. "sim-gpu"
	Model  string // driver-specific model preset, e.g. "tesla-p4"
	ID     uint32 // node-local device ID
	Shared bool   // whether concurrent users may share the device
	// Bitstreams lists pre-built kernel names for FPGA drivers.
	Bitstreams []string
	// Workers caps functional execution parallelism (0 = default).
	Workers int
}

// Factory opens a device from its configuration.
type Factory func(cfg Config) (Device, error)

// ICD is the installable-client-driver registry: the common entry point
// mapping driver names to factories.
type ICD struct {
	mu      sync.RWMutex
	drivers map[string]Factory
}

// NewICD returns an empty driver registry.
func NewICD() *ICD {
	return &ICD{drivers: make(map[string]Factory)}
}

// Register adds a driver under name.
func (r *ICD) Register(name string, f Factory) error {
	if name == "" || f == nil {
		return fmt.Errorf("icd: driver needs a name and a factory")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.drivers[name]; ok {
		return fmt.Errorf("icd: driver %q already registered", name)
	}
	r.drivers[name] = f
	return nil
}

// MustRegister is Register that panics on error, for setup code.
func (r *ICD) MustRegister(name string, f Factory) {
	if err := r.Register(name, f); err != nil {
		panic(err)
	}
}

// Open instantiates a device through its configured driver.
func (r *ICD) Open(cfg Config) (Device, error) {
	r.mu.RLock()
	f, ok := r.drivers[cfg.Driver]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("icd: no driver %q (have %v)", cfg.Driver, r.Drivers())
	}
	dev, err := f(cfg)
	if err != nil {
		return nil, fmt.Errorf("icd: open %s/%s: %w", cfg.Driver, cfg.Model, err)
	}
	return dev, nil
}

// Drivers lists registered driver names, sorted.
func (r *ICD) Drivers() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.drivers))
	for n := range r.drivers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
