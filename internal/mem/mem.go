// Package mem converts between Go numeric slices and the little-endian
// byte representation used by device buffers. Host code uses these copying
// conversions; device kernels use the zero-copy views on kernel.Arg.
//
// Range arithmetic orders the coherence layer's transfers, so it is a
// deterministic package.
//
// haoclvet:deterministic
package mem

import (
	"encoding/binary"
	"math"
)

// F32Bytes encodes float32 values to little-endian bytes.
func F32Bytes(fs []float32) []byte {
	out := make([]byte, 4*len(fs))
	for i, f := range fs {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(f))
	}
	return out
}

// BytesF32 decodes little-endian bytes to float32 values.
func BytesF32(bs []byte) []float32 {
	out := make([]float32, len(bs)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(bs[i*4:]))
	}
	return out
}

// I32Bytes encodes int32 values to little-endian bytes.
func I32Bytes(vs []int32) []byte {
	out := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}

// BytesI32 decodes little-endian bytes to int32 values.
func BytesI32(bs []byte) []int32 {
	out := make([]int32, len(bs)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(bs[i*4:]))
	}
	return out
}

// U32Bytes encodes uint32 values to little-endian bytes.
func U32Bytes(vs []uint32) []byte {
	out := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(out[i*4:], v)
	}
	return out
}

// BytesU32 decodes little-endian bytes to uint32 values.
func BytesU32(bs []byte) []uint32 {
	out := make([]uint32, len(bs)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(bs[i*4:])
	}
	return out
}
