package mem

import (
	"fmt"
	"strings"
)

// Range is a half-open byte interval [Lo, Hi). The coherence layer uses it
// to name the portion of a buffer a command touched.
type Range struct {
	Lo, Hi int64
}

// Len returns the interval's length in bytes.
func (r Range) Len() int64 { return r.Hi - r.Lo }

// Empty reports whether the interval covers no bytes.
func (r Range) Empty() bool { return r.Hi <= r.Lo }

// String renders the interval as [lo,hi).
func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// RangeSet is a set of byte offsets represented as sorted, disjoint,
// non-adjacent half-open intervals. The host runtime keeps one per buffer
// replica to track which byte ranges hold current data: partial writes add
// exactly the written range, invalidations remove exactly the overlapped
// ranges, and delta migration transfers only the Gaps of the range a
// command is about to touch.
//
// The zero value is the empty set. RangeSet is not safe for concurrent use;
// callers hold the owning buffer's lock.
type RangeSet struct {
	spans []Range
}

// Add marks [lo, hi) as members of the set, merging with overlapping and
// adjacent spans. Empty or inverted input is a no-op.
func (s *RangeSet) Add(lo, hi int64) {
	if hi <= lo {
		return
	}
	out := make([]Range, 0, len(s.spans)+1)
	i := 0
	for i < len(s.spans) && s.spans[i].Hi < lo {
		out = append(out, s.spans[i])
		i++
	}
	for i < len(s.spans) && s.spans[i].Lo <= hi {
		if s.spans[i].Lo < lo {
			lo = s.spans[i].Lo
		}
		if s.spans[i].Hi > hi {
			hi = s.spans[i].Hi
		}
		i++
	}
	out = append(out, Range{lo, hi})
	out = append(out, s.spans[i:]...)
	s.spans = out
}

// Remove deletes [lo, hi) from the set, splitting spans that straddle an
// edge. Empty or inverted input is a no-op.
func (s *RangeSet) Remove(lo, hi int64) {
	if hi <= lo || len(s.spans) == 0 {
		return
	}
	out := make([]Range, 0, len(s.spans)+1)
	for _, sp := range s.spans {
		if sp.Hi <= lo || sp.Lo >= hi {
			out = append(out, sp)
			continue
		}
		if sp.Lo < lo {
			out = append(out, Range{sp.Lo, lo})
		}
		if sp.Hi > hi {
			out = append(out, Range{hi, sp.Hi})
		}
	}
	s.spans = out
}

// Reset empties the set.
func (s *RangeSet) Reset() { s.spans = nil }

// Empty reports whether the set contains no bytes.
func (s *RangeSet) Empty() bool { return len(s.spans) == 0 }

// Contains reports whether every byte of [lo, hi) is in the set. The empty
// interval is contained trivially.
func (s *RangeSet) Contains(lo, hi int64) bool {
	if hi <= lo {
		return true
	}
	for _, sp := range s.spans {
		if sp.Lo <= lo && hi <= sp.Hi {
			return true
		}
		if sp.Lo > lo {
			break
		}
	}
	return false
}

// Intersects reports whether any byte of [lo, hi) is in the set.
func (s *RangeSet) Intersects(lo, hi int64) bool {
	if hi <= lo {
		return false
	}
	for _, sp := range s.spans {
		if sp.Lo >= hi {
			return false
		}
		if sp.Hi > lo {
			return true
		}
	}
	return false
}

// Gaps returns the sub-intervals of [lo, hi) that are NOT in the set, in
// order — the stale ranges a delta migration must transfer.
func (s *RangeSet) Gaps(lo, hi int64) []Range {
	if hi <= lo {
		return nil
	}
	var gaps []Range
	cur := lo
	for _, sp := range s.spans {
		if sp.Hi <= cur {
			continue
		}
		if sp.Lo >= hi {
			break
		}
		if sp.Lo > cur {
			gaps = append(gaps, Range{cur, min(sp.Lo, hi)})
		}
		cur = sp.Hi
		if cur >= hi {
			break
		}
	}
	if cur < hi {
		gaps = append(gaps, Range{cur, hi})
	}
	return gaps
}

// Overlap returns the sub-intervals of [lo, hi) that ARE in the set, in
// order — the ranges a replica can serve during migration.
func (s *RangeSet) Overlap(lo, hi int64) []Range {
	if hi <= lo {
		return nil
	}
	var out []Range
	for _, sp := range s.spans {
		if sp.Lo >= hi {
			break
		}
		l, h := max(sp.Lo, lo), min(sp.Hi, hi)
		if l < h {
			out = append(out, Range{l, h})
		}
	}
	return out
}

// Len returns the total number of bytes in the set.
func (s *RangeSet) Len() int64 {
	var n int64
	for _, sp := range s.spans {
		n += sp.Len()
	}
	return n
}

// Spans returns a copy of the set's intervals in order.
func (s *RangeSet) Spans() []Range {
	out := make([]Range, len(s.spans))
	copy(out, s.spans)
	return out
}

// String renders the set as {[a,b) [c,d) ...} for logs and test failures.
func (s *RangeSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, sp := range s.spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(sp.String())
	}
	b.WriteByte('}')
	return b.String()
}
