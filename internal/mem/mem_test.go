package mem

import (
	"testing"
	"testing/quick"
)

func TestF32RoundTrip(t *testing.T) {
	check := func(fs []float32) bool {
		got := BytesF32(F32Bytes(fs))
		if len(got) != len(fs) {
			return false
		}
		for i := range fs {
			if got[i] != fs[i] && !(fs[i] != fs[i] && got[i] != got[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestI32RoundTrip(t *testing.T) {
	check := func(vs []int32) bool {
		got := BytesI32(I32Bytes(vs))
		if len(got) != len(vs) {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestU32RoundTrip(t *testing.T) {
	check := func(vs []uint32) bool {
		got := BytesU32(U32Bytes(vs))
		if len(got) != len(vs) {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	b := I32Bytes([]int32{1})
	if b[0] != 1 || b[1] != 0 || b[2] != 0 || b[3] != 0 {
		t.Fatalf("not little-endian: %v", b)
	}
	if len(F32Bytes(nil)) != 0 || len(BytesF32(nil)) != 0 {
		t.Fatal("nil handling broken")
	}
	// Trailing partial words are dropped, not read out of bounds.
	if got := BytesF32([]byte{1, 2, 3}); len(got) != 0 {
		t.Fatalf("partial word decoded: %v", got)
	}
}
