package mem

import (
	"math/rand"
	"testing"
)

func spansEqual(got, want []Range) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestRangeSetAddMerges(t *testing.T) {
	var s RangeSet
	s.Add(10, 20)
	s.Add(30, 40)
	if got := s.Spans(); !spansEqual(got, []Range{{10, 20}, {30, 40}}) {
		t.Fatalf("disjoint adds: %v", s.String())
	}
	// Adjacent spans coalesce.
	s.Add(20, 30)
	if got := s.Spans(); !spansEqual(got, []Range{{10, 40}}) {
		t.Fatalf("adjacent add did not merge: %v", s.String())
	}
	// Overlapping re-add is idempotent.
	s.Add(15, 35)
	if got := s.Spans(); !spansEqual(got, []Range{{10, 40}}) {
		t.Fatalf("overlapping add changed set: %v", s.String())
	}
	// Superset swallow.
	s.Add(0, 100)
	if got := s.Spans(); !spansEqual(got, []Range{{0, 100}}) {
		t.Fatalf("superset add: %v", s.String())
	}
	// Empty and inverted inputs are no-ops.
	s.Add(5, 5)
	s.Add(9, 3)
	if got := s.Spans(); !spansEqual(got, []Range{{0, 100}}) {
		t.Fatalf("degenerate add changed set: %v", s.String())
	}
}

func TestRangeSetRemoveSplits(t *testing.T) {
	var s RangeSet
	s.Add(0, 100)
	s.Remove(40, 60)
	if got := s.Spans(); !spansEqual(got, []Range{{0, 40}, {60, 100}}) {
		t.Fatalf("middle remove: %v", s.String())
	}
	s.Remove(0, 10) // leading edge
	s.Remove(90, 200)
	if got := s.Spans(); !spansEqual(got, []Range{{10, 40}, {60, 90}}) {
		t.Fatalf("edge removes: %v", s.String())
	}
	s.Remove(0, 1000)
	if !s.Empty() {
		t.Fatalf("full remove left %v", s.String())
	}
	s.Remove(0, 10) // remove from empty set
	if !s.Empty() {
		t.Fatal("remove on empty set")
	}
}

func TestRangeSetContainsAndIntersects(t *testing.T) {
	var s RangeSet
	s.Add(10, 20)
	s.Add(30, 40)
	cases := []struct {
		lo, hi               int64
		contains, intersects bool
	}{
		{10, 20, true, true},
		{12, 18, true, true},
		{10, 21, false, true},
		{15, 35, false, true}, // spans the gap
		{20, 30, false, false},
		{0, 10, false, false},
		{40, 50, false, false},
		{5, 11, false, true},
		{39, 45, false, true},
		{15, 15, true, false}, // empty interval
	}
	for _, c := range cases {
		if got := s.Contains(c.lo, c.hi); got != c.contains {
			t.Errorf("Contains(%d,%d) = %v, want %v", c.lo, c.hi, got, c.contains)
		}
		if got := s.Intersects(c.lo, c.hi); got != c.intersects {
			t.Errorf("Intersects(%d,%d) = %v, want %v", c.lo, c.hi, got, c.intersects)
		}
	}
}

func TestRangeSetGapsAndOverlap(t *testing.T) {
	var s RangeSet
	s.Add(10, 20)
	s.Add(30, 40)
	if got := s.Gaps(0, 50); !spansEqual(got, []Range{{0, 10}, {20, 30}, {40, 50}}) {
		t.Fatalf("Gaps(0,50) = %v", got)
	}
	if got := s.Gaps(12, 18); got != nil {
		t.Fatalf("Gaps inside span = %v", got)
	}
	if got := s.Gaps(15, 35); !spansEqual(got, []Range{{20, 30}}) {
		t.Fatalf("Gaps(15,35) = %v", got)
	}
	if got := s.Overlap(15, 35); !spansEqual(got, []Range{{15, 20}, {30, 35}}) {
		t.Fatalf("Overlap(15,35) = %v", got)
	}
	if got := s.Overlap(20, 30); got != nil {
		t.Fatalf("Overlap in gap = %v", got)
	}
	if got := s.Len(); got != 20 {
		t.Fatalf("Len = %d", got)
	}
}

// TestRangeSetOracle drives random Add/Remove sequences against a naive
// per-byte bitmap and checks every query agrees — the same mirror-model
// style the coherence oracle uses one layer up.
func TestRangeSetOracle(t *testing.T) {
	const size = 256
	for _, seed := range []int64{1, 2, 42} {
		rng := rand.New(rand.NewSource(seed))
		var s RangeSet
		bitmap := make([]bool, size)
		for step := 0; step < 500; step++ {
			lo := rng.Int63n(size)
			hi := lo + rng.Int63n(size-lo+1)
			if rng.Intn(2) == 0 {
				s.Add(lo, hi)
				for i := lo; i < hi; i++ {
					bitmap[i] = true
				}
			} else {
				s.Remove(lo, hi)
				for i := lo; i < hi; i++ {
					bitmap[i] = false
				}
			}

			// Invariants: sorted, disjoint, non-adjacent, non-empty spans.
			spans := s.Spans()
			for i, sp := range spans {
				if sp.Empty() {
					t.Fatalf("seed %d step %d: empty span in %v", seed, step, s.String())
				}
				if i > 0 && spans[i-1].Hi >= sp.Lo {
					t.Fatalf("seed %d step %d: unsorted/adjacent spans %v", seed, step, s.String())
				}
			}

			// Membership agrees byte for byte via Gaps over the whole range.
			member := make([]bool, size)
			for i := int64(0); i < size; i++ {
				member[i] = true
			}
			for _, g := range s.Gaps(0, size) {
				for i := g.Lo; i < g.Hi; i++ {
					member[i] = false
				}
			}
			for i := range bitmap {
				if member[i] != bitmap[i] {
					t.Fatalf("seed %d step %d: byte %d membership = %v, want %v (%v)",
						seed, step, i, member[i], bitmap[i], s.String())
				}
			}

			// Spot-check the query methods on a random interval.
			qlo := rng.Int63n(size)
			qhi := qlo + rng.Int63n(size-qlo+1)
			wantContains, wantIntersects := true, false
			for i := qlo; i < qhi; i++ {
				if bitmap[i] {
					wantIntersects = true
				} else {
					wantContains = false
				}
			}
			if qhi <= qlo {
				wantContains = true
			}
			if got := s.Contains(qlo, qhi); got != wantContains {
				t.Fatalf("seed %d step %d: Contains(%d,%d) = %v, want %v (%v)",
					seed, step, qlo, qhi, got, wantContains, s.String())
			}
			if got := s.Intersects(qlo, qhi); got != wantIntersects {
				t.Fatalf("seed %d step %d: Intersects(%d,%d) = %v, want %v (%v)",
					seed, step, qlo, qhi, got, wantIntersects, s.String())
			}
			var overlapLen int64
			for _, o := range s.Overlap(qlo, qhi) {
				overlapLen += o.Len()
			}
			var wantOverlapLen int64
			for i := qlo; i < qhi; i++ {
				if bitmap[i] {
					wantOverlapLen++
				}
			}
			if overlapLen != wantOverlapLen {
				t.Fatalf("seed %d step %d: Overlap(%d,%d) covers %d bytes, want %d",
					seed, step, qlo, qhi, overlapLen, wantOverlapLen)
			}
		}
	}
}
