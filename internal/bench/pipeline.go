package bench

import (
	"fmt"
	"io"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps/bfs"
	"github.com/haocl-project/haocl/internal/apps/matmul"
	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/mem"
	"github.com/haocl-project/haocl/internal/node"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/sim"
	"github.com/haocl-project/haocl/internal/transport"
)

// This file measures the asynchronous command path of the backbone
// (paper §III-C: the wrapper library ships every API call as a message over
// an async communication layer). The same command stream is issued in up to
// three modes:
//
//	sync       — the host waits for every command's response before issuing
//	             the next one, the behavior of the pre-pipelining runtime
//	             (one full round trip per command);
//	pipelined  — commands stream out back to back and the host synchronizes
//	             only at Queue.Finish; each frame still pays its own write
//	             (the wire v2 path, emulated by pinning the node at v2);
//	batched    — pipelined, plus the wire v3 coalescer packing bursts of
//	             small frames into Batch envelopes written in one syscall,
//	             with symmetric batched responses.
//
// Virtual time is identical in every mode — neither pipelining nor
// batching changes when the simulated hardware works — so the number that
// moves is the host-side wall-clock enqueue rate (commands/second) and
// with it the end-to-end makespan of command-heavy workloads on real
// deployments.

// StreamMode selects how the benchmark issues its command stream.
type StreamMode int

// Stream modes.
const (
	ModeSync StreamMode = iota
	ModePipelined
	ModeBatched
)

// String names the mode as reported in rows.
func (m StreamMode) String() string {
	switch m {
	case ModeSync:
		return "sync"
	case ModePipelined:
		return "pipelined"
	case ModeBatched:
		return "batched"
	default:
		return fmt.Sprintf("StreamMode(%d)", int(m))
	}
}

// nodeWireVersion returns the wire version the benchmark's nodes advertise
// for a mode: sync and pipelined pin the node at v2 so the host falls back
// to the one-frame-per-write path (the PR 1 baseline), while batched runs
// the full v3 negotiation.
func (m StreamMode) nodeWireVersion() uint32 {
	if m == ModeBatched {
		return protocol.Version
	}
	return protocol.MinVersion
}

// PipelineRow is one (workload, transport, mode) measurement.
type PipelineRow struct {
	Workload   string  `json:"workload"`
	Transport  string  `json:"transport"` // "mem" (in-process pipes) or "tcp" (loopback sockets)
	Mode       string  `json:"mode"`      // "sync", "pipelined" or "batched"
	Commands   int64   `json:"commands"`
	WallMS     float64 `json:"wall_ms"`
	CmdsPerSec float64 `json:"cmds_per_sec"`
	VirtualSec float64 `json:"virtual_sec"` // virtual makespan, identical across modes
	// WireMB is the total modeled megabytes moved — the number the
	// coherence experiment compares between full and delta migration.
	// Zero (omitted) for experiments that do not track it. It splits into
	// HostWireMB (through the host NIC) and PeerWireMB (direct node→node
	// PushRange traffic) — the split the p2p experiment compares.
	WireMB     float64 `json:"wire_mb,omitempty"`
	HostWireMB float64 `json:"host_wire_mb,omitempty"`
	PeerWireMB float64 `json:"peer_wire_mb,omitempty"`
	// Recoveries counts node-loss recoveries absorbed during the run, and
	// ReplayedCommands the command-log entries re-issued to rebuild lost
	// state — non-zero only on the chaos experiment's failure-injected legs.
	Recoveries       int64 `json:"recoveries,omitempty"`
	ReplayedCommands int64 `json:"replayed_commands,omitempty"`
	// Tenant, Jobs and the latency percentiles are filled by the serve
	// experiment: one row per (leg, tenant), latencies in virtual
	// milliseconds from job arrival to completion, and the leg's overall
	// job throughput in jobs per virtual second on the aggregate row.
	Tenant         string  `json:"tenant,omitempty"`
	Jobs           int64   `json:"jobs,omitempty"`
	P50VirtualMS   float64 `json:"p50_virtual_ms,omitempty"`
	P99VirtualMS   float64 `json:"p99_virtual_ms,omitempty"`
	JobsPerVirtSec float64 `json:"jobs_per_virtual_sec,omitempty"`
}

func (r PipelineRow) String() string {
	s := fmt.Sprintf("%-14s %-4s %-10s commands=%-6d wall=%8.2fms rate=%10.0f cmds/s virtual=%8.3fs",
		r.Workload, r.Transport, r.Mode, r.Commands, r.WallMS, r.CmdsPerSec, r.VirtualSec)
	if r.WireMB > 0 {
		s += fmt.Sprintf(" wire=%8.2fMB", r.WireMB)
	}
	if r.PeerWireMB > 0 {
		s += fmt.Sprintf(" host=%8.2fMB peer=%8.2fMB", r.HostWireMB, r.PeerWireMB)
	}
	if r.Recoveries > 0 {
		s += fmt.Sprintf(" recoveries=%d", r.Recoveries)
	}
	if r.Tenant != "" {
		s = fmt.Sprintf("%-14s %-4s %-10s tenant=%-10s jobs=%-5d p50=%9.3fms p99=%9.3fms",
			r.Workload, r.Transport, r.Mode, r.Tenant, r.Jobs, r.P50VirtualMS, r.P99VirtualMS)
		if r.JobsPerVirtSec > 0 {
			s += fmt.Sprintf(" rate=%8.1f jobs/vs", r.JobsPerVirtSec)
		}
	}
	return s
}

// pipelinePlatform builds a gpus-node cluster either on the in-process
// pipe network or on real loopback TCP sockets — the latter is the
// deployment shape where the per-command round trip actually costs what
// the paper's GbE backbone charges. wire caps the nodes' advertised
// protocol version (0 = current), letting sync/pipelined runs emulate a
// pre-batching peer.
func pipelinePlatform(gpus int, tcp bool, wire uint32) (*haocl.Platform, func(), error) {
	if !tcp {
		lc, err := clusterAtWire(gpus, 0, wire)
		if err != nil {
			return nil, nil, err
		}
		return lc.Platform, func() { lc.Close() }, nil
	}
	icd := device.NewICD()
	sim.RegisterDrivers(icd, Registry())
	cfg := &haocl.ClusterConfig{UserID: "bench-pipeline"}
	var servers []*transport.Server
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for i := 0; i < gpus; i++ {
		name := fmt.Sprintf("tcp-gpu-%d", i)
		n, err := node.New(node.Options{
			Name:        name,
			Devices:     []device.Config{{Driver: sim.DriverGPU, ID: 1, Shared: true}},
			ICD:         icd,
			ExecWorkers: 1,
			WireVersion: wire,
			Dialer:      transport.TCPDialer{},
		})
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		srv := n.Serve()
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		servers = append(servers, srv)
		cfg.Nodes = append(cfg.Nodes, haocl.NodeSpec{
			Name: name, Addr: addr,
			Devices: []haocl.DeviceSpec{{Type: "gpu", Shared: true}},
		})
	}
	p, err := haocl.Connect(cfg, haocl.WithClientName("bench-pipeline"))
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	attachTracer(p)
	return p, func() { p.Close(); cleanup() }, nil
}

// syncPoint waits for ev when the stream runs in synchronous mode.
func syncPoint(ev *haocl.Event, mode StreamMode) error {
	if mode != ModeSync || ev == nil {
		return nil
	}
	return ev.Wait()
}

// PipelineMatmul streams MatrixMul tiles across gpus nodes: for every
// tile, the host writes the A and B sub-blocks and launches the tile
// kernel — three commands per tile, the command-heavy shape that makes
// enqueue latency the bottleneck of a blocking protocol.
func PipelineMatmul(gpus, launches int, mode StreamMode, tcp bool) (PipelineRow, error) {
	row := PipelineRow{Workload: "MatrixMul", Transport: transportName(tcp), Mode: mode.String()}
	p, cleanup, err := pipelinePlatform(gpus, tcp, mode.nodeWireVersion())
	if err != nil {
		return row, err
	}
	defer cleanup()

	devs := p.Devices(haocl.GPU)
	ctx, err := p.CreateContext(devs)
	if err != nil {
		return row, err
	}
	prog, err := ctx.CreateProgram(matmul.Source)
	if err != nil {
		return row, err
	}
	if err := prog.Build(); err != nil {
		return row, err
	}

	const n = 8 // functional tile edge: tiny, so command traffic dominates
	tile := make([]float32, n*n)
	for i := range tile {
		tile[i] = float32(i%7) * 0.25
	}
	tileBytes := mem.F32Bytes(tile)
	// Model each launch as a paper-scale 1000³ tile so the virtual times
	// stay in the regime the figures report.
	costs := matmul.Cost(1000, 1000, 1000)
	opts := &haocl.LaunchOptions{CostFlops: costs.Flops, CostBytes: costs.Bytes}

	type deviceState struct {
		q    *haocl.Queue
		k    *haocl.Kernel
		a, b *haocl.Buffer
	}
	states := make([]deviceState, len(devs))
	for i, dev := range devs {
		q, err := ctx.CreateQueue(dev)
		if err != nil {
			return row, err
		}
		a, err := ctx.CreateBuffer(int64(len(tileBytes)))
		if err != nil {
			return row, err
		}
		b, err := ctx.CreateBuffer(int64(len(tileBytes)))
		if err != nil {
			return row, err
		}
		c, err := ctx.CreateBuffer(int64(len(tileBytes)))
		if err != nil {
			return row, err
		}
		k, err := prog.CreateKernel("matmul")
		if err != nil {
			return row, err
		}
		for idx, v := range []any{a, b, c, int32(n), int32(n), int32(n)} {
			if err := k.SetArg(idx, v); err != nil {
				return row, err
			}
		}
		// Materialize the replicas up front so the measured stream is pure
		// command traffic, not first-touch buffer creation.
		if _, err := q.EnqueueWrite(a, 0, tileBytes); err != nil {
			return row, err
		}
		if _, err := q.EnqueueWrite(b, 0, tileBytes); err != nil {
			return row, err
		}
		if _, err := q.Finish(); err != nil {
			return row, err
		}
		states[i] = deviceState{q: q, k: k, a: a, b: b}
	}

	sw := startStopwatch()
	for _, st := range states {
		for t := 0; t < launches; t++ {
			evA, err := st.q.EnqueueWrite(st.a, 0, tileBytes)
			if err != nil {
				return row, err
			}
			if err := syncPoint(evA, mode); err != nil {
				return row, err
			}
			evB, err := st.q.EnqueueWrite(st.b, 0, tileBytes)
			if err != nil {
				return row, err
			}
			if err := syncPoint(evB, mode); err != nil {
				return row, err
			}
			// One work-group per tile: the in-order queue plus the buffer
			// chains order the launch behind its tile writes.
			ev, err := st.q.EnqueueKernel(st.k, []int{n, n}, []int{n, n}, nil, opts)
			if err != nil {
				return row, err
			}
			if err := syncPoint(ev, mode); err != nil {
				return row, err
			}
		}
	}
	for _, st := range states {
		if _, err := st.q.Finish(); err != nil {
			return row, err
		}
	}
	wall := sw.elapsed()

	row.Commands = int64(len(devs) * launches * 3)
	row.WallMS = float64(wall.Microseconds()) / 1000
	row.CmdsPerSec = float64(row.Commands) / wall.Seconds()
	row.VirtualSec = p.Metrics().Makespan.Seconds()
	return row, nil
}

// PipelineBFS issues a BFS-style frontier chain: one queue, levels
// dependent kernel launches in a row, each waiting on its predecessor —
// the worst case for a blocking protocol because nothing can overlap with
// the round trips.
func PipelineBFS(levels int, mode StreamMode, tcp bool) (PipelineRow, error) {
	row := PipelineRow{Workload: "BFS", Transport: transportName(tcp), Mode: mode.String()}
	p, cleanup, err := pipelinePlatform(1, tcp, mode.nodeWireVersion())
	if err != nil {
		return row, err
	}
	defer cleanup()

	devs := p.Devices(haocl.GPU)
	ctx, err := p.CreateContext(devs)
	if err != nil {
		return row, err
	}
	prog, err := ctx.CreateProgram(bfs.Source)
	if err != nil {
		return row, err
	}
	if err := prog.Build(); err != nil {
		return row, err
	}
	q, err := ctx.CreateQueue(devs[0])
	if err != nil {
		return row, err
	}

	g := bfs.GenerateTorus3D(4)
	bufOffsets, err := ctx.CreateBuffer(int64(4 * len(g.Offsets)))
	if err != nil {
		return row, err
	}
	bufEdges, err := ctx.CreateBuffer(int64(4 * len(g.Edges)))
	if err != nil {
		return row, err
	}
	bufLevels, err := ctx.CreateBuffer(int64(4 * g.V))
	if err != nil {
		return row, err
	}
	bufFlag, err := ctx.CreateBuffer(4)
	if err != nil {
		return row, err
	}
	if _, err := q.EnqueueWrite(bufOffsets, 0, mem.I32Bytes(g.Offsets)); err != nil {
		return row, err
	}
	if _, err := q.EnqueueWrite(bufEdges, 0, mem.I32Bytes(g.Edges)); err != nil {
		return row, err
	}

	kInit, err := prog.CreateKernel("bfs_init")
	if err != nil {
		return row, err
	}
	for i, v := range []any{bufLevels, int32(0), int32(g.V)} {
		if err := kInit.SetArg(i, v); err != nil {
			return row, err
		}
	}
	kFrontier, err := prog.CreateKernel("bfs_frontier")
	if err != nil {
		return row, err
	}
	for i, v := range []any{bufOffsets, bufEdges, bufLevels, bufFlag, int32(0), int32(g.V)} {
		if err := kFrontier.SetArg(i, v); err != nil {
			return row, err
		}
	}
	if _, err := q.Finish(); err != nil {
		return row, err
	}

	sw := startStopwatch()
	prev, err := q.EnqueueKernel(kInit, []int{g.V}, []int{g.V}, nil, nil)
	if err != nil {
		return row, err
	}
	if err := syncPoint(prev, mode); err != nil {
		return row, err
	}
	for level := 0; level < levels; level++ {
		// Argument bindings snapshot at enqueue, so the per-level scalar
		// can be rebound between pipelined launches.
		if err := kFrontier.SetArg(4, int32(level%16)); err != nil {
			return row, err
		}
		ev, err := q.EnqueueKernel(kFrontier, []int{g.V}, []int{g.V}, []*haocl.Event{prev}, nil)
		if err != nil {
			return row, err
		}
		if err := syncPoint(ev, mode); err != nil {
			return row, err
		}
		prev = ev
	}
	if _, err := q.Finish(); err != nil {
		return row, err
	}
	wall := sw.elapsed()

	row.Commands = int64(levels + 1)
	row.WallMS = float64(wall.Microseconds()) / 1000
	row.CmdsPerSec = float64(row.Commands) / wall.Seconds()
	row.VirtualSec = p.Metrics().Makespan.Seconds()
	return row, nil
}

func transportName(tcp bool) string {
	if tcp {
		return "tcp"
	}
	return "mem"
}

// Comparison relates one mode's enqueue rate to a baseline mode on the
// same workload.
type Comparison struct {
	Workload     string  `json:"workload"`
	Baseline     string  `json:"baseline"`
	Mode         string  `json:"mode"`
	Speedup      float64 `json:"speedup"`
	VirtualMatch bool    `json:"virtual_match"` // virtual makespans identical, as required
	// BytesRatio is mode's wire bytes over the baseline's (coherence
	// experiment: delta/full, < 1 on partial-update workloads). Zero
	// (omitted) when the experiment does not track wire bytes.
	BytesRatio float64 `json:"bytes_ratio,omitempty"`
}

// Report is a machine-readable experiment result, the payload behind
// `haocl-bench -json` and the committed BENCH_*.json baselines.
type Report struct {
	Experiment  string        `json:"experiment"`
	Quick       bool          `json:"quick"`
	Rows        []PipelineRow `json:"rows"`
	Comparisons []Comparison  `json:"comparisons"`
	// GOMAXPROCS records the measuring host's parallelism for experiments
	// whose wall-clock gain depends on it (lanes: functional execution is
	// CPU-bound, so a 1-core host shows parity where a multi-core host
	// shows near-linear overlap). Zero for experiments where it is
	// irrelevant.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
}

// streamSizes returns the workload sizes for the command-stream
// experiments.
func streamSizes(quick bool) (gpus, launches, levels int) {
	if quick {
		return 2, 100, 150
	}
	return 4, 400, 600
}

// bestOf samples a cell several times and keeps the fastest run: the
// streams run a handful of milliseconds, so a single scheduler hiccup on a
// small machine can swamp one sample.
func bestOf(reps int, sample func() (PipelineRow, error)) (PipelineRow, error) {
	var best PipelineRow
	for i := 0; i < reps; i++ {
		r, err := sample()
		if err != nil {
			return r, err
		}
		if i == 0 || r.CmdsPerSec > best.CmdsPerSec {
			best = r
		}
	}
	return best, nil
}

// streamReport measures both workloads in the given modes on loopback TCP
// — the deployment shape where per-command round trips and per-frame
// writes cost what the paper's GbE backbone charges (the in-process pipe
// harness keeps the modes equivalent and is not a meaningful baseline) —
// and compares every mode against the first.
func streamReport(experiment string, quick bool, modes []StreamMode) (*Report, error) {
	gpus, launches, levels := streamSizes(quick)
	const tcp, reps = true, 3
	rep := &Report{Experiment: experiment, Quick: quick}

	type workload struct {
		name   string
		sample func(mode StreamMode) (PipelineRow, error)
	}
	workloads := []workload{
		{"MatrixMul", func(mode StreamMode) (PipelineRow, error) {
			return PipelineMatmul(gpus, launches, mode, tcp)
		}},
		{"BFS", func(mode StreamMode) (PipelineRow, error) {
			return PipelineBFS(levels, mode, tcp)
		}},
	}
	for _, wl := range workloads {
		var cells []PipelineRow
		for _, mode := range modes {
			mode := mode
			r, err := bestOf(reps, func() (PipelineRow, error) { return wl.sample(mode) })
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, r)
			// Compare against every earlier mode, so a three-mode run
			// reports batched-vs-pipelined (the number that isolates the
			// coalescer) as well as everything-vs-sync.
			for _, base := range cells {
				rep.Comparisons = append(rep.Comparisons, Comparison{
					Workload: wl.name,
					Baseline: base.Mode,
					Mode:     r.Mode,
					Speedup:  r.CmdsPerSec / base.CmdsPerSec,
					// Virtual makespans are float64 seconds derived from
					// integer virtual nanoseconds; equality is exact.
					VirtualMatch: r.VirtualSec == base.VirtualSec,
				})
			}
			cells = append(cells, r)
		}
	}
	return rep, nil
}

// printReport renders a report the way the text experiments always have.
func printReport(w io.Writer, rep *Report) {
	for _, r := range rep.Rows {
		fmt.Fprintln(w, r)
	}
	for _, c := range rep.Comparisons {
		match := "virtual makespan unchanged"
		if !c.VirtualMatch {
			// A byte-tracking comparison (coherence) that actually moved
			// fewer bytes legitimately shrinks virtual time with the
			// traffic; everywhere else — including a byte-identical
			// coherence control — divergence is a correctness failure.
			if c.BytesRatio > 0 && c.BytesRatio < 1 {
				match = "virtual makespan shrank with the traffic"
			} else {
				match = "VIRTUAL MAKESPAN DIVERGED"
			}
		}
		extra := ""
		if c.BytesRatio > 0 {
			extra = fmt.Sprintf(", %.2fx wire bytes", c.BytesRatio)
		}
		fmt.Fprintf(w, "%s: %s enqueue rate %.1fx %s (%s%s)\n",
			c.Workload, c.Mode, c.Speedup, c.Baseline, match, extra)
	}
}

// PipelineReport measures sync vs pipelined enqueue (both against
// v2-pinned nodes, isolating pipelining from batching).
func PipelineReport(quick bool) (*Report, error) {
	return streamReport("pipeline", quick, []StreamMode{ModeSync, ModePipelined})
}

// Pipeline runs both workloads in sync and pipelined modes on loopback
// TCP and prints the comparison.
func Pipeline(w io.Writer, quick bool) error {
	gpus, launches, levels := streamSizes(quick)
	fmt.Fprintln(w, "=== Async command pipelining: sync vs pipelined enqueue ===")
	fmt.Fprintf(w, "(MatrixMul: %d tiles x 3 commands across %d GPU nodes; BFS: %d-level frontier chain)\n",
		gpus*launches, gpus, levels)
	fmt.Fprintln(w, "(loopback TCP nodes pinned at wire v2 — the pre-batching deployment shape where each")
	fmt.Fprintln(w, " blocked enqueue pays a real round trip and every frame its own write)")
	rep, err := PipelineReport(quick)
	if err != nil {
		return err
	}
	printReport(w, rep)
	return nil
}
