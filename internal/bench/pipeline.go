package bench

import (
	"fmt"
	"io"
	"time"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps/bfs"
	"github.com/haocl-project/haocl/internal/apps/matmul"
	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/mem"
	"github.com/haocl-project/haocl/internal/node"
	"github.com/haocl-project/haocl/internal/sim"
	"github.com/haocl-project/haocl/internal/transport"
)

// This file measures the asynchronous command pipelining of the backbone
// (paper §III-C: the wrapper library ships every API call as a message over
// an async communication layer). The same command stream is issued twice:
//
//	sync       — the host waits for every command's response before issuing
//	             the next one, the behavior of the pre-pipelining runtime
//	             (one full round trip per command);
//	pipelined  — commands stream out back to back and the host synchronizes
//	             only at Queue.Finish, the runtime's current behavior.
//
// Virtual time is identical in both modes — pipelining changes when the
// host learns about completions, not when the simulated hardware works —
// so the number that moves is the host-side wall-clock enqueue rate
// (commands/second) and with it the end-to-end makespan of command-heavy
// workloads on real deployments.

// PipelineRow is one (workload, transport, mode) measurement.
type PipelineRow struct {
	Workload   string
	Transport  string // "mem" (in-process pipes) or "tcp" (loopback sockets)
	Mode       string // "sync" or "pipelined"
	Commands   int64
	WallMS     float64
	CmdsPerSec float64
	VirtualSec float64 // virtual makespan, identical across modes
}

func (r PipelineRow) String() string {
	return fmt.Sprintf("%-12s %-4s %-10s commands=%-6d wall=%8.2fms rate=%10.0f cmds/s virtual=%8.3fs",
		r.Workload, r.Transport, r.Mode, r.Commands, r.WallMS, r.CmdsPerSec, r.VirtualSec)
}

// pipelinePlatform builds a gpus-node cluster either on the in-process
// pipe network or on real loopback TCP sockets — the latter is the
// deployment shape where the per-command round trip actually costs what
// the paper's GbE backbone charges.
func pipelinePlatform(gpus int, tcp bool) (*haocl.Platform, func(), error) {
	if !tcp {
		lc, err := cluster(gpus, 0)
		if err != nil {
			return nil, nil, err
		}
		return lc.Platform, func() { lc.Close() }, nil
	}
	icd := device.NewICD()
	sim.RegisterDrivers(icd, Registry())
	cfg := &haocl.ClusterConfig{UserID: "bench-pipeline"}
	var servers []*transport.Server
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for i := 0; i < gpus; i++ {
		name := fmt.Sprintf("tcp-gpu-%d", i)
		n, err := node.New(node.Options{
			Name:        name,
			Devices:     []device.Config{{Driver: sim.DriverGPU, ID: 1, Shared: true}},
			ICD:         icd,
			ExecWorkers: 1,
		})
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		srv := n.Serve()
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		servers = append(servers, srv)
		cfg.Nodes = append(cfg.Nodes, haocl.NodeSpec{
			Name: name, Addr: addr,
			Devices: []haocl.DeviceSpec{{Type: "gpu", Shared: true}},
		})
	}
	p, err := haocl.Connect(cfg, haocl.WithClientName("bench-pipeline"))
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	return p, func() { p.Close(); cleanup() }, nil
}

// syncPoint waits for ev when the stream runs in synchronous mode.
func syncPoint(ev *haocl.Event, pipelined bool) error {
	if pipelined || ev == nil {
		return nil
	}
	return ev.Wait()
}

// PipelineMatmul streams MatrixMul tiles across gpus nodes: for every
// tile, the host writes the A and B sub-blocks and launches the tile
// kernel — three commands per tile, the command-heavy shape that makes
// enqueue latency the bottleneck of a blocking protocol.
func PipelineMatmul(gpus, launches int, pipelined, tcp bool) (PipelineRow, error) {
	row := PipelineRow{Workload: "MatrixMul", Transport: transportName(tcp), Mode: mode(pipelined)}
	p, cleanup, err := pipelinePlatform(gpus, tcp)
	if err != nil {
		return row, err
	}
	defer cleanup()

	devs := p.Devices(haocl.GPU)
	ctx, err := p.CreateContext(devs)
	if err != nil {
		return row, err
	}
	prog, err := ctx.CreateProgram(matmul.Source)
	if err != nil {
		return row, err
	}
	if err := prog.Build(); err != nil {
		return row, err
	}

	const n = 8 // functional tile edge: tiny, so command traffic dominates
	tile := make([]float32, n*n)
	for i := range tile {
		tile[i] = float32(i%7) * 0.25
	}
	tileBytes := mem.F32Bytes(tile)
	// Model each launch as a paper-scale 1000³ tile so the virtual times
	// stay in the regime the figures report.
	costs := matmul.Cost(1000, 1000, 1000)
	opts := &haocl.LaunchOptions{CostFlops: costs.Flops, CostBytes: costs.Bytes}

	type deviceState struct {
		q    *haocl.Queue
		k    *haocl.Kernel
		a, b *haocl.Buffer
	}
	states := make([]deviceState, len(devs))
	for i, dev := range devs {
		q, err := ctx.CreateQueue(dev)
		if err != nil {
			return row, err
		}
		a, err := ctx.CreateBuffer(int64(len(tileBytes)))
		if err != nil {
			return row, err
		}
		b, err := ctx.CreateBuffer(int64(len(tileBytes)))
		if err != nil {
			return row, err
		}
		c, err := ctx.CreateBuffer(int64(len(tileBytes)))
		if err != nil {
			return row, err
		}
		k, err := prog.CreateKernel("matmul")
		if err != nil {
			return row, err
		}
		for idx, v := range []any{a, b, c, int32(n), int32(n), int32(n)} {
			if err := k.SetArg(idx, v); err != nil {
				return row, err
			}
		}
		// Materialize the replicas up front so the measured stream is pure
		// command traffic, not first-touch buffer creation.
		if _, err := q.EnqueueWrite(a, 0, tileBytes); err != nil {
			return row, err
		}
		if _, err := q.EnqueueWrite(b, 0, tileBytes); err != nil {
			return row, err
		}
		if _, err := q.Finish(); err != nil {
			return row, err
		}
		states[i] = deviceState{q: q, k: k, a: a, b: b}
	}

	start := time.Now()
	for _, st := range states {
		for t := 0; t < launches; t++ {
			evA, err := st.q.EnqueueWrite(st.a, 0, tileBytes)
			if err != nil {
				return row, err
			}
			if err := syncPoint(evA, pipelined); err != nil {
				return row, err
			}
			evB, err := st.q.EnqueueWrite(st.b, 0, tileBytes)
			if err != nil {
				return row, err
			}
			if err := syncPoint(evB, pipelined); err != nil {
				return row, err
			}
			// One work-group per tile: the in-order queue plus the buffer
			// chains order the launch behind its tile writes.
			ev, err := st.q.EnqueueKernel(st.k, []int{n, n}, []int{n, n}, nil, opts)
			if err != nil {
				return row, err
			}
			if err := syncPoint(ev, pipelined); err != nil {
				return row, err
			}
		}
	}
	for _, st := range states {
		if _, err := st.q.Finish(); err != nil {
			return row, err
		}
	}
	wall := time.Since(start)

	row.Commands = int64(len(devs) * launches * 3)
	row.WallMS = float64(wall.Microseconds()) / 1000
	row.CmdsPerSec = float64(row.Commands) / wall.Seconds()
	row.VirtualSec = p.Metrics().Makespan.Seconds()
	return row, nil
}

// PipelineBFS issues a BFS-style frontier chain: one queue, levels
// dependent kernel launches in a row, each waiting on its predecessor —
// the worst case for a blocking protocol because nothing can overlap with
// the round trips.
func PipelineBFS(levels int, pipelined, tcp bool) (PipelineRow, error) {
	row := PipelineRow{Workload: "BFS", Transport: transportName(tcp), Mode: mode(pipelined)}
	p, cleanup, err := pipelinePlatform(1, tcp)
	if err != nil {
		return row, err
	}
	defer cleanup()

	devs := p.Devices(haocl.GPU)
	ctx, err := p.CreateContext(devs)
	if err != nil {
		return row, err
	}
	prog, err := ctx.CreateProgram(bfs.Source)
	if err != nil {
		return row, err
	}
	if err := prog.Build(); err != nil {
		return row, err
	}
	q, err := ctx.CreateQueue(devs[0])
	if err != nil {
		return row, err
	}

	g := bfs.GenerateTorus3D(4)
	bufOffsets, err := ctx.CreateBuffer(int64(4 * len(g.Offsets)))
	if err != nil {
		return row, err
	}
	bufEdges, err := ctx.CreateBuffer(int64(4 * len(g.Edges)))
	if err != nil {
		return row, err
	}
	bufLevels, err := ctx.CreateBuffer(int64(4 * g.V))
	if err != nil {
		return row, err
	}
	bufFlag, err := ctx.CreateBuffer(4)
	if err != nil {
		return row, err
	}
	if _, err := q.EnqueueWrite(bufOffsets, 0, mem.I32Bytes(g.Offsets)); err != nil {
		return row, err
	}
	if _, err := q.EnqueueWrite(bufEdges, 0, mem.I32Bytes(g.Edges)); err != nil {
		return row, err
	}

	kInit, err := prog.CreateKernel("bfs_init")
	if err != nil {
		return row, err
	}
	for i, v := range []any{bufLevels, int32(0), int32(g.V)} {
		if err := kInit.SetArg(i, v); err != nil {
			return row, err
		}
	}
	kFrontier, err := prog.CreateKernel("bfs_frontier")
	if err != nil {
		return row, err
	}
	for i, v := range []any{bufOffsets, bufEdges, bufLevels, bufFlag, int32(0), int32(g.V)} {
		if err := kFrontier.SetArg(i, v); err != nil {
			return row, err
		}
	}
	if _, err := q.Finish(); err != nil {
		return row, err
	}

	start := time.Now()
	prev, err := q.EnqueueKernel(kInit, []int{g.V}, []int{g.V}, nil, nil)
	if err != nil {
		return row, err
	}
	if err := syncPoint(prev, pipelined); err != nil {
		return row, err
	}
	for level := 0; level < levels; level++ {
		// Argument bindings snapshot at enqueue, so the per-level scalar
		// can be rebound between pipelined launches.
		if err := kFrontier.SetArg(4, int32(level%16)); err != nil {
			return row, err
		}
		ev, err := q.EnqueueKernel(kFrontier, []int{g.V}, []int{g.V}, []*haocl.Event{prev}, nil)
		if err != nil {
			return row, err
		}
		if err := syncPoint(ev, pipelined); err != nil {
			return row, err
		}
		prev = ev
	}
	if _, err := q.Finish(); err != nil {
		return row, err
	}
	wall := time.Since(start)

	row.Commands = int64(levels + 1)
	row.WallMS = float64(wall.Microseconds()) / 1000
	row.CmdsPerSec = float64(row.Commands) / wall.Seconds()
	row.VirtualSec = p.Metrics().Makespan.Seconds()
	return row, nil
}

func mode(pipelined bool) string {
	if pipelined {
		return "pipelined"
	}
	return "sync"
}

func transportName(tcp bool) string {
	if tcp {
		return "tcp"
	}
	return "mem"
}

// Pipeline runs both workloads in both modes on both transports and
// prints the comparison.
func Pipeline(w io.Writer, quick bool) error {
	gpus, launches, levels := 4, 400, 600
	if quick {
		gpus, launches, levels = 2, 100, 150
	}
	fmt.Fprintln(w, "=== Async command pipelining: sync vs pipelined enqueue ===")
	fmt.Fprintf(w, "(MatrixMul: %d tiles x 3 commands across %d GPU nodes; BFS: %d-level frontier chain)\n",
		gpus*launches, gpus, levels)
	fmt.Fprintln(w, "(loopback TCP nodes — the deployment shape where each blocked enqueue pays a real round trip;")
	fmt.Fprintln(w, " the in-process pipe harness keeps both modes equivalent and is not a meaningful baseline)")

	// Best of three samples per cell: the streams run a handful of
	// milliseconds, so a single scheduler hiccup on a small machine can
	// swamp one sample.
	const tcp, reps = true, 3
	best := func(sample func() (PipelineRow, error)) (PipelineRow, error) {
		var best PipelineRow
		for i := 0; i < reps; i++ {
			r, err := sample()
			if err != nil {
				return r, err
			}
			if i == 0 || r.CmdsPerSec > best.CmdsPerSec {
				best = r
			}
		}
		return best, nil
	}
	var rows []PipelineRow
	for _, pipelined := range []bool{false, true} {
		pipelined := pipelined
		r, err := best(func() (PipelineRow, error) { return PipelineMatmul(gpus, launches, pipelined, tcp) })
		if err != nil {
			return err
		}
		rows = append(rows, r)
	}
	for _, pipelined := range []bool{false, true} {
		pipelined := pipelined
		r, err := best(func() (PipelineRow, error) { return PipelineBFS(levels, pipelined, tcp) })
		if err != nil {
			return err
		}
		rows = append(rows, r)
	}
	for _, r := range rows {
		fmt.Fprintln(w, r)
	}
	for i := 0; i+1 < len(rows); i += 2 {
		syncRow, pipeRow := rows[i], rows[i+1]
		fmt.Fprintf(w, "%s/%s: pipelined enqueue rate %.1fx sync (virtual makespan unchanged: %.3fs vs %.3fs)\n",
			syncRow.Workload, syncRow.Transport, pipeRow.CmdsPerSec/syncRow.CmdsPerSec,
			syncRow.VirtualSec, pipeRow.VirtualSec)
	}
	return nil
}
