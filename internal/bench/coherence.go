package bench

import (
	"bytes"
	"fmt"
	"io"
	"time"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/core"
)

// This file measures the range-aware coherence layer (DESIGN.md §5). The
// pre-range runtime migrated whole buffers whenever a replica was stale at
// all; the range layer tracks per-replica validity as interval sets and
// delta migration moves only the stale byte ranges. The experiment drives
// a partial-update loop — the halo-exchange / incremental-update shape the
// layer exists for — over loopback TCP in two migration modes:
//
//	full   — core.MigrateFull: any staleness re-migrates the whole
//	         replica, the pre-range behavior;
//	delta  — core.MigrateHostRelay: only the stale ranges travel, relayed
//	         through the host (the pre-p2p data path).
//
// The default MigrateDelta mode additionally moves owner-covered ranges
// node→node; it is measured against host-relay by the p2p experiment
// (p2p.go), which keeps this one a pure range-layer comparison.
//
// The number that moves is modeled wire traffic (Metrics.WireBytes) and
// with it the virtual makespan; functional results are byte-identical, and
// on the fully-stale workload — where the delta IS the whole buffer — the
// two modes must produce bit-identical virtual makespans and byte counts.

// coherenceModeName names a migration mode in report rows.
func coherenceModeName(m core.MigrationMode) string {
	switch m {
	case core.MigrateFull:
		return "full"
	case core.MigrateHostRelay:
		return "delta"
	default:
		return "p2p"
	}
}

// coherenceSizes returns the buffer geometry for the experiment.
func coherenceSizes(quick bool) (size, chunk int64, partialIters, staleIters int) {
	if quick {
		return 64 << 10, 4 << 10, 8, 4
	}
	return 256 << 10, 16 << 10, 32, 8
}

// coherenceHarness builds the 2-node loopback-TCP cluster with one buffer
// plus both replicas materialized, so the measured loop starts from a
// settled coherence state, and returns the metrics baseline at that point.
type coherenceHarness struct {
	p        *haocl.Platform
	cleanup  func()
	ctx      *haocl.Context
	qA, qB   *haocl.Queue
	buf      *haocl.Buffer
	expected []byte
	base     haocl.Metrics
}

func newCoherenceHarness(size int64, mode core.MigrationMode) (*coherenceHarness, error) {
	p, cleanup, err := pipelinePlatform(2, true, 0)
	if err != nil {
		return nil, err
	}
	h := &coherenceHarness{p: p, cleanup: cleanup}
	ok := false
	defer func() {
		if !ok {
			cleanup()
		}
	}()
	p.Runtime().SetMigrationMode(mode)

	devs := p.Devices(haocl.GPU)
	if len(devs) != 2 {
		return nil, fmt.Errorf("coherence: cluster exposes %d devices, want 2", len(devs))
	}
	ctx, err := p.CreateContext(devs)
	if err != nil {
		return nil, err
	}
	h.ctx = ctx
	if h.qA, err = ctx.CreateQueue(devs[0]); err != nil {
		return nil, err
	}
	if h.qB, err = ctx.CreateQueue(devs[1]); err != nil {
		return nil, err
	}
	if h.buf, err = ctx.CreateBuffer(size); err != nil {
		return nil, err
	}
	h.expected = make([]byte, size)
	for i := range h.expected {
		h.expected[i] = byte(i % 251)
	}
	if _, err := h.qA.EnqueueWrite(h.buf, 0, h.expected); err != nil {
		return nil, err
	}
	if got, _, err := h.qB.EnqueueRead(h.buf, 0, size); err != nil {
		return nil, err
	} else if !bytes.Equal(got, h.expected) {
		return nil, fmt.Errorf("coherence: setup read mismatch")
	}
	h.base = p.Metrics()
	ok = true
	return h, nil
}

// finish folds the loop's wall clock and metrics delta into the row and
// verifies the final buffer contents on both nodes.
func (h *coherenceHarness) finish(row *PipelineRow, wall time.Duration) error {
	for _, q := range []*haocl.Queue{h.qA, h.qB} {
		got, _, err := q.EnqueueRead(h.buf, 0, int64(len(h.expected)))
		if err != nil {
			return err
		}
		if !bytes.Equal(got, h.expected) {
			return fmt.Errorf("coherence: final contents diverged on %s", q.Device().Key())
		}
	}
	m := h.p.Metrics()
	row.Commands = m.Commands - h.base.Commands
	row.WallMS = float64(wall.Microseconds()) / 1000
	row.CmdsPerSec = float64(row.Commands) / wall.Seconds()
	row.VirtualSec = m.Makespan.Seconds()
	row.WireMB = float64(m.WireBytes-h.base.WireBytes) / (1 << 20)
	row.HostWireMB = float64(m.HostWireBytes-h.base.HostWireBytes) / (1 << 20)
	row.PeerWireMB = float64(m.PeerWireBytes-h.base.PeerWireBytes) / (1 << 20)
	return nil
}

// CoherencePartialUpdate runs the partial-update loop: each iteration the
// host rewrites one chunk-sized slice of the buffer through node A, then
// node B consumes the whole buffer. Only the chunk is stale on B, so
// delta migration pushes chunk bytes where full migration pushes the
// whole buffer — every iteration, forever. The consumer read checks the
// full contents against the expected mirror each time.
func CoherencePartialUpdate(size, chunk int64, iters int, mode core.MigrationMode) (PipelineRow, error) {
	row := PipelineRow{Workload: "partial-update", Transport: "tcp", Mode: coherenceModeName(mode)}
	h, err := newCoherenceHarness(size, mode)
	if err != nil {
		return row, err
	}
	defer h.cleanup()

	sw := startStopwatch()
	for i := 0; i < iters; i++ {
		off := (int64(i) * chunk) % (size - chunk + 1)
		data := make([]byte, chunk)
		for j := range data {
			data[j] = byte((i + j*3) % 253)
		}
		if _, err := h.qA.EnqueueWrite(h.buf, off, data); err != nil {
			return row, err
		}
		copy(h.expected[off:], data)
		got, _, err := h.qB.EnqueueRead(h.buf, 0, size)
		if err != nil {
			return row, err
		}
		if !bytes.Equal(got, h.expected) {
			return row, fmt.Errorf("coherence: iteration %d read diverged from mirror", i)
		}
	}
	wall := sw.elapsed()
	return row, h.finish(&row, wall)
}

// CoherenceFullyStale rewrites the whole buffer through node A each
// iteration before node B consumes it: the delta is the entire buffer, so
// the two migration modes must move identical bytes and produce
// bit-identical virtual makespans — the invariance CI's bench-smoke
// asserts.
func CoherenceFullyStale(size int64, iters int, mode core.MigrationMode) (PipelineRow, error) {
	row := PipelineRow{Workload: "fully-stale", Transport: "tcp", Mode: coherenceModeName(mode)}
	h, err := newCoherenceHarness(size, mode)
	if err != nil {
		return row, err
	}
	defer h.cleanup()

	sw := startStopwatch()
	for i := 0; i < iters; i++ {
		for j := range h.expected {
			h.expected[j] = byte((i + j) % 249)
		}
		if _, err := h.qA.EnqueueWrite(h.buf, 0, h.expected); err != nil {
			return row, err
		}
		got, _, err := h.qB.EnqueueRead(h.buf, 0, size)
		if err != nil {
			return row, err
		}
		if !bytes.Equal(got, h.expected) {
			return row, fmt.Errorf("coherence: iteration %d read diverged from mirror", i)
		}
	}
	wall := sw.elapsed()
	return row, h.finish(&row, wall)
}

// CoherenceReport measures both workloads in both migration modes and
// compares delta against the full-migration baseline.
func CoherenceReport(quick bool) (*Report, error) {
	size, chunk, partialIters, staleIters := coherenceSizes(quick)
	rep := &Report{Experiment: "coherence", Quick: quick}

	type workload struct {
		name   string
		sample func(mode core.MigrationMode) (PipelineRow, error)
	}
	workloads := []workload{
		{"partial-update", func(mode core.MigrationMode) (PipelineRow, error) {
			return CoherencePartialUpdate(size, chunk, partialIters, mode)
		}},
		{"fully-stale", func(mode core.MigrationMode) (PipelineRow, error) {
			return CoherenceFullyStale(size, staleIters, mode)
		}},
	}
	for _, wl := range workloads {
		full, err := wl.sample(core.MigrateFull)
		if err != nil {
			return nil, err
		}
		delta, err := wl.sample(core.MigrateHostRelay)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, full, delta)
		rep.Comparisons = append(rep.Comparisons, Comparison{
			Workload:     wl.name,
			Baseline:     full.Mode,
			Mode:         delta.Mode,
			Speedup:      delta.CmdsPerSec / full.CmdsPerSec,
			VirtualMatch: delta.VirtualSec == full.VirtualSec,
			BytesRatio:   delta.WireMB / full.WireMB,
		})
	}
	return rep, nil
}

// Coherence runs the full-vs-delta migration comparison and prints it.
func Coherence(w io.Writer, quick bool) error {
	size, chunk, partialIters, staleIters := coherenceSizes(quick)
	fmt.Fprintln(w, "=== Range-aware coherence: full-buffer vs delta migration ===")
	fmt.Fprintf(w, "(partial-update: %d iterations rewriting one %d KiB chunk of a %d KiB buffer on node A,\n",
		partialIters, chunk>>10, size>>10)
	fmt.Fprintf(w, " consumed in full on node B; fully-stale: %d full rewrites — the control where both\n", staleIters)
	fmt.Fprintln(w, " modes must move identical bytes and produce bit-identical virtual makespans)")
	rep, err := CoherenceReport(quick)
	if err != nil {
		return err
	}
	printReport(w, rep)
	return nil
}
