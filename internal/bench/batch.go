package bench

import (
	"fmt"
	"io"
)

// This file measures wire-frame batching on top of the pipelined command
// path: with round trips already gone (-exp pipeline), the per-frame write
// syscall and header overhead dominate the host→node control path, and the
// wire v3 coalescer amortizes both by enveloping bursts of small frames.
// The sync and pipelined cells run against nodes pinned at wire v2, so
// "pipelined" reproduces the pre-batching runtime exactly and "batched"
// isolates the coalescer's contribution; it also exercises the v2↔v3
// negotiation fallback for real, since the v2-pinned nodes make the host
// drop back to one-frame-per-write.

// BatchReport measures sync vs pipelined (v2 fallback) vs batched (v3
// coalescing) on the MatrixMul tile stream and the BFS frontier chain.
func BatchReport(quick bool) (*Report, error) {
	return streamReport("batch", quick, []StreamMode{ModeSync, ModePipelined, ModeBatched})
}

// Batch runs the three-mode comparison on loopback TCP and prints it.
func Batch(w io.Writer, quick bool) error {
	gpus, launches, levels := streamSizes(quick)
	fmt.Fprintln(w, "=== Wire-frame batching: sync vs pipelined vs batched enqueue ===")
	fmt.Fprintf(w, "(MatrixMul: %d tiles x 3 commands across %d GPU nodes; BFS: %d-level frontier chain)\n",
		gpus*launches, gpus, levels)
	fmt.Fprintln(w, "(loopback TCP; sync/pipelined nodes pinned at wire v2, batched nodes negotiate v3)")
	rep, err := BatchReport(quick)
	if err != nil {
		return err
	}
	printReport(w, rep)
	return nil
}
