package bench

import (
	"bytes"
	"fmt"
	"io"

	"github.com/haocl-project/haocl/internal/core"
)

// This file measures the peer-to-peer data plane (DESIGN.md §6) against
// the host-relay baseline it replaced. Both legs run the same
// device-resident update loop over loopback TCP; only the migration mode
// differs:
//
//	host-relay — core.MigrateHostRelay: stale ranges travel owner→host→
//	             consumer, crossing the host NIC twice (the pre-p2p path);
//	p2p        — core.MigrateDelta: owner-covered ranges travel directly
//	             node→node via PushRange/AwaitPush, and the host NIC
//	             carries control frames only.
//
// The loop keeps the host off the data plane on purpose — the producer is
// a device-side copy on node A, the consumer a device-side copy on node B
// — so the only payload bytes in the measured window are the migrations
// themselves. That is what makes the HostWireMB/PeerWireMB split the
// experiment's headline: in the p2p leg host traffic collapses to control
// frames (CI asserts a >10x reduction on the partial-update loop) while
// functional results stay byte-identical and the virtual makespan gets no
// worse — one node-link crossing replaces two host-NIC crossings.

// P2PMigrationLoop drives iters rounds of a device-side producer/consumer
// pair: node A's queue copies chunk bytes into the shared buffer (staling
// the consumer's replica by exactly that range), then node B's queue
// copies the whole buffer into a scratch buffer, forcing the stale range
// to migrate. chunk == size gives the fully-stale variant. Verification
// reads run after the measured window — they are host traffic by
// construction, identical in both modes, and would otherwise bury the
// loop's host-NIC numbers.
func P2PMigrationLoop(workload string, size, chunk int64, iters int, mode core.MigrationMode) (PipelineRow, error) {
	row := PipelineRow{Workload: workload, Transport: "tcp", Mode: coherenceModeName(mode)}
	h, err := newCoherenceHarness(size, mode)
	if err != nil {
		return row, err
	}
	defer h.cleanup()

	srcData := make([]byte, size)
	for i := range srcData {
		srcData[i] = byte((i*7 + 13) % 255)
	}
	src, err := h.ctx.CreateBuffer(size)
	if err != nil {
		return row, err
	}
	if _, err := h.qA.EnqueueWrite(src, 0, srcData); err != nil {
		return row, err
	}
	scratch, err := h.ctx.CreateBuffer(size)
	if err != nil {
		return row, err
	}
	// Settle every replica the loop will touch before the measured window.
	if _, err := h.qB.EnqueueCopy(h.buf, scratch, 0, 0, size); err != nil {
		return row, err
	}
	if _, err := h.qB.Finish(); err != nil {
		return row, err
	}
	if _, err := h.qA.Finish(); err != nil {
		return row, err
	}
	h.base = h.p.Metrics()

	sw := startStopwatch()
	for i := 0; i < iters; i++ {
		off := (int64(i) * chunk) % (size - chunk + 1)
		srcOff := ((int64(i)*3 + 1) * chunk) % (size - chunk + 1)
		if _, err := h.qA.EnqueueCopy(src, h.buf, srcOff, off, chunk); err != nil {
			return row, err
		}
		copy(h.expected[off:off+chunk], srcData[srcOff:srcOff+chunk])
		if _, err := h.qB.EnqueueCopy(h.buf, scratch, 0, 0, size); err != nil {
			return row, err
		}
	}
	if _, err := h.qB.Finish(); err != nil {
		return row, err
	}
	if _, err := h.qA.Finish(); err != nil {
		return row, err
	}
	wall := sw.elapsed()

	m := h.p.Metrics()
	row.Commands = m.Commands - h.base.Commands
	row.WallMS = float64(wall.Microseconds()) / 1000
	row.CmdsPerSec = float64(row.Commands) / wall.Seconds()
	row.VirtualSec = m.Makespan.Seconds()
	row.WireMB = float64(m.WireBytes-h.base.WireBytes) / (1 << 20)
	row.HostWireMB = float64(m.HostWireBytes-h.base.HostWireBytes) / (1 << 20)
	row.PeerWireMB = float64(m.PeerWireBytes-h.base.PeerWireBytes) / (1 << 20)

	// Verification epilogue: the consumer's view must match the host-side
	// mirror bit for bit in either mode.
	got, _, err := h.qB.EnqueueRead(scratch, 0, size)
	if err != nil {
		return row, err
	}
	if !bytes.Equal(got, h.expected) {
		return row, fmt.Errorf("p2p: %s consumer contents diverged from mirror", workload)
	}
	return row, nil
}

// P2PReport measures both workloads in both data-plane modes and compares
// p2p against the host-relay baseline. For this experiment BytesRatio is
// host-NIC traffic p2p/relay (control frames over payloads) and
// VirtualMatch reports "p2p no slower", the acceptance condition.
func P2PReport(quick bool) (*Report, error) {
	size, chunk, partialIters, staleIters := coherenceSizes(quick)
	rep := &Report{Experiment: "p2p", Quick: quick}

	type workload struct {
		name  string
		chunk int64
		iters int
	}
	workloads := []workload{
		{"partial-update", chunk, partialIters},
		{"fully-stale", size, staleIters},
	}
	for _, wl := range workloads {
		relay, err := P2PMigrationLoop(wl.name, size, wl.chunk, wl.iters, core.MigrateHostRelay)
		if err != nil {
			return nil, err
		}
		p2p, err := P2PMigrationLoop(wl.name, size, wl.chunk, wl.iters, core.MigrateDelta)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, relay, p2p)
		rep.Comparisons = append(rep.Comparisons, Comparison{
			Workload:     wl.name,
			Baseline:     relay.Mode,
			Mode:         p2p.Mode,
			Speedup:      p2p.CmdsPerSec / relay.CmdsPerSec,
			VirtualMatch: p2p.VirtualSec <= relay.VirtualSec,
			BytesRatio:   p2p.HostWireMB / relay.HostWireMB,
		})
	}
	return rep, nil
}

// P2P runs the host-relay-vs-p2p comparison and prints it.
func P2P(w io.Writer, quick bool) error {
	size, chunk, partialIters, staleIters := coherenceSizes(quick)
	fmt.Fprintln(w, "=== Peer-to-peer data plane: host-relay vs direct node→node migration ===")
	fmt.Fprintf(w, "(device-side producer on node A stales %d KiB of a %d KiB buffer, device-side consumer\n",
		chunk>>10, size>>10)
	fmt.Fprintf(w, " on node B forces the migration; %d partial / %d fully-stale iterations. bytes_ratio is\n",
		partialIters, staleIters)
	fmt.Fprintln(w, " host-NIC traffic p2p/relay — control frames over payloads; virtual_match: p2p no slower)")
	rep, err := P2PReport(quick)
	if err != nil {
		return err
	}
	printReport(w, rep)
	return nil
}
