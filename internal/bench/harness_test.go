package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestTable1 checks that the generated input sizes match the paper's
// Table I within rounding (760MB, 800MB, 100MB, 240MB, 1.1GB).
func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	paper := map[string][2]float64{ // app -> {paper MB, tolerance fraction}
		"MatrixMul": {760, 0.10},
		"CFD":       {800, 0.10},
		"kNN":       {100, 0.10},
		"BFS":       {240, 0.20},
		"SpMV":      {1126, 0.10},
	}
	cases := Cases()
	if len(cases) != 5 {
		t.Fatalf("Table I has %d rows, want 5", len(cases))
	}
	for _, c := range cases {
		want, ok := paper[c.Name]
		if !ok {
			t.Fatalf("unexpected app %q", c.Name)
		}
		gotMB := float64(c.InputBytes) / (1 << 20)
		if gotMB < want[0]*(1-want[1]) || gotMB > want[0]*(1+want[1]) {
			t.Errorf("%s input %.0fMB outside %.0f%% of paper's %.0fMB",
				c.Name, gotMB, want[1]*100, want[0])
		}
		if !strings.Contains(out, c.Name) {
			t.Errorf("table output missing %s", c.Name)
		}
	}
}

// TestFig2Shapes verifies the qualitative claims Fig. 2 makes, benchmark
// by benchmark, on reduced sweeps: HaoCL scales with node count, beats
// SnuCL-D at scale, and CFD is unsupported on SnuCL-D.
func TestFig2Shapes(t *testing.T) {
	opts := Fig2Options{
		GPUCounts:    []int{1, 2, 4, 8, 16},
		FPGACounts:   []int{1, 2, 4},
		HeteroMixes:  [][2]int{{2, 1}, {8, 4}},
		SnuCLDCounts: []int{16},
	}
	for _, c := range Cases() {
		rows, err := Fig2App(c, opts)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		series := make(map[string][]Fig2Row)
		for _, r := range rows {
			series[r.Series] = append(series[r.Series], r)
		}

		// HaoCL-GPU times strictly decrease with node count.
		gpu := series["HaoCL-GPU"]
		for i := 1; i < len(gpu); i++ {
			if gpu[i].Seconds >= gpu[i-1].Seconds {
				t.Errorf("%s: HaoCL-GPU not scaling: n=%d %.3fs >= n=%d %.3fs",
					c.Name, gpu[i].Nodes, gpu[i].Seconds, gpu[i-1].Nodes, gpu[i-1].Seconds)
			}
		}
		// Single-node HaoCL overhead vs local is bounded (negligible in
		// the paper's terms for these compute-dominated workloads).
		if gpu[0].Speedup < 0.80 {
			t.Errorf("%s: single-node HaoCL efficiency %.2f < 0.80", c.Name, gpu[0].Speedup)
		}
		// At 16 nodes the speedup is substantial.
		last := gpu[len(gpu)-1]
		if last.Nodes == 16 && last.Speedup < 3 {
			t.Errorf("%s: 16-node speedup only %.2fx", c.Name, last.Speedup)
		}

		// FPGA series also scales.
		fpga := series["HaoCL-FPGA"]
		for i := 1; i < len(fpga); i++ {
			if fpga[i].Seconds >= fpga[i-1].Seconds {
				t.Errorf("%s: HaoCL-FPGA not scaling at n=%d", c.Name, fpga[i].Nodes)
			}
		}

		// SnuCL-D comparison at 16 nodes: HaoCL wins (or SnuCL-D cannot
		// run the benchmark at all, as with CFD).
		sn := series["SnuCL-D"][0]
		if c.Name == "CFD" {
			if sn.Supported {
				t.Errorf("CFD must be unsupported on SnuCL-D")
			}
		} else {
			if !sn.Supported {
				t.Errorf("%s: SnuCL-D should support this benchmark", c.Name)
			} else if last.Nodes == 16 && sn.Speedup >= last.Speedup {
				t.Errorf("%s: SnuCL-D (%.2fx) not behind HaoCL (%.2fx) at 16 nodes",
					c.Name, sn.Speedup, last.Speedup)
			}
		}

		// Hetero clusters scale as devices are added.
		het := series["HaoCL-Hetero"]
		if len(het) == 2 && het[1].Seconds >= het[0].Seconds {
			t.Errorf("%s: hetero cluster did not scale: %.3fs -> %.3fs",
				c.Name, het[0].Seconds, het[1].Seconds)
		}
	}
}

// TestFig3Shapes verifies the breakdown claims: total time grows with
// matrix size, compute shrinks with GPU count, and the communication +
// creation share of the total falls as the problem grows (§IV-D: "the
// ratio of them decreases").
func TestFig3Shapes(t *testing.T) {
	sizes := []int{1000, 4000, 10000}
	gpuCounts := []int{2, 4, 9}
	rows := make(map[[2]int]Fig3Row)
	for _, size := range sizes {
		for _, gpus := range gpuCounts {
			row, err := Fig3Cell(size, gpus)
			if err != nil {
				t.Fatalf("N=%d gpus=%d: %v", size, gpus, err)
			}
			rows[[2]int{size, gpus}] = row
		}
	}

	for _, gpus := range gpuCounts {
		for i := 1; i < len(sizes); i++ {
			prev, cur := rows[[2]int{sizes[i-1], gpus}], rows[[2]int{sizes[i], gpus}]
			if cur.Total <= prev.Total {
				t.Errorf("gpus=%d: total not growing with size: N=%d %.3f <= N=%d %.3f",
					gpus, sizes[i], cur.Total, sizes[i-1], prev.Total)
			}
		}
		// The communication + creation share falls from the smallest to
		// the largest size (compute is O(N³) against O(N²) data terms).
		// On 9 GPUs the per-device compute at N=10000 has not yet crossed
		// the fixed communication term in this calibration, so the claim
		// is asserted for the 2- and 4-GPU groups (see EXPERIMENTS.md).
		if gpus > 4 {
			continue
		}
		first := rows[[2]int{sizes[0], gpus}]
		last := rows[[2]int{sizes[len(sizes)-1], gpus}]
		firstRatio := (first.DataCreate + first.Transfer) / first.Total
		lastRatio := (last.DataCreate + last.Transfer) / last.Total
		if lastRatio >= firstRatio {
			t.Errorf("gpus=%d: comm+create ratio not shrinking across the sweep: %.3f -> %.3f",
				gpus, firstRatio, lastRatio)
		}
	}
	for _, size := range sizes {
		for i := 1; i < len(gpuCounts); i++ {
			prev, cur := rows[[2]int{size, gpuCounts[i-1]}], rows[[2]int{size, gpuCounts[i]}]
			if cur.Compute >= prev.Compute {
				t.Errorf("N=%d: compute not shrinking with GPUs: %d gpus %.3f >= %d gpus %.3f",
					size, gpuCounts[i], cur.Compute, gpuCounts[i-1], prev.Compute)
			}
		}
	}
}

// TestHeteroAndOverheadRun exercises the remaining harness entry points.
func TestHeteroAndOverheadRun(t *testing.T) {
	if err := Hetero(io.Discard, [][2]int{{2, 1}, {4, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := Overhead(io.Discard); err != nil {
		t.Fatal(err)
	}
}
