package bench

import (
	"fmt"
	"io"
	"runtime"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps/matmul"
	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/mem"
	"github.com/haocl-project/haocl/internal/node"
	"github.com/haocl-project/haocl/internal/sim"
)

// This file measures the node's per-queue dispatch lanes (DESIGN.md §4).
// The pipelined command path removed round trips and batching removed
// per-frame writes, but one bottleneck remained: the node executed every
// command of a connection single-file, so a multi-device node ran its
// queues like a single-lane device. Per-queue lanes execute queues
// concurrently while events are still registered in wire-arrival order.
//
// The experiment streams an identical pipelined workload — per-device
// MatrixMul tiles with real functional compute — at one multi-GPU node in
// two node configurations:
//
//	1-lane     — node.Options.SingleLane: every command executes on one
//	             lane, the serialized dispatch of the pre-lane runtime;
//	per-queue  — one lane per command queue, the default.
//
// Virtual time must be bit-identical between the two: lanes change when
// the node's CPU does the functional work, never when the simulated
// hardware does it (per-queue clocks reserve the same intervals in both
// configs). The number that moves is wall-clock — with D devices the
// per-queue node approaches D-way overlap of functional execution.

// laneModeName names a lane configuration in report rows.
func laneModeName(single bool) string {
	if single {
		return "1-lane"
	}
	return "per-queue"
}

// lanesPlatform builds one TCP node exposing devs GPU devices, with the
// node's dispatch forced to a single lane when single is set. Loopback TCP
// keeps the deployment shape honest (real sockets between host and node);
// the lane split itself is node-internal, so the transport choice only
// affects constants, not the comparison.
func lanesPlatform(devs int, single bool) (*haocl.Platform, func(), error) {
	icd := device.NewICD()
	sim.RegisterDrivers(icd, Registry())

	devCfgs := make([]device.Config, devs)
	nodeSpec := haocl.NodeSpec{Name: "lanes-node"}
	for i := 0; i < devs; i++ {
		devCfgs[i] = device.Config{Driver: sim.DriverGPU, ID: uint32(i + 1), Shared: true}
		nodeSpec.Devices = append(nodeSpec.Devices, haocl.DeviceSpec{Type: "gpu", Shared: true})
	}
	n, err := node.New(node.Options{
		Name:        "lanes-node",
		Devices:     devCfgs,
		ICD:         icd,
		ExecWorkers: 1,
		SingleLane:  single,
	})
	if err != nil {
		return nil, nil, err
	}
	srv := n.Serve()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	nodeSpec.Addr = addr
	cfg := &haocl.ClusterConfig{UserID: "bench-lanes", Nodes: []haocl.NodeSpec{nodeSpec}}
	p, err := haocl.Connect(cfg, haocl.WithClientName("bench-lanes"))
	if err != nil {
		srv.Close()
		return nil, nil, err
	}
	attachTracer(p)
	return p, func() { p.Close(); srv.Close() }, nil
}

// LanesMatmul streams per-device MatrixMul tiles at one devs-GPU node:
// for every tile the host writes the input block and launches the tile
// kernel on that device's queue, fully pipelined, synchronizing only at
// the final per-queue Finish. The functional tile is large enough that
// node-side compute dominates the wall clock — exactly the regime where
// serialized dispatch wastes a multi-device node.
func LanesMatmul(devs, launches int, single bool) (PipelineRow, error) {
	row := PipelineRow{Workload: "MatrixMul", Transport: "tcp", Mode: laneModeName(single)}
	p, cleanup, err := lanesPlatform(devs, single)
	if err != nil {
		return row, err
	}
	defer cleanup()

	devices := p.Devices(haocl.GPU)
	if len(devices) != devs {
		return row, fmt.Errorf("lanes: node exposes %d devices, want %d", len(devices), devs)
	}
	ctx, err := p.CreateContext(devices)
	if err != nil {
		return row, err
	}
	prog, err := ctx.CreateProgram(matmul.Source)
	if err != nil {
		return row, err
	}
	if err := prog.Build(); err != nil {
		return row, err
	}

	// Functional tile edge: big enough that the lane worker spends its
	// time in real kernel execution, not protocol handling.
	const n = 64
	tile := make([]float32, n*n)
	for i := range tile {
		tile[i] = float32(i%13) * 0.5
	}
	tileBytes := mem.F32Bytes(tile)
	costs := matmul.Cost(1000, 1000, 1000)
	opts := &haocl.LaunchOptions{CostFlops: costs.Flops, CostBytes: costs.Bytes}

	type deviceState struct {
		q    *haocl.Queue
		k    *haocl.Kernel
		a, b *haocl.Buffer
	}
	states := make([]deviceState, len(devices))
	for i, dev := range devices {
		q, err := ctx.CreateQueue(dev)
		if err != nil {
			return row, err
		}
		a, err := ctx.CreateBuffer(int64(len(tileBytes)))
		if err != nil {
			return row, err
		}
		b, err := ctx.CreateBuffer(int64(len(tileBytes)))
		if err != nil {
			return row, err
		}
		c, err := ctx.CreateBuffer(int64(len(tileBytes)))
		if err != nil {
			return row, err
		}
		k, err := prog.CreateKernel("matmul")
		if err != nil {
			return row, err
		}
		for idx, v := range []any{a, b, c, int32(n), int32(n), int32(n)} {
			if err := k.SetArg(idx, v); err != nil {
				return row, err
			}
		}
		if _, err := q.EnqueueWrite(b, 0, tileBytes); err != nil {
			return row, err
		}
		if _, err := q.Finish(); err != nil {
			return row, err
		}
		states[i] = deviceState{q: q, k: k, a: a, b: b}
	}

	sw := startStopwatch()
	// Interleave the devices' streams the way a data-partitioned host
	// does: registration stays strictly in wire order while the lanes
	// execute the per-device work concurrently.
	for t := 0; t < launches; t++ {
		for _, st := range states {
			if _, err := st.q.EnqueueWrite(st.a, 0, tileBytes); err != nil {
				return row, err
			}
			if _, err := st.q.EnqueueKernel(st.k, []int{n, n}, []int{8, 8}, nil, opts); err != nil {
				return row, err
			}
		}
	}
	for _, st := range states {
		if _, err := st.q.Finish(); err != nil {
			return row, err
		}
	}
	wall := sw.elapsed()

	row.Commands = int64(len(states) * launches * 2)
	row.WallMS = float64(wall.Microseconds()) / 1000
	row.CmdsPerSec = float64(row.Commands) / wall.Seconds()
	row.VirtualSec = p.Metrics().Makespan.Seconds()
	return row, nil
}

// lanesSizes returns the node shape for the lane experiment.
func lanesSizes(quick bool) (devs, launches int) {
	if quick {
		return 2, 40
	}
	return 4, 100
}

// LanesReport measures the 1-lane and per-queue configurations and
// compares them; the virtual makespans must match bit for bit. The
// wall-clock speedup scales with min(GOMAXPROCS, devices): functional
// kernel execution is CPU-bound, so a single-core host times-shares the
// lanes and reports parity (the report records GOMAXPROCS so baselines
// from different machines stay comparable).
func LanesReport(quick bool) (*Report, error) {
	devs, launches := lanesSizes(quick)
	rep := &Report{Experiment: "lanes", Quick: quick, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	var base PipelineRow
	for i, single := range []bool{true, false} {
		r, err := bestOf(3, func() (PipelineRow, error) {
			return LanesMatmul(devs, launches, single)
		})
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, r)
		if i == 0 {
			base = r
			continue
		}
		rep.Comparisons = append(rep.Comparisons, Comparison{
			Workload:     r.Workload,
			Baseline:     base.Mode,
			Mode:         r.Mode,
			Speedup:      r.CmdsPerSec / base.CmdsPerSec,
			VirtualMatch: r.VirtualSec == base.VirtualSec,
		})
	}
	return rep, nil
}

// Lanes runs the 1-lane vs per-queue comparison and prints it.
func Lanes(w io.Writer, quick bool) error {
	devs, launches := lanesSizes(quick)
	fmt.Fprintln(w, "=== Per-queue dispatch lanes: serialized vs concurrent node execution ===")
	fmt.Fprintf(w, "(MatrixMul: %d tiles x 2 commands across %d queues of ONE %d-GPU node over loopback TCP;\n",
		devs*launches, devs, devs)
	fmt.Fprintln(w, " 1-lane pins the node to the pre-lane serialized dispatch, per-queue is the default)")
	rep, err := LanesReport(quick)
	if err != nil {
		return err
	}
	printReport(w, rep)
	if rep.GOMAXPROCS < devs {
		fmt.Fprintf(w, "note: GOMAXPROCS=%d < %d queues — lanes time-share this host's cores, so the\n",
			rep.GOMAXPROCS, devs)
		fmt.Fprintln(w, "wall-clock gain is bounded by available parallelism (virtual time is unaffected)")
	}
	return nil
}
